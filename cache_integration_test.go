package unify

// End-to-end checks for the shared cache hierarchy: warm replays of a
// workload must be dramatically cheaper, byte budgets must hold under
// load, and the cache/sim accounting must reconcile at the system level.

import (
	"context"
	"testing"
	"time"

	"unify/internal/corpus"
	"unify/internal/llm"
)

// TestWarmWorkloadSpeedup replays a small workload against one system and
// requires the warm batch to be at least 5x cheaper in simulated time than
// the cold batch, with byte-identical answers. It also pins the truly-cold
// behavior: the first query on a cached system returns the same answer as
// an uncached (CacheBytes < 0) system and is never slower — it may be
// slightly faster, because estimation probes and execution share filter
// prompts even within a single query.
func TestWarmWorkloadSpeedup(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"How many questions are about tennis?",
		"How many questions are about golf?",
		"How many questions are about swimming?",
		"How many questions are about cycling?",
	}

	uncached, err := OpenDataset(ds, Config{Dataset: "sports", CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := OpenDataset(ds, Config{Dataset: "sports"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Cache == nil {
		t.Fatal("default config did not enable the shared cache")
	}

	ctx := context.Background()
	first, err := uncached.Query(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	cold0, err := sys.Query(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if cold0.Text != first.Text {
		t.Fatalf("cold cached answer %q != uncached answer %q", cold0.Text, first.Text)
	}
	if cold0.TotalDur > first.TotalDur {
		t.Errorf("caching made a cold query slower: cached %v, uncached %v", cold0.TotalDur, first.TotalDur)
	}
	if cold0.PlanCacheHit {
		t.Error("first query reported a plan-cache hit")
	}

	coldTotal := cold0.TotalDur
	coldText := map[string]string{queries[0]: cold0.Text}
	for _, q := range queries[1:] {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		coldTotal += ans.TotalDur
		coldText[q] = ans.Text
	}

	var warmTotal time.Duration
	warmPlanHits, warmCached := 0, 0
	for _, q := range queries {
		ans, err := sys.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		warmTotal += ans.TotalDur
		if ans.Text != coldText[q] {
			t.Errorf("warm answer for %q diverged: %q != %q", q, ans.Text, coldText[q])
		}
		if ans.PlanCacheHit {
			warmPlanHits++
		}
		warmCached += ans.CachedLLMCalls
	}
	if warmPlanHits != len(queries) {
		t.Errorf("plan cache served %d/%d warm queries", warmPlanHits, len(queries))
	}
	if warmCached == 0 {
		t.Error("warm pass reported zero cached LLM calls")
	}
	if warmTotal*5 > coldTotal {
		t.Errorf("warm batch not >=5x faster: cold %v, warm %v", coldTotal, warmTotal)
	}

	// Cache/sim reconciliation: every LLM-layer miss forwards exactly one
	// prompt to a simulated backend, so the backends' call counts must sum
	// to the layer's misses.
	layers := sys.CacheStats()
	sims := map[*llm.Sim]bool{}
	for _, c := range []llm.Client{sys.PlannerClient, sys.WorkerClient} {
		if s := llm.SimOf(c); s != nil {
			sims[s] = true
		}
	}
	if len(sims) == 0 {
		t.Fatal("no simulated backends found behind the system clients")
	}
	var backendCalls uint64
	for s := range sims {
		calls, _ := s.Stats()
		backendCalls += uint64(calls)
	}
	if backendCalls != layers["llm"].Misses {
		t.Errorf("sim backends saw %d calls but llm layer recorded %d misses",
			backendCalls, layers["llm"].Misses)
	}
}

// TestCacheByteBudgetEndToEnd opens a system with a tiny cache budget and
// verifies the resident footprint never exceeds it while evictions churn.
func TestCacheByteBudgetEndToEnd(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 8 << 10
	sys, err := OpenDataset(ds, Config{Dataset: "sports", CacheBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []string{
		"How many questions are about tennis?",
		"How many questions are about golf?",
		"How many questions are about swimming?",
	} {
		if _, err := sys.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
		if got := sys.Cache.Bytes(); got > budget {
			t.Fatalf("cache footprint %d exceeds budget %d", got, budget)
		}
	}
	if sys.Cache.Stats().Evictions == 0 {
		t.Error("tiny budget produced no evictions")
	}
}
