package unify

import (
	"context"
	"testing"

	"unify/internal/check"
	"unify/internal/llm"
)

// Axis "constructors" (satellite: deprecated-wrapper parity): the
// deprecated Open/OpenDataset/OpenWithClients constructors must produce
// byte-identical answers to the equivalent unify.New call on a seeded
// workload slice.
func TestDifferentialDeprecatedConstructorParity(t *testing.T) {
	ds := diffDataset(t)
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	cfg := Config{Dataset: "sports", Sim: &sim, StrictChecks: true}
	queries := diffQueries(ds, 4)

	pcfg := sim
	pcfg.Profile = llm.PlannerProfile()
	wcfg := sim
	wcfg.Profile = llm.WorkerProfile()

	pairs := []struct {
		name       string
		deprecated func() (*System, error)
		modern     func() (*System, error)
	}{
		{
			name:       "OpenDataset",
			deprecated: func() (*System, error) { return OpenDataset(ds, cfg) },
			modern:     func() (*System, error) { return New(WithConfig(cfg), WithCorpus(ds)) },
		},
		{
			name: "Open",
			deprecated: func() (*System, error) {
				c := cfg
				c.Size = 150
				return Open(c)
			},
			modern: func() (*System, error) {
				c := cfg
				c.Size = 150
				return New(WithConfig(c))
			},
		},
		{
			name: "OpenWithClients",
			deprecated: func() (*System, error) {
				return OpenWithClients(ds, cfg, llm.NewSim(pcfg), llm.NewSim(wcfg))
			},
			modern: func() (*System, error) {
				return New(WithConfig(cfg), WithCorpus(ds),
					WithClients(llm.NewSim(pcfg), llm.NewSim(wcfg)))
			},
		},
	}
	for _, pair := range pairs {
		dep, err := pair.deprecated()
		if err != nil {
			t.Fatalf("%s: %v", pair.name, err)
		}
		mod, err := pair.modern()
		if err != nil {
			t.Fatalf("%s (modern): %v", pair.name, err)
		}
		ms := check.Differential(context.Background(), "constructors/"+pair.name, queries,
			exactRunner(dep), exactRunner(mod))
		assertNoMismatch(t, "constructors/"+pair.name, ms)
	}
}
