// Package unify is a reproduction of "Unify: An Unstructured Data
// Analytics System" (ICDE 2025): natural-language analytics over
// collections of unstructured text documents, with automatic logical plan
// generation by LLM-guided query reduction, cost-based physical
// optimization driven by semantic cardinality estimation, and parallel
// DAG execution.
//
// Quick start:
//
//	sys, err := unify.New(unify.WithDataset("sports"), unify.WithSize(500))
//	ans, err := sys.Query(ctx, "How many questions about football have more than 500 views?")
//	fmt.Println(ans.Text, ans.TotalDur)
//
// Per-query options ride on the same call: sys.Query(ctx, q,
// unify.WithTimeout(30*time.Second), unify.WithPriority(1)).
//
// The LLM substrate is simulated (deterministic, latency-modeled); see
// DESIGN.md for the substitution rationale. Any llm.Client implementation
// can be plugged in via unify.WithClients.
package unify

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"unify/internal/cache"
	"unify/internal/check"
	"unify/internal/core"
	"unify/internal/corpus"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/exec"
	"unify/internal/faults"
	"unify/internal/lexicon"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/optimizer"
	"unify/internal/sce"
	"unify/internal/sched"
	"unify/internal/usql"
	"unify/internal/values"
	"unify/internal/views"
	"unify/internal/vtime"
)

// Version identifies this build of the reproduction (reported by
// /v1/health and the CLI).
const Version = "0.2.0"

// Config controls system construction.
type Config struct {
	// Dataset names a built-in synthetic corpus: "sports", "ai", "law",
	// "wiki". Ignored when documents are supplied directly.
	Dataset string
	// Size overrides the corpus document count (0 = the paper's size).
	Size int

	// Planner hyper-parameters (paper defaults: K=5, NC=3, Tau=0.75).
	K   int
	NC  int
	Tau float64

	// Machine model: LLM server slots per machine (paper: 4) and
	// per-invocation document batch size.
	Slots     int
	BatchSize int

	// Machines sets the simulated cluster width (0 or 1 = the paper's
	// single machine). With M > 1 the corpus is hash-partitioned into M
	// shards, queries are admitted round-robin to a home machine, and the
	// optimizer may scatter shardable operators across the cluster.
	Machines int
	// Partitioner overrides the shard assignment policy (nil =
	// docstore.HashPartitioner). Only consulted when Machines > 1.
	Partitioner docstore.Partitioner

	// Batching enables cross-query continuous batching of operator LLM
	// calls: compatible per-document calls (same task family, model, and
	// prompt template) from different queries that are co-pending on the
	// shared pool coalesce into one batched invocation occupying a
	// single slot, amortizing base and template-prefill cost. Off by
	// default; batch formation is deterministic given the admission and
	// submission sequence, and answers are byte-identical either way.
	Batching bool
	// BatchWindow is the virtual-time hold-the-door window: compatible
	// calls becoming ready within it after a slot grant may join the
	// batch (0 selects DefaultBatchWindow when Batching is on).
	BatchWindow time.Duration
	// BatchFairnessCap bounds a multi-member batch's duration so one
	// heavy scan cannot grow invocations that monopolize a slot and
	// starve light queries (0 selects DefaultBatchFairnessCap; negative
	// disables the cap).
	BatchFairnessCap time.Duration
	// MaxBatch bounds the calls coalesced into one invocation (0
	// selects DefaultMaxBatch when Batching is on).
	MaxBatch int

	// Mode selects the optimizer strategy (CostBased, Rule, GroundTruth
	// via the optimizer package constants).
	Mode optimizer.Mode

	// Views enables materialized semantic views: per-document operator
	// results (filter verdicts, classification labels, extracted field
	// values) persist as named columns keyed by document content hash,
	// and repeated semantic work is served from the view instead of the
	// model. Rows survive corpus ingestion — only mutated documents
	// recompute. Off by default; answers are byte-identical with views on
	// or off (rows are only served while their content hash matches).
	Views bool

	// SCEBuckets sets the importance-function resolution.
	SCEBuckets int
	// TrainSCE learns the importance function from a small set of
	// historical predicates at open time (recommended; the paper's
	// offline phase).
	TrainSCE bool

	// Sim overrides the simulated model configuration (noise, speed).
	Sim *llm.SimConfig

	// CacheBytes bounds the shared semantic cache (LLM responses, query
	// embeddings, distance maps, SCE bucketizations, selectivities,
	// plans). 0 selects DefaultCacheBytes; a negative value disables the
	// shared cache entirely.
	CacheBytes int64

	// FaultPlan, when non-nil, injects seeded deterministic faults into
	// the worker client (the failure-testing harness). Enabling it also
	// installs the retry layer with defaults unless MaxRetries is set.
	FaultPlan *faults.Plan
	// MaxRetries bounds retries per worker call after transient failures
	// (0 leaves the retry layer uninstalled unless FaultPlan is set).
	MaxRetries int
	// HedgeAfter, when positive, hedges slow worker calls: a response
	// slower than this threshold triggers one backup request and the
	// faster outcome wins.
	HedgeAfter time.Duration
	// NodeErrorBudget lets each operator absorb up to this many per-batch
	// LLM failures by skipping the affected documents (partial results)
	// instead of failing the node.
	NodeErrorBudget int
	// ReplanThreshold enables dynamic replanning (paper §V): when an
	// executed node's observed cardinality deviates from its estimate by
	// more than this ratio, the remaining DAG suffix is re-optimized with
	// corrected cardinalities. Values <= 1 disable replanning.
	ReplanThreshold float64

	// StrictChecks turns on the internal/check invariant checker: every
	// logical and physical plan (including replanned suffixes), every
	// merged pool schedule, and every completed answer's accounting is
	// validated, and a violation fails the query with a span-dump
	// diagnostic. On in all tests; off by default on the production path
	// (the checks are pure CPU but add per-query overhead).
	StrictChecks bool

	// MaxTraces bounds the retained query-history trace store (0 selects
	// obs.DefaultMaxTraces). A negative value disables trace retention —
	// and with it the always-on tracer that feeds the store; Analyze and
	// caller-installed tracers still work.
	MaxTraces int
	// MaxTraceSpans bounds the spans retained per stored trace (0
	// selects obs.DefaultMaxSpansPerTrace). Truncation is breadth-first:
	// the query and phase structure survives, deep per-call detail is
	// dropped first.
	MaxTraceSpans int
	// SlowQueryVTime, when positive, logs every query whose total
	// virtual time meets the threshold as one structured log/slog record
	// carrying the request id of its retained trace.
	SlowQueryVTime time.Duration
}

// DefaultCacheBytes is the default shared-cache budget (64 MiB).
const DefaultCacheBytes = 64 << 20

// Continuous-batching defaults, applied when Config.Batching is on.
const (
	// DefaultBatchWindow holds a granted slot briefly for compatible
	// calls about to become ready — long enough to catch lockstep
	// chains slightly out of phase, short against the ~300ms-and-up
	// worker calls it defers.
	DefaultBatchWindow = 100 * time.Millisecond
	// DefaultBatchFairnessCap bounds one invocation to a few worker
	// calls' worth of slot time.
	DefaultBatchFairnessCap = 2500 * time.Millisecond
	// DefaultMaxBatch mirrors typical continuous-batching widths at the
	// simulated worker's scale.
	DefaultMaxBatch = 8
)

func (c *Config) defaults() {
	if c.Dataset == "" {
		c.Dataset = "sports"
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.NC == 0 {
		c.NC = 3
	}
	if c.Tau == 0 {
		c.Tau = 0.75
	}
	if c.Slots == 0 {
		c.Slots = 4
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Machines < 1 {
		c.Machines = 1
	}
	if c.Batching {
		if c.BatchWindow == 0 {
			c.BatchWindow = DefaultBatchWindow
		}
		if c.BatchFairnessCap == 0 {
			c.BatchFairnessCap = DefaultBatchFairnessCap
		}
		if c.MaxBatch == 0 {
			c.MaxBatch = DefaultMaxBatch
		}
	}
	if c.SCEBuckets == 0 {
		c.SCEBuckets = 8
	}
}

// System is an opened Unify instance over one document collection.
type System struct {
	Config  Config
	Dataset *corpus.Dataset
	Store   *docstore.Store

	PlannerClient llm.Client
	WorkerClient  llm.Client

	Planner   *core.Planner
	Optimizer *optimizer.Optimizer
	Executor  *exec.Executor
	Estimator *sce.Estimator
	Calib     *cost.Calibrator

	// Metrics is the system's process-wide metrics bundle (served by the
	// HTTP server at /metrics and /v1/stats). Always installed by the
	// Open* constructors; a nil bundle is a valid no-op sink.
	Metrics *obs.Metrics

	// Cache is the shared semantic cache backing every caching layer
	// (nil when Config.CacheBytes < 0).
	Cache *cache.LRU

	// Pool is the process-global slot pool: every concurrent query of
	// this system contends for the same simulated LLM slots (paper
	// §VI-A: one machine, 4 local model instances). With Config.Machines
	// > 1 it is the shared cluster of M such pools on one virtual clock.
	Pool *sched.Pool

	// Sharding is the corpus shard assignment driving scatter execution
	// (nil on single-machine systems).
	Sharding *docstore.Sharding

	// Views is the materialized semantic view store (nil unless
	// Config.Views is on).
	Views *views.Store
	// ingestMu serializes corpus mutations: Ingest runs exclusively
	// against queries' shared structures, mirroring the paper's offline
	// preprocessing boundary.
	ingestMu sync.Mutex

	// Injector is the fault-injecting wrapper around the worker client
	// (nil unless Config.FaultPlan was set).
	Injector *faults.Client

	// Traces is the bounded query-history store: every completed query's
	// span tree, keyed by request id, ordered by admission sequence
	// (served at /v1/traces). Nil when Config.MaxTraces < 0.
	Traces *obs.TraceStore
	// Profiler accumulates per-operator-class cost profiles across the
	// system's lifetime (served at /v1/profile).
	Profiler *obs.Profiler
	// SlowLog is the threshold-gated slow-query log (nil when
	// Config.SlowQueryVTime <= 0).
	SlowLog *obs.SlowLog

	// PreprocessDur is the simulated offline preprocessing time
	// (embedding + indexing + SCE training).
	PreprocessDur time.Duration
}

// NodeStat summarizes one operator's execution for diagnostics.
type NodeStat struct {
	NodeID   int
	Op       string
	Physical string
	InCard   int
	OutCard  int
	LLMCalls int
	// Busy is the operator's total model time (its calls run
	// sequentially on one instance in the machine model).
	Busy time.Duration
}

// Answer is a completed query.
type Answer struct {
	Text  string
	Value values.Value
	Plan  *core.Plan
	// Lang is the resolved query language the frontend dispatched on:
	// LangUSQL for parsed statements (zero planner-LLM work), LangNL
	// for planner-generated plans. Never LangAuto on a completed query.
	Lang Language
	// Nodes reports per-operator execution statistics in plan order.
	Nodes []NodeStat
	// Unresolved lists sub-queries the planner could not reduce (the
	// paper suggests mining these to design new operators).
	Unresolved []string

	PlanningDur   time.Duration // logical planning (sequential prompts)
	EstimationDur time.Duration // SCE + physical optimization
	ExecDur       time.Duration // parallel execution makespan
	TotalDur      time.Duration
	// SerialExecDur is the latency had execution been fully sequential
	// (the Unify-noLO ablation).
	SerialExecDur time.Duration

	LLMCalls int
	// CachedLLMCalls counts invocations (planning + execution) answered
	// by the shared response cache at zero virtual cost.
	CachedLLMCalls int
	// PlanCacheHit reports that optimization was served from the plan
	// cache (estimation and lowering were skipped entirely).
	PlanCacheHit bool
	Fallback     bool
	// Adjusted reports runtime plan adjustment: an operator's selected
	// physical implementation failed and a fallback ran instead.
	Adjusted bool

	// SkippedDocs counts documents dropped by node error budgets under
	// LLM failures; Partial is true when any were dropped.
	SkippedDocs int
	Partial     bool
	// ViewHits counts per-document judgments served from materialized
	// views instead of model work (0 unless Config.Views is on).
	ViewHits int
	// Replans counts dynamic replanning rounds during execution.
	Replans int

	// SlotBusy is the execution's total simulated busy time across the
	// LLM slot pool (utilization = SlotBusy / (ExecDur * slots)).
	SlotBusy time.Duration
	// SlotGrantWait is the total simulated delay between work units
	// becoming ready and receiving a slot grant on the shared pool —
	// non-zero when concurrent queries contend for slots.
	SlotGrantWait time.Duration
	// SoloExecDur is the execution latency the same work would have on
	// an idle machine: ExecDur == SoloExecDur for a query that ran
	// alone, ExecDur >= SoloExecDur under contention.
	SoloExecDur time.Duration
	// SchedStart is the query's admission time on the pool's shared
	// virtual clock.
	SchedStart time.Duration
	// Contended reports that execution shared slots with other queries.
	Contended bool
	// BatchedCalls counts this query's operator LLM calls that rode in
	// multi-member batched invocations (0 unless batching is enabled).
	BatchedCalls int
	// RequestID identifies the query in the trace store and slow-query
	// log: the caller-installed id (obs.WithRequestID) when present,
	// otherwise minted from the pool admission sequence ("t-<seq>").
	RequestID string

	// Profile is the query's per-operator-class cost attribution: LLM
	// calls, tokens, cache traffic, retries, grant waits, and vtime
	// shares that sum exactly to TotalDur (the profile.vtime_attribution
	// invariant under StrictChecks).
	Profile *obs.CostProfile

	// Trace is the query's span tree (EXPLAIN ANALYZE), populated only
	// when a tracer was installed in the query context via
	// obs.WithTracer; render it with obs.Render or serialize via JSON().
	Trace *obs.Span

	// Call logs by phase, kept for metrics accounting.
	planCalls []llm.Call
	execCalls []llm.Call
}

// open assembles the system; every constructor funnels through here with
// a defaulted Config and concrete dataset and clients.
func open(ds *corpus.Dataset, cfg Config, planner, worker llm.Client) (*System, error) {
	store, err := docstore.New(ds.Name, ds.Documents())
	if err != nil {
		return nil, err
	}
	metrics := obs.NewMetrics()
	metrics.SetBuildInfo(Version)
	// The shared semantic cache: one byte budget across LLM responses,
	// embeddings, distance maps, bucketizations, selectivities, and
	// plans, with per-layer counters mirrored into the metrics registry.
	var shared *cache.LRU
	if cfg.CacheBytes >= 0 {
		budget := cfg.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		shared = cache.New(budget, cache.WithEvents(func(layer string, ev cache.Event, n int) {
			metrics.RecordCacheEvent(layer, ev.String(), n)
		}))
		llmLayer := cache.NewLayer[llm.Response](shared, "llm", llm.ResponseCost)
		planner = llm.NewCached(planner, llmLayer)
		worker = llm.NewCached(worker, llmLayer)
		store.AttachCache(shared)
	}
	// Failure harness: the injector sits above the cache (garbage never
	// poisons cached entries) and below the retry layer, so every logical
	// call — hit or miss — is exposed to serving-path faults and the
	// Resilient wrapper sees them first.
	var injector *faults.Client
	if cfg.FaultPlan != nil {
		injector = faults.New(worker, cfg.FaultPlan, func(kind faults.Kind, task string) {
			metrics.RecordFault(string(kind))
		})
		worker = injector
	}
	if cfg.FaultPlan != nil || cfg.MaxRetries > 0 || cfg.HedgeAfter > 0 {
		pol := llm.DefaultRetryPolicy()
		if cfg.MaxRetries > 0 {
			pol.MaxAttempts = cfg.MaxRetries + 1
		}
		pol.HedgeAfter = cfg.HedgeAfter
		worker = llm.NewResilient(worker, pol, metrics.RecordResilience)
	}
	if cfg.Batching {
		// Top of the worker stack: stamps batch-compatibility metadata
		// (key + template tokens) on responses so the executor's
		// per-query recorder carries it into virtual-time replay, where
		// batch formation actually happens. Answers are untouched.
		worker = llm.NewBatching(worker)
	}
	calib := cost.NewCalibrator(cfg.BatchSize)
	est := sce.NewEstimator(store, worker, cfg.SCEBuckets)
	opt := optimizer.New(store, est, calib, cfg.Slots)
	opt.Mode = cfg.Mode
	opt.Machines = cfg.Machines
	if shared != nil {
		est.AttachCache(shared)
		opt.AttachCache(shared)
	}
	s := &System{
		Config:        cfg,
		Dataset:       ds,
		Store:         store,
		PlannerClient: planner,
		WorkerClient:  worker,
		Planner:       core.NewPlanner(planner, store.Embedder(), cfg.K, cfg.NC, cfg.Tau),
		Optimizer:     opt,
		Executor:      exec.New(store, worker, calib),
		Estimator:     est,
		Calib:         calib,
		Metrics:       metrics,
		Cache:         shared,
		Injector:      injector,
		Pool:          sched.NewCluster(cfg.Machines, cfg.Slots).Pool,
	}
	s.Executor.Slots = cfg.Slots
	s.Executor.BatchSize = cfg.BatchSize
	s.Executor.Pool = s.Pool
	if cfg.Machines > 1 {
		s.Sharding = store.Shard(cfg.Partitioner, cfg.Machines)
		s.Executor.Sharding = s.Sharding
		metrics.EnablePerMachine(cfg.Machines)
	}
	if cfg.Views {
		s.Views = views.NewStore()
		s.Views.SetAudit(cfg.StrictChecks)
		s.Executor.Views = s.Views
		opt.Views = s.Views
		metrics.EnableViews()
	}
	s.Executor.NodeErrorBudget = cfg.NodeErrorBudget
	s.Executor.StrictChecks = cfg.StrictChecks
	s.Pool.StrictChecks = cfg.StrictChecks
	if cfg.Batching {
		cap := cfg.BatchFairnessCap
		if cap < 0 {
			cap = 0 // negative disables the cap
		}
		pol := &vtime.BatchPolicy{
			Window:      cfg.BatchWindow,
			FairnessCap: cap,
			MaxBatch:    cfg.MaxBatch,
		}
		s.Pool.Batching = pol
		s.Executor.Batching = pol
		metrics.EnableBatching()
	}
	// Observability retention: trace store, cumulative profiler, and the
	// slow-query log. The profiler is always on (pure counters); the
	// trace store honors the retention config.
	s.Profiler = obs.NewProfiler()
	if cfg.MaxTraces >= 0 {
		s.Traces = obs.NewTraceStore(cfg.MaxTraces, cfg.MaxTraceSpans)
	}
	s.SlowLog = obs.NewSlowLog(cfg.SlowQueryVTime, nil)
	if cfg.ReplanThreshold > 1 {
		s.Executor.ReplanThreshold = cfg.ReplanThreshold
		s.Executor.Replanner = opt
	}
	if cfg.TrainSCE {
		// Training is the paper's offline phase: the failure harness
		// targets query serving, so injection pauses while it runs.
		if injector != nil {
			injector.SetEnabled(false)
		}
		start := time.Now()
		if err := s.TrainSCE(context.Background()); err != nil {
			return nil, err
		}
		s.PreprocessDur += time.Since(start)
		if injector != nil {
			injector.SetEnabled(true)
		}
	}
	return s, nil
}

// IngestResult summarizes one live corpus mutation.
type IngestResult struct {
	// Added and Updated count the documents ingested by kind.
	Added   int `json:"added"`
	Updated int `json:"updated"`
	// Generation is the corpus generation after the mutation (every
	// plan/selectivity/SCE cache key embeds it, so derived state from
	// before the mutation can never serve after it).
	Generation uint64 `json:"generation"`
	// InvalidatedRows counts materialized view rows dropped because their
	// document was updated (0 without views; added documents invalidate
	// nothing — their rows simply do not exist yet).
	InvalidatedRows int `json:"invalidated_rows"`
	// Docs is the corpus size after the mutation.
	Docs int `json:"docs"`
}

// Ingest mutates the live corpus: add appends new documents (their ids
// must be unused) and update replaces existing documents in place. All
// indexes — document and sentence embeddings, the exact and HNSW vector
// indexes, per-document content hashes, and (on clusters) the shard
// assignment — are maintained incrementally and deterministically: a
// corpus grown by Ingest is byte-identical to one built statically over
// the same collection, and a post-ingest query answers exactly as a cold
// system over the mutated corpus would. Materialized view rows survive
// for unchanged documents and are invalidated for updated ones.
//
// Ingests are serialized with each other; the caller is responsible for
// not racing Ingest against in-flight queries (the HTTP layer serializes
// /v1/ingest against /v1/query admissions).
func (s *System) Ingest(add []docstore.Document, update []docstore.Document) (*IngestResult, error) {
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	// Validate up front so the mutation is all-or-nothing: every update
	// id must exist (AddDocs pre-checks its own ids for duplicates).
	for _, d := range update {
		if _, ok := s.Store.Doc(d.ID); !ok {
			return nil, fmt.Errorf("unify: ingest: update of unknown document id %d", d.ID)
		}
	}
	start := time.Now()
	res := &IngestResult{Added: len(add), Updated: len(update)}
	if len(add) > 0 {
		if err := s.Store.AddDocs(add); err != nil {
			return nil, fmt.Errorf("unify: ingest: %w", err)
		}
		if s.Sharding != nil {
			// New documents get shard assignments; existing ones stay
			// frozen so prior scatter placements remain valid.
			s.Sharding.Extend(add)
		}
	}
	for _, d := range update {
		if s.Views != nil {
			res.InvalidatedRows += s.Views.Invalidate(d.ID)
		}
		if err := s.Store.UpdateDoc(d); err != nil {
			return nil, fmt.Errorf("unify: ingest: %w", err)
		}
	}
	res.Generation = s.Store.Generation()
	res.Docs = s.Store.Len()
	s.PreprocessDur += time.Since(start)
	if s.Metrics != nil {
		s.Metrics.RecordIngest(res.Added, res.Updated, res.Generation)
		if s.Views != nil {
			vs := s.Views.Stats()
			s.Metrics.RecordViews(vs.Columns, vs.Rows, vs.Hits, vs.Misses, vs.Backfills, vs.Invalidated)
		}
	}
	return res, nil
}

// TrainSCE learns the importance function from historical predicates
// derived from the dataset's concept classes (the paper's offline phase).
func (s *System) TrainSCE(ctx context.Context) error {
	var preds []string
	for i, name := range lexicon.Names(s.Dataset.CatClass) {
		if i%3 == 0 { // a small, representative historical workload
			preds = append(preds, "related to "+name)
		}
	}
	for i, name := range lexicon.Names(s.Dataset.AspectClass) {
		if i%3 == 0 {
			preds = append(preds, "related to "+name)
		}
	}
	return s.Estimator.Train(ctx, preds, 24)
}

// Plan generates and optimizes the physical plan for a query without
// executing it (EXPLAIN-style). The returned duration is the simulated
// planning + estimation latency. It accepts the same options as Query;
// WithTimeout and WithModeOverride apply, the rest are execution-only.
func (s *System) Plan(ctx context.Context, q string, opts ...QueryOption) (*core.Plan, time.Duration, error) {
	o := buildQueryOptions(opts)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	if resolveLanguage(o.Language, q) == LangUSQL {
		compiled, canonical, err := s.compileUSQL(q)
		if err != nil {
			return nil, 0, err
		}
		plan, ostats, err := s.optimizerFor(o).OptimizeParsed(ctx, canonical, compiled)
		if err != nil {
			return nil, 0, fmt.Errorf("unify: optimizing %q: %w", q, err)
		}
		return plan, ostats.Duration / time.Duration(s.Config.Slots), nil
	}
	plans, pstats, err := s.Planner.GeneratePlans(ctx, q)
	if err != nil {
		return nil, 0, fmt.Errorf("unify: planning %q: %w", q, err)
	}
	plan, ostats, err := s.optimizerFor(o).Optimize(ctx, plans)
	if err != nil {
		return nil, 0, fmt.Errorf("unify: optimizing %q: %w", q, err)
	}
	return plan, pstats.Duration + ostats.Duration/time.Duration(s.Config.Slots), nil
}

// DetectLanguage reports which dialect auto-detection treats a query
// string as: LangUSQL when its first token is SELECT (case-insensitive),
// LangNL otherwise. It never returns LangAuto.
func DetectLanguage(q string) Language {
	if usql.Detect(q) {
		return LangUSQL
	}
	return LangNL
}

// resolveLanguage applies the auto-detection rule: an explicit choice
// wins, otherwise DetectLanguage decides.
func resolveLanguage(l Language, q string) Language {
	if l != LangAuto {
		return l
	}
	return DetectLanguage(q)
}

// compileUSQL parses and compiles a USQL statement against this
// system's dataset, returning the logical plan and the canonical query
// text (the exact plan-cache key input). Errors carry byte positions
// from internal/usql.
func (s *System) compileUSQL(q string) (*core.Plan, string, error) {
	uq, err := usql.Parse(q)
	if err != nil {
		return nil, "", fmt.Errorf("unify: parsing %q: %w", q, err)
	}
	plan, err := usql.Compile(uq, usql.Env{Dataset: s.Dataset.Name, Entity: s.Dataset.EntityWord})
	if err != nil {
		return nil, "", fmt.Errorf("unify: compiling %q: %w", q, err)
	}
	return plan, uq.String(), nil
}

// optimizerFor resolves a per-query optimizer-mode override to a shallow
// per-mode view of the shared optimizer (cache-safe: plan signatures
// include the mode).
func (s *System) optimizerFor(o QueryOptions) *optimizer.Optimizer {
	if o.Mode == nil || *o.Mode == s.Optimizer.Mode {
		return s.Optimizer
	}
	return s.Optimizer.WithMode(*o.Mode)
}

// Query answers one natural-language analytics query end to end:
// logical plan generation, physical optimization, parallel execution on
// the shared slot pool.
//
// Options set a per-query deadline (WithTimeout), slot-grant priority
// (WithPriority), optimizer-strategy override (WithModeOverride), and
// EXPLAIN ANALYZE capture (WithAnalyze). Installing a tracer in ctx
// (obs.WithTracer) also captures the query's full span tree in
// Answer.Trace — one span per planning iteration, optimizer phase, and
// executed plan node, with LLM calls as leaves. Without a tracer the
// span plumbing is nil and costs nothing.
func (s *System) Query(ctx context.Context, q string, opts ...QueryOption) (*Answer, error) {
	o := buildQueryOptions(opts)
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	// A tracer is installed for Analyze, and also whenever the trace
	// store retains history — stored traces need a real span tree even
	// when the caller did not ask for EXPLAIN ANALYZE output.
	if obs.TracerFrom(ctx) == nil && (o.Analyze || s.Traces != nil) {
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	qspan := obs.TracerFrom(ctx).Start("query", obs.KindQuery)
	qspan.SetAttr("query", q)
	defer qspan.End()

	// Admission to the shared slot pool happens up front: queries whose
	// lifetimes overlap share a virtual epoch and contend for the same
	// simulated machine.
	tk := s.Pool.Admit(o.Priority)
	defer s.Pool.Release(tk)
	ctx = sched.WithTicket(ctx, tk)

	// The request id keys the trace store and the slow-query log: the
	// serving layer's id when one rode in on the context, otherwise one
	// minted from the admission sequence (deterministic per run).
	rid := obs.RequestIDFrom(ctx)
	if rid == "" {
		rid = fmt.Sprintf("t-%d", tk.Seq()+1)
	}
	qspan.SetAttr("request_id", rid)

	ans, err := s.query(ctx, q, qspan, o)
	if err != nil {
		s.Metrics.RecordQueryFailed()
		qspan.SetAttr("error", err.Error())
		qspan.End()
		s.retainTrace(rid, tk.Seq(), "error", q, 0, 0, 0, qspan)
		return nil, err
	}
	ans.RequestID = rid
	ans.Profile.RequestID = rid
	ans.Trace = qspan
	qspan.End() // freeze the tree before it is stored
	// Registry first, profiler second: the profile.global_bound
	// invariant relies on profile counters never leading the globals.
	s.recordQueryMetrics(ans)
	s.Profiler.Record(ans.Profile)
	s.retainTrace(rid, tk.Seq(), "ok", q, ans.TotalDur, ans.LLMCalls, len(ans.Nodes), qspan)
	s.observeSlow(q, ans)
	if s.Config.StrictChecks {
		if err := s.checkProfileBound(q, qspan); err != nil {
			return nil, err
		}
	}
	return ans, nil
}

// retainTrace stores a completed query's span tree in the trace store
// (no-op when retention is disabled) and refreshes the store gauges.
func (s *System) retainTrace(id string, seq int64, status, q string, vtime time.Duration, llmCalls, operators int, root *obs.Span) {
	if s.Traces == nil || root == nil {
		return
	}
	s.Traces.Put(id, seq, status, q, vtime, llmCalls, operators, root)
	if s.Metrics != nil {
		s.Metrics.RecordTraceStore(s.Traces.Len(), s.Traces.Evicted())
	}
}

// observeSlow feeds a completed query to the slow-query log.
func (s *System) observeSlow(q string, ans *Answer) {
	slow := s.SlowLog.Observe(obs.SlowRecord{
		RequestID:   ans.RequestID,
		Query:       q,
		Status:      "ok",
		VTime:       ans.TotalDur,
		GrantWait:   ans.SlotGrantWait,
		LLMCalls:    ans.LLMCalls,
		CachedCalls: ans.CachedLLMCalls,
		Operators:   len(ans.Nodes),
		Contended:   ans.Contended,
	})
	if slow && s.Metrics != nil {
		s.Metrics.RecordSlowQuery()
	}
}

// checkProfileBound validates the profile.global_bound invariant:
// cumulative profile counters may never exceed the matching process-
// global registry counters. The profile side is read first — profiles
// are recorded after the globals, so under concurrent queries the
// profile may lag the registry but never lead it.
func (s *System) checkProfileBound(q string, qspan *obs.Span) error {
	if s.Profiler == nil || s.Metrics == nil || s.Metrics.Reg == nil {
		return nil
	}
	tot := s.Profiler.Totals()
	queries := s.Profiler.Queries()
	vtotal := s.Profiler.TotalVTime()
	reg := s.Metrics.Reg
	pairs := []check.CounterPair{
		{Name: "llm_calls", Profile: float64(tot.LLMCalls + tot.CachedCalls), Global: reg.Total("unify_llm_calls_total")},
		{Name: "cached_calls", Profile: float64(tot.CachedCalls), Global: reg.Total("unify_llm_cached_calls_total")},
		{Name: "in_tokens", Profile: float64(tot.InTokens), Global: reg.Total("unify_llm_in_tokens_total")},
		{Name: "out_tokens", Profile: float64(tot.OutTokens), Global: reg.Total("unify_llm_out_tokens_total")},
		{Name: "skipped_docs", Profile: float64(tot.SkippedDocs), Global: reg.Total("unify_exec_skipped_docs_total")},
		{Name: "retries", Profile: float64(tot.Retries), Global: reg.Total("unify_llm_retries_total")},
		{Name: "queries", Profile: float64(queries), Global: reg.Value("unify_queries_total", "ok")},
		{Name: "vtime_seconds", Profile: vtotal.Seconds(), Global: reg.HistogramSum("unify_query_vtime_seconds")},
	}
	return check.Fail(fmt.Sprintf("unify: cumulative profile after %q", q),
		check.ProfileGlobalBound(pairs), qspan)
}

func (s *System) query(ctx context.Context, q string, qspan *obs.Span, o QueryOptions) (*Answer, error) {
	lang := resolveLanguage(o.Language, q)
	var (
		plans     []*core.Plan
		pstats    *core.PlanStats
		canonical string // canonical USQL text; "" on the planner route
	)
	if lang == LangUSQL {
		// The parsed route: deterministic scan/parse/compile straight to
		// the logical DAG — no planner LLM calls, zero planning vtime.
		pspan := qspan.StartChild("parse", obs.KindPhase)
		compiled, canon, err := s.compileUSQL(q)
		if err != nil {
			return nil, err
		}
		canonical = canon
		pspan.SetAttr("lang", "usql")
		pspan.SetAttr("canonical", canonical)
		pspan.End()
		plans = []*core.Plan{compiled}
		pstats = &core.PlanStats{}
	} else {
		pspan := qspan.StartChild("planning", obs.KindPhase)
		var err error
		plans, pstats, err = s.Planner.GeneratePlans(obs.WithSpan(ctx, pspan), q)
		if err != nil {
			return nil, fmt.Errorf("unify: planning %q: %w", q, err)
		}
		pspan.SetVDur(pstats.Duration)
		pspan.End()
	}
	if s.Config.StrictChecks {
		for i, lp := range plans {
			if err := check.Fail(fmt.Sprintf("unify: logical plan %d for %q", i, q),
				check.Plan(lp, s.Store.Len(), false), qspan); err != nil {
				return nil, err
			}
		}
	}

	opt := s.optimizerFor(o)
	executor := s.Executor
	if opt != s.Optimizer && executor.Replanner != nil {
		// Replanning must use the same mode the query optimized under.
		cp := *executor
		cp.Replanner = opt
		executor = &cp
	}

	ospan := qspan.StartChild("optimize", obs.KindPhase)
	var (
		plan   *core.Plan
		ostats *optimizer.Stats
		err    error
	)
	if canonical != "" {
		// Exact plan-cache key over the canonical text: repeated
		// parameterized USQL traffic always hits.
		plan, ostats, err = opt.OptimizeParsed(obs.WithSpan(ctx, ospan), canonical, plans[0])
	} else {
		plan, ostats, err = opt.Optimize(obs.WithSpan(ctx, ospan), plans)
	}
	if err != nil {
		return nil, fmt.Errorf("unify: optimizing %q: %w", q, err)
	}
	// SCE judgments parallelize across the slot pool.
	estDur := ostats.Duration / time.Duration(s.Config.Slots)
	ospan.SetVDur(estDur)
	ospan.SetInt("llm_calls", len(ostats.Calls))
	ospan.SetAttr("est_cost", ostats.EstimatedCost.String())
	ospan.End()

	espan := qspan.StartChild("execute", obs.KindPhase)
	res, err := executor.Run(obs.WithSpan(ctx, espan), plan)
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("unify: executing %q: %w", q, ctx.Err())
		}
		// Plan adjustment at the system level: dynamic replanning via
		// the Generate fallback rather than a complete restart.
		fb := fallbackPlan(q)
		espan.SetAttr("replanned", "true")
		res, err = executor.Run(obs.WithSpan(ctx, espan), fb)
		if err != nil {
			return nil, fmt.Errorf("unify: executing %q: %w", q, err)
		}
		plan = fb
		pstats.Fallback = true
	}
	espan.SetVDur(res.Makespan)
	espan.SetInt("llm_calls", res.LLMCalls)
	espan.SetAttr("slot_busy", res.SlotBusy.Round(time.Millisecond).String())
	if res.Contended {
		espan.SetAttr("contended", "true")
		espan.SetAttr("grant_wait", res.GrantWait.Round(time.Millisecond).String())
	}
	if res.BatchedCalls > 0 {
		espan.SetInt("batched_calls", res.BatchedCalls)
	}
	if res.ViewHits > 0 {
		espan.SetInt("view_hits", res.ViewHits)
	}
	espan.End()

	ans := &Answer{
		Value:         res.Answer,
		Plan:          plan,
		Lang:          lang,
		PlanningDur:   pstats.Duration,
		EstimationDur: estDur,
		ExecDur:       res.Makespan,
		SerialExecDur: res.Serial,
		LLMCalls:      len(pstats.Calls) + len(ostats.Calls) + res.LLMCalls,
		Fallback:      pstats.Fallback,
		Adjusted:      res.Adjusted,
		SkippedDocs:   res.SkippedDocs,
		Partial:       res.SkippedDocs > 0,
		ViewHits:      res.ViewHits,
		Replans:       res.Replans,
	}
	ans.PlanCacheHit = ostats.PlanCacheHit
	ans.CachedLLMCalls = res.CachedLLMCalls
	for _, c := range pstats.Calls {
		if c.Cached {
			ans.CachedLLMCalls++
		}
	}
	for _, c := range ostats.Calls {
		if c.Cached {
			ans.CachedLLMCalls++
		}
	}
	ans.Unresolved = pstats.Unresolved
	for _, nr := range res.Nodes {
		var busy time.Duration
		for _, c := range nr.Calls {
			busy += c.Dur
		}
		busy += nr.PreDur
		ans.Nodes = append(ans.Nodes, NodeStat{
			NodeID:   nr.NodeID,
			Op:       nr.Op,
			Physical: nr.Phys,
			InCard:   nr.InCard,
			OutCard:  nr.Value.Len(),
			LLMCalls: len(nr.Calls),
			Busy:     busy,
		})
	}
	ans.TotalDur = ans.PlanningDur + ans.EstimationDur + ans.ExecDur
	ans.Text = s.FormatValue(res.Answer)
	qspan.SetVDur(ans.TotalDur)
	ans.planCalls = append(append([]llm.Call(nil), pstats.Calls...), ostats.Calls...)
	ans.execCalls = execCalls(res)
	ans.SlotBusy = res.SlotBusy
	ans.SlotGrantWait = res.GrantWait
	ans.SoloExecDur = res.SoloMakespan
	ans.SchedStart = res.PoolStart
	ans.Contended = res.Contended
	ans.BatchedCalls = res.BatchedCalls

	// Per-operator cost attribution: phase classes plus one class per
	// operator identity (Op/Phys). Attribute splits the execution
	// makespan across operator classes proportionally to busy time, so
	// the class shares sum exactly to TotalDur.
	prof := obs.NewCostProfile("")
	prof.Add(obs.ClassPlanning, callCost(pstats.Calls, pstats.Duration))
	prof.Add(obs.ClassOptimize, callCost(ostats.Calls, estDur))
	var busyTotal time.Duration
	for i, nr := range res.Nodes {
		c := callCost(nr.Calls, ans.Nodes[i].Busy)
		c.SkippedDocs = nr.SkippedDocs
		c.GrantWait = nr.GrantWait
		prof.Add(nr.Op+"/"+nr.Phys, c)
		busyTotal += ans.Nodes[i].Busy
	}
	if res.Replans > 0 {
		prof.Add(obs.ClassReplan, obs.OpCost{Executions: res.Replans, Busy: res.ReplanDur})
		busyTotal += res.ReplanDur
	}
	prof.Attribute(ans.PlanningDur, ans.EstimationDur, ans.ExecDur)
	ans.Profile = prof
	// Stamp each operator span with its share of the query total (the
	// per-node view of the same attribution).
	if busyTotal > 0 && ans.TotalDur > 0 {
		for i := range res.Nodes {
			frac := float64(ans.Nodes[i].Busy) / float64(busyTotal) *
				float64(ans.ExecDur) / float64(ans.TotalDur)
			res.Nodes[i].Span.SetAttr("vtime_share", fmt.Sprintf("%.1f%%", 100*frac))
		}
	}

	if s.Config.StrictChecks {
		scanned := 0
		for _, ns := range ans.Nodes {
			scanned += ns.InCard
		}
		facts := check.AnswerFacts{
			Docs:           s.Store.Len(),
			Slots:          s.clusterSlots(),
			MaxReplans:     executor.MaxReplans,
			PlanNodes:      len(plan.Nodes),
			NodeStats:      len(ans.Nodes),
			ScannedDocs:    scanned,
			SkippedDocs:    ans.SkippedDocs,
			Replans:        ans.Replans,
			LLMCalls:       ans.LLMCalls,
			CachedLLMCalls: ans.CachedLLMCalls,
			PlanningDur:    ans.PlanningDur,
			EstimationDur:  ans.EstimationDur,
			ExecDur:        ans.ExecDur,
			TotalDur:       ans.TotalDur,
			SoloExecDur:    ans.SoloExecDur,
			SlotBusy:       ans.SlotBusy,
			GrantWait:      ans.SlotGrantWait,
		}
		if err := check.Fail(fmt.Sprintf("unify: answer for %q", q), check.Answer(facts), qspan); err != nil {
			return nil, err
		}
		if err := check.Fail(fmt.Sprintf("unify: cost profile for %q", q),
			check.ProfileAttribution(ans.Profile, ans.TotalDur), qspan); err != nil {
			return nil, err
		}
		if s.Views != nil {
			// Replay every view row this query served against the live
			// content hashes: a stale row reaching an answer is a
			// views.column_fresh violation.
			stale := s.Views.AuditServed(s.Store.ContentHash)
			if err := check.Fail(fmt.Sprintf("unify: view rows served for %q", q),
				check.ViewsFresh(stale), qspan); err != nil {
				return nil, err
			}
		}
	}
	return ans, nil
}

// callCost folds one phase's or node's call log into an OpCost. The
// convention matches the profiler: LLMCalls counts model invocations
// that did real work, CachedCalls counts invocations served by the
// shared response cache.
func callCost(calls []llm.Call, busy time.Duration) obs.OpCost {
	c := obs.OpCost{Executions: 1, Busy: busy}
	for _, call := range calls {
		if call.Cached {
			c.CachedCalls++
		} else {
			c.LLMCalls++
		}
		c.InTokens += call.InTokens
		c.OutTokens += call.OutTokens
		c.Retries += call.Retries
	}
	return c
}

// execCalls flattens the per-node call logs of one execution.
func execCalls(res *exec.Result) []llm.Call {
	var out []llm.Call
	for _, nr := range res.Nodes {
		out = append(out, nr.Calls...)
	}
	return out
}

// recordQueryMetrics charges a completed query to the metrics registry.
func (s *System) recordQueryMetrics(ans *Answer) {
	m := s.Metrics
	if m == nil {
		return
	}
	m.RecordQueryOK(ans.RequestID, ans.TotalDur, ans.PlanningDur+ans.EstimationDur, ans.ExecDur)
	m.RecordOpCosts(ans.Profile)
	for _, c := range ans.planCalls {
		m.RecordCall(c.Task, c.InTokens, c.OutTokens)
		if c.Cached {
			m.LLMCachedCalls.IncL(callTask(c))
		}
	}
	for _, c := range ans.execCalls {
		m.RecordCall(c.Task, c.InTokens, c.OutTokens)
		if c.Cached {
			m.LLMCachedCalls.IncL(callTask(c))
		}
	}
	if ans.Fallback {
		m.PlanFallbacks.Inc()
	}
	if ans.Adjusted {
		m.PlanAdjustments.Inc()
	}
	if ans.PlanCacheHit {
		m.PlanCacheHits.Inc()
	}
	m.RecordDegradation(ans.Replans, ans.SkippedDocs)
	m.RecordSlots(ans.SlotBusy, ans.ExecDur, s.clusterSlots())
	m.RecordGrantWait(ans.RequestID, ans.SlotGrantWait)
	if s.Pool != nil {
		ps := s.Pool.Stats()
		m.RecordPool(ps.Active, ps.Utilization)
		if ps.Machines > 1 {
			active := make([]int, len(ps.PerMachine))
			util := make([]float64, len(ps.PerMachine))
			for i, pm := range ps.PerMachine {
				active[i] = pm.Active
				util[i] = pm.Utilization
			}
			m.RecordPoolMachines(active, util)
		}
		if s.Config.Batching {
			m.RecordBatching(ps.BatchGrants, ps.BatchedUnits, ps.BatchOccupancy, ps.BatchSavedVTime)
		}
	}
	if s.Views != nil {
		vs := s.Views.Stats()
		m.RecordViews(vs.Columns, vs.Rows, vs.Hits, vs.Misses, vs.Backfills, vs.Invalidated)
	}
	m.RecordCacheSize(s.Cache.Bytes(), s.Cache.Len())
	for _, cli := range []llm.Client{s.PlannerClient, s.WorkerClient} {
		if sim := llm.SimOf(cli); sim != nil {
			calls, unique := sim.Stats()
			m.RecordSimStats(sim.Profile().Name, calls, unique)
		}
	}
}

// clusterSlots is the cluster-wide slot count: the per-machine Slots
// times the cluster width (identical to Slots on single-machine
// systems, so their accounting is untouched).
func (s *System) clusterSlots() int {
	m := s.Config.Machines
	if m < 1 {
		m = 1
	}
	return s.Config.Slots * m
}

// callTask normalizes a call's task label for metrics.
func callTask(c llm.Call) string {
	if c.Task == "" {
		return "unknown"
	}
	return c.Task
}

// CacheStats snapshots the shared cache's per-layer counters (empty when
// the cache is disabled).
func (s *System) CacheStats() map[string]cache.Stats {
	return s.Cache.LayerStats()
}

// FormatValue renders a value as an answer string, resolving document ids
// to titles.
func (s *System) FormatValue(v values.Value) string {
	if v.Kind == values.Docs {
		titles := make([]string, 0, len(v.DocIDs))
		for _, id := range v.DocIDs {
			if d, ok := s.Store.Doc(id); ok {
				titles = append(titles, d.Title)
			}
		}
		return strings.Join(titles, ", ")
	}
	return v.String()
}

// fallbackPlan is the single-node RAG fallback used when an optimized
// plan cannot be executed.
func fallbackPlan(q string) *core.Plan {
	return &core.Plan{
		Query: q,
		Nodes: []*core.Node{{
			ID:     0,
			Op:     "Generate",
			LR:     "answer [Condition] from context",
			Args:   map[string]string{"Condition": q},
			Inputs: []string{"dataset"},
			OutVar: "v1",
			Desc:   "generated answer",
			Phys:   "Generate",
		}},
	}
}
