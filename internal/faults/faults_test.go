package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"unify/internal/llm"
)

// echo is a minimal deterministic backend.
type echo struct {
	mu    sync.Mutex
	calls int
}

func (e *echo) Complete(ctx context.Context, prompt string) (llm.Response, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	return llm.Response{Text: "yes yes no", Dur: time.Second, OutTokens: 3}, nil
}

func (e *echo) Profile() llm.Profile {
	return llm.Profile{Name: "echo", Base: 200 * time.Millisecond}
}

func prompt(task string, i int) string {
	return llm.BuildPrompt(task, map[string]string{"doc": fmt.Sprintf("doc %d", i)})
}

// run sends n filter_doc prompts through a fresh injector built from the
// plan and returns the per-call outcomes as a signature string.
func run(t *testing.T, plan *Plan, n int) (string, *Client, *echo) {
	t.Helper()
	backend := &echo{}
	c := New(backend, plan, nil)
	var sig strings.Builder
	for i := 0; i < n; i++ {
		resp, err := c.Complete(context.Background(), prompt("filter_doc", i))
		switch {
		case err != nil:
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("call %d: non-fault error %v", i, err)
			}
			fmt.Fprintf(&sig, "%s;", fe.Kind)
		default:
			fmt.Fprintf(&sig, "ok(%v,%q);", resp.Dur, resp.Text)
		}
	}
	return sig.String(), c, backend
}

func TestInjectionDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		plan := Uniform(kind, 0.3, 99, "filter_doc")
		a, ca, _ := run(t, plan, 200)
		b, cb, _ := run(t, plan, 200)
		if a != b {
			t.Errorf("%s: same plan produced different outcomes", kind)
		}
		if ca.Injected() != cb.Injected() {
			t.Errorf("%s: injected %d vs %d", kind, ca.Injected(), cb.Injected())
		}
		if ca.Injected() == 0 {
			t.Errorf("%s: nothing injected at rate 0.3 over 200 calls", kind)
		}
	}
}

func TestSeedChangesDraws(t *testing.T) {
	a, _, _ := run(t, Uniform(Transient, 0.3, 1, "filter_doc"), 200)
	b, _, _ := run(t, Uniform(Transient, 0.3, 2, "filter_doc"), 200)
	if a == b {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestRetriesDrawFresh(t *testing.T) {
	// At rate 1 every call faults; occurrence indexing still advances so
	// two sends of the same prompt are distinct decisions.
	c := New(&echo{}, Uniform(Transient, 1, 7, "filter_doc"), nil)
	p := prompt("filter_doc", 0)
	if _, err := c.Complete(context.Background(), p); err == nil {
		t.Fatal("want injected fault")
	}
	if _, err := c.Complete(context.Background(), p); err == nil {
		t.Fatal("want injected fault on retry too")
	}
	if got := c.Stats()[Transient]; got != 2 {
		t.Errorf("transient count = %d, want 2", got)
	}
}

func TestTransientFault(t *testing.T) {
	backend := &echo{}
	c := New(backend, Uniform(Transient, 1, 3, "filter_doc"), nil)
	_, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("err = %v", err)
	}
	if !llm.IsTransient(err) {
		t.Error("transient fault must be retryable")
	}
	if backend.calls != 0 {
		t.Error("transient fault must not reach the backend")
	}
	if d := llm.FaultDurOf(err, backend.Profile()); d != backend.Profile().Base {
		t.Errorf("fault dur = %v, want one base round trip", d)
	}
}

func TestTimeoutFault(t *testing.T) {
	plan := &Plan{Seed: 3, Rules: []Rule{{Kind: Timeout, Rate: 1, Tasks: []string{"filter_doc"}, Latency: 5 * time.Second}}}
	c := New(&echo{}, plan, nil)
	_, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, llm.ErrTransient) {
		t.Fatalf("err = %v, want deadline-exceeded transient", err)
	}
	if d := llm.FaultDurOf(err, llm.Profile{Base: time.Millisecond}); d != 5*time.Second {
		t.Errorf("timeout must cost its full deadline, got %v", d)
	}
}

func TestSlowFault(t *testing.T) {
	plan := &Plan{Seed: 3, Rules: []Rule{{Kind: Slow, Rate: 1, Tasks: []string{"filter_doc"}, Factor: 4}}}
	c := New(&echo{}, plan, nil)
	resp, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dur != 4*time.Second {
		t.Errorf("dur = %v, want 4x", resp.Dur)
	}
	if resp.Text != "yes yes no" {
		t.Error("slow faults must not corrupt the response")
	}
}

func TestSlowFaultSkipsCachedResponses(t *testing.T) {
	cachedBackend := clientFunc(func(ctx context.Context, p string) (llm.Response, error) {
		return llm.Response{Text: "hit", Cached: true}, nil
	})
	c := New(cachedBackend, Uniform(Slow, 1, 3, "filter_doc"), nil)
	resp, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dur != 0 || c.Injected() != 0 {
		t.Errorf("cache hits must dodge slow faults: dur=%v injected=%d", resp.Dur, c.Injected())
	}
}

func TestGarbageFault(t *testing.T) {
	c := New(&echo{}, Uniform(Garbage, 1, 3, "filter_doc"), nil)
	resp, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "garbled") || resp.Text == "yes yes no" {
		t.Errorf("text = %q, want corrupted", resp.Text)
	}
}

func TestTaskScoping(t *testing.T) {
	c := New(&echo{}, Uniform(Transient, 1, 3, "classify_doc"), nil)
	if _, err := c.Complete(context.Background(), prompt("filter_doc", 0)); err != nil {
		t.Errorf("rule for classify_doc hit filter_doc: %v", err)
	}
	if _, err := c.Complete(context.Background(), prompt("classify_doc", 0)); err == nil {
		t.Error("rule for classify_doc missed classify_doc")
	}
}

func TestNilPlanPassesThrough(t *testing.T) {
	backend := &echo{}
	c := New(backend, nil, nil)
	resp, err := c.Complete(context.Background(), prompt("filter_doc", 0))
	if err != nil || resp.Text != "yes yes no" {
		t.Errorf("pass-through broken: %v %q", err, resp.Text)
	}
	if c.Injected() != 0 {
		t.Error("nil plan injected faults")
	}
}

func TestOnInjectHook(t *testing.T) {
	var mu sync.Mutex
	got := map[Kind]int{}
	c := New(&echo{}, Uniform(Transient, 1, 3, "filter_doc"), func(kind Kind, task string) {
		mu.Lock()
		got[kind]++
		mu.Unlock()
		if task != "filter_doc" {
			t.Errorf("task = %q", task)
		}
	})
	c.Complete(context.Background(), prompt("filter_doc", 0))
	if got[Transient] != 1 {
		t.Errorf("hook counts = %v", got)
	}
}

// clientFunc adapts a function to llm.Client.
type clientFunc func(context.Context, string) (llm.Response, error)

func (f clientFunc) Complete(ctx context.Context, p string) (llm.Response, error) { return f(ctx, p) }
func (f clientFunc) Profile() llm.Profile                                         { return llm.Profile{Name: "func"} }

func TestInjectionRateApproximatesTarget(t *testing.T) {
	const n, rate = 2000, 0.10
	_, c, _ := run(t, Uniform(Transient, rate, 11, "filter_doc"), n)
	got := float64(c.Injected()) / n
	if got < 0.07 || got > 0.13 {
		t.Errorf("observed rate %.3f, want ~%.2f", got, rate)
	}
}
