// Package faults provides seeded, deterministic fault injection for the
// LLM client stack — the failure-testing harness behind the executor's
// resilience machinery (paper §V treats runtime surprises as expected
// operating conditions, not exceptions).
//
// An injector wraps any llm.Client and perturbs calls according to a
// Plan: per task family and per rate it drops requests with transient
// errors, expires per-call deadlines, multiplies latencies (slow-slot
// spikes), or garbles response text (malformed task outputs). Every
// decision is keyed by (seed, rule, prompt, occurrence), so a given run
// replays bit-for-bit while retries of the same prompt see fresh draws —
// exactly what a deterministic failure test suite needs.
//
// The injector composes with the other client wrappers. The system
// installs it above the response cache and below the retry layer:
//
//	Sim → Cached → faults.Client → llm.Resilient → per-node Recorder
//
// so cached entries are never poisoned by garbage responses and every
// logical call (hit or miss) is exposed to serving-path faults.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"unify/internal/llm"
)

// Kind enumerates the injectable fault classes.
type Kind string

// Fault kinds.
const (
	// Transient drops the request with a retryable error before it
	// reaches the model.
	Transient Kind = "transient"
	// Timeout expires the call's deadline: a retryable error that costs
	// the full per-call timeout in virtual time.
	Timeout Kind = "timeout"
	// Slow multiplies the response's simulated duration — a latency
	// spike on the serving slot (the response itself is intact).
	Slow Kind = "slow"
	// Garbage corrupts the response text so downstream parsing fails —
	// the malformed-output failure mode of real models.
	Garbage Kind = "garbage"
)

// Kinds lists every fault class (for sweeps and matrix tests).
func Kinds() []Kind { return []Kind{Transient, Timeout, Slow, Garbage} }

// Rule injects one fault kind at a given rate into a set of task
// families.
type Rule struct {
	Kind Kind
	// Rate is the per-call injection probability in [0,1].
	Rate float64
	// Tasks restricts the rule to these prompt task families; empty
	// matches every call.
	Tasks []string
	// Factor is the latency multiplier for Slow faults (default 8).
	Factor float64
	// Latency is the virtual cost of a Timeout fault (default 2s).
	Latency time.Duration
}

func (r *Rule) applies(task string) bool {
	if len(r.Tasks) == 0 {
		return true
	}
	for _, t := range r.Tasks {
		if t == task {
			return true
		}
	}
	return false
}

// Plan is a seeded fault-injection configuration.
type Plan struct {
	// Seed drives every injection decision; two injectors with the same
	// plan perturb identical call sequences identically.
	Seed  uint64
	Rules []Rule
}

// OperatorTasks lists the task families issued by physical operators
// during execution (as opposed to planner/optimizer tasks) — the usual
// injection surface for executor-resilience experiments.
var OperatorTasks = []string{
	"filter_doc", "filter_batch", "filter_label",
	"classify_doc", "classify_batch",
	"extract_doc", "extract_batch",
	"agg_list", "compare_vals", "compute", "generate",
}

// Uniform returns a single-rule plan injecting one fault kind at the
// given rate into the given task families (all tasks when none given).
func Uniform(kind Kind, rate float64, seed uint64, tasks ...string) *Plan {
	return &Plan{Seed: seed, Rules: []Rule{{Kind: kind, Rate: rate, Tasks: tasks}}}
}

// Error is an injected failure. It wraps llm.ErrTransient (and, for
// timeouts, context.DeadlineExceeded) so retry logic classifies it
// correctly, and carries the virtual duration the failed attempt
// consumed.
type Error struct {
	Kind Kind
	Task string
	VDur time.Duration
	err  error
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s fault (task %s): %v", e.Kind, e.Task, e.err)
}

// Unwrap exposes the wrapped sentinel chain to errors.Is.
func (e *Error) Unwrap() error { return e.err }

// FaultDur implements llm.DurationCarrier: the virtual time the failed
// attempt occupied before erroring.
func (e *Error) FaultDur() time.Duration { return e.VDur }

// Client is a fault-injecting llm.Client wrapper.
type Client struct {
	inner llm.Client
	plan  *Plan
	// onInject observes every injected fault; nil is ignored.
	onInject func(kind Kind, task string)

	mu       sync.Mutex
	disabled bool
	occ      map[string]int // prompt → times seen (retries draw fresh faults)

	statsMu sync.Mutex
	stats   map[Kind]int64
}

// SetEnabled toggles injection at runtime. The system disables the
// injector during offline phases (SCE training) so faults only perturb
// query serving.
func (c *Client) SetEnabled(on bool) {
	c.mu.Lock()
	c.disabled = !on
	c.mu.Unlock()
}

func (c *Client) enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.disabled
}

// New wraps inner with fault injection under plan. A nil or empty plan
// yields a pass-through wrapper. onInject may be nil.
func New(inner llm.Client, plan *Plan, onInject func(kind Kind, task string)) *Client {
	return &Client{inner: inner, plan: plan, onInject: onInject,
		occ: map[string]int{}, stats: map[Kind]int64{}}
}

// Stats returns the per-kind injected-fault counts so far.
func (c *Client) Stats() map[Kind]int64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	out := make(map[Kind]int64, len(c.stats))
	for k, v := range c.stats {
		out[k] = v
	}
	return out
}

// Injected returns the total number of injected faults.
func (c *Client) Injected() int64 {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	var n int64
	for _, v := range c.stats {
		n += v
	}
	return n
}

func (c *Client) record(kind Kind, task string) {
	c.statsMu.Lock()
	c.stats[kind]++
	c.statsMu.Unlock()
	if c.onInject != nil {
		c.onInject(kind, task)
	}
}

// nextOcc returns the occurrence index of this prompt (0 on first sight),
// so retried calls roll fresh, but still deterministic, fault draws.
func (c *Client) nextOcc(prompt string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.occ[prompt]
	c.occ[prompt] = n + 1
	return n
}

// draw is a deterministic pseudo-random draw in [0,1) keyed by the
// decision identity, tested against rate.
func draw(seed uint64, rule int, prompt string, occ int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|", seed, rule, occ)
	h.Write([]byte(prompt))
	return float64(h.Sum64()>>11)/(1<<53) < rate
}

// Complete implements llm.Client. The first matching rule whose draw
// fires decides the call's fate; otherwise the call passes through.
func (c *Client) Complete(ctx context.Context, prompt string) (llm.Response, error) {
	if c.plan == nil || len(c.plan.Rules) == 0 || !c.enabled() {
		return c.inner.Complete(ctx, prompt)
	}
	task, _, _ := llm.ParsePrompt(prompt)
	occ := c.nextOcc(prompt)
	for ri := range c.plan.Rules {
		r := &c.plan.Rules[ri]
		if !r.applies(task) || !draw(c.plan.Seed, ri, prompt, occ, r.Rate) {
			continue
		}
		switch r.Kind {
		case Transient:
			c.record(Transient, task)
			return llm.Response{}, &Error{Kind: Transient, Task: task,
				VDur: c.inner.Profile().Base, err: llm.ErrTransient}
		case Timeout:
			c.record(Timeout, task)
			lat := r.Latency
			if lat <= 0 {
				lat = 2 * time.Second
			}
			return llm.Response{}, &Error{Kind: Timeout, Task: task, VDur: lat,
				err: fmt.Errorf("%w: %w", llm.ErrTransient, context.DeadlineExceeded)}
		case Slow:
			resp, err := c.inner.Complete(ctx, prompt)
			if err != nil || resp.Cached {
				return resp, err
			}
			c.record(Slow, task)
			f := r.Factor
			if f <= 1 {
				f = 8
			}
			resp.Dur = time.Duration(float64(resp.Dur) * f)
			return resp, nil
		case Garbage:
			resp, err := c.inner.Complete(ctx, prompt)
			if err != nil {
				return resp, err
			}
			c.record(Garbage, task)
			resp.Text = garble(resp.Text)
			resp.OutTokens = llm.CountTokens(resp.Text)
			return resp, nil
		}
	}
	return c.inner.Complete(ctx, prompt)
}

// garble corrupts a response deterministically: it truncates the text and
// appends junk, breaking verdict counts, JSON shapes, and numeric parses
// downstream without ever being ambiguous about whether it happened.
func garble(text string) string {
	half := text[:len(text)/2]
	return half + " ?!garbled-output!?"
}

// Profile implements llm.Client.
func (c *Client) Profile() llm.Profile { return c.inner.Profile() }

// Unwrap returns the wrapped client.
func (c *Client) Unwrap() llm.Client { return c.inner }

var _ llm.Client = (*Client)(nil)
