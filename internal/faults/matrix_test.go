package faults_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/faults"
	"unify/internal/llm"
	"unify/internal/ops"
	"unify/internal/workload"
)

// typedError reports whether a query failure is one of the system's
// typed error classes — every failure under injection must be explained,
// never a bare string invented at the failure site.
func typedError(err error) bool {
	var fe *faults.Error
	var te *llm.TaskError
	return llm.IsTransient(err) ||
		errors.Is(err, llm.ErrMalformed) ||
		errors.Is(err, llm.ErrUnknownTask) ||
		errors.Is(err, ops.ErrBadOutput) ||
		errors.Is(err, context.Canceled) ||
		errors.As(err, &fe) ||
		errors.As(err, &te)
}

// TestFaultMatrix sweeps fault kind x rate x seed over a slice of the
// example workload. Under every configuration each query must either
// complete or fail with a typed error within its deadline — no hangs, no
// panics, no mystery strings (run under -race in CI).
func TestFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep is slow")
	}
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)
	if len(queries) > 6 {
		queries = queries[:6]
	}

	for _, kind := range faults.Kinds() {
		for _, rate := range []float64{0.1, 0.5} {
			for _, seed := range []uint64{1, 2} {
				kind, rate, seed := kind, rate, seed
				t.Run(fmt.Sprintf("%s_r%.1f_s%d", kind, rate, seed), func(t *testing.T) {
					t.Parallel()
					sys, err := unify.OpenDataset(ds, unify.Config{
						Dataset:         ds.Name,
						FaultPlan:       faults.Uniform(kind, rate, seed, faults.OperatorTasks...),
						MaxRetries:      3,
						NodeErrorBudget: 2,
						ReplanThreshold: 3,
					})
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
						ans, err := sys.Query(ctx, q.Text)
						cancel()
						if err != nil {
							if !typedError(err) {
								t.Errorf("%q: untyped failure: %v", q.Text, err)
							}
							continue
						}
						if ans.Text == "" && ans.Value.Len() == 0 && !ans.Partial {
							// Empty answers are fine; the point is the
							// query terminated with a well-formed Answer.
							_ = ans
						}
					}
				})
			}
		}
	}
}

// TestFaultMatrixDeterministic re-runs one faulty configuration and
// requires identical answers and identical injection counts.
func TestFaultMatrixDeterministic(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)[:3]
	run := func() ([]string, int64) {
		sys, err := unify.OpenDataset(ds, unify.Config{
			Dataset:         ds.Name,
			FaultPlan:       faults.Uniform(faults.Transient, 0.2, 7, faults.OperatorTasks...),
			MaxRetries:      3,
			NodeErrorBudget: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var texts []string
		for _, q := range queries {
			ans, err := sys.Query(context.Background(), q.Text)
			if err != nil {
				texts = append(texts, "error:"+fmt.Sprint(typedError(err)))
				continue
			}
			texts = append(texts, ans.Text)
		}
		return texts, sys.Injector.Injected()
	}
	texts1, inj1 := run()
	texts2, inj2 := run()
	if inj1 != inj2 {
		t.Errorf("injection counts differ: %d vs %d", inj1, inj2)
	}
	for i := range texts1 {
		if texts1[i] != texts2[i] {
			t.Errorf("query %d: %q vs %q", i, texts1[i], texts2[i])
		}
	}
}

// TestFaultToleranceAccuracy is the acceptance bar: at a 10% transient
// rate on operator calls with retries and budgets enabled, workload
// accuracy stays within 5 points of the fault-free run.
func TestFaultToleranceAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep is slow")
	}
	ds, err := corpus.GenerateN("sports", 300)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.Generate(ds, 1, 42)
	score := func(plan *faults.Plan) float64 {
		sys, err := unify.OpenDataset(ds, unify.Config{
			Dataset:         ds.Name,
			TrainSCE:        true,
			FaultPlan:       plan,
			MaxRetries:      3,
			NodeErrorBudget: 2,
			ReplanThreshold: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for _, q := range queries {
			ans, err := sys.Query(context.Background(), q.Text)
			if err != nil {
				continue
			}
			if workload.Score(q, ans.Text) {
				correct++
			}
		}
		return float64(correct) / float64(len(queries))
	}
	clean := score(nil)
	faulty := score(faults.Uniform(faults.Transient, 0.10, 1109, faults.OperatorTasks...))
	if drop := clean - faulty; drop > 0.05 {
		t.Errorf("accuracy dropped %.1f points under 10%% transient faults (clean %.2f, faulty %.2f)",
			100*drop, clean, faulty)
	}
}
