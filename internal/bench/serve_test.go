package bench

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunServeBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench smoke is slow")
	}
	old := ServeLevels
	ServeLevels = []int{1, 4}
	defer func() { ServeLevels = old }()

	cfg := Config{Datasets: []string{"sports"}, Size: 200, PerTemplate: 1, Seed: 7}
	res, err := RunServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if res.Slots <= 0 {
		t.Fatalf("slots = %d, want > 0", res.Slots)
	}
	for _, p := range res.Points {
		if p.Errors > 0 {
			t.Errorf("concurrency %d: %d errors", p.Concurrency, p.Errors)
		}
		if p.Utilization <= 0 || p.Utilization > 1.0000001 {
			t.Errorf("concurrency %d: utilization %f out of (0, 1]", p.Concurrency, p.Utilization)
		}
		if p.MeanSlowdown < 0.999999 {
			t.Errorf("concurrency %d: mean slowdown %f < 1", p.Concurrency, p.MeanSlowdown)
		}
		if p.P95Secs < p.P50Secs {
			t.Errorf("concurrency %d: p95 %f < p50 %f", p.Concurrency, p.P95Secs, p.P50Secs)
		}
	}
	solo, loaded := res.Points[0], res.Points[1]
	if loaded.MeanSlowdown < solo.MeanSlowdown {
		t.Errorf("slowdown should not shrink under load: solo %f, loaded %f",
			solo.MeanSlowdown, loaded.MeanSlowdown)
	}
	var sb strings.Builder
	PrintServeBench(&sb, res)
	if !strings.Contains(sb.String(), "Serving sweep") {
		t.Errorf("PrintServeBench output missing header:\n%s", sb.String())
	}
}

// TestServeArtifactParses keeps the checked-in BENCH_serve.json honest:
// it must stay parseable and cover the 1..16 sweep.
func TestServeArtifactParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Skipf("BENCH_serve.json not present: %v", err)
	}
	var res ServeResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_serve.json does not parse: %v", err)
	}
	if res.Dataset == "" || res.Slots <= 0 || res.Queries <= 0 {
		t.Fatalf("BENCH_serve.json missing header fields: %+v", res)
	}
	if len(res.Points) < 5 {
		t.Fatalf("BENCH_serve.json has %d points, want the 1..16 sweep", len(res.Points))
	}
	want := []int{1, 2, 4, 8, 16}
	for i, p := range res.Points {
		if p.Concurrency != want[i] {
			t.Errorf("point %d: concurrency = %d, want %d", i, p.Concurrency, want[i])
		}
		if p.Utilization <= 0 || p.Utilization > 1.0000001 {
			t.Errorf("concurrency %d: utilization %f out of (0, 1]", p.Concurrency, p.Utilization)
		}
		if p.MeanSlowdown < 0.999999 {
			t.Errorf("concurrency %d: mean slowdown %f < 1", p.Concurrency, p.MeanSlowdown)
		}
	}
}
