package bench

import (
	"context"
	"fmt"
	"io"

	"unify"
	"unify/internal/corpus"
	"unify/internal/sched"
	"unify/internal/workload"
)

// BatchPoint is one offered-concurrency level of the continuous-batching
// experiment: the same query batch driven with batching off and on.
type BatchPoint struct {
	Concurrency int `json:"concurrency"`
	Queries     int `json:"queries"`

	// Virtual-time throughput at this level, batching off vs on, and the
	// resulting improvement ratio (on / off).
	OffQueriesPerVSec float64 `json:"off_queries_per_vsec"`
	OnQueriesPerVSec  float64 `json:"on_queries_per_vsec"`
	Improvement       float64 `json:"improvement"`

	// Mean latency per query (virtual seconds), off vs on.
	OffMeanSecs float64 `json:"off_mean_secs"`
	OnMeanSecs  float64 `json:"on_mean_secs"`

	// Slot utilization over the measured span, off vs on. Coalescing
	// reduces slot demand (k chains ride one grant), so the on-side
	// utilization shows whether the offered concurrency kept the pool
	// saturated after batching freed capacity.
	OffUtilization float64 `json:"off_utilization"`
	OnUtilization  float64 `json:"on_utilization"`

	// BatchOccupancy is the mean members per batchable slot grant in the
	// batching-on run (1.0 = no coalescing ever happened); BatchedCalls
	// counts calls that rode multi-member invocations; SavedVTimeSecs is
	// the slot busy time coalescing eliminated.
	BatchOccupancy float64 `json:"batch_occupancy"`
	BatchedCalls   int64   `json:"batched_calls"`
	MaxBatchSize   int     `json:"max_batch_size"`
	SavedVTimeSecs float64 `json:"saved_vtime_secs"`

	// AnswersIdentical reports that the off and on runs produced
	// byte-identical answer text for every query. The run fails if false.
	AnswersIdentical bool `json:"answers_identical"`
}

// BatchResult is the continuous-batching benchmark report.
type BatchResult struct {
	Dataset      string       `json:"dataset"`
	Slots        int          `json:"slots"`
	Queries      int          `json:"queries"`
	WindowSecs   float64      `json:"window_secs"`
	FairnessSecs float64      `json:"fairness_cap_secs"`
	MaxBatch     int          `json:"max_batch"`
	Points       []BatchPoint `json:"points"`
}

// BatchLevels is the batching sweep: the saturated end of the serving
// sweep, where cross-query coalescing has partners to find.
var BatchLevels = []int{8, 16}

// RunBatchBench drives the workload at saturating concurrency twice per
// level — batching off, then on — on fresh systems with the cache
// disabled. It fails if any answer text differs between the two runs:
// batching must move virtual time only, never results.
//
// Each system first runs the workload once sequentially and then freezes
// its cost calibrator. Without the freeze, concurrent queries feed the
// shared calibrator in racy wall-clock completion order, and a
// knife-edge query can flip between equally-good plans from run to run —
// noise that has nothing to do with batching but would trip the
// byte-identity check. The warmup pass is identical on both sides (call
// durations are schedule-independent), so both sides freeze on the same
// statistics and plan choice becomes a pure function of query text.
func RunBatchBench(ctx context.Context, cfg Config) (*BatchResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
	if cfg.MaxQueries > 0 && len(queries) > cfg.MaxQueries {
		queries = queries[:cfg.MaxQueries]
	}
	res := &BatchResult{
		Dataset:      name,
		Queries:      len(queries),
		WindowSecs:   unify.DefaultBatchWindow.Seconds(),
		FairnessSecs: unify.DefaultBatchFairnessCap.Seconds(),
		MaxBatch:     unify.DefaultMaxBatch,
	}

	open := func(batching bool) (*unify.System, error) {
		opts := []unify.Option{
			unify.WithCorpus(ds),
			unify.WithDataset(name),
			unify.WithTrainSCE(),
			unify.WithCacheBytes(-1),
		}
		if batching {
			opts = append(opts, unify.WithBatching())
		}
		return unify.New(opts...)
	}

	for _, c := range BatchLevels {
		off, err := open(false)
		if err != nil {
			return nil, err
		}
		res.Slots = off.Config.Slots
		offPt, offTexts, _, err := batchLevel(ctx, off, queries, c)
		if err != nil {
			return nil, err
		}
		on, err := open(true)
		if err != nil {
			return nil, err
		}
		onPt, onTexts, onWarm, err := batchLevel(ctx, on, queries, c)
		if err != nil {
			return nil, err
		}

		pt := BatchPoint{
			Concurrency:       c,
			Queries:           len(queries),
			OffQueriesPerVSec: offPt.QueriesPerVSec,
			OnQueriesPerVSec:  onPt.QueriesPerVSec,
			OffMeanSecs:       offPt.MeanSecs,
			OnMeanSecs:        onPt.MeanSecs,
			OffUtilization:    offPt.Utilization,
			OnUtilization:     onPt.Utilization,
			AnswersIdentical:  true,
		}
		if pt.OffQueriesPerVSec > 0 {
			pt.Improvement = pt.OnQueriesPerVSec / pt.OffQueriesPerVSec
		}
		// Batch counters cover the pool's lifetime; subtract the sequential
		// warmup pass (all singleton grants) so the point reports the
		// measured concurrent run only.
		ps := on.Pool.Stats()
		grants := ps.BatchGrants - onWarm.BatchGrants
		units := ps.BatchedUnits - onWarm.BatchedUnits
		if grants > 0 {
			pt.BatchOccupancy = float64(units) / float64(grants)
		}
		pt.BatchedCalls = units
		pt.MaxBatchSize = ps.MaxBatchSize
		pt.SavedVTimeSecs = (ps.BatchSavedVTime - onWarm.BatchSavedVTime).Seconds()

		for i := range offTexts {
			if offTexts[i] != onTexts[i] {
				pt.AnswersIdentical = false
				return nil, fmt.Errorf("bench: answer %d diverged under batching at concurrency %d:\n  off: %s\n  on:  %s",
					i, c, offTexts[i], onTexts[i])
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// batchLevel warms the system with one sequential pass, freezes the cost
// model, then reuses the serving driver for the measured concurrent run,
// capturing every answer's text for the off/on byte-identity comparison.
// The returned Stats snapshot is the pool state at the measurement
// boundary, for delta-correcting lifetime counters.
func batchLevel(ctx context.Context, sys *unify.System, queries []workload.Query, c int) (ServePoint, []string, sched.Stats, error) {
	for _, q := range queries {
		if _, err := sys.Query(ctx, q.Text); err != nil {
			return ServePoint{}, nil, sched.Stats{}, fmt.Errorf("bench: warmup query %s: %w", q.ID, err)
		}
	}
	sys.Calib.Freeze()
	warm := sys.Pool.Stats()

	texts := make([]string, len(queries))
	pt, err := serveLevelCapture(ctx, sys, queries, c, texts)
	if err != nil {
		return pt, nil, warm, err
	}
	// Throughput and utilization over the measured span only, not the
	// pool lifetime that includes the warmup pass.
	ps := sys.Pool.Stats()
	if span := ps.SpanVTime - warm.SpanVTime; span > 0 {
		pt.WindowSecs = span.Seconds()
		pt.QueriesPerVSec = float64(pt.Queries-pt.Errors) / span.Seconds()
		pt.Utilization = float64(ps.BusyTotal-warm.BusyTotal) /
			(float64(span) * float64(ps.Slots) * float64(ps.Machines))
	}
	return pt, texts, warm, nil
}

// PrintBatchBench renders the batching sweep.
func PrintBatchBench(w io.Writer, r *BatchResult) {
	fmt.Fprintf(w, "Continuous batching sweep — %s, %d queries per level, %d slots, window %.2fs cap %.1fs max %d\n",
		r.Dataset, r.Queries, r.Slots, r.WindowSecs, r.FairnessSecs, r.MaxBatch)
	fmt.Fprintf(w, "  %5s %12s %12s %8s %9s %9s %10s %9s %7s %9s\n",
		"conc", "off q/vsec", "on q/vsec", "speedup", "off-util", "on-util", "occupancy", "batched", "maxsz", "saved")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %5d %12.3f %12.3f %7.2fx %9.2f %9.2f %10.2f %9d %7d %8.1fs\n",
			p.Concurrency, p.OffQueriesPerVSec, p.OnQueriesPerVSec, p.Improvement,
			p.OffUtilization, p.OnUtilization, p.BatchOccupancy, p.BatchedCalls, p.MaxBatchSize, p.SavedVTimeSecs)
	}
}
