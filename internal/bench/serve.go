package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/workload"
)

// ServePoint is one offered-concurrency level of the serving benchmark.
type ServePoint struct {
	// Concurrency is the number of client workers driving the system.
	Concurrency int `json:"concurrency"`
	Queries     int `json:"queries"`
	Errors      int `json:"errors,omitempty"`

	// Latency distribution of simulated end-to-end query time.
	P50Secs  float64 `json:"p50_secs"`
	P95Secs  float64 `json:"p95_secs"`
	MeanSecs float64 `json:"mean_secs"`

	// MeanGrantWaitSecs is the average simulated wait for slot grants.
	MeanGrantWaitSecs float64 `json:"mean_grant_wait_secs"`
	// MeanSlowdown is the average ExecDur / SoloExecDur ratio: 1.0 when
	// nothing contends, growing with queueing on the shared pool.
	MeanSlowdown float64 `json:"mean_slowdown"`
	// Contended counts queries that shared slots with others.
	Contended int `json:"contended"`

	// Utilization is the pool's aggregate slot utilization over the
	// level's full virtual span (busy / (span * slots), structurally <= 1).
	Utilization float64 `json:"utilization"`
	// WindowSecs is the virtual span the pool scheduled over and
	// QueriesPerVSec the virtual-time throughput.
	WindowSecs     float64 `json:"window_secs"`
	QueriesPerVSec float64 `json:"queries_per_vsec"`
}

// ServeResult is the serving benchmark report: the same query batch
// driven at increasing offered concurrency against the 4-slot machine.
type ServeResult struct {
	Dataset string       `json:"dataset"`
	Slots   int          `json:"slots"`
	Queries int          `json:"queries"`
	Points  []ServePoint `json:"points"`
}

// ServeLevels is the default offered-concurrency sweep.
var ServeLevels = []int{1, 2, 4, 8, 16}

// RunServeBench sweeps offered concurrency over the first configured
// dataset. Each level gets a fresh system (fresh virtual clock and slot
// pool) with the response cache disabled, so every level schedules the
// same honest slot work and differences come purely from contention.
func RunServeBench(ctx context.Context, cfg Config) (*ServeResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
	res := &ServeResult{Dataset: name, Queries: len(queries)}

	for _, c := range ServeLevels {
		sys, err := unify.New(
			unify.WithCorpus(ds),
			unify.WithDataset(name),
			unify.WithTrainSCE(),
			unify.WithCacheBytes(-1),
		)
		if err != nil {
			return nil, err
		}
		res.Slots = sys.Config.Slots
		pt, err := serveLevel(ctx, sys, queries, c)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// serveLevel drives the query batch through c concurrent workers.
func serveLevel(ctx context.Context, sys *unify.System, queries []workload.Query, c int) (ServePoint, error) {
	return serveLevelCapture(ctx, sys, queries, c, nil)
}

// serveLevelCapture is serveLevel with an optional answer-text sink
// (len(queries) slots) for byte-identity comparisons across runs.
func serveLevelCapture(ctx context.Context, sys *unify.System, queries []workload.Query, c int, texts []string) (ServePoint, error) {
	pt := ServePoint{Concurrency: c, Queries: len(queries)}
	type outcome struct {
		ans *unify.Answer
		err error
	}
	results := make([]outcome, len(queries))
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range queries {
			next <- i
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ans, err := sys.Query(ctx, queries[i].Text)
				results[i] = outcome{ans, err}
			}
		}()
	}
	wg.Wait()

	var lats []time.Duration
	var totalLat, totalWait time.Duration
	var slowdown float64
	for i, oc := range results {
		if oc.err != nil {
			pt.Errors++
			continue
		}
		a := oc.ans
		if texts != nil {
			texts[i] = a.Text
		}
		lats = append(lats, a.TotalDur)
		totalLat += a.TotalDur
		totalWait += a.SlotGrantWait
		if a.SoloExecDur > 0 {
			slowdown += float64(a.ExecDur) / float64(a.SoloExecDur)
		} else {
			slowdown += 1
		}
		if a.Contended {
			pt.Contended++
		}
	}
	n := len(lats)
	if n == 0 {
		return pt, fmt.Errorf("bench: all %d queries failed at concurrency %d", len(queries), c)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.P50Secs = lats[n/2].Seconds()
	pt.P95Secs = lats[min(n-1, n*95/100)].Seconds()
	pt.MeanSecs = totalLat.Seconds() / float64(n)
	pt.MeanGrantWaitSecs = totalWait.Seconds() / float64(n)
	pt.MeanSlowdown = slowdown / float64(n)

	// Utilization comes from the pool's own accounting: the scheduler's
	// slot busy time over the virtual span it actually scheduled across.
	ps := sys.Pool.Stats()
	pt.Utilization = ps.CumUtilization
	if ps.SpanVTime > 0 {
		pt.WindowSecs = ps.SpanVTime.Seconds()
		pt.QueriesPerVSec = float64(n) / ps.SpanVTime.Seconds()
	}
	return pt, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrintServeBench renders the serving sweep.
func PrintServeBench(w io.Writer, r *ServeResult) {
	fmt.Fprintf(w, "Serving sweep — %s, %d queries per level, %d slots\n", r.Dataset, r.Queries, r.Slots)
	fmt.Fprintf(w, "  %5s %9s %9s %9s %11s %9s %6s %9s\n",
		"conc", "p50", "p95", "mean", "grant-wait", "slowdown", "util", "q/vsec")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %5d %8.1fs %8.1fs %8.1fs %10.1fs %8.2fx %6.2f %9.3f\n",
			p.Concurrency, p.P50Secs, p.P95Secs, p.MeanSecs,
			p.MeanGrantWaitSecs, p.MeanSlowdown, p.Utilization, p.QueriesPerVSec)
	}
}
