// Package bench regenerates the paper's evaluation artifacts: Figure 4
// (accuracy and latency of seven methods over four datasets), Table III
// (q-errors of semantic cardinality estimation), Figure 5(a) (logical
// optimization) and Figure 5(b) (physical optimization). Each experiment
// returns structured rows and can render the same series the paper plots.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"unify"
	"unify/internal/baselines"
	"unify/internal/corpus"
	"unify/internal/optimizer"
	"unify/internal/sce"
	"unify/internal/workload"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Datasets to run (default: all four).
	Datasets []string
	// Size overrides corpus sizes (0 = the paper's document counts).
	Size int
	// PerTemplate is the number of instances per query template
	// (paper: 5 → 100 queries per dataset).
	PerTemplate int
	// Seed drives workload sampling.
	Seed int64
	// Methods restricts Figure 4 to a subset (default: all seven).
	Methods []string
	// SampleFrac is the SCE budget for Table III (paper: 1%).
	SampleFrac float64
	// ScaleMachines is the cluster-width sweep for the scale experiment
	// (default 1, 2, 4, 8; must include 1, the speedup baseline).
	ScaleMachines []int
	// MaxQueries caps the per-width query batch of the scale experiment
	// (0 = the full generated workload).
	MaxQueries int
}

func (c *Config) defaults() {
	if len(c.Datasets) == 0 {
		c.Datasets = corpus.Names()
	}
	if c.PerTemplate == 0 {
		c.PerTemplate = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Methods) == 0 {
		c.Methods = []string{"RAG", "RecurRAG", "LLMPlan", "Sample", "Exhaust", "Manual", "Unify"}
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.01
	}
	if len(c.ScaleMachines) == 0 {
		c.ScaleMachines = []int{1, 2, 4, 8}
	}
}

// MethodScore is one bar of Figure 4: a method's accuracy and average
// latency on one dataset.
type MethodScore struct {
	Dataset  string
	Method   string
	Accuracy float64
	// AvgLatency is the mean end-to-end simulated latency per query.
	AvgLatency time.Duration
	// AvgPlanning, AvgEstimation, and AvgExec break the Unify latency
	// into its phases (semantic parsing + plan reduction, cardinality
	// estimation + physical lowering, and DAG execution); zero for the
	// baseline methods, which have no planner.
	AvgPlanning   time.Duration
	AvgEstimation time.Duration
	AvgExec       time.Duration
	Queries       int
}

// MarshalJSON renders durations in seconds so the artifacts JSON carries
// a readable per-phase latency breakdown instead of raw nanoseconds.
func (m MethodScore) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Dataset           string  `json:"dataset"`
		Method            string  `json:"method"`
		Accuracy          float64 `json:"accuracy"`
		AvgLatencySecs    float64 `json:"avg_latency_secs"`
		AvgPlanningSecs   float64 `json:"avg_planning_secs"`
		AvgEstimationSecs float64 `json:"avg_estimation_secs"`
		AvgExecSecs       float64 `json:"avg_exec_secs"`
		Queries           int     `json:"queries"`
	}{
		Dataset:           m.Dataset,
		Method:            m.Method,
		Accuracy:          m.Accuracy,
		AvgLatencySecs:    m.AvgLatency.Seconds(),
		AvgPlanningSecs:   m.AvgPlanning.Seconds(),
		AvgEstimationSecs: m.AvgEstimation.Seconds(),
		AvgExecSecs:       m.AvgExec.Seconds(),
		Queries:           m.Queries,
	})
}

// unifyBaseline adapts a Unify system to the Baseline interface.
type unifyBaseline struct {
	sys *unify.System
	// Per-phase accumulators for the latency breakdown.
	planning   time.Duration
	estimation time.Duration
	exec       time.Duration
	queries    int
}

func (u *unifyBaseline) Name() string { return "Unify" }

func (u *unifyBaseline) Run(ctx context.Context, query string) (baselines.Result, error) {
	ans, err := u.sys.Query(ctx, query)
	if err != nil {
		return baselines.Result{}, err
	}
	u.planning += ans.PlanningDur
	u.estimation += ans.EstimationDur
	u.exec += ans.ExecDur
	u.queries++
	return baselines.Result{Text: ans.Text, Latency: ans.TotalDur, LLMCalls: ans.LLMCalls}, nil
}

// openSystem builds the standard Unify system for a dataset.
func openSystem(ds *corpus.Dataset, mode optimizer.Mode) (*unify.System, error) {
	return unify.OpenDataset(ds, unify.Config{Dataset: ds.Name, Mode: mode, TrainSCE: true})
}

// buildBaseline constructs a named method over a dataset.
func buildBaseline(name string, ds *corpus.Dataset, sys *unify.System) (baselines.Baseline, error) {
	store := sys.Store
	worker := sys.WorkerClient
	planner := sys.PlannerClient
	switch name {
	case "RAG":
		return baselines.NewRAG(store, worker), nil
	case "RecurRAG":
		return baselines.NewRecurRAG(store, worker), nil
	case "LLMPlan":
		return baselines.NewLLMPlan(store, worker), nil
	case "Sample":
		return baselines.NewSample(store, worker), nil
	case "Exhaust":
		return baselines.NewExhaust(store, planner, worker), nil
	case "Manual":
		return baselines.NewManual(store, worker), nil
	case "Unify":
		return &unifyBaseline{sys: sys}, nil
	default:
		return nil, fmt.Errorf("bench: unknown method %q", name)
	}
}

// RunFig4 evaluates every method on every dataset, producing the bars of
// Figure 4(a)-(h).
func RunFig4(ctx context.Context, cfg Config) ([]MethodScore, error) {
	cfg.defaults()
	var out []MethodScore
	for _, name := range cfg.Datasets {
		size := cfg.Size
		if size == 0 {
			size = corpus.DefaultSize(name)
		}
		ds, err := corpus.GenerateN(name, size)
		if err != nil {
			return nil, err
		}
		queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
		sys, err := openSystem(ds, optimizer.CostBased)
		if err != nil {
			return nil, err
		}
		for _, method := range cfg.Methods {
			b, err := buildBaseline(method, ds, sys)
			if err != nil {
				return nil, err
			}
			score := MethodScore{Dataset: name, Method: method, Queries: len(queries)}
			correct := 0
			var total time.Duration
			for _, q := range queries {
				res, err := b.Run(ctx, q.Text)
				if err != nil {
					// A failed query counts as incorrect with the
					// latency it consumed before failing.
					continue
				}
				if workload.Score(q, res.Text) {
					correct++
				}
				total += res.Latency
			}
			score.Accuracy = float64(correct) / float64(len(queries))
			score.AvgLatency = total / time.Duration(len(queries))
			if ub, ok := b.(*unifyBaseline); ok && ub.queries > 0 {
				n := time.Duration(ub.queries)
				score.AvgPlanning = ub.planning / n
				score.AvgEstimation = ub.estimation / n
				score.AvgExec = ub.exec / n
			}
			out = append(out, score)
		}
	}
	return out, nil
}

// PrintFig4 renders the Figure 4 rows as two tables (accuracy, latency).
func PrintFig4(w io.Writer, rows []MethodScore) {
	byDS := map[string][]MethodScore{}
	var dsOrder []string
	for _, r := range rows {
		if _, ok := byDS[r.Dataset]; !ok {
			dsOrder = append(dsOrder, r.Dataset)
		}
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	fmt.Fprintln(w, "Figure 4(a)-(d): accuracy (%)")
	for _, ds := range dsOrder {
		fmt.Fprintf(w, "  %-8s", ds)
		for _, r := range byDS[ds] {
			fmt.Fprintf(w, " %s=%.0f%%", r.Method, 100*r.Accuracy)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Figure 4(e)-(h): average latency (minutes)")
	for _, ds := range dsOrder {
		fmt.Fprintf(w, "  %-8s", ds)
		for _, r := range byDS[ds] {
			fmt.Fprintf(w, " %s=%.2f", r.Method, r.AvgLatency.Minutes())
		}
		fmt.Fprintln(w)
	}
	for _, ds := range dsOrder {
		for _, r := range byDS[ds] {
			if r.AvgPlanning == 0 && r.AvgEstimation == 0 && r.AvgExec == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-8s %s phases: planning=%.1fs estimation=%.1fs execution=%.1fs\n",
				ds, r.Method, r.AvgPlanning.Seconds(), r.AvgEstimation.Seconds(), r.AvgExec.Seconds())
		}
	}
}

// QErrorRow is one row of Table III.
type QErrorRow struct {
	Dataset string
	Method  sce.Method
	P50     float64
	P95     float64
	P99     float64
	Max     float64
	Preds   int
}

// RunTable3 evaluates the four SCE methods on the Sports and AI datasets
// (paper Table III) with a 1% sample budget.
func RunTable3(ctx context.Context, cfg Config) ([]QErrorRow, error) {
	cfg.defaults()
	datasets := []string{"sports", "ai"}
	if len(cfg.Datasets) > 0 && cfg.Datasets[0] != "" && len(cfg.Datasets) <= 2 {
		datasets = cfg.Datasets
	}
	var out []QErrorRow
	for _, name := range datasets {
		size := cfg.Size
		if size == 0 {
			size = corpus.DefaultSize(name)
		}
		ds, err := corpus.GenerateN(name, size)
		if err != nil {
			return nil, err
		}
		sys, err := openSystem(ds, optimizer.CostBased)
		if err != nil {
			return nil, err
		}
		queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
		preds := workload.SemanticConditions(queries)
		est := sys.Estimator
		ns := int(cfg.SampleFrac * float64(size))
		// Ground truth: full LLM evaluation of each predicate.
		truths := make(map[string]float64, len(preds))
		for _, p := range preds {
			tc, err := est.TrueCardinality(ctx, p, 16)
			if err != nil {
				return nil, err
			}
			truths[p] = float64(tc)
		}
		const reps = 6 // independent sample draws per predicate
		for _, method := range []sce.Method{sce.Uniform, sce.Stratified, sce.AIS, sce.Unify} {
			var qerrs []float64
			for _, p := range preds {
				for r := 0; r < reps; r++ {
					e, _, err := est.EstimateSeeded(ctx, method, p, ns, fmt.Sprintf("|rep%d", r))
					if err != nil {
						return nil, err
					}
					qerrs = append(qerrs, sce.QError(e, truths[p]))
				}
			}
			sort.Float64s(qerrs)
			out = append(out, QErrorRow{
				Dataset: name,
				Method:  method,
				P50:     pct(qerrs, 50),
				P95:     pct(qerrs, 95),
				P99:     pct(qerrs, 99),
				Max:     qerrs[len(qerrs)-1],
				Preds:   len(preds),
			})
		}
	}
	return out, nil
}

func pct(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// PrintTable3 renders Table III.
func PrintTable3(w io.Writer, rows []QErrorRow) {
	fmt.Fprintln(w, "Table III: q-errors of semantic cardinality estimation")
	fmt.Fprintf(w, "  %-10s %-10s %8s %8s %8s %8s\n", "dataset", "method", "50th", "95th", "99th", "max")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-10s %8.2f %8.2f %8.2f %8.2f\n",
			r.Dataset, r.Method, r.P50, r.P95, r.P99, r.Max)
	}
}

// OptRow is one bar of Figure 5.
type OptRow struct {
	Dataset string
	Variant string
	AvgExec time.Duration
}

// RunFig5a compares DAG-parallel execution (Unify) against sequential
// execution (Unify-noLO) on Sports and Wiki (paper Figure 5a).
func RunFig5a(ctx context.Context, cfg Config) ([]OptRow, error) {
	cfg.defaults()
	datasets := []string{"sports", "wiki"}
	var out []OptRow
	for _, name := range datasets {
		size := cfg.Size
		if size == 0 {
			size = corpus.DefaultSize(name)
		}
		ds, err := corpus.GenerateN(name, size)
		if err != nil {
			return nil, err
		}
		sys, err := openSystem(ds, optimizer.CostBased)
		if err != nil {
			return nil, err
		}
		queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
		var par, ser time.Duration
		n := 0
		for _, q := range queries {
			ans, err := sys.Query(ctx, q.Text)
			if err != nil {
				continue
			}
			par += ans.ExecDur
			ser += ans.SerialExecDur
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out,
			OptRow{Dataset: name, Variant: "Unify", AvgExec: par / time.Duration(n)},
			OptRow{Dataset: name, Variant: "Unify-noLO", AvgExec: ser / time.Duration(n)},
		)
	}
	return out, nil
}

// RunFig5b compares the physical optimization variants: Unify (cost-based
// with SCE), Unify-Rule (no cost-based optimization), and Unify-GD
// (ground-truth cardinalities) — paper Figure 5b.
func RunFig5b(ctx context.Context, cfg Config) ([]OptRow, error) {
	cfg.defaults()
	datasets := []string{"sports", "wiki"}
	var out []OptRow
	for _, name := range datasets {
		size := cfg.Size
		if size == 0 {
			size = corpus.DefaultSize(name)
		}
		ds, err := corpus.GenerateN(name, size)
		if err != nil {
			return nil, err
		}
		queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
		for _, variant := range []struct {
			label string
			mode  optimizer.Mode
		}{
			{"Unify-Rule", optimizer.Rule},
			{"Unify", optimizer.CostBased},
			{"Unify-GD", optimizer.GroundTruth},
		} {
			sys, err := openSystem(ds, variant.mode)
			if err != nil {
				return nil, err
			}
			var total time.Duration
			n := 0
			for _, q := range queries {
				ans, err := sys.Query(ctx, q.Text)
				if err != nil {
					continue
				}
				total += ans.ExecDur
				n++
			}
			if n == 0 {
				continue
			}
			out = append(out, OptRow{Dataset: name, Variant: variant.label, AvgExec: total / time.Duration(n)})
		}
	}
	return out, nil
}

// PrintFig5 renders Figure 5 rows.
func PrintFig5(w io.Writer, title string, rows []OptRow) {
	fmt.Fprintln(w, title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s %-12s avg exec = %.2f min\n", r.Dataset, r.Variant, r.AvgExec.Minutes())
	}
}
