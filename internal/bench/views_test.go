package bench

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunViewsBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("views bench smoke is slow")
	}
	cfg := Config{Datasets: []string{"sports"}, Size: 200, PerTemplate: 1, Seed: 7, MaxQueries: 8}
	res, err := RunViewsBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases = %+v, want populate/warm/post_ingest/post_ingest_warm", res.Phases)
	}
	if res.IngestedDocs != 20 || res.TotalDocs != 220 || res.Generation != 1 {
		t.Errorf("mutation bookkeeping off: %+v", res)
	}
	// RunViewsBench itself enforces these; re-assert so the test fails
	// loudly if the self-checks are ever weakened.
	if res.PostIngestHitRate < 0.9 {
		t.Errorf("post-ingest hit rate %.3f, want >= 0.9", res.PostIngestHitRate)
	}
	if !res.AnswersIdentical {
		t.Error("answers not identical to the cold mutated-corpus run")
	}
	populate, warm := res.Phases[0], res.Phases[1]
	if populate.Backfills == 0 {
		t.Error("populate pass backfilled nothing")
	}
	if warm.HitRate != 1.0 || warm.Backfills != 0 {
		t.Errorf("warm pass should be all hits with no backfills: %+v", warm)
	}
	var sb strings.Builder
	PrintViewsBench(&sb, res)
	if !strings.Contains(sb.String(), "Materialized views across ingest") {
		t.Errorf("PrintViewsBench output missing header:\n%s", sb.String())
	}
}

// TestViewsArtifactParses keeps the checked-in BENCH_views.json honest:
// it must parse, cover all four workload passes, and show the two
// acceptance properties — post-ingest hit rate >= 0.9 and answers
// byte-identical to a cold run on the mutated corpus.
func TestViewsArtifactParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_views.json")
	if err != nil {
		t.Skipf("BENCH_views.json not present: %v", err)
	}
	var res ViewsResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_views.json does not parse: %v", err)
	}
	if res.Dataset == "" || res.BaseDocs <= 0 || res.Queries <= 0 {
		t.Fatalf("artifact missing header fields: %+v", res)
	}
	if res.IngestedDocs == 0 || res.TotalDocs != res.BaseDocs+res.IngestedDocs {
		t.Errorf("ingest bookkeeping off: base %d + added %d != total %d",
			res.BaseDocs, res.IngestedDocs, res.TotalDocs)
	}
	if res.Generation == 0 {
		t.Error("artifact records no corpus mutation")
	}
	if len(res.Phases) != 4 {
		t.Fatalf("artifact has %d phases, want 4", len(res.Phases))
	}
	for i, want := range []string{"populate", "warm", "post_ingest", "post_ingest_warm"} {
		if res.Phases[i].Phase != want {
			t.Errorf("phase %d = %q, want %q", i, res.Phases[i].Phase, want)
		}
	}
	if res.PostIngestHitRate < 0.9 {
		t.Errorf("post-ingest hit rate %.3f, want >= 0.9", res.PostIngestHitRate)
	}
	if !res.AnswersIdentical {
		t.Error("artifact records diverging answers")
	}
}
