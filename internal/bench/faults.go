package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/faults"
	"unify/internal/workload"
)

// FaultRow is one fault-injection configuration evaluated over the
// workload: accuracy and latency under faults versus the fault-free
// baseline of the same sweep.
type FaultRow struct {
	Dataset string `json:"dataset"`
	// Kind is the injected fault class ("none" for the baseline row,
	// "mixed" for the all-kinds row).
	Kind string  `json:"kind"`
	Rate float64 `json:"rate"`

	Accuracy       float64 `json:"accuracy"`
	AvgLatencySecs float64 `json:"avg_latency_secs"`
	Queries        int     `json:"queries"`
	Failed         int     `json:"failed"`

	FaultsInjected int64 `json:"faults_injected"`
	Retries        int64 `json:"retries"`
	RetryExhausted int64 `json:"retry_exhausted"`
	Replans        int64 `json:"replans"`
	SkippedDocs    int64 `json:"skipped_docs"`
	PartialAnswers int   `json:"partial_answers"`
}

// FaultBenchResult is the `-exp faults` artifact: resilience of the full
// pipeline under seeded fault injection at increasing rates.
type FaultBenchResult struct {
	Dataset     string     `json:"dataset"`
	Size        int        `json:"size"`
	PerTemplate int        `json:"per_template"`
	Seed        int64      `json:"seed"`
	Rows        []FaultRow `json:"rows"`
	// AccuracyDrop10 is the accuracy lost at the 10% transient rate
	// relative to fault-free (the acceptance bar is <= 0.05).
	AccuracyDrop10 float64 `json:"accuracy_drop_at_10pct"`
}

// RunFaultBench sweeps transient-fault rates (plus one mixed-kind row)
// over the example workload with retries, error budgets, and replanning
// enabled, measuring how gracefully accuracy degrades.
func RunFaultBench(ctx context.Context, cfg Config) (*FaultBenchResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
	res := &FaultBenchResult{Dataset: name, Size: size, PerTemplate: cfg.PerTemplate, Seed: cfg.Seed}

	type sweep struct {
		kind string
		plan *faults.Plan
	}
	const fseed = 1109
	sweeps := []sweep{{kind: "none"}}
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		sweeps = append(sweeps, sweep{kind: string(faults.Transient),
			plan: faults.Uniform(faults.Transient, rate, fseed, faults.OperatorTasks...)})
	}
	sweeps = append(sweeps, sweep{kind: "mixed", plan: &faults.Plan{Seed: fseed, Rules: []faults.Rule{
		{Kind: faults.Transient, Rate: 0.05, Tasks: faults.OperatorTasks},
		{Kind: faults.Timeout, Rate: 0.02, Tasks: faults.OperatorTasks},
		{Kind: faults.Slow, Rate: 0.05, Tasks: faults.OperatorTasks},
		{Kind: faults.Garbage, Rate: 0.03, Tasks: faults.OperatorTasks},
	}}})

	for _, sw := range sweeps {
		sys, err := unify.OpenDataset(ds, unify.Config{
			Dataset:         ds.Name,
			TrainSCE:        true,
			FaultPlan:       sw.plan,
			MaxRetries:      3,
			NodeErrorBudget: 2,
			ReplanThreshold: 3,
		})
		if err != nil {
			return nil, err
		}
		row := FaultRow{Dataset: name, Kind: sw.kind, Queries: len(queries)}
		if sw.plan != nil && len(sw.plan.Rules) == 1 {
			row.Rate = sw.plan.Rules[0].Rate
		}
		correct := 0
		var total time.Duration
		for _, q := range queries {
			ans, err := sys.Query(ctx, q.Text)
			if err != nil {
				row.Failed++
				continue
			}
			if workload.Score(q, ans.Text) {
				correct++
			}
			if ans.Partial {
				row.PartialAnswers++
			}
			total += ans.TotalDur
		}
		row.Accuracy = float64(correct) / float64(len(queries))
		row.AvgLatencySecs = (total / time.Duration(len(queries))).Seconds()
		if inj := sys.Injector; inj != nil {
			row.FaultsInjected = inj.Injected()
		}
		reg := sys.Metrics.Reg
		row.Retries = int64(reg.Total("unify_llm_retries_total"))
		row.RetryExhausted = int64(reg.Total("unify_llm_retry_exhausted_total"))
		row.Replans = int64(reg.Total("unify_exec_replans_total"))
		row.SkippedDocs = int64(reg.Total("unify_exec_skipped_docs_total"))
		res.Rows = append(res.Rows, row)
	}

	var base, at10 float64
	for _, r := range res.Rows {
		if r.Kind == "none" {
			base = r.Accuracy
		}
		if r.Kind == string(faults.Transient) && r.Rate == 0.10 {
			at10 = r.Accuracy
		}
	}
	res.AccuracyDrop10 = base - at10
	return res, nil
}

// PrintFaultBench renders the fault-injection sweep.
func PrintFaultBench(w io.Writer, res *FaultBenchResult) {
	nq := 0
	if len(res.Rows) > 0 {
		nq = res.Rows[0].Queries
	}
	fmt.Fprintf(w, "Fault injection sweep (%s, %d docs, %d queries):\n",
		res.Dataset, res.Size, nq)
	fmt.Fprintf(w, "  %-10s %5s %9s %9s %7s %8s %7s %7s %7s\n",
		"kind", "rate", "accuracy", "avg_lat", "failed", "faults", "retries", "replans", "skipped")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-10s %5.2f %8.1f%% %8.1fs %7d %8d %7d %7d %7d\n",
			r.Kind, r.Rate, 100*r.Accuracy, r.AvgLatencySecs, r.Failed,
			r.FaultsInjected, r.Retries, r.Replans, r.SkippedDocs)
	}
	fmt.Fprintf(w, "  accuracy drop at 10%% transient rate: %.1f points\n", 100*res.AccuracyDrop10)
}

// WriteFaultBench serializes the artifact JSON.
func WriteFaultBench(res *FaultBenchResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
