package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
	"unify/internal/workload"
)

// USQLConcurrency is the offered concurrency of the USQL-vs-NL bench:
// the saturated end of the serving sweep, where planner virtual time on
// the NL route directly displaces execution.
const USQLConcurrency = 8

// USQLPoint is one round of the USQL-vs-NL benchmark: the same logical
// workload driven through the LLM planner (NL text) and through the
// USQL parser (typed twin), on separate but identically-seeded systems.
type USQLPoint struct {
	// Round is "cold" (first sight of every query: empty plan cache) or
	// "warm" (the same queries re-issued, the parameterized-dashboard
	// traffic pattern the exact USQL cache keys are designed for).
	Round       string `json:"round"`
	Queries     int    `json:"queries"`
	Concurrency int    `json:"concurrency"`

	// Virtual-time throughput, NL-planned vs USQL-parsed, and the ratio
	// (usql / nl). Computed as n / (sum of per-query virtual latency /
	// concurrency): planner time is charged to a per-query planning
	// clock rather than the shared slot pool, so pool span alone would
	// undercount the NL route's cost.
	NLQueriesPerVSec   float64 `json:"nl_queries_per_vsec"`
	USQLQueriesPerVSec float64 `json:"usql_queries_per_vsec"`
	Speedup            float64 `json:"speedup"`

	// Mean end-to-end virtual latency and its planning component.
	NLMeanSecs           float64 `json:"nl_mean_secs"`
	USQLMeanSecs         float64 `json:"usql_mean_secs"`
	NLMeanPlanningSecs   float64 `json:"nl_mean_planning_secs"`
	USQLMeanPlanningSecs float64 `json:"usql_mean_planning_secs"`

	// Plan-cache hit rate over the round. The warm USQL round must be
	// exactly 1.0: canonical-text keys make re-issued parameterized
	// queries byte-equal, so every one hits.
	NLPlanCacheHitRate   float64 `json:"nl_plan_cache_hit_rate"`
	USQLPlanCacheHitRate float64 `json:"usql_plan_cache_hit_rate"`

	// AnswersIdentical reports byte-identical answer text between the
	// two routes for every query in the round. The run fails if false.
	AnswersIdentical bool `json:"answers_identical"`
}

// USQLResult is the USQL-vs-NL benchmark report.
type USQLResult struct {
	Dataset     string `json:"dataset"`
	Slots       int    `json:"slots"`
	Concurrency int    `json:"concurrency"`
	Queries     int    `json:"queries"`
	Templates   int    `json:"templates"`
	// PlannerLLMCalls counts planner-model invocations on the USQL side
	// across both rounds. The run fails unless it is zero: the parser
	// route must never touch the planner.
	PlannerLLMCalls int         `json:"planner_llm_calls"`
	Points          []USQLPoint `json:"points"`
}

// RunUSQLBench measures what the typed frontend buys at saturation: the
// dual-form workload slice runs through an NL-planned system and a
// USQL-parsed one (same corpus, same seeded worker model), cold and
// then warm, at USQLConcurrency. Both cost calibrators are frozen
// before any query so concurrent completion order cannot perturb plan
// choice; the two routes must then produce byte-identical answers, the
// USQL side must make zero planner-LLM calls, beat the NL route's cold
// throughput, and hit the plan cache on 100% of warm queries.
func RunUSQLBench(ctx context.Context, cfg Config) (*USQLResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	var pairs []workload.Query
	for _, q := range workload.Generate(ds, cfg.PerTemplate, cfg.Seed) {
		if q.USQL == "" {
			continue
		}
		pairs = append(pairs, q)
	}
	if cfg.MaxQueries > 0 && len(pairs) > cfg.MaxQueries {
		pairs = pairs[:cfg.MaxQueries]
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("bench: workload has no dual-form (NL+USQL) queries")
	}
	templates := map[int]bool{}
	for _, q := range pairs {
		templates[q.Template] = true
	}

	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	syscfg := unify.Config{Dataset: name, Sim: &sim}
	nl, err := unify.New(unify.WithConfig(syscfg), unify.WithCorpus(ds))
	if err != nil {
		return nil, err
	}
	pcfg := sim
	pcfg.Profile = llm.PlannerProfile()
	prec := llm.NewRecorder(llm.NewSim(pcfg))
	us, err := unify.New(unify.WithConfig(syscfg), unify.WithCorpus(ds),
		unify.WithClients(prec, llm.NewSim(sim)))
	if err != nil {
		return nil, err
	}
	// Freeze both cost models on their identical priors: under
	// concurrency, queries would otherwise feed the calibrator in racy
	// completion order and a knife-edge plan could flip between runs.
	nl.Calib.Freeze()
	us.Calib.Freeze()

	res := &USQLResult{
		Dataset:     name,
		Slots:       nl.Config.Slots,
		Concurrency: USQLConcurrency,
		Queries:     len(pairs),
		Templates:   len(templates),
	}
	for _, round := range []string{"cold", "warm"} {
		nlAns, err := usqlDrive(ctx, nl, pairs, false)
		if err != nil {
			return nil, fmt.Errorf("bench: %s round, NL side: %w", round, err)
		}
		usAns, err := usqlDrive(ctx, us, pairs, true)
		if err != nil {
			return nil, fmt.Errorf("bench: %s round, USQL side: %w", round, err)
		}
		pt := usqlPoint(round, nlAns, usAns)
		for i := range pairs {
			if nlAns[i].Text != usAns[i].Text {
				return nil, fmt.Errorf("bench: %s round, answer diverged for %s:\n  nl:   %s\n  usql: %s",
					round, pairs[i].ID, nlAns[i].Text, usAns[i].Text)
			}
		}
		pt.AnswersIdentical = true
		if round == "warm" && pt.USQLPlanCacheHitRate != 1.0 {
			return nil, fmt.Errorf("bench: warm USQL plan-cache hit rate %.3f, want exactly 1.0",
				pt.USQLPlanCacheHitRate)
		}
		if round == "cold" && pt.Speedup <= 1.0 {
			return nil, fmt.Errorf("bench: cold USQL throughput %.3f q/vsec did not beat NL %.3f q/vsec",
				pt.USQLQueriesPerVSec, pt.NLQueriesPerVSec)
		}
		res.Points = append(res.Points, pt)
	}
	if calls := prec.Calls(); len(calls) != 0 {
		return nil, fmt.Errorf("bench: USQL route made %d planner-LLM calls (first task %q), want 0",
			len(calls), calls[0].Task)
	}
	res.PlannerLLMCalls = 0
	return res, nil
}

// usqlDrive runs every dual-form pair through one system at
// USQLConcurrency — the USQL twin pinned to LangUSQL on the parsed
// side, the NL text otherwise — and returns the answers in input order.
func usqlDrive(ctx context.Context, sys *unify.System, pairs []workload.Query, parsed bool) ([]*unify.Answer, error) {
	answers := make([]*unify.Answer, len(pairs))
	errs := make([]error, len(pairs))
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range pairs {
			next <- i
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < USQLConcurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if parsed {
					answers[i], errs[i] = sys.Query(ctx, pairs[i].USQL, unify.WithLanguage(unify.LangUSQL))
				} else {
					answers[i], errs[i] = sys.Query(ctx, pairs[i].Text)
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", pairs[i].ID, err)
		}
	}
	return answers, nil
}

// usqlPoint aggregates one round's answer pairs into a USQLPoint.
func usqlPoint(round string, nlAns, usAns []*unify.Answer) USQLPoint {
	pt := USQLPoint{Round: round, Queries: len(nlAns), Concurrency: USQLConcurrency}
	var nlTotal, usTotal, nlPlan, usPlan time.Duration
	var nlHits, usHits int
	for i := range nlAns {
		nlTotal += nlAns[i].TotalDur
		usTotal += usAns[i].TotalDur
		nlPlan += nlAns[i].PlanningDur
		usPlan += usAns[i].PlanningDur
		if nlAns[i].PlanCacheHit {
			nlHits++
		}
		if usAns[i].PlanCacheHit {
			usHits++
		}
	}
	n := float64(len(nlAns))
	pt.NLMeanSecs = nlTotal.Seconds() / n
	pt.USQLMeanSecs = usTotal.Seconds() / n
	pt.NLMeanPlanningSecs = nlPlan.Seconds() / n
	pt.USQLMeanPlanningSecs = usPlan.Seconds() / n
	pt.NLPlanCacheHitRate = float64(nlHits) / n
	pt.USQLPlanCacheHitRate = float64(usHits) / n
	if nlTotal > 0 {
		pt.NLQueriesPerVSec = n / (nlTotal.Seconds() / USQLConcurrency)
	}
	if usTotal > 0 {
		pt.USQLQueriesPerVSec = n / (usTotal.Seconds() / USQLConcurrency)
	}
	if pt.NLQueriesPerVSec > 0 {
		pt.Speedup = pt.USQLQueriesPerVSec / pt.NLQueriesPerVSec
	}
	return pt
}

// PrintUSQLBench renders the USQL-vs-NL report.
func PrintUSQLBench(w io.Writer, r *USQLResult) {
	fmt.Fprintf(w, "USQL vs NL planning — %s, %d dual-form queries (%d templates), concurrency %d, %d slots\n",
		r.Dataset, r.Queries, r.Templates, r.Concurrency, r.Slots)
	fmt.Fprintf(w, "  %5s %12s %12s %8s %9s %9s %9s %9s %8s %8s\n",
		"round", "nl q/vsec", "usql q/vsec", "speedup", "nl mean", "usql mean", "nl plan", "usql plan", "nl hit", "usql hit")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %5s %12.3f %12.3f %7.2fx %8.1fs %8.1fs %8.1fs %8.1fs %8.2f %8.2f\n",
			p.Round, p.NLQueriesPerVSec, p.USQLQueriesPerVSec, p.Speedup,
			p.NLMeanSecs, p.USQLMeanSecs, p.NLMeanPlanningSecs, p.USQLMeanPlanningSecs,
			p.NLPlanCacheHitRate, p.USQLPlanCacheHitRate)
	}
	fmt.Fprintf(w, "  planner LLM calls on the USQL route: %d (answers byte-identical both rounds)\n", r.PlannerLLMCalls)
}
