package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
	"unify/internal/views"
	"unify/internal/workload"
)

// ViewsIngestFrac is the fraction of the corpus ingested mid-benchmark:
// the system opens over the base corpus and then grows by 10%.
const ViewsIngestFrac = 0.10

// ViewsPhase is one pass of the workload over the views-enabled system,
// with the view-counter delta attributed to that pass alone.
type ViewsPhase struct {
	// Phase is "populate" (cold first sight: every column backfills),
	// "warm" (same workload re-issued against full columns), or
	// "post_ingest" (the re-run after growing the corpus 10%).
	Phase   string `json:"phase"`
	Queries int    `json:"queries"`

	MeanSecs float64 `json:"mean_secs"`
	LLMCalls int     `json:"llm_calls"`

	// View-counter deltas over this pass.
	ViewHits    int64   `json:"view_hits"`
	ViewMisses  int64   `json:"view_misses"`
	Backfills   int64   `json:"backfills"`
	Invalidated int64   `json:"invalidated"`
	HitRate     float64 `json:"hit_rate"`
}

// ViewsResult is the materialized-views benchmark report.
type ViewsResult struct {
	Dataset      string `json:"dataset"`
	BaseDocs     int    `json:"base_docs"`
	IngestedDocs int    `json:"ingested_docs"`
	TotalDocs    int    `json:"total_docs"`
	Generation   uint64 `json:"generation"`
	Queries      int    `json:"queries"`

	Phases []ViewsPhase `json:"phases"`

	// PostIngestHitRate is the view hit rate across every pass that runs
	// after the ingest (the acceptance figure: unchanged documents keep
	// their rows, so only the 10% of new documents miss, once).
	PostIngestHitRate float64 `json:"post_ingest_hit_rate"`

	// AnswersIdentical reports byte-identical answer text between the
	// warm views system post-ingest and a cold fresh system opened over
	// the mutated corpus. The run fails if false.
	AnswersIdentical bool `json:"answers_identical"`
}

// RunViewsBench measures what materialized semantic views buy across a
// corpus mutation. A views-enabled system opens over the base corpus,
// populates its columns on a cold workload pass, re-runs the workload
// warm, ingests 10% new documents, and re-runs the workload again —
// twice, the repeated-dashboard pattern views are designed for. Rows
// keyed by content hash survive the ingest for the 90% of unchanged
// documents, so the post-ingest hit rate must stay >= 0.9, and every
// post-ingest answer must be byte-identical to a cold run of the same
// workload on a fresh system opened over the mutated corpus.
func RunViewsBench(ctx context.Context, cfg Config) (*ViewsResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	added := int(float64(size)*ViewsIngestFrac + 0.5)
	if added == 0 {
		added = 1
	}
	full, err := corpus.GenerateN(name, size+added)
	if err != nil {
		return nil, err
	}
	base, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(base, cfg.PerTemplate, cfg.Seed)
	if cfg.MaxQueries > 0 && len(queries) > cfg.MaxQueries {
		queries = queries[:cfg.MaxQueries]
	}

	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	syscfg := unify.Config{Dataset: name, Sim: &sim, Views: true}
	sys, err := unify.New(unify.WithConfig(syscfg), unify.WithCorpus(base))
	if err != nil {
		return nil, err
	}
	// Freeze the cost model on its priors so the cold reference system —
	// which sees only one workload pass — plans exactly like the views
	// system on its third.
	sys.Calib.Freeze()

	res := &ViewsResult{
		Dataset:      name,
		BaseDocs:     size,
		IngestedDocs: added,
		TotalDocs:    size + added,
		Queries:      len(queries),
	}

	runPass := func(phase string) ([]*unify.Answer, error) {
		before := sys.Views.Stats()
		answers := make([]*unify.Answer, len(queries))
		var total time.Duration
		calls := 0
		for i, q := range queries {
			ans, err := sys.Query(ctx, q.Text)
			if err != nil {
				return nil, fmt.Errorf("bench: %s pass, query %s: %w", phase, q.ID, err)
			}
			answers[i] = ans
			total += ans.TotalDur
			calls += ans.LLMCalls
		}
		after := sys.Views.Stats()
		res.Phases = append(res.Phases, viewsPhase(phase, len(queries), total, calls, before, after))
		return answers, nil
	}

	if _, err := runPass("populate"); err != nil {
		return nil, err
	}
	if _, err := runPass("warm"); err != nil {
		return nil, err
	}

	preIngest := sys.Views.Stats()
	ing, err := sys.Ingest(full.Documents()[size:], nil)
	if err != nil {
		return nil, fmt.Errorf("bench: ingest: %w", err)
	}
	res.Generation = ing.Generation

	var post []*unify.Answer
	for _, phase := range []string{"post_ingest", "post_ingest_warm"} {
		if post, err = runPass(phase); err != nil {
			return nil, err
		}
	}
	final := sys.Views.Stats()
	res.PostIngestHitRate = deltaHitRate(preIngest, final)
	if res.PostIngestHitRate < 0.9 {
		return nil, fmt.Errorf("bench: post-ingest view hit rate %.3f, want >= 0.9 (%d hits, %d misses)",
			res.PostIngestHitRate, final.Hits-preIngest.Hits, final.Misses-preIngest.Misses)
	}

	// Cold reference: a fresh views-less system opened directly over the
	// mutated corpus must answer the same workload byte-identically.
	refcfg := syscfg
	refcfg.Views = false
	ref, err := unify.New(unify.WithConfig(refcfg), unify.WithCorpus(full))
	if err != nil {
		return nil, err
	}
	ref.Calib.Freeze()
	for i, q := range queries {
		ans, err := ref.Query(ctx, q.Text)
		if err != nil {
			return nil, fmt.Errorf("bench: cold reference, query %s: %w", q.ID, err)
		}
		if ans.Text != post[i].Text {
			return nil, fmt.Errorf("bench: post-ingest answer diverged for %s:\n  views: %s\n  cold:  %s",
				q.ID, post[i].Text, ans.Text)
		}
	}
	res.AnswersIdentical = true
	return res, nil
}

// viewsPhase aggregates one workload pass into a ViewsPhase row.
func viewsPhase(phase string, n int, total time.Duration, calls int, before, after views.Stats) ViewsPhase {
	return ViewsPhase{
		Phase:       phase,
		Queries:     n,
		MeanSecs:    total.Seconds() / float64(n),
		LLMCalls:    calls,
		ViewHits:    after.Hits - before.Hits,
		ViewMisses:  after.Misses - before.Misses,
		Backfills:   after.Backfills - before.Backfills,
		Invalidated: after.Invalidated - before.Invalidated,
		HitRate:     deltaHitRate(before, after),
	}
}

// deltaHitRate is the hit rate of the reads between two snapshots.
func deltaHitRate(before, after views.Stats) float64 {
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// PrintViewsBench renders the materialized-views report.
func PrintViewsBench(w io.Writer, r *ViewsResult) {
	fmt.Fprintf(w, "Materialized views across ingest — %s, %d base docs + %d ingested (generation %d), %d queries/pass\n",
		r.Dataset, r.BaseDocs, r.IngestedDocs, r.Generation, r.Queries)
	fmt.Fprintf(w, "  %-16s %8s %9s %9s %9s %10s %8s\n",
		"phase", "mean(s)", "llm calls", "hits", "misses", "backfills", "hit rate")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "  %-16s %8.1f %9d %9d %9d %10d %8.2f\n",
			p.Phase, p.MeanSecs, p.LLMCalls, p.ViewHits, p.ViewMisses, p.Backfills, p.HitRate)
	}
	fmt.Fprintf(w, "  post-ingest hit rate: %.3f (answers byte-identical to a cold run on the mutated corpus: %v)\n",
		r.PostIngestHitRate, r.AnswersIdentical)
}
