package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"unify/internal/sce"
)

// smallCfg keeps harness tests fast.
func smallCfg() Config {
	return Config{
		Datasets:    []string{"sports"},
		Size:        300,
		PerTemplate: 1,
		Seed:        42,
		Methods:     []string{"RAG", "Unify"},
		SampleFrac:  0.02,
	}
}

func TestRunFig4Small(t *testing.T) {
	rows, err := RunFig4(context.Background(), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	var unify, rag MethodScore
	for _, r := range rows {
		switch r.Method {
		case "Unify":
			unify = r
		case "RAG":
			rag = r
		}
		if r.Queries == 0 || r.AvgLatency <= 0 {
			t.Errorf("incomplete row %+v", r)
		}
	}
	if unify.Accuracy <= rag.Accuracy {
		t.Errorf("Unify (%.2f) should beat RAG (%.2f)", unify.Accuracy, rag.Accuracy)
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	if !strings.Contains(buf.String(), "accuracy") || !strings.Contains(buf.String(), "Unify=") {
		t.Errorf("rendering incomplete:\n%s", buf.String())
	}
}

func TestRunTable3Small(t *testing.T) {
	cfg := smallCfg()
	rows, err := RunTable3(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 methods", len(rows))
	}
	methods := map[sce.Method]bool{}
	for _, r := range rows {
		methods[r.Method] = true
		if r.P50 < 1 || r.Max < r.P50 {
			t.Errorf("inconsistent percentiles %+v", r)
		}
	}
	if len(methods) != 4 {
		t.Errorf("methods = %v", methods)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "unify") {
		t.Error("Table III rendering incomplete")
	}
}

func TestRunFig5Small(t *testing.T) {
	cfg := smallCfg()
	rows, err := RunFig5a(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]OptRow{}
	for _, r := range rows {
		if r.Dataset == "sports" {
			byVariant[r.Variant] = r
		}
	}
	u, noLO := byVariant["Unify"], byVariant["Unify-noLO"]
	if u.AvgExec <= 0 || noLO.AvgExec <= 0 {
		t.Fatalf("rows = %+v", rows)
	}
	if noLO.AvgExec < u.AvgExec {
		t.Errorf("sequential (%v) faster than DAG (%v)", noLO.AvgExec, u.AvgExec)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, "t", rows)
	if !strings.Contains(buf.String(), "noLO") {
		t.Error("Fig5 rendering incomplete")
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	cfg := smallCfg()
	cfg.Methods = []string{"Bogus"}
	if _, err := RunFig4(context.Background(), cfg); err == nil {
		t.Error("unknown method accepted")
	}
}
