package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/optimizer"
	"unify/internal/workload"
)

// LayerRate summarizes one cache layer's activity during the warm pass of
// the repeated-workload benchmark.
type LayerRate struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// CacheBenchResult is the repeated-workload benchmark report: the same
// query batch executed twice against one system, with per-layer hit rates
// for the warm pass, plus an uncached control run that pins down the cold
// cost the cache hierarchy must not regress.
type CacheBenchResult struct {
	Dataset string `json:"dataset"`
	Queries int    `json:"queries"`

	// UncachedLatency is the batch latency with CacheBytes < 0 (the
	// pre-cache behavior); Cold and Warm are the first and second pass
	// over the same batch on a cached system.
	UncachedLatency time.Duration `json:"-"`
	ColdLatency     time.Duration `json:"-"`
	WarmLatency     time.Duration `json:"-"`
	// Speedup is ColdLatency / WarmLatency.
	Speedup float64 `json:"speedup"`

	ColdAccuracy float64 `json:"cold_accuracy"`
	WarmAccuracy float64 `json:"warm_accuracy"`
	// AnswerMismatches counts warm answers that differ from their cold
	// counterpart (must be zero: caching is semantics-preserving).
	AnswerMismatches int `json:"answer_mismatches"`

	// Headline warm-pass hit rates (also present in Layers).
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
	LLMCacheHitRate  float64 `json:"llm_cache_hit_rate"`

	// WarmCachedLLMCalls counts model invocations the warm pass answered
	// from the response cache; WarmPlanCacheHits counts queries whose
	// optimization was served whole from the plan cache.
	WarmCachedLLMCalls int `json:"warm_cached_llm_calls"`
	WarmPlanCacheHits  int `json:"warm_plan_cache_hits"`

	// Layers maps every cache layer to its warm-pass delta counters.
	Layers map[string]LayerRate `json:"layers"`
}

// MarshalJSON renders the latencies in seconds alongside the counters.
func (r CacheBenchResult) MarshalJSON() ([]byte, error) {
	type alias CacheBenchResult // shed the method to avoid recursion
	return json.Marshal(struct {
		alias
		UncachedLatencySecs float64 `json:"uncached_cold_latency_secs"`
		ColdLatencySecs     float64 `json:"cold_latency_secs"`
		WarmLatencySecs     float64 `json:"warm_latency_secs"`
	}{
		alias:               alias(r),
		UncachedLatencySecs: r.UncachedLatency.Seconds(),
		ColdLatencySecs:     r.ColdLatency.Seconds(),
		WarmLatencySecs:     r.WarmLatency.Seconds(),
	})
}

// runPass executes the batch once, returning total simulated latency,
// accuracy, answers, and cache-usage tallies.
func runPass(ctx context.Context, sys *unify.System, queries []workload.Query) (total time.Duration, acc float64, answers []string, cachedCalls, planHits int, err error) {
	correct := 0
	answers = make([]string, len(queries))
	for i, q := range queries {
		ans, qerr := sys.Query(ctx, q.Text)
		if qerr != nil {
			return 0, 0, nil, 0, 0, fmt.Errorf("query %q: %w", q.Text, qerr)
		}
		answers[i] = ans.Text
		total += ans.TotalDur
		cachedCalls += ans.CachedLLMCalls
		if ans.PlanCacheHit {
			planHits++
		}
		if workload.Score(q, ans.Text) {
			correct++
		}
	}
	if len(queries) > 0 {
		acc = float64(correct) / float64(len(queries))
	}
	return total, acc, answers, cachedCalls, planHits, nil
}

// RunCacheBench measures what the shared cache hierarchy buys on a
// repeated workload: one batch of queries runs cold and then again warm
// against the same system, and an uncached control system runs the same
// batch to verify the cold path costs no more than the pre-cache system.
// Uses the first configured dataset (default: the first corpus).
func RunCacheBench(ctx context.Context, cfg Config) (*CacheBenchResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
	res := &CacheBenchResult{Dataset: name, Queries: len(queries)}

	// Control: the same batch with caching disabled (CacheBytes < 0) —
	// the seed system's behavior, against which cold latency must hold.
	unc, err := unify.OpenDataset(ds, unify.Config{Dataset: name, TrainSCE: true, CacheBytes: -1})
	if err != nil {
		return nil, err
	}
	uncLat, _, uncAnswers, _, _, err := runPass(ctx, unc, queries)
	if err != nil {
		return nil, err
	}
	res.UncachedLatency = uncLat

	sys, err := openSystem(ds, optimizer.CostBased)
	if err != nil {
		return nil, err
	}
	coldLat, coldAcc, coldAnswers, _, _, err := runPass(ctx, sys, queries)
	if err != nil {
		return nil, err
	}
	res.ColdLatency, res.ColdAccuracy = coldLat, coldAcc
	before := sys.CacheStats()

	warmLat, warmAcc, warmAnswers, cachedCalls, planHits, err := runPass(ctx, sys, queries)
	if err != nil {
		return nil, err
	}
	res.WarmLatency, res.WarmAccuracy = warmLat, warmAcc
	res.WarmCachedLLMCalls = cachedCalls
	res.WarmPlanCacheHits = planHits
	if warmLat > 0 {
		res.Speedup = float64(coldLat) / float64(warmLat)
	}
	for i := range coldAnswers {
		if warmAnswers[i] != coldAnswers[i] || coldAnswers[i] != uncAnswers[i] {
			res.AnswerMismatches++
		}
	}

	// Per-layer warm-pass deltas.
	res.Layers = map[string]LayerRate{}
	for layer, after := range sys.CacheStats() {
		d := after.Sub(before[layer])
		res.Layers[layer] = LayerRate{Hits: d.Hits, Misses: d.Misses, HitRate: d.HitRate()}
	}
	res.PlanCacheHitRate = res.Layers["plan"].HitRate
	res.LLMCacheHitRate = res.Layers["llm"].HitRate
	return res, nil
}

// PrintCacheBench renders the repeated-workload report.
func PrintCacheBench(w io.Writer, r *CacheBenchResult) {
	fmt.Fprintf(w, "Repeated workload — %s, %d queries\n", r.Dataset, r.Queries)
	fmt.Fprintf(w, "  %-22s %10.2fs\n", "uncached (control)", r.UncachedLatency.Seconds())
	fmt.Fprintf(w, "  %-22s %10.2fs  accuracy %.2f\n", "cold pass", r.ColdLatency.Seconds(), r.ColdAccuracy)
	fmt.Fprintf(w, "  %-22s %10.2fs  accuracy %.2f\n", "warm pass", r.WarmLatency.Seconds(), r.WarmAccuracy)
	fmt.Fprintf(w, "  %-22s %9.1fx\n", "warm speedup", r.Speedup)
	fmt.Fprintf(w, "  %-22s %10d\n", "cached LLM calls", r.WarmCachedLLMCalls)
	fmt.Fprintf(w, "  %-22s %10d\n", "plan-cache hits", r.WarmPlanCacheHits)
	layers := make([]string, 0, len(r.Layers))
	for layer := range r.Layers {
		layers = append(layers, layer)
	}
	sort.Strings(layers)
	for _, layer := range layers {
		lr := r.Layers[layer]
		fmt.Fprintf(w, "  layer %-12s hit rate %.2f (%d hits / %d misses)\n",
			layer, lr.HitRate, lr.Hits, lr.Misses)
	}
	if r.AnswerMismatches > 0 {
		fmt.Fprintf(w, "  WARNING: %d warm answers diverged from cold\n", r.AnswerMismatches)
	}
}
