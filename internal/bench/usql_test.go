package bench

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunUSQLBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("usql bench smoke is slow")
	}
	cfg := Config{Datasets: []string{"sports"}, Size: 200, PerTemplate: 1, Seed: 7, MaxQueries: 6}
	res, err := RunUSQLBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Round != "cold" || res.Points[1].Round != "warm" {
		t.Fatalf("points = %+v, want cold then warm", res.Points)
	}
	if res.PlannerLLMCalls != 0 {
		t.Fatalf("planner LLM calls = %d, want 0", res.PlannerLLMCalls)
	}
	cold, warm := res.Points[0], res.Points[1]
	// RunUSQLBench itself enforces these; re-assert so the test fails
	// loudly if the self-checks are ever weakened.
	if cold.Speedup <= 1.0 {
		t.Errorf("cold speedup %f, want > 1 (planner vtime must drop out)", cold.Speedup)
	}
	if warm.USQLPlanCacheHitRate != 1.0 {
		t.Errorf("warm USQL plan-cache hit rate %f, want 1.0", warm.USQLPlanCacheHitRate)
	}
	if !cold.AnswersIdentical || !warm.AnswersIdentical {
		t.Error("answers not identical between routes")
	}
	if cold.USQLMeanPlanningSecs != 0 {
		t.Errorf("USQL mean planning %fs, want 0", cold.USQLMeanPlanningSecs)
	}
	var sb strings.Builder
	PrintUSQLBench(&sb, res)
	if !strings.Contains(sb.String(), "USQL vs NL planning") {
		t.Errorf("PrintUSQLBench output missing header:\n%s", sb.String())
	}
}

// TestUSQLArtifactParses keeps the checked-in BENCH_usql.json honest: it
// must parse, cover both rounds at concurrency 8, and show the
// properties the experiment exists to demonstrate.
func TestUSQLArtifactParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_usql.json")
	if err != nil {
		t.Skipf("BENCH_usql.json not present: %v", err)
	}
	var res USQLResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_usql.json does not parse: %v", err)
	}
	if res.Dataset == "" || res.Slots <= 0 || res.Queries <= 0 {
		t.Fatalf("BENCH_usql.json missing header fields: %+v", res)
	}
	if res.Concurrency != 8 {
		t.Fatalf("concurrency %d, want 8", res.Concurrency)
	}
	if res.PlannerLLMCalls != 0 {
		t.Fatalf("planner LLM calls %d, want 0", res.PlannerLLMCalls)
	}
	if len(res.Points) != 2 || res.Points[0].Round != "cold" || res.Points[1].Round != "warm" {
		t.Fatalf("points %+v, want cold then warm", res.Points)
	}
	cold, warm := res.Points[0], res.Points[1]
	if cold.USQLQueriesPerVSec <= cold.NLQueriesPerVSec {
		t.Errorf("cold USQL throughput %f not above NL %f", cold.USQLQueriesPerVSec, cold.NLQueriesPerVSec)
	}
	if warm.USQLPlanCacheHitRate != 1.0 {
		t.Errorf("warm USQL plan-cache hit rate %f, want 1.0", warm.USQLPlanCacheHitRate)
	}
	for _, p := range res.Points {
		if !p.AnswersIdentical {
			t.Errorf("%s round: answers not identical", p.Round)
		}
	}
}
