package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/workload"
)

// ScalePoint is one cluster width of the scale-out experiment.
type ScalePoint struct {
	// Machines is the simulated cluster width; SlotsTotal the cluster-wide
	// slot count (Machines x per-machine slots).
	Machines   int `json:"machines"`
	SlotsTotal int `json:"slots_total"`
	Queries    int `json:"queries"`
	Errors     int `json:"errors,omitempty"`

	// MeanSecs and MeanExecSecs are per-query averages from the
	// sequential verification pass (no contention, scatter only).
	MeanSecs     float64 `json:"mean_secs"`
	MeanExecSecs float64 `json:"mean_exec_secs"`
	// ScatteredQueries counts queries whose optimized plan scattered at
	// least one operator across the shards.
	ScatteredQueries int `json:"scattered_queries"`

	// Throughput figures from the loaded pass: the whole batch offered
	// at once to every width, measured on the pool's own virtual-clock
	// accounting.
	Utilization    float64 `json:"utilization"`
	WindowSecs     float64 `json:"window_secs"`
	QueriesPerVSec float64 `json:"queries_per_vsec"`
	// SpeedupVsM1 is this width's QueriesPerVSec over the 1-machine
	// point's.
	SpeedupVsM1 float64 `json:"speedup_vs_m1"`
	// AnswersMatchM1 reports that every query's answer text is
	// byte-identical to the 1-machine run (the scatter-correctness
	// contract; trivially true at width 1).
	AnswersMatchM1 bool `json:"answers_match_m1"`
}

// ScaleResult is the scale-out report: the same workload against
// clusters of increasing width under one fixed offered load.
type ScaleResult struct {
	Dataset         string       `json:"dataset"`
	SlotsPerMachine int          `json:"slots_per_machine"`
	Queries         int          `json:"queries"`
	Concurrency     int          `json:"concurrency"`
	Points          []ScalePoint `json:"points"`
}

// RunScaleBench sweeps the simulated cluster width over one dataset.
// Each width gets two fresh systems (fresh virtual clock, cluster, and
// shard assignment; response cache disabled so every width schedules the
// same honest slot work):
//
//   - a sequential verification pass that records every answer text —
//     deterministic by construction, so the per-width answers can be
//     compared byte-for-byte against the 1-machine baseline;
//   - a loaded pass offering the whole batch at once (a closed load:
//     every query is its own concurrent client), from which the
//     throughput figures (queries per virtual second) are taken.
//     Offering everything together lets the pool merge the batch into
//     as few scheduling epochs as possible, so the packing — and hence
//     the measured throughput — is stable run to run.
func RunScaleBench(ctx context.Context, cfg Config) (*ScaleResult, error) {
	cfg.defaults()
	name := cfg.Datasets[0]
	size := cfg.Size
	if size == 0 {
		size = corpus.DefaultSize(name)
	}
	ds, err := corpus.GenerateN(name, size)
	if err != nil {
		return nil, err
	}
	queries := workload.Generate(ds, cfg.PerTemplate, cfg.Seed)
	if cfg.MaxQueries > 0 && len(queries) > cfg.MaxQueries {
		queries = queries[:cfg.MaxQueries]
	}
	res := &ScaleResult{
		Dataset:     name,
		Queries:     len(queries),
		Concurrency: len(queries),
	}

	var baseline []string // answer texts at width 1
	var baseQPS float64
	for _, m := range cfg.ScaleMachines {
		sys, err := openScaleSystem(ds, name, m)
		if err != nil {
			return nil, err
		}
		res.SlotsPerMachine = sys.Config.Slots
		pt := ScalePoint{
			Machines:   m,
			SlotsTotal: m * sys.Config.Slots,
			Queries:    len(queries),
		}
		answers, err := scaleVerify(ctx, sys, queries, &pt)
		if err != nil {
			return nil, err
		}
		if m == 1 {
			baseline = answers
		}
		pt.AnswersMatchM1 = answersEqual(baseline, answers)

		loaded, err := openScaleSystem(ds, name, m)
		if err != nil {
			return nil, err
		}
		if err := scaleLoad(ctx, loaded, queries, &pt); err != nil {
			return nil, err
		}
		if m == 1 {
			baseQPS = pt.QueriesPerVSec
		}
		if baseQPS > 0 {
			pt.SpeedupVsM1 = pt.QueriesPerVSec / baseQPS
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// openScaleSystem builds one width's system: shared-cache off (honest
// slot work at every width) and the importance function trained as in
// the other serving-path experiments.
func openScaleSystem(ds *corpus.Dataset, name string, machines int) (*unify.System, error) {
	return unify.New(
		unify.WithCorpus(ds),
		unify.WithDataset(name),
		unify.WithTrainSCE(),
		unify.WithCacheBytes(-1),
		unify.WithMachines(machines),
	)
}

// scaleVerify runs the batch sequentially, recording each answer text
// ("!error\t..." for failures, so mismatches surface in the comparison).
func scaleVerify(ctx context.Context, sys *unify.System, queries []workload.Query, pt *ScalePoint) ([]string, error) {
	answers := make([]string, len(queries))
	var total, exec time.Duration
	n := 0
	for i, q := range queries {
		ans, err := sys.Query(ctx, q.Text)
		if err != nil {
			pt.Errors++
			answers[i] = "!error\t" + err.Error()
			continue
		}
		answers[i] = ans.Text
		total += ans.TotalDur
		exec += ans.ExecDur
		n++
		scattered := false
		for _, node := range ans.Plan.Nodes {
			if _, ok := node.Args["_scatter"]; ok {
				scattered = true
			}
		}
		if scattered {
			pt.ScatteredQueries++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("bench: all %d queries failed at %d machines", len(queries), pt.Machines)
	}
	pt.MeanSecs = total.Seconds() / float64(n)
	pt.MeanExecSecs = exec.Seconds() / float64(n)
	return answers, nil
}

// scaleLoad offers the whole batch at once — every query is its own
// concurrent client, released through one start barrier — and reads the
// throughput off the pool's virtual-clock accounting. Admissions all
// land before the first query finishes planning, so the pool packs the
// batch as one scheduling epoch and the makespan is dominated by slot
// capacity, not by client pacing.
func scaleLoad(ctx context.Context, sys *unify.System, queries []workload.Query, pt *ScalePoint) error {
	errs := make([]int, len(queries))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			if _, err := sys.Query(ctx, queries[i].Text); err != nil {
				errs[i] = 1
			}
		}(i)
	}
	close(start)
	wg.Wait()
	failed := 0
	for _, e := range errs {
		failed += e
	}
	n := len(queries) - failed
	if n == 0 {
		return fmt.Errorf("bench: all %d loaded queries failed at %d machines", len(queries), pt.Machines)
	}
	ps := sys.Pool.Stats()
	pt.Utilization = ps.CumUtilization
	if ps.SpanVTime > 0 {
		pt.WindowSecs = ps.SpanVTime.Seconds()
		pt.QueriesPerVSec = float64(n) / ps.SpanVTime.Seconds()
	}
	return nil
}

// answersEqual reports index-wise byte equality of two answer slices.
func answersEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintScaleBench renders the scale-out sweep.
func PrintScaleBench(w io.Writer, r *ScaleResult) {
	fmt.Fprintf(w, "Scale-out sweep — %s, %d queries per width, %d slots/machine, offered load %d\n",
		r.Dataset, r.Queries, r.SlotsPerMachine, r.Concurrency)
	fmt.Fprintf(w, "  %8s %6s %9s %9s %8s %6s %9s %8s %7s\n",
		"machines", "slots", "mean", "exec", "scatter", "util", "q/vsec", "speedup", "match")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %8d %6d %8.1fs %8.1fs %8d %6.2f %9.3f %7.2fx %7v\n",
			p.Machines, p.SlotsTotal, p.MeanSecs, p.MeanExecSecs, p.ScatteredQueries,
			p.Utilization, p.QueriesPerVSec, p.SpeedupVsM1, p.AnswersMatchM1)
	}
}
