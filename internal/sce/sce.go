// Package sce implements semantic cardinality estimation (paper §VI-B):
// predicting the result size of a natural-language predicate over an
// unstructured corpus without executing it in full.
//
// The Unify estimator is importance sampling guided by embedding distance:
// documents are bucketed by their distance to the predicate's embedding,
// a piecewise importance function f (learned from historical predicates)
// allocates the sample budget across buckets, sampled documents are judged
// by the LLM, and the cardinality is estimated as
//
//	Σ_i n_i · (Σ_{x∈S_i} θ(x)) / (n_s · f_i)
//
// Uniform sampling is the special case f_i = n_i/N. The package also
// provides the paper's baselines: uniform, stratified, and adaptive
// importance sampling (AIS).
package sce

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"unify/internal/cache"
	"unify/internal/docstore"
	"unify/internal/llm"
)

// Method names the estimation strategies of Table III.
type Method string

// Estimation methods.
const (
	Uniform    Method = "uniform"
	Stratified Method = "stratified"
	AIS        Method = "ais"
	Unify      Method = "unify"
)

// Estimator performs semantic cardinality estimation over a store.
type Estimator struct {
	Store   *docstore.Store
	Client  llm.Client
	Buckets int
	Seed    uint64

	// f is the learned piecewise importance function (Σf = 1). Before
	// Train it is uniform.
	f []float64

	// buckets caches bucketizations per predicate (see AttachCache), so
	// repeated estimates of one predicate sort the corpus once.
	buckets *cache.Layer[[][]int]
}

// NewEstimator returns an estimator with a uniform importance function.
func NewEstimator(store *docstore.Store, client llm.Client, buckets int) *Estimator {
	if buckets < 2 {
		buckets = 8
	}
	f := make([]float64, buckets)
	for i := range f {
		f[i] = 1 / float64(buckets)
	}
	return &Estimator{Store: store, Client: client, Buckets: buckets, Seed: 7, f: f}
}

// AttachCache routes bucketizations through the shared cache, keyed by
// predicate: the per-Estimate full sort of all document ids runs once per
// distinct predicate. A nil cache leaves the estimator uncached.
func (e *Estimator) AttachCache(c *cache.LRU) {
	e.buckets = cache.NewLayer[[][]int](c, "sce", func(b [][]int) int64 {
		var n int64
		for _, ids := range b {
			n += int64(len(ids)) * 8
		}
		return n + int64(len(b))*24
	})
}

// Importance returns a copy of the current importance function.
func (e *Estimator) Importance() []float64 {
	return append([]float64(nil), e.f...)
}

// bucketize sorts all document ids by embedding distance to the predicate
// and splits them into equal-count buckets (nearest first). With a cache
// attached (AttachCache), the sort runs once per distinct predicate; the
// returned buckets are shared and must be treated as read-only.
func (e *Estimator) bucketize(pred string) [][]int {
	// Keyed by corpus generation as well as predicate: a bucketization
	// enumerates every document id, so reusing one across an ingest
	// would make SCE sample a corpus that no longer exists. Generation
	// zero keeps the original key form (static corpora, seed goldens).
	key := fmt.Sprintf("%d|%s", e.Buckets, pred)
	if g := e.Store.Generation(); g != 0 {
		key = fmt.Sprintf("%d|g%d|%s", e.Buckets, g, pred)
	}
	b, _, _ := e.buckets.GetOrCompute(key, func() ([][]int, error) {
		return e.bucketizeScan(pred), nil
	})
	return b
}

// bucketizeScan is the uncached bucketization: a full distance scan plus
// an O(N log N) sort.
func (e *Estimator) bucketizeScan(pred string) [][]int {
	dist := e.Store.Distances(pred)
	ids := make([]int, 0, len(dist))
	for id := range dist {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if dist[ids[i]] != dist[ids[j]] {
			return dist[ids[i]] < dist[ids[j]]
		}
		return ids[i] < ids[j]
	})
	buckets := make([][]int, e.Buckets)
	n := len(ids)
	for i := 0; i < e.Buckets; i++ {
		lo := i * n / e.Buckets
		hi := (i + 1) * n / e.Buckets
		buckets[i] = ids[lo:hi]
	}
	return buckets
}

// sampleBucket deterministically picks k documents from a bucket, keyed
// by the predicate (so different predicates sample differently but runs
// reproduce).
func (e *Estimator) sampleBucket(pred string, bucket []int, k int) []int {
	if k <= 0 {
		return nil
	}
	if k >= len(bucket) {
		return append([]int(nil), bucket...)
	}
	type keyed struct {
		id int
		h  uint64
	}
	ks := make([]keyed, len(bucket))
	for i, id := range bucket {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%d", e.Seed, pred, id)
		ks[i] = keyed{id, h.Sum64()}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].h != ks[j].h {
			return ks[i].h < ks[j].h
		}
		return ks[i].id < ks[j].id
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ks[i].id
	}
	return out
}

// judge evaluates the predicate on the sampled documents with the LLM,
// returning the number satisfied. Calls go through the provided client
// (wrap in a Recorder to charge them to planning time).
func (e *Estimator) judge(ctx context.Context, client llm.Client, pred string, ids []int) (int, error) {
	sat := 0
	for _, id := range ids {
		d, ok := e.Store.Doc(id)
		if !ok {
			return 0, fmt.Errorf("sce: unknown document %d", id)
		}
		resp, err := client.Complete(ctx, llm.BuildPrompt("filter_doc", map[string]string{
			"condition": pred,
			"doc":       d.Text,
		}))
		if err != nil {
			return 0, err
		}
		if strings.TrimSpace(resp.Text) == "yes" {
			sat++
		}
	}
	return sat, nil
}

// Train learns the importance function from historical predicates: each
// bucket's importance is proportional to the average satisfied mass
// observed there (paper: "learned from historical queries").
func (e *Estimator) Train(ctx context.Context, preds []string, perBucket int) error {
	if perBucket <= 0 {
		perBucket = 24
	}
	mass := make([]float64, e.Buckets)
	for _, pred := range preds {
		buckets := e.bucketize(pred)
		for i, b := range buckets {
			sample := e.sampleBucket("train|"+pred, b, perBucket)
			if len(sample) == 0 {
				continue
			}
			sat, err := e.judge(ctx, e.Client, pred, sample)
			if err != nil {
				return err
			}
			frac := float64(sat) / float64(len(sample))
			mass[i] += frac * float64(len(b))
		}
	}
	const eps = 0.02
	total := 0.0
	for i := range mass {
		mass[i] += eps * float64(len(e.Store.Docs)) / float64(e.Buckets)
		total += mass[i]
	}
	for i := range mass {
		e.f[i] = mass[i] / total
	}
	return nil
}

// Estimate predicts the predicate's cardinality with the given method and
// a total sample budget ns. The returned calls let callers charge the
// estimation to the planning clock.
func (e *Estimator) Estimate(ctx context.Context, method Method, pred string, ns int) (float64, []llm.Call, error) {
	return e.EstimateSeeded(ctx, method, pred, ns, "")
}

// EstimateSeeded is Estimate with an extra sampling-salt, letting
// evaluations draw independent sample sets for the same predicate
// (used to measure estimator error distributions).
func (e *Estimator) EstimateSeeded(ctx context.Context, method Method, pred string, ns int, salt string) (float64, []llm.Call, error) {
	if ns < e.Buckets {
		ns = e.Buckets
	}
	rec := llm.NewRecorder(e.Client)
	buckets := e.bucketize(pred)
	n := len(e.Store.Docs)
	skey := pred + salt

	est := 0.0
	switch method {
	case Uniform:
		// f_i = n_i/N: sample proportional to bucket size — equivalent
		// to plain uniform sampling over the corpus.
		sat, tot := 0, 0
		for _, b := range buckets {
			k := int(math.Round(float64(ns) * float64(len(b)) / float64(n)))
			sample := e.sampleBucket(skey, b, k)
			s, err := e.judge(ctx, rec, pred, sample)
			if err != nil {
				return 0, nil, err
			}
			sat += s
			tot += len(sample)
		}
		if tot > 0 {
			est = float64(n) * float64(sat) / float64(tot)
		}
	case Stratified:
		// Equal allocation per stratum; per-stratum extrapolation.
		per := ns / e.Buckets
		for _, b := range buckets {
			sample := e.sampleBucket(skey, b, per)
			if len(sample) == 0 {
				continue
			}
			s, err := e.judge(ctx, rec, pred, sample)
			if err != nil {
				return 0, nil, err
			}
			est += float64(len(b)) * float64(s) / float64(len(sample))
		}
	case AIS:
		// Two iterations: uniform allocation, then reallocate by the
		// observed satisfied mass (VEGAS-style refinement).
		half := ns / 2
		per := half / e.Buckets
		interim := make([]float64, e.Buckets)
		for i, b := range buckets {
			sample := e.sampleBucket(skey+"|ais1", b, per)
			if len(sample) == 0 {
				continue
			}
			s, err := e.judge(ctx, rec, pred, sample)
			if err != nil {
				return 0, nil, err
			}
			interim[i] = float64(s)/float64(len(sample))*float64(len(b)) + 1
		}
		totalMass := 0.0
		for _, m := range interim {
			totalMass += m
		}
		if totalMass <= 0 {
			// First iteration saw nothing (tiny budget): fall back to a
			// uniform second-stage allocation.
			for i := range interim {
				interim[i] = 1
			}
			totalMass = float64(len(interim))
		}
		for i, b := range buckets {
			fi := interim[i] / totalMass
			k := int(math.Round(float64(ns-half) * fi))
			sample := e.sampleBucket(skey+"|ais2", b, k)
			if len(sample) == 0 {
				continue
			}
			s, err := e.judge(ctx, rec, pred, sample)
			if err != nil {
				return 0, nil, err
			}
			// Combine both iterations' observations per bucket.
			est += float64(len(b)) * float64(s) / float64(len(sample))
		}
	case Unify:
		totalSat := 0
		firstBucketN, firstBucketK := 0, 0
		for i, b := range buckets {
			k := int(math.Round(float64(ns) * e.f[i]))
			sample := e.sampleBucket(skey, b, k)
			if i == 0 {
				firstBucketN, firstBucketK = len(b), len(sample)
			}
			if len(sample) == 0 {
				continue
			}
			s, err := e.judge(ctx, rec, pred, sample)
			if err != nil {
				return 0, nil, err
			}
			totalSat += s
			// n_i · Σθ / (n_s · f_i), with the realized sample size.
			est += float64(len(b)) * float64(s) / float64(len(sample))
		}
		if totalSat == 0 && firstBucketK > 0 {
			// No sample satisfied the predicate: the importance prior
			// bounds the estimate instead of collapsing to zero ("rule
			// of three"-style smoothing over the nearest bucket).
			est = 0.5 * float64(firstBucketN) / float64(firstBucketK+1)
		}
	default:
		return 0, nil, fmt.Errorf("sce: unknown method %q", method)
	}
	if est < 0 {
		est = 0
	}
	return est, rec.Calls(), nil
}

// TrueCardinality executes the predicate over the whole corpus with
// batched LLM judgments — the ground truth for q-error evaluation and for
// the Unify-GD ablation.
func (e *Estimator) TrueCardinality(ctx context.Context, pred string, batch int) (int, error) {
	if batch <= 0 {
		batch = 16
	}
	ids := e.Store.IDs()
	sat := 0
	for start := 0; start < len(ids); start += batch {
		end := start + batch
		if end > len(ids) {
			end = len(ids)
		}
		texts := make([]string, 0, end-start)
		for _, id := range ids[start:end] {
			d, _ := e.Store.Doc(id)
			texts = append(texts, d.Text)
		}
		resp, err := e.Client.Complete(ctx, llm.BuildPrompt("filter_batch", map[string]string{
			"condition": pred,
			"docs":      llm.JoinDocs(texts),
		}))
		if err != nil {
			return 0, err
		}
		for _, v := range strings.Split(resp.Text, ",") {
			if strings.TrimSpace(v) == "yes" {
				sat++
			}
		}
	}
	return sat, nil
}

// QError is the evaluation metric of Table III: max(est/true, true/est),
// with both sides floored at 1 to avoid division blowups on empty
// results.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
