package sce

import (
	"context"
	"math"
	"testing"

	"unify/internal/cache"
	"unify/internal/corpus"
	"unify/internal/docstore"
	"unify/internal/llm"
)

// cachedSetup builds an estimator with the shared cache attached to both
// the store (distance maps) and the estimator (bucketizations).
func cachedSetup(t *testing.T, n int) (*Estimator, *cache.LRU) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	c := cache.New(8 << 20)
	store.AttachCache(c)
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	est := NewEstimator(store, llm.NewSim(cfg), 8)
	est.AttachCache(c)
	return est, c
}

// TestRepeatedEstimateSingleDistanceScan is the regression test for the
// per-Estimate re-sort: two estimates of the same predicate must trigger
// exactly one full distance scan and one bucketization.
func TestRepeatedEstimateSingleDistanceScan(t *testing.T) {
	est, c := cachedSetup(t, 300)
	ctx := context.Background()
	pred := "related to injury"

	e1, _, err := est.Estimate(ctx, Unify, pred, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Store.DistanceScans(); got != 1 {
		t.Fatalf("after first estimate: %d distance scans, want 1", got)
	}
	e2, _, err := est.Estimate(ctx, Unify, pred, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Store.DistanceScans(); got != 1 {
		t.Fatalf("after repeat estimate: %d distance scans, want 1 (scan must be cached)", got)
	}
	if math.Abs(e1-e2) > 1e-9 {
		t.Fatalf("repeated estimate changed: %v vs %v", e1, e2)
	}
	st := c.LayerStats()
	if st["sce"].Hits == 0 {
		t.Fatalf("bucketization cache saw no hits: %+v", st["sce"])
	}
	if st["distance"].Misses != 1 {
		t.Fatalf("distance layer misses = %d, want 1", st["distance"].Misses)
	}

	// A different predicate is a fresh scan.
	if _, _, err := est.Estimate(ctx, Unify, "related to training", 60); err != nil {
		t.Fatal(err)
	}
	if got := est.Store.DistanceScans(); got != 2 {
		t.Fatalf("distinct predicate: %d distance scans, want 2", got)
	}
}

// TestCachedBucketizeMatchesUncached verifies the cache changes results
// in no way: cached and uncached estimators agree call-for-call.
func TestCachedBucketizeMatchesUncached(t *testing.T) {
	cached, _ := cachedSetup(t, 300)
	ds, err := corpus.GenerateN("sports", 300)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	plain := NewEstimator(store, llm.NewSim(cfg), 8)

	ctx := context.Background()
	for _, pred := range []string{"related to injury", "related to injury", "about a transfer"} {
		a, _, err := cached.Estimate(ctx, Unify, pred, 80)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := plain.Estimate(ctx, Unify, pred, 80)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("pred %q: cached estimate %v != uncached %v", pred, a, b)
		}
	}
}

// TestTrainUsesBucketCache ensures Train also flows through the cache
// (it bucketizes every historical predicate).
func TestTrainUsesBucketCache(t *testing.T) {
	est, c := cachedSetup(t, 200)
	ctx := context.Background()
	preds := []string{"related to injury", "related to training"}
	if err := est.Train(ctx, preds, 8); err != nil {
		t.Fatal(err)
	}
	// Estimating a trained predicate reuses its bucketization.
	scans := est.Store.DistanceScans()
	if _, _, err := est.Estimate(ctx, Unify, preds[0], 40); err != nil {
		t.Fatal(err)
	}
	if got := est.Store.DistanceScans(); got != scans {
		t.Fatalf("estimate after train rescanned: %d -> %d scans", scans, got)
	}
	if c.LayerStats()["sce"].Hits == 0 {
		t.Fatal("no bucketization reuse after train")
	}
}
