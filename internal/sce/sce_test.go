package sce

import (
	"context"
	"math"
	"testing"

	"unify/internal/corpus"
	"unify/internal/docstore"
	"unify/internal/llm"
)

func testSetup(t *testing.T, n int) (*Estimator, *corpus.Dataset) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	return NewEstimator(store, llm.NewSim(cfg), 8), ds
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2},
		{0, 50, 50}, // zero estimate floored at 1
		{50, 0, 50}, // zero truth floored at 1
		{0.5, 0.5, 1} /* both floored */}
	for _, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.truth, got, c.want)
		}
	}
}

func TestTrueCardinalityMatchesJudge(t *testing.T) {
	est, ds := testSetup(t, 400)
	truth, err := est.TrueCardinality(context.Background(), "related to injury", 16)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range ds.Docs {
		if d.Hidden.Aspect == "injury" {
			want++
		}
	}
	// With zero noise and two-hit matching, the LLM judgment equals the
	// hidden label on this corpus.
	if truth != want {
		t.Errorf("true cardinality %d, want %d", truth, want)
	}
}

func TestUniformUnbiasedOnLargePredicates(t *testing.T) {
	est, _ := testSetup(t, 800)
	ctx := context.Background()
	truth, _ := est.TrueCardinality(ctx, "related to training", 16)
	e, calls, err := est.Estimate(ctx, Uniform, "related to training", 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Error("estimation recorded no LLM calls")
	}
	if QError(e, float64(truth)) > 2.0 {
		t.Errorf("uniform estimate %v vs truth %d too far off with a large sample", e, truth)
	}
}

func TestTrainConcentratesImportance(t *testing.T) {
	est, _ := testSetup(t, 600)
	ctx := context.Background()
	if err := est.Train(ctx, []string{"related to football", "related to injury"}, 16); err != nil {
		t.Fatal(err)
	}
	f := est.Importance()
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance does not sum to 1: %v", sum)
	}
	// Nearest buckets must carry more importance than the farthest.
	if f[0] <= f[len(f)-1] {
		t.Errorf("importance not concentrated near the predicate: %v", f)
	}
}

func TestUnifyBeatsUniformOnRarePredicate(t *testing.T) {
	est, ds := testSetup(t, 1500)
	ctx := context.Background()
	if err := est.Train(ctx, []string{"related to football", "related to golf", "related to injury"}, 16); err != nil {
		t.Fatal(err)
	}
	// Pick the rarest category present.
	counts := map[string]int{}
	for _, d := range ds.Docs {
		counts[d.Hidden.Category]++
	}
	rare, rareN := "", 1<<30
	for c, n := range counts {
		if n > 4 && n < rareN {
			rare, rareN = c, n
		}
	}
	pred := "related to " + rare
	truth, _ := est.TrueCardinality(ctx, pred, 16)
	ns := 15 // 1% of the corpus
	var qUni, qUnify float64
	reps := 5
	for r := 0; r < reps; r++ {
		salt := string(rune('a' + r))
		eu, _, err := est.EstimateSeeded(ctx, Uniform, pred, ns, salt)
		if err != nil {
			t.Fatal(err)
		}
		en, _, err := est.EstimateSeeded(ctx, Unify, pred, ns, salt)
		if err != nil {
			t.Fatal(err)
		}
		qUni += QError(eu, float64(truth))
		qUnify += QError(en, float64(truth))
	}
	if qUnify >= qUni {
		t.Errorf("importance sampling (avg q-err %.2f) not better than uniform (%.2f) on rare predicate %q (truth %d)",
			qUnify/float64(reps), qUni/float64(reps), rare, truth)
	}
}

func TestAllMethodsRun(t *testing.T) {
	est, _ := testSetup(t, 300)
	ctx := context.Background()
	for _, m := range []Method{Uniform, Stratified, AIS, Unify} {
		e, calls, err := est.Estimate(ctx, m, "related to tennis", 24)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if e < 0 {
			t.Errorf("%s: negative estimate %v", m, e)
		}
		if len(calls) == 0 {
			t.Errorf("%s: no calls recorded", m)
		}
	}
	if _, _, err := est.Estimate(ctx, Method("bogus"), "x", 10); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	est, _ := testSetup(t, 300)
	ctx := context.Background()
	a, _, _ := est.Estimate(ctx, Unify, "related to rugby", 24)
	b, _, _ := est.Estimate(ctx, Unify, "related to rugby", 24)
	if a != b {
		t.Errorf("estimation not deterministic: %v vs %v", a, b)
	}
}
