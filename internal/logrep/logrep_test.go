package logrep

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompileAndExtract(t *testing.T) {
	tmpl, err := Compile("[Entity] that [Condition]")
	if err != nil {
		t.Fatal(err)
	}
	slots, ok := tmpl.Extract("questions that related to injury")
	if !ok {
		t.Fatal("extraction failed")
	}
	if slots["Entity"] != "questions" || slots["Condition"] != "related to injury" {
		t.Errorf("slots = %v", slots)
	}
}

func TestRepeatedPlaceholders(t *testing.T) {
	tmpl := MustCompile("the ratio of [Entity] to [Entity]")
	slots, ok := tmpl.Extract("the ratio of {v5} to {v6}")
	if !ok {
		t.Fatal("extraction failed")
	}
	if slots["Entity"] != "{v5}" || slots["Entity2"] != "{v6}" {
		t.Errorf("slots = %v", slots)
	}
	if got := tmpl.Slots(); len(got) != 2 || got[0] != "Entity" || got[1] != "Entity2" {
		t.Errorf("Slots = %v", got)
	}
}

func TestMixedPlaceholders(t *testing.T) {
	tmpl := MustCompile("the [Number]th percentile of [Field] of [Entity]")
	slots, ok := tmpl.Extract("the 90th percentile of views of {v1}")
	if !ok {
		t.Fatal("extraction failed")
	}
	if slots["Number"] != "90" || slots["Field"] != "views" || slots["Entity"] != "{v1}" {
		t.Errorf("slots = %v", slots)
	}
}

func TestNonGreedyFirstSlot(t *testing.T) {
	tmpl := MustCompile("aggregate [Entity] by [Attribute]")
	slots, ok := tmpl.Extract("aggregate questions with more than 500 views by sport")
	if !ok {
		t.Fatal("extraction failed")
	}
	// The last placeholder is greedy, so "by" splits at the last
	// occurrence... the first slot is lazy, so it splits at the FIRST
	// "by"; verify a deterministic, documented outcome.
	if slots["Entity"] == "" || slots["Attribute"] == "" {
		t.Errorf("slots = %v", slots)
	}
}

func TestNoMatch(t *testing.T) {
	tmpl := MustCompile("[Entity] that [Condition]")
	if _, ok := tmpl.Extract("completely unrelated phrasing"); ok {
		t.Error("extraction should fail")
	}
}

func TestLiteralRegexCharsQuoted(t *testing.T) {
	tmpl, err := Compile("count (exactly) [Number] items?")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tmpl.Extract("count (exactly) 5 items?"); !ok {
		t.Error("meta characters in template text must be quoted")
	}
}

func TestTemplateWithoutPlaceholders(t *testing.T) {
	tmpl := MustCompile("explain the result")
	slots, ok := tmpl.Extract("explain the result")
	if !ok || len(slots) != 0 {
		t.Errorf("got %v, %v", slots, ok)
	}
	if _, ok := tmpl.Extract("explain something else"); ok {
		t.Error("literal template matched different text")
	}
}

// TestPropertyInstantiateExtract: filling a template with arbitrary slot
// values and extracting them back must round-trip, as long as the values
// do not contain the template's literal separators.
func TestPropertyInstantiateExtract(t *testing.T) {
	tmpl := MustCompile("[Entity] that [Condition]")
	clean := func(s string) string {
		// Remove the template's literal separator word entirely, plus
		// newlines; the property is about slot recovery, not separator
		// ambiguity (which the non-greedy matching resolves leftmost).
		fields := strings.Fields(s)
		kept := fields[:0]
		for _, f := range fields {
			if f != "that" {
				kept = append(kept, f)
			}
		}
		out := strings.Join(kept, " ")
		if out == "" {
			out = "x"
		}
		return out
	}
	f := func(entity, cond string) bool {
		e, c := clean(entity), clean(cond)
		text := e + " that " + c
		slots, ok := tmpl.Extract(text)
		if !ok {
			return false
		}
		return slots["Entity"] == e && slots["Condition"] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
