// Package logrep implements logical representations (paper Definition 1):
// structured natural-language templates with semantic placeholders such as
// [Entity] and [Condition]. Operators declare logical representations;
// queries are matched against them by embedding similarity; and after the
// LLM rewrites a matched query segment into template form, the concrete
// placeholder values are extracted with compiled regular expressions
// (paper §III-C, "Determining Operator Input").
package logrep

import (
	"fmt"
	"regexp"
	"strings"
)

// Placeholders recognised inside templates.
var placeholderRe = regexp.MustCompile(`\[(Entity|Condition|Attribute|Number|Field)\]`)

// Template is a compiled logical representation.
type Template struct {
	Text  string
	slots []string // slot key per capture group: Entity, Entity2, Condition, ...
	re    *regexp.Regexp
}

// Compile parses a logical representation into a matcher. Repeated
// [Entity] placeholders bind to Entity, Entity2, Entity3...
func Compile(text string) (*Template, error) {
	t := &Template{Text: text}
	var pattern strings.Builder
	pattern.WriteString(`^`)
	last := 0
	count := map[string]int{}
	locs := placeholderRe.FindAllStringSubmatchIndex(text, -1)
	for i, loc := range locs {
		pattern.WriteString(regexp.QuoteMeta(text[last:loc[0]]))
		key := text[loc[2]:loc[3]]
		count[key]++
		if count[key] > 1 {
			key = fmt.Sprintf("%s%d", key, count[key])
		}
		t.slots = append(t.slots, key)
		if i == len(locs)-1 {
			pattern.WriteString(`(.+)`)
		} else {
			pattern.WriteString(`(.+?)`)
		}
		last = loc[1]
	}
	pattern.WriteString(regexp.QuoteMeta(text[last:]))
	pattern.WriteString(`$`)
	re, err := regexp.Compile(pattern.String())
	if err != nil {
		return nil, fmt.Errorf("logrep: compile %q: %w", text, err)
	}
	t.re = re
	return t, nil
}

// MustCompile is Compile that panics on error (for static registries).
func MustCompile(text string) *Template {
	t, err := Compile(text)
	if err != nil {
		panic(err)
	}
	return t
}

// Extract matches a rewritten segment against the template and returns
// the placeholder bindings.
func (t *Template) Extract(s string) (map[string]string, bool) {
	m := t.re.FindStringSubmatch(strings.TrimSpace(s))
	if m == nil {
		return nil, false
	}
	out := make(map[string]string, len(t.slots))
	for i, key := range t.slots {
		out[key] = strings.TrimSpace(m[i+1])
	}
	return out, true
}

// Slots returns the slot keys in template order.
func (t *Template) Slots() []string {
	return append([]string(nil), t.slots...)
}
