package cost

import (
	"testing"
	"time"

	"unify/internal/llm"
)

func TestColdStartPriors(t *testing.T) {
	c := NewCalibrator(16)
	if c.Mu() <= 0 {
		t.Error("cold μ must be positive")
	}
	if c.OutPerItem("SemanticFilter") <= 0 {
		t.Error("cold out_op must be positive")
	}
	if c.EstimateLLM("SemanticFilter", 100) <= 0 {
		t.Error("cold LLM estimate must be positive")
	}
	if c.EstimatePre("ExactFilter", 100) != 100*DefaultPrePerItem {
		t.Error("cold pre estimate should use the prior")
	}
}

func TestCalibrationConverges(t *testing.T) {
	c := NewCalibrator(16)
	// Feed history: 10 calls covering 160 items, 2 tokens/item at
	// 10ms/token.
	var calls []llm.Call
	for i := 0; i < 10; i++ {
		calls = append(calls, llm.Call{Task: "filter_batch", OutTokens: 32, Dur: 320 * time.Millisecond})
	}
	c.RecordLLM("SemanticFilter", 160, calls)
	mu := c.Mu()
	if mu < 8*time.Millisecond || mu > 14*time.Millisecond {
		t.Errorf("μ = %v, want ~10ms", mu)
	}
	out := c.OutPerItem("SemanticFilter")
	if out < 1.8 || out > 2.2 {
		t.Errorf("out_op = %v, want ~2", out)
	}
	// card·μ·out_op for 320 items ≈ 2 × 320 × 10ms = 6.4s.
	est := c.EstimateLLM("SemanticFilter", 320)
	if est < 5*time.Second || est > 8*time.Second {
		t.Errorf("estimate = %v, want ~6.4s", est)
	}
}

func TestEstimateScalesWithCardinality(t *testing.T) {
	c := NewCalibrator(16)
	small := c.EstimateLLM("X", 10)
	big := c.EstimateLLM("X", 1000)
	if big <= small {
		t.Error("LLM cost must grow with cardinality")
	}
	ratio := float64(big) / float64(small)
	if ratio < 90 || ratio > 110 {
		t.Errorf("cost should scale linearly: ratio %v", ratio)
	}
}

func TestPreCalibration(t *testing.T) {
	c := NewCalibrator(16)
	c.RecordPre("ExactFilter", 1000, 50*time.Millisecond)
	est := c.EstimatePre("ExactFilter", 2000)
	if est != 100*time.Millisecond {
		t.Errorf("pre estimate = %v, want 100ms", est)
	}
	if c.PreDuration("ExactFilter", 2000) != est {
		t.Error("PreDuration should match the calibrated estimate")
	}
}

func TestEstimateLLMCalls(t *testing.T) {
	c := NewCalibrator(16)
	if n := c.EstimateLLMCalls(0); n != 0 {
		t.Errorf("0 items -> %d calls", n)
	}
	if n := c.EstimateLLMCalls(16); n != 1 {
		t.Errorf("16 items -> %d calls", n)
	}
	if n := c.EstimateLLMCalls(17); n != 2 {
		t.Errorf("17 items -> %d calls", n)
	}
}

func TestNegativeCardClamped(t *testing.T) {
	c := NewCalibrator(16)
	if c.EstimateLLM("X", -5) != 0 {
		t.Error("negative cardinality should cost nothing")
	}
	if c.EstimatePre("X", -5) != 0 {
		t.Error("negative cardinality should cost nothing")
	}
}
