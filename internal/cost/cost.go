// Package cost implements the paper's §VI-A cost model. Operator cost is
// execution time. LLM-based implementations cost card·μ·out_op, where μ
// (time per output token) and out_op (average output tokens per processed
// item) are estimated from recorded execution history; pre-programmed
// implementations cost a calibrated function of input cardinality.
package cost

import (
	"sync"
	"time"

	"unify/internal/llm"
)

// Calibrator accumulates execution history and produces cost estimates.
// It is safe for concurrent use.
type Calibrator struct {
	mu sync.Mutex

	// frozen stops further history from being recorded (see Freeze).
	frozen bool

	// Per physical-operator LLM statistics.
	llmStats map[string]*llmStat
	// Global per-token time (μ), pooled across operators.
	totalTokens int
	totalDur    time.Duration

	// Per pre-programmed operator: observed per-item durations.
	preStats map[string]*preStat

	// BatchSize mirrors the executor's batching so call-count estimates
	// match reality.
	BatchSize int
}

type llmStat struct {
	items  int // processed items (cardinality)
	tokens int // output tokens generated
	calls  int
}

type preStat struct {
	items int
	dur   time.Duration
}

// NewCalibrator returns a calibrator with mild priors so cold-start
// estimates exist before any history accumulates.
func NewCalibrator(batchSize int) *Calibrator {
	if batchSize <= 0 {
		batchSize = 16
	}
	c := &Calibrator{
		llmStats:  map[string]*llmStat{},
		preStats:  map[string]*preStat{},
		BatchSize: batchSize,
	}
	// Priors: ~1.2 output tokens per item at the worker model's speed,
	// and 25µs per item of pre-programmed work.
	c.totalTokens = 100
	c.totalDur = 100 * llm.WorkerProfile().PerOutToken
	return c
}

// Freeze stops the calibrator from absorbing further execution history;
// estimates keep serving the state at freeze time. Concurrent benchmarks
// freeze the cost model after a sequential warmup pass so every query
// plans against the same converged statistics regardless of the racy
// wall-clock order in which other queries happen to finish.
func (c *Calibrator) Freeze() {
	c.mu.Lock()
	c.frozen = true
	c.mu.Unlock()
}

// RecordLLM feeds one operator execution's recorded calls into the model.
func (c *Calibrator) RecordLLM(phys string, card int, calls []llm.Call) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return
	}
	st, ok := c.llmStats[phys]
	if !ok {
		st = &llmStat{}
		c.llmStats[phys] = st
	}
	st.items += card
	st.calls += len(calls)
	for _, call := range calls {
		st.tokens += call.OutTokens
		c.totalTokens += call.OutTokens
		c.totalDur += call.Dur
	}
}

// RecordPre feeds one pre-programmed execution into the model.
func (c *Calibrator) RecordPre(phys string, card int, dur time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen {
		return
	}
	st, ok := c.preStats[phys]
	if !ok {
		st = &preStat{}
		c.preStats[phys] = st
	}
	st.items += card
	st.dur += dur
}

// Mu returns the estimated time per output token (μ).
func (c *Calibrator) Mu() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muLocked()
}

func (c *Calibrator) muLocked() time.Duration {
	if c.totalTokens == 0 {
		return llm.WorkerProfile().PerOutToken
	}
	return c.totalDur / time.Duration(c.totalTokens)
}

// OutPerItem returns out_op: the average output tokens generated per
// processed item for the physical operator.
func (c *Calibrator) OutPerItem(phys string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outPerItemLocked(phys)
}

func (c *Calibrator) outPerItemLocked(phys string) float64 {
	st, ok := c.llmStats[phys]
	if !ok || st.items == 0 {
		return 1.3 // prior: roughly one verdict token plus separators
	}
	return float64(st.tokens) / float64(st.items)
}

// EstimateLLM returns the total LLM busy time of an LLM-based operator
// over card items: card·μ·out_op (paper §VI-A). This is busy time, not
// wall time: the executor parallelizes calls across slots.
func (c *Calibrator) EstimateLLM(phys string, card int) time.Duration {
	if card < 0 {
		card = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	perItem := float64(c.muLocked()) * c.outPerItemLocked(phys)
	return time.Duration(perItem * float64(card))
}

// EstimateLLMCalls returns the expected number of model invocations given
// the batching policy.
func (c *Calibrator) EstimateLLMCalls(card int) int {
	if card <= 0 {
		return 0
	}
	return (card + c.BatchSize - 1) / c.BatchSize
}

// DefaultPrePerItem is the prior for pre-programmed per-item work (regex
// scans over a rendered page).
const DefaultPrePerItem = 25 * time.Microsecond

// EstimatePre returns the estimated duration of a pre-programmed operator
// over card items: the calibrated f_op(card).
func (c *Calibrator) EstimatePre(phys string, card int) time.Duration {
	if card < 0 {
		card = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.preStats[phys]
	if !ok || st.items == 0 {
		return time.Duration(card) * DefaultPrePerItem
	}
	perItem := st.dur / time.Duration(st.items)
	return perItem * time.Duration(card)
}

// PreDuration models the actual duration charged to the virtual clock for
// executing a pre-programmed operator over card items. The model is the
// calibrated per-item cost; it is deterministic so experiments reproduce
// exactly.
func (c *Calibrator) PreDuration(phys string, card int) time.Duration {
	return c.EstimatePre(phys, card)
}

// EstimateLLMTokens returns the expected number of generated tokens for
// an LLM-based operator over card items — the quantity a monetary cost
// objective charges for (the paper's footnote 1: optimizing total cost
// instead of total time only swaps the cost function).
func (c *Calibrator) EstimateLLMTokens(phys string, card int) float64 {
	if card < 0 {
		card = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outPerItemLocked(phys) * float64(card)
}
