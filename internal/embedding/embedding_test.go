package embedding

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedUnitNorm(t *testing.T) {
	e := New(128)
	v := e.Embed("questions about football with many views")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("norm^2 = %v, want 1", norm)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	e := New(128)
	a := e.Embed("injury recovery advice")
	b := e.Embed("injury recovery advice")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestEmbedEmptyIsZero(t *testing.T) {
	e := New(64)
	v := e.Embed("the of and")
	for _, x := range v {
		if x != 0 {
			t.Fatal("stopword-only text should embed to zero")
		}
	}
}

// TestTopicalSimilarity is the load-bearing property: texts sharing topic
// vocabulary must be closer than unrelated texts.
func TestTopicalSimilarity(t *testing.T) {
	e := New(DefaultDim)
	football1 := e.Embed("the goalkeeper saved a penalty in the football match")
	football2 := e.Embed("football fans discussed the penalty and the goalkeeper")
	chemistry := e.Embed("the laboratory experiment used a chemistry hypothesis")
	dSame := Distance(football1, football2)
	dDiff := Distance(football1, chemistry)
	if dSame >= dDiff {
		t.Errorf("same-topic distance %v not below cross-topic %v", dSame, dDiff)
	}
}

func TestCosineBounds(t *testing.T) {
	e := New(64)
	f := func(a, b string) bool {
		va, vb := e.Embed(a), e.Embed(b)
		c := Cosine(va, vb)
		if c < -1.0001 || c > 1.0001 {
			return false
		}
		d := Distance(va, vb)
		return d >= 0 && d <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceSelf(t *testing.T) {
	e := New(64)
	v := e.Embed("identical text identical text")
	if d := Distance(v, v); d > 1e-6 {
		t.Errorf("self-distance = %v", d)
	}
}

func TestMinDim(t *testing.T) {
	e := New(1)
	if e.Dim() < 8 {
		t.Errorf("dim clamped to %d, want >= 8", e.Dim())
	}
}
