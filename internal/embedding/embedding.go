// Package embedding implements the deterministic text-embedding substrate
// that substitutes for the Sentence-Transformer model used in the paper.
//
// The embedder hashes stemmed unigrams and bigrams into a fixed-dimension
// vector (feature hashing with a signed second hash), applies sublinear
// term-frequency weighting and L2-normalizes the result. Cosine distance in
// this space correlates with lexical/topical overlap, which is the only
// property Unify depends on: operator matching by logical-representation
// similarity, importance sampling by query-document distance, and the
// vector IndexScan.
package embedding

import (
	"hash/fnv"
	"math"

	"unify/internal/lexicon"
	"unify/internal/tokenizer"
)

// DefaultDim is the default embedding dimensionality.
const DefaultDim = 256

// Embedder converts text into unit-length float32 vectors. The zero value
// is not usable; construct with New.
type Embedder struct {
	dim int
}

// New returns an Embedder producing vectors of the given dimension.
// Dimensions below 8 are raised to 8.
func New(dim int) *Embedder {
	if dim < 8 {
		dim = 8
	}
	return &Embedder{dim: dim}
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed returns the unit-length embedding of text. Empty or stop-word-only
// text yields the zero vector.
//
// Terms that name a lexicon concept are expanded with the concept's
// indicator vocabulary at reduced weight: this emulates the semantic
// proximity a trained sentence embedder provides ("golf" lands near
// "fairway"), which the vector IndexScan and importance sampling rely on.
func (e *Embedder) Embed(text string) []float32 {
	v := make([]float32, e.dim)
	terms := tokenizer.Terms(text)
	e.accumulate(v, terms, 1.0)
	e.accumulate(v, tokenizer.Bigrams(terms), 0.5)
	e.accumulate(v, expandConcepts(terms), 0.6)
	normalize(v)
	return v
}

// expandConcepts returns the stemmed indicator words of every concept
// named in terms.
func expandConcepts(terms []string) []string {
	var out []string
	for _, t := range terms {
		c, ok := lexicon.Lookup(t)
		if !ok {
			continue
		}
		for _, w := range c.Words {
			s := tokenizer.Stem(w)
			if s != t {
				out = append(out, s)
			}
		}
	}
	return out
}

func (e *Embedder) accumulate(v []float32, feats []string, weight float64) {
	tf := make(map[string]int, len(feats))
	for _, f := range feats {
		tf[f]++
	}
	for f, n := range tf {
		idx, sign := hashFeature(f, e.dim)
		v[idx] += float32(sign) * float32(weight*(1+math.Log(float64(n))))
	}
}

// hashFeature maps a feature to (bucket, ±1) using two FNV variants.
func hashFeature(f string, dim int) (int, int) {
	h := fnv.New64a()
	h.Write([]byte(f))
	sum := h.Sum64()
	idx := int(sum % uint64(dim))
	sign := 1
	if (sum>>32)&1 == 1 {
		sign = -1
	}
	return idx, sign
}

func normalize(v []float32) {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	if s == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(s))
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two vectors of equal length.
// For unit vectors this is the dot product.
func Cosine(a, b []float32) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Distance returns the cosine distance 1 - Cosine(a, b), clamped to
// [0, 2]. Smaller means more similar.
func Distance(a, b []float32) float64 {
	d := 1 - Cosine(a, b)
	if d < 0 {
		return 0
	}
	if d > 2 {
		return 2
	}
	return d
}
