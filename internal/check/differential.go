package check

import (
	"context"
	"fmt"
)

// Axis is one metamorphic configuration dimension: two system
// configurations that must produce equivalent answers on every query.
// The driver runs the same seeded workload slice through both sides and
// reports divergences. The concrete system construction lives with the
// root package tests (check cannot import unify without a cycle); the
// axis metadata lives here so docs, CI, and tests agree on the list.
type Axis struct {
	Name        string
	Description string
	// Exact requires byte-identical answer text (and, where wired,
	// identical virtual latency); approximate axes instead compare
	// workload accuracy within the seed tolerance.
	Exact bool
}

// Axes is the registry of metamorphic axes the harness covers.
var Axes = []Axis{
	{
		Name:        "cache",
		Description: "answer cache on (default budget) vs off: cache hits must be invisible to results",
		Exact:       true,
	},
	{
		Name:        "faults-zero",
		Description: "fault plan installed with rate 0 vs no fault plan: a never-firing injector must be a no-op",
		Exact:       true,
	},
	{
		Name:        "pool",
		Description: "shared slot pool vs solo (private schedule) execution: a lone query sees identical text and virtual latency",
		Exact:       true,
	},
	{
		Name:        "constructors",
		Description: "deprecated Open/OpenDataset/OpenWithClients vs equivalent unify.New: byte-identical answers",
		Exact:       true,
	},
	{
		Name:        "mode-override",
		Description: "system-level optimizer mode vs per-query WithModeOverride of the same mode",
		Exact:       true,
	},
	{
		Name:        "optimized-vs-exhaustive",
		Description: "cost-based optimized plans vs the exhaustive baseline: workload accuracy within the seed tolerance",
		Exact:       false,
	},
	{
		Name:        "batching",
		Description: "continuous batching on vs off: cross-query coalescing changes schedules only, never answer text",
		Exact:       true,
	},
	{
		Name:        "usql_vs_nl",
		Description: "USQL-parsed vs LLM-planned routes on dual-form workload queries: byte-identical answers, and the parsed side makes zero planner-LLM calls",
		Exact:       true,
	},
	{
		Name:        "ingest",
		Description: "corpus built incrementally (base + AddDocs) vs statically over the full collection: byte-identical answers on the same workload",
		Exact:       true,
	},
}

// Runner executes one query on one side of an axis and returns a
// comparable answer fingerprint (typically text, or text plus virtual
// latency for exact axes).
type Runner func(ctx context.Context, query string) (string, error)

// Mismatch records one divergence the differential driver found.
type Mismatch struct {
	Axis  string
	Query string
	Left  string
	Right string
	Err   error
}

func (m Mismatch) String() string {
	if m.Err != nil {
		return fmt.Sprintf("[%s] %q: %v", m.Axis, m.Query, m.Err)
	}
	return fmt.Sprintf("[%s] %q: left %q != right %q", m.Axis, m.Query, m.Left, m.Right)
}

// Differential runs every query through both sides of an axis and
// collects mismatches. An error on exactly one side is a mismatch (the
// axis changed observable behavior); an error on both sides must be the
// same error text to count as equivalent.
func Differential(ctx context.Context, axis string, queries []string, left, right Runner) []Mismatch {
	var out []Mismatch
	for _, q := range queries {
		lv, lerr := left(ctx, q)
		rv, rerr := right(ctx, q)
		switch {
		case lerr != nil || rerr != nil:
			if fmt.Sprint(lerr) != fmt.Sprint(rerr) {
				out = append(out, Mismatch{Axis: axis, Query: q,
					Err: fmt.Errorf("left err %v, right err %v", lerr, rerr)})
			}
		case lv != rv:
			out = append(out, Mismatch{Axis: axis, Query: q, Left: lv, Right: rv})
		}
	}
	return out
}
