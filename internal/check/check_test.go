package check

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"unify/internal/core"
	"unify/internal/ops"
	"unify/internal/vtime"
)

// goodPlan is a well-formed Filter -> Count pipeline.
func goodPlan() *core.Plan {
	return &core.Plan{Query: "test", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Args: ops.Args{"Entity": "questions", "Condition": "related to golf"},
			Inputs: []string{"dataset"}, OutVar: "v1", Phys: "SemanticFilter", EstCard: 40},
		{ID: 1, Op: "Count", Args: ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}, Phys: "PreCount", EstCard: 1},
	}}
}

func hasViolation(vs []Violation, inv string) bool {
	for _, v := range vs {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

func TestPlanCleanOnGoodPlan(t *testing.T) {
	if vs := Plan(goodPlan(), 200, true); len(vs) != 0 {
		t.Fatalf("violations on a well-formed plan: %v", vs)
	}
	if vs := Plan(goodPlan(), 200, false); len(vs) != 0 {
		t.Fatalf("violations on a well-formed logical plan: %v", vs)
	}
}

func TestPlanNonEmpty(t *testing.T) {
	if vs := Plan(&core.Plan{}, 100, false); !hasViolation(vs, InvPlanNonEmpty) {
		t.Fatalf("empty plan not flagged: %v", vs)
	}
	if vs := Plan(nil, 100, false); !hasViolation(vs, InvPlanNonEmpty) {
		t.Fatalf("nil plan not flagged: %v", vs)
	}
}

func TestPlanAcyclic(t *testing.T) {
	p := goodPlan()
	p.Nodes[0].Deps = []int{1} // 0 <-> 1
	if vs := Plan(p, 100, false); !hasViolation(vs, InvPlanAcyclic) {
		t.Fatalf("cycle not flagged: %v", vs)
	}
}

func TestPlanUniqueOutputs(t *testing.T) {
	p := goodPlan()
	p.Nodes[1].OutVar = "v1" // collides with node 0
	if vs := Plan(p, 100, false); !hasViolation(vs, InvPlanUniqueOutputs) {
		t.Fatalf("duplicate output variable not flagged: %v", vs)
	}
	p2 := goodPlan()
	p2.Nodes[1] = &core.Node{ID: 0, Op: "Filter",
		Args:   ops.Args{"Entity": "questions", "Condition": "related to tennis"},
		Inputs: []string{"dataset"}, OutVar: "v2"}
	if vs := Plan(p2, 100, false); !hasViolation(vs, InvPlanUniqueOutputs) {
		t.Fatalf("duplicate node id not flagged: %v", vs)
	}
}

func TestPlanDepsMatchInputs(t *testing.T) {
	p := goodPlan()
	p.Nodes[1].Deps = nil // consumes {v1} without depending on node 0
	if vs := Plan(p, 100, false); !hasViolation(vs, InvPlanDepsMatchInputs) {
		t.Fatalf("missing dep not flagged: %v", vs)
	}
	p2 := goodPlan()
	p2.Nodes[1].Inputs = []string{"{v9}"} // no producer
	if vs := Plan(p2, 100, false); !hasViolation(vs, InvPlanDepsMatchInputs) {
		t.Fatalf("unproduced input not flagged: %v", vs)
	}
}

func TestPlanSingleSink(t *testing.T) {
	p := goodPlan()
	// A dangling second sink: produced but never consumed, not the root.
	p.Nodes = append(p.Nodes[:1], &core.Node{
		ID: 2, Op: "Filter", Args: ops.Args{"Entity": "questions", "Condition": "related to tennis"},
		Inputs: []string{"dataset"}, OutVar: "v3", Phys: "SemanticFilter", EstCard: 10,
	}, p.Nodes[1])
	if vs := Plan(p, 100, true); !hasViolation(vs, InvPlanSingleSink) {
		t.Fatalf("dead branch not flagged: %v", vs)
	}
}

func TestPlanTypeCompat(t *testing.T) {
	p := goodPlan()
	p.Nodes[0].Op = "Frobnicate"
	if vs := Plan(p, 100, false); !hasViolation(vs, InvPlanTypeCompat) {
		t.Fatalf("unknown operator not flagged: %v", vs)
	}
	p2 := goodPlan()
	p2.Nodes[1].Phys = "NoSuchImpl"
	if vs := Plan(p2, 100, true); !hasViolation(vs, InvPlanTypeCompat) {
		t.Fatalf("physical not in spec not flagged: %v", vs)
	}
	p3 := goodPlan()
	p3.Nodes[1].Phys = ""
	if vs := Plan(p3, 100, true); !hasViolation(vs, InvPlanTypeCompat) {
		t.Fatalf("missing physical selection not flagged: %v", vs)
	}
}

func TestPlanCardBounds(t *testing.T) {
	p := goodPlan()
	p.Nodes[0].EstCard = 999 // corpus is 200
	if vs := Plan(p, 200, true); !hasViolation(vs, InvPlanCardBounds) {
		t.Fatalf("oversized EstCard not flagged: %v", vs)
	}
	p.Nodes[0].EstCard = -1
	if vs := Plan(p, 200, true); !hasViolation(vs, InvPlanCardBounds) {
		t.Fatalf("negative EstCard not flagged: %v", vs)
	}
	// Logical plans have no estimates yet: zero EstCard must pass.
	p2 := goodPlan()
	p2.Nodes[0].EstCard, p2.Nodes[1].EstCard = 0, 0
	p2.Nodes[0].Phys, p2.Nodes[1].Phys = "", ""
	if vs := Plan(p2, 200, false); len(vs) != 0 {
		t.Fatalf("logical plan flagged: %v", vs)
	}
}

func goodFacts() AnswerFacts {
	return AnswerFacts{
		Docs: 200, Slots: 4, MaxReplans: 1,
		PlanNodes: 2, NodeStats: 2,
		ScannedDocs: 240, SkippedDocs: 0, Replans: 0,
		LLMCalls: 20, CachedLLMCalls: 5,
		PlanningDur: 2 * time.Second, EstimationDur: time.Second,
		ExecDur: 4 * time.Second, TotalDur: 7 * time.Second,
		SoloExecDur: 4 * time.Second, SlotBusy: 10 * time.Second,
	}
}

func TestAnswerCleanOnGoodFacts(t *testing.T) {
	if vs := Answer(goodFacts()); len(vs) != 0 {
		t.Fatalf("violations on consistent facts: %v", vs)
	}
}

func TestAnswerViolations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AnswerFacts)
		inv  string
	}{
		{"negative duration", func(f *AnswerFacts) { f.ExecDur = -time.Second }, InvAnswerDursNonNeg},
		{"non-additive total", func(f *AnswerFacts) { f.TotalDur = time.Second }, InvAnswerDurAdditive},
		{"solo exceeds contended", func(f *AnswerFacts) { f.SoloExecDur = time.Hour }, InvAnswerSoloBound},
		{"utilization over 1", func(f *AnswerFacts) { f.SlotBusy = time.Hour }, InvAnswerUtilBound},
		{"skipped exceeds scanned", func(f *AnswerFacts) { f.SkippedDocs = 500 }, InvAnswerSkippedBound},
		{"replans over bound", func(f *AnswerFacts) { f.Replans = 2 }, InvAnswerReplansBound},
		{"missing node stats", func(f *AnswerFacts) { f.NodeStats = 1 }, InvAnswerNodesComplete},
		{"cached exceeds total calls", func(f *AnswerFacts) { f.CachedLLMCalls = 99 }, InvAnswerCallsBound},
	}
	for _, tc := range cases {
		f := goodFacts()
		tc.mut(&f)
		if vs := Answer(f); !hasViolation(vs, tc.inv) {
			t.Errorf("%s: %s not flagged: %v", tc.name, tc.inv, vs)
		}
	}
}

func TestVTimeCleanOnRealSchedule(t *testing.T) {
	tasks := []vtime.Task{
		{ID: "a", Job: 0, Units: []vtime.Unit{{Dur: time.Second, Resource: vtime.ResourceLLM}, {Dur: time.Second, Resource: vtime.ResourceLLM}}},
		{ID: "b", Job: 1, Units: []vtime.Unit{{Dur: 3 * time.Second, Resource: vtime.ResourceLLM}}},
		{ID: "c", Job: 1, Deps: []string{"b"}, Units: []vtime.Unit{{Dur: time.Second}}},
	}
	res, err := vtime.NewSchedule(2).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if vs := VTime(res, 2); len(vs) != 0 {
		t.Fatalf("violations on a real schedule: %v", vs)
	}
}

func TestVTimeConservationViolations(t *testing.T) {
	tasks := []vtime.Task{
		{ID: "a", Job: 0, Units: []vtime.Unit{{Dur: time.Second, Resource: vtime.ResourceLLM}}},
	}
	res, err := vtime.NewSchedule(2).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	broken := res
	broken.JobBusy = map[int]time.Duration{0: 5 * time.Second} // != Busy[llm]
	if vs := VTime(broken, 2); !hasViolation(vs, InvVTimeConservation) {
		t.Fatalf("busy conservation break not flagged: %v", vs)
	}
	over := res
	over.Busy = map[string]time.Duration{vtime.ResourceLLM: time.Hour}
	if vs := VTime(over, 2); !hasViolation(vs, InvVTimeSlotBound) {
		t.Fatalf("slot capacity break not flagged: %v", vs)
	}
}

// Satellite (batch.fairness_bound mutation test): a clean batched result
// passes, and each hand-mutated violation — oversized batch, deferral
// past the window, duration over the fairness cap, duplicate jobs, wait
// mismatch, share leakage — fires the invariant.
func TestBatchFairnessViolations(t *testing.T) {
	pol := &vtime.BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: 2 * time.Second, MaxBatch: 4}
	good := func() vtime.Result {
		return vtime.Result{Batches: []vtime.BatchGrant{{
			Resource: vtime.ResourceLLM, Key: "k",
			GrantAt: 0, Start: 50 * time.Millisecond, Dur: 900 * time.Millisecond,
			Members: []vtime.BatchMember{
				{Task: "a", Job: 0, Ready: 0, Wait: 50 * time.Millisecond, Solo: 700 * time.Millisecond, Share: 500 * time.Millisecond},
				{Task: "b", Job: 1, Ready: 50 * time.Millisecond, Wait: 0, Solo: 600 * time.Millisecond, Share: 400 * time.Millisecond},
			},
		}}}
	}
	if vs := BatchFairness(good(), pol); len(vs) != 0 {
		t.Fatalf("clean batched result flagged: %v", vs)
	}
	if vs := BatchFairness(good(), nil); len(vs) != 0 {
		t.Fatalf("nil policy must disable the check: %v", vs)
	}

	mutations := map[string]func(*vtime.Result){
		"oversized batch": func(r *vtime.Result) {
			g := &r.Batches[0]
			for len(g.Members) <= 4 {
				g.Members = append(g.Members, vtime.BatchMember{Job: 10 + len(g.Members)})
			}
		},
		"deferred past window": func(r *vtime.Result) {
			r.Batches[0].Start = 200 * time.Millisecond
			for i := range r.Batches[0].Members {
				m := &r.Batches[0].Members[i]
				m.Wait = r.Batches[0].Start - m.Ready
			}
		},
		"over fairness cap": func(r *vtime.Result) {
			r.Batches[0].Dur = 3 * time.Second
			r.Batches[0].Members[0].Share = 2600 * time.Millisecond
		},
		"duplicate jobs": func(r *vtime.Result) {
			r.Batches[0].Members[1].Job = r.Batches[0].Members[0].Job
		},
		"wait mismatch": func(r *vtime.Result) {
			r.Batches[0].Members[1].Wait = time.Second
		},
		"share leakage": func(r *vtime.Result) {
			r.Batches[0].Members[0].Share += time.Millisecond
		},
	}
	for name, mutate := range mutations {
		r := good()
		mutate(&r)
		if vs := BatchFairness(r, pol); !hasViolation(vs, InvBatchFairness) {
			t.Errorf("mutation %q not flagged: %v", name, vs)
		}
	}
}

// A real batched schedule passes the fairness invariant end to end.
func TestBatchFairnessCleanOnRealSchedule(t *testing.T) {
	pol := &vtime.BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: 2500 * time.Millisecond, MaxBatch: 8}
	s := vtime.NewSchedule(4)
	s.Batching = pol
	spec := func() *vtime.BatchSpec {
		return &vtime.BatchSpec{
			Key: "k", Base: 80 * time.Millisecond, Decode: 200 * time.Millisecond,
			TemplatePrefill: 30 * time.Millisecond, PayloadPrefill: 100 * time.Millisecond,
		}
	}
	var tasks []vtime.Task
	for j := 0; j < 5; j++ {
		tasks = append(tasks, vtime.Task{
			ID: string(rune('a' + j)), Job: j, Sequential: true,
			Units: []vtime.Unit{
				{Dur: 410 * time.Millisecond, Resource: vtime.ResourceLLM, Batch: spec()},
				{Dur: 410 * time.Millisecond, Resource: vtime.ResourceLLM, Batch: spec()},
			},
		})
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) == 0 {
		t.Fatal("no batch grants recorded on a batched schedule")
	}
	if vs := BatchFairness(res, pol); len(vs) != 0 {
		t.Fatalf("violations on a real batched schedule: %v", vs)
	}
}

func TestPoolUtilization(t *testing.T) {
	if vs := PoolUtilization(0.97); len(vs) != 0 {
		t.Fatalf("valid utilization flagged: %v", vs)
	}
	if vs := PoolUtilization(1.2); !hasViolation(vs, InvPoolUtilBound) {
		t.Fatalf("utilization > 1 not flagged: %v", vs)
	}
}

func TestFailRendersViolations(t *testing.T) {
	if err := Fail("ctx", nil, nil); err != nil {
		t.Fatalf("no violations must yield nil error, got %v", err)
	}
	err := Fail("unit test", []Violation{{Invariant: InvPlanAcyclic, Detail: "boom"}}, nil)
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("Fail returned %T", err)
	}
	if !strings.Contains(err.Error(), InvPlanAcyclic) || !strings.Contains(err.Error(), "unit test") {
		t.Fatalf("error message missing context: %q", err.Error())
	}
}

func TestDifferentialDriver(t *testing.T) {
	echo := func(_ context.Context, q string) (string, error) { return "ans:" + q, nil }
	warp := func(_ context.Context, q string) (string, error) {
		if q == "q2" {
			return "divergent", nil
		}
		return "ans:" + q, nil
	}
	failing := func(_ context.Context, q string) (string, error) { return "", errors.New("boom") }

	if ms := Differential(context.Background(), "id", []string{"q1", "q2"}, echo, echo); len(ms) != 0 {
		t.Fatalf("identical runners diverged: %v", ms)
	}
	ms := Differential(context.Background(), "warp", []string{"q1", "q2", "q3"}, echo, warp)
	if len(ms) != 1 || ms[0].Query != "q2" {
		t.Fatalf("expected one q2 mismatch, got %v", ms)
	}
	ms = Differential(context.Background(), "err", []string{"q1"}, echo, failing)
	if len(ms) != 1 || ms[0].Err == nil {
		t.Fatalf("one-sided error not a mismatch: %v", ms)
	}
	// Same error on both sides is equivalent behavior.
	if ms := Differential(context.Background(), "bothfail", []string{"q1"}, failing, failing); len(ms) != 0 {
		t.Fatalf("symmetric errors flagged: %v", ms)
	}
}

func TestAxisRegistryShape(t *testing.T) {
	if len(Axes) < 5 {
		t.Fatalf("need >= 5 metamorphic axes, have %d", len(Axes))
	}
	seen := map[string]bool{}
	for _, a := range Axes {
		if a.Name == "" || a.Description == "" {
			t.Errorf("axis missing metadata: %+v", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
}
