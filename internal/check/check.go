// Package check is the deterministic correctness subsystem: named
// structural invariants over logical/physical plans, executed answers,
// and virtual-time schedules, plus a differential/metamorphic driver
// (differential.go) asserting answer equivalence across configuration
// axes that must not change results.
//
// Invariant checking is wired into the planner/optimizer call sites
// (unify.query), the executor (exec.Run), and the shared slot pool
// (sched.Pool) behind Config.StrictChecks: on in tests, off by default
// on the production path. A violation carries the invariant's name, a
// human-readable detail, and — when a tracer was installed — a rendered
// span dump of the query so the failure is diagnosable post mortem.
package check

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"unify/internal/core"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/values"
	"unify/internal/vtime"
)

// Named invariants. Plan invariants validate the DAG itself (logical
// plans after generation, physical plans after optimization and after
// every replan); answer invariants validate a completed query's
// accounting; vtime/pool invariants validate schedules on the shared
// slot pool.
const (
	InvPlanNonEmpty        = "plan.non_empty"         // a plan has at least one node and a root
	InvPlanAcyclic         = "plan.acyclic"           // the dependency graph is a DAG
	InvPlanUniqueOutputs   = "plan.unique_outputs"    // node ids and output variables are unique
	InvPlanDepsMatchInputs = "plan.deps_match_inputs" // every consumed variable's producer is a declared dep
	InvPlanSingleSink      = "plan.single_sink"       // exactly one node has no consumers: the answer producer
	InvPlanTypeCompat      = "plan.type_compat"       // each operator has an adequate implementation for its input kinds
	InvPlanCardBounds      = "plan.card_bounds"       // estimated cardinalities lie within [0, |docs|]

	InvAnswerDursNonNeg    = "answer.durs_non_negative" // every reported duration is >= 0
	InvAnswerDurAdditive   = "answer.dur_additive"      // TotalDur == Planning + Estimation + Exec
	InvAnswerSoloBound     = "answer.solo_bound"        // SoloExecDur <= ExecDur (contention only slows down)
	InvAnswerUtilBound     = "answer.utilization_bound" // SlotBusy <= ExecDur * slots (utilization <= 1)
	InvAnswerSkippedBound  = "answer.skipped_bound"     // SkippedDocs <= documents scanned
	InvAnswerReplansBound  = "answer.replans_bound"     // replan rounds <= MaxReplans
	InvAnswerNodesComplete = "answer.nodes_complete"    // one node stat per plan node
	InvAnswerCallsBound    = "answer.calls_bound"       // 0 <= CachedLLMCalls <= LLMCalls

	InvVTimeConservation = "vtime.conservation"     // per-job busy sums to total busy; JobEnd caps at Makespan
	InvVTimeSlotBound    = "vtime.slot_bound"       // busy <= Makespan * slots; slot frees within the schedule
	InvPoolUtilBound     = "pool.utilization_bound" // epoch slot utilization <= 1 (checked per machine on clusters)

	InvClusterShardComplete = "cluster.shard_complete" // scatter/merge accounts for every shard; no shard silently dropped

	InvBatchFairness = "batch.fairness_bound" // batch sizes, durations, deferrals, and shares respect the policy

	InvProfileAttribution = "profile.vtime_attribution" // per-class vtime shares sum exactly to the Answer vtime
	InvProfileGlobalBound = "profile.global_bound"      // cumulative profile counters never exceed global counters

	InvViewColumnFresh = "views.column_fresh" // every view row served during a query matched its document's live content hash
)

// Violation is one failed invariant.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Error aggregates the violations of one checked artifact, with an
// optional span dump for diagnostics.
type Error struct {
	Context    string
	Violations []Violation
	SpanDump   string
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s: %d invariant violation(s)", e.Context, len(e.Violations))
	for _, v := range e.Violations {
		b.WriteString("\n  " + v.String())
	}
	if e.SpanDump != "" {
		b.WriteString("\nspan dump:\n" + e.SpanDump)
	}
	return b.String()
}

// Fail wraps violations into an error carrying a rendered span dump
// (nil-safe span, nil when there are no violations).
func Fail(context string, vs []Violation, span *obs.Span) error {
	if len(vs) == 0 {
		return nil
	}
	return &Error{Context: context, Violations: vs, SpanDump: obs.Render(span)}
}

func violatef(vs *[]Violation, inv, format string, args ...interface{}) {
	*vs = append(*vs, Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Plan validates a plan's structural invariants. docs is the corpus
// size; physical selects the additional invariants that only hold after
// optimization (chosen implementations, cardinality estimates).
func Plan(p *core.Plan, docs int, physical bool) []Violation {
	var vs []Violation
	if p == nil || len(p.Nodes) == 0 || p.Root() == nil {
		violatef(&vs, InvPlanNonEmpty, "plan has no nodes")
		return vs
	}

	order, err := p.Topo()
	if err != nil {
		violatef(&vs, InvPlanAcyclic, "%v", err)
		return vs // downstream checks need a topological order
	}

	// Unique ids and output variables.
	byID := map[int]*core.Node{}
	producer := map[string]*core.Node{}
	for _, n := range p.Nodes {
		if _, dup := byID[n.ID]; dup {
			violatef(&vs, InvPlanUniqueOutputs, "duplicate node id %d", n.ID)
		}
		byID[n.ID] = n
		if n.OutVar == "" || n.OutVar == "dataset" {
			violatef(&vs, InvPlanUniqueOutputs, "node %d has invalid output variable %q", n.ID, n.OutVar)
			continue
		}
		if prev, dup := producer[n.OutVar]; dup {
			violatef(&vs, InvPlanUniqueOutputs, "nodes %d and %d both produce {%s}", prev.ID, n.ID, n.OutVar)
		}
		producer[n.OutVar] = n
	}

	// Every consumed variable has a producer, and that producer is a
	// declared dependency (deps may be a superset: the Generate fallback
	// depends on everything computed so far).
	for _, n := range p.Nodes {
		deps := map[int]bool{}
		for _, d := range n.Deps {
			if d == n.ID {
				violatef(&vs, InvPlanDepsMatchInputs, "node %d depends on itself", n.ID)
			}
			if _, ok := byID[d]; !ok {
				violatef(&vs, InvPlanDepsMatchInputs, "node %d depends on unknown node %d", n.ID, d)
			}
			deps[d] = true
		}
		for _, ref := range n.Inputs {
			if ref == "dataset" {
				continue
			}
			prod := producer[strings.Trim(ref, "{}")]
			if prod == nil {
				violatef(&vs, InvPlanDepsMatchInputs, "node %d consumes %s which no node produces", n.ID, ref)
				continue
			}
			if !deps[prod.ID] {
				violatef(&vs, InvPlanDepsMatchInputs, "node %d consumes %s but does not depend on its producer %d", n.ID, ref, prod.ID)
			}
		}
	}

	// Single sink: the answer producer is the only node without
	// consumers; anything else is dead work the executor would still run.
	consumed := map[int]bool{}
	for _, n := range p.Nodes {
		for _, d := range n.Deps {
			consumed[d] = true
		}
	}
	var sinks []int
	for _, n := range p.Nodes {
		if !consumed[n.ID] {
			sinks = append(sinks, n.ID)
		}
	}
	sort.Ints(sinks)
	if len(sinks) != 1 {
		violatef(&vs, InvPlanSingleSink, "expected exactly one sink, found %d: %v", len(sinks), sinks)
	} else if root := p.Root(); sinks[0] != root.ID {
		violatef(&vs, InvPlanSingleSink, "sink is node %d but root (answer producer) is node %d", sinks[0], root.ID)
	}

	// Type compatibility and cardinality bounds, walking the DAG in
	// topological order with the same kind propagation the optimizer uses.
	maxCard := docs
	if maxCard < 1 {
		maxCard = 1
	}
	kinds := map[string]sigHint{"dataset": {kind: values.Docs, card: docs}}
	for _, n := range order {
		spec, ok := ops.Get(n.Op)
		if !ok {
			violatef(&vs, InvPlanTypeCompat, "node %d uses unknown operator %q", n.ID, n.Op)
			continue
		}
		ins := make([]sigHint, len(n.Inputs))
		dummies := make([]values.Value, len(n.Inputs))
		for i, ref := range n.Inputs {
			h, okh := kinds[ref]
			if !okh {
				h = sigHint{kind: values.Docs, card: docs}
			}
			ins[i] = h
			dummies[i] = dummyValue(h)
		}
		if cands := spec.Adequate(n.Args, dummies); len(cands) == 0 {
			violatef(&vs, InvPlanTypeCompat,
				"node %d (%s) has no adequate implementation for input kinds %v", n.ID, n.Op, kindNames(ins))
		} else if physical {
			if n.Phys == "" {
				violatef(&vs, InvPlanTypeCompat, "node %d (%s) has no physical selection", n.ID, n.Op)
			} else if !specHas(spec, n.Phys) {
				violatef(&vs, InvPlanTypeCompat, "node %d selected %q which is not an implementation of %s", n.ID, n.Phys, n.Op)
			}
		}
		if physical {
			if n.EstCard < 0 || n.EstCard > maxCard {
				violatef(&vs, InvPlanCardBounds,
					"node %d (%s) estimated cardinality %d outside [0, %d]", n.ID, n.Op, n.EstCard, maxCard)
			}
		}
		out := propagateKind(n, ins, docs)
		if physical && n.EstCard > 0 {
			out.card = n.EstCard
		}
		kinds["{"+n.OutVar+"}"] = out
	}
	return vs
}

// sigHint is the checker's static view of a variable: value kind plus
// cardinality hints for fabricating adequacy-check dummies.
type sigHint struct {
	kind   values.Kind
	card   int
	groups int
}

func kindNames(ins []sigHint) []string {
	out := make([]string, len(ins))
	for i, h := range ins {
		out[i] = h.kind.String()
	}
	return out
}

func specHas(spec *ops.Spec, phys string) bool {
	for _, p := range spec.Phys {
		if p.Name == phys {
			return true
		}
	}
	return false
}

// dummyValue fabricates a value of the hinted kind for adequacy checks
// (mirrors the optimizer's lowering-time dummies).
func dummyValue(h sigHint) values.Value {
	card := h.card
	if card < 1 {
		card = 1
	}
	switch h.kind {
	case values.Docs:
		return values.Value{Kind: values.Docs, DocIDs: make([]int, card)}
	case values.Groups:
		g := h.groups
		if g < 1 {
			g = 1
		}
		return values.Value{Kind: values.Groups, GroupVal: make([]values.Group, g)}
	case values.Vec:
		return values.Value{Kind: values.Vec, VecVal: make([]values.LabeledNum, card)}
	case values.Labels:
		return values.Value{Kind: values.Labels, LabelVal: make([]string, card)}
	case values.Num:
		return values.NewNum(0)
	default:
		return values.NewStr("")
	}
}

// propagateKind mirrors the optimizer's output-signature propagation
// (optimizer.propagate) for the checker's type walk. Keep the two in
// sync when adding operators.
func propagateKind(n *core.Node, ins []sigHint, docs int) sigHint {
	in := sigHint{kind: values.Docs, card: docs}
	if len(ins) > 0 {
		in = ins[0]
	}
	switch n.Op {
	case "Scan", "Filter", "OrderBy":
		return in
	case "GroupBy":
		g := 12
		if in.card < g {
			g = in.card
		}
		return sigHint{kind: values.Groups, card: in.card, groups: g}
	case "Count", "Sum", "Average", "Median", "Percentile":
		if in.kind == values.Groups {
			return sigHint{kind: values.Vec, card: in.groups}
		}
		return sigHint{kind: values.Num, card: 1}
	case "Max", "Min":
		if in.kind == values.Vec {
			return sigHint{kind: values.Str, card: 1}
		}
		if in.kind == values.Groups {
			return sigHint{kind: values.Vec, card: in.groups}
		}
		return sigHint{kind: values.Num, card: 1}
	case "TopK":
		if in.kind == values.Vec {
			return sigHint{kind: values.Labels, card: in.card}
		}
		return sigHint{kind: values.Docs, card: in.card}
	case "Classify", "Compare", "Generate":
		return sigHint{kind: values.Str, card: 1}
	case "Extract":
		if in.kind == values.Groups {
			return sigHint{kind: values.Labels, card: in.groups}
		}
		if in.kind == values.Docs && classAttrWord(n.Args.Get("Attribute")) {
			return sigHint{kind: values.Labels, card: 12}
		}
		return sigHint{kind: values.Str, card: 1}
	case "Join", "Union", "Intersection", "Complementary":
		return in
	case "Compute":
		if in.kind == values.Vec {
			return in
		}
		return sigHint{kind: values.Num, card: 1}
	default:
		return sigHint{kind: values.Str, card: 1}
	}
}

// classAttrWord mirrors the optimizer's distinct-value-extraction
// heuristic so the checker's kind walk matches lowering.
func classAttrWord(attr string) bool {
	switch strings.ToLower(strings.TrimSpace(attr)) {
	case "sport", "field", "area", "category", "topic":
		return true
	}
	return false
}

// AnswerFacts carries the accounting of one completed query for
// invariant checking. All durations are virtual (simulated) time.
type AnswerFacts struct {
	Docs       int
	Slots      int
	MaxReplans int

	PlanNodes int // nodes in the executed plan
	NodeStats int // per-node stats reported on the answer

	ScannedDocs int // sum of per-node input cardinalities
	SkippedDocs int
	Replans     int

	LLMCalls       int
	CachedLLMCalls int

	PlanningDur   time.Duration
	EstimationDur time.Duration
	ExecDur       time.Duration
	TotalDur      time.Duration
	SoloExecDur   time.Duration
	SlotBusy      time.Duration
	GrantWait     time.Duration
}

// Answer validates a completed query's accounting invariants.
func Answer(f AnswerFacts) []Violation {
	var vs []Violation
	durs := []struct {
		name string
		d    time.Duration
	}{
		{"planning", f.PlanningDur}, {"estimation", f.EstimationDur},
		{"exec", f.ExecDur}, {"total", f.TotalDur}, {"solo_exec", f.SoloExecDur},
		{"slot_busy", f.SlotBusy}, {"grant_wait", f.GrantWait},
	}
	for _, d := range durs {
		if d.d < 0 {
			violatef(&vs, InvAnswerDursNonNeg, "%s duration is negative: %v", d.name, d.d)
		}
	}
	if sum := f.PlanningDur + f.EstimationDur + f.ExecDur; f.TotalDur != sum {
		violatef(&vs, InvAnswerDurAdditive, "total %v != planning %v + estimation %v + exec %v",
			f.TotalDur, f.PlanningDur, f.EstimationDur, f.ExecDur)
	}
	if f.SoloExecDur > f.ExecDur {
		violatef(&vs, InvAnswerSoloBound, "solo exec %v exceeds contended exec %v", f.SoloExecDur, f.ExecDur)
	}
	slots := f.Slots
	if slots < 1 {
		slots = 1
	}
	if f.SlotBusy > f.ExecDur*time.Duration(slots) {
		violatef(&vs, InvAnswerUtilBound, "slot busy %v exceeds exec %v x %d slots (utilization > 1)",
			f.SlotBusy, f.ExecDur, slots)
	}
	if f.SkippedDocs < 0 || f.SkippedDocs > f.ScannedDocs {
		violatef(&vs, InvAnswerSkippedBound, "skipped %d docs but only %d were scanned", f.SkippedDocs, f.ScannedDocs)
	}
	maxReplans := f.MaxReplans
	if maxReplans < 1 {
		maxReplans = 1
	}
	if f.Replans < 0 || f.Replans > maxReplans {
		violatef(&vs, InvAnswerReplansBound, "%d replans exceed the bound %d", f.Replans, maxReplans)
	}
	if f.NodeStats != f.PlanNodes {
		violatef(&vs, InvAnswerNodesComplete, "%d node stats for %d plan nodes", f.NodeStats, f.PlanNodes)
	}
	if f.CachedLLMCalls < 0 || f.CachedLLMCalls > f.LLMCalls {
		violatef(&vs, InvAnswerCallsBound, "%d cached calls out of %d total", f.CachedLLMCalls, f.LLMCalls)
	}
	return vs
}

// VTime validates a single-machine virtual-time schedule: per-job
// accounting conserves against the machine totals and nothing exceeds
// the slot capacity.
func VTime(res vtime.Result, slots int) []Violation {
	return VTimeCluster(res, 1, slots)
}

// VTimeCluster validates a cluster schedule: per-job busy conserves
// against the summed machine totals, and every machine individually
// respects its slot capacity. VTimeCluster(res, 1, slots) is the
// single-machine VTime check.
func VTimeCluster(res vtime.Result, machines, slots int) []Violation {
	var vs []Violation
	if machines < 1 {
		machines = 1
	}
	if slots < 1 {
		slots = 1
	}
	var jobBusy time.Duration
	var maxEnd time.Duration
	for job, b := range res.JobBusy {
		if b < 0 {
			violatef(&vs, InvVTimeConservation, "job %d has negative busy %v", job, b)
		}
		jobBusy += b
	}
	for job, w := range res.JobWait {
		if w < 0 {
			violatef(&vs, InvVTimeConservation, "job %d has negative grant wait %v", job, w)
		}
	}
	var taskWait, jobWait time.Duration
	for id, w := range res.TaskWait {
		if w < 0 {
			violatef(&vs, InvVTimeConservation, "task %q has negative grant wait %v", id, w)
		}
		taskWait += w
	}
	for _, w := range res.JobWait {
		jobWait += w
	}
	if taskWait != jobWait {
		violatef(&vs, InvVTimeConservation, "per-task grant waits sum to %v but per-job waits sum to %v", taskWait, jobWait)
	}
	for job, end := range res.JobEnd {
		if end > res.Makespan {
			violatef(&vs, InvVTimeConservation, "job %d ends at %v after makespan %v", job, end, res.Makespan)
		}
		if end > maxEnd {
			maxEnd = end
		}
		if b := res.JobBusy[job]; b > end*time.Duration(slots*machines) {
			violatef(&vs, InvVTimeConservation,
				"job %d busy %v exceeds its end %v x %d cluster slots", job, b, end, slots*machines)
		}
	}
	if len(res.JobEnd) > 0 && maxEnd != res.Makespan {
		violatef(&vs, InvVTimeConservation, "max job end %v != makespan %v", maxEnd, res.Makespan)
	}
	var busy time.Duration
	for m := 0; m < machines; m++ {
		mbusy := res.Busy[vtime.MachineResource(m)]
		busy += mbusy
		if mbusy > res.Makespan*time.Duration(slots) {
			violatef(&vs, InvVTimeSlotBound, "machine %d busy %v exceeds makespan %v x %d slots", m, mbusy, res.Makespan, slots)
		}
		if frees, ok := res.SlotFree[vtime.MachineResource(m)]; ok {
			if len(frees) != slots {
				violatef(&vs, InvVTimeSlotBound, "machine %d has %d slot free times for %d slots", m, len(frees), slots)
			}
			for i, f := range frees {
				if f < 0 || f > res.Makespan {
					violatef(&vs, InvVTimeSlotBound, "machine %d slot %d frees at %v outside [0, %v]", m, i, f, res.Makespan)
				}
			}
		}
	}
	if jobBusy != busy {
		violatef(&vs, InvVTimeConservation, "per-job busy sums to %v but cluster busy is %v", jobBusy, busy)
	}
	return vs
}

// ShardComplete validates a scatter/merge execution: the merge saw every
// shard's partial result, and — for cardinality-preserving merges like
// filters — the merged output accounts for exactly the per-shard doc
// counts (no shard silently dropped, nothing invented).
func ShardComplete(op string, shards int, perShard []int, merged int, exact bool) []Violation {
	var vs []Violation
	if len(perShard) != shards {
		violatef(&vs, InvClusterShardComplete, "%s: %d shard results for %d shards", op, len(perShard), shards)
		return vs
	}
	sum := 0
	for s, n := range perShard {
		if n < 0 {
			violatef(&vs, InvClusterShardComplete, "%s: shard %d reports negative count %d", op, s, n)
		}
		sum += n
	}
	if exact {
		if merged != sum {
			violatef(&vs, InvClusterShardComplete, "%s: merged %d docs but shards produced %d", op, merged, sum)
		}
	} else if merged > sum {
		violatef(&vs, InvClusterShardComplete, "%s: merged %d docs exceed the %d the shards produced", op, merged, sum)
	}
	return vs
}

// ViewsFresh validates the views.column_fresh invariant from an audit of
// the rows a query actually served: the view store compares each served
// row's stored content hash against the document's live hash, and any
// divergence (a stale row reaching an answer) is a violation. stale is
// the audit's violation list, one "column/doc" description per stale row.
func ViewsFresh(stale []string) []Violation {
	var vs []Violation
	for _, s := range stale {
		violatef(&vs, InvViewColumnFresh, "stale view row served: %s", s)
	}
	return vs
}

// BatchFairness validates every batched invocation of a schedule against
// its policy: member counts stay within [1, MaxBatch] with pairwise
// distinct jobs (batching is cross-query only), a multi-member batch's
// duration respects the fairness cap (unless the leader's own solo
// duration exceeds it — a call too big for the cap still has to run),
// hold-the-door deferral never exceeds the window, member waits equal
// the batch start minus their ready times, and the members' attributed
// shares sum exactly to the invocation's duration (conservation).
func BatchFairness(res vtime.Result, p *vtime.BatchPolicy) []Violation {
	var vs []Violation
	if p == nil {
		return vs
	}
	maxBatch := p.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1
	}
	for i, g := range res.Batches {
		if len(g.Members) < 1 || len(g.Members) > maxBatch {
			violatef(&vs, InvBatchFairness, "batch %d has %d members outside [1, %d]", i, len(g.Members), maxBatch)
			continue
		}
		if g.Start < g.GrantAt || g.Start-g.GrantAt > p.Window {
			violatef(&vs, InvBatchFairness, "batch %d deferred from %v to %v, beyond the %v window", i, g.GrantAt, g.Start, p.Window)
		}
		leaderSolo := g.Members[0].Solo
		if len(g.Members) > 1 && p.FairnessCap > 0 {
			capLimit := p.FairnessCap
			if leaderSolo > capLimit {
				capLimit = leaderSolo
			}
			if g.Dur > capLimit {
				violatef(&vs, InvBatchFairness, "batch %d duration %v exceeds the fairness cap %v", i, g.Dur, capLimit)
			}
		}
		jobs := make(map[int]bool, len(g.Members))
		var shares time.Duration
		for _, m := range g.Members {
			if jobs[m.Job] {
				violatef(&vs, InvBatchFairness, "batch %d holds two members of job %d", i, m.Job)
			}
			jobs[m.Job] = true
			if m.Wait != g.Start-m.Ready || m.Wait < 0 {
				violatef(&vs, InvBatchFairness, "batch %d member %q wait %v != start %v - ready %v", i, m.Task, m.Wait, g.Start, m.Ready)
			}
			shares += m.Share
		}
		if shares != g.Dur {
			violatef(&vs, InvBatchFairness, "batch %d member shares sum to %v but the invocation took %v", i, shares, g.Dur)
		}
	}
	return vs
}

// PoolUtilization validates an epoch's aggregate slot utilization
// (busy / (span x slots), structurally <= 1; eps absorbs float rounding).
func PoolUtilization(util float64) []Violation {
	var vs []Violation
	if util < 0 || util > 1+1e-9 {
		violatef(&vs, InvPoolUtilBound, "pool utilization %.6f outside [0, 1]", util)
	}
	return vs
}

// ProfileAttribution validates one query's cost profile against the
// query's reported total vtime: class shares must be non-negative and
// sum EXACTLY to the Answer's vtime (the largest-remainder split leaves
// no nanosecond unattributed), and per-class counters must be sane.
func ProfileAttribution(p *obs.CostProfile, answerVTime time.Duration) []Violation {
	var vs []Violation
	if p == nil {
		violatef(&vs, InvProfileAttribution, "query has no cost profile")
		return vs
	}
	if p.Total != answerVTime {
		violatef(&vs, InvProfileAttribution, "profile total %v != answer vtime %v", p.Total, answerVTime)
	}
	var sum time.Duration
	for _, name := range p.ClassNames() {
		c := p.Classes[name]
		if c.Share < 0 {
			violatef(&vs, InvProfileAttribution, "class %q has negative vtime share %v", name, c.Share)
		}
		if c.Busy < 0 || c.GrantWait < 0 {
			violatef(&vs, InvProfileAttribution, "class %q has negative busy %v or grant wait %v", name, c.Busy, c.GrantWait)
		}
		if c.LLMCalls < 0 || c.CachedCalls < 0 || c.CachedCalls > c.LLMCalls+c.CachedCalls {
			violatef(&vs, InvProfileAttribution, "class %q has inconsistent call counts (%d llm, %d cached)", name, c.LLMCalls, c.CachedCalls)
		}
		sum += c.Share
	}
	if sum != answerVTime {
		violatef(&vs, InvProfileAttribution, "class shares sum to %v, answer vtime is %v", sum, answerVTime)
	}
	return vs
}

// CounterPair compares one cumulative profile counter against its
// process-global registry counterpart for ProfileGlobalBound.
type CounterPair struct {
	Name    string
	Profile float64 // attributed by query profiles
	Global  float64 // counted at the source (registry)
}

// ProfileGlobalBound validates that cost attribution never invents
// work: every cumulative profile counter is bounded by the matching
// process-global counter (profiles are recorded after the globals, so
// under concurrency the profile side may lag but never lead; eps
// absorbs float rounding on seconds-valued series).
func ProfileGlobalBound(pairs []CounterPair) []Violation {
	var vs []Violation
	const eps = 1e-6
	for _, p := range pairs {
		if p.Profile < 0 {
			violatef(&vs, InvProfileGlobalBound, "%s: profile counter is negative: %g", p.Name, p.Profile)
		}
		if p.Profile > p.Global+eps {
			violatef(&vs, InvProfileGlobalBound, "%s: profile %g exceeds global %g", p.Name, p.Profile, p.Global)
		}
	}
	return vs
}
