package check

import (
	"strings"
	"testing"
	"time"

	"unify/internal/obs"
)

func attributedProfile() *obs.CostProfile {
	p := obs.NewCostProfile("q-1")
	p.Add(obs.ClassPlanning, obs.OpCost{Executions: 1, LLMCalls: 3, Busy: 2 * time.Second})
	p.Add("Filter/SemanticFilter", obs.OpCost{Executions: 1, LLMCalls: 7, Busy: 3 * time.Second})
	p.Attribute(2*time.Second, time.Second, 3*time.Second)
	return p
}

func TestProfileAttributionCleanOnGoodProfile(t *testing.T) {
	p := attributedProfile()
	if vs := ProfileAttribution(p, 6*time.Second); len(vs) != 0 {
		t.Fatalf("good profile flagged: %v", vs)
	}
}

func TestProfileAttributionViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *obs.CostProfile) *obs.CostProfile
		vtime  time.Duration
		want   string
	}{
		{"nil profile", func(p *obs.CostProfile) *obs.CostProfile { return nil }, time.Second, "no cost profile"},
		{"total mismatch", func(p *obs.CostProfile) *obs.CostProfile { return p }, 7 * time.Second, "profile total"},
		{"negative share", func(p *obs.CostProfile) *obs.CostProfile {
			p.Classes["Filter/SemanticFilter"].Share = -time.Second
			return p
		}, 6 * time.Second, "negative vtime share"},
		{"negative busy", func(p *obs.CostProfile) *obs.CostProfile {
			p.Classes["Filter/SemanticFilter"].Busy = -time.Second
			return p
		}, 6 * time.Second, "negative busy"},
		{"share sum broken", func(p *obs.CostProfile) *obs.CostProfile {
			p.Classes["Filter/SemanticFilter"].Share += time.Second
			return p
		}, 6 * time.Second, "shares sum"},
		{"negative calls", func(p *obs.CostProfile) *obs.CostProfile {
			p.Classes[obs.ClassPlanning].LLMCalls = -1
			return p
		}, 6 * time.Second, "call counts"},
	}
	for _, c := range cases {
		vs := ProfileAttribution(c.mutate(attributedProfile()), c.vtime)
		if len(vs) == 0 {
			t.Errorf("%s: no violation", c.name)
			continue
		}
		found := false
		for _, v := range vs {
			if v.Invariant == InvProfileAttribution && strings.Contains(v.Detail, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v missing detail %q", c.name, vs, c.want)
		}
	}
}

func TestProfileGlobalBound(t *testing.T) {
	good := []CounterPair{
		{Name: "llm_calls", Profile: 10, Global: 10},
		{Name: "vtime_seconds", Profile: 41.9999999, Global: 42}, // float lag within eps
	}
	if vs := ProfileGlobalBound(good); len(vs) != 0 {
		t.Fatalf("good pairs flagged: %v", vs)
	}
	bad := []CounterPair{
		{Name: "llm_calls", Profile: 11, Global: 10},
		{Name: "tokens", Profile: -1, Global: 0},
	}
	vs := ProfileGlobalBound(bad)
	if len(vs) != 2 {
		t.Fatalf("want 2 violations, got %v", vs)
	}
	for _, v := range vs {
		if v.Invariant != InvProfileGlobalBound {
			t.Errorf("wrong invariant: %v", v)
		}
	}
	// Profile lagging global is fine (profiles are recorded second).
	if vs := ProfileGlobalBound([]CounterPair{{Name: "x", Profile: 5, Global: 100}}); len(vs) != 0 {
		t.Errorf("lagging profile flagged: %v", vs)
	}
}
