package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLayerGetPut(t *testing.T) {
	l := New(1 << 20)
	lay := NewLayer[string](l, "test", func(s string) int64 { return int64(len(s)) })
	if _, ok := lay.Get("a"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	lay.Put("a", "hello")
	v, ok := lay.Get("a")
	if !ok || v != "hello" {
		t.Fatalf("got %q ok=%v, want hello", v, ok)
	}
	st := lay.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("bytes = %d, want > 0", st.Bytes)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// Single shard so the budget applies to one LRU list.
	l := New(100, WithShards(1))
	lay := NewLayer[string](l, "ev", func(s string) int64 { return int64(len(s)) })
	for i := 0; i < 20; i++ {
		// Each entry costs ~10 (value) + key length; 20 of them exceed 100.
		lay.Put(fmt.Sprintf("k%02d", i), "0123456789")
	}
	st := lay.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under byte budget")
	}
	if got := l.Bytes(); got > 100 {
		t.Fatalf("resident bytes %d exceed budget 100", got)
	}
	if st.Entries != int64(l.Len()) {
		t.Fatalf("layer entries %d != lru len %d", st.Entries, l.Len())
	}
	// LRU order: the most recent entry must have survived.
	if _, ok := lay.Get("k19"); !ok {
		t.Fatal("most recently inserted entry was evicted")
	}
	// The oldest entry must be gone.
	if _, ok := lay.Get("k00"); ok {
		t.Fatal("oldest entry survived past budget")
	}
}

func TestGenerationBump(t *testing.T) {
	l := New(1 << 20)
	lay := NewLayer[int](l, "gen", func(int) int64 { return 8 })
	lay.Put("x", 42)
	if _, ok := lay.Get("x"); !ok {
		t.Fatal("want hit before bump")
	}
	l.Bump()
	if _, ok := lay.Get("x"); ok {
		t.Fatal("stale entry served after Bump")
	}
	st := lay.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (stale discard)", st.Evictions)
	}
	// Re-populate under the new generation.
	lay.Put("x", 43)
	v, ok := lay.Get("x")
	if !ok || v != 43 {
		t.Fatalf("got %d ok=%v after repopulate, want 43", v, ok)
	}
}

func TestGetOrComputeCoalescing(t *testing.T) {
	l := New(1 << 20)
	lay := NewLayer[int](l, "sf", func(int) int64 { return 8 })
	var computes atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := lay.GetOrCompute("k", func() (int, error) {
				computes.Add(1)
				<-gate // hold the flight open so everyone piles on
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}()
	}
	// Wait for the leader to register the flight, then give the
	// followers time to join it before releasing.
	for lay.Stats().Misses == 0 {
		runtime.Gosched()
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (coalesced)", got)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("result[%d] = %d, want 7", i, v)
		}
	}
	st := lay.Stats()
	if st.Coalesced == 0 {
		t.Fatal("expected coalesced waits recorded")
	}
	if st.Hits+st.Misses != n {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, n)
	}
}

func TestGetOrComputeError(t *testing.T) {
	l := New(1 << 20)
	lay := NewLayer[int](l, "err", func(int) int64 { return 8 })
	boom := errors.New("boom")
	calls := 0
	_, _, err := lay.GetOrCompute("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Errors are not cached: a retry recomputes.
	v, hit, err := lay.GetOrCompute("k", func() (int, error) { calls++; return 5, nil })
	if err != nil || hit || v != 5 {
		t.Fatalf("retry got v=%d hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2", calls)
	}
}

func TestNilLayerAndNilLRU(t *testing.T) {
	var lay *Layer[int]
	if _, ok := lay.Get("k"); ok {
		t.Fatal("nil layer returned a hit")
	}
	lay.Put("k", 1) // must not panic
	v, hit, err := lay.GetOrCompute("k", func() (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("nil layer GetOrCompute = %d,%v,%v", v, hit, err)
	}
	if lay2 := NewLayer[int](nil, "x", nil); lay2 != nil {
		t.Fatal("NewLayer over nil LRU should be nil")
	}
	var lru *LRU
	lru.Bump() // must not panic
	if lru.Len() != 0 || lru.Bytes() != 0 {
		t.Fatal("nil LRU reports non-zero size")
	}
}

func TestEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	l := New(60, WithShards(1), WithEvents(func(layer string, ev Event, n int) {
		mu.Lock()
		counts[layer+"/"+ev.String()] += n
		mu.Unlock()
	}))
	lay := NewLayer[string](l, "evt", func(s string) int64 { return int64(len(s)) })
	for i := 0; i < 10; i++ {
		lay.GetOrCompute(fmt.Sprintf("key-%d", i), func() (string, error) { return "0123456789", nil })
	}
	lay.GetOrCompute("key-9", func() (string, error) { return "0123456789", nil })
	mu.Lock()
	defer mu.Unlock()
	if counts["evt/miss"] != 10 {
		t.Fatalf("miss events = %d, want 10", counts["evt/miss"])
	}
	if counts["evt/hit"] != 1 {
		t.Fatalf("hit events = %d, want 1", counts["evt/hit"])
	}
	if counts["evt/evict"] == 0 {
		t.Fatal("expected evict events under tight budget")
	}
	st := lay.Stats()
	if uint64(counts["evt/evict"]) != st.Evictions {
		t.Fatalf("evict events %d != stats evictions %d", counts["evt/evict"], st.Evictions)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	l := New(4096)
	lay := NewLayer[int](l, "conc", func(int) int64 { return 16 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%40)
				switch i % 3 {
				case 0:
					lay.GetOrCompute(k, func() (int, error) { return i, nil })
				case 1:
					lay.Get(k)
				default:
					lay.Put(k, i)
				}
				if i%100 == 0 && g == 0 {
					l.Bump()
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Bytes(); got > 4096 {
		t.Fatalf("resident bytes %d exceed budget", got)
	}
	// Per-layer byte/entry accounting must agree with shard accounting.
	st := l.Stats()
	if st.Bytes != l.Bytes() {
		t.Fatalf("layer bytes %d != shard bytes %d", st.Bytes, l.Bytes())
	}
	if st.Entries != int64(l.Len()) {
		t.Fatalf("layer entries %d != lru len %d", st.Entries, l.Len())
	}
}

func TestLayerStatsByName(t *testing.T) {
	l := New(1 << 20)
	a := NewLayer[int](l, "a", nil)
	b := NewLayer[int](l, "b", nil)
	a.Put("k", 1)
	a.Get("k")
	b.Get("k") // miss: layers are namespaced
	m := l.LayerStats()
	if m["a"].Hits != 1 || m["b"].Hits != 0 || m["b"].Misses != 1 {
		t.Fatalf("layer stats = %+v", m)
	}
	tot := l.Stats()
	if tot.Hits != 1 || tot.Misses != 1 {
		t.Fatalf("aggregate stats = %+v", tot)
	}
}
