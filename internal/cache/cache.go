// Package cache is Unify's shared reuse backbone: a sharded,
// byte-cost-bounded LRU with in-flight coalescing (singleflight) and
// generation-aware eviction. One LRU instance backs every caching layer in
// the system — LLM response memoization, docstore query embeddings and
// distance maps, SCE bucketizations, optimizer selectivities and plans —
// so a single byte budget governs total memory and hot layers can displace
// cold ones.
//
// Layers are typed, named views over the shared LRU (see Layer). Each
// layer tracks its own hit/miss/eviction/coalesce counters, and the LRU
// emits per-layer events through an optional hook so callers can mirror
// the counters into a metrics registry.
//
// Values handed back by Get/GetOrCompute are shared between callers:
// treat them as immutable.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Event identifies one cache occurrence for the event hook.
type Event int

// Cache events.
const (
	// EventHit: a lookup was served from the cache.
	EventHit Event = iota
	// EventMiss: a lookup required computing the value.
	EventMiss
	// EventEvict: an entry was removed to respect the byte budget or
	// because its generation went stale.
	EventEvict
	// EventCoalesce: a lookup joined an identical in-flight computation
	// instead of recomputing.
	EventCoalesce
)

func (e Event) String() string {
	switch e {
	case EventHit:
		return "hit"
	case EventMiss:
		return "miss"
	case EventEvict:
		return "evict"
	case EventCoalesce:
		return "coalesce"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of one layer (or the whole LRU).
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Coalesced uint64 `json:"coalesced"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Coalesced += o.Coalesced
	s.Entries += o.Entries
	s.Bytes += o.Bytes
}

// Sub returns the delta s - o (counters only; Entries/Bytes are copied
// from s). Used to report per-phase hit rates in benchmarks.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
		Coalesced: s.Coalesced - o.Coalesced,
		Entries:   s.Entries,
		Bytes:     s.Bytes,
	}
}

// layerStats holds one layer's counters (updated with atomics so hot
// paths never contend on a layer-wide lock).
type layerStats struct {
	name      string
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	coalesced atomic.Uint64
	entries   atomic.Int64
	bytes     atomic.Int64
}

func (ls *layerStats) snapshot() Stats {
	return Stats{
		Hits:      ls.hits.Load(),
		Misses:    ls.misses.Load(),
		Evictions: ls.evictions.Load(),
		Coalesced: ls.coalesced.Load(),
		Entries:   ls.entries.Load(),
		Bytes:     ls.bytes.Load(),
	}
}

// entry is one cached value with its accounting metadata.
type entry struct {
	key   string // full key (layer-prefixed)
	val   any
	bytes int64
	gen   uint64
	layer *layerStats
}

// flight is one in-progress computation that concurrent identical lookups
// join.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one lock domain of the LRU.
type shard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight
	bytes    int64
	budget   int64
}

// LRU is the shared cache. Construct with New; the zero value is not
// usable. A nil *LRU is a valid "caching disabled" sink: layers over a
// nil LRU compute every lookup.
type LRU struct {
	shards  []*shard
	seed    maphash.Seed
	gen     atomic.Uint64
	onEvent func(layer string, ev Event, n int)

	mu     sync.Mutex
	layers map[string]*layerStats
}

// Option configures LRU construction.
type Option func(*LRU)

// WithShards overrides the shard count (rounded up to a power of two).
func WithShards(n int) Option {
	return func(l *LRU) {
		if n < 1 {
			n = 1
		}
		p := 1
		for p < n {
			p <<= 1
		}
		l.shards = make([]*shard, p)
	}
}

// WithEvents installs a per-event hook (layer name, event, count). The
// hook runs outside the shard locks on the caller's goroutine; it must be
// safe for concurrent use.
func WithEvents(fn func(layer string, ev Event, n int)) Option {
	return func(l *LRU) { l.onEvent = fn }
}

// DefaultShards is the default lock-domain count.
const DefaultShards = 8

// New returns an LRU bounded by maxBytes (divided evenly across shards).
// A non-positive maxBytes yields a cache that stores nothing but still
// coalesces concurrent computations.
func New(maxBytes int64, opts ...Option) *LRU {
	l := &LRU{seed: maphash.MakeSeed(), layers: map[string]*layerStats{}}
	l.shards = make([]*shard, DefaultShards)
	for _, o := range opts {
		o(l)
	}
	per := maxBytes / int64(len(l.shards))
	for i := range l.shards {
		l.shards[i] = &shard{
			ll:       list.New(),
			items:    map[string]*list.Element{},
			inflight: map[string]*flight{},
			budget:   per,
		}
	}
	return l
}

// Bump advances the cache generation: every existing entry becomes stale
// and is discarded (counted as an eviction) on next access. Call after
// mutating the underlying data the cache derives from (e.g. reindexing
// the document store).
func (l *LRU) Bump() {
	if l == nil {
		return
	}
	l.gen.Add(1)
}

// Generation returns the current generation number.
func (l *LRU) Generation() uint64 {
	if l == nil {
		return 0
	}
	return l.gen.Load()
}

const layerSep = "\x1f"

func (l *LRU) shardFor(key string) *shard {
	var h maphash.Hash
	h.SetSeed(l.seed)
	h.WriteString(key)
	return l.shards[h.Sum64()&uint64(len(l.shards)-1)]
}

func (l *LRU) layer(name string) *layerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	ls, ok := l.layers[name]
	if !ok {
		ls = &layerStats{name: name}
		l.layers[name] = ls
	}
	return ls
}

func (l *LRU) emit(layer string, ev Event, n int) {
	if l.onEvent != nil && n > 0 {
		l.onEvent(layer, ev, n)
	}
}

// lookupLocked returns the live value for key, discarding a stale-
// generation entry. Caller holds sh.mu.
func (sh *shard) lookupLocked(key string, gen uint64) (any, *layerStats, bool, bool) {
	el, ok := sh.items[key]
	if !ok {
		return nil, nil, false, false
	}
	e := el.Value.(*entry)
	if e.gen != gen {
		sh.removeLocked(el)
		return nil, e.layer, false, true // stale: report the eviction
	}
	sh.ll.MoveToFront(el)
	return e.val, e.layer, true, false
}

// removeLocked unlinks an entry and updates its layer accounting. Caller
// holds sh.mu.
func (sh *shard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	sh.ll.Remove(el)
	delete(sh.items, e.key)
	sh.bytes -= e.bytes
	e.layer.entries.Add(-1)
	e.layer.bytes.Add(-e.bytes)
	e.layer.evictions.Add(1)
}

// insertLocked adds or replaces an entry, then evicts from the LRU tail
// until the shard respects its budget. Returns the layers that lost
// entries (for event emission outside the lock). Caller holds sh.mu.
func (sh *shard) insertLocked(key string, val any, cost int64, gen uint64, ls *layerStats) []*layerStats {
	if el, ok := sh.items[key]; ok {
		sh.removeLocked(el)
		// Replacing an entry is not an eviction; undo the count.
		el.Value.(*entry).layer.evictions.Add(^uint64(0))
	}
	e := &entry{key: key, val: val, bytes: cost, gen: gen, layer: ls}
	sh.items[key] = sh.ll.PushFront(e)
	sh.bytes += cost
	ls.entries.Add(1)
	ls.bytes.Add(cost)
	var evicted []*layerStats
	for sh.bytes > sh.budget && sh.ll.Len() > 0 {
		back := sh.ll.Back()
		evicted = append(evicted, back.Value.(*entry).layer)
		sh.removeLocked(back)
	}
	return evicted
}

// get returns the cached value for (layer, key).
func (l *LRU) get(ls *layerStats, key string) (any, bool) {
	if l == nil {
		return nil, false
	}
	full := ls.name + layerSep + key
	sh := l.shardFor(full)
	sh.mu.Lock()
	v, _, ok, stale := sh.lookupLocked(full, l.gen.Load())
	sh.mu.Unlock()
	if stale {
		l.emit(ls.name, EventEvict, 1)
	}
	if ok {
		ls.hits.Add(1)
		l.emit(ls.name, EventHit, 1)
		return v, true
	}
	ls.misses.Add(1)
	l.emit(ls.name, EventMiss, 1)
	return nil, false
}

// put inserts a value.
func (l *LRU) put(ls *layerStats, key string, val any, cost int64) {
	if l == nil {
		return
	}
	if cost < 1 {
		cost = 1
	}
	full := ls.name + layerSep + key
	sh := l.shardFor(full)
	sh.mu.Lock()
	evicted := sh.insertLocked(full, val, cost, l.gen.Load(), ls)
	sh.mu.Unlock()
	for _, el := range evicted {
		l.emit(el.name, EventEvict, 1)
	}
}

// do implements GetOrCompute with singleflight coalescing: the first
// caller computes, concurrent identical callers wait for its result. The
// boolean reports whether the caller avoided the computation (cache hit
// or coalesced wait).
func (l *LRU) do(ls *layerStats, key string, cost func(any) int64, compute func() (any, error)) (any, bool, error) {
	if l == nil {
		v, err := compute()
		return v, false, err
	}
	full := ls.name + layerSep + key
	sh := l.shardFor(full)
	sh.mu.Lock()
	v, _, ok, stale := sh.lookupLocked(full, l.gen.Load())
	if ok {
		sh.mu.Unlock()
		ls.hits.Add(1)
		l.emit(ls.name, EventHit, 1)
		return v, true, nil
	}
	if f, exists := sh.inflight[full]; exists {
		sh.mu.Unlock()
		if stale {
			l.emit(ls.name, EventEvict, 1)
		}
		<-f.done
		if f.err != nil {
			ls.misses.Add(1)
			l.emit(ls.name, EventMiss, 1)
			return nil, false, f.err
		}
		ls.hits.Add(1)
		ls.coalesced.Add(1)
		l.emit(ls.name, EventHit, 1)
		l.emit(ls.name, EventCoalesce, 1)
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[full] = f
	sh.mu.Unlock()
	if stale {
		l.emit(ls.name, EventEvict, 1)
	}
	ls.misses.Add(1)
	l.emit(ls.name, EventMiss, 1)

	val, err := compute()
	f.val, f.err = val, err

	sh.mu.Lock()
	delete(sh.inflight, full)
	var evicted []*layerStats
	if err == nil {
		c := cost(val)
		if c < 1 {
			c = 1
		}
		evicted = sh.insertLocked(full, val, c, l.gen.Load(), ls)
	}
	sh.mu.Unlock()
	close(f.done)
	for _, el := range evicted {
		l.emit(el.name, EventEvict, 1)
	}
	return val, false, err
}

// Stats aggregates every layer's counters.
func (l *LRU) Stats() Stats {
	var out Stats
	if l == nil {
		return out
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ls := range l.layers {
		out.add(ls.snapshot())
	}
	return out
}

// LayerStats returns a per-layer snapshot keyed by layer name.
func (l *LRU) LayerStats() map[string]Stats {
	out := map[string]Stats{}
	if l == nil {
		return out
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for name, ls := range l.layers {
		out[name] = ls.snapshot()
	}
	return out
}

// Bytes returns the total resident cost across shards.
func (l *LRU) Bytes() int64 {
	if l == nil {
		return 0
	}
	var n int64
	for _, sh := range l.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Len returns the total entry count across shards.
func (l *LRU) Len() int {
	if l == nil {
		return 0
	}
	n := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Layer is a typed, named view over a shared LRU. The cost function
// prices an entry in bytes for the shared budget. A nil *Layer (or a
// layer over a nil LRU) is a valid no-op: every lookup computes.
type Layer[V any] struct {
	lru   *LRU
	stats *layerStats
	cost  func(V) int64
}

// NewLayer registers (or rejoins) the named layer on l. A nil l returns a
// nil layer.
func NewLayer[V any](l *LRU, name string, cost func(V) int64) *Layer[V] {
	if l == nil {
		return nil
	}
	if cost == nil {
		cost = func(V) int64 { return 64 }
	}
	return &Layer[V]{lru: l, stats: l.layer(name), cost: cost}
}

// Get returns the cached value for key.
func (l *Layer[V]) Get(key string) (V, bool) {
	var zero V
	if l == nil {
		return zero, false
	}
	v, ok := l.lru.get(l.stats, key)
	if !ok {
		return zero, false
	}
	return v.(V), true
}

// Put inserts a value, pricing it with the layer's cost function.
func (l *Layer[V]) Put(key string, v V) {
	if l == nil {
		return
	}
	l.lru.put(l.stats, key, v, l.cost(v)+int64(len(key)))
}

// GetOrCompute returns the cached value for key, computing and caching it
// on a miss while coalescing concurrent identical lookups. The boolean
// reports whether the computation was avoided (hit or coalesced).
func (l *Layer[V]) GetOrCompute(key string, compute func() (V, error)) (V, bool, error) {
	if l == nil {
		v, err := compute()
		return v, false, err
	}
	v, hit, err := l.lru.do(l.stats, key,
		func(a any) int64 { return l.cost(a.(V)) + int64(len(key)) },
		func() (any, error) { return compute() })
	if err != nil {
		var zero V
		return zero, false, err
	}
	return v.(V), hit, nil
}

// Stats snapshots the layer's counters.
func (l *Layer[V]) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	return l.stats.snapshot()
}
