// Package expr implements a small arithmetic expression evaluator over
// float64 values with named variables. It backs the Compute operator's
// pre-programmed implementation and the planner's code-generation
// fallback (the paper's "instruct the LLM to generate Python code"
// error-handling strategy, substituted by expression synthesis).
//
// Grammar:
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/') unary)*
//	unary  := '-' unary | atom
//	atom   := number | ident | '(' expr ')'
//
// Identifiers may contain letters, digits, '_', '{', '}' — so variable
// tokens like {v3} are valid identifiers.
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Eval parses and evaluates an expression with the given variable values.
func Eval(src string, vars map[string]float64) (float64, error) {
	p := &parser{src: src, vars: vars}
	v, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("expr: trailing input at %d in %q", p.pos, src)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("expr: non-finite result for %q", src)
	}
	return v, nil
}

type parser struct {
	src  string
	pos  int
	vars map[string]float64
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) parseExpr() (float64, error) {
	v, err := p.parseTerm()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseTerm()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *parser) parseTerm() (float64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("expr: division by zero in %q", p.src)
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *parser) parseUnary() (float64, error) {
	p.skipSpace()
	if p.peek() == '-' {
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	}
	return p.parseAtom()
}

func isIdentRune(r byte) bool {
	return r == '_' || r == '{' || r == '}' ||
		unicode.IsLetter(rune(r)) || unicode.IsDigit(rune(r))
}

func (p *parser) parseAtom() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("expr: unexpected end of %q", p.src)
	}
	c := p.src[p.pos]
	if c == '(' {
		p.pos++
		v, err := p.parseExpr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("expr: missing ')' in %q", p.src)
		}
		p.pos++
		return v, nil
	}
	if c >= '0' && c <= '9' || c == '.' {
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.' || p.src[p.pos] == 'e' || p.src[p.pos] == 'E') {
			p.pos++
			// Allow exponent signs.
			if p.pos < len(p.src) && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E') &&
				(p.src[p.pos] == '+' || p.src[p.pos] == '-') {
				p.pos++
			}
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return 0, fmt.Errorf("expr: bad number %q in %q", p.src[start:p.pos], p.src)
		}
		return v, nil
	}
	if isIdentRune(c) {
		start := p.pos
		for p.pos < len(p.src) && isIdentRune(p.src[p.pos]) {
			p.pos++
		}
		name := strings.TrimSpace(p.src[start:p.pos])
		v, ok := p.vars[name]
		if !ok {
			return 0, fmt.Errorf("expr: unknown variable %q in %q", name, p.src)
		}
		return v, nil
	}
	return 0, fmt.Errorf("expr: unexpected %q at %d in %q", string(c), p.pos, p.src)
}
