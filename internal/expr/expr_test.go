package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		src  string
		vars map[string]float64
		want float64
	}{
		{"1 + 2 * 3", nil, 7},
		{"(1 + 2) * 3", nil, 9},
		{"10 / 4", nil, 2.5},
		{"-5 + 3", nil, -2},
		{"--4", nil, 4},
		{"2 * -3", nil, -6},
		{"x / y", map[string]float64{"x": 3, "y": 4}, 0.75},
		{"{v5} / {v6}", map[string]float64{"{v5}": 10, "{v6}": 5}, 2},
		{"a*a + b*b", map[string]float64{"a": 3, "b": 4}, 25},
		{"1.5e2 + 1", nil, 151},
		{"1e-2", nil, 0.01},
	}
	for _, c := range cases {
		got, err := Eval(c.src, c.vars)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "* 2", "(1", "1 / 0", "unknown_var", "1 2", "1 $ 2",
	} {
		if _, err := Eval(src, nil); err == nil {
			t.Errorf("Eval(%q) should fail", src)
		}
	}
}

// TestEvalAlgebraicProperties checks commutativity/associativity of
// addition over random values via the parser.
func TestEvalAlgebraicProperties(t *testing.T) {
	f := func(a, b int16) bool {
		va, vb := float64(a), float64(b)
		vars := map[string]float64{"a": va, "b": vb}
		s1, err1 := Eval("a + b", vars)
		s2, err2 := Eval("b + a", vars)
		if err1 != nil || err2 != nil {
			return false
		}
		return s1 == s2 && s1 == va+vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatioProperty(t *testing.T) {
	f := func(num, den uint16) bool {
		if den == 0 {
			return true
		}
		vars := map[string]float64{"{v1}": float64(num), "{v2}": float64(den)}
		v, err := Eval("{v1} / {v2}", vars)
		if err != nil {
			return false
		}
		return math.Abs(v-float64(num)/float64(den)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNonFiniteRejected(t *testing.T) {
	if _, err := Eval("x / y", map[string]float64{"x": 1, "y": 0}); err == nil {
		t.Error("division by zero accepted")
	}
}
