package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"unify/internal/embedding"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/ops"
)

// Planner generates logical plans from natural-language queries by
// iterative query reduction (paper Algorithm 1). It talks to the planning
// model (the paper's Llama-70B) exclusively through prompts, matches
// operators by embedding similarity of logical representations, reranks
// candidates with the model, and constructs the plan DAG with
// LLM-assisted dependency checks.
type Planner struct {
	// Client is the planning model.
	Client llm.Client
	// Embedder embeds logical representations for operator matching.
	Embedder *embedding.Embedder
	// K is the number of candidate operators kept by semantic matching.
	K int
	// NC is the number of candidate plans to generate.
	NC int
	// Tau in (0,1] controls how thoroughly each search path is explored
	// before backtracking when generating multiple plans.
	Tau float64
	// MaxSteps bounds the reduction depth (cycle guard).
	MaxSteps int

	// opIndex holds the precomputed embeddings of every operator logical
	// representation (built once, the paper's offline operator indexing).
	opIndex []opEntry
}

type opEntry struct {
	op  string
	lr  string
	vec []float32
}

// NewPlanner builds a planner and precomputes the operator LR embeddings.
func NewPlanner(client llm.Client, emb *embedding.Embedder, k, nc int, tau float64) *Planner {
	p := &Planner{Client: client, Embedder: emb, K: k, NC: nc, Tau: tau, MaxSteps: 24}
	for _, spec := range ops.All() {
		for _, lr := range spec.LRs {
			p.opIndex = append(p.opIndex, opEntry{op: spec.Name, lr: lr, vec: emb.Embed(lr)})
		}
	}
	return p
}

// PlanStats reports the cost of a planning session. Planning is
// sequential (each prompt depends on the previous answer), so its latency
// is the sum of call durations.
type PlanStats struct {
	Calls    []llm.Call
	Duration time.Duration
	Fallback bool // the Generate fallback was needed
	// Unresolved collects sub-queries no operator could reduce — the
	// paper suggests mining these to design new operators (§V-D).
	Unresolved []string
}

type planSession struct {
	p       *Planner
	ctx     context.Context
	rec     *llm.Recorder
	stats   *PlanStats
	plans   []*Plan
	query   string
	nextVar int
	// best tracks the deepest partial plan for the Generate fallback.
	best        *searchState
	budgetCands int

	// Tracing state: cur is the span of the reduction iteration being
	// explored; traced attaches one LLM-call span per prompt under it.
	// Both are nil-safe when no tracer is installed.
	cur    *obs.Span
	traced *llm.Traced
}

// enter opens a child span under the current one and retargets the
// session's LLM-call spans to it. The returned function restores the
// previous span (the planner's DFS is strictly sequential, so a plain
// save/restore mirrors the search tree).
func (ps *planSession) enter(name, kind string) (*obs.Span, func()) {
	parent := ps.cur
	if parent == nil {
		return nil, func() {}
	}
	child := parent.StartChild(name, kind)
	ps.cur = child
	ps.traced.Attach(child)
	return child, func() {
		child.End()
		ps.cur = parent
		ps.traced.Attach(parent)
	}
}

type searchState struct {
	query string
	plan  *Plan
	vars  map[string]string // var name -> description
}

func (s *searchState) clone() *searchState {
	vars := make(map[string]string, len(s.vars))
	for k, v := range s.vars {
		vars[k] = v
	}
	return &searchState{query: s.query, plan: s.plan.Clone(), vars: vars}
}

// ask issues one planning prompt and returns its text, charging the
// call's simulated duration to the current iteration span.
func (ps *planSession) ask(task string, fields map[string]string) (string, error) {
	resp, err := ps.traced.Complete(ps.ctx, llm.BuildPrompt(task, fields))
	if err != nil {
		return "", err
	}
	ps.cur.AddVDur(resp.Dur)
	return resp.Text, nil
}

// GeneratePlans runs Algorithm 1, returning up to NC candidate logical
// plans (at least one: the Generate fallback if decomposition fails).
func (p *Planner) GeneratePlans(ctx context.Context, query string) ([]*Plan, *PlanStats, error) {
	rec := llm.NewRecorder(p.Client)
	pspan := obs.SpanFrom(ctx)
	ps := &planSession{
		p:      p,
		ctx:    ctx,
		rec:    rec,
		stats:  &PlanStats{},
		query:  query,
		cur:    pspan,
		traced: llm.NewTraced(rec, pspan),
	}
	cands := p.K
	if p.Tau > 0 && p.Tau < 1 {
		cands = int(float64(p.K)*p.Tau + 0.9999)
		if cands < 1 {
			cands = 1
		}
	}
	ps.budgetCands = cands

	start := &searchState{
		query: query,
		plan:  &Plan{Query: query},
		vars:  map[string]string{},
	}
	ps.nextVar = 1
	if err := ps.genPlan(start, 0); err != nil {
		return nil, nil, err
	}

	if len(ps.plans) == 0 {
		// Error handling (paper §V-D): restore the most complete partial
		// plan and append a Generate operator for the remaining query.
		ps.stats.Fallback = true
		pspan.SetAttr("fallback", "true")
		base := start
		if ps.best != nil {
			base = ps.best
		}
		plan := base.plan.Clone()
		node := &Node{
			ID:     len(plan.Nodes),
			Op:     "Generate",
			LR:     "answer [Condition] from context",
			Args:   ops.Args{"Condition": ps.query},
			Inputs: []string{"dataset"},
			OutVar: fmt.Sprintf("v%d", ps.nextVar),
			Desc:   "generated answer for: " + ps.query,
		}
		// The fallback depends on everything computed so far.
		for _, n := range plan.Nodes {
			node.Deps = append(node.Deps, n.ID)
		}
		ps.nextVar++
		plan.Nodes = append(plan.Nodes, node)
		ps.plans = append(ps.plans, plan)
	}

	ps.stats.Calls = rec.Calls()
	ps.stats.Duration = rec.TotalDur()
	pspan.SetInt("plans", len(ps.plans))
	pspan.SetInt("llm_calls", len(ps.stats.Calls))
	if n := len(ps.stats.Unresolved); n > 0 {
		pspan.SetInt("unresolved", n)
	}
	return ps.plans, ps.stats, nil
}

// genPlan is the recursive DFS of Algorithm 1.
func (ps *planSession) genPlan(st *searchState, depth int) error {
	if len(ps.plans) >= ps.p.NC || depth > ps.p.MaxSteps {
		return nil
	}
	span, leave := ps.enter(fmt.Sprintf("reduce[depth=%d]", depth), obs.KindIter)
	defer leave()
	span.SetAttr("subquery", st.query)
	// End of reduction (SimpleQuestion).
	ans, err := ps.ask("simple_question", map[string]string{"query": st.query})
	if err != nil {
		return err
	}
	if strings.TrimSpace(ans) == "yes" {
		span.SetAttr("plan_complete", "true")
		ps.plans = append(ps.plans, st.plan.Clone())
		return nil
	}
	if ps.best == nil || len(st.plan.Nodes) > len(ps.best.plan.Nodes) {
		ps.best = st.clone()
	}

	// Operator matching: semantic parse + embedding filter.
	candidates, err := ps.matchOperators(st.query)
	if err != nil {
		return err
	}
	if len(candidates) == 0 {
		ps.stats.Unresolved = append(ps.stats.Unresolved, st.query)
		return nil
	}
	// Rerank with the model by solving degree.
	type ranked struct {
		cand  opCandidate
		deg   int // 2 fully, 1 partially, 0 not
		order int
	}
	var rankedList []ranked
	varDescs := describeVars(st.vars)
	for i, c := range candidates {
		deg, err := ps.ask("rerank_op", map[string]string{
			"query":    st.query,
			"operator": c.op,
			"vars":     varDescs,
		})
		if err != nil {
			return err
		}
		d := 0
		switch strings.TrimSpace(deg) {
		case "fully":
			d = 2
		case "partially":
			d = 1
		}
		rankedList = append(rankedList, ranked{c, d, i})
	}
	sort.SliceStable(rankedList, func(i, j int) bool {
		if rankedList[i].deg != rankedList[j].deg {
			return rankedList[i].deg > rankedList[j].deg
		}
		return rankedList[i].order < rankedList[j].order
	})

	tried := 0
	seenReduced := map[string]bool{}
	for _, r := range rankedList {
		// Candidates the model ranked "not solving" are still attempted
		// (last): the rerank orders the list, but only the reduction
		// prompt decides applicability (Algorithm 1 iterates the list).
		//
		// Each candidate operator is additionally asked for alternative
		// matched segments (e.g. which of several filters to reduce
		// first), which is where candidate-plan diversity comes from.
		for variant := 0; variant < 3; variant++ {
			if len(ps.plans) >= ps.p.NC {
				return nil
			}
			if tried >= ps.budgetCands && len(ps.plans) > 0 {
				// Plan-diversity budget (tau): once a plan exists, curb
				// how deeply each branch is explored before backtracking.
				return nil
			}
			next, ok, err := ps.tryReduce(st, r.cand, variant)
			if err != nil {
				return err
			}
			if !ok {
				break // no further segments for this operator
			}
			if seenReduced[next.query] {
				continue // an equivalent reduction was already explored
			}
			seenReduced[next.query] = true
			tried++
			if err := ps.genPlan(next, depth+1); err != nil {
				return err
			}
		}
	}
	return nil
}

type opCandidate struct {
	op   string
	lr   string
	dist float64
}

// matchOperators parses the query into its logical representation and
// returns the top-K operators by embedding distance (paper §V-A).
func (ps *planSession) matchOperators(query string) ([]opCandidate, error) {
	span, leave := ps.enter("semantic_parse", obs.KindPhase)
	defer leave()
	out, err := ps.ask("parse_query", map[string]string{"query": query})
	if err != nil {
		return nil, err
	}
	var parsed struct {
		OK bool   `json:"ok"`
		LR string `json:"lr"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil || !parsed.OK {
		span.SetAttr("grounded", "false")
		return nil, nil // ungroundable query: triggers fallback upstream
	}
	span.SetAttr("lr", parsed.LR)
	qv := ps.p.Embedder.Embed(parsed.LR)
	best := map[string]opCandidate{}
	for _, e := range ps.p.opIndex {
		d := embedding.Distance(qv, e.vec)
		cur, seen := best[e.op]
		if !seen || d < cur.dist {
			best[e.op] = opCandidate{op: e.op, lr: e.lr, dist: d}
		}
	}
	cands := make([]opCandidate, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].op < cands[j].op
	})
	if len(cands) > ps.p.K {
		cands = cands[:ps.p.K]
	}
	return cands, nil
}

// tryReduce asks the model to reduce the query with the candidate
// operator, extracts the operator arguments from the rewritten segment,
// and extends the plan with dependency checking (paper §V-B, §V-C).
func (ps *planSession) tryReduce(st *searchState, cand opCandidate, variant int) (*searchState, bool, error) {
	out, err := ps.ask("reduce_query", map[string]string{
		"query":    st.query,
		"operator": cand.op,
		"lr":       cand.lr,
		"next":     strconv.Itoa(ps.nextVar),
		"variant":  strconv.Itoa(variant),
	})
	if err != nil {
		return nil, false, err
	}
	var red struct {
		OK        bool              `json:"ok"`
		Reduced   string            `json:"reduced"`
		Rewritten string            `json:"rewritten"`
		Var       string            `json:"var"`
		Desc      string            `json:"desc"`
		Inputs    []string          `json:"inputs"`
		Args      map[string]string `json:"args"`
	}
	if err := json.Unmarshal([]byte(out), &red); err != nil || !red.OK {
		return nil, false, nil
	}

	// Extract the operator inputs from the rewritten segment using the
	// logical representation's compiled regular expression.
	spec, ok := ops.Get(cand.op)
	if !ok {
		return nil, false, fmt.Errorf("core: unknown operator %q", cand.op)
	}
	tmpl := spec.Template(cand.lr)
	if tmpl == nil {
		return nil, false, nil
	}
	slots, ok := tmpl.Extract(red.Rewritten)
	if !ok {
		// The rewrite did not follow the template: treat as a failed
		// reduction and let the search try another operator.
		return nil, false, nil
	}
	// Merge slots the matched template does not carry from the model's
	// structured output (the prompt's enforced output format).
	args := ops.Args(slots)
	for k, v := range red.Args {
		if _, present := args[k]; !present {
			args[k] = v
		}
	}
	enrichArgs(args, red.Rewritten)

	next := st.clone()
	node := &Node{
		ID:     len(next.plan.Nodes),
		Op:     cand.op,
		LR:     cand.lr,
		Args:   args,
		Inputs: red.Inputs,
		OutVar: red.Var,
		Desc:   red.Desc,
	}
	// Dependency check in reverse order with transitivity (paper §V-C).
	deps, err := ps.findDeps(next.plan, node)
	if err != nil {
		return nil, false, err
	}
	node.Deps = deps
	next.plan.Nodes = append(next.plan.Nodes, node)
	next.vars[red.Var] = red.Desc
	next.query = red.Reduced
	ps.nextVar++
	return next, true, nil
}

// findDeps determines the direct prerequisites of a new node: transitive
// prerequisites are resolved without the model; direct input/output
// relationships are checked with dep_check prompts.
func (ps *planSession) findDeps(plan *Plan, node *Node) ([]int, error) {
	inputs := strings.Join(node.Inputs, ", ")
	isAncestor := map[int]bool{}
	var deps []int
	// Reverse order over preceding operators.
	for i := len(plan.Nodes) - 1; i >= 0; i-- {
		prev := plan.Nodes[i]
		if isAncestor[prev.ID] {
			// Already reachable through a found prerequisite; the
			// transitivity property makes an LLM check unnecessary.
			markAncestors(plan, prev, isAncestor)
			continue
		}
		ans, err := ps.ask("dep_check", map[string]string{
			"output": "{" + prev.OutVar + "}",
			"inputs": inputs,
		})
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(ans) == "yes" {
			deps = append(deps, prev.ID)
			isAncestor[prev.ID] = true
			markAncestors(plan, prev, isAncestor)
		}
	}
	sort.Ints(deps)
	return deps, nil
}

func markAncestors(plan *Plan, n *Node, anc map[int]bool) {
	for _, d := range n.Deps {
		if !anc[d] {
			anc[d] = true
			markAncestors(plan, plan.Node(d), anc)
		}
	}
}

// enrichArgs backfills bindings that common templates omit.
func enrichArgs(args ops.Args, rewritten string) {
	if _, ok := args["Expression"]; !ok {
		if a, b := args["Entity"], args["Entity2"]; a != "" && b != "" &&
			strings.Contains(rewritten, "ratio") {
			args["Expression"] = a + " / " + b
		}
	}
}

func describeVars(vars map[string]string) string {
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, v := range names {
		fmt.Fprintf(&b, "{%s}: %s\n", v, vars[v])
	}
	return b.String()
}
