// Package core implements the paper's primary contribution: the planning
// engine that turns a natural-language analytics query into a DAG-shaped
// logical plan by iterative, LLM-guided query reduction (paper §V,
// Algorithm 1), ready for physical optimization and execution.
package core

import (
	"fmt"
	"sort"
	"strings"

	"unify/internal/ops"
	"unify/internal/values"
)

// Known is an observed variable signature fed back to the optimizer
// during dynamic replanning (paper §V): after part of a plan has
// executed, the true kind and cardinality of each produced variable
// replace the estimates for the remaining DAG suffix.
type Known struct {
	Kind values.Kind
	// Card counts documents (Docs/Groups) or entries (Vec/Labels).
	Card int
	// Groups is the group count for Groups values.
	Groups int
}

// KnownOf summarizes an executed value for replanning feedback.
func KnownOf(v values.Value) Known {
	k := Known{Kind: v.Kind}
	switch v.Kind {
	case values.Docs:
		k.Card = len(v.DocIDs)
	case values.Groups:
		k.Card = v.TotalDocs()
		k.Groups = len(v.GroupVal)
	default:
		k.Card = v.Len()
	}
	return k
}

// Node is one operator application in a logical (and later physical) plan.
type Node struct {
	ID     int
	Op     string   // logical operator name ("Filter", "GroupBy", ...)
	LR     string   // the logical representation the segment matched
	Args   ops.Args // placeholder bindings extracted from the rewrite
	Inputs []string // consumed variables: "{v1}" tokens or "dataset"
	OutVar string   // produced variable name, e.g. "v3"
	Desc   string   // natural-language description of the output variable
	Deps   []int    // direct prerequisite node ids (DAG edges)

	// Physical selection, filled by the optimizer.
	Phys string
	// EstCard is the optimizer's estimated output cardinality.
	EstCard int
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	c := *n
	c.Args = make(ops.Args, len(n.Args))
	for k, v := range n.Args {
		c.Args[k] = v
	}
	c.Inputs = append([]string(nil), n.Inputs...)
	c.Deps = append([]int(nil), n.Deps...)
	return &c
}

// Plan is a DAG of operator nodes; the node producing the final variable
// is the plan's root (last node appended).
type Plan struct {
	Query string
	Nodes []*Node
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	c := &Plan{Query: p.Query, Nodes: make([]*Node, len(p.Nodes))}
	for i, n := range p.Nodes {
		c.Nodes[i] = n.Clone()
	}
	return c
}

// Root returns the final node (the answer producer), or nil for an empty
// plan.
func (p *Plan) Root() *Node {
	if len(p.Nodes) == 0 {
		return nil
	}
	return p.Nodes[len(p.Nodes)-1]
}

// Node returns the node with the given id.
func (p *Plan) Node(id int) *Node {
	for _, n := range p.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Producer returns the node producing the given variable token ("{v3}").
func (p *Plan) Producer(varTok string) *Node {
	name := strings.Trim(varTok, "{}")
	for _, n := range p.Nodes {
		if n.OutVar == name {
			return n
		}
	}
	return nil
}

// Topo returns the nodes in a deterministic topological order (by
// dependency level, then id). It returns an error on cycles.
func (p *Plan) Topo() ([]*Node, error) {
	indeg := map[int]int{}
	succ := map[int][]int{}
	for _, n := range p.Nodes {
		indeg[n.ID] += 0
		for _, d := range n.Deps {
			indeg[n.ID]++
			succ[d] = append(succ[d], n.ID)
		}
	}
	var frontier []int
	for _, n := range p.Nodes {
		if indeg[n.ID] == 0 {
			frontier = append(frontier, n.ID)
		}
	}
	sort.Ints(frontier)
	var order []*Node
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, p.Node(id))
		var next []int
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Ints(next)
		frontier = append(frontier, next...)
		sort.Ints(frontier)
	}
	if len(order) != len(p.Nodes) {
		return nil, fmt.Errorf("core: plan has a dependency cycle")
	}
	return order, nil
}

// Levels assigns each node its dependency depth (roots at 0). Nodes on
// the same level can execute in parallel.
func (p *Plan) Levels() map[int]int {
	order, err := p.Topo()
	if err != nil {
		return nil
	}
	lvl := map[int]int{}
	for _, n := range order {
		max := 0
		for _, d := range n.Deps {
			if lvl[d]+1 > max {
				max = lvl[d] + 1
			}
		}
		lvl[n.ID] = max
	}
	return lvl
}

// String renders a compact human-readable plan summary.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %q:\n", p.Query)
	for _, n := range p.Nodes {
		phys := n.Phys
		if phys == "" {
			phys = "?"
		}
		fmt.Fprintf(&b, "  [%d] %s(%s) <- %v deps=%v -> {%s} %q\n",
			n.ID, n.Op, phys, n.Inputs, n.Deps, n.OutVar, n.Desc)
	}
	return b.String()
}

// OpCounts tallies operators by name (used by tests and diagnostics).
func (p *Plan) OpCounts() map[string]int {
	out := map[string]int{}
	for _, n := range p.Nodes {
		out[n.Op]++
	}
	return out
}

// DOT renders the plan as a Graphviz digraph for visual debugging
// (`unify -dot "<query>" | dot -Tsvg`). Nodes show the operator, its
// physical implementation, and the produced variable; edges follow data
// dependencies.
func (p *Plan) DOT() string {
	var b strings.Builder
	b.WriteString("digraph plan {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	fmt.Fprintf(&b, "  label=%q;\n", p.Query)
	for _, n := range p.Nodes {
		phys := n.Phys
		if phys == "" {
			phys = "?"
		}
		label := fmt.Sprintf("%s\\n(%s)\\n{%s}", n.Op, phys, n.OutVar)
		fmt.Fprintf(&b, "  n%d [label=%q];\n", n.ID, label)
		for _, d := range n.Deps {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", d, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
