package core

import (
	"context"
	"strings"
	"testing"

	"unify/internal/embedding"
	"unify/internal/llm"
	"unify/internal/ops"
)

func noiselessPlanner(nc int, tau float64) *Planner {
	cfg := llm.DefaultSimConfig()
	cfg.Profile = llm.PlannerProfile()
	cfg.RerankNoise, cfg.BindNoise = 0, 0
	return NewPlanner(llm.NewSim(cfg), embedding.New(embedding.DefaultDim), 5, nc, tau)
}

func TestPlanModel(t *testing.T) {
	p := &Plan{Query: "q", Nodes: []*Node{
		{ID: 0, Op: "Filter", OutVar: "v1", Inputs: []string{"dataset"}},
		{ID: 1, Op: "Filter", OutVar: "v2", Inputs: []string{"{v1}"}, Deps: []int{0}},
		{ID: 2, Op: "Count", OutVar: "v3", Inputs: []string{"{v2}"}, Deps: []int{1}},
	}}
	if p.Root().ID != 2 {
		t.Error("root should be the last node")
	}
	if p.Producer("{v2}").ID != 1 {
		t.Error("producer lookup failed")
	}
	order, err := p.Topo()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].ID != 0 || order[2].ID != 2 {
		t.Errorf("topo order %v", []int{order[0].ID, order[1].ID, order[2].ID})
	}
	lvl := p.Levels()
	if lvl[0] != 0 || lvl[2] != 2 {
		t.Errorf("levels = %v", lvl)
	}
	c := p.Clone()
	c.Nodes[0].Args = ops.Args{"x": "y"}
	if len(p.Nodes[0].Args) != 0 {
		t.Error("clone is not deep")
	}
	if !strings.Contains(p.String(), "Count") {
		t.Error("String() should list operators")
	}
}

func TestPlanCycleDetected(t *testing.T) {
	p := &Plan{Nodes: []*Node{
		{ID: 0, Deps: []int{1}},
		{ID: 1, Deps: []int{0}},
	}}
	if _, err := p.Topo(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestGeneratePlanSimpleCount(t *testing.T) {
	pl := noiselessPlanner(1, 1)
	plans, stats, err := pl.GeneratePlans(context.Background(),
		"How many questions about football have more than 500 views?")
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("got %d plans", len(plans))
	}
	if stats.Fallback {
		t.Fatal("simple count should not need the fallback")
	}
	counts := plans[0].OpCounts()
	if counts["Filter"]+counts["Scan"] != 2 || counts["Count"] != 1 {
		t.Errorf("ops = %v", counts)
	}
	if stats.Duration <= 0 || len(stats.Calls) == 0 {
		t.Error("planning cost not recorded")
	}
	// Planner calls must use the planner profile.
	root := plans[0].Root()
	if root.Op != "Count" {
		t.Errorf("root op = %s", root.Op)
	}
	if root.Inputs[0] == "dataset" {
		t.Error("count should consume the filtered variable")
	}
}

func TestGeneratePlanDAGSharing(t *testing.T) {
	pl := noiselessPlanner(1, 1)
	q := "Among questions with over 500 views, which sport has the highest ratio of number of questions related to injury to number of questions related to training?"
	plans, stats, err := pl.GeneratePlans(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fallback {
		t.Fatal("running example fell back")
	}
	plan := plans[0]
	counts := plan.OpCounts()
	if counts["GroupBy"] != 1 {
		t.Errorf("grouping not shared: %v", counts)
	}
	if counts["Count"] != 2 || counts["Compute"] != 1 {
		t.Errorf("ops = %v", counts)
	}
	// The two count branches must be independent (DAG width > 1).
	lvl := plan.Levels()
	width := map[int]int{}
	for _, l := range lvl {
		width[l]++
	}
	maxWidth := 0
	for _, w := range width {
		if w > maxWidth {
			maxWidth = w
		}
	}
	if maxWidth < 2 {
		t.Errorf("plan has no parallel level: levels %v\n%s", lvl, plan)
	}
}

func TestGenerateMultiplePlans(t *testing.T) {
	pl := noiselessPlanner(3, 1.0)
	plans, _, err := pl.GeneratePlans(context.Background(),
		"How many questions about football have more than 500 views?")
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) < 2 {
		t.Errorf("exhaustive search found only %d plans", len(plans))
	}
	// Candidate plans must differ (e.g., filter order).
	if len(plans) >= 2 && plans[0].String() == plans[1].String() {
		t.Error("candidate plans are identical")
	}
}

func TestFallbackForUngroundableQuery(t *testing.T) {
	pl := noiselessPlanner(1, 0.75)
	plans, stats, err := pl.GeneratePlans(context.Background(),
		"Please summarize the general mood of the community.")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Fallback {
		t.Error("ungroundable query should trigger the Generate fallback")
	}
	root := plans[0].Root()
	if root.Op != "Generate" {
		t.Errorf("fallback root = %s", root.Op)
	}
}

func TestPlannerDeterministic(t *testing.T) {
	q := "What is the average score of questions related to injury?"
	a, _, err1 := noiselessPlanner(1, 0.75).GeneratePlans(context.Background(), q)
	b, _, err2 := noiselessPlanner(1, 0.75).GeneratePlans(context.Background(), q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a[0].String() != b[0].String() {
		t.Errorf("planner not deterministic:\n%s\nvs\n%s", a[0], b[0])
	}
}

func TestPlanDOT(t *testing.T) {
	pl := noiselessPlanner(1, 0.75)
	plans, _, err := pl.GeneratePlans(context.Background(),
		"How many questions about football have more than 500 views?")
	if err != nil {
		t.Fatal(err)
	}
	dot := plans[0].DOT()
	for _, want := range []string{"digraph plan", "Count", "->", "rankdir"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
