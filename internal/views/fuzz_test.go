package views

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzViewKey pins the stability and soundness of the view keying
// scheme: content hashes are deterministic and sensitive to the
// title/text boundary, row keys are stable and injective over
// (column, id), and a Put/Get round-trip serves exactly the stored
// value under the matching hash and nothing under any other.
func FuzzViewKey(f *testing.F) {
	f.Add("about tennis", "t", "a doc about tennis", 7)
	f.Add("", "", "", 0)
	f.Add("views", "x\x1fy", "text with \x00 bytes", -3)
	f.Add("score", "ab", "c", 1<<20)
	f.Fuzz(func(t *testing.T, target, title, text string, id int) {
		h := DocHash(title, text)
		if h != DocHash(title, text) {
			t.Fatal("DocHash not deterministic")
		}
		// Moving one byte across the title/text boundary must change
		// the hash (the NUL separator guarantees it).
		if len(title) > 0 {
			if h == DocHash(title[:len(title)-1], title[len(title)-1:]+text) {
				t.Fatalf("boundary shift collides: %q/%q", title, text)
			}
		}

		col := FilterColumn(target)
		key := Key(col, id)
		if key != Key(col, id) {
			t.Fatal("Key not deterministic")
		}
		if !strings.HasSuffix(key, strconv.Itoa(id)) {
			t.Fatalf("key %q does not end in the id", key)
		}
		if key == Key(col, id+1) {
			t.Fatal("keys for distinct ids collide")
		}
		op, tgt := SplitColumn(col)
		if op != "filter" || tgt != target {
			t.Fatalf("SplitColumn(%q) = (%q, %q)", col, op, tgt)
		}

		s := NewStore()
		s.Put(col, id, h, "yes")
		if v, ok := s.Get(col, id, h); !ok || v != "yes" {
			t.Fatalf("round-trip failed: (%q, %v)", v, ok)
		}
		if _, ok := s.Get(col, id, h+1); ok {
			t.Fatal("served under a mismatched hash")
		}
		other := ClassifyColumn(target)
		if other == col {
			t.Fatal("filter and classify columns collide")
		}
		if _, ok := s.Get(other, id, h); ok {
			t.Fatal("served from the wrong column")
		}
	})
}
