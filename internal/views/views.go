// Package views implements materialized semantic views: per-document
// operator results (filter verdicts, classification labels, extracted
// field values) persisted as named columns and reused across queries.
//
// A row is keyed by (column, document id) and carries the content hash
// of the document it was computed from. Reads succeed only when the
// stored hash matches the live document's hash, so a row can never
// outlive the content that produced it: updating a document silently
// retires its rows, and re-ingesting identical content revives them.
// This is the amortize-once-query-many pattern (Lin et al.; Aryn):
// the first query over a predicate pays the LLM scan and backfills the
// column, later queries — and later corpus generations, for untouched
// documents — read it back at zero model cost.
//
// Determinism contract: the store itself performs no model calls and
// takes no clock readings. Backfills happen inside operator execution
// on the shared virtual clock, and whether a row is present is a pure
// function of the query history and ingest history, so schedules stay
// replayable.
package views

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Column-name constructors. The unit separator keeps predicate text from
// colliding with the operator prefix ("filter" + "x" vs "filterx").
const colSep = "\x1f"

// FilterColumn names the verdict column for one filter condition.
func FilterColumn(cond string) string { return "filter" + colSep + cond }

// ClassifyColumn names the label column for one classification target.
func ClassifyColumn(class string) string { return "classify" + colSep + class }

// ExtractColumn names the value column for one extracted field.
func ExtractColumn(field string) string { return "extract" + colSep + field }

// SplitColumn splits a column name into its operator prefix and target
// (predicate text, class word, or field name) for display surfaces.
func SplitColumn(col string) (op, target string) {
	op, target, found := strings.Cut(col, colSep)
	if !found {
		return col, ""
	}
	return op, target
}

// DocHash fingerprints a document's analyzable content. The title is
// length-prefixed so no byte shifted across the title/text boundary can
// collide — a NUL separator alone would collide for titles ending in
// NUL, which FuzzViewKey found.
func DocHash(title, text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strconv.Itoa(len(title))))
	h.Write([]byte{0})
	h.Write([]byte(title))
	h.Write([]byte(text))
	return h.Sum64()
}

// Key renders the storage key of one row, used for audit reporting and
// pinned by FuzzViewKey: stable across runs, injective over (col, id).
func Key(col string, id int) string { return col + colSep + strconv.Itoa(id) }

// Entry is one materialized row: the operator result for one document,
// stamped with the content hash it was computed from.
type Entry struct {
	Hash uint64
	Val  string
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Columns     int   `json:"columns"`
	Rows        int   `json:"rows"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Backfills   int64 `json:"backfills"`
	Invalidated int64 `json:"invalidated"`
}

// HitRate returns hits/(hits+misses), 0 when no reads happened.
func (st Stats) HitRate() float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}

// ColumnStats describes one column for observability surfaces.
type ColumnStats struct {
	Op     string `json:"op"`     // operator family: filter, classify, extract
	Target string `json:"target"` // predicate text, class word, or field name
	Rows   int    `json:"rows"`
}

// Store holds every materialized column. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	columns map[string]map[int]Entry

	hits        int64
	misses      int64
	backfills   int64
	invalidated int64

	// Serve audit (StrictChecks only): rows served since the last
	// AuditServed call, keyed by Key(col,id) with the hash served. The
	// views.column_fresh invariant replays these against live hashes.
	audit  bool
	served map[string]servedRow
}

type servedRow struct {
	col  string
	id   int
	hash uint64
}

// NewStore returns an empty view store.
func NewStore() *Store {
	return &Store{columns: make(map[string]map[int]Entry)}
}

// SetAudit enables serve auditing for the views.column_fresh invariant.
func (s *Store) SetAudit(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.audit = on
	if on && s.served == nil {
		s.served = make(map[string]servedRow)
	}
}

// Get returns the materialized value for (col, id) if a row exists AND
// its stored content hash matches liveHash. A row computed from stale
// content is never served — it counts as a miss and waits for the
// operator to backfill it from the live document.
func (s *Store) Get(col string, id int, liveHash uint64) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.columns[col][id]
	if !ok || e.Hash != liveHash {
		s.misses++
		return "", false
	}
	s.hits++
	if s.audit {
		s.served[Key(col, id)] = servedRow{col: col, id: id, hash: e.Hash}
	}
	return e.Val, true
}

// Put materializes (or refreshes) one row.
func (s *Store) Put(col string, id int, hash uint64, val string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.columns[col]
	if !ok {
		m = make(map[int]Entry)
		s.columns[col] = m
	}
	m[id] = Entry{Hash: hash, Val: val}
	s.backfills++
}

// Invalidate drops every row for the given document across all columns
// (called when a document's content changes) and returns the number of
// rows removed. Rows for re-added identical content would have matched
// by hash anyway; dropping keeps the store's resident size honest.
func (s *Store) Invalidate(id int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for col, m := range s.columns {
		if _, ok := m[id]; ok {
			delete(m, id)
			n++
			if len(m) == 0 {
				delete(s.columns, col)
			}
		}
	}
	if s.served != nil {
		for k, row := range s.served {
			if row.id == id {
				delete(s.served, k)
			}
		}
	}
	s.invalidated += int64(n)
	return n
}

// Covers reports whether every id has a fresh row in col — the
// optimizer's test for costing a column read instead of an LLM scan.
// hashOf returns the live content hash for a document id. Reads here
// are a planning probe, not a serve: counters are untouched.
func (s *Store) Covers(col string, ids []int, hashOf func(int) (uint64, bool)) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.columns[col]
	if !ok {
		return len(ids) == 0
	}
	for _, id := range ids {
		h, ok := hashOf(id)
		if !ok {
			return false
		}
		e, ok := m[id]
		if !ok || e.Hash != h {
			return false
		}
	}
	return true
}

// CoverageCount returns how many of ids have a fresh row in col.
func (s *Store) CoverageCount(col string, ids []int, hashOf func(int) (uint64, bool)) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := s.columns[col]
	n := 0
	for _, id := range ids {
		if h, ok := hashOf(id); ok {
			if e, ok := m[id]; ok && e.Hash == h {
				n++
			}
		}
	}
	return n
}

// AuditServed implements the views.column_fresh invariant: every row
// served since the last audit must still match the live content hash of
// its document. It returns one description per violation ("col key=...
// served=... live=...") and clears the audit set. hashOf returns the
// live hash (ok=false for deleted documents, which is a violation too:
// a serve must never outlive its document).
func (s *Store) AuditServed(hashOf func(int) (uint64, bool)) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.served) == 0 {
		return nil
	}
	var bad []string
	for k, row := range s.served {
		live, ok := hashOf(row.id)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: document %d no longer exists", k, row.id))
			continue
		}
		if live != row.hash {
			bad = append(bad, fmt.Sprintf("%s: served hash %x but live document hash is %x", k, row.hash, live))
		}
	}
	s.served = make(map[string]servedRow)
	sort.Strings(bad)
	return bad
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Columns:     len(s.columns),
		Hits:        s.hits,
		Misses:      s.misses,
		Backfills:   s.backfills,
		Invalidated: s.invalidated,
	}
	for _, m := range s.columns {
		st.Rows += len(m)
	}
	return st
}

// Columns lists per-column row counts, sorted by (op, target) so every
// observability surface renders deterministically.
func (s *Store) Columns() []ColumnStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ColumnStats, 0, len(s.columns))
	for col, m := range s.columns {
		op, target := SplitColumn(col)
		out = append(out, ColumnStats{Op: op, Target: target, Rows: len(m)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Target < out[j].Target
	})
	return out
}
