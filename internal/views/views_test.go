package views

import (
	"fmt"
	"strings"
	"testing"
)

func TestGetServesOnlyMatchingHash(t *testing.T) {
	s := NewStore()
	col := FilterColumn("about tennis")
	h := DocHash("t", "a doc about tennis")
	s.Put(col, 7, h, "yes")

	if v, ok := s.Get(col, 7, h); !ok || v != "yes" {
		t.Fatalf("fresh row: got (%q, %v), want (yes, true)", v, ok)
	}
	// Content changed: the stored row must not be served.
	h2 := DocHash("t", "now about golf")
	if v, ok := s.Get(col, 7, h2); ok {
		t.Fatalf("stale row served: %q", v)
	}
	if _, ok := s.Get(col, 8, h); ok {
		t.Fatal("missing row served")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Backfills != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 backfill", st)
	}
	if got := st.HitRate(); got != 1.0/3.0 {
		t.Fatalf("hit rate = %v", got)
	}
}

func TestInvalidateDropsAllColumnsForDoc(t *testing.T) {
	s := NewStore()
	h := DocHash("", "x")
	s.Put(FilterColumn("p"), 1, h, "yes")
	s.Put(ClassifyColumn("sport"), 1, h, "tennis")
	s.Put(ExtractColumn("views"), 1, h, "512")
	s.Put(FilterColumn("p"), 2, h, "no")

	if n := s.Invalidate(1); n != 3 {
		t.Fatalf("Invalidate(1) removed %d rows, want 3", n)
	}
	if _, ok := s.Get(FilterColumn("p"), 1, h); ok {
		t.Fatal("row survived invalidation")
	}
	if v, ok := s.Get(FilterColumn("p"), 2, h); !ok || v != "no" {
		t.Fatal("unrelated row was dropped")
	}
	st := s.Stats()
	if st.Invalidated != 3 || st.Rows != 1 || st.Columns != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCovers(t *testing.T) {
	s := NewStore()
	col := ClassifyColumn("sport")
	hashes := map[int]uint64{1: 11, 2: 22, 3: 33}
	hashOf := func(id int) (uint64, bool) { h, ok := hashes[id]; return h, ok }
	s.Put(col, 1, 11, "tennis")
	s.Put(col, 2, 22, "golf")

	if s.Covers(col, []int{1, 2, 3}, hashOf) {
		t.Fatal("Covers true with doc 3 missing")
	}
	if !s.Covers(col, []int{1, 2}, hashOf) {
		t.Fatal("Covers false with both rows fresh")
	}
	if got := s.CoverageCount(col, []int{1, 2, 3}, hashOf); got != 2 {
		t.Fatalf("CoverageCount = %d, want 2", got)
	}
	// A stale row breaks coverage.
	hashes[2] = 99
	if s.Covers(col, []int{1, 2}, hashOf) {
		t.Fatal("Covers true over a stale row")
	}
	// Coverage probes must not perturb serve counters.
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("planning probes moved counters: %+v", st)
	}
}

func TestAuditServed(t *testing.T) {
	s := NewStore()
	s.SetAudit(true)
	col := FilterColumn("p")
	hashes := map[int]uint64{1: 11, 2: 22}
	hashOf := func(id int) (uint64, bool) { h, ok := hashes[id]; return h, ok }
	s.Put(col, 1, 11, "yes")
	s.Put(col, 2, 22, "yes")
	s.Get(col, 1, 11)
	s.Get(col, 2, 22)

	if bad := s.AuditServed(hashOf); bad != nil {
		t.Fatalf("fresh serves flagged: %v", bad)
	}
	// Serve, then mutate the doc without invalidating: audit must flag it.
	s.Get(col, 1, 11)
	hashes[1] = 99
	bad := s.AuditServed(hashOf)
	if len(bad) != 1 || !strings.Contains(bad[0], Key(col, 1)) {
		t.Fatalf("stale serve not flagged: %v", bad)
	}
	// The audit set clears after each call.
	if bad := s.AuditServed(hashOf); bad != nil {
		t.Fatalf("audit set not cleared: %v", bad)
	}
	// Invalidate clears pending serve records for the touched doc.
	hashes[1] = 11
	s.Put(col, 1, 11, "yes")
	s.Get(col, 1, 11)
	s.Invalidate(1)
	if bad := s.AuditServed(hashOf); bad != nil {
		t.Fatalf("invalidated serve still flagged: %v", bad)
	}
}

func TestColumnsSortedDeterministically(t *testing.T) {
	s := NewStore()
	s.Put(ExtractColumn("views"), 1, 1, "9")
	s.Put(FilterColumn("b"), 1, 1, "yes")
	s.Put(FilterColumn("a"), 1, 1, "no")
	s.Put(ClassifyColumn("sport"), 1, 1, "golf")

	got := s.Columns()
	want := []ColumnStats{
		{Op: "classify", Target: "sport", Rows: 1},
		{Op: "extract", Target: "views", Rows: 1},
		{Op: "filter", Target: "a", Rows: 1},
		{Op: "filter", Target: "b", Rows: 1},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Columns() = %v, want %v", got, want)
	}
}

func TestDocHashSeparatesTitleAndText(t *testing.T) {
	if DocHash("ab", "c") == DocHash("a", "bc") {
		t.Fatal("title/text boundary not hashed")
	}
	if DocHash("t", "x") != DocHash("t", "x") {
		t.Fatal("hash not stable")
	}
}
