package exec

import (
	"context"
	"strconv"
	"testing"

	"unify/internal/core"
	"unify/internal/corpus"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/optimizer"
	"unify/internal/sce"
)

// replanSetup builds an executor wired to a real optimizer as Replanner.
func replanSetup(t *testing.T, n int) (*Executor, *optimizer.Optimizer) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	worker := llm.NewSim(cfg)
	calib := cost.NewCalibrator(16)
	est := sce.NewEstimator(store, worker, 8)
	opt := optimizer.New(store, est, calib, 4)
	e := New(store, worker, calib)
	e.ReplanThreshold = 3
	e.Replanner = opt
	return e, opt
}

// misEstimatedPlan is the golden fixture: the first filter's estimated
// cardinality is wildly wrong (1 instead of the real ~10% match rate),
// and the dependent second filter's estimate inherits the error.
func misEstimatedPlan() *core.Plan {
	return &core.Plan{Query: "replan-golden", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Phys: "SemanticFilter", EstCard: 1,
			Args:   ops.Args{"Entity": "questions", "Condition": "related to injury"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Filter", Phys: "SemanticFilter", EstCard: 1,
			Args:   ops.Args{"Entity": "{v1}", "Condition": "related to football"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}},
		{ID: 2, Op: "Count", Phys: "PreCount",
			Args:   ops.Args{"Entity": "{v2}"},
			Inputs: []string{"{v2}"}, OutVar: "v3", Deps: []int{1}},
	}}
}

// countReplanSpans walks a span tree counting "replan" phases.
func countReplanSpans(s *obs.Span) int {
	if s == nil {
		return 0
	}
	n := 0
	if s.Name == "replan" {
		n++
	}
	for _, c := range s.Children() {
		n += countReplanSpans(c)
	}
	return n
}

func TestGoldenReplan(t *testing.T) {
	e, _ := replanSetup(t, 300)
	plan := misEstimatedPlan()

	tr := obs.NewTracer()
	span := tr.Start("execute", obs.KindPhase)
	ctx := obs.WithSpan(context.Background(), span)
	res, err := e.Run(ctx, plan)
	span.End()
	if err != nil {
		t.Fatal(err)
	}

	if res.Replans != 1 {
		t.Fatalf("replans = %d, want exactly 1", res.Replans)
	}
	if got := countReplanSpans(span); got != 1 {
		t.Errorf("replan spans = %d, want exactly 1", got)
	}
	rs := span.Find("replan")
	if rs == nil {
		t.Fatal("no replan span")
	}
	obsCard := res.Nodes[0].Value.Len()
	if rs.Attr("node") != "0" {
		t.Errorf("replan trigger node = %q, want 0", rs.Attr("node"))
	}
	if rs.Attr("est_card") != "1" {
		t.Errorf("est_card attr = %q, want 1", rs.Attr("est_card"))
	}
	if rs.Attr("obs_card") != strconv.Itoa(obsCard) {
		t.Errorf("obs_card attr = %q, want %d", rs.Attr("obs_card"), obsCard)
	}
	if res.ReplanDur <= 0 {
		t.Error("replanning must cost simulated time")
	}

	// The replanned suffix saw the corrected cardinality: node 1's
	// estimate was re-derived from the observed ~30 inputs, not from the
	// bogus estimate of 1.
	if n1 := plan.Node(1); n1.EstCard <= 1 || n1.EstCard > obsCard {
		t.Errorf("suffix EstCard = %d after replan, want in (1, %d]", n1.EstCard, obsCard)
	}
	// The executed prefix keeps its original (wrong) estimate: replanning
	// only touches the un-executed suffix.
	if n0 := plan.Node(0); n0.EstCard != 1 {
		t.Errorf("executed prefix EstCard changed to %d", n0.EstCard)
	}
	// The answer is still correct.
	if _, err := strconv.Atoi(res.Answer.String()); err != nil {
		t.Errorf("answer %q is not a count", res.Answer.String())
	}
}

// TestReplanDisabledByDefault: a zero-valued executor never replans, and
// execution over the same mis-estimated plan is unchanged.
func TestReplanDisabledByDefault(t *testing.T) {
	e, _ := replanSetup(t, 300)
	e.ReplanThreshold = 0
	e.Replanner = nil
	plan := misEstimatedPlan()
	res, err := e.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans != 0 || res.ReplanDur != 0 {
		t.Errorf("replans = %d dur = %v with replanning disabled", res.Replans, res.ReplanDur)
	}
	if n1 := plan.Node(1); n1.EstCard != 1 {
		t.Errorf("EstCard mutated to %d without replanning", n1.EstCard)
	}
}

// TestReplanRespectsBound: MaxReplans caps rounds even when every node
// deviates.
func TestReplanRespectsBound(t *testing.T) {
	e, _ := replanSetup(t, 300)
	e.MaxReplans = 1
	plan := misEstimatedPlan()
	res, err := e.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans > 1 {
		t.Errorf("replans = %d, want <= 1", res.Replans)
	}
}
