// Package exec executes physical plans: parallel bottom-up topological
// execution over the plan DAG with batched LLM invocations (paper §III-C),
// dynamic plan adjustment when an operator implementation fails, and
// virtual-clock accounting that reproduces the paper's latency measurements
// on the 4-slot LLM machine model.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"unify/internal/check"
	"unify/internal/core"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/sched"
	"unify/internal/values"
	"unify/internal/views"
	"unify/internal/vtime"
)

// sequentialPhys marks implementations whose LLM calls form a dependent
// chain and cannot be parallelized across slots.
var sequentialPhys = map[string]bool{
	"SemanticArgMax": true,
	"SemanticArgMin": true,
}

// Replanner re-optimizes a partially executed plan's suffix given the
// observed signatures of already-produced variables (paper §V: dynamic
// replanning on execution feedback). The returned duration is the
// simulated cost of the replanning work. The optimizer implements this.
type Replanner interface {
	Reoptimize(ctx context.Context, plan *core.Plan, known map[string]core.Known) (time.Duration, error)
}

// Executor runs physical plans against a store.
type Executor struct {
	Store *docstore.Store
	// Worker is the operator-execution model.
	Worker llm.Client
	// Calib receives execution history (the cost model's calibration
	// loop) and models pre-programmed durations.
	Calib *cost.Calibrator
	// Slots is the number of LLM server slots (paper: 4 local Llamas).
	Slots int
	// BatchSize is the per-invocation document batch size.
	BatchSize int
	// MaxParallel bounds concurrently executing operators.
	MaxParallel int

	// Pool is the process-global slot pool shared by all concurrent
	// queries. When nil the executor schedules on a private single-query
	// pool (identical to the shared pool with no contention).
	Pool *sched.Pool

	// Batching mirrors the pool's continuous-batching policy: when set,
	// recorded calls carrying a batch key get their cost decomposition
	// attached so the scheduler can coalesce them across queries.
	Batching *vtime.BatchPolicy

	// Views, when non-nil, is the materialized semantic view store:
	// operators read per-document verdicts/labels/values from it instead
	// of invoking the model, and backfill it with fresh results.
	Views *views.Store

	// Sharding is the corpus shard assignment for scatter execution on a
	// simulated cluster (nil on a single machine). Operators the
	// optimizer marked "_scatter" fan their document input out per shard,
	// run each shard's slice on that shard's machine, and merge the
	// partials; the shard count must match the cluster width.
	Sharding *docstore.Sharding

	// NodeErrorBudget, when positive, lets each operator absorb up to
	// this many per-batch LLM failures by skipping the affected
	// documents (partial results) instead of failing the node.
	NodeErrorBudget int
	// ReplanThreshold triggers dynamic replanning: when an executed
	// node's observed output cardinality deviates from its SCE estimate
	// by more than this ratio (in either direction) and downstream nodes
	// have not run yet, the Replanner re-optimizes the remaining DAG
	// suffix with corrected cardinalities. Values <= 1 disable
	// replanning.
	ReplanThreshold float64
	// MaxReplans bounds replanning rounds per execution (default 1).
	MaxReplans int
	// Replanner performs the suffix re-optimization (nil disables).
	Replanner Replanner

	// StrictChecks validates every plan this executor receives (including
	// replanned suffixes, which mutate the plan in place) against the
	// internal/check invariants before running it. On in all tests, off
	// by default on the production path (Config.StrictChecks).
	StrictChecks bool
}

// NodeResult captures one operator execution.
type NodeResult struct {
	NodeID     int
	Op         string
	Phys       string
	Value      values.Value
	Calls      []llm.Call
	PreDur     time.Duration
	InCard     int
	Sequential bool
	Adjusted   bool // a fallback physical implementation was used
	// SkippedDocs counts documents dropped by the node's error budget
	// (graceful degradation under LLM failures).
	SkippedDocs int
	// Retries counts failed attempts the resilience layer absorbed
	// across the node's calls.
	Retries int
	// ViewHits counts per-document judgments served from materialized
	// views instead of model work during this node's execution.
	ViewHits int
	// GrantWait is the node's share of the query's slot-grant delay on
	// the shared pool (cost attribution for contention).
	GrantWait time.Duration
	// ShardCalls holds, for scatter executions, each shard's model calls
	// (index = shard); the scheduler places shard s's stream on machine
	// s's slots. Empty for unscattered nodes. All shard and merge calls
	// are also in Calls for aggregate accounting.
	ShardCalls [][]llm.Call
	// MergeCalls are the merge/combine step's model calls (top-k re-ranks
	// the union of per-shard winners; exact merges have none). The merge
	// runs on the query's home machine.
	MergeCalls []llm.Call
	// Span is the node's trace span (nil when tracing is off).
	Span *obs.Span
}

// Result is a completed plan execution.
type Result struct {
	Answer values.Value
	Nodes  []NodeResult
	// Makespan is the simulated latency of parallel topological
	// execution on the machine model.
	Makespan time.Duration
	// Serial is the simulated latency of fully sequential execution
	// (the Unify-noLO ablation of Figure 5a).
	Serial time.Duration
	// LLMCalls counts model invocations during execution.
	LLMCalls int
	// CachedLLMCalls counts invocations answered by the response cache
	// (included in LLMCalls; they cost zero virtual time and bypass the
	// slot pool).
	CachedLLMCalls int
	// OutTokens counts generated tokens during execution.
	OutTokens int
	// Adjusted reports that at least one operator needed a fallback
	// physical implementation (the paper's plan adjustment).
	Adjusted bool
	// SlotBusy is the total simulated busy time across the LLM slot
	// pool (slot utilization = SlotBusy / (Makespan * slots)).
	SlotBusy time.Duration
	// GrantWait is the total simulated delay between units becoming
	// ready and receiving a slot grant — non-zero under cross-query
	// contention on the shared pool.
	GrantWait time.Duration
	// SoloMakespan is the simulated latency the same execution would
	// have on an idle machine; Makespan == SoloMakespan for a query
	// that ran alone, and Makespan >= SoloMakespan under contention.
	SoloMakespan time.Duration
	// PoolStart is the query's virtual admission time on the shared
	// clock (0 for a private pool).
	PoolStart time.Duration
	// Contended reports the execution shared slots with other queries.
	Contended bool
	// BatchedCalls counts this query's LLM calls that shared a batched
	// invocation with another query (0 without batching).
	BatchedCalls int
	// SkippedDocs counts documents dropped across all nodes by error
	// budgets: the answer is partial when this is non-zero.
	SkippedDocs int
	// ViewHits counts per-document judgments served from materialized
	// views across all nodes (each hit is a model judgment avoided).
	ViewHits int
	// Replans counts dynamic replanning rounds during this execution.
	Replans int
	// ReplanDur is the simulated cost of replanning (already included
	// in Makespan).
	ReplanDur time.Duration
}

// New returns an executor with the paper's defaults.
func New(store *docstore.Store, worker llm.Client, calib *cost.Calibrator) *Executor {
	return &Executor{Store: store, Worker: worker, Calib: calib, Slots: 4, BatchSize: 16, MaxParallel: 8}
}

// errReplan is the internal sentinel that stops a pass so the remaining
// DAG suffix can be re-optimized; it never escapes Run.
var errReplan = errors.New("exec: replan requested")

// replanTrigger records the node whose observed cardinality deviated.
type replanTrigger struct {
	nodeID   int
	est, obs int
}

// Run executes the plan and returns the answer plus timing accounting.
//
// Execution proceeds in passes: a pass runs the DAG in parallel until it
// completes or a node's observed output cardinality deviates from the
// optimizer's estimate beyond ReplanThreshold. On deviation the
// Replanner re-optimizes the un-executed suffix with corrected
// cardinalities (paper §V dynamic replanning) and the next pass resumes
// from the completed prefix — finished nodes are never re-executed.
func (e *Executor) Run(ctx context.Context, plan *core.Plan) (*Result, error) {
	order, err := plan.Topo()
	if err != nil {
		return nil, err
	}
	root := plan.Root()
	if root == nil {
		return nil, fmt.Errorf("exec: empty plan")
	}

	espan := obs.SpanFrom(ctx)
	if e.StrictChecks {
		if err := check.Fail("exec: physical plan", check.Plan(plan, e.Store.Len(), true), espan); err != nil {
			return nil, err
		}
	}
	completed := map[int]*NodeResult{}
	vars := map[string]values.Value{"dataset": values.NewDocs(e.Store.IDs())}
	replans := 0
	var replanDur time.Duration
	for {
		allow := e.ReplanThreshold > 1 && e.Replanner != nil && replans < e.maxReplans()
		trig, err := e.runPass(ctx, plan, order, completed, vars, allow)
		if err != nil {
			return nil, err
		}
		if trig == nil {
			break
		}
		replans++
		known := make(map[string]core.Known, len(completed))
		for id, nr := range completed {
			if n := plan.Node(id); n != nil {
				known["{"+n.OutVar+"}"] = core.KnownOf(nr.Value)
			}
		}
		rspan := espan.StartChild("replan", obs.KindPhase)
		rspan.SetInt("node", trig.nodeID)
		rspan.SetInt("est_card", trig.est)
		rspan.SetInt("obs_card", trig.obs)
		d, rerr := e.Replanner.Reoptimize(ctx, plan, known)
		// Replanning's SCE judgments parallelize across the slot pool,
		// like the initial optimization.
		d /= time.Duration(e.slots())
		rspan.SetVDur(d)
		replanDur += d
		if rerr != nil {
			// The replan failed: finish the suffix on the stale plan
			// rather than losing the query.
			rspan.SetAttr("error", rerr.Error())
			replans = e.maxReplans()
		}
		rspan.End()
		// Reoptimize rewrites the un-executed suffix in place: re-validate
		// the mutated plan before resuming.
		if e.StrictChecks {
			if err := check.Fail("exec: replanned plan", check.Plan(plan, e.Store.Len(), true), espan); err != nil {
				return nil, err
			}
		}
	}

	res := &Result{Replans: replans, ReplanDur: replanDur}
	for _, n := range order {
		nr := completed[n.ID]
		if nr == nil {
			return nil, fmt.Errorf("exec: node %d produced no result", n.ID)
		}
		// Adopt node spans in plan order so EXPLAIN ANALYZE output is
		// deterministic regardless of goroutine completion order.
		espan.Adopt(nr.Span)
		res.Nodes = append(res.Nodes, *nr)
		if nr.Adjusted {
			res.Adjusted = true
		}
		res.SkippedDocs += nr.SkippedDocs
		res.ViewHits += nr.ViewHits
		res.LLMCalls += len(nr.Calls)
		for _, c := range nr.Calls {
			res.OutTokens += c.OutTokens
			if c.Cached {
				res.CachedLLMCalls++
			}
		}
	}
	ans, ok := vars["{"+root.OutVar+"}"]
	if !ok {
		return nil, fmt.Errorf("exec: plan root variable %s missing", root.OutVar)
	}
	res.Answer = ans

	// Submit the recorded work to the shared slot pool: the makespan
	// reflects slot grants actually received against concurrent queries.
	// A query admitted upstream carries its ticket in the context; an
	// unticketed caller gets a self-contained admit/release. The ticket
	// resolves before the task graph is built: its home machine places
	// the query's unscattered work.
	pool := e.Pool
	tk := sched.TicketFrom(ctx)
	if pool == nil {
		private := sched.NewCluster(e.clusterWidth(), e.slots())
		private.Batching = e.Batching
		pool, tk = private.Pool, nil
	}
	owned := tk == nil
	if owned {
		tk = pool.Admit(0)
	}
	tasks := e.tasks(plan, res.Nodes, tk.Machine(), pool.Machines())
	jr, err := pool.Run(ctx, tk, tasks)
	if errors.Is(err, sched.ErrTicketUsed) {
		// The query's ticket was consumed by an earlier execution (the
		// system-level fallback re-runs on the same context): re-admit,
		// rebuilding the graph against the fresh ticket's home machine.
		tk = pool.Admit(tk.Priority)
		owned = true
		tasks = e.tasks(plan, res.Nodes, tk.Machine(), pool.Machines())
		jr, err = pool.Run(ctx, tk, tasks)
	}
	if owned {
		pool.Release(tk)
	}
	if err != nil {
		return nil, err
	}
	res.Makespan = jr.Makespan + replanDur
	res.SlotBusy = jr.Busy
	res.GrantWait = jr.GrantWait
	res.SoloMakespan = jr.Solo + replanDur
	res.PoolStart = jr.Start
	res.Contended = jr.Contended
	res.BatchedCalls = jr.BatchedUnits
	for i := range res.Nodes {
		nr := &res.Nodes[i]
		tid := fmt.Sprintf("n%d", nr.NodeID)
		if f, ok := jr.Finish[tid]; ok {
			nr.Span.SetAttr("finish_vtime", f.Round(time.Millisecond).String())
		}
		if w, ok := jr.TaskWait[tid]; ok && w > 0 {
			nr.GrantWait = w
			nr.Span.SetAttr("grant_wait", w.Round(time.Millisecond).String())
		}
		if b := jr.TaskBatched[tid]; b > 0 {
			nr.Span.SetInt("batched_calls", b)
		}
	}
	ser, err := vtime.NewCluster(pool.Machines(), e.slots()).SerialOperators(tasks)
	if err != nil {
		return nil, err
	}
	res.Serial = ser + replanDur
	return res, nil
}

// clusterWidth is the machine count the executor scatters over (1
// without a sharding).
func (e *Executor) clusterWidth() int {
	if e.Sharding == nil || e.Sharding.N < 1 {
		return 1
	}
	return e.Sharding.N
}

// runPass executes every not-yet-completed node of the plan in parallel
// bottom-up topological order, recording results into completed/vars. It
// returns a non-nil trigger when replanning was requested (the pass
// stops early; in-flight nodes still finish and are kept).
func (e *Executor) runPass(ctx context.Context, plan *core.Plan, order []*core.Node,
	completed map[int]*NodeResult, vars map[string]values.Value, allowReplan bool) (*replanTrigger, error) {

	espan := obs.SpanFrom(ctx)
	var (
		mu     sync.Mutex
		firstE error
		trig   *replanTrigger
	)
	setErr := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	// Snapshot the completed set before spawning: this pass's goroutines
	// append to completed concurrently with the spawn loop.
	already := make(map[int]bool, len(completed))
	for id := range completed {
		already[id] = true
	}
	done := make(map[int]chan struct{}, len(order))
	for _, n := range order {
		done[n.ID] = make(chan struct{})
		if already[n.ID] {
			close(done[n.ID]) // finished in a previous pass
		}
	}
	sem := make(chan struct{}, e.maxParallel())

	var wg sync.WaitGroup
	for _, n := range order {
		if already[n.ID] {
			continue
		}
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[n.ID])
			// Wait for prerequisites (bottom-up topological execution),
			// bailing out when the query's context is cancelled so a
			// server-side timeout stops in-flight plans.
			for _, d := range n.Deps {
				select {
				case <-done[d]:
				case <-ctx.Done():
					setErr(ctx.Err())
					return
				}
			}
			mu.Lock()
			failed := firstE != nil
			inputs := make([]values.Value, len(n.Inputs))
			for i, ref := range n.Inputs {
				v, ok := vars[ref]
				if !ok {
					failed = true
				}
				inputs[i] = v
			}
			mu.Unlock()
			if failed {
				return
			}
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				setErr(ctx.Err())
				return
			}
			nspan := espan.NewDetached(fmt.Sprintf("node[%d] %s", n.ID, n.Op), obs.KindNode)
			nr, err := e.runNode(ctx, plan, n, inputs, nspan)
			nspan.End()
			<-sem
			if err != nil {
				setErr(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			vars["{"+n.OutVar+"}"] = nr.Value
			completed[n.ID] = nr
			if allowReplan && trig == nil && firstE == nil {
				if t := e.replanCheck(plan, n, nr, completed); t != nil {
					trig = t
					nr.Span.SetAttr("replan_trigger", "true")
					firstE = errReplan
				}
			}
		}()
	}
	wg.Wait()
	if firstE != nil && firstE != errReplan {
		return nil, firstE
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return trig, nil
}

// replanCheck reports whether a finished node's observed cardinality
// deviates from its estimate enough to warrant replanning the remaining
// suffix. It only fires when a direct dependent has not executed yet —
// otherwise the corrected estimate could no longer change anything.
func (e *Executor) replanCheck(plan *core.Plan, n *core.Node, nr *NodeResult, completed map[int]*NodeResult) *replanTrigger {
	est, obsd := n.EstCard, nr.Value.Len()
	if est <= 0 {
		return nil
	}
	if obsd < 1 {
		obsd = 1
	}
	ratio := float64(est) / float64(obsd)
	if obsd > est {
		ratio = float64(obsd) / float64(est)
	}
	if ratio < e.ReplanThreshold {
		return nil
	}
	for _, m := range plan.Nodes {
		if _, did := completed[m.ID]; did {
			continue
		}
		for _, d := range m.Deps {
			if d == n.ID {
				return &replanTrigger{nodeID: n.ID, est: est, obs: obsd}
			}
		}
	}
	return nil
}

func (e *Executor) maxReplans() int {
	if e.MaxReplans < 1 {
		return 1
	}
	return e.MaxReplans
}

func (e *Executor) slots() int {
	if e.Slots < 1 {
		return 4
	}
	return e.Slots
}

func (e *Executor) maxParallel() int {
	if e.MaxParallel < 1 {
		return 8
	}
	return e.MaxParallel
}

// runNode executes one operator, trying the selected physical first and
// falling back to other adequate implementations on failure (the paper's
// plan adjustment during execution).
func (e *Executor) runNode(ctx context.Context, plan *core.Plan, n *core.Node, inputs []values.Value, span *obs.Span) (*NodeResult, error) {
	spec, ok := ops.Get(n.Op)
	if !ok {
		return nil, fmt.Errorf("exec: unknown operator %q", n.Op)
	}
	cands := spec.Adequate(n.Args, inputs)
	if len(cands) == 0 {
		return nil, fmt.Errorf("exec: no adequate implementation for %s(%v)", n.Op, n.Args)
	}
	// Order candidates: the optimizer's choice first, then the rest.
	sort.SliceStable(cands, func(i, j int) bool {
		return (cands[i].Name == n.Phys) && (cands[j].Name != n.Phys)
	})

	inCard := 0
	if len(inputs) > 0 {
		inCard = inputs[0].TotalDocs()
		if inCard == 0 {
			inCard = inputs[0].Len()
		}
	}

	// Scatter execution: the optimizer marked this node for cluster
	// fan-out. Any scatter failure falls through to the ordinary
	// candidate loop below, so a shard error degrades to an unscattered
	// run instead of losing the query.
	if m, okm := n.Args.Int("_scatter"); okm && m > 1 {
		nr, serr := e.runScatter(ctx, n, cands[0], m, inputs, span, inCard)
		if serr == nil {
			return nr, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		span.SetAttr("scatter_fallback", serr.Error())
	}

	var lastErr error
	for i, phys := range cands {
		rec := llm.NewRecorder(e.Worker)
		// When tracing, wrap the recorder so each model invocation
		// attaches an llm span under the node span (calls of failed
		// attempts stay visible: that is the plan adjustment happening).
		var cli llm.Client = rec
		if span != nil {
			cli = llm.NewTraced(rec, span)
		}
		// A fresh budget per candidate: a fallback implementation starts
		// with full headroom, and skips from failed attempts don't leak.
		fb := ops.NewFaultBudget(e.NodeErrorBudget)
		env := &ops.Env{Store: e.Store, Client: cli, BatchSize: e.batch(), Budget: fb, Views: e.Views}
		v, err := phys.Run(ctx, env, n.Args, inputs)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			span.SetAttr("failed_phys", phys.Name)
			continue
		}
		nr := &NodeResult{
			NodeID:      n.ID,
			Op:          n.Op,
			Phys:        phys.Name,
			Value:       v,
			Calls:       rec.Calls(),
			InCard:      inCard,
			Sequential:  sequentialPhys[phys.Name],
			Adjusted:    i > 0,
			SkippedDocs: fb.Skipped(),
			ViewHits:    env.ViewHits(),
			Span:        span,
		}
		work := inCard
		if k, okk := n.Args.Int("_scanK"); okk && strings.HasPrefix(phys.Name, "IndexFilter") {
			work = k
		}
		// View-served judgments never reached the model either: exclude
		// them from the calibration work, like cache-served calls below.
		if work > nr.ViewHits {
			work -= nr.ViewHits
		} else if nr.ViewHits > 0 {
			work = 0
		}
		// Cache-served calls cost zero time and never reached a model:
		// feeding them to the calibrator would drag its per-call mean
		// toward zero. Calibrate on the live calls only, scaling the work
		// to the fraction of items they actually covered.
		live := make([]llm.Call, 0, len(nr.Calls))
		for _, c := range nr.Calls {
			if !c.Cached {
				live = append(live, c)
			}
		}
		if phys.LLMBased {
			if len(live) > 0 {
				lw := work
				if len(live) < len(nr.Calls) {
					lw = work * len(live) / len(nr.Calls)
				}
				e.Calib.RecordLLM(phys.Name, lw, live)
			}
		} else {
			nr.PreDur = e.Calib.PreDuration(phys.Name, work)
			e.Calib.RecordPre(phys.Name, work, nr.PreDur)
		}
		// Annotate the node span: the virtual duration is the operator's
		// busy time on its model instance (its calls run sequentially;
		// cached calls contribute zero).
		var busy time.Duration
		var inTok, outTok, retries int
		for _, c := range nr.Calls {
			busy += c.Dur
			inTok += c.InTokens
			outTok += c.OutTokens
			retries += c.Retries
		}
		nr.Retries = retries
		span.SetVDur(busy + nr.PreDur)
		span.SetAttr("phys", phys.Name)
		span.SetInt("in_card", inCard)
		span.SetInt("out_card", v.Len())
		span.SetInt("llm_calls", len(nr.Calls))
		if nc := len(nr.Calls) - len(live); nc > 0 {
			span.SetInt("cached_calls", nc)
		}
		span.SetInt("in_tokens", inTok)
		span.SetInt("out_tokens", outTok)
		if retries > 0 {
			span.SetInt("retries", retries)
		}
		if nr.Adjusted {
			span.SetAttr("adjusted", "true")
		}
		if nr.SkippedDocs > 0 {
			span.SetInt("skipped_docs", nr.SkippedDocs)
		}
		if nr.ViewHits > 0 {
			span.SetInt("view_hits", nr.ViewHits)
		}
		return nr, nil
	}
	return nil, fmt.Errorf("exec: all implementations of %s failed: %w", n.Op, lastErr)
}

func (e *Executor) batch() int {
	if e.BatchSize < 1 {
		return 16
	}
	return e.BatchSize
}

// batchSpec decomposes one recorded call's duration into the
// continuous-batching cost parts. The parts sum exactly to the call's
// Dur — Base and Decode come from the worker profile, TemplatePrefill
// from the stamped template tokens, and PayloadPrefill absorbs the
// residual (payload prefill plus any folded retry penalties) — so a
// batch of one costs precisely the unbatched duration. Calls without a
// batch key, or whose duration is somehow below the profile floor,
// return nil and never coalesce.
func (e *Executor) batchSpec(c llm.Call) *vtime.BatchSpec {
	if c.BatchKey == "" {
		return nil
	}
	prof := e.Worker.Profile()
	out := c.OutTokens
	if out < 1 {
		out = 1
	}
	decode := time.Duration(out) * prof.PerOutToken
	residual := c.Dur - prof.Base - decode
	if residual < 0 {
		return nil
	}
	tmpl := time.Duration(float64(c.TemplateTokens) * llm.PrefillTokenFactor * float64(prof.PerOutToken))
	if tmpl > residual {
		tmpl = residual
	}
	return &vtime.BatchSpec{
		Key:             c.BatchKey,
		Base:            prof.Base,
		Decode:          decode,
		TemplatePrefill: tmpl,
		PayloadPrefill:  residual - tmpl,
		PayloadKey:      c.PayloadKey,
	}
}

// tasks converts observed node executions into the vtime task graph.
// Unscattered operators run on the query's home machine; a scattered
// node expands into one task per shard (shard s on machine s's slots)
// plus a merge task on the home machine gated on every shard.
func (e *Executor) tasks(plan *core.Plan, nodes []NodeResult, home, machines int) []vtime.Task {
	if machines < 1 {
		machines = 1
	}
	homeRes := vtime.MachineResource(home % machines)
	byID := map[int]NodeResult{}
	for _, nr := range nodes {
		byID[nr.NodeID] = nr
	}
	var tasks []vtime.Task
	for _, n := range plan.Nodes {
		nr := byID[n.ID]
		deps := make([]string, len(n.Deps))
		for i, d := range n.Deps {
			deps[i] = fmt.Sprintf("n%d", d)
		}
		if len(nr.ShardCalls) > 0 {
			// Scatter: each shard's call stream is its own sequential task
			// on the shard's machine; the merge joins them back on the home
			// machine (its calls are the combine overhead the optimizer
			// costed).
			shardIDs := make([]string, 0, len(nr.ShardCalls))
			for s, calls := range nr.ShardCalls {
				var su []vtime.Unit
				for _, c := range calls {
					if c.Cached {
						continue
					}
					su = append(su, vtime.Unit{Dur: c.Dur, Resource: vtime.MachineResource(s % machines), Batch: e.batchSpec(c)})
				}
				id := fmt.Sprintf("n%d.s%d", n.ID, s)
				shardIDs = append(shardIDs, id)
				tasks = append(tasks, vtime.Task{ID: id, Deps: deps, Units: su, Sequential: true})
			}
			var mu []vtime.Unit
			for _, c := range nr.MergeCalls {
				if c.Cached {
					continue
				}
				mu = append(mu, vtime.Unit{Dur: c.Dur, Resource: homeRes})
			}
			if nr.PreDur > 0 || len(mu) == 0 {
				mu = append(mu, vtime.Unit{Dur: nr.PreDur})
			}
			tasks = append(tasks, vtime.Task{
				ID:         fmt.Sprintf("n%d", n.ID),
				Deps:       shardIDs,
				Units:      mu,
				Sequential: true,
			})
			continue
		}
		var units []vtime.Unit
		for _, c := range nr.Calls {
			if c.Cached {
				// Cache-served calls bypass the slot pool entirely: no
				// unit, no makespan or SlotBusy contribution.
				continue
			}
			units = append(units, vtime.Unit{Dur: c.Dur, Resource: homeRes, Batch: e.batchSpec(c)})
		}
		if nr.PreDur > 0 || len(units) == 0 {
			units = append(units, vtime.Unit{Dur: nr.PreDur})
		}
		// An operator executes on a single model instance: its calls
		// form a sequential stream (the paper parallelizes ACROSS its 4
		// Llama instances, one operator per instance).
		tasks = append(tasks, vtime.Task{
			ID:         fmt.Sprintf("n%d", n.ID),
			Deps:       deps,
			Units:      units,
			Sequential: true,
		})
	}
	return tasks
}
