package exec

import (
	"context"
	"fmt"
	"time"

	"unify/internal/check"
	"unify/internal/core"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/values"
)

// mergeExact classifies the scatter merges the executor knows how to
// perform: true means the merge is pure computation whose output
// accounts for exactly the per-shard partials (filter concat, count/sum
// addition, max/min extreme); false marks combiners (top-k) whose merge
// re-ranks the union and may shrink it. Physicals absent from this map
// must never be scattered.
var mergeExact = map[string]bool{
	"SemanticFilter": true,
	"SemanticCount":  true,
	"SemanticSum":    true,
	"SemanticMax":    true,
	"SemanticMin":    true,
	"SemanticTopK":   false,
}

// runScatter executes one optimizer-marked node as a scatter/merge over
// the corpus shards: the document input splits by shard, each slice runs
// the chosen physical against its shard's machine, and the partials
// merge deterministically (the scheduler places shard s's calls on
// machine s; see Executor.tasks). Any error aborts the whole scatter —
// the caller falls back to ordinary unscattered execution, so scatter
// never costs an answer.
func (e *Executor) runScatter(ctx context.Context, n *core.Node, phys *ops.Physical, m int,
	inputs []values.Value, span *obs.Span, inCard int) (*NodeResult, error) {

	sh := e.Sharding
	if sh == nil || sh.N != m {
		return nil, fmt.Errorf("exec: no sharding of width %d", m)
	}
	if phys.Name != n.Phys {
		return nil, fmt.Errorf("exec: scatter wants %q but %q leads", n.Phys, phys.Name)
	}
	if _, ok := mergeExact[phys.Name]; !ok || !phys.LLMBased {
		return nil, fmt.Errorf("exec: %q has no scatter merge", phys.Name)
	}
	if len(inputs) == 0 || inputs[0].Kind != values.Docs || len(inputs[0].DocIDs) == 0 {
		return nil, fmt.Errorf("exec: scatter needs a non-empty document input")
	}

	shards := sh.Split(inputs[0].DocIDs)
	// One fault budget for the whole node: shard failures degrade exactly
	// like batch failures of the unscattered run.
	fb := ops.NewFaultBudget(e.NodeErrorBudget)
	shardCalls := make([][]llm.Call, m)
	partials := make([]values.Value, m)
	ran := make([]bool, m)
	var all []llm.Call
	viewHits := 0
	for s, ids := range shards {
		if len(ids) == 0 {
			continue // empty shard: identity partial
		}
		rec := llm.NewRecorder(e.Worker)
		var cli llm.Client = rec
		if span != nil {
			cli = llm.NewTraced(rec, span)
		}
		env := &ops.Env{Store: e.Store, Client: cli, BatchSize: e.batch(), Budget: fb, Views: e.Views}
		sin := make([]values.Value, len(inputs))
		copy(sin, inputs)
		sin[0] = values.NewDocs(ids)
		v, err := phys.Run(ctx, env, n.Args, sin)
		if err != nil {
			return nil, fmt.Errorf("exec: shard %d: %w", s, err)
		}
		viewHits += env.ViewHits()
		partials[s] = v
		ran[s] = true
		shardCalls[s] = rec.Calls()
		all = append(all, shardCalls[s]...)
	}

	merged, mergeCalls, perShard, mergedCount, err := e.mergeShards(ctx, n, phys, span, inputs[0].DocIDs, shards, partials, ran, fb)
	if err != nil {
		return nil, err
	}
	all = append(all, mergeCalls...)
	if e.StrictChecks {
		vs := check.ShardComplete(phys.Name, m, perShard, mergedCount, mergeExact[phys.Name])
		if err := check.Fail("exec: scatter "+phys.Name, vs, span); err != nil {
			return nil, err
		}
	}

	nr := &NodeResult{
		NodeID:      n.ID,
		Op:          n.Op,
		Phys:        phys.Name,
		Value:       merged,
		Calls:       all,
		InCard:      inCard,
		SkippedDocs: fb.Skipped(),
		ViewHits:    viewHits,
		ShardCalls:  shardCalls,
		MergeCalls:  mergeCalls,
		Span:        span,
	}
	live := make([]llm.Call, 0, len(all))
	for _, c := range all {
		if !c.Cached {
			live = append(live, c)
		}
	}
	// View-served judgments shrink the calibration work like cache hits.
	calWork := inCard
	if calWork > viewHits {
		calWork -= viewHits
	} else if viewHits > 0 {
		calWork = 0
	}
	if len(live) > 0 {
		lw := calWork
		if len(live) < len(all) {
			lw = calWork * len(live) / len(all)
		}
		e.Calib.RecordLLM(phys.Name, lw, live)
	}
	var busy time.Duration
	var inTok, outTok, retries int
	for _, c := range all {
		busy += c.Dur
		inTok += c.InTokens
		outTok += c.OutTokens
		retries += c.Retries
	}
	nr.Retries = retries
	span.SetVDur(busy)
	span.SetAttr("phys", phys.Name)
	span.SetInt("scatter", m)
	span.SetInt("in_card", inCard)
	span.SetInt("out_card", merged.Len())
	span.SetInt("llm_calls", len(all))
	if nc := len(all) - len(live); nc > 0 {
		span.SetInt("cached_calls", nc)
	}
	span.SetInt("in_tokens", inTok)
	span.SetInt("out_tokens", outTok)
	if retries > 0 {
		span.SetInt("retries", retries)
	}
	if nr.SkippedDocs > 0 {
		span.SetInt("skipped_docs", nr.SkippedDocs)
	}
	if nr.ViewHits > 0 {
		span.SetInt("view_hits", nr.ViewHits)
	}
	return nr, nil
}

// mergeShards reduces per-shard partials to the node's value. Merges are
// deterministic: filters restore the original input order, aggregates
// reduce with exact arithmetic, and top-k re-runs the operator over the
// per-shard winners (in shard order) on the home machine. It returns the
// merged value, the merge step's own model calls, the per-shard counts
// and merged count for the cluster.shard_complete invariant.
func (e *Executor) mergeShards(ctx context.Context, n *core.Node, phys *ops.Physical, span *obs.Span,
	docIDs []int, shards [][]int, partials []values.Value, ran []bool, fb *ops.FaultBudget) (values.Value, []llm.Call, []int, int, error) {

	perShard := make([]int, len(shards))
	switch phys.Name {
	case "SemanticFilter":
		kept := make(map[int]bool)
		for s, v := range partials {
			if !ran[s] {
				continue
			}
			perShard[s] = len(v.DocIDs)
			for _, id := range v.DocIDs {
				kept[id] = true
			}
		}
		out := make([]int, 0, len(kept))
		for _, id := range docIDs {
			if kept[id] {
				out = append(out, id)
			}
		}
		return values.NewDocs(out), nil, perShard, len(out), nil

	case "SemanticCount", "SemanticSum":
		var total float64
		count := 0
		for s, v := range partials {
			if !ran[s] {
				continue
			}
			total += v.NumVal
			if phys.Name == "SemanticCount" {
				perShard[s] = int(v.NumVal)
			} else {
				perShard[s] = len(shards[s])
			}
		}
		if phys.Name == "SemanticCount" {
			count = int(total)
		} else {
			count = 0
			for s := range shards {
				count += perShard[s]
			}
		}
		return values.NewNum(total), nil, perShard, count, nil

	case "SemanticMax", "SemanticMin":
		first := true
		var best float64
		for s, v := range partials {
			if !ran[s] {
				continue
			}
			perShard[s] = len(shards[s])
			if first || (phys.Name == "SemanticMax" && v.NumVal > best) || (phys.Name == "SemanticMin" && v.NumVal < best) {
				best = v.NumVal
				first = false
			}
		}
		if first {
			return values.Value{}, nil, nil, 0, fmt.Errorf("exec: %s scatter produced no partials", phys.Name)
		}
		count := 0
		for s := range shards {
			count += perShard[s]
		}
		return values.NewNum(best), nil, perShard, count, nil

	case "SemanticTopK":
		var union []int
		for s, v := range partials {
			if !ran[s] {
				continue
			}
			perShard[s] = len(v.DocIDs)
			union = append(union, v.DocIDs...)
		}
		if len(union) == 0 {
			return values.Value{}, nil, nil, 0, fmt.Errorf("exec: top-k scatter produced no candidates")
		}
		rec := llm.NewRecorder(e.Worker)
		var cli llm.Client = rec
		if span != nil {
			cli = llm.NewTraced(rec, span)
		}
		env := &ops.Env{Store: e.Store, Client: cli, BatchSize: e.batch(), Budget: fb, Views: e.Views}
		v, err := phys.Run(ctx, env, n.Args, []values.Value{values.NewDocs(union)})
		if err != nil {
			return values.Value{}, nil, nil, 0, fmt.Errorf("exec: top-k combine: %w", err)
		}
		return v, rec.Calls(), perShard, len(v.DocIDs), nil
	}
	return values.Value{}, nil, nil, 0, fmt.Errorf("exec: %q has no scatter merge", phys.Name)
}
