package exec

import (
	"context"
	"strconv"
	"testing"

	"unify/internal/faults"
)

// TestErrorBudgetDegradesGracefully: with per-batch faults injected and a
// node error budget, the filter skips the failed chunks, reports them,
// and the plan still completes with a partial answer.
func TestErrorBudgetDegradesGracefully(t *testing.T) {
	e, _ := setup(t, 300)
	clean, err := e.Run(context.Background(), countPlan("related to injury"))
	if err != nil {
		t.Fatal(err)
	}
	cleanCount, _ := strconv.Atoi(clean.Answer.String())

	// Fault half the filter batches; without retries the budget is the
	// only defense.
	e2, _ := setup(t, 300)
	e2.Worker = faults.New(e2.Worker, faults.Uniform(faults.Transient, 0.5, 5, "filter_batch"), nil)
	e2.NodeErrorBudget = 32
	res, err := e2.Run(context.Background(), countPlan("related to injury"))
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedDocs == 0 {
		t.Fatal("no documents skipped despite 50% batch faults")
	}
	if res.Nodes[0].SkippedDocs != res.SkippedDocs {
		t.Errorf("node/result skip accounting disagree: %d vs %d",
			res.Nodes[0].SkippedDocs, res.SkippedDocs)
	}
	got, err := strconv.Atoi(res.Answer.String())
	if err != nil {
		t.Fatalf("answer %q", res.Answer.String())
	}
	if got > cleanCount {
		t.Errorf("partial count %d exceeds clean count %d", got, cleanCount)
	}
}

// TestNoBudgetFailsFast: without a budget the same fault rate must
// surface an error (after exhausting fallback implementations) or
// complete only if a pre-programmed fallback absorbed the node.
func TestNoBudgetFailsFast(t *testing.T) {
	e, _ := setup(t, 200)
	e.Worker = faults.New(e.Worker, faults.Uniform(faults.Transient, 1, 5, "filter_batch", "filter_doc", "filter_label"), nil)
	res, err := e.Run(context.Background(), countPlan("related to injury"))
	if err == nil && !res.Adjusted {
		t.Error("plan survived total LLM failure without adjustment or error")
	}
}
