package exec

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"unify/internal/core"
	"unify/internal/corpus"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/values"
)

func setup(t *testing.T, n int) (*Executor, *corpus.Dataset) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	return New(store, llm.NewSim(cfg), cost.NewCalibrator(16)), ds
}

func countPlan(cond string) *core.Plan {
	return &core.Plan{Query: "count", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": cond},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Count", Phys: "PreCount",
			Args:   ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}},
	}}
}

func TestRunCountPlan(t *testing.T) {
	e, ds := setup(t, 300)
	res, err := e.Run(context.Background(), countPlan("related to injury"))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range ds.Docs {
		if d.Hidden.Aspect == "injury" {
			want++
		}
	}
	got, err := strconv.Atoi(res.Answer.String())
	if err != nil || got != want {
		t.Errorf("answer %q, want %d", res.Answer.String(), want)
	}
	if res.Makespan <= 0 || res.LLMCalls == 0 {
		t.Errorf("accounting missing: %+v", res)
	}
	if res.Serial < res.Makespan {
		t.Errorf("serial (%v) below DAG makespan (%v)", res.Serial, res.Makespan)
	}
}

// TestParallelBranchesOverlap: two independent filters must overlap in
// DAG mode (makespan < serial).
func TestParallelBranchesOverlap(t *testing.T) {
	e, _ := setup(t, 400)
	plan := &core.Plan{Query: "compare", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to injury"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to training"},
			Inputs: []string{"dataset"}, OutVar: "v2"},
		{ID: 2, Op: "Count", Phys: "PreCount", Args: ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v3", Deps: []int{0}},
		{ID: 3, Op: "Count", Phys: "PreCount", Args: ops.Args{"Entity": "{v2}"},
			Inputs: []string{"{v2}"}, OutVar: "v4", Deps: []int{1}},
		{ID: 4, Op: "Compare", Phys: "NumericCompare",
			Args:   ops.Args{"Entity": "{v3}", "Entity2": "{v4}"},
			Inputs: []string{"{v3}", "{v4}"}, OutVar: "v5", Deps: []int{2, 3}},
	}}
	res, err := e.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != values.Str {
		t.Fatalf("answer kind %v", res.Answer.Kind)
	}
	if float64(res.Makespan) > 0.75*float64(res.Serial) {
		t.Errorf("independent branches did not overlap: makespan %v vs serial %v", res.Makespan, res.Serial)
	}
}

// TestPlanAdjustmentFallsBackToAnotherPhysical: an impossible physical
// choice must be repaired at run time.
func TestPlanAdjustment(t *testing.T) {
	e, _ := setup(t, 150)
	plan := countPlan("related to injury")
	plan.Nodes[0].Phys = "NoSuchImplementation"
	res, err := e.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Nodes[0].Adjusted && res.Nodes[0].Phys == "NoSuchImplementation" {
		t.Error("executor did not adjust the broken physical choice")
	}
}

func TestCalibratorFed(t *testing.T) {
	e, _ := setup(t, 200)
	if _, err := e.Run(context.Background(), countPlan("related to golf")); err != nil {
		t.Fatal(err)
	}
	// After one execution the calibrator must have history for the
	// semantic filter.
	est := e.Calib.EstimateLLM("SemanticFilter", 100)
	prior := cost.NewCalibrator(16).EstimateLLM("SemanticFilter", 100)
	if est == prior {
		t.Log("estimate equals prior; acceptable but unexpected after calibration")
	}
	if est <= 0 {
		t.Error("calibrated estimate not positive")
	}
}

func TestEmptyPlan(t *testing.T) {
	e, _ := setup(t, 50)
	if _, err := e.Run(context.Background(), &core.Plan{Query: "empty"}); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestMissingVariable(t *testing.T) {
	e, _ := setup(t, 50)
	plan := &core.Plan{Query: "broken", Nodes: []*core.Node{
		{ID: 0, Op: "Count", Phys: "PreCount",
			Args:   ops.Args{"Entity": "{v9}"},
			Inputs: []string{"{v9}"}, OutVar: "v1"},
	}}
	if _, err := e.Run(context.Background(), plan); err == nil {
		t.Error("unbound variable accepted")
	}
}

func TestDeterministicExecution(t *testing.T) {
	e, _ := setup(t, 200)
	r1, err1 := e.Run(context.Background(), countPlan("related to tennis"))
	r2, err2 := e.Run(context.Background(), countPlan("related to tennis"))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Answer.String() != r2.Answer.String() || r1.Makespan != r2.Makespan {
		t.Error("execution not deterministic")
	}
}

// TestSpanAccountingConsistent: with tracing enabled, the executor must
// attach one span per plan node, and the per-node virtual durations must
// sum to exactly the Serial (fully sequential) latency while bounding the
// DAG makespan from above.
func TestSpanAccountingConsistent(t *testing.T) {
	e, _ := setup(t, 300)
	espan := obs.NewTracer().Start("execute", obs.KindPhase)
	ctx := obs.WithSpan(context.Background(), espan)
	plan := &core.Plan{Query: "compare", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to injury"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to training"},
			Inputs: []string{"dataset"}, OutVar: "v2"},
		{ID: 2, Op: "Count", Phys: "PreCount", Args: ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v3", Deps: []int{0}},
		{ID: 3, Op: "Count", Phys: "PreCount", Args: ops.Args{"Entity": "{v2}"},
			Inputs: []string{"{v2}"}, OutVar: "v4", Deps: []int{1}},
		{ID: 4, Op: "Compare", Phys: "NumericCompare",
			Args:   ops.Args{"Entity": "{v3}", "Entity2": "{v4}"},
			Inputs: []string{"{v3}", "{v4}"}, OutVar: "v5", Deps: []int{2, 3}},
	}}
	res, err := e.Run(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	children := espan.Children()
	if len(children) != len(plan.Nodes) {
		t.Fatalf("%d node spans, want %d", len(children), len(plan.Nodes))
	}
	var sum time.Duration
	for i, c := range children {
		// Spans are adopted in deterministic plan order.
		if want := plan.Nodes[i].Op; !strings.Contains(c.Name, want) {
			t.Errorf("span %d = %q, want op %q", i, c.Name, want)
		}
		if c.Attr("finish_vtime") == "" {
			t.Errorf("span %q missing finish_vtime", c.Name)
		}
		if c.Attr("llm_calls") == "" || c.Attr("in_card") == "" || c.Attr("out_card") == "" {
			t.Errorf("span %q missing accounting attrs: %v", c.Name, c.Attrs())
		}
		sum += c.VDur()
	}
	if sum != res.Serial {
		t.Errorf("node span vtimes sum to %v, Serial accounting says %v", sum, res.Serial)
	}
	if res.Makespan > res.Serial {
		t.Errorf("makespan %v exceeds serial %v", res.Makespan, res.Serial)
	}
	if res.SlotBusy <= 0 || res.SlotBusy > res.Serial {
		t.Errorf("slot busy %v outside (0, %v]", res.SlotBusy, res.Serial)
	}
}

// blockingClient models a stuck LLM backend that only returns when the
// call's context is cancelled.
type blockingClient struct{}

func (blockingClient) Complete(ctx context.Context, prompt string) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

func (blockingClient) Profile() llm.Profile { return llm.WorkerProfile() }

// TestContextCancellation: a server-side timeout must stop in-flight
// plans — goroutines waiting on dependency channels or on a slot must
// observe ctx.Done() and Run must return ctx.Err().
func TestContextCancellation(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 100)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	e := New(store, blockingClient{}, cost.NewCalibrator(16))
	e.MaxParallel = 1 // force the second branch to wait on the slot
	plan := &core.Plan{Query: "cancel", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to injury"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Filter", Phys: "SemanticFilter",
			Args:   ops.Args{"Entity": "questions", "Condition": "related to training"},
			Inputs: []string{"dataset"}, OutVar: "v2"},
		{ID: 2, Op: "Compare", Phys: "NumericCompare",
			Args:   ops.Args{"Entity": "{v1}", "Entity2": "{v2}"},
			Inputs: []string{"{v1}", "{v2}"}, OutVar: "v3", Deps: []int{0, 1}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Run(ctx, plan)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("run did not stop promptly after cancellation (%v)", elapsed)
	}
}

// TestSequentialPhysicalSerialized: SemanticArgMax's comparison chain
// cannot parallelize, so its calls extend the makespan linearly.
func TestSequentialPhysicalSerialized(t *testing.T) {
	e, _ := setup(t, 150)
	plan := &core.Plan{Query: "argmax", Nodes: []*core.Node{
		{ID: 0, Op: "GroupBy", Phys: "SemanticGroupBy",
			Args:   ops.Args{"Entity": "questions", "Attribute": "sport"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Count", Phys: "PreCount", Args: ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}},
		{ID: 2, Op: "Max", Phys: "SemanticArgMax", Args: ops.Args{"Entity": "{v2}"},
			Inputs: []string{"{v2}"}, OutVar: "v3", Deps: []int{1}},
	}}
	res, err := e.Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != values.Str || res.Answer.StrVal == "" {
		t.Errorf("argmax answer %v", res.Answer)
	}
	var argmax NodeResult
	for _, nr := range res.Nodes {
		if nr.NodeID == 2 {
			argmax = nr
		}
	}
	if !argmax.Sequential {
		t.Error("SemanticArgMax not marked sequential")
	}
	if len(argmax.Calls) == 0 {
		t.Error("argmax issued no comparison calls")
	}
}
