package usql

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"unify/internal/core"
)

var update = flag.Bool("update", false, "rewrite golden files from current parser/compiler output")

// readQueries loads one query per line from a testdata corpus file,
// skipping blanks and # comments.
func readQueries(t *testing.T, name string) []string {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

type validGolden struct {
	Query     string     `json:"query"`
	Canonical string     `json:"canonical"`
	Plan      *core.Plan `json:"plan"`
}

type invalidGolden struct {
	Query string `json:"query"`
	Error string `json:"error"`
}

func goldenCompare[T any](t *testing.T, file string, got []T) {
	t.Helper()
	path := filepath.Join("testdata", file)
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')
	if *update {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if string(want) != string(raw) {
		t.Errorf("%s is stale: parser/compiler output changed (rerun with -update and review the diff)", path)
		// Pinpoint the first diverging entry for a readable failure.
		var old []json.RawMessage
		if json.Unmarshal(want, &old) == nil {
			var cur []json.RawMessage
			_ = json.Unmarshal(raw, &cur)
			for i := range got {
				if i >= len(old) || i >= len(cur) || string(old[i]) != string(cur[i]) {
					t.Errorf("first divergence at entry %d:\n  golden: %s\n  got:    %s",
						i, entryOrMissing(old, i), entryOrMissing(cur, i))
					break
				}
			}
		}
	}
}

func entryOrMissing(entries []json.RawMessage, i int) string {
	if i >= len(entries) {
		return "<missing>"
	}
	return string(entries[i])
}

// TestGoldenValid pins, for every valid corpus query, both the canonical
// printed form and the exact logical plan JSON the compiler emits. Any
// change to node shapes breaks usql_vs_nl equivalence with the planner
// route, so changes here should be deliberate and reviewed.
func TestGoldenValid(t *testing.T) {
	queries := readQueries(t, "valid_queries.txt")
	if len(queries) < 15 {
		t.Fatalf("valid corpus has only %d queries; keep it broad", len(queries))
	}
	got := make([]validGolden, 0, len(queries))
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("valid corpus query failed to parse: %q: %v", src, err)
		}
		plan, err := Compile(q, testEnv)
		if err != nil {
			t.Fatalf("valid corpus query failed to compile: %q: %v", src, err)
		}
		canon := q.String()
		if plan.Query != canon {
			t.Errorf("plan.Query %q != canonical %q", plan.Query, canon)
		}
		got = append(got, validGolden{Query: src, Canonical: canon, Plan: plan})
	}
	goldenCompare(t, "valid_golden.json", got)
}

// TestGoldenInvalid pins the error message — including the byte
// position in the usql:<pos>: prefix — for every invalid corpus query.
func TestGoldenInvalid(t *testing.T) {
	queries := readQueries(t, "invalid_queries.txt")
	if len(queries) < 15 {
		t.Fatalf("invalid corpus has only %d queries; keep it broad", len(queries))
	}
	got := make([]invalidGolden, 0, len(queries))
	for _, src := range queries {
		var msg string
		q, err := Parse(src)
		if err == nil {
			_, err = Compile(q, testEnv)
		}
		if err == nil {
			t.Fatalf("invalid corpus query was accepted: %q", src)
		}
		if _, ok := err.(*Error); !ok {
			t.Fatalf("invalid corpus query %q returned %T, want *Error", src, err)
		}
		msg = err.Error()
		got = append(got, invalidGolden{Query: src, Error: msg})
	}
	goldenCompare(t, "invalid_golden.json", got)
}
