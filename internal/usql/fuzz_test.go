package usql

import (
	"testing"
)

// FuzzUSQLParse asserts two properties over arbitrary input:
//
//  1. the parser never panics — all rejections are *Error values with a
//     byte position inside the input;
//  2. parse→print→parse is a fixpoint: the canonical printed form of an
//     accepted query reparses to the same canonical form, so plan-cache
//     keys built from it are stable.
func FuzzUSQLParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(*) FROM sports WHERE 'related to baseball' AND views > 140",
		"SELECT AVG(score) FROM sports WHERE 'related to equipment'",
		"SELECT PERCENTILE(views, 90) FROM sports WHERE \"related to baseball\"",
		"SELECT * FROM sports WHERE year BETWEEN 2013 AND 2015 ORDER BY views DESC LIMIT 3",
		"SELECT title FROM sports WHERE 'related to baseball' ORDER BY score DESC LIMIT 1",
		"SELECT sport FROM sports WHERE upvotes >= 4 GROUP BY sport ORDER BY COUNT(*) DESC LIMIT 1",
		"select median(views) from sports where year = 2015",
		"SELECT",
		"SELECT COUNT(*) FROM sports WHERE 'unterminated",
		"SELECT COUNT(*) FROM sports WHERE views ~ 3",
		"How many questions mention baseball?",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			perr, ok := err.(*Error)
			if !ok {
				t.Fatalf("Parse(%q) returned %T, want *Error", src, err)
			}
			if perr.Pos < 0 || perr.Pos > len(src) {
				t.Fatalf("Parse(%q) error position %d outside [0,%d]", src, perr.Pos, len(src))
			}
			return
		}
		c1 := q.String()
		q2, err := Parse(c1)
		if err != nil {
			t.Fatalf("canonical form of %q does not reparse: %q: %v", src, c1, err)
		}
		if c2 := q2.String(); c1 != c2 {
			t.Fatalf("parse-print-parse not a fixpoint for %q:\n c1 %q\n c2 %q", src, c1, c2)
		}
	})
}
