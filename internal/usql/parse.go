package usql

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the parsed AST of one USQL statement.
type Query struct {
	Select   Select
	From     string
	FromPos  int
	Where    []Pred
	GroupBy  string // lowercased group column; "" when absent
	OrderBy  *OrderBy
	Limit    int // -1 when absent
	LimitPos int
	End      int // length of the source text, for missing-clause errors
}

// Select is the SELECT item. Exactly one of Star, Column, Agg is set.
type Select struct {
	Pos    int
	Star   bool
	Column string // bare column, lowercased ("title" or the group column)
	Agg    *Agg
}

// Agg is an aggregate select item.
type Agg struct {
	Fn    string // canonical upper-case: COUNT AVG SUM MAX MIN MEDIAN PERCENTILE
	Field string // lowercased argument field; "*" for COUNT(*)
	P     int    // percentile rank, PERCENTILE only
}

// OrderBy is the ORDER BY clause.
type OrderBy struct {
	Pos       int
	CountStar bool   // ORDER BY COUNT(*)
	Field     string // lowercased sort field when not CountStar
	Desc      bool
}

// Pred is one WHERE predicate, joined to its neighbors by AND.
type Pred interface{ pos() int }

// Sem is a quoted natural-language predicate, evaluated semantically.
type Sem struct {
	Pos  int
	Text string
}

// Cmp is a structured comparison over a typed field.
type Cmp struct {
	Pos   int
	Field string // lowercased surface word as written (views, upvotes, ...)
	Op    string // > >= < <= = !=
	Value int
}

// Range is `field BETWEEN lo AND hi`.
type Range struct {
	Pos    int
	Field  string
	Lo, Hi int
}

func (p Sem) pos() int   { return p.Pos }
func (p Cmp) pos() int   { return p.Pos }
func (p Range) pos() int { return p.Pos }

// aggFns is the aggregate function vocabulary.
var aggFns = map[string]bool{
	"COUNT": true, "AVG": true, "SUM": true, "MAX": true,
	"MIN": true, "MEDIAN": true, "PERCENTILE": true,
}

// Parse parses one USQL statement. Errors are always *Error values
// carrying the byte offset of the offending token.
func Parse(src string) (*Query, error) {
	p := &parser{sc: &scanner{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseQuery()
}

type parser struct {
	sc  *scanner
	tok token
}

func (p *parser) advance() error {
	t, err := p.sc.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// kw reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) kw(word string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, word)
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return errf(p.tok.pos, "expected %s, got %s", word, describe(p.tok))
	}
	return p.advance()
}

func (p *parser) expectPunct(ch string) error {
	if p.tok.kind != tokPunct || p.tok.text != ch {
		return errf(p.tok.pos, "expected %q, got %s", ch, describe(p.tok))
	}
	return p.advance()
}

// number consumes a number token, rejecting values that overflow int.
func (p *parser) number(what string) (int, error) {
	if p.tok.kind != tokNumber {
		return 0, errf(p.tok.pos, "expected %s, got %s", what, describe(p.tok))
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return 0, errf(p.tok.pos, "number %q out of range", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return 0, err
	}
	return n, nil
}

// ident consumes an identifier token and returns it verbatim.
func (p *parser) ident(what string) (token, error) {
	if p.tok.kind != tokIdent {
		return token{}, errf(p.tok.pos, "expected %s, got %s", what, describe(p.tok))
	}
	t := p.tok
	return t, p.advance()
}

func describe(t token) string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%s %q", t.kind, t.text)
}

func (p *parser) parseQuery() (*Query, error) {
	if !p.kw("SELECT") {
		return nil, errf(p.tok.pos, "expected SELECT, got %s", describe(p.tok))
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q.Select = sel
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	q.FromPos = p.tok.pos
	from, err := p.ident("dataset name")
	if err != nil {
		return nil, err
	}
	q.From = from.text
	if p.kw("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.kw("AND") {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.kw("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident("group column")
		if err != nil {
			return nil, err
		}
		q.GroupBy = strings.ToLower(col.text)
	}
	if p.kw("ORDER") {
		ob := &OrderBy{Pos: p.tok.pos}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		if p.kw("COUNT") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if err := p.expectPunct("*"); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			ob.CountStar = true
		} else {
			f, err := p.ident("sort field")
			if err != nil {
				return nil, err
			}
			ob.Field = strings.ToLower(f.text)
		}
		if p.kw("DESC") {
			ob.Desc = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.kw("ASC") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		q.OrderBy = ob
	}
	if p.kw("LIMIT") {
		q.LimitPos = p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		pos := p.tok.pos
		n, err := p.number("limit count")
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, errf(pos, "LIMIT must be at least 1")
		}
		q.Limit = n
	}
	if p.tok.kind != tokEOF {
		return nil, errf(p.tok.pos, "unexpected %s after end of query", describe(p.tok))
	}
	q.End = len(p.sc.src)
	return q, nil
}

func (p *parser) parseSelect() (Select, error) {
	sel := Select{Pos: p.tok.pos}
	switch {
	case p.tok.kind == tokPunct && p.tok.text == "*":
		sel.Star = true
		return sel, p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok
		if err := p.advance(); err != nil {
			return sel, err
		}
		if !(p.tok.kind == tokPunct && p.tok.text == "(") {
			sel.Column = strings.ToLower(name.text)
			return sel, nil
		}
		fn := strings.ToUpper(name.text)
		if !aggFns[fn] {
			return sel, errf(name.pos, "unknown aggregate function %q", name.text)
		}
		if err := p.advance(); err != nil {
			return sel, err
		}
		agg := &Agg{Fn: fn}
		if fn == "COUNT" {
			if err := p.expectPunct("*"); err != nil {
				return sel, err
			}
			agg.Field = "*"
		} else {
			f, err := p.ident("field name")
			if err != nil {
				return sel, err
			}
			agg.Field = strings.ToLower(f.text)
			if fn == "PERCENTILE" {
				if err := p.expectPunct(","); err != nil {
					return sel, err
				}
				pos := p.tok.pos
				rank, err := p.number("percentile rank")
				if err != nil {
					return sel, err
				}
				if rank < 1 || rank > 99 {
					return sel, errf(pos, "percentile rank must be between 1 and 99")
				}
				agg.P = rank
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return sel, err
		}
		sel.Agg = agg
		return sel, nil
	default:
		return sel, errf(p.tok.pos, "expected select list, got %s", describe(p.tok))
	}
}

func (p *parser) parsePred() (Pred, error) {
	switch p.tok.kind {
	case tokString:
		pred := Sem{Pos: p.tok.pos, Text: p.tok.text}
		return pred, p.advance()
	case tokIdent:
		field := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		name := strings.ToLower(field.text)
		if p.kw("BETWEEN") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			lo, err := p.number("range start")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.number("range end")
			if err != nil {
				return nil, err
			}
			return Range{Pos: field.pos, Field: name, Lo: lo, Hi: hi}, nil
		}
		if p.tok.kind != tokOp {
			return nil, errf(p.tok.pos, "expected comparison operator or BETWEEN after %q, got %s", field.text, describe(p.tok))
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := p.number("comparison value")
		if err != nil {
			return nil, err
		}
		return Cmp{Pos: field.pos, Field: name, Op: op, Value: v}, nil
	default:
		return nil, errf(p.tok.pos, "expected predicate, got %s", describe(p.tok))
	}
}
