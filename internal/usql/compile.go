package usql

import (
	"fmt"
	"strings"

	"unify/internal/core"
	"unify/internal/ops"
)

// Env is the compilation environment: the dataset the system serves and
// its entity word, which seeds the first node's Entity binding exactly
// as the LLM planner's rewrites do.
type Env struct {
	Dataset string // dataset name the FROM clause must match
	Entity  string // corpus entity word ("questions", "articles")
}

// fieldCanon maps the typed-field surface vocabulary to the canonical
// document fields, mirroring internal/nlcond: the views group and the
// score group (upvotes/points are score synonyms), plus year for the
// posted-date predicates.
var fieldCanon = map[string]string{
	"view": "views", "views": "views",
	"upvote": "score", "upvotes": "score",
	"point": "score", "points": "score",
	"score": "score",
}

// Compile lowers a parsed query onto the core logical DAG, emitting the
// same node conventions (operator names, logical representations, Args
// bindings, variable wiring) the LLM planner produces so the shared
// optimizer lowers both routes to identical physical plans. Errors are
// *Error values anchored to the clause that cannot be compiled.
func Compile(q *Query, env Env) (*core.Plan, error) {
	if !strings.EqualFold(q.From, env.Dataset) {
		return nil, errf(q.FromPos, "unknown dataset %q (this system serves %q)", q.From, env.Dataset)
	}
	c := &compiler{env: env}
	if q.GroupBy != "" {
		if err := c.compileGroupBy(q); err != nil {
			return nil, err
		}
	} else if err := c.compileSimple(q); err != nil {
		return nil, err
	}
	return &core.Plan{Query: q.String(), Nodes: c.nodes}, nil
}

type compiler struct {
	env   Env
	nodes []*core.Node
}

// cur is the variable produced by the last node, as consumed by the
// next one ("dataset" before any node exists).
func (c *compiler) cur() string {
	if len(c.nodes) == 0 {
		return "dataset"
	}
	return "{" + c.nodes[len(c.nodes)-1].OutVar + "}"
}

// curEntity is the Entity binding for the next node: the corpus entity
// word at the chain head, the previous variable afterwards.
func (c *compiler) curEntity() string {
	if len(c.nodes) == 0 {
		return c.env.Entity
	}
	return c.cur()
}

// add appends a node consuming the previous node's output.
func (c *compiler) add(op, lr string, args ops.Args, desc string) {
	id := len(c.nodes)
	n := &core.Node{
		ID:     id,
		Op:     op,
		LR:     lr,
		Args:   args,
		OutVar: fmt.Sprintf("v%d", id+1),
		Desc:   desc,
	}
	if id == 0 {
		n.Inputs = []string{"dataset"}
	} else {
		n.Inputs = []string{c.cur()}
		n.Deps = []int{id - 1}
	}
	c.nodes = append(c.nodes, n)
}

// addFilters lowers the WHERE predicates to a Filter chain. The
// optimizer reorders the chain's conditions by selectivity afterwards,
// so the written order is cosmetic, exactly as for planned queries.
func (c *compiler) addFilters(preds []Pred) error {
	for _, pred := range preds {
		cond, err := renderCond(pred)
		if err != nil {
			return err
		}
		ent := c.curEntity()
		c.add("Filter", "[Entity] that [Condition]",
			ops.Args{"Entity": ent, "Condition": cond}, ent+" "+cond)
	}
	return nil
}

// renderCond renders one predicate in the condition surface grammar of
// internal/nlcond, so structured clauses lower to the exact-expr
// physical filters and key the same selectivity-cache entries as their
// natural-language twins. Semantic (quoted) predicates pass through
// verbatim.
func renderCond(pred Pred) (string, error) {
	switch p := pred.(type) {
	case Sem:
		return p.Text, nil
	case Cmp:
		if p.Field == "year" {
			word, ok := map[string]string{">": "after", ">=": "since", "<": "before", "=": "in"}[p.Op]
			if !ok {
				return "", errf(p.Pos, "operator %s is not supported for year (use > >= < = or BETWEEN)", p.Op)
			}
			if p.Value < 1000 || p.Value > 9999 {
				return "", errf(p.Pos, "year must be a 4-digit number")
			}
			return fmt.Sprintf("posted %s %d", word, p.Value), nil
		}
		if _, ok := fieldCanon[p.Field]; !ok {
			return "", errf(p.Pos, "unknown field %q (use views, upvotes, points, score, or year)", p.Field)
		}
		word, ok := map[string]string{">": "more than", ">=": "at least", "<": "fewer than", "<=": "at most", "=": "exactly"}[p.Op]
		if !ok {
			return "", errf(p.Pos, "operator %s is not supported for %s", p.Op, p.Field)
		}
		return fmt.Sprintf("with %s %d %s", word, p.Value, p.Field), nil
	case Range:
		if p.Field != "year" {
			return "", errf(p.Pos, "BETWEEN is only supported for year")
		}
		if p.Lo < 1000 || p.Lo > 9999 || p.Hi < 1000 || p.Hi > 9999 {
			return "", errf(p.Pos, "year must be a 4-digit number")
		}
		return fmt.Sprintf("posted between %d and %d", p.Lo, p.Hi), nil
	default:
		return "", errf(pred.pos(), "unsupported predicate")
	}
}

// aggField canonicalizes an aggregate argument field.
func aggField(a *Agg, pos int) (string, error) {
	f, ok := fieldCanon[a.Field]
	if !ok {
		return "", errf(pos, "cannot aggregate over %q (use views, upvotes, points, or score)", a.Field)
	}
	return f, nil
}

// compileSimple handles every non-GROUP-BY form: aggregates, top-k
// document lists (SELECT * ... ORDER BY f DESC LIMIT k), the
// title-of-best extraction (SELECT title ... ORDER BY f DESC LIMIT 1),
// and plain filtered document lists.
func (c *compiler) compileSimple(q *Query) error {
	if err := c.addFilters(q.Where); err != nil {
		return err
	}
	switch {
	case q.Select.Agg != nil:
		if q.OrderBy != nil {
			return errf(q.OrderBy.Pos, "ORDER BY cannot be combined with an aggregate")
		}
		if q.Limit >= 0 {
			return errf(q.LimitPos, "LIMIT cannot be combined with an aggregate")
		}
		return c.addAgg(q.Select.Agg, q.Select.Pos)
	case q.Select.Star:
		if q.OrderBy == nil && q.Limit < 0 {
			if len(q.Where) == 0 {
				return errf(q.End, "SELECT * requires a WHERE clause or ORDER BY ... LIMIT")
			}
			return nil // filtered document list; the last filter is the sink
		}
		return c.addTopK(q)
	case q.Select.Column == "title":
		if q.OrderBy == nil || q.Limit < 0 {
			return errf(q.End, "SELECT title requires ORDER BY <field> DESC LIMIT n")
		}
		if err := c.addTopK(q); err != nil {
			return err
		}
		cur := c.cur()
		c.add("Extract", "extract [Entity] from [Entity]",
			ops.Args{"Attribute": "title", "Entity": "the title", "Entity2": cur},
			"the title of "+cur)
		return nil
	default:
		return errf(q.Select.Pos, "unknown column %q (use *, title, an aggregate, or a GROUP BY column)", q.Select.Column)
	}
}

// addTopK lowers ORDER BY <field> DESC LIMIT n to a TopK node.
func (c *compiler) addTopK(q *Query) error {
	if q.OrderBy == nil {
		return errf(q.LimitPos, "LIMIT requires ORDER BY")
	}
	if q.Limit < 0 {
		return errf(q.OrderBy.Pos, "ORDER BY requires LIMIT")
	}
	if q.OrderBy.CountStar {
		return errf(q.OrderBy.Pos, "ORDER BY COUNT(*) requires GROUP BY")
	}
	if !q.OrderBy.Desc {
		return errf(q.OrderBy.Pos, "ascending order is not supported (use DESC)")
	}
	field, ok := fieldCanon[q.OrderBy.Field]
	if !ok {
		return errf(q.OrderBy.Pos, "cannot sort by %q (use views, upvotes, points, or score)", q.OrderBy.Field)
	}
	ent := c.curEntity()
	c.add("TopK", "the top [Number] [Entity]",
		ops.Args{"Condition": "descending", "Entity": ent, "Field": field, "Number": fmt.Sprintf("%d", q.Limit)},
		fmt.Sprintf("the top %d of %s by %s", q.Limit, ent, field))
	return nil
}

// addAgg lowers an aggregate select item onto the current chain.
func (c *compiler) addAgg(a *Agg, pos int) error {
	ent := c.curEntity()
	if a.Fn == "COUNT" {
		c.add("Count", "number of [Entity]", ops.Args{"Entity": ent}, "the number of "+ent)
		return nil
	}
	field, err := aggField(a, pos)
	if err != nil {
		return err
	}
	// fieldNoun phrases the field the way the planner's descriptions do.
	fieldNoun := field
	if field == "views" {
		fieldNoun = "number of views"
	}
	switch a.Fn {
	case "AVG":
		c.add("Average", "the average [Field] of [Entity]",
			ops.Args{"Entity": ent, "Field": field},
			fmt.Sprintf("the average %s of %s", field, ent))
	case "SUM":
		c.add("Sum", "the total sum of [Entity]",
			ops.Args{"Entity": ent, "Field": field},
			fmt.Sprintf("the total %s of %s", fieldNoun, ent))
	case "MAX":
		c.add("Max", "the maximum of [Entity]",
			ops.Args{"Entity": ent, "Field": field},
			fmt.Sprintf("the maximum %s of %s", field, ent))
	case "MIN":
		c.add("Min", "the minimum of [Entity]",
			ops.Args{"Entity": ent, "Field": field},
			fmt.Sprintf("the minimum %s of %s", field, ent))
	case "MEDIAN":
		c.add("Median", "the median of [Entity]",
			ops.Args{"Entity": ent, "Field": field},
			fmt.Sprintf("the median %s of %s", fieldNoun, ent))
	case "PERCENTILE":
		c.add("Percentile", "the k-th percentile for [Entity]",
			ops.Args{"Entity": ent, "Field": field, "Number": fmt.Sprintf("%d", a.P)},
			fmt.Sprintf("the %s percentile of %s of %s", ordinal(a.P), field, ent))
	default:
		return errf(pos, "unknown aggregate function %q", a.Fn)
	}
	return nil
}

// compileGroupBy handles `SELECT <col> ... GROUP BY <col> ORDER BY
// COUNT(*) DESC LIMIT n`: a semantic GroupBy over the whole dataset,
// the WHERE filters applied per group, a per-group Count, and an
// arg-max (LIMIT 1) or top-k (LIMIT n) over the group counts.
func (c *compiler) compileGroupBy(q *Query) error {
	if q.Select.Agg != nil || q.Select.Star || q.Select.Column != q.GroupBy {
		return errf(q.Select.Pos, "SELECT must name the GROUP BY column %q", q.GroupBy)
	}
	if q.OrderBy == nil || !q.OrderBy.CountStar {
		return errf(q.End, "GROUP BY requires ORDER BY COUNT(*) DESC")
	}
	if !q.OrderBy.Desc {
		return errf(q.OrderBy.Pos, "ascending order is not supported (use DESC)")
	}
	if q.Limit < 0 {
		return errf(q.End, "GROUP BY requires LIMIT")
	}
	c.add("GroupBy", "among [Entity], which [Attribute] has the highest [Entity]",
		ops.Args{"Attribute": q.GroupBy, "Entity": c.env.Entity, "Entity2": c.env.Entity},
		fmt.Sprintf("the groups of %s by %s", c.env.Entity, q.GroupBy))
	if err := c.addFilters(q.Where); err != nil {
		return err
	}
	ent := c.curEntity()
	c.add("Count", "number of [Entity]", ops.Args{"Entity": ent}, "the number of "+ent)
	cur := c.cur()
	if q.Limit == 1 {
		c.add("Max", "the entry of [Entity] with the highest value",
			ops.Args{"Condition": "descending", "Entity": cur, "Number": "1"},
			fmt.Sprintf("which entry of %s is the highest", cur))
		return nil
	}
	c.add("TopK", "the top [Number] [Entity]",
		ops.Args{"Condition": "descending", "Entity": cur, "Number": fmt.Sprintf("%d", q.Limit)},
		fmt.Sprintf("the top %d entries of %s", q.Limit, cur))
	return nil
}

// ordinal renders 75 as "75th", 1 as "1st", etc.
func ordinal(n int) string {
	suffix := "th"
	switch {
	case n%100 >= 11 && n%100 <= 13:
	case n%10 == 1:
		suffix = "st"
	case n%10 == 2:
		suffix = "nd"
	case n%10 == 3:
		suffix = "rd"
	}
	return fmt.Sprintf("%d%s", n, suffix)
}
