package usql

import (
	"strings"
	"testing"

	"unify/internal/core"
)

var testEnv = Env{Dataset: "sports", Entity: "questions"}

func mustCompile(t *testing.T, src string) *core.Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	plan, err := Compile(q, testEnv)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return plan
}

func TestDetect(t *testing.T) {
	for _, q := range []string{
		"SELECT COUNT(*) FROM sports",
		"select * from sports where views > 3 order by views desc limit 2",
		"  \tSeLeCt title FROM sports ORDER BY score DESC LIMIT 1",
	} {
		if !Detect(q) {
			t.Errorf("Detect(%q) = false, want true", q)
		}
	}
	for _, q := range []string{
		"How many questions about baseball have more than 140 views?",
		"Count the questions about baseball.",
		"",
		"'select' is a keyword",
	} {
		if Detect(q) {
			t.Errorf("Detect(%q) = true, want false", q)
		}
	}
}

func TestParseErrorsCarryBytePositions(t *testing.T) {
	cases := []struct {
		src string
		pos int
	}{
		{"", 0},
		{"EXPLAIN SELECT", 0},
		{"SELECT", 6},
		{"SELECT COUNT(*) FROM sports WHERE views ~ 3", 40},
		{"SELECT COUNT(*) FROM sports WHERE 'unterminated", 34},
		{"SELECT COUNT(*) FROM sports trailing", 28},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.src)
			continue
		}
		perr, ok := err.(*Error)
		if !ok {
			t.Errorf("Parse(%q) error type %T, want *Error", c.src, err)
			continue
		}
		if perr.Pos != c.pos {
			t.Errorf("Parse(%q) error at %d, want %d (%v)", c.src, perr.Pos, c.pos, err)
		}
		if !strings.HasPrefix(err.Error(), "usql:") {
			t.Errorf("Parse(%q) error %q lacks usql: prefix", c.src, err)
		}
	}
}

func TestCompileCountShape(t *testing.T) {
	plan := mustCompile(t, "SELECT COUNT(*) FROM sports WHERE 'related to baseball' AND views > 140")
	if len(plan.Nodes) != 3 {
		t.Fatalf("got %d nodes, want 3", len(plan.Nodes))
	}
	f1, f2, cnt := plan.Nodes[0], plan.Nodes[1], plan.Nodes[2]
	if f1.Op != "Filter" || f1.Args.Get("Condition") != "related to baseball" ||
		f1.Args.Get("Entity") != "questions" || f1.Inputs[0] != "dataset" {
		t.Errorf("node 0 wrong: %+v", f1)
	}
	if f2.Op != "Filter" || f2.Args.Get("Condition") != "with more than 140 views" ||
		f2.Args.Get("Entity") != "{v1}" || f2.Inputs[0] != "{v1}" {
		t.Errorf("node 1 wrong: %+v", f2)
	}
	if cnt.Op != "Count" || cnt.LR != "number of [Entity]" || cnt.Args.Get("Entity") != "{v2}" {
		t.Errorf("node 2 wrong: %+v", cnt)
	}
}

func TestCompileGroupByArgMaxShape(t *testing.T) {
	plan := mustCompile(t, "SELECT sport FROM sports WHERE upvotes >= 4 GROUP BY sport ORDER BY COUNT(*) DESC LIMIT 1")
	ops := make([]string, len(plan.Nodes))
	for i, n := range plan.Nodes {
		ops[i] = n.Op
	}
	if got, want := strings.Join(ops, ","), "GroupBy,Filter,Count,Max"; got != want {
		t.Fatalf("ops %s, want %s", got, want)
	}
	gb := plan.Nodes[0]
	if gb.Args.Get("Attribute") != "sport" || gb.Args.Get("Entity") != "questions" ||
		gb.Args.Get("Entity2") != "questions" {
		t.Errorf("GroupBy args wrong: %v", gb.Args)
	}
	if cond := plan.Nodes[1].Args.Get("Condition"); cond != "with at least 4 upvotes" {
		t.Errorf("filter condition %q", cond)
	}
	argmax := plan.Nodes[3]
	if argmax.LR != "the entry of [Entity] with the highest value" ||
		argmax.Args.Get("Number") != "1" || argmax.Args.Get("Condition") != "descending" {
		t.Errorf("argmax wrong: %+v", argmax)
	}
}

func TestCompileConditionSurfaces(t *testing.T) {
	cases := []struct {
		pred string
		cond string
	}{
		{"views > 140", "with more than 140 views"},
		{"views >= 140", "with at least 140 views"},
		{"upvotes < 5", "with fewer than 5 upvotes"},
		{"points <= 8", "with at most 8 points"},
		{"score = 7", "with exactly 7 score"},
		{"year > 2013", "posted after 2013"},
		{"year >= 2013", "posted since 2013"},
		{"year < 2013", "posted before 2013"},
		{"year = 2013", "posted in 2013"},
		{"year BETWEEN 2013 AND 2015", "posted between 2013 and 2015"},
	}
	for _, c := range cases {
		plan := mustCompile(t, "SELECT COUNT(*) FROM sports WHERE "+c.pred)
		if got := plan.Nodes[0].Args.Get("Condition"); got != c.cond {
			t.Errorf("%s: condition %q, want %q", c.pred, got, c.cond)
		}
	}
}

func TestCanonicalIsFixpoint(t *testing.T) {
	srcs := []string{
		"select  count(*)  from  SPORTS  where  'related to baseball'  and  views>140",
		"SELECT percentile(Views, 90) FROM sports WHERE \"has a 'quoted' aside\"",
		"select SPORT from sports group by Sport order by count ( * ) desc limit 2",
		"select * from sports where year between 2013 and 2015 order by UPVOTES desc limit 10",
	}
	for _, src := range srcs {
		c1, err := Canonical(src)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", src, err)
		}
		c2, err := Canonical(c1)
		if err != nil {
			t.Fatalf("Canonical(%q) [reparse]: %v", c1, err)
		}
		if c1 != c2 {
			t.Errorf("not a fixpoint:\n src %q\n c1 %q\n c2 %q", src, c1, c2)
		}
	}
}

func TestCanonicalNormalizesSpelling(t *testing.T) {
	a, err := Canonical("select count(*) from Sports where views>140 and 'related to baseball'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical("SELECT COUNT(*) FROM sports WHERE views > 140 AND \"related to baseball\"")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("canonical forms differ: %q vs %q", a, b)
	}
	if want := "SELECT COUNT(*) FROM sports WHERE views > 140 AND 'related to baseball'"; a != want {
		t.Errorf("canonical %q, want %q", a, want)
	}
}

func TestCompileRejectsWrongDataset(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM wiki")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(q, testEnv)
	if err == nil {
		t.Fatal("Compile accepted wrong dataset")
	}
	if perr, ok := err.(*Error); !ok || perr.Pos != 21 {
		t.Fatalf("error %v, want *Error at byte 21", err)
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 11: "11th", 12: "12th", 13: "13th", 21: "21st", 75: "75th", 90: "90th", 95: "95th"}
	for n, want := range cases {
		if got := ordinal(n); got != want {
			t.Errorf("ordinal(%d) = %q, want %q", n, got, want)
		}
	}
}
