package usql

import (
	"fmt"
	"strings"
)

// String renders the canonical form of the query: upper-case keywords,
// single spaces, lowercased identifiers, explicit sort direction. The
// canonical form is a parse fixpoint (parsing it and printing again
// yields the same string), and it is the text the optimizer hashes for
// the exact USQL plan-cache key — so `select  Count(*)` and
// `SELECT COUNT(*)` share one cache entry while remaining distinct from
// every other query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.Select.Star:
		b.WriteString("*")
	case q.Select.Agg != nil:
		a := q.Select.Agg
		if a.Fn == "PERCENTILE" {
			fmt.Fprintf(&b, "PERCENTILE(%s, %d)", a.Field, a.P)
		} else {
			fmt.Fprintf(&b, "%s(%s)", a.Fn, a.Field)
		}
	default:
		b.WriteString(q.Select.Column)
	}
	fmt.Fprintf(&b, " FROM %s", strings.ToLower(q.From))
	for i, pred := range q.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		switch p := pred.(type) {
		case Sem:
			b.WriteString(quote(p.Text))
		case Cmp:
			fmt.Fprintf(&b, "%s %s %d", p.Field, p.Op, p.Value)
		case Range:
			fmt.Fprintf(&b, "%s BETWEEN %d AND %d", p.Field, p.Lo, p.Hi)
		}
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", q.GroupBy)
	}
	if q.OrderBy != nil {
		b.WriteString(" ORDER BY ")
		if q.OrderBy.CountStar {
			b.WriteString("COUNT(*)")
		} else {
			b.WriteString(q.OrderBy.Field)
		}
		if q.OrderBy.Desc {
			b.WriteString(" DESC")
		} else {
			b.WriteString(" ASC")
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// quote renders a semantic predicate as a string literal. A scanned
// string body never contains both quote characters (its own terminator
// ends it), so one of the two forms always round-trips.
func quote(s string) string {
	if strings.Contains(s, "'") {
		return `"` + s + `"`
	}
	return "'" + s + "'"
}

// Canonical parses src and returns its canonical form. It is the
// cache-key normalization used by the query path.
func Canonical(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}
