// Package usql implements USQL, the typed query-language frontend of the
// redesigned multi-language query API: a small SQL dialect over one
// unstructured document collection —
//
//	SELECT COUNT(*) FROM sports WHERE 'related to baseball' AND views > 140
//	SELECT sport FROM sports WHERE upvotes >= 4 GROUP BY sport
//	    ORDER BY COUNT(*) DESC LIMIT 1
//	SELECT * FROM sports WHERE 'related to baseball' ORDER BY views DESC LIMIT 3
//
// parsed with a hand-rolled scanner/parser (elseql shape) and compiled
// directly to the core logical plan DAG, bypassing the planner LLM
// entirely. Quoted string predicates are natural-language (semantic)
// conditions lowered to SemanticFilter/classify nodes; comparisons over
// the typed fields (views, score/upvotes/points, year) are structured
// clauses lowered to the exact-expr operators. Parsing is deterministic,
// so one USQL text always compiles to one logical plan — the property
// that gives USQL traffic exact (non-NL-normalized) plan-cache keys.
//
// Every parse or compile failure is an *Error carrying the byte offset of
// the offending token, so programmatic clients can point at the exact
// position in the submitted text.
package usql

import (
	"fmt"
	"strings"
)

// Error is a parse or compile error anchored to a byte offset in the
// query text.
type Error struct {
	Pos int // byte offset of the offending token
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("usql:%d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// kind classifies a scanned token.
type kind int

const (
	tokEOF kind = iota
	tokIdent
	tokNumber
	tokString // quoted NL predicate; text holds the unquoted body
	tokOp     // > >= < <= = !=
	tokPunct  // ( ) , *
)

func (k kind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokOp:
		return "comparison operator"
	default:
		return "punctuation"
	}
}

// token is one scanned lexeme with its byte position.
type token struct {
	kind kind
	text string
	pos  int
}

// scanner is a hand-rolled lexer over the raw query bytes; it reports
// byte positions (not rune or line positions) because USQL errors are
// aimed at programmatic clients that index into the submitted string.
type scanner struct {
	src string
	off int
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdent(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' || c == '-' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// next scans one token. The returned error is always an *Error.
func (s *scanner) next() (token, error) {
	for s.off < len(s.src) && isSpace(s.src[s.off]) {
		s.off++
	}
	if s.off >= len(s.src) {
		return token{kind: tokEOF, pos: len(s.src)}, nil
	}
	start := s.off
	c := s.src[s.off]
	switch {
	case isIdentStart(c):
		for s.off < len(s.src) && isIdent(s.src[s.off]) {
			s.off++
		}
		return token{kind: tokIdent, text: s.src[start:s.off], pos: start}, nil
	case isDigit(c):
		for s.off < len(s.src) && isDigit(s.src[s.off]) {
			s.off++
		}
		return token{kind: tokNumber, text: s.src[start:s.off], pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		s.off++
		for s.off < len(s.src) && s.src[s.off] != quote {
			s.off++
		}
		if s.off >= len(s.src) {
			return token{}, errf(start, "unterminated string literal")
		}
		body := s.src[start+1 : s.off]
		s.off++ // closing quote
		if strings.TrimSpace(body) == "" {
			return token{}, errf(start, "empty string literal")
		}
		return token{kind: tokString, text: body, pos: start}, nil
	case c == '>' || c == '<':
		s.off++
		if s.off < len(s.src) && s.src[s.off] == '=' {
			s.off++
		}
		return token{kind: tokOp, text: s.src[start:s.off], pos: start}, nil
	case c == '=':
		s.off++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if s.off+1 < len(s.src) && s.src[s.off+1] == '=' {
			s.off += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, errf(start, "unexpected character %q", string(c))
	case c == '(' || c == ')' || c == ',' || c == '*':
		s.off++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, errf(start, "unexpected character %q", string(c))
	}
}

// Detect reports whether a query string looks like USQL rather than
// natural language: its first token is the SELECT keyword. This is the
// language auto-detection rule — no natural-language workload query
// begins with SELECT, and every USQL query must.
func Detect(q string) bool {
	s := &scanner{src: q}
	t, err := s.next()
	return err == nil && t.kind == tokIdent && strings.EqualFold(t.text, "SELECT")
}
