package tokenizer

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"Views: 1523", []string{"views", "1523"}},
		{"", nil},
		{"...", nil},
		{"a-b c_d", []string{"a", "b", "c", "d"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The players are training for the big match")
	for _, w := range got {
		if IsStopword(w) {
			t.Errorf("Terms kept stopword %q in %v", w, got)
		}
	}
	if len(got) == 0 {
		t.Fatal("Terms dropped everything")
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"injuries": "injury",
		"matches":  "match",
		"boxes":    "box",
		"players":  "player",
		"training": "train",
		"jumped":   "jump",
		"class":    "class", // -ss protected
		"ing":      "ing",   // too short
		"bus":      "bus",   // -us protected
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnOutput(t *testing.T) {
	// Stemming a stem must not shrink below 3 characters.
	f := func(s string) bool {
		w := strings.Map(func(r rune) rune {
			if unicode.IsLetter(r) {
				return unicode.ToLower(r)
			}
			return -1
		}, s)
		if w == "" {
			return true
		}
		st := Stem(w)
		return len(st) >= 3 || len(w) <= 3 || len(st) >= len(w)-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBigrams(t *testing.T) {
	got := Bigrams([]string{"a", "b", "c"})
	want := []string{"a_b", "b_c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Bigrams = %v, want %v", got, want)
	}
	if Bigrams([]string{"solo"}) != nil {
		t.Error("single term should yield no bigrams")
	}
}

func TestContainsTerm(t *testing.T) {
	text := "The goalkeeper made three great saves yesterday"
	if !ContainsTerm(text, "goalkeeper") {
		t.Error("exact term not found")
	}
	if !ContainsTerm(text, "save") {
		t.Error("stemmed term not matched (saves -> save)")
	}
	if ContainsTerm(text, "tennis") {
		t.Error("absent term matched")
	}
}

func TestContainsAny(t *testing.T) {
	text := "discussion about marathon pacing"
	if !ContainsAny(text, []string{"sprint", "marathon"}) {
		t.Error("ContainsAny missed a present word")
	}
	if ContainsAny(text, nil) {
		t.Error("empty word list must not match")
	}
}

func TestTermFreq(t *testing.T) {
	tf := TermFreq("goal goal goal keeper")
	if tf["goal"] != 3 {
		t.Errorf("tf[goal] = %d, want 3", tf["goal"])
	}
}

// TestTokenizeNeverPanics fuzzes the tokenizer with arbitrary strings.
func TestTokenizeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
