// Package tokenizer provides text tokenization primitives shared by the
// embedding model, the keyword-based physical operators, and the simulated
// LLM backend. It deliberately implements only lightweight, deterministic
// processing: lowercasing, punctuation splitting, stop-word removal and a
// tiny suffix stemmer, which is all the upstream components rely on.
package tokenizer

import (
	"strings"
	"unicode"
)

// stopwords is a compact English stop-word list. It intentionally keeps
// comparison and quantity words ("more", "most", "least") because query
// parsing relies on them.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "is": true, "are": true,
	"was": true, "were": true, "be": true, "been": true, "being": true,
	"of": true, "in": true, "on": true, "at": true, "to": true,
	"for": true, "from": true, "by": true, "with": true, "and": true,
	"or": true, "as": true, "it": true, "its": true, "this": true,
	"that": true, "these": true, "those": true, "there": true,
	"i": true, "you": true, "he": true, "she": true, "we": true,
	"they": true, "my": true, "your": true, "our": true, "their": true,
	"do": true, "does": true, "did": true, "have": true, "has": true,
	"had": true, "will": true, "would": true, "can": true, "could": true,
	"should": true, "may": true, "might": true, "am": true, "so": true,
	"but": true, "if": true, "then": true, "than": true, "not": true,
	"no": true, "nor": true, "into": true, "about": true, "over": true,
	"under": true, "after": true, "before": true, "between": true,
	"what": true, "which": true, "who": true, "whom": true, "how": true,
	"when": true, "where": true, "why": true, "any": true, "all": true,
	"some": true, "such": true, "own": true, "same": true, "too": true,
	"very": true, "just": true, "also": true, "each": true, "per": true,
}

// IsStopword reports whether w (already lowercased) is a stop word.
func IsStopword(w string) bool { return stopwords[w] }

// Tokenize splits text into lowercase word tokens. Digits are kept as
// tokens (numeric facts such as view counts matter to the analytics
// operators). Punctuation separates tokens and is dropped.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/6+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Terms tokenizes text and removes stop words, applying the light stemmer.
// It is the canonical preprocessing used by the embedder and the simulated
// LLM's keyword matching, so both sides agree on vocabulary.
func Terms(text string) []string {
	raw := Tokenize(text)
	out := make([]string, 0, len(raw))
	for _, t := range raw {
		if stopwords[t] {
			continue
		}
		out = append(out, Stem(t))
	}
	return out
}

// Stem applies a tiny deterministic suffix stemmer (a small subset of
// Porter step 1): plural and gerund/participle endings. It never shortens
// a token below three characters, which keeps short domain words intact.
func Stem(w string) string {
	n := len(w)
	switch {
	case n > 4 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 4 && strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case n > 4 && strings.HasSuffix(w, "shes") || n > 4 && strings.HasSuffix(w, "ches") || n > 4 && strings.HasSuffix(w, "xes"):
		return w[:n-2]
	case n > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us"):
		return w[:n-1]
	case n > 5 && strings.HasSuffix(w, "ing"):
		return w[:n-3]
	case n > 4 && strings.HasSuffix(w, "ed"):
		return w[:n-2]
	default:
		return w
	}
}

// Bigrams returns adjacent term pairs joined by '_'. Bigrams sharpen the
// embedding space so that multiword concepts ("entity matching") embed
// differently from their parts.
func Bigrams(terms []string) []string {
	if len(terms) < 2 {
		return nil
	}
	out := make([]string, 0, len(terms)-1)
	for i := 0; i+1 < len(terms); i++ {
		out = append(out, terms[i]+"_"+terms[i+1])
	}
	return out
}

// TermFreq counts stemmed non-stop-word terms in text.
func TermFreq(text string) map[string]int {
	tf := make(map[string]int)
	for _, t := range Terms(text) {
		tf[t]++
	}
	return tf
}

// ContainsTerm reports whether any stemmed term of text equals the stem of
// word. It is the primitive used by keyword filters.
func ContainsTerm(text, word string) bool {
	target := Stem(strings.ToLower(word))
	for _, t := range Terms(text) {
		if t == target {
			return true
		}
	}
	return false
}

// ContainsAny reports whether text contains any of the given words
// (stem-matched). An empty word list never matches.
func ContainsAny(text string, words []string) bool {
	if len(words) == 0 {
		return false
	}
	set := make(map[string]bool, len(words))
	for _, w := range words {
		set[Stem(strings.ToLower(w))] = true
	}
	for _, t := range Terms(text) {
		if set[t] {
			return true
		}
	}
	return false
}
