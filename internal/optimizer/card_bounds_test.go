package optimizer

import (
	"context"
	"testing"

	"unify/internal/core"
	"unify/internal/ops"
)

// Regression: propagate estimated a Union's cardinality as the raw sum of
// its inputs' cardinalities. Two broad branches over the same corpus then
// exceeded the corpus size itself — a document set larger than the
// dataset — violating the card_bounds invariant (EstCard in [0, |docs|])
// and inflating downstream work estimates. Set-op outputs must clamp.
func TestUnionEstCardClampedToCorpus(t *testing.T) {
	o, store := setup(t, 300)
	plan := &core.Plan{Query: "union bound", Nodes: []*core.Node{
		{ID: 0, Op: "Scan", Args: ops.Args{"Entity": "questions"},
			Inputs: []string{"dataset"}, OutVar: "v1", Desc: "all questions"},
		{ID: 1, Op: "Scan", Args: ops.Args{"Entity": "questions"},
			Inputs: []string{"dataset"}, OutVar: "v2", Desc: "all questions again"},
		{ID: 2, Op: "Union", Args: ops.Args{"Entity": "{v1}", "Entity2": "{v2}"},
			Inputs: []string{"{v1}", "{v2}"}, OutVar: "v3", Deps: []int{0, 1}, Desc: "union"},
		{ID: 3, Op: "Count", Args: ops.Args{"Entity": "{v3}"},
			Inputs: []string{"{v3}"}, OutVar: "v4", Deps: []int{2}},
	}}
	got, _, err := o.Optimize(context.Background(), []*core.Plan{plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range got.Nodes {
		if n.EstCard < 0 || n.EstCard > store.Len() {
			t.Errorf("node %d (%s) EstCard %d outside [0, %d]", n.ID, n.Op, n.EstCard, store.Len())
		}
	}
}
