// Package optimizer lowers logical plans to physical plans (paper §VI):
// it estimates intermediate cardinalities with semantic cardinality
// estimation, reorders filters so selective ones run first, selects a
// physical implementation per operator with the cost model, and picks the
// cheapest candidate plan by simulating its schedule on the machine model.
package optimizer

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"unify/internal/cache"
	"unify/internal/core"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/nlcond"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/sce"
	"unify/internal/values"
	"unify/internal/views"
	"unify/internal/vtime"
)

// Mode selects the optimization strategy (for the paper's ablations).
type Mode int

// Optimization modes.
const (
	// CostBased is full Unify optimization: SCE-driven ordering and
	// cost-based physical selection.
	CostBased Mode = iota
	// Rule performs no cost-based optimization: it keeps the planner's
	// operator order and picks physicals only by semantic requirements
	// (randomly among adequate ones) — the Unify-Rule baseline.
	Rule
	// GroundTruth uses true cardinalities instead of SCE — the Unify-GD
	// upper bound.
	GroundTruth
)

// Objective selects what the cost model minimizes (the paper's footnote
// 1: the method optimizes total execution time by default, and total
// monetary cost by swapping the cost function).
type Objective int

// Optimization objectives.
const (
	// MinTime minimizes the plan's simulated makespan (default).
	MinTime Objective = iota
	// MinTokens minimizes the total generated tokens (a proxy for
	// dollar cost), ignoring parallelism.
	MinTokens
)

// Optimizer converts logical plans into physical plans.
type Optimizer struct {
	Store     *docstore.Store
	Estimator *sce.Estimator
	Calib     *cost.Calibrator
	Mode      Mode
	// Objective selects the quantity the plan-selection step minimizes.
	Objective Objective
	// Slots is the LLM server slot count of the machine model (per
	// machine when Machines > 1).
	Slots int
	// Machines is the simulated cluster width. Above 1, decomposable
	// LLM-based operators over sharded document sets may be scattered
	// across machines when the cost model says the fan-out beats the
	// merge overhead; at 1 (or 0) plans are exactly the single-machine
	// plans.
	Machines int
	// Views, when non-nil, is the materialized semantic view store. A
	// filter whose column fully covers the corpus (every row fresh) is
	// costed like a cache hit: the executor will serve every verdict from
	// the view, so the node's LLM work estimate drops to zero and the
	// index-scan shortcut is suppressed (a full view read is both exact
	// and free).
	Views *views.Store
	// SampleFrac is the SCE sampling budget as a fraction of the corpus.
	SampleFrac float64
	// Seed drives Rule-mode random selections.
	Seed uint64

	// sel is the bounded selectivity cache (replaces the old unbounded
	// per-Optimizer map): estimates are shared across candidate plans and
	// across queries, and concurrent queries coalesce onto one estimate.
	sel *cache.Layer[float64]
	// plans caches the chosen physical plan per normalized candidate-set
	// signature, so repeated queries skip estimation and lowering.
	plans *cache.Layer[planEntry]
}

// planEntry is one cached optimization outcome.
type planEntry struct {
	plan *core.Plan
	cost time.Duration
}

// planEntryCost prices a cached plan for the byte budget.
func planEntryCost(e planEntry) int64 {
	var n int64 = 64
	for _, nd := range e.plan.Nodes {
		n += 128 + int64(len(nd.Desc)+len(nd.OutVar)+len(nd.Phys))
		for k, v := range nd.Args {
			n += int64(len(k) + len(v))
		}
	}
	return n
}

// Stats reports optimization cost (SCE judgments are LLM work and are
// charged to the planning clock).
type Stats struct {
	Calls    []llm.Call
	Duration time.Duration
	// EstimatedCost is the predicted makespan of the chosen plan.
	EstimatedCost time.Duration
	// PlanCacheHit reports that the whole optimization was served from
	// the plan cache (no estimation or lowering ran).
	PlanCacheHit bool
}

// New returns an optimizer. Its caches start on a small private LRU;
// AttachCache rebinds them to a shared, observable cache.
func New(store *docstore.Store, est *sce.Estimator, calib *cost.Calibrator, slots int) *Optimizer {
	if slots < 1 {
		slots = 4
	}
	o := &Optimizer{
		Store:      store,
		Estimator:  est,
		Calib:      calib,
		Slots:      slots,
		SampleFrac: 0.01,
		Seed:       11,
	}
	o.AttachCache(cache.New(4 << 20))
	return o
}

// WithMode returns a shallow per-mode view of the optimizer: it shares
// the caches, estimator, and calibrator but optimizes under a different
// strategy. Safe for per-query mode overrides — plan-cache signatures
// include the mode, so the views never serve each other stale plans.
func (o *Optimizer) WithMode(m Mode) *Optimizer {
	if m == o.Mode {
		return o
	}
	cp := *o
	cp.Mode = m
	return &cp
}

// AttachCache rebinds the selectivity and plan caches to c (the System's
// shared cache), making their hit/miss/eviction counters observable. A
// nil c is ignored: the private cache from New stays in place.
func (o *Optimizer) AttachCache(c *cache.LRU) {
	if c == nil {
		return
	}
	o.sel = cache.NewLayer[float64](c, "selectivity", func(float64) int64 { return 16 })
	o.plans = cache.NewLayer[planEntry](c, "plan", planEntryCost)
}

// Optimize selects and returns the cheapest physical plan among the
// candidates (paper §VI-C: operator order selection, physical operator
// selection, plan selection).
func (o *Optimizer) Optimize(ctx context.Context, plans []*core.Plan) (*core.Plan, *Stats, error) {
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("optimizer: no candidate plans")
	}
	return o.optimize(ctx, o.planSignature(plans), plans)
}

// OptimizeParsed optimizes a single parser-compiled (USQL) plan. It runs
// the same estimation/reordering/lowering pipeline as Optimize but keys
// the plan cache with ParsedSignature over the canonical query text —
// an exact key, not an NL-normalized candidate-set hash — so repeated
// parameterized queries hit the cache whenever their canonical forms
// match byte-for-byte.
func (o *Optimizer) OptimizeParsed(ctx context.Context, canonical string, plan *core.Plan) (*core.Plan, *Stats, error) {
	if plan == nil {
		return nil, nil, fmt.Errorf("optimizer: no parsed plan")
	}
	return o.optimize(ctx, o.ParsedSignature(canonical), []*core.Plan{plan})
}

// optimize is the shared body of Optimize and OptimizeParsed: plan-cache
// lookup under the provided key, then per-candidate estimation,
// lowering, and cost-based selection on a miss.
func (o *Optimizer) optimize(ctx context.Context, key string, plans []*core.Plan) (*core.Plan, *Stats, error) {
	stats := &Stats{}
	ospan := obs.SpanFrom(ctx)
	if e, ok := o.plans.Get(key); ok {
		// Repeated workload: the whole optimization (estimation, filter
		// reordering, physical lowering, plan selection) is skipped.
		stats.EstimatedCost = e.cost
		stats.PlanCacheHit = true
		ospan.SetAttr("plan_cache", "hit")
		return e.plan.Clone(), stats, nil
	}
	var best *core.Plan
	var bestSpan *obs.Span
	bestCost := time.Duration(math.MaxInt64)
	for i, logical := range plans {
		plan := logical.Clone()
		cspan := ospan.StartChild(fmt.Sprintf("candidate[%d]", i), obs.KindPhase)
		cspan.SetInt("nodes", len(plan.Nodes))
		if o.Mode == CostBased || o.Mode == GroundTruth {
			// Cardinality estimation (SCE) drives the filter reordering;
			// its LLM judgments are the optimizer's only model cost.
			espan := cspan.StartChild("estimate_cardinality", obs.KindPhase)
			durBefore, callsBefore := stats.Duration, len(stats.Calls)
			if err := o.reorderFilters(ctx, plan, stats); err != nil {
				return nil, nil, err
			}
			espan.SetVDur(stats.Duration - durBefore)
			espan.SetInt("llm_calls", len(stats.Calls)-callsBefore)
			espan.End()
		}
		lspan := cspan.StartChild("lower_physical", obs.KindPhase)
		durBefore, callsBefore := stats.Duration, len(stats.Calls)
		if err := o.selectPhysical(ctx, plan, stats); err != nil {
			return nil, nil, err
		}
		lspan.SetVDur(stats.Duration - durBefore)
		lspan.SetInt("llm_calls", len(stats.Calls)-callsBefore)
		lspan.End()
		c, err := o.planCost(plan)
		if err != nil {
			return nil, nil, err
		}
		cspan.SetAttr("est_cost", c.String())
		cspan.End()
		if o.Mode == Rule {
			// Rule mode performs no cost-based plan selection: the first
			// candidate wins.
			cspan.SetAttr("chosen", "true")
			stats.EstimatedCost = c
			o.plans.Put(key, planEntry{plan: plan.Clone(), cost: c})
			return plan, stats, nil
		}
		if c < bestCost {
			bestCost = c
			best = plan
			bestSpan = cspan
		}
	}
	bestSpan.SetAttr("chosen", "true")
	stats.EstimatedCost = bestCost
	o.plans.Put(key, planEntry{plan: best.Clone(), cost: bestCost})
	return best, stats, nil
}

// planSignature produces a normalized, content-addressed key over the
// candidate logical-plan set plus every optimizer knob that changes the
// outcome. Node ids are renumbered to topological positions so two
// plannings of one query hash identically. Rule mode additionally hashes
// the query text (its pseudo-random picks depend on it).
func (o *Optimizer) planSignature(plans []*core.Plan) string {
	h := sha256.New()
	fmt.Fprintf(h, "m%d|o%d|s%d|c%d|f%g|n%d|g%d", o.Mode, o.Objective, o.Slots, o.machines(), o.SampleFrac, o.Store.Len(), o.Store.Generation())
	if o.Mode == Rule {
		fmt.Fprintf(h, "|seed%d", o.Seed)
		if len(plans) > 0 {
			fmt.Fprintf(h, "|q%s", plans[0].Query)
		}
	}
	for pi, p := range plans {
		order, err := p.Topo()
		if err != nil {
			// Unsortable plans hash by raw node order; Optimize will
			// surface the error.
			order = p.Nodes
		}
		pos := make(map[int]int, len(order))
		for i, n := range order {
			pos[n.ID] = i
		}
		fmt.Fprintf(h, "\x1ep%d", pi)
		for i, n := range order {
			fmt.Fprintf(h, "\x1d%d|%s|%s|%s", i, n.Op, n.OutVar, n.LR)
			keys := make([]string, 0, len(n.Args))
			for k := range n.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(h, "\x1c%s=%s", k, n.Args[k])
			}
			for _, ref := range n.Inputs {
				fmt.Fprintf(h, "\x1bi%s", ref)
			}
			for _, d := range n.Deps {
				fmt.Fprintf(h, "\x1bd%d", pos[d])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ParsedSignature is the exact plan-cache key for a parsed (USQL) query:
// the canonical query text plus every optimizer knob that changes the
// outcome — including Machines and mode, so parsed plans never leak
// across cluster widths or optimization strategies (the same invariant
// planSignature enforces for planned queries). Parsing is deterministic,
// so hashing the canonical text is equivalent to hashing the compiled
// plan, and byte-equal parameterized queries always collide.
func (o *Optimizer) ParsedSignature(canonical string) string {
	h := sha256.New()
	fmt.Fprintf(h, "usql|m%d|o%d|s%d|c%d|f%g|n%d|g%d", o.Mode, o.Objective, o.Slots, o.machines(), o.SampleFrac, o.Store.Len(), o.Store.Generation())
	if o.Mode == Rule {
		fmt.Fprintf(h, "|seed%d", o.Seed)
	}
	fmt.Fprintf(h, "|q%s", canonical)
	return hex.EncodeToString(h.Sum(nil))
}

// Reoptimize re-invokes physical lowering on the un-executed suffix of a
// partially executed plan (the paper's §V dynamic replanning): known maps
// variable tokens ("{v1}") to their OBSERVED signatures, which replace
// the SCE estimates for everything downstream. Nodes whose output is
// already known are left untouched; every other node gets a fresh
// physical selection and EstCard under the corrected cardinalities. The
// returned duration is the simulated cost of any estimation the replan
// performed (charged to the execution clock by the caller). The plan
// cache is bypassed: replanned plans are query-state-specific.
func (o *Optimizer) Reoptimize(ctx context.Context, plan *core.Plan, known map[string]core.Known) (time.Duration, error) {
	order, err := plan.Topo()
	if err != nil {
		return 0, err
	}
	stats := &Stats{}
	vars := map[string]sig{
		"dataset": {kind: values.Docs, card: o.Store.Len()},
	}
	for tok, k := range known {
		vars[tok] = sig{kind: k.Kind, card: k.Card, groups: k.Groups}
	}
	for _, n := range order {
		if _, done := known["{"+n.OutVar+"}"]; done {
			continue
		}
		ins := make([]sig, len(n.Inputs))
		for i, ref := range n.Inputs {
			s, ok := vars[ref]
			if !ok {
				s = vars["dataset"]
			}
			ins[i] = s
		}
		out, err := o.lowerNode(ctx, plan, n, ins, stats)
		if err != nil {
			return stats.Duration, err
		}
		vars["{"+n.OutVar+"}"] = out
	}
	return stats.Duration, nil
}

// --- selectivity estimation ---

// selectivity estimates the fraction of documents satisfying a condition,
// caching per condition text: candidate plans of one query and repeated
// queries share one estimate, and only the computing caller is charged
// the estimation's LLM cost (cache hits are free).
func (o *Optimizer) selectivity(ctx context.Context, condText string, stats *Stats) (float64, error) {
	// The corpus generation is part of the key: after a mutation the
	// fraction of matching documents may change, and a stale cached
	// selectivity would silently miscost every candidate plan. (The
	// shared LRU's generation bump also evicts these entries, but the
	// optimizer may run on a private cache — see New — so correctness
	// cannot rely on the bump alone.) Generation zero keeps the original
	// key form so static corpora match the byte-pinned seed goldens.
	key := fmt.Sprintf("m%d|f%g|%s", o.Mode, o.SampleFrac, condText)
	if g := o.Store.Generation(); g != 0 {
		key = fmt.Sprintf("m%d|f%g|g%d|%s", o.Mode, o.SampleFrac, g, condText)
	}
	sel, _, err := o.sel.GetOrCompute(key, func() (float64, error) {
		return o.estimateSelectivity(ctx, condText, stats)
	})
	return sel, err
}

// estimateSelectivity is the uncached estimate, charging its LLM calls to
// stats.
func (o *Optimizer) estimateSelectivity(ctx context.Context, condText string, stats *Stats) (float64, error) {
	n := o.Store.Len()
	if n == 0 {
		return 0, nil
	}
	cond, ok := nlcond.Parse(condText)
	sel := 0.3 // prior for unparseable conditions
	switch {
	case ok && cond.Structured():
		// Structured conditions: cheap exact sampling with regexes (a
		// pre-programmed synopsis, no LLM involved).
		sample := 256
		if sample > n {
			sample = n
		}
		hit := 0
		step := n / sample
		if step < 1 {
			step = 1
		}
		seen := 0
		for i := 0; i < n && seen < sample; i += step {
			d := o.Store.Docs[i]
			if cond.EvalStructured(d.Text) {
				hit++
			}
			seen++
		}
		if seen > 0 {
			sel = float64(hit) / float64(seen)
		}
	case o.Mode == GroundTruth:
		truth, err := o.Estimator.TrueCardinality(ctx, condText, 16)
		if err != nil {
			return 0, err
		}
		sel = float64(truth) / float64(n)
	default:
		ns := int(float64(n) * o.SampleFrac)
		est, calls, err := o.Estimator.Estimate(ctx, sce.Unify, condText, ns)
		if err != nil {
			return 0, err
		}
		stats.Calls = append(stats.Calls, calls...)
		for _, c := range calls {
			stats.Duration += c.Dur
		}
		sel = est / float64(n)
	}
	if sel < 0.001 {
		sel = 0.001
	}
	if sel > 1 {
		sel = 1
	}
	return sel, nil
}

// --- filter ordering ---

// reorderFilters finds linear chains of Filter nodes and permutes their
// conditions so that cheap structured filters run first and semantic
// filters run in increasing selectivity order (most selective first),
// minimizing the documents reaching expensive operators.
func (o *Optimizer) reorderFilters(ctx context.Context, plan *core.Plan, stats *Stats) error {
	consumers := map[int]int{} // node id -> number of dependents
	for _, n := range plan.Nodes {
		for _, d := range n.Deps {
			consumers[d]++
		}
	}
	visited := map[int]bool{}
	for _, n := range plan.Nodes {
		if visited[n.ID] || !isFilterOp(n.Op) {
			continue
		}
		// Walk down the chain starting from a filter whose input is not
		// another exclusive filter.
		chain := []*core.Node{n}
		visited[n.ID] = true
		cur := n
		for {
			next := o.soleFilterConsumer(plan, cur, consumers)
			if next == nil {
				break
			}
			chain = append(chain, next)
			visited[next.ID] = true
			cur = next
		}
		if len(chain) < 2 {
			continue
		}
		type condInfo struct {
			cond string
			sel  float64
			pre  bool
		}
		infos := make([]condInfo, len(chain))
		for i, c := range chain {
			condText := c.Args.Get("Condition")
			sel, err := o.selectivity(ctx, condText, stats)
			if err != nil {
				return err
			}
			cond, ok := nlcond.Parse(condText)
			infos[i] = condInfo{cond: condText, sel: sel, pre: ok && cond.Structured()}
		}
		sort.SliceStable(infos, func(i, j int) bool {
			if infos[i].pre != infos[j].pre {
				return infos[i].pre // free structured filters first
			}
			return infos[i].sel < infos[j].sel
		})
		// Permute the conditions across the chain's nodes, keeping the
		// node/variable wiring intact (descriptions follow the moved
		// conditions).
		for i, c := range chain {
			c.Args["Condition"] = infos[i].cond
			c.Desc = c.Args.Get("Entity") + " " + infos[i].cond
		}
	}
	return nil
}

func isFilterOp(op string) bool { return op == "Filter" || op == "Scan" }

// soleFilterConsumer returns the next filter in a linear chain: the only
// node consuming cur's output, itself a filter with cur as its only dep.
func (o *Optimizer) soleFilterConsumer(plan *core.Plan, cur *core.Node, consumers map[int]int) *core.Node {
	if consumers[cur.ID] != 1 {
		return nil
	}
	for _, n := range plan.Nodes {
		for _, d := range n.Deps {
			if d == cur.ID {
				if isFilterOp(n.Op) && len(n.Deps) == 1 {
					return n
				}
				return nil
			}
		}
	}
	return nil
}

// --- cardinality propagation and physical selection ---

// sig is the optimizer's static signature of a variable: expected value
// kind and cardinalities.
type sig struct {
	kind   values.Kind
	card   int // documents (Docs/Groups) or entries (Vec/Labels)
	groups int // group count for Groups
}

func (o *Optimizer) selectPhysical(ctx context.Context, plan *core.Plan, stats *Stats) error {
	order, err := plan.Topo()
	if err != nil {
		return err
	}
	vars := map[string]sig{
		"dataset": {kind: values.Docs, card: o.Store.Len()},
	}
	for _, n := range order {
		ins := make([]sig, len(n.Inputs))
		for i, ref := range n.Inputs {
			s, ok := vars[ref]
			if !ok {
				s = vars["dataset"]
			}
			ins[i] = s
		}
		out, err := o.lowerNode(ctx, plan, n, ins, stats)
		if err != nil {
			return err
		}
		vars["{"+n.OutVar+"}"] = out
	}
	return nil
}

// dummyValue fabricates a value of the right kind for adequacy checks.
func dummyValue(s sig) values.Value {
	switch s.kind {
	case values.Docs:
		return values.Value{Kind: values.Docs, DocIDs: make([]int, s.card)}
	case values.Groups:
		g := make([]values.Group, s.groups)
		return values.Value{Kind: values.Groups, GroupVal: g}
	case values.Vec:
		return values.Value{Kind: values.Vec, VecVal: make([]values.LabeledNum, s.card)}
	case values.Labels:
		return values.Value{Kind: values.Labels, LabelVal: make([]string, s.card)}
	case values.Num:
		return values.NewNum(0)
	default:
		return values.NewStr("")
	}
}

// lowerNode picks the physical implementation for one node and returns
// the output signature.
func (o *Optimizer) lowerNode(ctx context.Context, plan *core.Plan, n *core.Node, ins []sig, stats *Stats) (sig, error) {
	spec, ok := ops.Get(n.Op)
	if !ok {
		return sig{}, fmt.Errorf("optimizer: unknown operator %q", n.Op)
	}
	inCard := 0
	if len(ins) > 0 {
		inCard = ins[0].card
	}

	// Output signature and per-candidate work estimation.
	outSig, work := o.propagate(ctx, n, ins, stats)
	n.EstCard = outSig.card

	// Materialized-view coverage: when every corpus document has a fresh
	// row in this condition's filter column, a full SemanticFilter pass
	// reads entirely from the view — exact and model-free. Mark the node
	// so costing treats it as zero LLM work, and skip the index-scan
	// shortcut (a shortlist would only lose recall for nothing).
	viewed := false
	delete(n.Args, "_viewed")
	if o.Views != nil && o.Mode != Rule && n.Op == "Filter" && len(n.Inputs) == 1 && n.Inputs[0] == "dataset" {
		if c, okc := nlcond.Parse(n.Args.Get("Condition")); okc && !c.Structured() {
			col := views.FilterColumn(n.Args.Get("Condition"))
			if o.Views.Covers(col, o.Store.IDs(), o.Store.ContentHash) {
				viewed = true
				n.Args["_viewed"] = "1"
			}
		}
	}

	// IndexFilter opportunity: scanning the raw dataset with a semantic
	// condition can shortlist ~3x the estimated output instead of
	// scanning everything.
	if !viewed && o.Mode != Rule && n.Op == "Filter" && len(n.Inputs) == 1 && n.Inputs[0] == "dataset" {
		if c, okc := nlcond.Parse(n.Args.Get("Condition")); okc && !c.Structured() {
			scanK := outSig.card * 3
			if scanK < 16 {
				scanK = 16
			}
			if scanK < (inCard*4)/5 {
				n.Args["_scanK"] = fmt.Sprint(scanK)
			}
		}
	}

	dummies := make([]values.Value, len(ins))
	for i, s := range ins {
		dummies[i] = dummyValue(s)
	}
	cands := spec.Adequate(n.Args, dummies)
	if len(cands) == 0 {
		return sig{}, fmt.Errorf("optimizer: no adequate physical for %s(%v) with %d inputs", n.Op, n.Args, len(ins))
	}

	switch o.Mode {
	case Rule:
		n.Phys = cands[pick(o.Seed, plan.Query, n.ID, len(cands))].Name
	default:
		bestCost := time.Duration(math.MaxInt64)
		for _, c := range cands {
			var cc time.Duration
			if c.LLMBased {
				w := work
				if strings.HasPrefix(c.Name, "IndexFilter") {
					if k, okk := n.Args.Int("_scanK"); okk {
						w = k
					}
				}
				if viewed {
					w = 0 // every judgment is served from the view
				}
				cc = o.Calib.EstimateLLM(c.Name, w)
			} else {
				cc = o.Calib.EstimatePre(c.Name, inCard)
			}
			if cc < bestCost {
				bestCost = cc
				n.Phys = c.Name
			}
		}
	}
	if !strings.HasPrefix(n.Phys, "IndexFilter") && n.Phys != "IndexScan" {
		delete(n.Args, "_scanK")
	}
	if viewed {
		// A view-served node has no model work to fan out.
		work = 0
	}
	o.markScatter(n, ins, work, outSig)
	return outSig, nil
}

// machines reports the effective cluster width.
func (o *Optimizer) machines() int {
	if o.Machines < 1 {
		return 1
	}
	return o.Machines
}

// scatterMerge classifies a physical operator's scatter/merge shape:
// decomposable operators merge per-shard partials with pure computation
// (filters concat, count/sum add, max/min take the extreme); combiners
// (top-k) re-rank the union of per-shard winners with more LLM work.
// Everything else must not be scattered.
const (
	scatterNone    = iota // not decomposable
	scatterExact          // merge is pure computation
	scatterCombine        // merge re-runs the operator over per-shard winners
)

func scatterMerge(phys string) int {
	switch phys {
	case "SemanticFilter", "SemanticCount", "SemanticSum", "SemanticMax", "SemanticMin":
		return scatterExact
	case "SemanticTopK":
		return scatterCombine
	default:
		return scatterNone
	}
}

// markScatter annotates a node for scatter execution when fanning its
// document input out across the cluster's machines beats running it on
// the home machine alone: per-shard cost (work split M ways) plus the
// merge cost must undercut the unscattered cost. M=1 — and Rule mode,
// which does no costing — never scatters, so single-machine plans are
// bit-for-bit unchanged.
func (o *Optimizer) markScatter(n *core.Node, ins []sig, work int, outSig sig) {
	delete(n.Args, "_scatter")
	m := o.machines()
	if m < 2 || o.Mode == Rule {
		return
	}
	mode := scatterMerge(n.Phys)
	if mode == scatterNone || len(ins) == 0 || ins[0].kind != values.Docs {
		return
	}
	// Fan-out must be real work: at least two batched calls per machine,
	// otherwise the shards degenerate to one short call each and the merge
	// latency dominates.
	if o.Calib.EstimateLLMCalls(work) < 2*m {
		return
	}
	shardWork := (work + m - 1) / m
	cost := o.Calib.EstimateLLM(n.Phys, shardWork)
	if mode == scatterCombine {
		union := outSig.card * m
		if union > work {
			union = work
		}
		cost += o.Calib.EstimateLLM(n.Phys, union)
	}
	if cost < o.Calib.EstimateLLM(n.Phys, work) {
		n.Args["_scatter"] = fmt.Sprint(m)
	}
}

// propagate computes the output signature of a node and the number of
// items its (LLM) work scales with.
func (o *Optimizer) propagate(ctx context.Context, n *core.Node, ins []sig, stats *Stats) (sig, int) {
	in := sig{kind: values.Docs, card: o.Store.Len()}
	if len(ins) > 0 {
		in = ins[0]
	}
	switch n.Op {
	case "Scan":
		return in, in.card
	case "Filter":
		sel, err := o.selectivity(ctx, n.Args.Get("Condition"), stats)
		if err != nil {
			sel = 0.3
		}
		out := in
		out.card = int(float64(in.card)*sel + 0.5)
		if out.card < 1 {
			out.card = 1
		}
		if in.kind == values.Groups {
			if c, ok := nlcond.Parse(n.Args.Get("Condition")); ok && c.Kind == nlcond.Subset {
				out.groups = (in.groups + 1) / 2
				out.card = in.card / 2
				return out, in.groups // one judgment per group label
			}
		}
		return out, in.card
	case "GroupBy":
		groups := 12
		if in.card < groups {
			groups = in.card
		}
		return sig{kind: values.Groups, card: in.card, groups: groups}, in.card
	case "Count", "Sum", "Average", "Median", "Percentile":
		if in.kind == values.Groups {
			return sig{kind: values.Vec, card: in.groups}, in.card
		}
		return sig{kind: values.Num, card: 1}, in.card
	case "Max", "Min":
		if in.kind == values.Vec {
			return sig{kind: values.Str, card: 1}, in.card
		}
		if in.kind == values.Groups {
			return sig{kind: values.Vec, card: in.groups}, in.card
		}
		return sig{kind: values.Num, card: 1}, in.card
	case "TopK":
		k, _ := n.Args.Int("Number")
		if k <= 0 {
			k = 1
		}
		if in.kind == values.Vec {
			c := k
			if c > in.card {
				c = in.card
			}
			return sig{kind: values.Labels, card: c}, in.card
		}
		c := k
		if c > in.card {
			c = in.card
		}
		return sig{kind: values.Docs, card: c}, in.card
	case "OrderBy":
		return in, in.card
	case "Classify":
		return sig{kind: values.Str, card: 1}, 1
	case "Extract":
		if in.kind == values.Groups {
			return sig{kind: values.Labels, card: in.groups}, in.groups
		}
		if in.kind == values.Docs && classAttrWord(n.Args.Get("Attribute")) {
			// Distinct-value extraction classifies every document.
			groups := 12
			if in.card < groups {
				groups = in.card
			}
			return sig{kind: values.Labels, card: groups}, in.card
		}
		return sig{kind: values.Str, card: 1}, 1
	case "Join", "Union", "Intersection", "Complementary":
		b := sig{}
		if len(ins) > 1 {
			b = ins[1]
		}
		out := in
		// A union is at most the sum of its sides, but a document set can
		// never exceed the corpus: unclamped sums violated the
		// card_bounds invariant (EstCard in [0, |docs|]) and inflated
		// downstream work estimates.
		out.card = min(in.card+b.card, o.Store.Len())
		if n.Op == "Intersection" || n.Op == "Join" {
			out.card = min(in.card, b.card)
		}
		if n.Op == "Complementary" {
			out.card = in.card
		}
		return out, in.card + b.card
	case "Compute":
		if in.kind == values.Vec {
			return in, in.card
		}
		return sig{kind: values.Num, card: 1}, 1
	case "Compare":
		return sig{kind: values.Str, card: 1}, 1
	case "Generate":
		return sig{kind: values.Str, card: 1}, 8
	default:
		return sig{kind: values.Str, card: 1}, 1
	}
}

func classAttrWord(attr string) bool {
	switch strings.ToLower(strings.TrimSpace(attr)) {
	case "sport", "field", "area", "category", "topic":
		return true
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pick is a deterministic pseudo-random choice for Rule mode.
func pick(seed uint64, query string, nodeID, n int) int {
	if n <= 1 {
		return 0
	}
	h := seed
	for _, b := range []byte(query) {
		h = h*1099511628211 + uint64(b)
	}
	h = h*1099511628211 + uint64(nodeID)
	return int(h % uint64(n))
}

// planCost predicts the plan's cost under the configured objective: the
// scheduled makespan (time) or the total token volume (money, expressed
// on a common duration scale so plan comparison stays uniform).
func (o *Optimizer) planCost(plan *core.Plan) (time.Duration, error) {
	if o.Objective == MinTokens {
		return o.planTokenCost(plan)
	}
	tasks, err := o.PlanTasks(plan)
	if err != nil {
		return 0, err
	}
	res, err := vtime.NewCluster(o.machines(), o.Slots).Run(tasks)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}

// planTokenCost sums estimated generated tokens across LLM-based
// operators (1 token == 1ms on the comparison scale).
func (o *Optimizer) planTokenCost(plan *core.Plan) (time.Duration, error) {
	order, err := plan.Topo()
	if err != nil {
		return 0, err
	}
	cardOf := map[string]int{"dataset": o.Store.Len()}
	total := 0.0
	for _, n := range order {
		inCard := 0
		for _, ref := range n.Inputs {
			if c, ok := cardOf[ref]; ok && c > inCard {
				inCard = c
			}
		}
		if inCard == 0 {
			inCard = o.Store.Len()
		}
		work := inCard
		if k, ok := n.Args.Int("_scanK"); ok && strings.HasPrefix(n.Phys, "IndexFilter") {
			work = k
		}
		if n.Args.Get("_viewed") == "1" {
			work = 0
		}
		spec, _ := ops.Get(n.Op)
		if spec != nil {
			for _, p := range spec.Phys {
				if p.Name == n.Phys && p.LLMBased {
					total += o.Calib.EstimateLLMTokens(n.Phys, work)
				}
			}
		}
		cardOf["{"+n.OutVar+"}"] = n.EstCard
	}
	return time.Duration(total) * time.Millisecond, nil
}

// PlanTasks converts an annotated physical plan into vtime tasks with
// ESTIMATED durations (used for plan selection; the executor later builds
// the same structure from observed durations).
func (o *Optimizer) PlanTasks(plan *core.Plan) ([]vtime.Task, error) {
	order, err := plan.Topo()
	if err != nil {
		return nil, err
	}
	// Recover each node's input cardinality from its deps' estimates.
	cardOf := map[string]int{"dataset": o.Store.Len()}
	var tasks []vtime.Task
	for _, n := range order {
		inCard := 0
		for _, ref := range n.Inputs {
			if c, ok := cardOf[ref]; ok && c > inCard {
				inCard = c
			}
		}
		if inCard == 0 {
			inCard = o.Store.Len()
		}
		work := inCard
		if k, ok := n.Args.Int("_scanK"); ok && strings.HasPrefix(n.Phys, "IndexFilter") {
			work = k
		}
		if n.Args.Get("_viewed") == "1" {
			work = 0
		}
		var units []vtime.Unit
		spec, _ := ops.Get(n.Op)
		var phys *ops.Physical
		if spec != nil {
			for _, p := range spec.Phys {
				if p.Name == n.Phys {
					phys = p
				}
			}
		}
		deps := make([]string, len(n.Deps))
		for i, d := range n.Deps {
			deps[i] = fmt.Sprintf("n%d", d)
		}
		if m, scattered := n.Args.Int("_scatter"); scattered && m > 1 && phys != nil && phys.LLMBased {
			// Scatter: the node's work splits across the cluster's machines,
			// one task per shard, plus a merge task on the home machine
			// gated on every shard (top-k combines re-rank the union there;
			// exact merges are free computation).
			shardWork := (work + m - 1) / m
			shardIDs := make([]string, m)
			for s := 0; s < m; s++ {
				busy := o.Calib.EstimateLLM(n.Phys, shardWork)
				calls := o.Calib.EstimateLLMCalls(shardWork)
				if calls < 1 {
					calls = 1
				}
				per := busy / time.Duration(calls)
				var su []vtime.Unit
				for i := 0; i < calls; i++ {
					su = append(su, vtime.Unit{Dur: per, Resource: vtime.MachineResource(s)})
				}
				id := fmt.Sprintf("n%d.s%d", n.ID, s)
				shardIDs[s] = id
				tasks = append(tasks, vtime.Task{ID: id, Deps: deps, Units: su, Sequential: true})
			}
			var mu []vtime.Unit
			if scatterMerge(n.Phys) == scatterCombine {
				union := n.EstCard * m
				if union > work {
					union = work
				}
				busy := o.Calib.EstimateLLM(n.Phys, union)
				calls := o.Calib.EstimateLLMCalls(union)
				if calls < 1 {
					calls = 1
				}
				per := busy / time.Duration(calls)
				for i := 0; i < calls; i++ {
					mu = append(mu, vtime.Unit{Dur: per, Resource: vtime.ResourceLLM})
				}
			} else {
				mu = append(mu, vtime.Unit{Dur: o.Calib.EstimatePre(n.Phys, work)})
			}
			tasks = append(tasks, vtime.Task{ID: fmt.Sprintf("n%d", n.ID), Deps: shardIDs, Units: mu, Sequential: true})
			cardOf["{"+n.OutVar+"}"] = n.EstCard
			continue
		}
		if phys != nil && phys.LLMBased {
			busy := o.Calib.EstimateLLM(n.Phys, work)
			calls := o.Calib.EstimateLLMCalls(work)
			if calls < 1 {
				calls = 1
			}
			per := busy / time.Duration(calls)
			for i := 0; i < calls; i++ {
				units = append(units, vtime.Unit{Dur: per, Resource: vtime.ResourceLLM})
			}
		} else {
			units = append(units, vtime.Unit{Dur: o.Calib.EstimatePre(n.Phys, work)})
		}
		tasks = append(tasks, vtime.Task{ID: fmt.Sprintf("n%d", n.ID), Deps: deps, Units: units, Sequential: true})
		cardOf["{"+n.OutVar+"}"] = n.EstCard
	}
	return tasks, nil
}
