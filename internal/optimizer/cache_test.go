package optimizer

import (
	"context"
	"testing"

	"unify/internal/cache"
	"unify/internal/core"
)

func TestPlanCacheHitOnRepeatedOptimize(t *testing.T) {
	o, _ := setup(t, 400)
	c := cache.New(8 << 20)
	o.AttachCache(c)
	ctx := context.Background()

	p1, s1, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if s1.PlanCacheHit {
		t.Fatal("cold optimize reported a plan-cache hit")
	}
	p2, s2, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.PlanCacheHit {
		t.Fatal("repeat optimize missed the plan cache")
	}
	if len(s2.Calls) != 0 {
		t.Fatalf("plan-cache hit charged %d LLM calls, want 0", len(s2.Calls))
	}
	if s2.EstimatedCost != s1.EstimatedCost {
		t.Fatalf("cached cost %v != original %v", s2.EstimatedCost, s1.EstimatedCost)
	}
	if p2.String() != p1.String() {
		t.Fatalf("cached plan differs:\n%s\nvs\n%s", p2, p1)
	}
	// The cached plan is a private clone: mutating it must not poison
	// later hits.
	p2.Nodes[0].Phys = "Poisoned"
	p3, _, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Nodes[0].Phys == "Poisoned" {
		t.Fatal("plan cache returned a shared mutable plan")
	}
	st := c.LayerStats()
	if st["plan"].Hits < 2 || st["plan"].Misses != 1 {
		t.Fatalf("plan layer stats = %+v", st["plan"])
	}
	if st["selectivity"].Misses == 0 {
		t.Fatal("selectivity estimates not routed through the cache")
	}
}

func TestSelectivityCacheBounded(t *testing.T) {
	o, _ := setup(t, 200)
	// Tiny budget: the selectivity layer must evict rather than grow.
	c := cache.New(512, cache.WithShards(1))
	o.AttachCache(c)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		p := filterCountPlan()
		p.Nodes[0].Args["Condition"] = "related to sport number " + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, _, err := o.Optimize(ctx, []*core.Plan{p}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Bytes(); got > 512 {
		t.Fatalf("cache grew to %d bytes past its 512-byte budget", got)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions under the tiny budget")
	}
}
