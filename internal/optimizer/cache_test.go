package optimizer

import (
	"context"
	"testing"

	"unify/internal/cache"
	"unify/internal/core"
)

func TestPlanCacheHitOnRepeatedOptimize(t *testing.T) {
	o, _ := setup(t, 400)
	c := cache.New(8 << 20)
	o.AttachCache(c)
	ctx := context.Background()

	p1, s1, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if s1.PlanCacheHit {
		t.Fatal("cold optimize reported a plan-cache hit")
	}
	p2, s2, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.PlanCacheHit {
		t.Fatal("repeat optimize missed the plan cache")
	}
	if len(s2.Calls) != 0 {
		t.Fatalf("plan-cache hit charged %d LLM calls, want 0", len(s2.Calls))
	}
	if s2.EstimatedCost != s1.EstimatedCost {
		t.Fatalf("cached cost %v != original %v", s2.EstimatedCost, s1.EstimatedCost)
	}
	if p2.String() != p1.String() {
		t.Fatalf("cached plan differs:\n%s\nvs\n%s", p2, p1)
	}
	// The cached plan is a private clone: mutating it must not poison
	// later hits.
	p2.Nodes[0].Phys = "Poisoned"
	p3, _, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if p3.Nodes[0].Phys == "Poisoned" {
		t.Fatal("plan cache returned a shared mutable plan")
	}
	st := c.LayerStats()
	if st["plan"].Hits < 2 || st["plan"].Misses != 1 {
		t.Fatalf("plan layer stats = %+v", st["plan"])
	}
	if st["selectivity"].Misses == 0 {
		t.Fatal("selectivity estimates not routed through the cache")
	}
}

// TestParsedSignatureKeyedByConfig is the regression test for the
// USQL cache-key bug class: a parsed plan optimized under one cluster
// width or optimizer mode must never be served from the cache under
// another. The key has to cover everything planSignature covers plus
// the canonical query text.
func TestParsedSignatureKeyedByConfig(t *testing.T) {
	o, _ := setup(t, 400)
	c := cache.New(8 << 20)
	o.AttachCache(c)
	ctx := context.Background()
	const canon = "SELECT COUNT(*) FROM sports WHERE 'related to golf' AND views > 500"

	if _, s1, err := o.OptimizeParsed(ctx, canon, filterCountPlan()); err != nil {
		t.Fatal(err)
	} else if s1.PlanCacheHit {
		t.Fatal("cold OptimizeParsed reported a plan-cache hit")
	}
	if _, s2, err := o.OptimizeParsed(ctx, canon, filterCountPlan()); err != nil {
		t.Fatal(err)
	} else if !s2.PlanCacheHit {
		t.Fatal("repeat OptimizeParsed missed the plan cache")
	}

	// Same canonical text, wider simulated cluster: the sharded physical
	// choice differs, so the cached single-machine plan must not be hit.
	base := o.Machines
	sigBase := o.ParsedSignature(canon)
	o.Machines = 4
	if o.ParsedSignature(canon) == sigBase {
		t.Fatal("ParsedSignature ignores Machines")
	}
	if _, s3, err := o.OptimizeParsed(ctx, canon, filterCountPlan()); err != nil {
		t.Fatal(err)
	} else if s3.PlanCacheHit {
		t.Fatal("OptimizeParsed with Machines=4 reused the Machines=1 cached plan")
	}
	o.Machines = base

	// Different optimizer mode: Rule-mode must not see CostBased entries.
	if o.ParsedSignature(canon) == o.WithMode(Rule).ParsedSignature(canon) {
		t.Fatal("ParsedSignature ignores optimizer mode")
	}
	if _, s4, err := o.WithMode(Rule).OptimizeParsed(ctx, canon, filterCountPlan()); err != nil {
		t.Fatal(err)
	} else if s4.PlanCacheHit {
		t.Fatal("Rule-mode OptimizeParsed reused a CostBased cached plan")
	}

	// Parsed keys live in a separate namespace from NL planner keys, even
	// when the compiled plan is identical to a planned candidate.
	if o.ParsedSignature(canon) == o.planSignature([]*core.Plan{filterCountPlan()}) {
		t.Fatal("parsed and NL plan-cache namespaces collide")
	}
}

func TestOptimizeParsedNilPlan(t *testing.T) {
	o, _ := setup(t, 200)
	if _, _, err := o.OptimizeParsed(context.Background(), "SELECT COUNT(*) FROM sports", nil); err == nil {
		t.Fatal("OptimizeParsed accepted a nil plan")
	}
}

func TestSelectivityCacheBounded(t *testing.T) {
	o, _ := setup(t, 200)
	// Tiny budget: the selectivity layer must evict rather than grow.
	c := cache.New(512, cache.WithShards(1))
	o.AttachCache(c)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		p := filterCountPlan()
		p.Nodes[0].Args["Condition"] = "related to sport number " + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, _, err := o.Optimize(ctx, []*core.Plan{p}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Bytes(); got > 512 {
		t.Fatalf("cache grew to %d bytes past its 512-byte budget", got)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions under the tiny budget")
	}
}
