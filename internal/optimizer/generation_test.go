package optimizer

import (
	"context"
	"testing"

	"unify/internal/cache"
	"unify/internal/core"
	"unify/internal/corpus"
)

// TestPlanCacheInvalidatedByCorpusMutation is the regression test for
// the corpus-generation cache-key bug class: every optimizer cache —
// plan signatures, parsed signatures, selectivity estimates — must be
// keyed by the docstore generation, or a corpus mutation leaves cached
// plans carrying stale cardinalities and cached selectivities computed
// over documents that no longer define the corpus.
func TestPlanCacheInvalidatedByCorpusMutation(t *testing.T) {
	o, store := setup(t, 400)
	c := cache.New(8 << 20)
	o.AttachCache(c)
	ctx := context.Background()

	p1, s1, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if _, s2, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()}); err != nil || !s2.PlanCacheHit {
		t.Fatalf("precondition: repeat optimize should hit the plan cache (err %v)", err)
	}
	sigBefore := o.ParsedSignature("SELECT COUNT(*) FROM questions")
	selMissesBefore := c.LayerStats()["selectivity"].Misses

	// Ingest 200 new documents (ids 400..599 extend the 400-doc corpus).
	ds, err := corpus.GenerateN("sports", 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AddDocs(ds.Documents()[400:]); err != nil {
		t.Fatal(err)
	}

	p3, s3, err := o.Optimize(ctx, []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if s3.PlanCacheHit {
		t.Fatal("plan cache served a pre-mutation plan after the corpus changed")
	}
	if c.LayerStats()["selectivity"].Misses <= selMissesBefore {
		t.Fatal("selectivity estimates were not recomputed for the mutated corpus")
	}
	if sig := o.ParsedSignature("SELECT COUNT(*) FROM questions"); sig == sigBefore {
		t.Fatal("ParsedSignature unchanged across a corpus mutation")
	}

	// Cardinalities reflect the new corpus size: the structured filter
	// samples the same views distribution over 1.5x the documents, so
	// its estimate must grow (and stay within the new |docs| bound).
	cardOf := func(p *core.Plan) int {
		for _, n := range p.Nodes {
			if n.Args["Condition"] != "" && n.EstCard > 0 {
				return n.EstCard
			}
		}
		t.Fatal("no filter node with an estimated cardinality")
		return 0
	}
	before, after := cardOf(p1), cardOf(p3)
	if after <= before {
		t.Fatalf("filter EstCard %d after ingest, want > pre-ingest %d", after, before)
	}
	if after > store.Len() {
		t.Fatalf("EstCard %d exceeds the mutated corpus size %d", after, store.Len())
	}
	_ = s1
}
