package optimizer

import (
	"context"
	"strings"
	"testing"

	"unify/internal/core"
	"unify/internal/corpus"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/ops"
	"unify/internal/sce"
)

func setup(t *testing.T, n int) (*Optimizer, *docstore.Store) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise = 0
	client := llm.NewSim(cfg)
	est := sce.NewEstimator(store, client, 8)
	if err := est.Train(context.Background(), []string{"related to football", "related to injury"}, 16); err != nil {
		t.Fatal(err)
	}
	return New(store, est, cost.NewCalibrator(16), 4), store
}

// filterCountPlan builds Filter(sem) -> Filter(exact) -> Count manually.
func filterCountPlan() *core.Plan {
	return &core.Plan{Query: "test", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Args: ops.Args{"Entity": "questions", "Condition": "related to golf"},
			Inputs: []string{"dataset"}, OutVar: "v1", Desc: "golf questions"},
		{ID: 1, Op: "Filter", Args: ops.Args{"Entity": "{v1}", "Condition": "with more than 500 views"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}, Desc: "golf questions with views"},
		{ID: 2, Op: "Count", Args: ops.Args{"Entity": "{v2}"},
			Inputs: []string{"{v2}"}, OutVar: "v3", Deps: []int{1}},
	}}
}

func TestFilterReordering(t *testing.T) {
	o, _ := setup(t, 600)
	plan, stats, err := o.Optimize(context.Background(), []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	// The free structured views-filter must run before the semantic one.
	c0, _ := plan.Nodes[0].Args["Condition"]
	if !strings.Contains(c0, "views") {
		t.Errorf("structured filter not first: node0 condition %q\n%s", c0, plan)
	}
	if stats.EstimatedCost <= 0 {
		t.Error("no estimated plan cost")
	}
}

func TestPhysicalSelection(t *testing.T) {
	o, _ := setup(t, 600)
	plan, _, err := o.Optimize(context.Background(), []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plan.Nodes {
		if n.Phys == "" {
			t.Errorf("node %d has no physical implementation", n.ID)
		}
		cond := n.Args.Get("Condition")
		if n.Op == "Filter" && strings.Contains(cond, "views") && n.Phys != "ExactFilter" {
			t.Errorf("structured filter got %s", n.Phys)
		}
		if n.Op == "Count" && n.Phys != "PreCount" {
			t.Errorf("count got %s, want PreCount", n.Phys)
		}
	}
}

func TestRuleModeRespectsSemanticRequirements(t *testing.T) {
	o, _ := setup(t, 400)
	o.Mode = Rule
	plan, _, err := o.Optimize(context.Background(), []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range plan.Nodes {
		if n.Op != "Filter" {
			continue
		}
		cond := n.Args.Get("Condition")
		if strings.Contains(cond, "golf") {
			// A semantic condition must never get a pre-programmed exact
			// or keyword implementation.
			if n.Phys == "ExactFilter" || n.Phys == "KeywordFilter" {
				t.Errorf("rule mode picked %s for a semantic condition", n.Phys)
			}
		}
	}
	// Rule mode must not enable index scans (it does no cost-based work).
	for _, n := range plan.Nodes {
		if _, ok := n.Args["_scanK"]; ok {
			t.Errorf("rule mode set _scanK on node %d", n.ID)
		}
	}
}

func TestIndexFilterChosenForSelectiveCondition(t *testing.T) {
	o, _ := setup(t, 1500)
	// A rare category: the estimate should be far below the corpus size,
	// making the index-assisted filter cheaper than a full scan.
	plan := &core.Plan{Query: "t", Nodes: []*core.Node{
		{ID: 0, Op: "Filter", Args: ops.Args{"Entity": "questions", "Condition": "related to fencing"},
			Inputs: []string{"dataset"}, OutVar: "v1"},
		{ID: 1, Op: "Count", Args: ops.Args{"Entity": "{v1}"},
			Inputs: []string{"{v1}"}, OutVar: "v2", Deps: []int{0}},
	}}
	out, _, err := o.Optimize(context.Background(), []*core.Plan{plan})
	if err != nil {
		t.Fatal(err)
	}
	if out.Nodes[0].Phys != "IndexFilter" {
		t.Errorf("selective semantic scan got %s, want IndexFilter\n%s", out.Nodes[0].Phys, out)
	}
	if _, ok := out.Nodes[0].Args.Int("_scanK"); !ok {
		t.Error("IndexFilter chosen without _scanK")
	}
}

func TestPlanSelectionPrefersCheaper(t *testing.T) {
	o, _ := setup(t, 600)
	// Two logically equivalent plans; the second starts with the free
	// structured filter and must win under the cost model... both get
	// reordered identically, so instead compare a plan with a needless
	// full-corpus semantic group-by against the plain one.
	cheap := filterCountPlan()
	expensive := filterCountPlan()
	expensive.Nodes = append(expensive.Nodes, &core.Node{
		ID: 3, Op: "GroupBy", Args: ops.Args{"Entity": "dataset", "Attribute": "sport"},
		Inputs: []string{"dataset"}, OutVar: "v4",
	})
	chosen, _, err := o.Optimize(context.Background(), []*core.Plan{expensive, cheap})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen.Nodes) != len(cheap.Nodes) {
		t.Errorf("optimizer picked the expensive plan (%d nodes)", len(chosen.Nodes))
	}
}

func TestGroundTruthMode(t *testing.T) {
	o, _ := setup(t, 400)
	o.Mode = GroundTruth
	plan, _, err := o.Optimize(context.Background(), []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	// Ground-truth cardinalities should be close to reality.
	var filterNode *core.Node
	for _, n := range plan.Nodes {
		if n.Op == "Filter" && strings.Contains(n.Args.Get("Condition"), "golf") {
			filterNode = n
		}
	}
	if filterNode == nil {
		t.Fatal("golf filter missing")
	}
	if filterNode.EstCard <= 0 {
		t.Errorf("EstCard = %d", filterNode.EstCard)
	}
}

func TestNoPlansError(t *testing.T) {
	o, _ := setup(t, 100)
	if _, _, err := o.Optimize(context.Background(), nil); err == nil {
		t.Error("empty plan list accepted")
	}
}

// TestTokenObjective exercises the footnote-1 extension: plan selection
// by total generated tokens instead of makespan. A sequential plan with
// fewer LLM-touched documents must win even if wall time would prefer
// otherwise.
func TestTokenObjective(t *testing.T) {
	o, _ := setup(t, 600)
	o.Objective = MinTokens
	plan, stats, err := o.Optimize(context.Background(), []*core.Plan{filterCountPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EstimatedCost <= 0 {
		t.Error("token objective produced no cost")
	}
	// The structured filter must still be ordered first: fewer documents
	// reach the paid semantic filter, minimizing tokens.
	if !strings.Contains(plan.Nodes[0].Args.Get("Condition"), "views") {
		t.Errorf("token objective did not order the free filter first:\n%s", plan)
	}
}
