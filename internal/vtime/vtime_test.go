package vtime

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func u(ms int) Unit { return Unit{Dur: time.Duration(ms) * time.Millisecond, Resource: ResourceLLM} }

func TestSingleTask(t *testing.T) {
	s := NewSchedule(4)
	res, err := s.Run([]Task{{ID: "a", Units: []Unit{u(100)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100*time.Millisecond {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestParallelUnitsLimitedBySlots(t *testing.T) {
	// 8 units of 100ms on 4 slots -> 200ms.
	units := make([]Unit, 8)
	for i := range units {
		units[i] = u(100)
	}
	res, err := NewSchedule(4).Run([]Task{{ID: "a", Units: units}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 200*time.Millisecond {
		t.Errorf("makespan = %v, want 200ms", res.Makespan)
	}
}

func TestSequentialTask(t *testing.T) {
	units := make([]Unit, 4)
	for i := range units {
		units[i] = u(50)
	}
	res, err := NewSchedule(4).Run([]Task{{ID: "a", Units: units, Sequential: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 200*time.Millisecond {
		t.Errorf("sequential makespan = %v, want 200ms", res.Makespan)
	}
}

func TestDependencyChain(t *testing.T) {
	tasks := []Task{
		{ID: "a", Units: []Unit{u(100)}},
		{ID: "b", Deps: []string{"a"}, Units: []Unit{u(100)}},
		{ID: "c", Deps: []string{"b"}, Units: []Unit{u(100)}},
	}
	res, err := NewSchedule(4).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 300*time.Millisecond {
		t.Errorf("chain makespan = %v, want 300ms", res.Makespan)
	}
	if res.Finish["a"] != 100*time.Millisecond || res.Finish["c"] != 300*time.Millisecond {
		t.Errorf("finish times %v", res.Finish)
	}
}

// TestDiamondParallelism: two independent branches overlap; the makespan
// is the critical path, not the sum.
func TestDiamondParallelism(t *testing.T) {
	tasks := []Task{
		{ID: "src", Units: []Unit{u(50)}},
		{ID: "left", Deps: []string{"src"}, Units: []Unit{u(200)}},
		{ID: "right", Deps: []string{"src"}, Units: []Unit{u(150)}},
		{ID: "sink", Deps: []string{"left", "right"}, Units: []Unit{u(50)}},
	}
	res, err := NewSchedule(4).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	want := 300 * time.Millisecond // 50 + max(200,150) + 50
	if res.Makespan != want {
		t.Errorf("diamond makespan = %v, want %v", res.Makespan, want)
	}
	if ser := Serial(tasks); ser != 450*time.Millisecond {
		t.Errorf("serial = %v, want 450ms", ser)
	}
}

func TestSlotContentionAcrossTasks(t *testing.T) {
	// Two independent tasks of 4x100ms units on 2 slots: 8 units total,
	// 2 at a time -> 400ms.
	mk := func(id string) Task {
		return Task{ID: id, Units: []Unit{u(100), u(100), u(100), u(100)}}
	}
	res, err := NewSchedule(2).Run([]Task{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 400*time.Millisecond {
		t.Errorf("contended makespan = %v, want 400ms", res.Makespan)
	}
}

func TestUnlimitedResource(t *testing.T) {
	units := make([]Unit, 16)
	for i := range units {
		units[i] = Unit{Dur: 100 * time.Millisecond} // no resource: unlimited
	}
	res, err := NewSchedule(1).Run([]Task{{ID: "cpu", Units: units}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100*time.Millisecond {
		t.Errorf("unlimited-resource makespan = %v, want 100ms", res.Makespan)
	}
}

func TestZeroUnitTasks(t *testing.T) {
	tasks := []Task{
		{ID: "a"},
		{ID: "b", Deps: []string{"a"}, Units: []Unit{u(100)}},
	}
	res, err := NewSchedule(1).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100*time.Millisecond {
		t.Errorf("makespan = %v", res.Makespan)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewSchedule(1).Run([]Task{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := NewSchedule(1).Run([]Task{{ID: "a", Deps: []string{"ghost"}}}); err == nil {
		t.Error("unknown dependency accepted")
	}
	cyc := []Task{
		{ID: "a", Deps: []string{"b"}, Units: []Unit{u(10)}},
		{ID: "b", Deps: []string{"a"}, Units: []Unit{u(10)}},
	}
	if _, err := NewSchedule(1).Run(cyc); err == nil {
		t.Error("cycle accepted")
	}
}

func TestBusyAccounting(t *testing.T) {
	res, err := NewSchedule(2).Run([]Task{{ID: "a", Units: []Unit{u(100), u(50)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Busy[ResourceLLM] != 150*time.Millisecond {
		t.Errorf("busy = %v, want 150ms", res.Busy[ResourceLLM])
	}
}

func TestDeterminism(t *testing.T) {
	tasks := []Task{
		{ID: "a", Units: []Unit{u(30), u(70), u(20)}},
		{ID: "b", Units: []Unit{u(40), u(10)}},
		{ID: "c", Deps: []string{"a", "b"}, Units: []Unit{u(25)}},
	}
	r1, err1 := NewSchedule(2).Run(tasks)
	r2, err2 := NewSchedule(2).Run(tasks)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Makespan != r2.Makespan {
		t.Errorf("non-deterministic: %v vs %v", r1.Makespan, r2.Makespan)
	}
}

// TestSchedulingInvariants property-tests the scheduler: for random task
// graphs, the makespan is bounded below by both the critical path and
// busy-time/slots, and above by the total serial time.
func TestSchedulingInvariants(t *testing.T) {
	f := func(seed uint8, nTasks uint8, slots uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := int(nTasks)%8 + 2
		cap := int(slots)%4 + 1
		tasks := make([]Task, n)
		var totalBusy time.Duration
		for i := range tasks {
			nu := rng.Intn(4) + 1
			units := make([]Unit, nu)
			for j := range units {
				d := time.Duration(rng.Intn(90)+10) * time.Millisecond
				units[j] = Unit{Dur: d, Resource: ResourceLLM}
				totalBusy += d
			}
			tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Units: units, Sequential: rng.Intn(2) == 0}
			// Random backward dependencies keep the graph acyclic.
			for j := 0; j < i; j++ {
				if rng.Intn(4) == 0 {
					tasks[i].Deps = append(tasks[i].Deps, fmt.Sprintf("t%d", j))
				}
			}
		}
		res, err := NewSchedule(cap).Run(tasks)
		if err != nil {
			return false
		}
		serial := Serial(tasks)
		lower := totalBusy / time.Duration(cap)
		if res.Makespan > serial {
			t.Logf("makespan %v above serial %v", res.Makespan, serial)
			return false
		}
		if res.Makespan < lower {
			t.Logf("makespan %v below busy/slots %v", res.Makespan, lower)
			return false
		}
		if res.Busy[ResourceLLM] != totalBusy {
			return false
		}
		// Every task finishes after all its dependencies.
		for _, task := range tasks {
			for _, d := range task.Deps {
				if res.Finish[task.ID] < res.Finish[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestSerialOperatorsNotBelowDAG: operator-serial execution can never
// beat the DAG schedule.
func TestSerialOperatorsNotBelowDAG(t *testing.T) {
	tasks := []Task{
		{ID: "a", Units: []Unit{u(100), u(100)}},
		{ID: "b", Units: []Unit{u(150)}},
		{ID: "c", Deps: []string{"a", "b"}, Units: []Unit{u(50)}},
	}
	s := NewSchedule(4)
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := s.SerialOperators(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if ser < res.Makespan {
		t.Errorf("serial %v below DAG %v", ser, res.Makespan)
	}
}
