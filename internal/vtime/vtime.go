// Package vtime computes simulated wall-clock latency for plan executions.
//
// The paper evaluates end-to-end latency on a server hosting 4 local LLM
// instances; LLM call time dominates and is proportional to output tokens.
// Rather than sleeping, this reproduction records every LLM call and every
// pre-programmed computation as work units, then list-schedules them on a
// model of the machine: a slot-limited "llm" resource pool plus an
// unlimited CPU resource. The resulting makespan is the simulated latency.
// Deterministic tie-breaking makes latencies reproducible bit-for-bit.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Unit is one indivisible piece of work: a single LLM invocation (possibly
// covering a batched prompt) or a block of programmed computation.
type Unit struct {
	Dur      time.Duration
	Resource string // "" means unlimited (CPU-style) resource

	// Batch carries the unit's continuous-batching cost decomposition.
	// Nil units never coalesce. Ignored unless the schedule has a
	// BatchPolicy.
	Batch *BatchSpec
}

// BatchSpec decomposes a batchable LLM call's duration into the parts
// the continuous-batching cost model combines. The parts sum to the
// unit's Dur, so a batch of one costs exactly the unbatched duration.
type BatchSpec struct {
	// Key is the co-scheduling compatibility key (task family + model +
	// prompt template). Only units with equal keys on the same resource
	// may share an invocation.
	Key string
	// Base is the fixed per-invocation overhead — paid once per batch.
	Base time.Duration
	// Decode is the output-token generation time. A batch decodes its
	// members near-concurrently: it pays the largest member's Decode,
	// inflated by BatchDecodeSlowdown per extra member.
	Decode time.Duration
	// TemplatePrefill is the prefill cost of the shared prompt template
	// (directive + field scaffold) — paid once per batch, at the largest
	// member's size.
	TemplatePrefill time.Duration
	// PayloadPrefill is the prefill cost of the member's own document
	// payload — paid once per distinct payload (see PayloadKey).
	PayloadPrefill time.Duration
	// PayloadKey identifies the member's document payload. Members of
	// one batch with equal non-empty keys scan the same documents
	// (different queries over the same corpus chunk), so the batch
	// prefills that payload once and they share the charge. An empty key
	// means the payload is unique: it is always charged in full.
	PayloadKey string
}

// BatchDecodeSlowdown is the decode-bandwidth interference of continuous
// batching: a k-member batch's decode phase takes the largest member's
// decode time scaled by 1 + BatchDecodeSlowdown·(k−1), modeling the
// shared GPU's per-token throughput dropping as the batch widens (versus
// k× for fully serialized decoding).
const BatchDecodeSlowdown = 0.15

// BatchPolicy enables cross-query continuous batching in Run and sets
// its knobs. A nil policy (the default) disables coalescing entirely;
// the schedule is then byte-identical to the pre-batching scheduler.
type BatchPolicy struct {
	// Window is the virtual-time hold-the-door interval: when a slot is
	// granted to a batchable unit at time g, compatible units becoming
	// ready in (g, g+Window] may join, and the batch starts at the
	// latest member's ready time (never later than g+Window).
	Window time.Duration
	// FairnessCap bounds a multi-member batch's duration (unless the
	// leader's own solo duration already exceeds it), so one heavy
	// scan's chunks cannot grow batches that monopolize a slot and
	// starve light queries queued behind it. 0 means uncapped.
	FairnessCap time.Duration
	// MaxBatch bounds the member count of one invocation. 0 means 1
	// (no coalescing).
	MaxBatch int
}

// BatchGrant records one slot grant of a batchable unit: the invocation
// that occupied the slot and every member call folded into it. Grants
// with a single member ran unbatched at exactly their solo duration.
type BatchGrant struct {
	Resource string
	Key      string
	// GrantAt is the instant the slot was granted to the leader;
	// Start is the batch's actual start after hold-the-door deferral
	// (Start − GrantAt ≤ the policy window); Dur is the batched
	// invocation's total duration.
	GrantAt time.Duration
	Start   time.Duration
	Dur     time.Duration
	// Members lists the coalesced calls, leader first. Jobs are
	// pairwise distinct: batching is cross-query only.
	Members []BatchMember
}

// BatchMember is one call inside a batched invocation.
type BatchMember struct {
	Task string
	Job  int
	// Ready is when the unit became eligible; Wait = Start − Ready is
	// its slot-grant delay; Solo is its unbatched duration; Share is
	// its attributed slice of the batch duration (shares sum exactly
	// to the grant's Dur).
	Ready time.Duration
	Wait  time.Duration
	Solo  time.Duration
	Share time.Duration
}

// Task is a schedulable node: typically one physical operator execution.
// Units of a task may run concurrently unless Sequential is set. A task
// becomes ready when all its dependencies have fully completed.
type Task struct {
	ID         string
	Deps       []string
	Units      []Unit
	Sequential bool // units must run one after another (chained prompts)

	// Job identifies the owning query in a multi-query schedule. Tasks of
	// one job form a per-query FIFO; when units of different jobs become
	// ready at the same instant, slot grants round-robin across jobs (the
	// unit that has had the fewest earlier grants in its own job wins).
	// Single-job schedules (all zero) behave exactly as before.
	Job int
	// Priority breaks ready-time ties before the fair queue: units of a
	// higher-priority job are granted first.
	Priority int
}

// Schedule is a machine model: capacity per named resource. Resources not
// present are treated as unlimited.
type Schedule struct {
	Capacity map[string]int

	// Batching, when non-nil, lets compatible units of DIFFERENT jobs
	// coalesce into one slot grant (continuous batching). Formation is a
	// pure function of the task graph and the deterministic grant order,
	// so batched schedules replay bit-for-bit.
	Batching *BatchPolicy
}

// NewSchedule returns a machine model with the given number of LLM slots.
func NewSchedule(llmSlots int) *Schedule {
	if llmSlots < 1 {
		llmSlots = 1
	}
	return &Schedule{Capacity: map[string]int{ResourceLLM: llmSlots}}
}

// ResourceLLM is the canonical resource name for LLM server slots.
const ResourceLLM = "llm"

// MachineResource names the LLM slot resource of one machine in a
// simulated cluster. Machine 0 keeps the canonical "llm" name, so a
// one-machine cluster is byte-identical to the single-machine model.
func MachineResource(m int) string {
	if m <= 0 {
		return ResourceLLM
	}
	return fmt.Sprintf("llm@%d", m)
}

// NewCluster returns a machine model for an M-machine cluster: each
// machine contributes slotsPer LLM slots as its own limited resource,
// all sharing one virtual clock. NewCluster(1, s) is NewSchedule(s).
func NewCluster(machines, slotsPer int) *Schedule {
	if machines < 1 {
		machines = 1
	}
	if slotsPer < 1 {
		slotsPer = 1
	}
	cap := make(map[string]int, machines)
	for m := 0; m < machines; m++ {
		cap[MachineResource(m)] = slotsPer
	}
	return &Schedule{Capacity: cap}
}

// MachineOf reports which cluster machine a resource name belongs to
// (false for unlimited CPU-style resources).
func MachineOf(resource string) (int, bool) {
	if resource == ResourceLLM {
		return 0, true
	}
	if strings.HasPrefix(resource, "llm@") {
		if m, err := strconv.Atoi(resource[len("llm@"):]); err == nil && m > 0 {
			return m, true
		}
	}
	return 0, false
}

// Result reports the outcome of scheduling a task graph.
type Result struct {
	Makespan time.Duration
	// Finish maps task ID to its completion time.
	Finish map[string]time.Duration
	// Busy maps resource name to total busy time across slots.
	Busy map[string]time.Duration

	// JobBusy, JobWait, JobGrants, and JobEnd break the schedule down per
	// job for multi-query runs: slot busy time, total slot-grant delay
	// (grant start minus unit ready) on limited resources, number of slot
	// grants, and last task completion.
	JobBusy   map[int]time.Duration
	JobWait   map[int]time.Duration
	JobGrants map[int]int
	JobEnd    map[int]time.Duration

	// TaskWait breaks the slot-grant delay down per task, attributing
	// contention to individual operators (sums to the JobWait totals).
	TaskWait map[string]time.Duration

	// JobResBusy breaks each job's slot busy time down per limited
	// resource (machine), attributing a batched invocation's duration to
	// its members by solo-duration-weighted shares.
	JobResBusy map[int]map[string]time.Duration

	// SlotFree reports, per limited resource, the time each slot becomes
	// free after the schedule (ascending). Unlimited resources are absent.
	SlotFree map[string][]time.Duration

	// Batches records every slot grant of a batchable unit (including
	// single-member grants) in grant order. Empty without a BatchPolicy.
	Batches []BatchGrant
}

type pendingUnit struct {
	taskIdx int
	unitIdx int
	ready   time.Duration // earliest start
	prio    int           // job priority (higher first)
	jseq    int           // per-job tie-break sequence (FIFO within a job)
	job     int           // owning job (round-robin across jobs on ties)
}

// unitLess is the deterministic grant order: earliest ready first, then
// higher priority, then per-job FIFO sequence, then job index. The heap
// and batch-candidate selection share it so batch composition follows
// exactly the order units would have been granted solo.
func unitLess(a, b pendingUnit) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	if a.jseq != b.jseq {
		return a.jseq < b.jseq
	}
	return a.job < b.job
}

type unitHeap []pendingUnit

func (h unitHeap) Len() int            { return len(h) }
func (h unitHeap) Less(i, j int) bool  { return unitLess(h[i], h[j]) }
func (h unitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x interface{}) { *h = append(*h, x.(pendingUnit)) }
func (h *unitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run schedules the task graph and returns its makespan. It returns an
// error on unknown dependencies or dependency cycles.
func (s *Schedule) Run(tasks []Task) (Result, error) {
	idx := make(map[string]int, len(tasks))
	for i, t := range tasks {
		if _, dup := idx[t.ID]; dup {
			return Result{}, fmt.Errorf("vtime: duplicate task %q", t.ID)
		}
		idx[t.ID] = i
	}
	indeg := make([]int, len(tasks))
	succ := make([][]int, len(tasks))
	for i, t := range tasks {
		for _, d := range t.Deps {
			j, ok := idx[d]
			if !ok {
				return Result{}, fmt.Errorf("vtime: task %q depends on unknown task %q", t.ID, d)
			}
			indeg[i]++
			succ[j] = append(succ[j], i)
		}
	}

	// State per task.
	remaining := make([]int, len(tasks)) // unfinished units
	nextUnit := make([]int, len(tasks))  // for sequential tasks
	taskReady := make([]time.Duration, len(tasks))
	finish := make([]time.Duration, len(tasks))
	started := make([]bool, len(tasks))
	for i, t := range tasks {
		remaining[i] = len(t.Units)
	}

	// Resource state: per resource, a min-heap of slot free times.
	free := map[string]*durHeap{}
	slotHeap := func(res string) *durHeap {
		h, ok := free[res]
		if !ok {
			cap, limited := s.Capacity[res]
			if !limited {
				return nil // unlimited
			}
			hh := make(durHeap, cap)
			h = &hh
			heap.Init(h)
			free[res] = h
		}
		return h
	}

	pend := &unitHeap{}
	seqs := map[int]int{} // per-job FIFO sequence counters
	enqueueTask := func(i int, at time.Duration) {
		started[i] = true
		taskReady[i] = at
		t := &tasks[i]
		if len(t.Units) == 0 {
			return // completed immediately; handled by caller
		}
		if t.Sequential {
			heap.Push(pend, pendingUnit{i, 0, at, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
			nextUnit[i] = 0
			return
		}
		for u := range t.Units {
			heap.Push(pend, pendingUnit{i, u, at, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
		}
	}

	busy := map[string]time.Duration{}
	res := Result{
		Finish:     make(map[string]time.Duration, len(tasks)),
		Busy:       busy,
		JobBusy:    map[int]time.Duration{},
		JobWait:    map[int]time.Duration{},
		JobGrants:  map[int]int{},
		JobEnd:     map[int]time.Duration{},
		TaskWait:   map[string]time.Duration{},
		JobResBusy: map[int]map[string]time.Duration{},
	}
	jobResBusy := func(job int, resName string, d time.Duration) {
		m := res.JobResBusy[job]
		if m == nil {
			m = map[string]time.Duration{}
			res.JobResBusy[job] = m
		}
		m[resName] += d
	}

	// completeTask marks a task finished at time t and releases successors.
	var completeTask func(i int, t time.Duration)
	completeTask = func(i int, t time.Duration) {
		started[i] = true
		finish[i] = t
		res.Finish[tasks[i].ID] = t
		if t > res.Makespan {
			res.Makespan = t
		}
		if t > res.JobEnd[tasks[i].Job] {
			res.JobEnd[tasks[i].Job] = t
		}
		for _, nxt := range succ[i] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				// Ready time is the max finish of all deps.
				at := time.Duration(0)
				for _, d := range tasks[nxt].Deps {
					if f := finish[idx[d]]; f > at {
						at = f
					}
				}
				if remaining[nxt] == 0 {
					completeTask(nxt, at)
				} else {
					enqueueTask(nxt, at)
				}
			}
		}
	}

	// Seed roots deterministically in declaration order. Tasks already
	// released by a zero-unit root's completion are skipped.
	for i := range tasks {
		if indeg[i] == 0 && !started[i] {
			if remaining[i] == 0 {
				completeTask(i, 0)
			} else {
				enqueueTask(i, 0)
			}
		}
	}

	scheduled := 0
	total := 0
	for i := range tasks {
		total += len(tasks[i].Units)
	}

	for pend.Len() > 0 {
		pu := heap.Pop(pend).(pendingUnit)
		t := &tasks[pu.taskIdx]
		u := t.Units[pu.unitIdx]
		start := pu.ready
		h := slotHeap(u.Resource)
		if h != nil {
			slotFree := heap.Pop(h).(time.Duration)
			if slotFree > start {
				start = slotFree
			}
		}

		if h != nil && s.Batching != nil && u.Batch != nil && u.Batch.Key != "" {
			// Continuous batching: this slot grant may absorb compatible
			// pending units of other jobs. The helper pushes the slot's
			// next free time and performs all accounting for the members.
			s.grantBatch(pu, u, start, h, pend, tasks, seqs, remaining, finish, busy, &res, jobResBusy, completeTask, &scheduled)
			continue
		}

		end := start + u.Dur
		if h != nil {
			heap.Push(h, end)
			busy[u.Resource] += u.Dur
			res.JobBusy[t.Job] += u.Dur
			jobResBusy(t.Job, u.Resource, u.Dur)
			res.JobWait[t.Job] += start - pu.ready
			res.TaskWait[t.ID] += start - pu.ready
			res.JobGrants[t.Job]++
		}
		scheduled++
		remaining[pu.taskIdx]--
		if t.Sequential && pu.unitIdx+1 < len(t.Units) {
			heap.Push(pend, pendingUnit{pu.taskIdx, pu.unitIdx + 1, end, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
		}
		if end > finish[pu.taskIdx] {
			finish[pu.taskIdx] = end
		}
		if remaining[pu.taskIdx] == 0 {
			completeTask(pu.taskIdx, finish[pu.taskIdx])
		}
	}

	if scheduled != total {
		// Some tasks never became ready: there is a dependency cycle.
		var stuck []string
		for i := range tasks {
			if !started[i] && remaining[i] > 0 {
				stuck = append(stuck, tasks[i].ID)
			}
		}
		sort.Strings(stuck)
		return Result{}, fmt.Errorf("vtime: dependency cycle involving %v", stuck)
	}
	res.SlotFree = map[string][]time.Duration{}
	for name, h := range free {
		times := append([]time.Duration(nil), (*h)...)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		res.SlotFree[name] = times
	}
	return res, nil
}

// batchedDur is the continuous-batching cost model: a k-member batch
// pays the largest member's base and template prefill once, each
// distinct payload's prefill once (sumPayload — members sharing a
// PayloadKey share the charge), and the largest member's decode inflated
// by BatchDecodeSlowdown per extra member.
func batchedDur(maxBase, maxTmpl, maxDecode, sumPayload time.Duration, k int) time.Duration {
	scaled := time.Duration(float64(maxDecode) * (1 + BatchDecodeSlowdown*float64(k-1)))
	return maxBase + maxTmpl + sumPayload + scaled
}

// payloadCharge returns the payload prefill a joining member adds to a
// batch whose per-key payload maxima are in groups. A member whose
// PayloadKey another member already brought charges only its excess over
// the largest same-key payload (zero for the identical payloads the key
// guarantees in practice); unique and keyless payloads charge in full.
func payloadCharge(groups map[string]time.Duration, sp *BatchSpec) time.Duration {
	if sp.PayloadKey == "" {
		return sp.PayloadPrefill
	}
	if prev, ok := groups[sp.PayloadKey]; ok {
		if sp.PayloadPrefill > prev {
			return sp.PayloadPrefill - prev
		}
		return 0
	}
	return sp.PayloadPrefill
}

// payloadCommit records a member's payload in groups after it joins.
func payloadCommit(groups map[string]time.Duration, sp *BatchSpec) {
	if sp.PayloadKey == "" {
		return
	}
	if prev, ok := groups[sp.PayloadKey]; !ok || sp.PayloadPrefill > prev {
		groups[sp.PayloadKey] = sp.PayloadPrefill
	}
}

// grantBatch handles one slot grant of a batchable unit under a
// BatchPolicy: it selects co-schedulable pending units of other jobs
// (same key and resource, ready within the hold-the-door window, taken
// in the deterministic grant order), removes them from the pending
// queue, and schedules the whole batch as a single invocation. grantAt
// is the instant the slot was granted to the leader (slot free time
// already applied). Selection is greedy with two guards: a member joins
// only if it strictly shrinks total busy time versus running solo, and
// only while the batch duration respects the fairness cap.
func (s *Schedule) grantBatch(
	pu pendingUnit, u Unit, grantAt time.Duration, h *durHeap,
	pend *unitHeap, tasks []Task, seqs map[int]int,
	remaining []int, finish []time.Duration,
	busy map[string]time.Duration, res *Result,
	jobResBusy func(int, string, time.Duration),
	completeTask func(int, time.Duration), scheduled *int,
) {
	p := s.Batching
	maxMembers := p.MaxBatch
	if maxMembers < 1 {
		maxMembers = 1
	}
	type memberRef struct {
		pu   pendingUnit
		unit Unit
	}
	members := []memberRef{{pu, u}}
	jobsIn := map[int]bool{tasks[pu.taskIdx].Job: true}
	maxBase, maxTmpl, maxDecode := u.Batch.Base, u.Batch.TemplatePrefill, u.Batch.Decode
	sumPayload := u.Batch.PayloadPrefill
	payloads := map[string]time.Duration{}
	payloadCommit(payloads, u.Batch)
	// The fairness cap never undercuts the leader's own solo duration:
	// a call too big to fit the cap alone still has to run.
	capLimit := p.FairnessCap
	if capLimit > 0 && u.Dur > capLimit {
		capLimit = u.Dur
	}

	if maxMembers > 1 {
		windowEnd := grantAt + p.Window
		var cands []pendingUnit
		for _, c := range *pend {
			cu := tasks[c.taskIdx].Units[c.unitIdx]
			if cu.Batch == nil || cu.Batch.Key != u.Batch.Key || cu.Resource != u.Resource {
				continue
			}
			if c.ready > windowEnd || jobsIn[c.job] {
				continue
			}
			cands = append(cands, c)
		}
		sort.Slice(cands, func(i, j int) bool { return unitLess(cands[i], cands[j]) })
		taken := make(map[[2]int]bool)
		for _, c := range cands {
			if len(members) >= maxMembers {
				break
			}
			if jobsIn[c.job] { // one unit per job: cross-query batching only
				continue
			}
			cu := tasks[c.taskIdx].Units[c.unitIdx]
			nb, nt, nd := maxBase, maxTmpl, maxDecode
			if cu.Batch.Base > nb {
				nb = cu.Batch.Base
			}
			if cu.Batch.TemplatePrefill > nt {
				nt = cu.Batch.TemplatePrefill
			}
			if cu.Batch.Decode > nd {
				nd = cu.Batch.Decode
			}
			np := sumPayload + payloadCharge(payloads, cu.Batch)
			newD := batchedDur(nb, nt, nd, np, len(members)+1)
			if newD-batchedDur(maxBase, maxTmpl, maxDecode, sumPayload, len(members)) >= cu.Dur {
				continue // joining would not shrink total busy time
			}
			if capLimit > 0 && newD > capLimit {
				continue
			}
			maxBase, maxTmpl, maxDecode, sumPayload = nb, nt, nd, np
			payloadCommit(payloads, cu.Batch)
			members = append(members, memberRef{c, cu})
			jobsIn[c.job] = true
			taken[[2]int{c.taskIdx, c.unitIdx}] = true
		}
		if len(taken) > 0 {
			kept := (*pend)[:0]
			for _, c := range *pend {
				if !taken[[2]int{c.taskIdx, c.unitIdx}] {
					kept = append(kept, c)
				}
			}
			*pend = kept
			heap.Init(pend)
		}
	}

	// Hold the door: the batch starts once its latest member is ready
	// (bounded by grantAt + Window through candidate eligibility).
	bstart := grantAt
	for _, m := range members {
		if m.pu.ready > bstart {
			bstart = m.pu.ready
		}
	}
	D := batchedDur(maxBase, maxTmpl, maxDecode, sumPayload, len(members))
	if len(members) == 1 {
		// A batch of one costs exactly the unbatched duration even if
		// the spec's parts carry rounding drift.
		D = u.Dur
	}
	end := bstart + D
	heap.Push(h, end)
	busy[u.Resource] += D

	// Attribute the invocation to members by solo-duration-weighted
	// shares; the rounding residue lands on the leader so the shares sum
	// exactly to D (conservation invariant).
	var wsum time.Duration
	for _, m := range members {
		wsum += m.unit.Dur
	}
	shares := make([]time.Duration, len(members))
	var ssum time.Duration
	for i, m := range members {
		if wsum > 0 {
			shares[i] = time.Duration(float64(D) * float64(m.unit.Dur) / float64(wsum))
		}
		ssum += shares[i]
	}
	shares[0] += D - ssum

	grant := BatchGrant{Resource: u.Resource, Key: u.Batch.Key, GrantAt: grantAt, Start: bstart, Dur: D}
	for i, m := range members {
		mt := &tasks[m.pu.taskIdx]
		wait := bstart - m.pu.ready
		res.JobBusy[mt.Job] += shares[i]
		jobResBusy(mt.Job, u.Resource, shares[i])
		res.JobWait[mt.Job] += wait
		res.TaskWait[mt.ID] += wait
		res.JobGrants[mt.Job]++
		grant.Members = append(grant.Members, BatchMember{
			Task: mt.ID, Job: mt.Job, Ready: m.pu.ready, Wait: wait, Solo: m.unit.Dur, Share: shares[i],
		})
		*scheduled++
		remaining[m.pu.taskIdx]--
		if mt.Sequential && m.pu.unitIdx+1 < len(mt.Units) {
			heap.Push(pend, pendingUnit{m.pu.taskIdx, m.pu.unitIdx + 1, end, mt.Priority, seqs[mt.Job], mt.Job})
			seqs[mt.Job]++
		}
		if end > finish[m.pu.taskIdx] {
			finish[m.pu.taskIdx] = end
		}
		if remaining[m.pu.taskIdx] == 0 {
			completeTask(m.pu.taskIdx, finish[m.pu.taskIdx])
		}
	}
	res.Batches = append(res.Batches, grant)
}

// durHeap is a min-heap of slot-free times.
type durHeap []time.Duration

func (h durHeap) Len() int            { return len(h) }
func (h durHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h durHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *durHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Serial returns the makespan if every unit ran back-to-back on a single
// slot — a lower-level bound used in unit tests.
func Serial(tasks []Task) time.Duration {
	var total time.Duration
	for _, t := range tasks {
		for _, u := range t.Units {
			total += u.Dur
		}
	}
	return total
}

// SerialOperators computes the makespan when OPERATORS run strictly one
// after another (no DAG parallelism) while each operator still batches
// its own calls across the slot pool — the Unify-noLO ablation of
// Figure 5(a).
func (s *Schedule) SerialOperators(tasks []Task) (time.Duration, error) {
	chained := make([]Task, len(tasks))
	for i, t := range tasks {
		c := t
		c.Deps = nil
		if i > 0 {
			c.Deps = []string{tasks[i-1].ID}
		}
		chained[i] = c
	}
	res, err := s.Run(chained)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
