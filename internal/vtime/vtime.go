// Package vtime computes simulated wall-clock latency for plan executions.
//
// The paper evaluates end-to-end latency on a server hosting 4 local LLM
// instances; LLM call time dominates and is proportional to output tokens.
// Rather than sleeping, this reproduction records every LLM call and every
// pre-programmed computation as work units, then list-schedules them on a
// model of the machine: a slot-limited "llm" resource pool plus an
// unlimited CPU resource. The resulting makespan is the simulated latency.
// Deterministic tie-breaking makes latencies reproducible bit-for-bit.
package vtime

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Unit is one indivisible piece of work: a single LLM invocation (possibly
// covering a batched prompt) or a block of programmed computation.
type Unit struct {
	Dur      time.Duration
	Resource string // "" means unlimited (CPU-style) resource
}

// Task is a schedulable node: typically one physical operator execution.
// Units of a task may run concurrently unless Sequential is set. A task
// becomes ready when all its dependencies have fully completed.
type Task struct {
	ID         string
	Deps       []string
	Units      []Unit
	Sequential bool // units must run one after another (chained prompts)

	// Job identifies the owning query in a multi-query schedule. Tasks of
	// one job form a per-query FIFO; when units of different jobs become
	// ready at the same instant, slot grants round-robin across jobs (the
	// unit that has had the fewest earlier grants in its own job wins).
	// Single-job schedules (all zero) behave exactly as before.
	Job int
	// Priority breaks ready-time ties before the fair queue: units of a
	// higher-priority job are granted first.
	Priority int
}

// Schedule is a machine model: capacity per named resource. Resources not
// present are treated as unlimited.
type Schedule struct {
	Capacity map[string]int
}

// NewSchedule returns a machine model with the given number of LLM slots.
func NewSchedule(llmSlots int) *Schedule {
	if llmSlots < 1 {
		llmSlots = 1
	}
	return &Schedule{Capacity: map[string]int{ResourceLLM: llmSlots}}
}

// ResourceLLM is the canonical resource name for LLM server slots.
const ResourceLLM = "llm"

// MachineResource names the LLM slot resource of one machine in a
// simulated cluster. Machine 0 keeps the canonical "llm" name, so a
// one-machine cluster is byte-identical to the single-machine model.
func MachineResource(m int) string {
	if m <= 0 {
		return ResourceLLM
	}
	return fmt.Sprintf("llm@%d", m)
}

// NewCluster returns a machine model for an M-machine cluster: each
// machine contributes slotsPer LLM slots as its own limited resource,
// all sharing one virtual clock. NewCluster(1, s) is NewSchedule(s).
func NewCluster(machines, slotsPer int) *Schedule {
	if machines < 1 {
		machines = 1
	}
	if slotsPer < 1 {
		slotsPer = 1
	}
	cap := make(map[string]int, machines)
	for m := 0; m < machines; m++ {
		cap[MachineResource(m)] = slotsPer
	}
	return &Schedule{Capacity: cap}
}

// MachineOf reports which cluster machine a resource name belongs to
// (false for unlimited CPU-style resources).
func MachineOf(resource string) (int, bool) {
	if resource == ResourceLLM {
		return 0, true
	}
	if strings.HasPrefix(resource, "llm@") {
		if m, err := strconv.Atoi(resource[len("llm@"):]); err == nil && m > 0 {
			return m, true
		}
	}
	return 0, false
}

// Result reports the outcome of scheduling a task graph.
type Result struct {
	Makespan time.Duration
	// Finish maps task ID to its completion time.
	Finish map[string]time.Duration
	// Busy maps resource name to total busy time across slots.
	Busy map[string]time.Duration

	// JobBusy, JobWait, JobGrants, and JobEnd break the schedule down per
	// job for multi-query runs: slot busy time, total slot-grant delay
	// (grant start minus unit ready) on limited resources, number of slot
	// grants, and last task completion.
	JobBusy   map[int]time.Duration
	JobWait   map[int]time.Duration
	JobGrants map[int]int
	JobEnd    map[int]time.Duration

	// TaskWait breaks the slot-grant delay down per task, attributing
	// contention to individual operators (sums to the JobWait totals).
	TaskWait map[string]time.Duration

	// SlotFree reports, per limited resource, the time each slot becomes
	// free after the schedule (ascending). Unlimited resources are absent.
	SlotFree map[string][]time.Duration
}

type pendingUnit struct {
	taskIdx int
	unitIdx int
	ready   time.Duration // earliest start
	prio    int           // job priority (higher first)
	jseq    int           // per-job tie-break sequence (FIFO within a job)
	job     int           // owning job (round-robin across jobs on ties)
}

type unitHeap []pendingUnit

func (h unitHeap) Len() int { return len(h) }
func (h unitHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	if h[i].jseq != h[j].jseq {
		return h[i].jseq < h[j].jseq
	}
	return h[i].job < h[j].job
}
func (h unitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *unitHeap) Push(x interface{}) { *h = append(*h, x.(pendingUnit)) }
func (h *unitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run schedules the task graph and returns its makespan. It returns an
// error on unknown dependencies or dependency cycles.
func (s *Schedule) Run(tasks []Task) (Result, error) {
	idx := make(map[string]int, len(tasks))
	for i, t := range tasks {
		if _, dup := idx[t.ID]; dup {
			return Result{}, fmt.Errorf("vtime: duplicate task %q", t.ID)
		}
		idx[t.ID] = i
	}
	indeg := make([]int, len(tasks))
	succ := make([][]int, len(tasks))
	for i, t := range tasks {
		for _, d := range t.Deps {
			j, ok := idx[d]
			if !ok {
				return Result{}, fmt.Errorf("vtime: task %q depends on unknown task %q", t.ID, d)
			}
			indeg[i]++
			succ[j] = append(succ[j], i)
		}
	}

	// State per task.
	remaining := make([]int, len(tasks)) // unfinished units
	nextUnit := make([]int, len(tasks))  // for sequential tasks
	taskReady := make([]time.Duration, len(tasks))
	finish := make([]time.Duration, len(tasks))
	started := make([]bool, len(tasks))
	for i, t := range tasks {
		remaining[i] = len(t.Units)
	}

	// Resource state: per resource, a min-heap of slot free times.
	free := map[string]*durHeap{}
	slotHeap := func(res string) *durHeap {
		h, ok := free[res]
		if !ok {
			cap, limited := s.Capacity[res]
			if !limited {
				return nil // unlimited
			}
			hh := make(durHeap, cap)
			h = &hh
			heap.Init(h)
			free[res] = h
		}
		return h
	}

	pend := &unitHeap{}
	seqs := map[int]int{} // per-job FIFO sequence counters
	enqueueTask := func(i int, at time.Duration) {
		started[i] = true
		taskReady[i] = at
		t := &tasks[i]
		if len(t.Units) == 0 {
			return // completed immediately; handled by caller
		}
		if t.Sequential {
			heap.Push(pend, pendingUnit{i, 0, at, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
			nextUnit[i] = 0
			return
		}
		for u := range t.Units {
			heap.Push(pend, pendingUnit{i, u, at, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
		}
	}

	busy := map[string]time.Duration{}
	res := Result{
		Finish:    make(map[string]time.Duration, len(tasks)),
		Busy:      busy,
		JobBusy:   map[int]time.Duration{},
		JobWait:   map[int]time.Duration{},
		JobGrants: map[int]int{},
		JobEnd:    map[int]time.Duration{},
		TaskWait:  map[string]time.Duration{},
	}

	// completeTask marks a task finished at time t and releases successors.
	var completeTask func(i int, t time.Duration)
	completeTask = func(i int, t time.Duration) {
		started[i] = true
		finish[i] = t
		res.Finish[tasks[i].ID] = t
		if t > res.Makespan {
			res.Makespan = t
		}
		if t > res.JobEnd[tasks[i].Job] {
			res.JobEnd[tasks[i].Job] = t
		}
		for _, nxt := range succ[i] {
			indeg[nxt]--
			if indeg[nxt] == 0 {
				// Ready time is the max finish of all deps.
				at := time.Duration(0)
				for _, d := range tasks[nxt].Deps {
					if f := finish[idx[d]]; f > at {
						at = f
					}
				}
				if remaining[nxt] == 0 {
					completeTask(nxt, at)
				} else {
					enqueueTask(nxt, at)
				}
			}
		}
	}

	// Seed roots deterministically in declaration order. Tasks already
	// released by a zero-unit root's completion are skipped.
	for i := range tasks {
		if indeg[i] == 0 && !started[i] {
			if remaining[i] == 0 {
				completeTask(i, 0)
			} else {
				enqueueTask(i, 0)
			}
		}
	}

	scheduled := 0
	total := 0
	for i := range tasks {
		total += len(tasks[i].Units)
	}

	for pend.Len() > 0 {
		pu := heap.Pop(pend).(pendingUnit)
		t := &tasks[pu.taskIdx]
		u := t.Units[pu.unitIdx]
		start := pu.ready
		h := slotHeap(u.Resource)
		if h != nil {
			slotFree := heap.Pop(h).(time.Duration)
			if slotFree > start {
				start = slotFree
			}
		}
		end := start + u.Dur
		if h != nil {
			heap.Push(h, end)
			busy[u.Resource] += u.Dur
			res.JobBusy[t.Job] += u.Dur
			res.JobWait[t.Job] += start - pu.ready
			res.TaskWait[t.ID] += start - pu.ready
			res.JobGrants[t.Job]++
		}
		scheduled++
		remaining[pu.taskIdx]--
		if t.Sequential && pu.unitIdx+1 < len(t.Units) {
			heap.Push(pend, pendingUnit{pu.taskIdx, pu.unitIdx + 1, end, t.Priority, seqs[t.Job], t.Job})
			seqs[t.Job]++
		}
		if end > finish[pu.taskIdx] {
			finish[pu.taskIdx] = end
		}
		if remaining[pu.taskIdx] == 0 {
			completeTask(pu.taskIdx, finish[pu.taskIdx])
		}
	}

	if scheduled != total {
		// Some tasks never became ready: there is a dependency cycle.
		var stuck []string
		for i := range tasks {
			if !started[i] && remaining[i] > 0 {
				stuck = append(stuck, tasks[i].ID)
			}
		}
		sort.Strings(stuck)
		return Result{}, fmt.Errorf("vtime: dependency cycle involving %v", stuck)
	}
	res.SlotFree = map[string][]time.Duration{}
	for name, h := range free {
		times := append([]time.Duration(nil), (*h)...)
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		res.SlotFree[name] = times
	}
	return res, nil
}

// durHeap is a min-heap of slot-free times.
type durHeap []time.Duration

func (h durHeap) Len() int            { return len(h) }
func (h durHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h durHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *durHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *durHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Serial returns the makespan if every unit ran back-to-back on a single
// slot — a lower-level bound used in unit tests.
func Serial(tasks []Task) time.Duration {
	var total time.Duration
	for _, t := range tasks {
		for _, u := range t.Units {
			total += u.Dur
		}
	}
	return total
}

// SerialOperators computes the makespan when OPERATORS run strictly one
// after another (no DAG parallelism) while each operator still batches
// its own calls across the slot pool — the Unify-noLO ablation of
// Figure 5(a).
func (s *Schedule) SerialOperators(tasks []Task) (time.Duration, error) {
	chained := make([]Task, len(tasks))
	for i, t := range tasks {
		c := t
		c.Deps = nil
		if i > 0 {
			c.Deps = []string{tasks[i-1].ID}
		}
		chained[i] = c
	}
	res, err := s.Run(chained)
	if err != nil {
		return 0, err
	}
	return res.Makespan, nil
}
