package vtime

import (
	"testing"
	"time"
)

// bu builds a batchable unit whose BatchSpec parts sum exactly to its
// duration: base 80ms + template 30ms + payload (payloadMs) + decode
// (decodeMs).
func bu(key string, payloadMs, decodeMs int) Unit {
	base := 80 * time.Millisecond
	tmpl := 30 * time.Millisecond
	payload := time.Duration(payloadMs) * time.Millisecond
	decode := time.Duration(decodeMs) * time.Millisecond
	return Unit{
		Dur:      base + tmpl + payload + decode,
		Resource: ResourceLLM,
		Batch: &BatchSpec{
			Key:             key,
			Base:            base,
			Decode:          decode,
			TemplatePrefill: tmpl,
			PayloadPrefill:  payload,
		},
	}
}

// bup is bu with a payload identity key: units sharing pk carry the
// same documents and split the payload prefill charge.
func bup(key, pk string, payloadMs, decodeMs int) Unit {
	u := bu(key, payloadMs, decodeMs)
	u.Batch.PayloadKey = pk
	return u
}

func batchPolicy() *BatchPolicy {
	return &BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: 2500 * time.Millisecond, MaxBatch: 8}
}

// Two compatible units of different jobs ready together coalesce into one
// invocation with the modeled batched duration, and shares sum to it.
func TestBatchCoalescesAcrossJobs(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bu("k", 100, 200)}},
		{ID: "b", Job: 1, Units: []Unit{bu("k", 100, 200)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 {
		t.Fatalf("batches = %d, want 1 coalesced grant: %+v", len(res.Batches), res.Batches)
	}
	g := res.Batches[0]
	if len(g.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(g.Members))
	}
	// D = 80 + 30 + (100+100) + 200*1.15 ≈ 540ms (decode scaling is
	// float-truncated, so compute the exact value via the model).
	want := batchedDur(80*time.Millisecond, 30*time.Millisecond, 200*time.Millisecond, 200*time.Millisecond, 2)
	if want < 539*time.Millisecond || want > 540*time.Millisecond {
		t.Fatalf("model sanity: batchedDur = %v, expected ≈540ms", want)
	}
	if g.Dur != want {
		t.Errorf("batched dur = %v, want %v", g.Dur, want)
	}
	if res.Makespan != want {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	var shares time.Duration
	for _, m := range g.Members {
		shares += m.Share
	}
	if shares != g.Dur {
		t.Errorf("share sum %v != batch dur %v", shares, g.Dur)
	}
	if res.Busy[ResourceLLM] != want {
		t.Errorf("busy = %v, want %v (one invocation)", res.Busy[ResourceLLM], want)
	}
	if res.JobBusy[0]+res.JobBusy[1] != want {
		t.Errorf("job busy sum %v != %v", res.JobBusy[0]+res.JobBusy[1], want)
	}
}

// Members with equal payload keys scan the same documents, so the batch
// prefills that payload once: three co-scanning queries pay one payload
// charge plus base, template, and scaled decode.
func TestBatchSharedPayloadChargedOnce(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bup("k", "chunk0", 400, 100)}},
		{ID: "b", Job: 1, Units: []Unit{bup("k", "chunk0", 400, 100)}},
		{ID: "c", Job: 2, Units: []Unit{bup("k", "chunk0", 400, 100)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || len(res.Batches[0].Members) != 3 {
		t.Fatalf("want one 3-member batch, got %+v", res.Batches)
	}
	g := res.Batches[0]
	// D = 80 + 30 + 400 (once, not 1200) + 100·1.3.
	want := batchedDur(80*time.Millisecond, 30*time.Millisecond, 100*time.Millisecond, 400*time.Millisecond, 3)
	if want < 639*time.Millisecond || want > 641*time.Millisecond {
		t.Fatalf("model sanity: batchedDur = %v, expected ≈640ms", want)
	}
	if g.Dur != want {
		t.Errorf("batched dur = %v, want %v", g.Dur, want)
	}
	solo := 610 * time.Millisecond
	if g.Dur < solo {
		t.Errorf("shared-payload batch %v beats a member's solo %v", g.Dur, solo)
	}
	if res.Busy[ResourceLLM] != want {
		t.Errorf("busy = %v, want one shared invocation %v", res.Busy[ResourceLLM], want)
	}
}

// Payload sharing is per-group: members with distinct payload keys (or
// none) still pay their own payload prefill, and only same-key members
// split one charge.
func TestBatchMixedPayloadGroups(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bup("k", "chunk0", 300, 100)}},
		{ID: "b", Job: 1, Units: []Unit{bup("k", "chunk0", 300, 100)}},
		{ID: "c", Job: 2, Units: []Unit{bup("k", "chunk7", 200, 100)}},
		{ID: "d", Job: 3, Units: []Unit{bup("k", "", 150, 100)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 1 || len(res.Batches[0].Members) != 4 {
		t.Fatalf("want one 4-member batch, got %+v", res.Batches)
	}
	// Charged payload: 300 (chunk0, shared by a+b) + 200 (chunk7) + 150
	// (keyless) = 650ms.
	want := batchedDur(80*time.Millisecond, 30*time.Millisecond, 100*time.Millisecond, 650*time.Millisecond, 4)
	if g := res.Batches[0]; g.Dur != want {
		t.Errorf("batched dur = %v, want %v (payload groups 300+200+150)", g.Dur, want)
	}
}

// Units of the SAME job never coalesce — cross-query batching only. This
// is what keeps the solo baseline (a single-job schedule) untouched.
func TestBatchNeverCoalescesWithinJob(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bu("k", 100, 200), bu("k", 100, 200)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 2 {
		t.Fatalf("batches = %d, want 2 singleton grants", len(res.Batches))
	}
	for _, g := range res.Batches {
		if len(g.Members) != 1 {
			t.Errorf("same-job units coalesced: %+v", g)
		}
	}
	if res.Makespan != 410*time.Millisecond {
		t.Errorf("makespan = %v, want 410ms (two parallel solos)", res.Makespan)
	}
}

// A singleton grant costs exactly the unbatched duration and the whole
// schedule matches the policy-off schedule bit for bit.
func TestBatchSingletonIdentity(t *testing.T) {
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bu("k", 100, 200)}},
		{ID: "b", Job: 1, Units: []Unit{bu("other", 50, 100)}},
	}
	off := NewSchedule(2)
	ores, err := off.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	on := NewSchedule(2)
	on.Batching = batchPolicy()
	bres, err := on.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Makespan != ores.Makespan {
		t.Errorf("incompatible keys changed makespan: %v vs %v", bres.Makespan, ores.Makespan)
	}
	if bres.Busy[ResourceLLM] != ores.Busy[ResourceLLM] {
		t.Errorf("busy differs: %v vs %v", bres.Busy[ResourceLLM], ores.Busy[ResourceLLM])
	}
	for _, g := range bres.Batches {
		if len(g.Members) != 1 {
			t.Errorf("incompatible keys coalesced: %+v", g)
		}
		if g.Dur != g.Members[0].Solo {
			t.Errorf("singleton dur %v != solo %v", g.Dur, g.Members[0].Solo)
		}
	}
}

// Hold-the-door: a compatible unit becoming ready within the window joins
// (the batch starts at its ready time); one beyond the window does not.
func TestBatchWindowDeferral(t *testing.T) {
	mk := func(delayMs int) (Result, error) {
		s := NewSchedule(4)
		s.Batching = batchPolicy() // 100ms window
		// Job 0's batchable call sits behind a CPU stage of delayMs in a
		// sequential chain, so it is pending with a future ready time when
		// job 1's leader is granted — the hold-the-door case.
		tasks := []Task{
			{ID: "d", Job: 0, Sequential: true, Units: []Unit{
				{Dur: time.Duration(delayMs) * time.Millisecond},
				bu("k", 100, 200),
			}},
			{ID: "a", Job: 1, Units: []Unit{bu("k", 100, 200)}},
		}
		return s.Run(tasks)
	}

	in, err := mk(60) // within the 100ms window
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Batches) != 1 || len(in.Batches[0].Members) != 2 {
		t.Fatalf("in-window unit did not join: %+v", in.Batches)
	}
	g := in.Batches[0]
	if g.Start != 60*time.Millisecond {
		t.Errorf("batch start = %v, want 60ms (latest member ready)", g.Start)
	}
	if g.Members[0].Wait != 60*time.Millisecond || g.Members[1].Wait != 0 {
		t.Errorf("waits = %v/%v, want leader 60ms (held the door), joiner 0",
			g.Members[0].Wait, g.Members[1].Wait)
	}

	out, err := mk(150) // beyond the window
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range out.Batches {
		if len(g.Members) != 1 {
			t.Errorf("out-of-window unit joined: %+v", g)
		}
	}
}

// Join guard: a candidate whose marginal cost would not undercut its solo
// duration stays out (decode-dominated members where slowdown eats the
// amortization win).
func TestBatchJoinGuardRejectsUnprofitable(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	// Tiny prefill, huge decode: marginal = 0.15*3000 + payload(1) >
	// candidate solo? Solo = 80+30+1+3000 = 3111; marginal = 450+1+0? No:
	// newD-curD = 0.15*3000 + 1 = 451 < 3111, so it WOULD join. Force the
	// reject with an asymmetric pair: candidate is tiny (short decode,
	// tiny solo) joining a huge leader — marginal decode slowdown of the
	// LEADER's decode exceeds the candidate's whole solo duration.
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bu("k", 10, 3000)}},
		{ID: "b", Job: 1, Units: []Unit{bu("k", 10, 10)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate solo = 80+30+10+10 = 130ms; marginal = 0.15*3000 + 10 =
	// 460ms > 130ms -> must run alone.
	for _, g := range res.Batches {
		if len(g.Members) != 1 {
			t.Errorf("unprofitable join accepted: %+v", g)
		}
	}
}

// Fairness cap: members stop joining once the batch duration would exceed
// the cap, unless the leader alone already exceeds it.
func TestBatchFairnessCapBoundsGrowth(t *testing.T) {
	s := NewSchedule(8)
	s.Batching = &BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: 700 * time.Millisecond, MaxBatch: 8}
	var tasks []Task
	for j := 0; j < 6; j++ {
		tasks = append(tasks, Task{ID: string(rune('a' + j)), Job: j, Units: []Unit{bu("k", 100, 200)}})
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Batches {
		if len(g.Members) > 1 && g.Dur > 700*time.Millisecond {
			t.Errorf("batch dur %v exceeds the 700ms fairness cap (%d members)", g.Dur, len(g.Members))
		}
	}
	// D(k) = 110 + 100k + 200(1+0.15(k-1)): k=3 -> 670 <= 700, k=4 -> 800
	// > 700. The first grant must thus stop at 3 members.
	if len(res.Batches[0].Members) != 3 {
		t.Errorf("first grant took %d members, want 3 under the cap", len(res.Batches[0].Members))
	}
}

// MaxBatch bounds member count even when more compatible work is pending.
func TestBatchMaxBatchBound(t *testing.T) {
	s := NewSchedule(8)
	s.Batching = &BatchPolicy{Window: 100 * time.Millisecond, MaxBatch: 2}
	var tasks []Task
	for j := 0; j < 5; j++ {
		tasks = append(tasks, Task{ID: string(rune('a' + j)), Job: j, Units: []Unit{bu("k", 100, 200)}})
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Batches {
		if len(g.Members) > 2 {
			t.Errorf("grant exceeded MaxBatch=2: %d members", len(g.Members))
		}
	}
}

// A member of a batch never finishes before it could have finished solo:
// the batched duration dominates every member's unbatched duration, so
// batching can only trade per-call latency for throughput, never violate
// the solo lower bound.
func TestBatchNeverBeatsSolo(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Units: []Unit{bu("k", 300, 100)}},
		{ID: "b", Job: 1, Units: []Unit{bu("k", 20, 400)}},
		{ID: "c", Job: 2, Units: []Unit{bu("k", 150, 250)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Batches {
		for _, m := range g.Members {
			if end := g.Start + g.Dur; end < m.Ready+m.Solo {
				t.Errorf("member %s finished %v, before solo bound %v", m.Task, end, m.Ready+m.Solo)
			}
		}
	}
}

// Batched schedules replay bit-for-bit: same tasks, same result.
func TestBatchDeterministicReplay(t *testing.T) {
	mk := func() Result {
		s := NewSchedule(2)
		s.Batching = batchPolicy()
		var tasks []Task
		for j := 0; j < 6; j++ {
			tasks = append(tasks, Task{
				ID: string(rune('a' + j)), Job: j, Sequential: true,
				Units: []Unit{bu("k", 100, 200), bu("k", 50, 100)},
			})
		}
		res, err := s.Run(tasks)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := mk(), mk()
	if r1.Makespan != r2.Makespan {
		t.Fatalf("makespan differs across replays: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if len(r1.Batches) != len(r2.Batches) {
		t.Fatalf("batch count differs: %d vs %d", len(r1.Batches), len(r2.Batches))
	}
	for i := range r1.Batches {
		a, b := r1.Batches[i], r2.Batches[i]
		if a.Start != b.Start || a.Dur != b.Dur || len(a.Members) != len(b.Members) {
			t.Errorf("grant %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				t.Errorf("grant %d member %d differs: %+v vs %+v", i, j, a.Members[j], b.Members[j])
			}
		}
	}
}

// Sequential chains re-batch in lockstep: members finish together, their
// successors become ready together, and the next invocation coalesces
// again. busy conservation (JobBusy sums to Busy) holds throughout.
func TestBatchSequentialLockstep(t *testing.T) {
	s := NewSchedule(4)
	s.Batching = batchPolicy()
	tasks := []Task{
		{ID: "a", Job: 0, Sequential: true, Units: []Unit{bu("k", 100, 200), bu("k", 100, 200), bu("k", 100, 200)}},
		{ID: "b", Job: 1, Sequential: true, Units: []Unit{bu("k", 100, 200), bu("k", 100, 200), bu("k", 100, 200)}},
	}
	res, err := s.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Batches) != 3 {
		t.Fatalf("batches = %d, want 3 lockstep invocations", len(res.Batches))
	}
	for i, g := range res.Batches {
		if len(g.Members) != 2 {
			t.Errorf("invocation %d has %d members, want 2 (chains fell out of lockstep)", i, len(g.Members))
		}
	}
	var jobSum time.Duration
	for _, d := range res.JobBusy {
		jobSum += d
	}
	if jobSum != res.Busy[ResourceLLM] {
		t.Errorf("job busy sum %v != resource busy %v", jobSum, res.Busy[ResourceLLM])
	}
}
