package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThresholdGating(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(10*time.Second, slog.New(slog.NewTextHandler(&buf, nil)))
	if l.Observe(SlowRecord{RequestID: "q-1", VTime: 9 * time.Second}) {
		t.Error("below-threshold query logged")
	}
	if !l.Observe(SlowRecord{RequestID: "q-2", Query: "slow one", VTime: 10 * time.Second}) {
		t.Error("at-threshold query not logged")
	}
	if l.Count() != 1 {
		t.Errorf("count = %d, want 1", l.Count())
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "request_id=q-2") {
		t.Errorf("log line missing fields: %q", out)
	}
	if strings.Contains(out, "q-1") {
		t.Errorf("fast query leaked into log: %q", out)
	}
	if l.Threshold() != 10*time.Second {
		t.Errorf("threshold = %v", l.Threshold())
	}
}

func TestSlowLogDisabled(t *testing.T) {
	if NewSlowLog(0, nil) != nil {
		t.Error("zero threshold should disable the log")
	}
	if NewSlowLog(-time.Second, nil) != nil {
		t.Error("negative threshold should disable the log")
	}
	var l *SlowLog
	if l.Observe(SlowRecord{VTime: time.Hour}) {
		t.Error("nil log observed a record")
	}
	if l.Count() != 0 || l.Threshold() != 0 {
		t.Error("nil log not zero-valued")
	}
}
