package obs

import (
	"strings"
	"testing"
)

// Regression: /metrics rendered label values in first-seen order, so two
// identical runs whose goroutines touched label values in different
// interleavings produced different bytes. Rendering must sort.
func TestPrometheusLabelOrderDeterministic(t *testing.T) {
	render := func(order []string) string {
		r := NewRegistry()
		c := r.CounterVec("unify_test_total", "test counter", "task")
		for _, l := range order {
			c.IncL(l)
		}
		var b strings.Builder
		r.WritePrometheus(&b)
		return b.String()
	}
	a := render([]string{"filter", "classify", "bind"})
	b := render([]string{"bind", "filter", "classify"})
	if a != b {
		t.Fatalf("label insertion order leaked into /metrics output:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	// Sorted order is also the documented contract.
	if !(strings.Index(a, `task="bind"`) < strings.Index(a, `task="classify"`) &&
		strings.Index(a, `task="classify"`) < strings.Index(a, `task="filter"`)) {
		t.Fatalf("label values not sorted:\n%s", a)
	}
}

// Regression: Snapshot called metric.get(""), which CREATES the series it
// looks up — a /v1/stats read inserted empty "" series into labeled
// metrics and histograms, changing subsequent /metrics output. Reads must
// not mutate.
func TestSnapshotDoesNotMutateRegistry(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("unify_labeled_total", "labeled counter", "task").IncL("filter")
	r.Histogram("unify_lat_seconds", "latency", []float64{1, 5})

	var before strings.Builder
	r.WritePrometheus(&before)

	snap := r.Snapshot()
	if _, ok := snap["unify_labeled_total"]; !ok {
		t.Fatal("labeled counter missing from snapshot")
	}
	hist, ok := snap["unify_lat_seconds"].(map[string]interface{})
	if !ok {
		t.Fatalf("histogram snapshot has wrong shape: %#v", snap["unify_lat_seconds"])
	}
	if hist["count"] != uint64(0) {
		t.Fatalf("empty histogram count = %v", hist["count"])
	}

	var after strings.Builder
	r.WritePrometheus(&after)
	if before.String() != after.String() {
		t.Fatalf("Snapshot mutated the registry:\n--- before ---\n%s--- after ---\n%s",
			before.String(), after.String())
	}
}
