package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRenderNilSpan(t *testing.T) {
	if got := Render(nil); got != "" {
		t.Errorf("Render(nil) = %q", got)
	}
	if (*Span)(nil).JSON() != nil {
		t.Error("nil span JSON non-nil")
	}
}

func TestRenderZeroDurationSpan(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("query", KindQuery)
	s.StartChild("instant", KindPhase).End()
	s.End()
	out := Render(s)
	if !strings.Contains(out, "instant") || !strings.Contains(out, "vtime=0s") {
		t.Errorf("zero-duration child rendered wrong:\n%s", out)
	}
	j := s.JSON()
	if len(j.Children) != 1 || j.Children[0].VTimeSecs != 0 {
		t.Errorf("JSON zero-duration child: %+v", j.Children)
	}
}

func TestRenderDetachedAndAdoptedSpans(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query", KindQuery)
	// Detached spans live outside the tree until adopted; adoption order
	// (not creation or completion order) fixes the rendered order.
	d2 := root.NewDetached("node-2", KindNode)
	d1 := root.NewDetached("node-1", KindNode)
	d1.SetVDur(time.Second)
	d2.SetVDur(2 * time.Second)
	d1.End()
	d2.End()

	// Before adoption the detached spans must not render under the root.
	if out := Render(root); strings.Contains(out, "node-1") || strings.Contains(out, "node-2") {
		t.Fatalf("detached spans rendered before adoption:\n%s", out)
	}

	root.Adopt(d1)
	root.Adopt(d2)
	root.Adopt(nil) // nil adoption is a no-op
	root.End()
	out := Render(root)
	i1, i2 := strings.Index(out, "node-1"), strings.Index(out, "node-2")
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("adoption order not preserved (i1=%d i2=%d):\n%s", i1, i2, out)
	}
	if len(root.Children()) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children()))
	}
}

func TestRenderSpanEndedTwiceKeepsFirstWall(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("query", KindQuery)
	s.End()
	first := s.WallDur()
	time.Sleep(5 * time.Millisecond)
	s.End() // second End must not move the end time
	if got := s.WallDur(); got != first {
		t.Errorf("second End changed wall duration: %v -> %v", first, got)
	}
	if out := Render(s); !strings.Contains(out, "query") {
		t.Errorf("render after double End:\n%s", out)
	}
}

func TestRenderAttrsInInsertionOrder(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("query", KindQuery)
	s.SetAttr("zeta", "1")
	s.SetAttr("alpha", "2")
	s.SetAttr("zeta", "3") // overwrite keeps position
	s.End()
	out := Render(s)
	iz, ia := strings.Index(out, "zeta=3"), strings.Index(out, "alpha=2")
	if iz < 0 || ia < 0 || iz > ia {
		t.Errorf("attr order wrong:\n%s", out)
	}
}

func TestRenderDeepTreeBranches(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("query", KindQuery)
	p := root.StartChild("phase", KindPhase)
	p.StartChild("leaf-a", KindLLM).End()
	p.StartChild("leaf-b", KindLLM).End()
	p.End()
	root.StartChild("tail", KindPhase).End()
	root.End()
	out := Render(root)
	// Middle children draw ├─, last children draw └─.
	if !strings.Contains(out, "├─ leaf-a") || !strings.Contains(out, "└─ leaf-b") {
		t.Errorf("branch glyphs wrong:\n%s", out)
	}
	if !strings.Contains(out, "└─ tail") {
		t.Errorf("last child glyph wrong:\n%s", out)
	}
}

func TestFmtDurRanges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0s"},
		{500 * time.Microsecond, "500µs"},
		{250 * time.Millisecond, "250.0ms"},
		{90 * time.Second, "1.5m"},
		{3 * time.Second, "3.00s"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
