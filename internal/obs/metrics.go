package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MetricType enumerates the registry's instrument kinds.
type MetricType int

// Instrument kinds, mirroring the Prometheus exposition types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds named metrics and renders them as Prometheus text
// exposition or a JSON-friendly snapshot. All operations are safe for
// concurrent use; instrument handles are cheap to copy and update with a
// single short critical section. A nil *Registry hands out nil handles
// whose methods no-op, so metrics can be disabled wholesale.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string
}

type metric struct {
	name    string
	help    string
	typ     MetricType
	label   string            // optional single label name ("" = unlabeled)
	buckets []float64         // histogram upper bounds (ascending)
	info    map[string]string // constant info-style gauge labels (Info)

	mu     sync.Mutex
	series map[string]*series
	keys   []string // label values in first-seen order
}

type series struct {
	val    float64  // counter / gauge value
	counts []uint64 // histogram per-bucket counts (cumulative on render)
	sum    float64
	count  uint64
	ex     []exemplar // histogram per-bucket exemplars; index len(buckets) is +Inf
}

// exemplar links a histogram bucket to the request that produced its
// largest sample, so a slow latency bucket resolves to a stored trace.
type exemplar struct {
	id  string
	val float64
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) register(name, help string, typ MetricType, label string, buckets []float64) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m // idempotent re-registration
	}
	m := &metric{name: name, help: help, typ: typ, label: label,
		buckets: append([]float64(nil), buckets...), series: map[string]*series{}}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

func (m *metric) get(labelVal string) *series {
	s, ok := m.series[labelVal]
	if !ok {
		s = &series{}
		if m.typ == TypeHistogram {
			s.counts = make([]uint64, len(m.buckets))
		}
		m.series[labelVal] = s
		m.keys = append(m.keys, labelVal)
	}
	return s
}

// Counter is a monotonically increasing value, optionally labeled.
type Counter struct{ m *metric }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.register(name, help, TypeCounter, "", nil)}
}

// CounterVec registers (or returns) a counter keyed by one label.
func (r *Registry) CounterVec(name, help, label string) Counter {
	return Counter{r.register(name, help, TypeCounter, label, nil)}
}

// Inc adds one to the unlabeled series.
func (c Counter) Inc() { c.Add(1) }

// Add adds v to the unlabeled series.
func (c Counter) Add(v float64) { c.AddL("", v) }

// IncL adds one to the series for the given label value.
func (c Counter) IncL(labelVal string) { c.AddL(labelVal, 1) }

// AddL adds v to the series for the given label value.
func (c Counter) AddL(labelVal string, v float64) {
	if c.m == nil || v < 0 {
		return
	}
	c.m.mu.Lock()
	c.m.get(labelVal).val += v
	c.m.mu.Unlock()
}

// Gauge is a value that can go up and down.
type Gauge struct{ m *metric }

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.register(name, help, TypeGauge, "", nil)}
}

// GaugeVec registers (or returns) a gauge keyed by one label.
func (r *Registry) GaugeVec(name, help, label string) Gauge {
	return Gauge{r.register(name, help, TypeGauge, label, nil)}
}

// Set replaces the unlabeled gauge value.
func (g Gauge) Set(v float64) { g.SetL("", v) }

// SetL replaces the gauge value for the given label value.
func (g Gauge) SetL(labelVal string, v float64) {
	if g.m == nil {
		return
	}
	g.m.mu.Lock()
	g.m.get(labelVal).val = v
	g.m.mu.Unlock()
}

// Histogram accumulates observations into fixed buckets.
type Histogram struct{ m *metric }

// DurationBuckets are the default latency buckets (seconds of simulated
// time): query latencies in the paper's figures span seconds to minutes.
var DurationBuckets = []float64{0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600}

// Histogram registers (or returns) an unlabeled histogram with the given
// ascending upper bounds (DurationBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	return Histogram{r.register(name, help, TypeHistogram, "", buckets)}
}

// Observe records one observation.
func (h Histogram) Observe(v float64) { h.ObserveEx(v, "") }

// ObserveEx records one observation tagged with an exemplar id
// (typically the request id). Each bucket — including the implicit +Inf
// overflow — remembers the id of its largest sample, so a hot latency
// bucket links back to a concrete stored trace. An empty id records no
// exemplar.
func (h Histogram) ObserveEx(v float64, exemplarID string) {
	if h.m == nil {
		return
	}
	h.m.mu.Lock()
	s := h.m.get("")
	idx := len(h.m.buckets) // +Inf overflow slot
	for i, ub := range h.m.buckets {
		if v <= ub {
			s.counts[i]++
			idx = i
			break
		}
	}
	s.sum += v
	s.count++
	if exemplarID != "" {
		if s.ex == nil {
			s.ex = make([]exemplar, len(h.m.buckets)+1)
		}
		if s.ex[idx].id == "" || v > s.ex[idx].val {
			s.ex[idx] = exemplar{id: exemplarID, val: v}
		}
	}
	h.m.mu.Unlock()
}

// ObserveDur records a duration in seconds.
func (h Histogram) ObserveDur(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveDurEx records a duration in seconds with an exemplar id.
func (h Histogram) ObserveDurEx(d time.Duration, exemplarID string) {
	h.ObserveEx(d.Seconds(), exemplarID)
}

// Info registers a constant info-style gauge (value 1) carrying a fixed
// multi-label set — the Prometheus *_info / build_info convention.
// Re-registration with the same name is a no-op (the first label set
// wins), keeping it safe to call from every constructor.
func (r *Registry) Info(name, help string, labels map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		return
	}
	info := make(map[string]string, len(labels))
	for k, v := range labels {
		info[k] = v
	}
	m := &metric{name: name, help: help, typ: TypeGauge, info: info, series: map[string]*series{}}
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// Value returns the current value of a counter/gauge series (labelVal ""
// for unlabeled), or a histogram's observation count. Missing metrics or
// series return 0.
func (r *Registry) Value(name, labelVal string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.info != nil {
		return 1
	}
	s, ok := m.series[labelVal]
	if !ok {
		return 0
	}
	if m.typ == TypeHistogram {
		return float64(s.count)
	}
	return s.val
}

// HistogramSum returns the sum of all observations recorded by an
// unlabeled histogram (0 when absent).
func (r *Registry) HistogramSum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok || m.typ != TypeHistogram {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[""]
	if !ok {
		return 0
	}
	return s.sum
}

// MaxExemplar returns the exemplar with the greatest observed value
// across an unlabeled histogram's buckets ("" when none was recorded).
func (r *Registry) MaxExemplar(name string) (id string, val float64) {
	if r == nil {
		return "", 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok || m.typ != TypeHistogram {
		return "", 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[""]
	if !ok {
		return "", 0
	}
	for _, e := range s.ex {
		if e.id != "" && (id == "" || e.val > val) {
			id, val = e.id, e.val
		}
	}
	return id, val
}

// Total sums every series of a metric (counters/gauges).
func (r *Registry) Total(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var t float64
	for _, s := range m.series {
		if m.typ == TypeHistogram {
			t += float64(s.count)
		} else {
			t += s.val
		}
	}
	return t
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), in registration order with label values sorted.
// Sorting matters: first-seen label order depends on goroutine
// interleaving under concurrent queries, so rendering m.keys directly
// made /metrics output nondeterministic byte-for-byte across identical
// runs.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	for _, m := range metrics {
		m.mu.Lock()
		fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
		if m.info != nil {
			// Constant info gauge: one series, all labels, value 1.
			// Sorted label keys keep the output byte-deterministic.
			ks := make([]string, 0, len(m.info))
			for k := range m.info {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			parts := make([]string, len(ks))
			for i, k := range ks {
				parts[i] = fmt.Sprintf("%s=%q", k, escapeLabel(m.info[k]))
			}
			fmt.Fprintf(w, "%s{%s} 1\n", m.name, strings.Join(parts, ","))
			m.mu.Unlock()
			continue
		}
		keys := append([]string(nil), m.keys...)
		sort.Strings(keys)
		for _, key := range keys {
			s := m.series[key]
			label := ""
			if m.label != "" {
				label = fmt.Sprintf("{%s=%q}", m.label, escapeLabel(key))
			}
			switch m.typ {
			case TypeHistogram:
				cum := uint64(0)
				for i, ub := range m.buckets {
					cum += s.counts[i]
					fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(ub), cum)
				}
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.count)
				fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(s.sum))
				fmt.Fprintf(w, "%s_count %d\n", m.name, s.count)
			default:
				fmt.Fprintf(w, "%s%s %s\n", m.name, label, formatFloat(s.val))
			}
		}
		m.mu.Unlock()
	}
}

// Snapshot returns a JSON-friendly view of the registry: metric name →
// value (unlabeled) or label-value map (labeled); histograms expose
// count, sum, and per-bucket counts.
func (r *Registry) Snapshot() map[string]interface{} {
	out := map[string]interface{}{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	metrics := make([]*metric, len(names))
	for i, n := range names {
		metrics[i] = r.metrics[n]
	}
	r.mu.Unlock()

	for i, m := range metrics {
		m.mu.Lock()
		// Snapshot is a read path: it must not call m.get, which creates
		// the series it looks up. The old behavior meant a /v1/stats read
		// inserted empty "" series, changing subsequent /metrics output.
		switch {
		case m.info != nil:
			labels := make(map[string]string, len(m.info))
			for k, v := range m.info {
				labels[k] = v
			}
			out[names[i]] = labels
		case m.typ == TypeHistogram:
			var count uint64
			var sum float64
			buckets := map[string]uint64{}
			cum := uint64(0)
			var exs map[string]interface{}
			if s, ok := m.series[""]; ok {
				count, sum = s.count, s.sum
				for j, ub := range m.buckets {
					cum += s.counts[j]
					buckets["le_"+formatFloat(ub)] = cum
				}
				for j, e := range s.ex {
					if e.id == "" {
						continue
					}
					le := "+Inf"
					if j < len(m.buckets) {
						le = formatFloat(m.buckets[j])
					}
					if exs == nil {
						exs = map[string]interface{}{}
					}
					exs["le_"+le] = map[string]interface{}{
						"request_id": e.id, "value": e.val,
					}
				}
			} else {
				for _, ub := range m.buckets {
					buckets["le_"+formatFloat(ub)] = 0
				}
			}
			hv := map[string]interface{}{
				"count": count, "sum": sum, "buckets": buckets,
			}
			if exs != nil {
				hv["exemplars"] = exs
			}
			out[names[i]] = hv
		case m.label != "":
			vals := map[string]float64{}
			for _, k := range m.keys {
				vals[k] = m.series[k].val
			}
			out[names[i]] = vals
		default:
			var v float64
			if s, ok := m.series[""]; ok {
				v = s.val
			}
			out[names[i]] = v
		}
		m.mu.Unlock()
	}
	return out
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// LabelValues returns a metric's label values, sorted.
func (r *Registry) LabelValues(name string) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	m, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.keys...)
	sort.Strings(out)
	return out
}
