package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.Start("query", KindQuery)
	if s != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every span operation must be a safe no-op on nil.
	c := s.StartChild("child", KindPhase)
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	s.SetAttr("k", "v")
	s.SetInt("n", 3)
	s.SetVDur(time.Second)
	s.AddVDur(time.Second)
	s.End()
	s.Adopt(s.NewDetached("d", KindNode))
	if s.VDur() != 0 || s.WallDur() != 0 || s.Attr("k") != "" {
		t.Error("nil span reported non-zero state")
	}
	if got := Render(s); got != "" {
		t.Errorf("nil span rendered %q", got)
	}
	if s.JSON() != nil {
		t.Error("nil span produced JSON")
	}
}

func TestSpanTreeAndContext(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("tracer not propagated")
	}
	root := TracerFrom(ctx).Start("query", KindQuery)
	root.SetAttr("query", "how many?")
	ctx = WithSpan(ctx, root)
	if SpanFrom(ctx) != root {
		t.Fatal("span not propagated")
	}

	plan := root.StartChild("planning", KindPhase)
	plan.SetVDur(3 * time.Second)
	plan.SetInt("llm_calls", 7)
	plan.End()
	exec := root.StartChild("execute", KindPhase)
	node := exec.NewDetached("node[0] Filter", KindNode)
	node.SetVDur(2 * time.Second)
	node.End()
	exec.Adopt(node)
	exec.SetVDur(2 * time.Second)
	exec.End()
	root.SetVDur(5 * time.Second)
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if f := root.Find("node[0] Filter"); f == nil || f.VDur() != 2*time.Second {
		t.Errorf("Find failed: %v", f)
	}
	if tr.Started() != 1 {
		t.Errorf("tracer started = %d", tr.Started())
	}

	out := Render(root)
	for _, want := range []string{"query", "├─ planning", "└─ execute", "node[0] Filter", "llm_calls=7", "vtime=3.00s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}

	j := root.JSON()
	if j.Name != "query" || len(j.Children) != 2 || j.VTimeSecs != 5 {
		t.Errorf("JSON form wrong: %+v", j)
	}
	if j.Attrs["query"] != "how many?" {
		t.Errorf("JSON attrs = %v", j.Attrs)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTracer().Start("query", KindQuery)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("llm", KindLLM)
			c.SetInt("i", i)
			c.AddVDur(time.Millisecond)
			c.End()
		}(i)
	}
	wg.Wait()
	if got := len(root.Children()); got != 32 {
		t.Errorf("children = %d, want 32", got)
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	s := NewTracer().Start("s", KindPhase)
	s.SetAttr("k", "a")
	s.SetAttr("k", "b")
	if v := s.Attr("k"); v != "b" {
		t.Errorf("attr = %q", v)
	}
	if n := len(s.Attrs()); n != 1 {
		t.Errorf("attrs len = %d", n)
	}
}
