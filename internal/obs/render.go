package obs

import (
	"fmt"
	"strings"
	"time"
)

// SpanJSON is the wire form of a span tree, returned by the server's
// EXPLAIN ANALYZE variant (/v1/query?analyze=1).
type SpanJSON struct {
	Name      string            `json:"name"`
	Kind      string            `json:"kind,omitempty"`
	WallMS    float64           `json:"wall_ms"`
	VTimeSecs float64           `json:"vtime_secs"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Children  []*SpanJSON       `json:"children,omitempty"`
}

// JSON converts the span tree into its wire form (nil for a nil span).
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	out := &SpanJSON{
		Name:      s.Name,
		Kind:      s.Kind,
		WallMS:    float64(s.WallDur()) / float64(time.Millisecond),
		VTimeSecs: s.VDur().Seconds(),
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		out.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// Render draws the span tree as an indented ASCII tree — the EXPLAIN
// ANALYZE output. Each line shows the span name, its virtual-clock
// duration (the simulated latency the paper reports), its wall-clock
// duration, and its attributes in insertion order.
func Render(s *Span) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	renderSpan(&b, s, "", "")
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, selfPrefix, childPrefix string) {
	b.WriteString(selfPrefix)
	b.WriteString(s.Name)
	fmt.Fprintf(b, "  vtime=%s wall=%s", fmtDur(s.VDur()), fmtDur(s.WallDur()))
	for _, a := range s.Attrs() {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	children := s.Children()
	for i, c := range children {
		last := i == len(children)-1
		branch, cont := "├─ ", "│  "
		if last {
			branch, cont = "└─ ", "   "
		}
		renderSpan(b, c, childPrefix+branch, childPrefix+cont)
	}
}

// fmtDur renders durations compactly with sub-second precision only
// where it matters.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0s"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d < time.Minute:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
}
