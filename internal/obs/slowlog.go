package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// SlowLog emits one structured log/slog record per query whose total
// virtual time meets a threshold, linking the slow query's request id to
// its retained trace. A nil *SlowLog is the disabled log: every method
// is a safe no-op. The log write itself uses the wall clock (slog
// timestamps) and is deliberately kept OUT of all deterministic
// surfaces; only the counter is exported.
type SlowLog struct {
	threshold time.Duration
	logger    *slog.Logger
	count     atomic.Int64
}

// SlowRecord carries the fields of one slow-query log line.
type SlowRecord struct {
	RequestID   string
	Query       string
	Status      string // "ok" or "error"
	VTime       time.Duration
	GrantWait   time.Duration
	LLMCalls    int
	CachedCalls int
	Operators   int
	Contended   bool
}

// NewSlowLog returns a slow-query log firing at the given threshold
// (values <= 0 return nil, i.e. disabled). A nil logger selects
// slog.Default().
func NewSlowLog(threshold time.Duration, logger *slog.Logger) *SlowLog {
	if threshold <= 0 {
		return nil
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &SlowLog{threshold: threshold, logger: logger}
}

// Threshold reports the vtime threshold (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Count reports how many slow queries have been logged.
func (l *SlowLog) Count() int64 {
	if l == nil {
		return 0
	}
	return l.count.Load()
}

// Observe logs the record as a single structured line when it crosses
// the threshold and reports whether it did.
func (l *SlowLog) Observe(rec SlowRecord) bool {
	if l == nil || rec.VTime < l.threshold {
		return false
	}
	l.count.Add(1)
	l.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
		slog.String("request_id", rec.RequestID),
		slog.String("query", rec.Query),
		slog.String("status", rec.Status),
		slog.Duration("vtime", rec.VTime),
		slog.Duration("grant_wait", rec.GrantWait),
		slog.Int("llm_calls", rec.LLMCalls),
		slog.Int("cached_calls", rec.CachedCalls),
		slog.Int("operators", rec.Operators),
		slog.Bool("contended", rec.Contended),
		slog.Duration("threshold", l.threshold),
	)
	return true
}
