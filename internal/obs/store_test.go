package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// tree builds a simple span tree: root -> n children, each with m
// grandchildren.
func tree(n, m int) *Span {
	tr := NewTracer()
	root := tr.Start("query", KindQuery)
	for i := 0; i < n; i++ {
		c := root.StartChild(fmt.Sprintf("phase-%d", i), KindPhase)
		for j := 0; j < m; j++ {
			c.StartChild(fmt.Sprintf("leaf-%d-%d", i, j), KindLLM).End()
		}
		c.End()
	}
	root.End()
	return root
}

func TestTraceStorePutGetList(t *testing.T) {
	ts := NewTraceStore(10, 100)
	for i := 0; i < 3; i++ {
		status := "ok"
		if i == 1 {
			status = "error"
		}
		ts.Put(fmt.Sprintf("q-%d", i), int64(i), status, fmt.Sprintf("query %d", i),
			time.Duration(i+1)*time.Second, i*10, i, tree(2, 2))
	}
	if ts.Len() != 3 {
		t.Fatalf("len = %d, want 3", ts.Len())
	}
	got, ok := ts.Get("q-1")
	if !ok || got.Status != "error" || got.VTime != 2*time.Second {
		t.Fatalf("Get(q-1) = %+v, %v", got, ok)
	}
	if got.Root == nil || got.Root.Name != "query" || got.Spans != 7 {
		t.Fatalf("stored tree wrong: %+v", got)
	}

	// Newest-first ordering.
	all := ts.List(TraceFilter{})
	if len(all) != 3 || all[0].ID != "q-2" || all[2].ID != "q-0" {
		t.Fatalf("list order wrong: %+v", all)
	}
	// Status filter.
	errs := ts.List(TraceFilter{Status: "error"})
	if len(errs) != 1 || errs[0].ID != "q-1" {
		t.Fatalf("status filter: %+v", errs)
	}
	// MinVTime filter.
	slow := ts.List(TraceFilter{MinVTime: 3 * time.Second})
	if len(slow) != 1 || slow[0].ID != "q-2" {
		t.Fatalf("min-vtime filter: %+v", slow)
	}
	// Limit.
	if lim := ts.List(TraceFilter{Limit: 2}); len(lim) != 2 || lim[0].ID != "q-2" {
		t.Fatalf("limit filter: %+v", lim)
	}
}

func TestTraceStoreEvictsLowestSeq(t *testing.T) {
	ts := NewTraceStore(2, 100)
	for i := 0; i < 5; i++ {
		ts.Put(fmt.Sprintf("q-%d", i), int64(i), "ok", "q", time.Second, 1, 1, tree(1, 1))
	}
	if ts.Len() != 2 {
		t.Fatalf("len = %d, want 2", ts.Len())
	}
	if ts.Evicted() != 3 {
		t.Fatalf("evicted = %d, want 3", ts.Evicted())
	}
	if _, ok := ts.Get("q-0"); ok {
		t.Error("q-0 should have been evicted")
	}
	if _, ok := ts.Get("q-4"); !ok {
		t.Error("q-4 should be retained")
	}
}

func TestTraceStoreReplacesDuplicateID(t *testing.T) {
	ts := NewTraceStore(10, 100)
	ts.Put("q-1", 1, "error", "first", time.Second, 1, 1, tree(1, 1))
	ts.Put("q-1", 7, "ok", "second", 2*time.Second, 2, 2, tree(1, 1))
	if ts.Len() != 1 {
		t.Fatalf("len = %d, want 1 after replacement", ts.Len())
	}
	got, _ := ts.Get("q-1")
	if got.Status != "ok" || got.Seq != 7 {
		t.Fatalf("replacement kept old entry: %+v", got)
	}
}

func TestTraceStoreTruncationKeepsShallowStructure(t *testing.T) {
	// 1 root + 3 phases + 30 leaves = 34 spans; budget 6 keeps the root,
	// all phases, and the first two leaves (BFS order).
	ts := NewTraceStore(10, 6)
	ts.Put("q-1", 1, "ok", "q", time.Second, 1, 1, tree(3, 10))
	got, _ := ts.Get("q-1")
	if !got.Truncated || got.Spans != 6 {
		t.Fatalf("truncated=%v spans=%d, want true/6", got.Truncated, got.Spans)
	}
	if len(got.Root.Children) != 3 {
		t.Fatalf("phase structure lost: %d children", len(got.Root.Children))
	}
	leaves := 0
	for _, p := range got.Root.Children {
		leaves += len(p.Children)
	}
	if leaves != 2 {
		t.Fatalf("leaves kept = %d, want 2", leaves)
	}
}

func TestTraceStoreFrozenAgainstLaterMutation(t *testing.T) {
	ts := NewTraceStore(10, 100)
	root := tree(1, 1)
	ts.Put("q-1", 1, "ok", "q", time.Second, 1, 1, root)
	root.SetAttr("after", "mutation")
	root.StartChild("late", KindPhase).End()
	got, _ := ts.Get("q-1")
	if got.Root.Attrs["after"] != "" {
		t.Error("stored trace saw attr set after Put")
	}
	if len(got.Root.Children) != 1 {
		t.Errorf("stored trace saw child added after Put: %d children", len(got.Root.Children))
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	ts.Put("q", 1, "ok", "q", 0, 0, 0, tree(1, 1))
	if ts.Len() != 0 || ts.Evicted() != 0 {
		t.Error("nil store not empty")
	}
	if got := ts.List(TraceFilter{}); got != nil {
		t.Errorf("nil store list = %v", got)
	}
	if _, ok := ts.Get("q"); ok {
		t.Error("nil store Get returned ok")
	}
	if a, b := ts.Bounds(); a != 0 || b != 0 {
		t.Error("nil store bounds non-zero")
	}
}

func TestTraceSummaryJSONHasNoWallClock(t *testing.T) {
	st := &StoredTrace{ID: "q-1", Seq: 1, Status: "ok", Query: "q", VTime: time.Second}
	b, err := json.Marshal(st.Summary())
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"wall", "time.Time", "start", "end"} {
		if containsFold(string(b), banned) {
			t.Errorf("summary JSON %s contains wall-clock field %q", b, banned)
		}
	}
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		match := true
		for j := 0; j < len(sub); j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
