package obs

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	c.Inc()
	r.Gauge("g", "help").Set(3)
	r.Histogram("h", "help", nil).Observe(1)
	if r.Value("x_total", "") != 0 || r.Total("x_total") != 0 {
		t.Error("nil registry reported values")
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	if b.Len() != 0 {
		t.Error("nil registry rendered output")
	}
	if len(r.Snapshot()) != 0 || r.Names() != nil {
		t.Error("nil registry snapshot non-empty")
	}
	var m *Metrics
	m.RecordQueryOK("q-1", time.Second, time.Second, time.Second)
	m.RecordQueryFailed()
	m.RecordCall("t", 1, 2)
	m.RecordSlots(time.Second, time.Second, 4)
}

// promLine matches the sample lines of the text exposition format:
// name{label="value"} 123 or name 1.5
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [0-9.eE+-]+(Inf|NaN)?$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	q := r.CounterVec("unify_queries_total", "Queries processed.", "status")
	q.IncL("ok")
	q.IncL("ok")
	q.IncL("error")
	r.Gauge("unify_slot_utilization", "Utilization.").Set(0.75)
	h := r.Histogram("unify_query_vtime_seconds", "Latency.", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	var samples, help, typ int
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			help++
		case strings.HasPrefix(line, "# TYPE"):
			typ++
		default:
			samples++
			if !promLine.MatchString(line) {
				t.Errorf("invalid exposition line: %q", line)
			}
		}
	}
	if help != 3 || typ != 3 {
		t.Errorf("help=%d type=%d, want 3 each", help, typ)
	}
	for _, want := range []string{
		`unify_queries_total{status="ok"} 2`,
		`unify_queries_total{status="error"} 1`,
		`unify_slot_utilization 0.75`,
		`unify_query_vtime_seconds_bucket{le="1"} 1`,
		`unify_query_vtime_seconds_bucket{le="10"} 2`,
		`unify_query_vtime_seconds_bucket{le="+Inf"} 3`,
		`unify_query_vtime_seconds_sum 55.5`,
		`unify_query_vtime_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryValueAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("calls_total", "calls", "task")
	c.AddL("filter", 4)
	c.AddL("rerank", 2)
	if got := r.Value("calls_total", "filter"); got != 4 {
		t.Errorf("Value = %v", got)
	}
	if got := r.Total("calls_total"); got != 6 {
		t.Errorf("Total = %v", got)
	}
	// Negative counter increments are dropped.
	c.AddL("filter", -5)
	if got := r.Value("calls_total", "filter"); got != 4 {
		t.Errorf("counter went down: %v", got)
	}
	snap := r.Snapshot()
	vals, ok := snap["calls_total"].(map[string]float64)
	if !ok || vals["rerank"] != 2 {
		t.Errorf("snapshot = %#v", snap)
	}
	if vs := r.LabelValues("calls_total"); len(vs) != 2 || vs[0] != "filter" {
		t.Errorf("label values = %v", vs)
	}
	// Re-registration returns the same underlying metric.
	c2 := r.CounterVec("calls_total", "calls", "task")
	c2.IncL("filter")
	if got := r.Value("calls_total", "filter"); got != 5 {
		t.Errorf("re-registered counter detached: %v", got)
	}
}

func TestMetricsBundleConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.RecordCall("filter_batch", 10, 5)
				m.RecordQueryOK("q-1", 2*time.Second, time.Second, time.Second)
				m.RecordSlots(3*time.Second, time.Second, 4)
			}
		}()
	}
	wg.Wait()
	if got := m.Reg.Value("unify_llm_calls_total", "filter_batch"); got != 1600 {
		t.Errorf("llm calls = %v", got)
	}
	if got := m.Reg.Value("unify_queries_total", "ok"); got != 1600 {
		t.Errorf("queries = %v", got)
	}
	if got := m.Reg.Value("unify_slot_utilization", ""); got != 0.75 {
		t.Errorf("utilization = %v", got)
	}
}
