package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestAttributeSharesSumExactly(t *testing.T) {
	// Busy ratios chosen so the proportional split cannot be exact
	// without remainder absorption: 1/3, 1/3, 1/3 of a prime-ish total.
	p := NewCostProfile("q-1")
	p.Add(ClassPlanning, OpCost{Executions: 1, Busy: 5 * time.Second})
	p.Add("Filter/SemanticFilter", OpCost{Executions: 1, Busy: 1000000007})
	p.Add("Map/SemanticMap", OpCost{Executions: 1, Busy: 1000000007})
	p.Add("Count/PreCount", OpCost{Executions: 1, Busy: 1000000009})
	planning, optimize, exec := 5*time.Second, 700*time.Millisecond, time.Duration(3141592653)
	p.Attribute(planning, optimize, exec)

	if p.Total != planning+optimize+exec {
		t.Fatalf("total = %v", p.Total)
	}
	if got := p.ShareSum(); got != p.Total {
		t.Fatalf("share sum %v != total %v", got, p.Total)
	}
	if p.Classes[ClassPlanning].Share != planning {
		t.Errorf("planning share = %v", p.Classes[ClassPlanning].Share)
	}
	if p.Classes[ClassOptimize].Share != optimize {
		t.Errorf("optimize share = %v", p.Classes[ClassOptimize].Share)
	}
	var execSum time.Duration
	for name, c := range p.Classes {
		if name == ClassPlanning || name == ClassOptimize {
			continue
		}
		if c.Share < 0 {
			t.Errorf("class %q negative share %v", name, c.Share)
		}
		execSum += c.Share
	}
	if execSum != exec {
		t.Fatalf("exec shares sum to %v, want %v", execSum, exec)
	}
}

func TestAttributeUnattributedWhenNoBusy(t *testing.T) {
	// A fully cache-served execution records zero busy time; the
	// makespan must land on the dedicated class, not vanish.
	p := NewCostProfile("q-1")
	p.Add("Filter/ExactFilter", OpCost{Executions: 1})
	p.Attribute(time.Second, 0, 3*time.Second)
	if got := p.Classes[ClassUnattributed].Share; got != 3*time.Second {
		t.Fatalf("unattributed share = %v, want 3s", got)
	}
	if p.ShareSum() != p.Total {
		t.Fatalf("share sum %v != total %v", p.ShareSum(), p.Total)
	}
}

func TestAttributeZeroExec(t *testing.T) {
	p := NewCostProfile("q-1")
	p.Attribute(time.Second, time.Second, 0)
	if p.ShareSum() != 2*time.Second || p.Total != 2*time.Second {
		t.Fatalf("sum=%v total=%v", p.ShareSum(), p.Total)
	}
}

func TestAttributeDeterministicTieBreak(t *testing.T) {
	// Two classes with identical busy: remainder goes to the first in
	// sorted name order, every time.
	run := func() time.Duration {
		p := NewCostProfile("q")
		p.Add("b-class", OpCost{Busy: time.Second})
		p.Add("a-class", OpCost{Busy: time.Second})
		p.Attribute(0, 0, time.Duration(999999999))
		return p.Classes["a-class"].Share
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("nondeterministic tiebreak: %v then %v", first, got)
		}
	}
	if first < 499999999 {
		t.Fatalf("a-class got %v, expected the remainder on top", first)
	}
}

func TestProfilerAccumulatesAndSnapshots(t *testing.T) {
	pr := NewProfiler()
	for i := 0; i < 2; i++ {
		p := NewCostProfile("q")
		p.Add(ClassPlanning, OpCost{Executions: 1, LLMCalls: 3, CachedCalls: 1, InTokens: 10, OutTokens: 5, Busy: time.Second})
		p.Add("Filter/SemanticFilter", OpCost{Executions: 1, LLMCalls: 4, Busy: 2 * time.Second})
		p.Attribute(time.Second, 0, 2*time.Second)
		pr.Record(p)
	}
	if pr.Queries() != 2 || pr.TotalVTime() != 6*time.Second {
		t.Fatalf("queries=%d total=%v", pr.Queries(), pr.TotalVTime())
	}
	tot := pr.Totals()
	if tot.LLMCalls != 14 || tot.CachedCalls != 2 || tot.InTokens != 20 {
		t.Fatalf("totals = %+v", tot)
	}

	snap := pr.Snapshot()
	if snap.Queries != 2 || len(snap.Classes) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	fc := snap.Classes["Filter/SemanticFilter"]
	if fc.ShareSecs != 4 || fc.Executions != 2 {
		t.Fatalf("filter class = %+v", fc)
	}
	// Snapshot marshals deterministically (sorted map keys).
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(pr.Snapshot())
	if string(a) != string(b) {
		t.Error("snapshot JSON not stable")
	}
	if containsFold(string(a), "wall") {
		t.Errorf("profile JSON carries wall-clock fields: %s", a)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var pr *Profiler
	pr.Record(NewCostProfile("q"))
	if pr.Queries() != 0 || pr.TotalVTime() != 0 {
		t.Error("nil profiler non-empty")
	}
	if got := pr.Totals(); got != (OpCost{}) {
		t.Errorf("nil totals = %+v", got)
	}
	if snap := pr.Snapshot(); snap.Queries != 0 || len(snap.Classes) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var p *CostProfile
	if p.JSON() != nil {
		t.Error("nil profile JSON non-nil")
	}
}

func TestCostJSONDerivedRatios(t *testing.T) {
	c := &OpCost{Executions: 2, LLMCalls: 6, CachedCalls: 2, InTokens: 60, OutTokens: 20, Share: 2 * time.Second}
	j := costJSON(c, 4*time.Second)
	if j.ShareOfTotal != 0.5 {
		t.Errorf("share_of_total = %v", j.ShareOfTotal)
	}
	if j.CacheHitRatio != 0.25 {
		t.Errorf("cache_hit_ratio = %v", j.CacheHitRatio)
	}
	if j.CallsPerExec != 4 {
		t.Errorf("calls_per_exec = %v", j.CallsPerExec)
	}
	if j.TokensPerCall != 10 {
		t.Errorf("tokens_per_call = %v", j.TokensPerCall)
	}
}
