package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplarTracksBucketMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 10})
	h.ObserveEx(0.5, "q-1")
	h.ObserveEx(0.9, "q-2") // new max in le=1 bucket
	h.ObserveEx(0.2, "q-3") // smaller: must not displace q-2
	h.ObserveEx(5, "q-4")   // le=10 bucket
	h.ObserveEx(100, "q-5") // +Inf overflow slot

	id, val := r.MaxExemplar("lat_seconds")
	if id != "q-5" || val != 100 {
		t.Fatalf("max exemplar = %q/%v, want q-5/100", id, val)
	}

	snap := r.Snapshot()
	hist := snap["lat_seconds"].(map[string]interface{})
	ex := hist["exemplars"].(map[string]interface{})
	b1 := ex["le_1"].(map[string]interface{})
	if b1["request_id"] != "q-2" {
		t.Errorf("le_1 exemplar = %v, want q-2", b1["request_id"])
	}
	b10 := ex["le_10"].(map[string]interface{})
	if b10["request_id"] != "q-4" {
		t.Errorf("le_10 exemplar = %v, want q-4", b10["request_id"])
	}
	binf := ex["le_+Inf"].(map[string]interface{})
	if binf["request_id"] != "q-5" {
		t.Errorf("le_+Inf exemplar = %v, want q-5", binf["request_id"])
	}
}

func TestHistogramExemplarEmptyIDAndZeroValue(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1})
	h.ObserveEx(0, "q-zero") // zero-valued sample must still take the slot
	if id, val := r.MaxExemplar("lat_seconds"); id != "q-zero" || val != 0 {
		t.Fatalf("zero-valued exemplar = %q/%v", id, val)
	}
	h.Observe(0.5) // plain Observe carries no id; must not displace q-zero's id with ""
	if id, _ := r.MaxExemplar("lat_seconds"); id != "q-zero" {
		t.Fatalf("empty-id observation displaced exemplar: %q", id)
	}
	h.ObserveEx(0.9, "q-big")
	if id, val := r.MaxExemplar("lat_seconds"); id != "q-big" || val != 0.9 {
		t.Fatalf("exemplar = %q/%v, want q-big/0.9", id, val)
	}
}

func TestMaxExemplarMissingMetric(t *testing.T) {
	r := NewRegistry()
	if id, val := r.MaxExemplar("nope"); id != "" || val != 0 {
		t.Errorf("missing metric exemplar = %q/%v", id, val)
	}
	var nilR *Registry
	if id, _ := nilR.MaxExemplar("nope"); id != "" {
		t.Error("nil registry exemplar non-empty")
	}
}

func TestInfoMetricExposition(t *testing.T) {
	r := NewRegistry()
	r.Info("unify_build_info", "Build info.", map[string]string{
		"version":   "0.2.0",
		"goversion": "go1.x",
	})
	r.Info("unify_build_info", "Build info.", map[string]string{"version": "ignored"}) // idempotent

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	want := `unify_build_info{goversion="go1.x",version="0.2.0"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
	if strings.Contains(out, "ignored") {
		t.Error("second Info call overwrote labels")
	}
	if got := r.Value("unify_build_info", ""); got != 1 {
		t.Errorf("info value = %v, want 1", got)
	}
	snap := r.Snapshot()
	labels := snap["unify_build_info"].(map[string]string)
	if labels["version"] != "0.2.0" {
		t.Errorf("snapshot labels = %v", labels)
	}
}

func TestMetricsRecordQueryOKExemplar(t *testing.T) {
	m := NewMetrics()
	m.RecordQueryOK("q-7", 42*time.Second, 10*time.Second, 32*time.Second)
	m.RecordQueryOK("q-8", 3*time.Second, time.Second, 2*time.Second)
	if id, val := m.Reg.MaxExemplar("unify_query_vtime_seconds"); id != "q-7" || val != 42 {
		t.Errorf("query exemplar = %q/%v, want q-7/42", id, val)
	}
}
