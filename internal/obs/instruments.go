package obs

import (
	"runtime"
	"strconv"
	"time"
)

// Metrics bundles the standard Unify instruments over one Registry: the
// process-wide counters the server exposes at /metrics and /v1/stats and
// the health endpoint reads. A nil *Metrics is a valid no-op sink (every
// method checks the receiver), so library users who construct systems by
// hand pay nothing.
type Metrics struct {
	Reg *Registry

	Queries      Counter // by terminal status: "ok" / "error"
	QuerySeconds Histogram
	PlanSeconds  Histogram
	ExecSeconds  Histogram

	LLMCalls       Counter // by task
	LLMTokensIn    Counter // by task
	LLMTokensOut   Counter // by task
	LLMCachedCalls Counter // by task: calls answered by the response cache

	CacheHits      Counter // by cache layer
	CacheMisses    Counter // by cache layer
	CacheEvictions Counter // by cache layer
	CacheCoalesced Counter // by cache layer
	CacheBytes     Gauge   // resident bytes of the shared cache
	CacheEntries   Gauge   // resident entries of the shared cache

	SimCalls  Gauge // by model: calls that reached the simulated backend
	SimUnique Gauge // by model: distinct prompts seen by the backend

	PlanFallbacks   Counter
	PlanAdjustments Counter
	PlanCacheHits   Counter

	FaultsInjected    Counter // by fault kind
	LLMRetries        Counter // by task
	LLMHedges         Counter // by task
	LLMRetryExhausted Counter // by task
	ExecReplans       Counter
	ExecSkippedDocs   Counter

	SlotBusySeconds Counter
	SlotUtilization Gauge

	// Serving-layer instruments: the shared slot pool and the HTTP
	// admission queue.
	GrantWaitSeconds Histogram // per-query slot-grant wait on the pool
	PoolActive       Gauge     // queries currently admitted to the pool
	PoolUtilization  Gauge     // aggregate epoch slot utilization
	// Per-machine cluster gauges, registered lazily by EnablePerMachine:
	// single-machine systems never register them, keeping the /metrics
	// exposition byte-identical to the pre-cluster format (the registry
	// emits HELP/TYPE for every registered metric, series or not).
	PoolMachineActive      Gauge // by machine: queries homed on it
	PoolMachineUtilization Gauge // by machine: epoch slot utilization
	// Continuous-batching gauges, registered lazily by EnableBatching:
	// batching-off systems never register them, keeping the /metrics
	// exposition byte-identical to the pre-batching format.
	BatchGrants       Gauge     // batchable slot grants (invocations), lifetime
	BatchedCalls      Gauge     // member calls those grants carried, lifetime
	BatchOccupancy    Gauge     // mean calls per invocation
	BatchSavedSeconds Gauge     // slot busy vtime avoided versus solo execution
	ServeQueueDepth   Gauge     // requests waiting in the admission queue
	ServeInflight     Gauge     // requests holding an admission slot
	ServeQueueWait    Histogram // wall-clock admission-queue wait
	ServeRejected     Counter   // by reason: "queue_full" / "deadline"

	HTTPRequests Counter // by path

	// Per-operator-class cost attribution (the /v1/profile data as
	// Prometheus series), labeled by operator class ("Op/Phys" or a
	// phase name).
	OpExecutions       Counter // by op
	OpLLMCalls         Counter // by op
	OpCachedCalls      Counter // by op
	OpInTokens         Counter // by op
	OpOutTokens        Counter // by op
	OpSkippedDocs      Counter // by op
	OpRetries          Counter // by op
	OpBusySeconds      Counter // by op: modeled busy vtime
	OpShareSeconds     Counter // by op: attributed share of query vtime
	OpGrantWaitSeconds Counter // by op: slot-grant wait vtime

	// Query-history trace store and slow-query log.
	TracesStored  Gauge   // traces currently retained
	TracesEvicted Gauge   // traces evicted since start (monotonic)
	SlowQueries   Counter // queries crossing the slow-query threshold

	// Materialized-view and ingestion instruments, registered lazily by
	// EnableViews: views-off systems never register them, keeping the
	// /metrics exposition byte-identical to the views-less format.
	ViewRows        Gauge   // materialized rows resident across columns
	ViewColumns     Gauge   // distinct view columns
	ViewHits        Gauge   // lifetime per-document view hits
	ViewMisses      Gauge   // lifetime per-document view misses
	ViewBackfills   Gauge   // lifetime rows written back after model work
	ViewInvalidated Gauge   // lifetime rows dropped by document updates
	IngestDocs      Counter // by kind: documents added / updated
	CorpusGen       Gauge   // corpus generation (mutations since open)
}

// NewMetrics builds a fresh registry with the standard Unify instruments
// registered.
func NewMetrics() *Metrics {
	r := NewRegistry()
	m := &Metrics{Reg: r}
	m.Queries = r.CounterVec("unify_queries_total",
		"Queries processed, by terminal status.", "status")
	m.QuerySeconds = r.Histogram("unify_query_vtime_seconds",
		"End-to-end simulated query latency.", nil)
	m.PlanSeconds = r.Histogram("unify_plan_vtime_seconds",
		"Simulated planning+estimation latency per query.", nil)
	m.ExecSeconds = r.Histogram("unify_exec_vtime_seconds",
		"Simulated execution makespan per query.", nil)
	m.LLMCalls = r.CounterVec("unify_llm_calls_total",
		"Model invocations, by prompt task.", "task")
	m.LLMTokensIn = r.CounterVec("unify_llm_in_tokens_total",
		"Prompt tokens consumed, by task.", "task")
	m.LLMTokensOut = r.CounterVec("unify_llm_out_tokens_total",
		"Tokens generated, by task.", "task")
	m.LLMCachedCalls = r.CounterVec("unify_llm_cached_calls_total",
		"Model invocations answered by the shared response cache, by task.", "task")
	m.CacheHits = r.CounterVec("unify_cache_hits_total",
		"Shared-cache hits, by layer.", "layer")
	m.CacheMisses = r.CounterVec("unify_cache_misses_total",
		"Shared-cache misses, by layer.", "layer")
	m.CacheEvictions = r.CounterVec("unify_cache_evictions_total",
		"Shared-cache evictions (budget or staleness), by layer.", "layer")
	m.CacheCoalesced = r.CounterVec("unify_cache_coalesced_total",
		"Lookups that joined an identical in-flight computation, by layer.", "layer")
	m.CacheBytes = r.Gauge("unify_cache_bytes",
		"Resident byte cost of the shared cache.")
	m.CacheEntries = r.Gauge("unify_cache_entries",
		"Resident entry count of the shared cache.")
	m.SimCalls = r.GaugeVec("unify_sim_calls",
		"Prompts that reached the simulated model backend, by model.", "model")
	m.SimUnique = r.GaugeVec("unify_sim_unique_prompts",
		"Distinct prompts seen by the simulated model backend, by model.", "model")
	m.PlanFallbacks = r.Counter("unify_plan_fallback_total",
		"Queries answered via the Generate (RAG) fallback plan.")
	m.PlanAdjustments = r.Counter("unify_exec_adjusted_total",
		"Queries where a failing physical operator was swapped at run time.")
	m.PlanCacheHits = r.Counter("unify_plan_cache_hits_total",
		"Queries whose optimization was served entirely from the plan cache.")
	m.FaultsInjected = r.CounterVec("unify_faults_injected_total",
		"Faults injected into model calls, by kind.", "kind")
	m.LLMRetries = r.CounterVec("unify_llm_retries_total",
		"Model call retry attempts after transient failures, by task.", "task")
	m.LLMHedges = r.CounterVec("unify_llm_hedges_total",
		"Hedged (backup) model calls issued against slow primaries, by task.", "task")
	m.LLMRetryExhausted = r.CounterVec("unify_llm_retry_exhausted_total",
		"Model calls that failed after exhausting their retry budget, by task.", "task")
	m.ExecReplans = r.Counter("unify_exec_replans_total",
		"Dynamic replanning rounds triggered by cardinality deviations.")
	m.ExecSkippedDocs = r.Counter("unify_exec_skipped_docs_total",
		"Documents dropped by node error budgets (partial results).")
	m.SlotBusySeconds = r.Counter("unify_slot_busy_vtime_seconds_total",
		"Simulated busy time accumulated across LLM slots.")
	m.SlotUtilization = r.Gauge("unify_slot_utilization",
		"Slot-pool utilization of the most recent query (busy / (makespan*slots)).")
	m.GrantWaitSeconds = r.Histogram("unify_slot_grant_wait_vtime_seconds",
		"Per-query simulated wait for slot grants on the shared pool.", nil)
	m.PoolActive = r.Gauge("unify_pool_active_queries",
		"Queries currently admitted to the shared slot pool.")
	m.PoolUtilization = r.Gauge("unify_pool_utilization",
		"Aggregate slot utilization of the pool's current scheduling epoch.")
	m.ServeQueueDepth = r.Gauge("unify_serve_queue_depth",
		"Requests waiting in the server admission queue.")
	m.ServeInflight = r.Gauge("unify_serve_inflight",
		"Requests holding a server admission slot.")
	m.ServeQueueWait = r.Histogram("unify_serve_queue_wait_seconds",
		"Wall-clock time requests spent in the admission queue.", nil)
	m.ServeRejected = r.CounterVec("unify_serve_rejected_total",
		"Requests rejected by admission control, by reason.", "reason")
	m.HTTPRequests = r.CounterVec("unify_http_requests_total",
		"HTTP requests served, by path.", "path")
	m.OpExecutions = r.CounterVec("unify_op_executions_total",
		"Operator-class executions attributed by query profiles.", "op")
	m.OpLLMCalls = r.CounterVec("unify_op_llm_calls_total",
		"Model invocations attributed to operator classes.", "op")
	m.OpCachedCalls = r.CounterVec("unify_op_cached_calls_total",
		"Cache-served model invocations attributed to operator classes.", "op")
	m.OpInTokens = r.CounterVec("unify_op_in_tokens_total",
		"Prompt tokens attributed to operator classes.", "op")
	m.OpOutTokens = r.CounterVec("unify_op_out_tokens_total",
		"Generated tokens attributed to operator classes.", "op")
	m.OpSkippedDocs = r.CounterVec("unify_op_skipped_docs_total",
		"Error-budget document skips attributed to operator classes.", "op")
	m.OpRetries = r.CounterVec("unify_op_retries_total",
		"Transient-failure retries attributed to operator classes.", "op")
	m.OpBusySeconds = r.CounterVec("unify_op_busy_vtime_seconds_total",
		"Modeled busy vtime attributed to operator classes.", "op")
	m.OpShareSeconds = r.CounterVec("unify_op_vtime_share_seconds_total",
		"Share of end-to-end query vtime attributed to operator classes.", "op")
	m.OpGrantWaitSeconds = r.CounterVec("unify_op_grant_wait_vtime_seconds_total",
		"Slot-grant wait vtime attributed to operator classes.", "op")
	m.TracesStored = r.Gauge("unify_traces_stored",
		"Query traces currently retained in the history store.")
	m.TracesEvicted = r.Gauge("unify_traces_evicted_total",
		"Query traces evicted from the history store since start.")
	m.SlowQueries = r.Counter("unify_slow_queries_total",
		"Queries whose vtime crossed the slow-query log threshold.")
	return m
}

// SetBuildInfo registers the constant unify_build_info gauge carrying
// the library version and Go runtime version.
func (m *Metrics) SetBuildInfo(version string) {
	if m == nil {
		return
	}
	m.Reg.Info("unify_build_info",
		"Constant gauge carrying build metadata as labels.",
		map[string]string{"version": version, "goversion": runtime.Version()})
}

// RecordOpCosts folds one query's cost profile into the per-operator-
// class counters. Classes are visited in sorted order so first-seen
// label registration is deterministic.
func (m *Metrics) RecordOpCosts(p *CostProfile) {
	if m == nil || p == nil {
		return
	}
	for _, name := range p.ClassNames() {
		c := p.Classes[name]
		m.OpExecutions.AddL(name, float64(c.Executions))
		m.OpLLMCalls.AddL(name, float64(c.LLMCalls))
		m.OpCachedCalls.AddL(name, float64(c.CachedCalls))
		m.OpInTokens.AddL(name, float64(c.InTokens))
		m.OpOutTokens.AddL(name, float64(c.OutTokens))
		m.OpSkippedDocs.AddL(name, float64(c.SkippedDocs))
		m.OpRetries.AddL(name, float64(c.Retries))
		m.OpBusySeconds.AddL(name, c.Busy.Seconds())
		m.OpShareSeconds.AddL(name, c.Share.Seconds())
		m.OpGrantWaitSeconds.AddL(name, c.GrantWait.Seconds())
	}
}

// RecordTraceStore publishes the trace store's retention state.
func (m *Metrics) RecordTraceStore(stored int, evicted int64) {
	if m == nil {
		return
	}
	m.TracesStored.Set(float64(stored))
	m.TracesEvicted.Set(float64(evicted))
}

// RecordSlowQuery counts one slow-query log emission.
func (m *Metrics) RecordSlowQuery() {
	if m == nil {
		return
	}
	m.SlowQueries.Inc()
}

// RecordQueryOK records a successfully answered query's aggregates. The
// request id is stored as the latency histograms' bucket exemplar so a
// slow bucket links to its retained trace ("" records no exemplar).
func (m *Metrics) RecordQueryOK(requestID string, total, plan, exec time.Duration) {
	if m == nil {
		return
	}
	m.Queries.IncL("ok")
	m.QuerySeconds.ObserveDurEx(total, requestID)
	m.PlanSeconds.ObserveDurEx(plan, requestID)
	m.ExecSeconds.ObserveDurEx(exec, requestID)
}

// RecordQueryFailed records a failed query.
func (m *Metrics) RecordQueryFailed() {
	if m == nil {
		return
	}
	m.Queries.IncL("error")
}

// RecordCall charges one LLM call to the per-task counters.
func (m *Metrics) RecordCall(task string, inTokens, outTokens int) {
	if m == nil {
		return
	}
	if task == "" {
		task = "unknown"
	}
	m.LLMCalls.IncL(task)
	m.LLMTokensIn.AddL(task, float64(inTokens))
	m.LLMTokensOut.AddL(task, float64(outTokens))
}

// RecordCacheEvent charges one batch of cache-layer events to the
// per-layer counters (the shared cache's event hook).
func (m *Metrics) RecordCacheEvent(layer, event string, n int) {
	if m == nil || n <= 0 {
		return
	}
	v := float64(n)
	switch event {
	case "hit":
		m.CacheHits.AddL(layer, v)
	case "miss":
		m.CacheMisses.AddL(layer, v)
	case "evict":
		m.CacheEvictions.AddL(layer, v)
	case "coalesce":
		m.CacheCoalesced.AddL(layer, v)
	}
}

// RecordCacheSize publishes the shared cache's resident footprint.
func (m *Metrics) RecordCacheSize(bytes int64, entries int) {
	if m == nil {
		return
	}
	m.CacheBytes.Set(float64(bytes))
	m.CacheEntries.Set(float64(entries))
}

// RecordSimStats publishes a simulated backend's memo statistics.
func (m *Metrics) RecordSimStats(model string, calls, unique int) {
	if m == nil {
		return
	}
	m.SimCalls.SetL(model, float64(calls))
	m.SimUnique.SetL(model, float64(unique))
}

// RecordFault charges one injected fault to the per-kind counter.
func (m *Metrics) RecordFault(kind string) {
	if m == nil {
		return
	}
	m.FaultsInjected.IncL(kind)
}

// RecordResilience charges one retry-layer event ("retry", "hedge",
// "exhausted") for a task.
func (m *Metrics) RecordResilience(event, task string) {
	if m == nil {
		return
	}
	if task == "" {
		task = "unknown"
	}
	switch event {
	case "retry":
		m.LLMRetries.IncL(task)
	case "hedge":
		m.LLMHedges.IncL(task)
	case "exhausted":
		m.LLMRetryExhausted.IncL(task)
	}
}

// RecordDegradation records one query's graceful-degradation accounting.
func (m *Metrics) RecordDegradation(replans, skippedDocs int) {
	if m == nil {
		return
	}
	if replans > 0 {
		m.ExecReplans.Add(float64(replans))
	}
	if skippedDocs > 0 {
		m.ExecSkippedDocs.Add(float64(skippedDocs))
	}
}

// RecordSlots records the executor slot accounting of one query.
func (m *Metrics) RecordSlots(busy, makespan time.Duration, slots int) {
	if m == nil {
		return
	}
	m.SlotBusySeconds.Add(busy.Seconds())
	if makespan > 0 && slots > 0 {
		m.SlotUtilization.Set(busy.Seconds() / (makespan.Seconds() * float64(slots)))
	}
}

// RecordGrantWait records one query's simulated slot-grant wait on the
// shared pool, tagged with the query's request id as bucket exemplar.
func (m *Metrics) RecordGrantWait(requestID string, wait time.Duration) {
	if m == nil {
		return
	}
	m.GrantWaitSeconds.ObserveDurEx(wait, requestID)
}

// RecordPool publishes the shared slot pool's live state.
func (m *Metrics) RecordPool(active int, utilization float64) {
	if m == nil {
		return
	}
	m.PoolActive.Set(float64(active))
	m.PoolUtilization.Set(utilization)
}

// EnablePerMachine registers the per-machine pool gauges. Multi-machine
// systems call it once at open time; until then RecordPoolMachines is a
// no-op and the exposition carries no per-machine metrics at all.
func (m *Metrics) EnablePerMachine(machines int) {
	if m == nil || m.Reg == nil || machines < 2 || m.PoolMachineActive.m != nil {
		return
	}
	m.PoolMachineActive = m.Reg.GaugeVec("unify_pool_machine_active_queries",
		"Queries currently homed on the machine, by machine index.", "machine")
	m.PoolMachineUtilization = m.Reg.GaugeVec("unify_pool_machine_utilization",
		"Epoch slot utilization of the machine, by machine index.", "machine")
}

// EnableBatching registers the continuous-batching gauges. Systems with
// batching on call it once at open time; until then RecordBatching is a
// no-op and the exposition carries no batching metrics at all.
func (m *Metrics) EnableBatching() {
	if m == nil || m.Reg == nil || m.BatchGrants.m != nil {
		return
	}
	m.BatchGrants = m.Reg.Gauge("unify_batch_grants",
		"Slot grants of batchable units (batched invocations), lifetime.")
	m.BatchedCalls = m.Reg.Gauge("unify_batched_calls",
		"Operator LLM calls carried by batchable slot grants, lifetime.")
	m.BatchOccupancy = m.Reg.Gauge("unify_batch_occupancy",
		"Mean calls per batchable invocation (batched_calls / batch_grants).")
	m.BatchSavedSeconds = m.Reg.Gauge("unify_batch_saved_vtime_seconds",
		"Slot busy vtime avoided by batching versus solo execution, lifetime.")
}

// EnableViews registers the materialized-view and ingestion instruments.
// Systems with views on call it once at open time; until then RecordViews
// and RecordIngest are no-ops and the exposition carries no view metrics.
func (m *Metrics) EnableViews() {
	if m == nil || m.Reg == nil || m.ViewRows.m != nil {
		return
	}
	m.ViewRows = m.Reg.Gauge("unify_view_rows",
		"Materialized semantic view rows resident across all columns.")
	m.ViewColumns = m.Reg.Gauge("unify_view_columns",
		"Distinct materialized view columns.")
	m.ViewHits = m.Reg.Gauge("unify_view_hits_total",
		"Per-document judgments served from materialized views, lifetime.")
	m.ViewMisses = m.Reg.Gauge("unify_view_misses_total",
		"Per-document view lookups that fell through to model work, lifetime.")
	m.ViewBackfills = m.Reg.Gauge("unify_view_backfills_total",
		"View rows written back after fresh model work, lifetime.")
	m.ViewInvalidated = m.Reg.Gauge("unify_view_invalidated_total",
		"View rows dropped because their document was updated, lifetime.")
	m.IngestDocs = m.Reg.CounterVec("unify_ingest_docs_total",
		"Documents ingested into the live corpus, by mutation kind.", "kind")
	m.CorpusGen = m.Reg.Gauge("unify_corpus_generation",
		"Corpus generation: mutations applied since the system opened.")
}

// RecordViews publishes the view store's lifetime counters (no-op unless
// EnableViews ran).
func (m *Metrics) RecordViews(columns, rows int, hits, misses, backfills, invalidated int64) {
	if m == nil || m.ViewRows.m == nil {
		return
	}
	m.ViewColumns.Set(float64(columns))
	m.ViewRows.Set(float64(rows))
	m.ViewHits.Set(float64(hits))
	m.ViewMisses.Set(float64(misses))
	m.ViewBackfills.Set(float64(backfills))
	m.ViewInvalidated.Set(float64(invalidated))
}

// RecordIngest charges one corpus mutation to the ingestion counters
// (no-op unless EnableViews ran).
func (m *Metrics) RecordIngest(added, updated int, generation uint64) {
	if m == nil || m.IngestDocs.m == nil {
		return
	}
	if added > 0 {
		m.IngestDocs.AddL("added", float64(added))
	}
	if updated > 0 {
		m.IngestDocs.AddL("updated", float64(updated))
	}
	m.CorpusGen.Set(float64(generation))
}

// RecordBatching publishes the pool's continuous-batching state (no-op
// unless EnableBatching ran).
func (m *Metrics) RecordBatching(grants, calls int64, occupancy float64, saved time.Duration) {
	if m == nil {
		return
	}
	m.BatchGrants.Set(float64(grants))
	m.BatchedCalls.Set(float64(calls))
	m.BatchOccupancy.Set(occupancy)
	m.BatchSavedSeconds.Set(saved.Seconds())
}

// RecordPoolMachines publishes per-machine cluster state (one series per
// machine; no-op unless EnablePerMachine ran).
func (m *Metrics) RecordPoolMachines(active []int, util []float64) {
	if m == nil {
		return
	}
	for i, a := range active {
		l := strconv.Itoa(i)
		m.PoolMachineActive.SetL(l, float64(a))
		if i < len(util) {
			m.PoolMachineUtilization.SetL(l, util[i])
		}
	}
}

// RecordAdmission records one request's trip through the admission queue
// (it waited, then ran).
func (m *Metrics) RecordAdmission(wait time.Duration) {
	if m == nil {
		return
	}
	m.ServeQueueWait.ObserveDur(wait)
}

// RecordRejection charges one admission-control rejection to the
// per-reason counter ("queue_full", "deadline").
func (m *Metrics) RecordRejection(reason string) {
	if m == nil {
		return
	}
	m.ServeRejected.IncL(reason)
}

// RecordServeDepth publishes the admission queue's live state.
func (m *Metrics) RecordServeDepth(queued, inflight int) {
	if m == nil {
		return
	}
	m.ServeQueueDepth.Set(float64(queued))
	m.ServeInflight.Set(float64(inflight))
}
