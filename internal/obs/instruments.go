package obs

import "time"

// Metrics bundles the standard Unify instruments over one Registry: the
// process-wide counters the server exposes at /metrics and /v1/stats and
// the health endpoint reads. A nil *Metrics is a valid no-op sink (every
// method checks the receiver), so library users who construct systems by
// hand pay nothing.
type Metrics struct {
	Reg *Registry

	Queries      Counter // by terminal status: "ok" / "error"
	QuerySeconds Histogram
	PlanSeconds  Histogram
	ExecSeconds  Histogram

	LLMCalls     Counter // by task
	LLMTokensIn  Counter // by task
	LLMTokensOut Counter // by task

	PlanFallbacks   Counter
	PlanAdjustments Counter

	SlotBusySeconds Counter
	SlotUtilization Gauge

	HTTPRequests Counter // by path
}

// NewMetrics builds a fresh registry with the standard Unify instruments
// registered.
func NewMetrics() *Metrics {
	r := NewRegistry()
	m := &Metrics{Reg: r}
	m.Queries = r.CounterVec("unify_queries_total",
		"Queries processed, by terminal status.", "status")
	m.QuerySeconds = r.Histogram("unify_query_vtime_seconds",
		"End-to-end simulated query latency.", nil)
	m.PlanSeconds = r.Histogram("unify_plan_vtime_seconds",
		"Simulated planning+estimation latency per query.", nil)
	m.ExecSeconds = r.Histogram("unify_exec_vtime_seconds",
		"Simulated execution makespan per query.", nil)
	m.LLMCalls = r.CounterVec("unify_llm_calls_total",
		"Model invocations, by prompt task.", "task")
	m.LLMTokensIn = r.CounterVec("unify_llm_in_tokens_total",
		"Prompt tokens consumed, by task.", "task")
	m.LLMTokensOut = r.CounterVec("unify_llm_out_tokens_total",
		"Tokens generated, by task.", "task")
	m.PlanFallbacks = r.Counter("unify_plan_fallback_total",
		"Queries answered via the Generate (RAG) fallback plan.")
	m.PlanAdjustments = r.Counter("unify_exec_adjusted_total",
		"Queries where a failing physical operator was swapped at run time.")
	m.SlotBusySeconds = r.Counter("unify_slot_busy_vtime_seconds_total",
		"Simulated busy time accumulated across LLM slots.")
	m.SlotUtilization = r.Gauge("unify_slot_utilization",
		"Slot-pool utilization of the most recent query (busy / (makespan*slots)).")
	m.HTTPRequests = r.CounterVec("unify_http_requests_total",
		"HTTP requests served, by path.", "path")
	return m
}

// RecordQueryOK records a successfully answered query's aggregates.
func (m *Metrics) RecordQueryOK(total, plan, exec time.Duration) {
	if m == nil {
		return
	}
	m.Queries.IncL("ok")
	m.QuerySeconds.ObserveDur(total)
	m.PlanSeconds.ObserveDur(plan)
	m.ExecSeconds.ObserveDur(exec)
}

// RecordQueryFailed records a failed query.
func (m *Metrics) RecordQueryFailed() {
	if m == nil {
		return
	}
	m.Queries.IncL("error")
}

// RecordCall charges one LLM call to the per-task counters.
func (m *Metrics) RecordCall(task string, inTokens, outTokens int) {
	if m == nil {
		return
	}
	if task == "" {
		task = "unknown"
	}
	m.LLMCalls.IncL(task)
	m.LLMTokensIn.AddL(task, float64(inTokens))
	m.LLMTokensOut.AddL(task, float64(outTokens))
}

// RecordSlots records the executor slot accounting of one query.
func (m *Metrics) RecordSlots(busy, makespan time.Duration, slots int) {
	if m == nil {
		return
	}
	m.SlotBusySeconds.Add(busy.Seconds())
	if makespan > 0 && slots > 0 {
		m.SlotUtilization.Set(busy.Seconds() / (makespan.Seconds() * float64(slots)))
	}
}
