// Package obs is Unify's dependency-free observability subsystem:
// per-query span trees (tracing), a process-wide metrics registry with
// Prometheus text exposition, and renderers for EXPLAIN ANALYZE output.
//
// Tracing is strictly opt-in and zero-cost when disabled: a nil *Tracer
// produces nil *Span values, and every Span method is safe to call on a
// nil receiver as a no-op. Call sites therefore never branch on whether
// tracing is active.
//
// Spans carry two clocks. Wall-clock start/end times measure the real
// time the reproduction spent computing. Virtual durations (VDur) carry
// the simulated latency of the paper's machine model (llm.Response.Dur
// fed through the vtime scheduler), which is the latency the paper's
// figures report. EXPLAIN ANALYZE renders both.
package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds used across the system. Kinds are informational (rendering
// hints); any string is legal.
const (
	KindQuery = "query" // root span of one query
	KindPhase = "phase" // planning / optimize / execute and sub-phases
	KindIter  = "iter"  // one plan-reduction iteration
	KindNode  = "node"  // one executed plan node
	KindLLM   = "llm"   // one model invocation
)

// Span is one timed region of a query's lifecycle. Spans form a tree
// rooted at the query span. All methods are safe on a nil receiver and
// safe for concurrent use (executor node spans attach LLM-call children
// from worker goroutines).
type Span struct {
	Name string
	Kind string

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	vdur     time.Duration
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span. Attributes keep insertion
// order so rendered output is deterministic.
type Attr struct {
	Key   string
	Value string
}

// Tracer creates root spans. A nil *Tracer is the disabled tracer: it
// returns nil spans, and all downstream span operations no-op.
type Tracer struct {
	started atomic.Int64
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start begins a root span, or returns nil on a nil tracer.
func (t *Tracer) Start(name, kind string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	return &Span{Name: name, Kind: kind, start: time.Now()}
}

// Started reports how many root spans this tracer has begun.
func (t *Tracer) Started() int64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// StartChild begins a child span attached under s.
func (s *Span) StartChild(name, kind string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Kind: kind, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// NewDetached begins a span that is not yet part of the tree; attach it
// later with Adopt. The executor uses this to create node spans from
// worker goroutines while keeping the final child order deterministic
// (plan order, not completion order).
func (s *Span) NewDetached(name, kind string) *Span {
	if s == nil {
		return nil
	}
	return &Span{Name: name, Kind: kind, start: time.Now()}
}

// Adopt appends a detached span as a child of s. A nil child is ignored.
func (s *Span) Adopt(c *Span) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span, fixing its wall-clock duration. Ending twice
// keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetAttr records a key/value annotation, overwriting an existing key.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt records an integer annotation.
func (s *Span) SetInt(key string, v int) { s.SetAttr(key, fmt.Sprint(v)) }

// SetVDur sets the span's virtual-clock (simulated) duration.
func (s *Span) SetVDur(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vdur = d
	s.mu.Unlock()
}

// AddVDur accumulates virtual-clock duration onto the span.
func (s *Span) AddVDur(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.vdur += d
	s.mu.Unlock()
}

// VDur returns the span's virtual-clock duration.
func (s *Span) VDur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vdur
}

// WallDur returns the span's wall-clock duration (zero until End, in
// which case the duration so far).
func (s *Span) WallDur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the span's annotations in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns one annotation's value ("" when absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Children returns a copy of the span's child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first descendant (depth-first, including s) with the
// given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// --- context propagation ---

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	requestIDKey
)

// WithTracer installs a tracer into the context. Installing a nil tracer
// returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom extracts the tracer from the context (nil when absent, which
// disables tracing downstream).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithSpan installs the current span into the context. Installing a nil
// span returns ctx unchanged, keeping the no-tracer path allocation-free.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom extracts the current span from the context (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// WithRequestID installs the caller-assigned request id into the
// context; the system keys the retained trace store by it. Installing
// an empty id returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom extracts the request id from the context ("" when
// absent, in which case the system mints one from the admission
// sequence).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
