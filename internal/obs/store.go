package obs

import (
	"sort"
	"sync"
	"time"
)

// Default retention bounds for the trace store. They keep the store's
// memory footprint fixed regardless of how long the process serves
// queries: at most DefaultMaxTraces retained traces, each truncated to
// DefaultMaxSpansPerTrace spans.
const (
	DefaultMaxTraces        = 256
	DefaultMaxSpansPerTrace = 512
)

// StoredTrace is one retained query history entry: the query's span tree
// frozen at completion time plus the summary fields the list endpoint
// serves. Ordering is by admission sequence (Seq), not wall time, so the
// store's contents are byte-deterministic for identical workloads.
type StoredTrace struct {
	ID        string
	Seq       int64
	Status    string // "ok" or "error"
	Query     string
	VTime     time.Duration
	LLMCalls  int
	Operators int
	Spans     int  // spans retained (after truncation)
	Truncated bool // span tree was cut at the per-trace span budget
	Root      *SpanJSON
}

// Summary returns the trace's deterministic list-endpoint form.
func (t *StoredTrace) Summary() TraceSummary {
	return TraceSummary{
		ID:        t.ID,
		Seq:       t.Seq,
		Status:    t.Status,
		Query:     t.Query,
		VTimeSecs: t.VTime.Seconds(),
		LLMCalls:  t.LLMCalls,
		Operators: t.Operators,
		Spans:     t.Spans,
		Truncated: t.Truncated,
	}
}

// TraceSummary is the wire form of one trace in a listing. It carries
// only virtual-clock fields: wall-clock values would differ between
// identical runs and break byte-determinism of /v1/traces.
type TraceSummary struct {
	ID        string  `json:"id"`
	Seq       int64   `json:"seq"`
	Status    string  `json:"status"`
	Query     string  `json:"query"`
	VTimeSecs float64 `json:"vtime_secs"`
	LLMCalls  int     `json:"llm_calls"`
	Operators int     `json:"operators"`
	Spans     int     `json:"spans"`
	Truncated bool    `json:"truncated,omitempty"`
}

// TraceFilter selects traces in List. The zero value selects everything.
type TraceFilter struct {
	Status   string        // "", "ok", or "error"
	MinVTime time.Duration // keep traces with VTime >= MinVTime
	Limit    int           // max results (0 = no limit)
}

// TraceStore is a bounded, concurrency-safe ring buffer of completed
// query traces keyed by request id. When full, the trace with the lowest
// admission sequence is evicted. A nil *TraceStore is the disabled
// store: every method is a safe no-op.
type TraceStore struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    []*StoredTrace // ascending Seq
	byID      map[string]*StoredTrace
	evicted   int64
}

// NewTraceStore returns a store retaining up to maxTraces traces of up
// to maxSpansPerTrace spans each (values < 1 select the defaults).
func NewTraceStore(maxTraces, maxSpansPerTrace int) *TraceStore {
	if maxTraces < 1 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace < 1 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		byID:      map[string]*StoredTrace{},
	}
}

// Bounds reports the store's retention limits (0, 0 on a nil store).
func (ts *TraceStore) Bounds() (maxTraces, maxSpansPerTrace int) {
	if ts == nil {
		return 0, 0
	}
	return ts.maxTraces, ts.maxSpans
}

// Put retains a completed query's span tree. The span tree is converted
// to its wire form immediately (depth-first, bounded by the per-trace
// span budget) so later mutation of the live spans cannot change stored
// history. A trace with an already-stored id replaces the old entry.
func (ts *TraceStore) Put(id string, seq int64, status, query string, vtime time.Duration, llmCalls, operators int, root *Span) {
	if ts == nil || root == nil {
		return
	}
	st := &StoredTrace{
		ID:        id,
		Seq:       seq,
		Status:    status,
		Query:     query,
		VTime:     vtime,
		LLMCalls:  llmCalls,
		Operators: operators,
	}
	st.Root, st.Spans, st.Truncated = boundedJSON(root, ts.maxSpans)

	ts.mu.Lock()
	defer ts.mu.Unlock()
	if old, ok := ts.byID[id]; ok {
		for i, t := range ts.traces {
			if t == old {
				ts.traces = append(ts.traces[:i], ts.traces[i+1:]...)
				break
			}
		}
	}
	ts.byID[id] = st
	// Insert sorted by Seq (appends are the common case: admission
	// sequences are monotonically increasing).
	i := sort.Search(len(ts.traces), func(i int) bool { return ts.traces[i].Seq > seq })
	ts.traces = append(ts.traces, nil)
	copy(ts.traces[i+1:], ts.traces[i:])
	ts.traces[i] = st
	for len(ts.traces) > ts.maxTraces {
		victim := ts.traces[0]
		ts.traces = ts.traces[1:]
		delete(ts.byID, victim.ID)
		ts.evicted++
	}
}

// Get returns the stored trace with the given request id.
func (ts *TraceStore) Get(id string) (*StoredTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.byID[id]
	return t, ok
}

// List returns matching trace summaries newest-first (descending
// admission sequence).
func (ts *TraceStore) List(f TraceFilter) []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.traces))
	for i := len(ts.traces) - 1; i >= 0; i-- {
		t := ts.traces[i]
		if f.Status != "" && t.Status != f.Status {
			continue
		}
		if t.VTime < f.MinVTime {
			continue
		}
		out = append(out, t.Summary())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Len reports the number of retained traces.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// Evicted reports how many traces have been evicted since creation.
func (ts *TraceStore) Evicted() int64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evicted
}

// boundedJSON converts a span tree to its wire form, retaining at most
// budget spans. Selection is breadth-first, so a truncated trace always
// keeps the query root and phase structure and drops the deepest
// per-call detail first; sibling order is preserved. It returns the
// converted tree, the span count retained, and whether any span was
// dropped.
func boundedJSON(root *Span, budget int) (out *SpanJSON, kept int, truncated bool) {
	if root == nil || budget < 1 {
		return nil, 0, root != nil
	}
	include := map[*Span]bool{root: true}
	kept = 1
	queue := []*Span{root}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, c := range s.Children() {
			if kept < budget {
				include[c] = true
				kept++
				queue = append(queue, c)
			} else {
				truncated = true
			}
		}
	}
	var build func(s *Span) *SpanJSON
	build = func(s *Span) *SpanJSON {
		j := &SpanJSON{
			Name:      s.Name,
			Kind:      s.Kind,
			WallMS:    float64(s.WallDur()) / float64(time.Millisecond),
			VTimeSecs: s.VDur().Seconds(),
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			j.Attrs = make(map[string]string, len(attrs))
			for _, a := range attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		for _, c := range s.Children() {
			if include[c] {
				j.Children = append(j.Children, build(c))
			}
		}
		return j
	}
	return build(root), kept, truncated
}
