package obs

import (
	"sort"
	"sync"
	"time"
)

// OpCost aggregates the cost counters of one operator class: the LLM
// side (calls, tokens, cache traffic, retries) and the virtual-clock
// side (busy time, attributed share of query vtime, slot-grant waits).
// All durations are virtual-clock.
type OpCost struct {
	Executions  int
	LLMCalls    int
	CachedCalls int
	InTokens    int
	OutTokens   int
	SkippedDocs int
	Retries     int
	Busy        time.Duration // modeled work time (LLM call + programmed compute)
	Share       time.Duration // attributed share of the query's total vtime
	GrantWait   time.Duration // slot-grant delay on the shared pool
}

func (c *OpCost) add(o OpCost) {
	c.Executions += o.Executions
	c.LLMCalls += o.LLMCalls
	c.CachedCalls += o.CachedCalls
	c.InTokens += o.InTokens
	c.OutTokens += o.OutTokens
	c.SkippedDocs += o.SkippedDocs
	c.Retries += o.Retries
	c.Busy += o.Busy
	c.Share += o.Share
	c.GrantWait += o.GrantWait
}

// CostProfile is one query's per-operator-class cost attribution. The
// class key is the phase name ("planning", "optimize", "replan") or an
// operator identity "Op/Phys" (e.g. "filter/llm_sem_filter"). After
// Attribute, the Share fields sum exactly to Total, which equals the
// query's Answer vtime — the profile.vtime_attribution invariant.
type CostProfile struct {
	RequestID string
	Total     time.Duration
	Classes   map[string]*OpCost
}

// Phase class names used by the system when building query profiles.
const (
	ClassPlanning = "planning"
	ClassOptimize = "optimize"
	ClassReplan   = "replan"
	// ClassUnattributed absorbs execution vtime when no operator class
	// recorded busy time (e.g. a fully cache-served plan).
	ClassUnattributed = "(unattributed)"
)

// NewCostProfile returns an empty profile for one query.
func NewCostProfile(requestID string) *CostProfile {
	return &CostProfile{RequestID: requestID, Classes: map[string]*OpCost{}}
}

// Add merges cost counters into a class, creating it if needed.
func (p *CostProfile) Add(class string, c OpCost) {
	e, ok := p.Classes[class]
	if !ok {
		e = &OpCost{}
		p.Classes[class] = e
	}
	e.add(c)
}

// ClassNames returns the profile's class keys sorted.
func (p *CostProfile) ClassNames() []string {
	names := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Attribute fixes the per-class vtime shares from the query's phase
// durations. Planning and optimize get their phase durations verbatim;
// the execution makespan is split across operator classes proportionally
// to their busy time, with the class of greatest busy time absorbing the
// integer-division remainder so the shares sum EXACTLY to
// planning+optimize+exec. Deterministic: ties break on class name.
func (p *CostProfile) Attribute(planning, optimize, exec time.Duration) {
	p.Total = planning + optimize + exec
	if planning > 0 || p.Classes[ClassPlanning] != nil {
		p.Add(ClassPlanning, OpCost{})
		p.Classes[ClassPlanning].Share = planning
	}
	if optimize > 0 || p.Classes[ClassOptimize] != nil {
		p.Add(ClassOptimize, OpCost{})
		p.Classes[ClassOptimize].Share = optimize
	}

	// Execution classes: everything that is not a phase class.
	var names []string
	var busyTotal time.Duration
	for name, c := range p.Classes {
		if name == ClassPlanning || name == ClassOptimize {
			continue
		}
		c.Share = 0
		names = append(names, name)
		busyTotal += c.Busy
	}
	sort.Strings(names)
	if exec == 0 {
		return
	}
	if busyTotal == 0 {
		// Nothing recorded busy time (fully cache-served execution):
		// the makespan cannot be split proportionally, so charge it to
		// a dedicated class rather than silently dropping vtime.
		p.Add(ClassUnattributed, OpCost{})
		p.Classes[ClassUnattributed].Share = exec
		return
	}
	// Proportional split. Scaling through float64 then truncating keeps
	// every share <= its exact value; the largest-busy class absorbs the
	// leftover nanoseconds so the sum is exact.
	var acc time.Duration
	biggest := names[0]
	for _, n := range names {
		c := p.Classes[n]
		if c.Busy > p.Classes[biggest].Busy {
			biggest = n
		}
		share := time.Duration(float64(exec) * (float64(c.Busy) / float64(busyTotal)))
		if acc+share > exec {
			share = exec - acc
		}
		c.Share = share
		acc += share
	}
	p.Classes[biggest].Share += exec - acc
}

// ShareSum returns the sum of all class shares (== Total after
// Attribute).
func (p *CostProfile) ShareSum() time.Duration {
	var sum time.Duration
	for _, c := range p.Classes {
		sum += c.Share
	}
	return sum
}

// Totals sums the profile's counters across classes.
func (p *CostProfile) Totals() OpCost {
	var t OpCost
	for _, c := range p.Classes {
		t.add(*c)
	}
	return t
}

// Profiler accumulates per-operator-class cost profiles across the
// lifetime of a system — the data behind /v1/profile. A nil *Profiler
// is a safe no-op.
type Profiler struct {
	mu      sync.Mutex
	queries int64
	total   time.Duration
	classes map[string]*OpCost
}

// NewProfiler returns an empty cumulative profiler.
func NewProfiler() *Profiler {
	return &Profiler{classes: map[string]*OpCost{}}
}

// Record folds one query's profile into the cumulative totals.
func (pr *Profiler) Record(p *CostProfile) {
	if pr == nil || p == nil {
		return
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	pr.queries++
	pr.total += p.Total
	for name, c := range p.Classes {
		e, ok := pr.classes[name]
		if !ok {
			e = &OpCost{}
			pr.classes[name] = e
		}
		e.add(*c)
	}
}

// Queries reports how many profiles have been recorded.
func (pr *Profiler) Queries() int64 {
	if pr == nil {
		return 0
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.queries
}

// TotalVTime reports the cumulative attributed query vtime.
func (pr *Profiler) TotalVTime() time.Duration {
	if pr == nil {
		return 0
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.total
}

// Totals sums the cumulative counters across classes (used by the
// profile.global_bound invariant: these may never exceed the process-
// global registry counters).
func (pr *Profiler) Totals() OpCost {
	if pr == nil {
		return OpCost{}
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	var t OpCost
	for _, c := range pr.classes {
		t.add(*c)
	}
	return t
}

// OpCostJSON is the wire form of one class's cumulative cost counters.
// Durations are virtual-clock seconds; no wall-clock values appear, so
// the snapshot is byte-deterministic for identical workloads.
type OpCostJSON struct {
	Executions     int     `json:"executions"`
	LLMCalls       int     `json:"llm_calls"`
	CachedCalls    int     `json:"cached_calls"`
	InTokens       int     `json:"in_tokens"`
	OutTokens      int     `json:"out_tokens"`
	SkippedDocs    int     `json:"skipped_docs,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	BusySecs       float64 `json:"busy_vtime_secs"`
	ShareSecs      float64 `json:"vtime_share_secs"`
	GrantWaitSecs  float64 `json:"grant_wait_vtime_secs"`
	ShareOfTotal   float64 `json:"share_of_total,omitempty"`
	CacheHitRatio  float64 `json:"cache_hit_ratio,omitempty"`
	CallsPerExec   float64 `json:"calls_per_exec,omitempty"`
	TokensPerCall  float64 `json:"tokens_per_call,omitempty"`
	VTimePerExecMS float64 `json:"vtime_per_exec_ms,omitempty"`
}

func costJSON(c *OpCost, total time.Duration) OpCostJSON {
	j := OpCostJSON{
		Executions:    c.Executions,
		LLMCalls:      c.LLMCalls,
		CachedCalls:   c.CachedCalls,
		InTokens:      c.InTokens,
		OutTokens:     c.OutTokens,
		SkippedDocs:   c.SkippedDocs,
		Retries:       c.Retries,
		BusySecs:      c.Busy.Seconds(),
		ShareSecs:     c.Share.Seconds(),
		GrantWaitSecs: c.GrantWait.Seconds(),
	}
	if total > 0 {
		j.ShareOfTotal = round6(float64(c.Share) / float64(total))
	}
	if calls := c.LLMCalls + c.CachedCalls; calls > 0 {
		j.CacheHitRatio = round6(float64(c.CachedCalls) / float64(calls))
		j.TokensPerCall = round6(float64(c.InTokens+c.OutTokens) / float64(calls))
	}
	if c.Executions > 0 {
		j.CallsPerExec = round6(float64(c.LLMCalls+c.CachedCalls) / float64(c.Executions))
		j.VTimePerExecMS = round6(float64(c.Share) / float64(time.Millisecond) / float64(c.Executions))
	}
	return j
}

// round6 rounds to 6 decimal places for stable, compact JSON.
func round6(v float64) float64 {
	return float64(int64(v*1e6+0.5)) / 1e6
}

// ProfileSnapshot is the wire form of the cumulative profiler.
type ProfileSnapshot struct {
	Queries        int64                 `json:"queries"`
	TotalVTimeSecs float64               `json:"total_vtime_secs"`
	Classes        map[string]OpCostJSON `json:"classes"`
}

// Snapshot returns the cumulative profile in wire form. Map keys are
// sorted by encoding/json, so marshaling the snapshot is deterministic.
func (pr *Profiler) Snapshot() ProfileSnapshot {
	snap := ProfileSnapshot{Classes: map[string]OpCostJSON{}}
	if pr == nil {
		return snap
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	snap.Queries = pr.queries
	snap.TotalVTimeSecs = pr.total.Seconds()
	for name, c := range pr.classes {
		snap.Classes[name] = costJSON(c, pr.total)
	}
	return snap
}

// ProfileJSON returns one query profile's wire form (class key ->
// counters), used when embedding a profile in an Answer or trace.
func (p *CostProfile) JSON() map[string]OpCostJSON {
	if p == nil {
		return nil
	}
	out := make(map[string]OpCostJSON, len(p.Classes))
	for name, c := range p.Classes {
		out[name] = costJSON(c, p.Total)
	}
	return out
}
