package llm

import (
	"fmt"
	"sort"
	"strings"
)

// Prompts exchanged with the model follow a fixed directive format that
// plays the role of the paper's few-shot prompt templates with enforced
// output formats:
//
//	#TASK filter_doc
//	#FIELD condition
//	related to injuries
//	#FIELD doc
//	Title: ...
//	#END
//
// BuildPrompt and ParsePrompt are the only writers/readers of this format.

// BuildPrompt renders a task directive with its fields (sorted by key for
// determinism, so identical logical requests produce identical prompts).
func BuildPrompt(task string, fields map[string]string) string {
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "#TASK %s\n", task)
	for _, k := range keys {
		fmt.Fprintf(&b, "#FIELD %s\n%s\n", k, fields[k])
	}
	b.WriteString("#END")
	return b.String()
}

// ParsePrompt extracts the task name and fields from a prompt built with
// BuildPrompt. ok is false for malformed prompts.
func ParsePrompt(prompt string) (task string, fields map[string]string, ok bool) {
	lines := strings.Split(prompt, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "#TASK ") {
		return "", nil, false
	}
	task = strings.TrimSpace(strings.TrimPrefix(lines[0], "#TASK "))
	if task == "" {
		return "", nil, false
	}
	fields = make(map[string]string)
	var key string
	var val []string
	flush := func() {
		if key != "" {
			fields[key] = strings.Join(val, "\n")
		}
		key, val = "", nil
	}
	for _, ln := range lines[1:] {
		switch {
		case strings.HasPrefix(ln, "#FIELD "):
			flush()
			key = strings.TrimSpace(strings.TrimPrefix(ln, "#FIELD "))
		case ln == "#END":
			flush()
			return task, fields, true
		default:
			val = append(val, ln)
		}
	}
	flush()
	return task, fields, true
}

// DocSep separates documents inside batched prompts.
const DocSep = "\n=====DOC=====\n"

// JoinDocs packs document texts for a batched prompt.
func JoinDocs(docs []string) string { return strings.Join(docs, DocSep) }

// SplitDocs unpacks document texts from a batched prompt field.
func SplitDocs(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, DocSep)
}
