package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"
)

// RetryPolicy configures a Resilient wrapper.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call (retries + 1). Values < 1
	// mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the first retry's virtual delay; each further retry
	// doubles it (capped at MaxBackoff), with deterministic jitter.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// CallTimeout bounds each attempt's wall-clock processing time
	// (guards real backends; the simulated backend never sleeps).
	CallTimeout time.Duration
	// HedgeAfter, when positive, hedges slow calls: a successful response
	// whose simulated duration exceeds this threshold triggers one backup
	// request against another slot, and the faster outcome wins.
	HedgeAfter time.Duration
}

// DefaultRetryPolicy is the policy used when fault injection is enabled:
// up to 3 retries with 50ms..2s backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  2 * time.Second,
		Seed:        17,
	}
}

// Resilient wraps a Client with bounded retry, exponential backoff with
// deterministic jitter, per-attempt timeouts, and optional hedged
// requests. It is virtual-time aware: the simulated cost of failed
// attempts and backoff waits is folded into the successful response's
// duration, so the latency model still charges the slot pool for the
// work the faults consumed.
//
// Only transient failures (IsTransient) are retried; permanent errors —
// malformed prompts, unknown tasks — surface immediately.
type Resilient struct {
	inner Client
	pol   RetryPolicy
	// onEvent observes resilience events ("retry", "hedge", "exhausted")
	// with the call's task family; nil is ignored.
	onEvent func(event, task string)
}

// NewResilient wraps inner under the given policy. onEvent may be nil.
func NewResilient(inner Client, pol RetryPolicy, onEvent func(event, task string)) *Resilient {
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	if pol.BaseBackoff <= 0 {
		pol.BaseBackoff = 50 * time.Millisecond
	}
	if pol.MaxBackoff <= 0 {
		pol.MaxBackoff = 2 * time.Second
	}
	return &Resilient{inner: inner, pol: pol, onEvent: onEvent}
}

// Complete implements Client.
func (r *Resilient) Complete(ctx context.Context, prompt string) (Response, error) {
	task, _, _ := ParsePrompt(prompt)
	if task == "" {
		task = "unknown"
	}
	var penalty time.Duration // virtual cost of failed attempts + backoffs
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		resp, err := r.attempt(ctx, prompt)
		if err == nil {
			resp = r.maybeHedge(ctx, prompt, task, resp)
			if !resp.Cached && penalty > 0 {
				resp.Dur += penalty
			}
			resp.Retries = attempt
			return resp, nil
		}
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
		if !IsTransient(err) {
			return Response{}, err
		}
		lastErr = err
		penalty += FaultDurOf(err, r.inner.Profile())
		if attempt+1 < r.pol.MaxAttempts {
			penalty += r.backoff(prompt, attempt)
			r.emit("retry", task)
		}
	}
	r.emit("exhausted", task)
	return Response{}, fmt.Errorf("llm: %d attempts failed: %w", r.pol.MaxAttempts, lastErr)
}

// attempt runs one try under the per-call timeout.
func (r *Resilient) attempt(ctx context.Context, prompt string) (Response, error) {
	if r.pol.CallTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, r.pol.CallTimeout)
		defer cancel()
		ctx = actx
	}
	return r.inner.Complete(ctx, prompt)
}

// maybeHedge issues one backup request when a successful response was hit
// by a latency spike, keeping the faster of the two outcomes. The backup
// is charged the hedge delay (it starts HedgeAfter into the primary call)
// and runs on a different slot of the pool.
func (r *Resilient) maybeHedge(ctx context.Context, prompt, task string, primary Response) Response {
	if r.pol.HedgeAfter <= 0 || primary.Cached || primary.Dur <= r.pol.HedgeAfter {
		return primary
	}
	backup, err := r.inner.Complete(ctx, prompt)
	r.emit("hedge", task)
	if err != nil {
		return primary
	}
	if hedged := r.pol.HedgeAfter + backup.Dur; hedged < primary.Dur {
		backup.Cached = false // the hedged call occupied a slot for HedgeAfter+Dur
		backup.Dur = hedged
		return backup
	}
	return primary
}

// backoff returns the virtual delay before retry #attempt, exponential
// with deterministic jitter in [0.5, 1.5) of the nominal value.
func (r *Resilient) backoff(prompt string, attempt int) time.Duration {
	d := r.pol.BaseBackoff << uint(attempt)
	if d > r.pol.MaxBackoff {
		d = r.pol.MaxBackoff
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", r.pol.Seed, attempt, prompt)
	jitter := 0.5 + float64(h.Sum64()>>11)/(1<<53)
	return time.Duration(float64(d) * jitter)
}

func (r *Resilient) emit(event, task string) {
	if r.onEvent != nil {
		r.onEvent(event, task)
	}
}

// Profile implements Client.
func (r *Resilient) Profile() Profile { return r.inner.Profile() }

// Unwrap returns the wrapped client.
func (r *Resilient) Unwrap() Client { return r.inner }

var _ Client = (*Resilient)(nil)
