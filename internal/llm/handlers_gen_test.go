package llm

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// mkDoc renders a minimal document with controllable fields.
func mkDoc(title string, views, score, year int, body string) string {
	return "Title: " + title + "\nViews: " + strconv.Itoa(views) +
		"\nScore: " + strconv.Itoa(score) + "\nPosted: " + strconv.Itoa(year) +
		"\nTags: t\nBody: " + body
}

var genDocs = []string{
	mkDoc("F1", 100, 5, 2015, "football goalkeeper penalty drills warmup"),
	mkDoc("F2", 900, 9, 2018, "football striker offside injury pain"),
	mkDoc("T1", 300, 4, 2016, "tennis racket serve practice workout"),
	mkDoc("T2", 50, 3, 2012, "tennis backhand volley injury sprain"),
	mkDoc("B1", 700, 8, 2020, "basketball dunk rebound training drill"),
}

func genAsk(t *testing.T, s *Sim, question string) string {
	t.Helper()
	return ask(t, s, "generate", map[string]string{
		"question": question,
		"context":  JoinDocs(genDocs),
	})
}

func TestGenerateAggregates(t *testing.T) {
	s := testSim()
	cases := map[string]string{
		"How many questions are about football?":                           "2",
		"How many questions about tennis have more than 100 views?":        "1",
		"What is the maximum score among questions about football?":        "9",
		"What is the total number of views across questions about tennis?": "350",
	}
	for q, want := range cases {
		if got := genAsk(t, s, q); got != want {
			t.Errorf("generate(%q) = %q, want %q", q, got, want)
		}
	}
}

func TestGenerateGroupArgmax(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Which sport has the most questions with at least 4 upvotes?")
	if got != "football" && got != "tennis" {
		t.Errorf("group argmax = %q", got)
	}
	// football has 2 docs with score >= 4; tennis has 1 -> football.
	if got != "football" {
		t.Errorf("argmax = %q, want football", got)
	}
}

func TestGenerateCompare(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Are there more questions related to injury or questions related to training?")
	// injury: F2, T2 (2 hits each); training: F1, T1, B1 (3 docs).
	if got != "second" {
		t.Errorf("compare = %q, want second", got)
	}
}

func TestGenerateUnknownOnOutOfGrammar(t *testing.T) {
	s := testSim()
	if got := genAsk(t, s, "write a novel about these documents"); got != "unknown" {
		t.Errorf("out-of-grammar generate = %q, want unknown", got)
	}
}

func TestDecompose(t *testing.T) {
	s := testSim()
	out := ask(t, s, "decompose", map[string]string{
		"question": "How many questions about football have more than 500 views?",
	})
	var subs []string
	if err := json.Unmarshal([]byte(out), &subs); err != nil {
		t.Fatalf("decompose output %q: %v", out, err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %v, want 2 retrieval sub-queries", subs)
	}
	joined := strings.Join(subs, "|")
	if !strings.Contains(joined, "football") {
		t.Errorf("subs lost the concept: %v", subs)
	}
}

func TestPlanOneshotCleanWithoutNoise(t *testing.T) {
	s := testSim() // zero noise: the plan must be faithful
	out := ask(t, s, "plan_oneshot", map[string]string{
		"question": "How many questions about football have more than 500 views?",
	})
	var steps []OneshotStep
	if err := json.Unmarshal([]byte(out), &steps); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %+v, want Filter,Filter,Count", steps)
	}
	if steps[len(steps)-1].Op != "Count" {
		t.Errorf("last op = %s", steps[len(steps)-1].Op)
	}
}

func TestPlanOneshotCorruptsUnderNoise(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.PlanNoise = 10 // force corruption
	s := NewSim(cfg)
	out := ask(t, s, "plan_oneshot", map[string]string{
		"question": "How many questions about football have more than 500 views?",
	})
	var steps []OneshotStep
	if err := json.Unmarshal([]byte(out), &steps); err != nil {
		t.Fatal(err)
	}
	// A corrupted plan either lost a filter or swapped its concept.
	if len(steps) == 3 {
		swapped := false
		for _, st := range steps {
			if c := st.Args["Condition"]; strings.Contains(c, "related to") && !strings.Contains(c, "football") {
				swapped = true
			}
		}
		if !swapped {
			t.Errorf("forced corruption left the plan intact: %+v", steps)
		}
	}
}

func TestJudgeAnswersMajority(t *testing.T) {
	s := testSim()
	cands, _ := json.Marshal([]string{"42", "41.9", "42", "7", "42"})
	out := ask(t, s, "judge_answers", map[string]string{
		"question":   "q",
		"candidates": string(cands),
	})
	idx, err := strconv.Atoi(out)
	if err != nil || idx < 0 || idx > 4 {
		t.Fatalf("judge index %q", out)
	}
	var list []string
	json.Unmarshal(cands, &list)
	if list[idx] != "42" {
		t.Errorf("judge picked %q, want the majority 42", list[idx])
	}
}

func TestSampleChunkAndCombine(t *testing.T) {
	s := testSim()
	p1 := ask(t, s, "sample_chunk", map[string]string{
		"question": "How many questions are about football?",
		"docs":     JoinDocs(genDocs[:3]),
		"state":    "",
	})
	p2 := ask(t, s, "sample_chunk", map[string]string{
		"question": "How many questions are about football?",
		"docs":     JoinDocs(genDocs[3:]),
		"state":    p1,
	})
	// The cumulated state carries both partials.
	if len(strings.Split(p2, ";")) != 2 {
		t.Fatalf("state not cumulated: %q", p2)
	}
	final := ask(t, s, "sample_combine", map[string]string{
		"question": "How many questions are about football?",
		"partials": strings.ReplaceAll(p2, "; ", "\n"),
		"scale":    "2",
	})
	got, err := strconv.ParseFloat(final, 64)
	if err != nil {
		t.Fatalf("combine output %q", final)
	}
	// 2 football docs observed, scale 2 -> 4.
	if got != 4 {
		t.Errorf("combine = %v, want 4", got)
	}
}

func TestGenerateLabelsAndIntersection(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Which sports appear both among questions with over 200 views and among questions related to injury?")
	// over 200 views: F2(900), T1(300), B1(700); injury: F2, T2.
	// sports(>200): football, tennis, basketball; sports(injury): football, tennis.
	if got != "football, tennis" {
		t.Errorf("intersection = %q", got)
	}
}

func TestGenerateTitleArgmax(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Which question about tennis has the highest score?")
	if got != "T1" {
		t.Errorf("title = %q", got)
	}
}

func TestGenerateFraction(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "What fraction of questions about football are related to injury?")
	if got != "0.5" {
		t.Errorf("fraction = %q", got)
	}
}

func TestGenerateMedianAndPercentile(t *testing.T) {
	s := testSim()
	if got := genAsk(t, s, "What is the median number of views for questions about football?"); got != "500" {
		t.Errorf("median = %q", got)
	}
	if got := genAsk(t, s, "What is the 75th percentile of views for questions about football?"); got != "900" {
		t.Errorf("percentile = %q", got)
	}
}

func TestGenerateTopKTitles(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "List the top 2 most viewed questions about football.")
	if got != "F2, F1" {
		t.Errorf("topk = %q", got)
	}
}

func TestGenerateSubsetGrouping(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Among sports involving a ball, which one has the most questions related to training?")
	// training hits: F1 (drills warmup), T1 (practice workout), B1 (training drill):
	// football 1, tennis 1, basketball 1 — tie broken alphabetically.
	if got != "basketball" {
		t.Errorf("subset grouping = %q", got)
	}
}

func TestGenerateSortedDocs(t *testing.T) {
	s := testSim()
	got := genAsk(t, s, "Sort the questions about football by views in descending order.")
	if got != "F2, F1" {
		t.Errorf("sorted = %q", got)
	}
}
