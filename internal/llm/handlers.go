package llm

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"unify/internal/expr"
	"unify/internal/lexicon"
	"unify/internal/nlcond"
	"unify/internal/nlq"
)

// handlerTable wires every prompt family the system issues to its
// simulated behavior. Handlers read only prompt fields (query text,
// document text, operator names) plus lexicon knowledge — never hidden
// corpus metadata — so semantic work is genuine text comprehension.
func handlerTable() map[string]func(*Sim, map[string]string) (string, error) {
	return map[string]func(*Sim, map[string]string) (string, error){
		"parse_query":     (*Sim).handleParseQuery,
		"simple_question": (*Sim).handleSimpleQuestion,
		"rerank_op":       (*Sim).handleRerankOp,
		"reduce_query":    (*Sim).handleReduceQuery,
		"dep_check":       (*Sim).handleDepCheck,
		"filter_doc":      (*Sim).handleFilterDoc,
		"filter_batch":    (*Sim).handleFilterBatch,
		"filter_label":    (*Sim).handleFilterLabel,
		"classify_doc":    (*Sim).handleClassifyDoc,
		"classify_batch":  (*Sim).handleClassifyBatch,
		"extract_doc":     (*Sim).handleExtractDoc,
		"extract_batch":   (*Sim).handleExtractBatch,
		"compare_vals":    (*Sim).handleCompareVals,
		"agg_list":        (*Sim).handleAggList,
		"compute":         (*Sim).handleCompute,
		"generate":        (*Sim).handleGenerate,
		"decompose":       (*Sim).handleDecompose,
		"sample_chunk":    (*Sim).handleSampleChunk,
		"sample_combine":  (*Sim).handleSampleCombine,
		"plan_oneshot":    (*Sim).handlePlanOneshot,
		"judge_answers":   (*Sim).handleJudgeAnswers,
	}
}

// ---- Planner-side handlers (paper §V) ----

// ParseResult is the JSON shape returned by the parse_query task.
type ParseResult struct {
	OK bool   `json:"ok"`
	LR string `json:"lr,omitempty"`
}

func (s *Sim) handleParseQuery(f map[string]string) (string, error) {
	q, err := nlq.Parse(f["query"])
	if err != nil {
		return marshal(ParseResult{OK: false})
	}
	return marshal(ParseResult{OK: true, LR: q.LogicalRep()})
}

func (s *Sim) handleSimpleQuestion(f map[string]string) (string, error) {
	text := strings.TrimSpace(f["query"])
	if _, ok := nlq.ParseVarRef(text); ok {
		return "yes", nil
	}
	q, err := nlq.Parse(text)
	if err == nil && q.Solved() {
		return "yes", nil
	}
	return "no", nil
}

func (s *Sim) handleRerankOp(f map[string]string) (string, error) {
	q, err := nlq.Parse(f["query"])
	if err != nil {
		return "not", nil
	}
	op := strings.TrimSpace(f["operator"])
	degree := "not"
	if red, ok := nlq.Reduce(q, op, 9999); ok {
		if red.Query.Solved() {
			degree = "fully"
		} else {
			degree = "partially"
		}
	}
	// Occasional misjudgment: downgrade an applicable operator or
	// upgrade a blocked-but-present one (costs the planner a wasted
	// reduction attempt and a backtrack).
	if s.chance(s.cfg.RerankNoise, "rerank", f["query"], op) {
		if degree == "partially" {
			degree = "not"
		} else if degree == "not" && nlq.Mentions(q, op) {
			degree = "partially"
		}
	}
	return degree, nil
}

// ReduceResult is the JSON shape returned by the reduce_query task.
type ReduceResult struct {
	OK        bool              `json:"ok"`
	Reduced   string            `json:"reduced,omitempty"`
	Rewritten string            `json:"rewritten,omitempty"` // matched segment in LR form
	Var       string            `json:"var,omitempty"`
	Desc      string            `json:"desc,omitempty"`
	Inputs    []string          `json:"inputs,omitempty"`
	Args      map[string]string `json:"args,omitempty"` // structured slot output
}

var rePlaceholder = regexp.MustCompile(`\[(Entity|Condition|Attribute|Number|Field)\]`)

// instantiateLR fills an operator logical representation with concrete
// argument values, producing the "rewritten segment" the planner parses
// with regular expressions (paper §III-C).
func instantiateLR(lr string, args map[string]string) string {
	usedEntity := false
	return rePlaceholder.ReplaceAllStringFunc(lr, func(ph string) string {
		key := strings.Trim(ph, "[]")
		if key == "Entity" {
			if usedEntity && args["Entity2"] != "" {
				return args["Entity2"]
			}
			usedEntity = true
		}
		if v, ok := args[key]; ok && v != "" {
			return v
		}
		return ph
	})
}

func (s *Sim) handleReduceQuery(f map[string]string) (string, error) {
	q, err := nlq.Parse(f["query"])
	if err != nil {
		return marshal(ReduceResult{OK: false})
	}
	next, err := strconv.Atoi(strings.TrimSpace(f["next"]))
	if err != nil {
		return "", fmt.Errorf("bad next var index %q", f["next"])
	}
	op := strings.TrimSpace(f["operator"])
	variant := 0
	if v, err := strconv.Atoi(strings.TrimSpace(f["variant"])); err == nil {
		variant = v
	}
	red, ok := nlq.ReduceVariant(q, op, next, variant)
	if !ok {
		return marshal(ReduceResult{OK: false})
	}
	args := red.Args
	desc := red.VarDesc
	// Mis-binding noise: swap a concept condition for a sibling concept —
	// the reduction "succeeds" but solves a subtly different query.
	if cond, isCond := args["Condition"]; isCond && s.chance(s.cfg.BindNoise, "bind", f["query"], op) {
		if c, okc := nlcond.Parse(cond); okc && c.Kind == nlcond.Concept {
			if sib := siblingConcept(c.Concept); sib != "" {
				wrong := "related to " + sib
				desc = strings.Replace(desc, cond, wrong, 1)
				args = copyArgs(args)
				args["Condition"] = wrong
			}
		}
	}
	return marshal(ReduceResult{
		OK:        true,
		Reduced:   red.Query.Render(),
		Rewritten: instantiateLR(f["lr"], args),
		Var:       red.VarName,
		Desc:      desc,
		Inputs:    red.Inputs,
		Args:      args,
	})
}

func copyArgs(a map[string]string) map[string]string {
	out := make(map[string]string, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// siblingConcept returns another concept of the same class, or "".
func siblingConcept(name string) string {
	c, ok := lexicon.Lookup(name)
	if !ok {
		return ""
	}
	names := lexicon.Names(c.Class)
	for i, n := range names {
		if n == c.Name {
			return names[(i+1)%len(names)]
		}
	}
	return ""
}

func (s *Sim) handleDepCheck(f map[string]string) (string, error) {
	out := strings.TrimSpace(f["output"])
	if out != "" && strings.Contains(f["inputs"], out) {
		return "yes", nil
	}
	return "no", nil
}

// ---- Operator-side handlers (paper §IV LLM-based implementations) ----

// judgeCondition evaluates a condition against document text, with the
// per-judgment noise model applied.
func (s *Sim) judgeCondition(condText, doc string) bool {
	cond, ok := nlcond.Parse(condText)
	if !ok {
		cond = nlcond.Cond{Kind: nlcond.Concept, Concept: nlcond.NormalizeConcept(condText)}
	}
	v := cond.EvalSemantic(doc)
	// Judgment noise is asymmetric, as with real models on this task:
	// missing a relevant document (flipping yes->no) is far more common
	// than hallucinating relevance across thousands of negatives — a
	// symmetric rate would bury small result sets in false positives.
	p := s.cfg.FilterNoise
	if !v {
		p /= 8
	}
	if s.chance(p, "filter", condText, docKey(doc)) {
		v = !v
	}
	return v
}

// docKey shortens a document text to a stable identity for noise keying.
func docKey(doc string) string {
	if len(doc) > 96 {
		return doc[:96]
	}
	return doc
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

func (s *Sim) handleFilterDoc(f map[string]string) (string, error) {
	return yesNo(s.judgeCondition(f["condition"], f["doc"])), nil
}

func (s *Sim) handleFilterBatch(f map[string]string) (string, error) {
	docs := SplitDocs(f["docs"])
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = yesNo(s.judgeCondition(f["condition"], d))
	}
	return strings.Join(out, ","), nil
}

func (s *Sim) handleFilterLabel(f map[string]string) (string, error) {
	cond, ok := nlcond.Parse(f["condition"])
	if !ok {
		return "no", nil
	}
	return yesNo(cond.EvalLabel(strings.TrimSpace(f["label"]))), nil
}

// classClasses maps a surface class word to the candidate lexicon classes
// it may denote; the document's content disambiguates.
func classClasses(word string) []string {
	switch strings.TrimSpace(strings.ToLower(word)) {
	case "sport":
		return []string{"sport"}
	case "field":
		return []string{"aifield"}
	case "area":
		return []string{"lawarea"}
	case "category":
		return []string{"wikicat"}
	case "topic":
		return []string{"topic", "aiaspect", "lawaspect", "wikiaspect"}
	default:
		return []string{"topic"}
	}
}

// classifyDoc picks the best label of the surface class for a document.
func (s *Sim) classifyDoc(classWord, doc string) string {
	best, bestHits := "", -1
	for _, class := range classClasses(classWord) {
		if label := lexicon.BestConcept(doc, class); label != "" {
			hits := conceptHits(doc, label)
			if hits > bestHits {
				best, bestHits = label, hits
			}
		}
	}
	if best == "" {
		return "unknown"
	}
	if s.chance(s.cfg.LabelNoise, "label", classWord, docKey(doc)) {
		if sib := siblingConcept(best); sib != "" {
			return sib
		}
	}
	return best
}

func conceptHits(text, name string) int {
	c, ok := lexicon.Lookup(name)
	if !ok {
		return 0
	}
	hits := 0
	for _, w := range c.Words {
		if lexicon.Match(text, w, 1) {
			hits++
		}
	}
	return hits
}

func (s *Sim) handleClassifyDoc(f map[string]string) (string, error) {
	return s.classifyDoc(f["class"], f["doc"]), nil
}

func (s *Sim) handleClassifyBatch(f map[string]string) (string, error) {
	docs := SplitDocs(f["docs"])
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = s.classifyDoc(f["class"], d)
	}
	return strings.Join(out, ","), nil
}

var reTitleLine = regexp.MustCompile(`(?m)^Title:\s*(.+)$`)

func (s *Sim) handleExtractDoc(f map[string]string) (string, error) {
	target := strings.ToLower(strings.TrimSpace(f["target"]))
	doc := f["doc"]
	switch target {
	case "title":
		if m := reTitleLine.FindStringSubmatch(doc); m != nil {
			return strings.TrimSpace(m[1]), nil
		}
		return "unknown", nil
	case "views", "score", "year":
		if v, ok := nlcond.ExtractField(doc, target); ok {
			return strconv.FormatFloat(v, 'f', -1, 64), nil
		}
		return "unknown", nil
	default:
		// Concept-valued extraction ("sport", "topic", ...).
		return s.classifyDoc(target, doc), nil
	}
}

func (s *Sim) handleExtractBatch(f map[string]string) (string, error) {
	docs := SplitDocs(f["docs"])
	out := make([]string, len(docs))
	for i, d := range docs {
		v, err := s.handleExtractDoc(map[string]string{"target": f["target"], "doc": d})
		if err != nil {
			return "", err
		}
		out[i] = v
	}
	return strings.Join(out, ","), nil
}

func (s *Sim) handleCompareVals(f map[string]string) (string, error) {
	a, errA := strconv.ParseFloat(strings.TrimSpace(f["a"]), 64)
	b, errB := strconv.ParseFloat(strings.TrimSpace(f["b"]), 64)
	if errA != nil || errB != nil {
		return "", fmt.Errorf("compare_vals: non-numeric operands %q %q", f["a"], f["b"])
	}
	if a >= b {
		return "first", nil
	}
	return "second", nil
}

func (s *Sim) handleAggList(f map[string]string) (string, error) {
	kind := strings.TrimSpace(f["kind"])
	var vals []float64
	for _, ln := range strings.Split(f["values"], "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		v, err := strconv.ParseFloat(ln, 64)
		if err != nil {
			if kind == "count" {
				vals = append(vals, 0)
				continue
			}
			return "", fmt.Errorf("agg_list: bad value %q", ln)
		}
		vals = append(vals, v)
	}
	if kind == "count" {
		return strconv.Itoa(len(vals)), nil
	}
	if len(vals) == 0 {
		return "0", nil
	}
	var out float64
	switch kind {
	case "sum":
		for _, v := range vals {
			out += v
		}
	case "average":
		for _, v := range vals {
			out += v
		}
		out /= float64(len(vals))
	case "max":
		out = vals[0]
		for _, v := range vals {
			if v > out {
				out = v
			}
		}
	case "min":
		out = vals[0]
		for _, v := range vals {
			if v < out {
				out = v
			}
		}
	case "median":
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			out = vals[mid]
		} else {
			out = (vals[mid-1] + vals[mid]) / 2
		}
	default:
		if strings.HasPrefix(kind, "percentile:") {
			p, err := strconv.Atoi(strings.TrimPrefix(kind, "percentile:"))
			if err != nil {
				return "", fmt.Errorf("agg_list: bad percentile %q", kind)
			}
			sort.Float64s(vals)
			idx := (p*len(vals) + 99) / 100
			if idx < 1 {
				idx = 1
			}
			if idx > len(vals) {
				idx = len(vals)
			}
			out = vals[idx-1]
		} else {
			return "", fmt.Errorf("agg_list: unknown kind %q", kind)
		}
	}
	return strconv.FormatFloat(out, 'f', -1, 64), nil
}

func (s *Sim) handleCompute(f map[string]string) (string, error) {
	vars := map[string]float64{}
	for _, ln := range strings.Split(f["bindings"], "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" {
			continue
		}
		name, valStr, ok := strings.Cut(ln, "=")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
		if err != nil {
			continue
		}
		vars[strings.TrimSpace(name)] = v
	}
	v, err := expr.Eval(f["expression"], vars)
	if err != nil {
		return "", err
	}
	return strconv.FormatFloat(v, 'f', -1, 64), nil
}

func marshal(v interface{}) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
