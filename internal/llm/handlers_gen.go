package llm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"unify/internal/nlcond"
	"unify/internal/nlq"
)

// This file implements the free-form generation tasks: answering a query
// from a context window (the Generate operator and the RAG baselines),
// query decomposition (RecurRAG), one-shot plan generation (LLMPlan), and
// answer judging (Exhaust). The generator parses the question with the
// same comprehension grammar and evaluates it over ONLY the documents
// present in the prompt context — faithfully reproducing why RAG-style
// baselines fail on aggregates: the context never holds the whole corpus.

// genVal is the simulated model's internal value during evaluation.
type genVal struct {
	kind   string // "docs", "num", "vec", "groups", "labels", "str"
	docs   []string
	num    float64
	vec    map[string]float64
	groups map[string][]string
	labels []string
	str    string
}

func (s *Sim) handleGenerate(f map[string]string) (string, error) {
	docs := SplitDocs(f["context"])
	q, err := nlq.Parse(f["question"])
	if err != nil {
		return "unknown", nil
	}
	v, err := s.evalNode(q.Root, docs)
	if err != nil {
		return "unknown", nil
	}
	return formatGenVal(v), nil
}

func formatGenVal(v genVal) string {
	switch v.kind {
	case "num":
		return strconv.FormatFloat(v.num, 'f', -1, 64)
	case "str":
		return v.str
	case "labels":
		out := append([]string(nil), v.labels...)
		sort.Strings(out)
		return strings.Join(out, ", ")
	case "docs":
		titles := make([]string, 0, len(v.docs))
		for _, d := range v.docs {
			if m := reTitleLine.FindStringSubmatch(d); m != nil {
				titles = append(titles, strings.TrimSpace(m[1]))
			}
		}
		return strings.Join(titles, ", ")
	case "vec":
		keys := make([]string, 0, len(v.vec))
		for k := range v.vec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%g", k, v.vec[k])
		}
		return strings.Join(parts, ", ")
	default:
		return "unknown"
	}
}

func (s *Sim) evalNode(n *nlq.Node, docs []string) (genVal, error) {
	switch n.Kind {
	case "var":
		return genVal{}, fmt.Errorf("unbound variable %s", n.Ref)
	case "set":
		return s.evalSet(n, docs)
	case "group":
		base, err := s.evalNode(n.Over, docs)
		if err != nil || base.kind != "docs" {
			return genVal{}, fmt.Errorf("ungroupable operand")
		}
		groups := map[string][]string{}
		for _, d := range base.docs {
			label := s.classifyDoc(n.Class, d)
			if label != "unknown" {
				groups[label] = append(groups[label], d)
			}
		}
		return genVal{kind: "groups", groups: groups}, nil
	case "agg":
		return s.evalAgg(n, docs)
	case "ratio":
		a, errA := s.evalNode(n.A, docs)
		b, errB := s.evalNode(n.B, docs)
		if errA != nil || errB != nil {
			return genVal{}, fmt.Errorf("ratio operand error")
		}
		if a.kind == "num" && b.kind == "num" {
			if b.num == 0 {
				return genVal{}, fmt.Errorf("ratio division by zero")
			}
			return genVal{kind: "num", num: a.num / b.num}, nil
		}
		if a.kind == "vec" && b.kind == "vec" {
			out := map[string]float64{}
			for k, av := range a.vec {
				if bv, ok := b.vec[k]; ok && bv != 0 {
					out[k] = av / bv
				}
			}
			return genVal{kind: "vec", vec: out}, nil
		}
		return genVal{}, fmt.Errorf("ratio kind mismatch")
	case "compare":
		a, errA := s.evalNode(n.A, docs)
		b, errB := s.evalNode(n.B, docs)
		if errA != nil || errB != nil || a.kind != "num" || b.kind != "num" {
			return genVal{}, fmt.Errorf("compare operand error")
		}
		if a.num >= b.num {
			return genVal{kind: "str", str: "first"}, nil
		}
		return genVal{kind: "str", str: "second"}, nil
	case "setop":
		return s.evalSetOp(n, docs)
	case "labels":
		base, err := s.evalNode(n.Over, docs)
		if err != nil || base.kind != "docs" {
			return genVal{}, fmt.Errorf("labels operand error")
		}
		seen := map[string]bool{}
		var labels []string
		for _, d := range base.docs {
			label := s.classifyDoc(n.Class, d)
			if label != "unknown" && !seen[label] {
				seen[label] = true
				labels = append(labels, label)
			}
		}
		return genVal{kind: "labels", labels: labels}, nil
	case "title":
		base, err := s.evalNode(n.Over, docs)
		if err != nil || base.kind != "docs" || len(base.docs) == 0 {
			return genVal{}, fmt.Errorf("title operand error")
		}
		if m := reTitleLine.FindStringSubmatch(base.docs[0]); m != nil {
			return genVal{kind: "str", str: strings.TrimSpace(m[1])}, nil
		}
		return genVal{}, fmt.Errorf("no title")
	case "classify":
		base, err := s.evalNode(n.Over, docs)
		if err != nil || base.kind != "docs" || len(base.docs) == 0 {
			return genVal{}, fmt.Errorf("classify operand error")
		}
		return genVal{kind: "str", str: s.classifyDoc(n.Class, base.docs[0])}, nil
	case "pick":
		return s.evalPick(n, docs)
	default:
		return genVal{}, fmt.Errorf("unsupported node %q", n.Kind)
	}
}

func (s *Sim) evalSet(n *nlq.Node, docs []string) (genVal, error) {
	var base genVal
	switch {
	case n.Over != nil:
		v, err := s.evalNode(n.Over, docs)
		if err != nil {
			return genVal{}, err
		}
		base = v
	case strings.HasPrefix(n.Base, "{"):
		return genVal{}, fmt.Errorf("unbound base %s", n.Base)
	default:
		base = genVal{kind: "docs", docs: docs}
	}
	for _, flt := range n.Filters {
		switch base.kind {
		case "docs":
			kept := base.docs[:0:0]
			for _, d := range base.docs {
				if s.judgeCondition(condText(flt), d) {
					kept = append(kept, d)
				}
			}
			base = genVal{kind: "docs", docs: kept}
		case "groups":
			kept := map[string][]string{}
			for label, members := range base.groups {
				if flt.Cond.Kind == nlcond.Subset {
					// Subset conditions restrict the group labels.
					if flt.Cond.EvalLabel(label) {
						kept[label] = members
					}
					continue
				}
				// Other conditions filter members within each group.
				var sub []string
				for _, d := range members {
					if s.judgeCondition(condText(flt), d) {
						sub = append(sub, d)
					}
				}
				kept[label] = sub
			}
			base = genVal{kind: "groups", groups: kept}
		default:
			return genVal{}, fmt.Errorf("unfilterable operand")
		}
	}
	return base, nil
}

func condText(f nlq.Filter) string {
	if f.Text != "" {
		return f.Text
	}
	return f.Cond.String()
}

func (s *Sim) evalAgg(n *nlq.Node, docs []string) (genVal, error) {
	base, err := s.evalNode(n.Over, docs)
	if err != nil {
		return genVal{}, err
	}
	switch base.kind {
	case "docs":
		v, err := aggDocs(n, base.docs)
		if err != nil {
			return genVal{}, err
		}
		return genVal{kind: "num", num: v}, nil
	case "groups":
		out := map[string]float64{}
		for label, members := range base.groups {
			v, err := aggDocs(n, members)
			if err != nil {
				return genVal{}, err
			}
			out[label] = v
		}
		return genVal{kind: "vec", vec: out}, nil
	default:
		return genVal{}, fmt.Errorf("unaggregatable operand")
	}
}

func aggDocs(n *nlq.Node, docs []string) (float64, error) {
	if n.Agg == nlq.AggCount {
		return float64(len(docs)), nil
	}
	var vals []float64
	for _, d := range docs {
		if v, ok := nlcond.ExtractField(d, n.Field); ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, nil
	}
	switch n.Agg {
	case nlq.AggSum:
		var t float64
		for _, v := range vals {
			t += v
		}
		return t, nil
	case nlq.AggAvg:
		var t float64
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals)), nil
	case nlq.AggMax:
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m, nil
	case nlq.AggMin:
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m, nil
	case nlq.AggMedian:
		sort.Float64s(vals)
		mid := len(vals) / 2
		if len(vals)%2 == 1 {
			return vals[mid], nil
		}
		return (vals[mid-1] + vals[mid]) / 2, nil
	case nlq.AggPercentile:
		sort.Float64s(vals)
		idx := (n.P*len(vals) + 99) / 100
		if idx < 1 {
			idx = 1
		}
		if idx > len(vals) {
			idx = len(vals)
		}
		return vals[idx-1], nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", n.Agg)
	}
}

func (s *Sim) evalSetOp(n *nlq.Node, docs []string) (genVal, error) {
	a, errA := s.evalNode(n.A, docs)
	b, errB := s.evalNode(n.B, docs)
	if errA != nil || errB != nil {
		return genVal{}, fmt.Errorf("set operand error")
	}
	if a.kind == "labels" && b.kind == "labels" {
		inB := map[string]bool{}
		for _, l := range b.labels {
			inB[l] = true
		}
		var out []string
		switch n.SetOp {
		case "union":
			seen := map[string]bool{}
			for _, l := range append(append([]string{}, a.labels...), b.labels...) {
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
		case "intersection":
			for _, l := range a.labels {
				if inB[l] {
					out = append(out, l)
				}
			}
		default:
			for _, l := range a.labels {
				if !inB[l] {
					out = append(out, l)
				}
			}
		}
		return genVal{kind: "labels", labels: out}, nil
	}
	if a.kind == "docs" && b.kind == "docs" {
		inB := map[string]bool{}
		for _, d := range b.docs {
			inB[docKey(d)] = true
		}
		var out []string
		switch n.SetOp {
		case "union":
			seen := map[string]bool{}
			for _, d := range append(append([]string{}, a.docs...), b.docs...) {
				if !seen[docKey(d)] {
					seen[docKey(d)] = true
					out = append(out, d)
				}
			}
		case "intersection":
			for _, d := range a.docs {
				if inB[docKey(d)] {
					out = append(out, d)
				}
			}
		default:
			for _, d := range a.docs {
				if !inB[docKey(d)] {
					out = append(out, d)
				}
			}
		}
		return genVal{kind: "docs", docs: out}, nil
	}
	return genVal{}, fmt.Errorf("setop kind mismatch")
}

func (s *Sim) evalPick(n *nlq.Node, docs []string) (genVal, error) {
	base, err := s.evalNode(n.Over, docs)
	if err != nil {
		return genVal{}, err
	}
	switch {
	case n.Want == "docs" && base.kind == "docs":
		type scoredDoc struct {
			doc string
			val float64
		}
		scored := make([]scoredDoc, 0, len(base.docs))
		for _, d := range base.docs {
			v, ok := nlcond.ExtractField(d, n.By)
			if !ok {
				continue
			}
			scored = append(scored, scoredDoc{d, v})
		}
		sort.SliceStable(scored, func(i, j int) bool {
			if n.Dir == "asc" {
				return scored[i].val < scored[j].val
			}
			return scored[i].val > scored[j].val
		})
		k := n.K
		if k <= 0 || k > len(scored) {
			k = len(scored)
		}
		out := make([]string, k)
		for i := 0; i < k; i++ {
			out[i] = scored[i].doc
		}
		return genVal{kind: "docs", docs: out}, nil
	case base.kind == "vec":
		type entry struct {
			label string
			val   float64
		}
		entries := make([]entry, 0, len(base.vec))
		for k, v := range base.vec {
			entries = append(entries, entry{k, v})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].val != entries[j].val {
				if n.Dir == "asc" {
					return entries[i].val < entries[j].val
				}
				return entries[i].val > entries[j].val
			}
			return entries[i].label < entries[j].label
		})
		k := n.K
		if k <= 0 || k > len(entries) {
			k = len(entries)
		}
		if k == 1 && len(entries) > 0 {
			return genVal{kind: "str", str: entries[0].label}, nil
		}
		out := make([]string, k)
		for i := 0; i < k; i++ {
			out[i] = entries[i].label
		}
		return genVal{kind: "labels", labels: out}, nil
	default:
		return genVal{}, fmt.Errorf("unpickable operand")
	}
}
