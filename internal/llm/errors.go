package llm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors returned by clients. Retry logic distinguishes transient
// failures (worth retrying) from permanent ones (malformed requests,
// unknown tasks) via errors.Is, so every client implementation should wrap
// these sentinels rather than invent bare strings.
var (
	// ErrMalformed marks a prompt that does not follow the directive
	// format; retrying cannot help.
	ErrMalformed = errors.New("llm: malformed prompt")
	// ErrUnknownTask marks a prompt whose #TASK directive names no
	// registered handler; retrying cannot help.
	ErrUnknownTask = errors.New("llm: unknown task")
	// ErrTransient marks a failure expected to clear on retry (dropped
	// request, overloaded slot, injected fault).
	ErrTransient = errors.New("llm: transient failure")
)

// TaskError wraps a handler failure with the task that produced it, so
// callers can both match the underlying cause with errors.Is and report
// which task family failed.
type TaskError struct {
	Task string
	Err  error
}

// Error implements error.
func (e *TaskError) Error() string { return fmt.Sprintf("llm: task %s: %v", e.Task, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// IsTransient reports whether err is worth retrying: transient failures
// and per-call deadline expiries qualify; malformed prompts, unknown
// tasks, and other permanent conditions do not.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, context.DeadlineExceeded)
}

// DurationCarrier is implemented by errors that carry a simulated
// duration: the virtual time the failed attempt occupied before erroring
// (a timed-out call costs its full deadline; a dropped request costs a
// round trip). Retry wrappers charge this to the latency model.
type DurationCarrier interface{ FaultDur() time.Duration }

// FaultDurOf extracts the simulated cost of a failed attempt, falling
// back to one base round trip on the given profile.
func FaultDurOf(err error, p Profile) time.Duration {
	var dc DurationCarrier
	if errors.As(err, &dc) {
		if d := dc.FaultDur(); d > 0 {
			return d
		}
	}
	return p.Base
}
