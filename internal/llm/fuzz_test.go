package llm

import (
	"context"
	"errors"
	"testing"
	"unicode/utf8"
)

// FuzzParsePrompt checks the prompt wire format: parsing arbitrary bytes
// must never panic, and every successfully parsed prompt must round-trip
// through BuildPrompt unchanged.
func FuzzParsePrompt(f *testing.F) {
	f.Add(BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": "text"}))
	f.Add(BuildPrompt("generate", map[string]string{"q": "multi\nline\nvalue"}))
	f.Add(BuildPrompt("t", map[string]string{"": ""}))
	f.Add("#TASK demo")
	f.Add("#TASK ")
	f.Add("plain text")
	f.Add("")
	f.Add("#FIELD a\nvalue\n#TASK late")
	f.Fuzz(func(t *testing.T, prompt string) {
		task, fields, ok := ParsePrompt(prompt)
		if !ok {
			return
		}
		if task == "" {
			t.Fatal("ok parse with empty task")
		}
		rebuilt := BuildPrompt(task, fields)
		task2, fields2, ok2 := ParsePrompt(rebuilt)
		if !ok2 || task2 != task {
			t.Fatalf("round trip lost task: %q -> %q (ok=%v)", task, task2, ok2)
		}
		if len(fields2) != len(fields) {
			t.Fatalf("round trip changed field count: %d -> %d", len(fields), len(fields2))
		}
		for k, v := range fields {
			if fields2[k] != v {
				t.Fatalf("round trip changed field %q: %q -> %q", k, v, fields2[k])
			}
		}
	})
}

// FuzzBatchKey checks the batching compatibility key (satellite of the
// continuous-batching PR): computing keys for arbitrary prompt pairs must
// never panic; key equality must be symmetric, stable across repeated
// calls, and must only relate prompts of the same batchable task family,
// model, and field structure — incompatible prompts never coalesce.
func FuzzBatchKey(f *testing.F) {
	f.Add(
		BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": "text"}),
		BuildPrompt("filter_doc", map[string]string{"condition": "mentions football", "doc": "other"}),
		"sim-llama-8b",
	)
	f.Add(
		BuildPrompt("classify_batch", map[string]string{"classes": "a,b", "docs": "x"}),
		BuildPrompt("extract_batch", map[string]string{"target": "views", "docs": "x"}),
		"sim-llama-8b",
	)
	f.Add(BuildPrompt("generate", map[string]string{"q": "planner task"}), "plain text", "m")
	f.Add("", "#TASK filter_doc", "")
	f.Fuzz(func(t *testing.T, p1, p2, model string) {
		k1, pk1, tt1, ok1 := BatchKeyFor(p1, model)
		k2, pk2, tt2, ok2 := BatchKeyFor(p2, model)

		// Stability: the key is a pure function of its inputs.
		if k1b, pk1b, tt1b, ok1b := BatchKeyFor(p1, model); k1b != k1 || pk1b != pk1 || tt1b != tt1 || ok1b != ok1 {
			t.Fatalf("BatchKeyFor unstable: (%q,%q,%d,%v) then (%q,%q,%d,%v)", k1, pk1, tt1, ok1, k1b, pk1b, tt1b, ok1b)
		}

		check := func(p, k, pk string, tt int, ok bool) (task string, names map[string]bool) {
			if !ok {
				if k != "" || pk != "" || tt != 0 {
					t.Fatalf("not-ok key carries data: %q/%q/%d", k, pk, tt)
				}
				return "", nil
			}
			task, fields, pok := ParsePrompt(p)
			if !pok || !BatchableTask(task) {
				t.Fatalf("key issued for unparsable or non-batchable prompt %q (task %q)", p, task)
			}
			if tt <= 0 {
				t.Fatalf("template tokens %d for %q, want > 0", tt, p)
			}
			names = make(map[string]bool, len(fields))
			hasPayload := false
			for n := range fields {
				names[n] = true
				if n == "doc" || n == "docs" {
					hasPayload = true
				}
			}
			// Payload identity exists exactly when the prompt carries a
			// payload field.
			if (pk != "") != hasPayload {
				t.Fatalf("payload key %q but payload fields present=%v for %q", pk, hasPayload, p)
			}
			return task, names
		}
		t1, n1 := check(p1, k1, pk1, tt1, ok1)
		t2, n2 := check(p2, k2, pk2, tt2, ok2)

		// Symmetric compatibility: equal keys require same task family and
		// same field structure (and vice versa — the key has no other
		// inputs at a fixed model).
		if ok1 && ok2 {
			same := t1 == t2 && len(n1) == len(n2)
			if same {
				for n := range n1 {
					if !n2[n] {
						same = false
						break
					}
				}
			}
			if (k1 == k2) != same {
				t.Fatalf("key equality %v but structural compatibility %v:\n  %q -> %q\n  %q -> %q",
					k1 == k2, same, p1, k1, p2, k2)
			}
			// Payload singleflight soundness: identical payload fields
			// (same presence and values) must hash to identical keys.
			_, f1, _ := ParsePrompt(p1)
			_, f2, _ := ParsePrompt(p2)
			d1, dok1 := f1["doc"]
			d2, dok2 := f2["doc"]
			g1, gok1 := f1["docs"]
			g2, gok2 := f2["docs"]
			samePayload := dok1 == dok2 && gok1 == gok2 && d1 == d2 && g1 == g2 && (dok1 || gok1)
			if samePayload && pk1 != pk2 {
				t.Fatalf("equal payloads produced different payload keys: %q vs %q", pk1, pk2)
			}
		}
	})
}

// FuzzSimComplete feeds arbitrary prompts to the simulated backend: it
// must never panic or hang, and every failure must be one of the typed
// error classes.
func FuzzSimComplete(f *testing.F) {
	f.Add(BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc}))
	f.Add(BuildPrompt("agg_list", map[string]string{"kind": "Sum", "values": "1,2,3"}))
	f.Add(BuildPrompt("compute", map[string]string{"expression": "a+b", "bindings": "a=1\nb=2"}))
	f.Add(BuildPrompt("no_such_task", nil))
	f.Add(BuildPrompt("classify_batch", map[string]string{"class": "sport", "docs": "a"}))
	f.Add("unstructured")
	f.Add("")
	f.Fuzz(func(t *testing.T, prompt string) {
		if !utf8.ValidString(prompt) {
			t.Skip()
		}
		s := testSim()
		resp, err := s.Complete(context.Background(), prompt)
		if err == nil {
			if resp.Dur < 0 || resp.OutTokens < 0 {
				t.Fatalf("negative accounting: %+v", resp)
			}
			return
		}
		var te *TaskError
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrUnknownTask) && !errors.As(err, &te) {
			t.Fatalf("untyped sim error: %T %v", err, err)
		}
	})
}
