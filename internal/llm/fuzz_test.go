package llm

import (
	"context"
	"errors"
	"testing"
	"unicode/utf8"
)

// FuzzParsePrompt checks the prompt wire format: parsing arbitrary bytes
// must never panic, and every successfully parsed prompt must round-trip
// through BuildPrompt unchanged.
func FuzzParsePrompt(f *testing.F) {
	f.Add(BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": "text"}))
	f.Add(BuildPrompt("generate", map[string]string{"q": "multi\nline\nvalue"}))
	f.Add(BuildPrompt("t", map[string]string{"": ""}))
	f.Add("#TASK demo")
	f.Add("#TASK ")
	f.Add("plain text")
	f.Add("")
	f.Add("#FIELD a\nvalue\n#TASK late")
	f.Fuzz(func(t *testing.T, prompt string) {
		task, fields, ok := ParsePrompt(prompt)
		if !ok {
			return
		}
		if task == "" {
			t.Fatal("ok parse with empty task")
		}
		rebuilt := BuildPrompt(task, fields)
		task2, fields2, ok2 := ParsePrompt(rebuilt)
		if !ok2 || task2 != task {
			t.Fatalf("round trip lost task: %q -> %q (ok=%v)", task, task2, ok2)
		}
		if len(fields2) != len(fields) {
			t.Fatalf("round trip changed field count: %d -> %d", len(fields), len(fields2))
		}
		for k, v := range fields {
			if fields2[k] != v {
				t.Fatalf("round trip changed field %q: %q -> %q", k, v, fields2[k])
			}
		}
	})
}

// FuzzSimComplete feeds arbitrary prompts to the simulated backend: it
// must never panic or hang, and every failure must be one of the typed
// error classes.
func FuzzSimComplete(f *testing.F) {
	f.Add(BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc}))
	f.Add(BuildPrompt("agg_list", map[string]string{"kind": "Sum", "values": "1,2,3"}))
	f.Add(BuildPrompt("compute", map[string]string{"expression": "a+b", "bindings": "a=1\nb=2"}))
	f.Add(BuildPrompt("no_such_task", nil))
	f.Add(BuildPrompt("classify_batch", map[string]string{"class": "sport", "docs": "a"}))
	f.Add("unstructured")
	f.Add("")
	f.Fuzz(func(t *testing.T, prompt string) {
		if !utf8.ValidString(prompt) {
			t.Skip()
		}
		s := testSim()
		resp, err := s.Complete(context.Background(), prompt)
		if err == nil {
			if resp.Dur < 0 || resp.OutTokens < 0 {
				t.Fatalf("negative accounting: %+v", resp)
			}
			return
		}
		var te *TaskError
		if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrUnknownTask) && !errors.As(err, &te) {
			t.Fatalf("untyped sim error: %T %v", err, err)
		}
	})
}
