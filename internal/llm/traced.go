package llm

import (
	"context"
	"sync"

	"unify/internal/obs"
)

// Traced wraps a Client and attaches one obs span per successful call
// under a parent span, carrying the prompt task, token counts, and the
// simulated duration (the call's virtual-clock cost). It composes with
// Recorder: executors wrap their per-node Recorder in a Traced so calls
// are both charged to the cost model and visible in EXPLAIN ANALYZE.
//
// With a nil parent span the wrapper degrades to pure pass-through, so
// installing it unconditionally costs nothing when tracing is off.
type Traced struct {
	inner Client

	mu   sync.Mutex
	span *obs.Span
}

// NewTraced wraps inner, attaching call spans under parent (which may be
// nil for a no-op wrapper).
func NewTraced(inner Client, parent *obs.Span) *Traced {
	return &Traced{inner: inner, span: parent}
}

// Attach retargets subsequent call spans to a new parent (nil detaches).
// The planner re-attaches its Traced to the current reduction-iteration
// span as the sequential search descends.
func (t *Traced) Attach(parent *obs.Span) {
	t.mu.Lock()
	t.span = parent
	t.mu.Unlock()
}

// parent returns the current parent span.
func (t *Traced) parent() *obs.Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.span
}

// Complete implements Client.
func (t *Traced) Complete(ctx context.Context, prompt string) (Response, error) {
	resp, err := t.inner.Complete(ctx, prompt)
	if err != nil {
		return resp, err
	}
	if p := t.parent(); p != nil {
		task, _, _ := ParsePrompt(prompt)
		if task == "" {
			task = "unknown"
		}
		s := p.StartChild("llm:"+task, obs.KindLLM)
		s.SetInt("in_tokens", resp.InTokens)
		s.SetInt("out_tokens", resp.OutTokens)
		s.SetVDur(resp.Dur)
		if resp.Cached {
			s.SetAttr("cached", "true")
		}
		if resp.Retries > 0 {
			s.SetInt("retries", resp.Retries)
		}
		s.End()
	}
	return resp, nil
}

// Profile implements Client.
func (t *Traced) Profile() Profile { return t.inner.Profile() }

// Unwrap returns the wrapped client.
func (t *Traced) Unwrap() Client { return t.inner }

var _ Client = (*Traced)(nil)
