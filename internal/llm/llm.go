// Package llm defines the language-model client abstraction used by every
// Unify component (planner, operators, cardinality estimator, baselines)
// and provides Sim, a deterministic simulated backend that substitutes for
// the paper's locally served Llama models.
//
// All components speak to the model through Client.Complete with textual
// prompts in a fixed directive format (see prompt.go) and receive textual
// responses plus token counts and a simulated duration. The simulated
// duration follows the paper's §VI-A cost model: time is proportional to
// output tokens, with input tokens contributing negligibly.
package llm

import (
	"context"
	"strings"
	"sync"
	"time"
)

// PrefillTokenFactor is the fraction of the per-output-token cost charged
// for each input (prompt) token: prefill is 1-5% of latency in the paper's
// §VI-A measurements. It is the amortizable part of a call's cost — a
// batched invocation pays the shared prompt template's prefill once.
// Deliberately distinct from the Sim noise model's DefaultFilterNoise,
// which happens to share the same magnitude.
const PrefillTokenFactor = 0.015

// Response is the result of one model invocation.
type Response struct {
	Text      string
	InTokens  int
	OutTokens int
	// Dur is the simulated wall-clock duration of the call on one model
	// slot. Executors feed these into the vtime scheduler.
	Dur time.Duration
	// Cached marks a response served from the shared response cache: it
	// cost zero virtual time and never occupied a model slot.
	Cached bool
	// Retries counts the failed attempts absorbed by the resilience
	// layer before this response succeeded (0 on the first try).
	Retries int
	// BatchKey is the co-scheduling compatibility key stamped by the
	// Batching wrapper: calls with equal non-empty keys may share one
	// batched invocation. Empty when batching is off or the task is not
	// batchable.
	BatchKey string
	// TemplateTokens counts the tokens of the call's prompt scaffold
	// (directive plus field names, payload values removed) — the part of
	// prefill a batch pays once. Zero unless BatchKey is set.
	TemplateTokens int
	// PayloadKey identifies the call's document payload (a hash of the
	// doc/docs field values). Co-batched calls with equal payload keys
	// scan the same documents — different queries over the same corpus
	// chunk — so the batched invocation prefills that payload once,
	// singleflight-style. Empty unless BatchKey is set.
	PayloadKey string
}

// Profile describes a served model's identity and speed.
type Profile struct {
	Name        string        // e.g. "sim-llama-70b"
	Base        time.Duration // fixed overhead per invocation
	PerOutToken time.Duration // marginal time per generated token
}

// CallDur returns the simulated duration for a call generating outTokens.
func (p Profile) CallDur(outTokens int) time.Duration {
	if outTokens < 1 {
		outTokens = 1
	}
	return p.Base + time.Duration(outTokens)*p.PerOutToken
}

// DurFor returns the simulated duration of a call with the given input
// and output token counts. Input tokens contribute ~4% of the per-token
// cost, matching the paper's observation that prefill is 1-5% of latency.
func (p Profile) DurFor(inTokens, outTokens int) time.Duration {
	d := p.CallDur(outTokens)
	if inTokens > 0 {
		d += time.Duration(float64(inTokens) * PrefillTokenFactor * float64(p.PerOutToken))
	}
	return d
}

// PlannerProfile mirrors the paper's Llama-3.1-70B planner deployment
// (large, slow model used for plan generation).
func PlannerProfile() Profile {
	return Profile{Name: "sim-llama-70b", Base: 250 * time.Millisecond, PerOutToken: 35 * time.Millisecond}
}

// WorkerProfile mirrors the paper's Llama-3.1-8B operator executor (small,
// fast model used for per-document operator work).
func WorkerProfile() Profile {
	return Profile{Name: "sim-llama-8b", Base: 80 * time.Millisecond, PerOutToken: 20 * time.Millisecond}
}

// Client is a language model endpoint.
type Client interface {
	// Complete runs one prompt and returns the model's response.
	Complete(ctx context.Context, prompt string) (Response, error)
	// Profile reports the served model's identity and speed parameters.
	Profile() Profile
}

// CountTokens approximates a tokenizer: whitespace-separated fields plus a
// third to account for sub-word splitting, matching the coarse granularity
// the cost model needs.
func CountTokens(s string) int {
	n := len(strings.Fields(s))
	return n + n/3
}

// Call records one model invocation for cost accounting.
type Call struct {
	Task      string
	InTokens  int
	OutTokens int
	Dur       time.Duration
	// Cached marks a call answered by the response cache (Dur is zero and
	// the call bypassed the slot pool).
	Cached bool
	// Retries counts failed attempts absorbed before this call succeeded.
	Retries int
	// BatchKey, TemplateTokens, and PayloadKey carry the Batching
	// wrapper's co-scheduling metadata through to the executor (see
	// Response).
	BatchKey       string
	TemplateTokens int
	PayloadKey     string
}

// Recorder wraps a Client and records every call. Operators wrap their
// client in a fresh Recorder so executions can be charged to the virtual
// clock and fed to the cost-model calibrator.
type Recorder struct {
	inner Client

	mu    sync.Mutex
	calls []Call
}

// NewRecorder returns a Recorder around inner.
func NewRecorder(inner Client) *Recorder {
	return &Recorder{inner: inner}
}

// Complete implements Client, recording the call.
func (r *Recorder) Complete(ctx context.Context, prompt string) (Response, error) {
	resp, err := r.inner.Complete(ctx, prompt)
	if err != nil {
		return resp, err
	}
	task, _, _ := ParsePrompt(prompt)
	r.mu.Lock()
	r.calls = append(r.calls, Call{Task: task, InTokens: resp.InTokens, OutTokens: resp.OutTokens, Dur: resp.Dur, Cached: resp.Cached, Retries: resp.Retries, BatchKey: resp.BatchKey, TemplateTokens: resp.TemplateTokens, PayloadKey: resp.PayloadKey})
	r.mu.Unlock()
	return resp, nil
}

// Profile implements Client.
func (r *Recorder) Profile() Profile { return r.inner.Profile() }

// Unwrap returns the wrapped client.
func (r *Recorder) Unwrap() Client { return r.inner }

// Calls returns a copy of the recorded calls.
func (r *Recorder) Calls() []Call {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Call, len(r.calls))
	copy(out, r.calls)
	return out
}

// Reset clears the recorded calls.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.calls = nil
	r.mu.Unlock()
}

// TotalDur sums the durations of all recorded calls.
func (r *Recorder) TotalDur() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var d time.Duration
	for _, c := range r.calls {
		d += c.Dur
	}
	return d
}
