package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// HTTPClient is a Client backed by a remote completion endpoint, the
// integration point for serving real models (the paper serves Llama-3.1
// locally). The wire format is a minimal JSON completion API:
//
//	POST {BaseURL}/v1/completions
//	{"model": "...", "prompt": "...", "max_tokens": 512}
//	-> {"text": "...", "usage": {"prompt_tokens": n, "completion_tokens": m}}
//
// Latency is measured from the round trip; token counts come from the
// server's usage block (falling back to local approximation).
type HTTPClient struct {
	// BaseURL is the endpoint root, e.g. "http://localhost:8000".
	BaseURL string
	// Model is sent in every request.
	Model string
	// MaxTokens bounds generation length (default 512).
	MaxTokens int
	// HTTP is the underlying client (default: 60s timeout).
	HTTP *http.Client
	// Prof describes the served model for the cost model; Name defaults
	// to Model.
	Prof Profile
}

// NewHTTPClient returns a client for the given endpoint and model.
func NewHTTPClient(baseURL, model string) *HTTPClient {
	return &HTTPClient{
		BaseURL:   baseURL,
		Model:     model,
		MaxTokens: 512,
		HTTP:      &http.Client{Timeout: 60 * time.Second},
		Prof:      Profile{Name: model, Base: 50 * time.Millisecond, PerOutToken: 20 * time.Millisecond},
	}
}

// Profile implements Client.
func (c *HTTPClient) Profile() Profile {
	p := c.Prof
	if p.Name == "" {
		p.Name = c.Model
	}
	return p
}

type completionRequest struct {
	Model     string `json:"model"`
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
}

type completionResponse struct {
	Text  string `json:"text"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error string `json:"error,omitempty"`
}

// Complete implements Client.
func (c *HTTPClient) Complete(ctx context.Context, prompt string) (Response, error) {
	maxTokens := c.MaxTokens
	if maxTokens <= 0 {
		maxTokens = 512
	}
	body, err := json.Marshal(completionRequest{Model: c.Model, Prompt: prompt, MaxTokens: maxTokens})
	if err != nil {
		return Response{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/completions", bytes.NewReader(body))
	if err != nil {
		return Response{}, err
	}
	req.Header.Set("Content-Type", "application/json")

	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 60 * time.Second}
	}
	start := time.Now()
	resp, err := httpClient.Do(req)
	if err != nil {
		return Response{}, fmt.Errorf("llm: completion request: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return Response{}, fmt.Errorf("llm: reading completion: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("llm: completion endpoint returned %s: %.200s", resp.Status, raw)
	}
	var out completionResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		return Response{}, fmt.Errorf("llm: malformed completion response: %w", err)
	}
	if out.Error != "" {
		return Response{}, fmt.Errorf("llm: server error: %s", out.Error)
	}
	in, gen := out.Usage.PromptTokens, out.Usage.CompletionTokens
	if in == 0 {
		in = CountTokens(prompt)
	}
	if gen == 0 {
		gen = CountTokens(out.Text)
	}
	return Response{
		Text:      out.Text,
		InTokens:  in,
		OutTokens: gen,
		Dur:       time.Since(start),
	}, nil
}

var _ Client = (*HTTPClient)(nil)
