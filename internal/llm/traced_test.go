package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"unify/internal/obs"
)

// TestRecorderConcurrent hammers one Recorder from parallel goroutines;
// run with -race to verify the call log is mutation-safe.
func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(NewSim(DefaultSimConfig()))
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				prompt := BuildPrompt("filter_batch", map[string]string{
					"condition": "related to tennis",
					"docs":      fmt.Sprintf("[%d-%d] some text", w, i),
				})
				if _, err := rec.Complete(context.Background(), prompt); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(rec.Calls()); got != workers*per {
		t.Errorf("recorded %d calls, want %d", got, workers*per)
	}
	if rec.TotalDur() <= 0 {
		t.Error("total duration not positive")
	}
}

// TestTracedConcurrent verifies the span-aware wrapper under parallel
// Complete calls: every successful call must attach exactly one llm span
// with token and virtual-duration attributes.
func TestTracedConcurrent(t *testing.T) {
	parent := obs.NewTracer().Start("node", obs.KindNode)
	rec := NewRecorder(NewSim(DefaultSimConfig()))
	cli := NewTraced(rec, parent)
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				prompt := BuildPrompt("filter_batch", map[string]string{
					"condition": "related to golf",
					"docs":      fmt.Sprintf("[%d-%d] text", w, i),
				})
				if _, err := cli.Complete(context.Background(), prompt); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	children := parent.Children()
	if len(children) != workers*per {
		t.Fatalf("attached %d spans, want %d", len(children), workers*per)
	}
	if got := len(rec.Calls()); got != workers*per {
		t.Errorf("inner recorder saw %d calls, want %d", got, workers*per)
	}
	for _, c := range children {
		if c.Name != "llm:filter_batch" || c.Kind != obs.KindLLM {
			t.Fatalf("unexpected span %q kind %q", c.Name, c.Kind)
		}
		if c.VDur() <= 0 || c.Attr("out_tokens") == "" || c.Attr("in_tokens") == "" {
			t.Fatalf("span missing accounting: vdur=%v attrs=%v", c.VDur(), c.Attrs())
		}
	}
}

// TestTracedNilParent: a Traced without a parent span is pure
// pass-through and attaches nothing.
func TestTracedNilParent(t *testing.T) {
	cli := NewTraced(NewSim(DefaultSimConfig()), nil)
	prompt := BuildPrompt("simple_question", map[string]string{"query": "How many documents are there?"})
	resp, err := cli.Complete(context.Background(), prompt)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == "" {
		t.Error("empty response")
	}
	if cli.Profile().Name == "" {
		t.Error("profile not delegated")
	}
	// Retargeting afterwards starts attaching.
	parent := obs.NewTracer().Start("p", obs.KindPhase)
	cli.Attach(parent)
	if _, err := cli.Complete(context.Background(), prompt); err != nil {
		t.Fatal(err)
	}
	if len(parent.Children()) != 1 {
		t.Errorf("attached %d spans after Attach, want 1", len(parent.Children()))
	}
}
