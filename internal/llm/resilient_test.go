package llm

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// flaky is a scripted client: it fails the first failures calls to each
// prompt with the given error, then succeeds with a fixed response.
type flaky struct {
	mu       sync.Mutex
	failures int
	err      error
	resp     Response
	seen     map[string]int
	calls    int
}

func (f *flaky) Complete(ctx context.Context, prompt string) (Response, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen == nil {
		f.seen = map[string]int{}
	}
	f.calls++
	n := f.seen[prompt]
	f.seen[prompt] = n + 1
	if n < f.failures {
		return Response{}, f.err
	}
	return f.resp, nil
}

func (f *flaky) Profile() Profile { return Profile{Name: "flaky", Base: 100 * time.Millisecond} }

func TestResilientRetriesTransient(t *testing.T) {
	inner := &flaky{failures: 2, err: fmt.Errorf("drop: %w", ErrTransient),
		resp: Response{Text: "ok", Dur: time.Second}}
	var events []string
	r := NewResilient(inner, DefaultRetryPolicy(), func(ev, task string) {
		events = append(events, ev)
	})
	resp, err := r.Complete(context.Background(), BuildPrompt("generate", map[string]string{"q": "x"}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" {
		t.Errorf("text = %q", resp.Text)
	}
	// The two failed attempts and their backoffs are folded into Dur.
	if resp.Dur <= time.Second {
		t.Errorf("penalty not folded: dur = %v", resp.Dur)
	}
	if len(events) != 2 || events[0] != "retry" {
		t.Errorf("events = %v", events)
	}
}

func TestResilientExhaustsBudget(t *testing.T) {
	inner := &flaky{failures: 100, err: fmt.Errorf("drop: %w", ErrTransient)}
	var exhausted bool
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 3
	r := NewResilient(inner, pol, func(ev, task string) {
		if ev == "exhausted" {
			exhausted = true
		}
	})
	_, err := r.Complete(context.Background(), BuildPrompt("generate", nil))
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("err = %v", err)
	}
	if inner.calls != 3 {
		t.Errorf("attempts = %d, want 3", inner.calls)
	}
	if !exhausted {
		t.Error("no exhausted event")
	}
}

func TestResilientPermanentErrorsSurfaceImmediately(t *testing.T) {
	inner := &flaky{failures: 100, err: ErrMalformed}
	r := NewResilient(inner, DefaultRetryPolicy(), nil)
	_, err := r.Complete(context.Background(), BuildPrompt("generate", nil))
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
	if inner.calls != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent errors)", inner.calls)
	}
}

func TestResilientBackoffDeterministic(t *testing.T) {
	mk := func() time.Duration {
		inner := &flaky{failures: 3, err: fmt.Errorf("drop: %w", ErrTransient),
			resp: Response{Text: "ok", Dur: time.Second}}
		r := NewResilient(inner, DefaultRetryPolicy(), nil)
		resp, err := r.Complete(context.Background(), BuildPrompt("generate", map[string]string{"q": "det"}))
		if err != nil {
			t.Fatal(err)
		}
		return resp.Dur
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("non-deterministic penalty: %v vs %v", a, b)
	}
}

func TestResilientCachedResponseSkipsPenalty(t *testing.T) {
	inner := &flaky{failures: 1, err: fmt.Errorf("drop: %w", ErrTransient),
		resp: Response{Text: "ok", Cached: true}}
	r := NewResilient(inner, DefaultRetryPolicy(), nil)
	resp, err := r.Complete(context.Background(), BuildPrompt("generate", nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dur != 0 {
		t.Errorf("cached response must stay zero-cost, dur = %v", resp.Dur)
	}
}

// hedgeable returns a slow primary then a fast backup.
type hedgeable struct {
	mu    sync.Mutex
	calls int
	durs  []time.Duration
}

func (h *hedgeable) Complete(ctx context.Context, prompt string) (Response, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d := h.durs[h.calls%len(h.durs)]
	h.calls++
	return Response{Text: fmt.Sprintf("r%d", h.calls), Dur: d}, nil
}

func (h *hedgeable) Profile() Profile { return Profile{Name: "hedge", Base: 100 * time.Millisecond} }

func TestResilientHedgesSlowCalls(t *testing.T) {
	inner := &hedgeable{durs: []time.Duration{10 * time.Second, 1 * time.Second}}
	pol := DefaultRetryPolicy()
	pol.HedgeAfter = 2 * time.Second
	var hedges int
	r := NewResilient(inner, pol, func(ev, task string) {
		if ev == "hedge" {
			hedges++
		}
	})
	resp, err := r.Complete(context.Background(), BuildPrompt("generate", nil))
	if err != nil {
		t.Fatal(err)
	}
	if hedges != 1 {
		t.Errorf("hedges = %d", hedges)
	}
	// Winner is the backup: HedgeAfter (2s) + backup dur (1s) = 3s < 10s.
	if resp.Dur != 3*time.Second {
		t.Errorf("hedged dur = %v, want 3s", resp.Dur)
	}
	if resp.Cached {
		t.Error("hedged winner must not be marked cached")
	}
	// Fast primaries are not hedged.
	inner.durs = []time.Duration{time.Second}
	resp, err = r.Complete(context.Background(), BuildPrompt("generate", map[string]string{"q": "2"}))
	if err != nil {
		t.Fatal(err)
	}
	if hedges != 1 || resp.Dur != time.Second {
		t.Errorf("fast primary was hedged: hedges=%d dur=%v", hedges, resp.Dur)
	}
}

func TestResilientUnwrap(t *testing.T) {
	inner := &flaky{}
	r := NewResilient(inner, DefaultRetryPolicy(), nil)
	if r.Unwrap() != Client(inner) {
		t.Error("Unwrap lost the inner client")
	}
	if r.Profile().Name != "flaky" {
		t.Error("Profile not delegated")
	}
}
