package llm

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testSim() *Sim {
	cfg := DefaultSimConfig()
	// Zero noise for deterministic semantic assertions.
	cfg.FilterNoise, cfg.LabelNoise, cfg.RerankNoise = 0, 0, 0
	cfg.BindNoise, cfg.PlanNoise, cfg.JudgeNoise = 0, 0, 0
	return NewSim(cfg)
}

const sampleDoc = `Title: Knee pain after practice
Views: 1523
Score: 12
Posted: 2016
Tags: advice
Body: I hurt my knee during football practice when the goalkeeper collided with me. The injury caused swelling and pain.`

func ask(t *testing.T, s *Sim, task string, fields map[string]string) string {
	t.Helper()
	resp, err := s.Complete(context.Background(), BuildPrompt(task, fields))
	if err != nil {
		t.Fatalf("%s: %v", task, err)
	}
	return resp.Text
}

func TestPromptRoundTrip(t *testing.T) {
	p := BuildPrompt("demo", map[string]string{"b": "two\nlines", "a": "one"})
	task, fields, ok := ParsePrompt(p)
	if !ok || task != "demo" {
		t.Fatalf("task = %q ok=%v", task, ok)
	}
	if fields["a"] != "one" || fields["b"] != "two\nlines" {
		t.Errorf("fields = %v", fields)
	}
}

func TestJoinSplitDocs(t *testing.T) {
	docs := []string{"doc one", "doc two\nwith newline", "doc three"}
	got := SplitDocs(JoinDocs(docs))
	if len(got) != 3 || got[1] != docs[1] {
		t.Errorf("round trip = %v", got)
	}
	if SplitDocs("") != nil {
		t.Error("empty split should be nil")
	}
}

func TestFilterDoc(t *testing.T) {
	s := testSim()
	if got := ask(t, s, "filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc}); got != "yes" {
		t.Errorf("injury filter = %q", got)
	}
	if got := ask(t, s, "filter_doc", map[string]string{"condition": "related to nutrition", "doc": sampleDoc}); got != "no" {
		t.Errorf("nutrition filter = %q", got)
	}
	if got := ask(t, s, "filter_doc", map[string]string{"condition": "with more than 500 views", "doc": sampleDoc}); got != "yes" {
		t.Errorf("views filter = %q", got)
	}
}

func TestFilterBatch(t *testing.T) {
	s := testSim()
	docs := JoinDocs([]string{sampleDoc, "Title: Other\nViews: 3\nBody: cooking recipes"})
	got := ask(t, s, "filter_batch", map[string]string{"condition": "related to injury", "docs": docs})
	if got != "yes,no" {
		t.Errorf("batch = %q", got)
	}
}

func TestClassifyAndExtract(t *testing.T) {
	s := testSim()
	if got := ask(t, s, "classify_doc", map[string]string{"class": "sport", "doc": sampleDoc}); got != "football" {
		t.Errorf("classify = %q", got)
	}
	if got := ask(t, s, "extract_doc", map[string]string{"target": "views", "doc": sampleDoc}); got != "1523" {
		t.Errorf("extract views = %q", got)
	}
	if got := ask(t, s, "extract_doc", map[string]string{"target": "title", "doc": sampleDoc}); got != "Knee pain after practice" {
		t.Errorf("extract title = %q", got)
	}
}

func TestAggList(t *testing.T) {
	s := testSim()
	vals := "1\n2\n3\n4"
	cases := map[string]string{
		"sum": "10", "average": "2.5", "max": "4", "min": "1", "median": "2.5",
		"count": "4", "percentile:75": "3",
	}
	for kind, want := range cases {
		got := ask(t, s, "agg_list", map[string]string{"kind": kind, "values": vals})
		if got != want {
			t.Errorf("agg %s = %q, want %q", kind, got, want)
		}
	}
}

func TestComputeTask(t *testing.T) {
	s := testSim()
	got := ask(t, s, "compute", map[string]string{
		"expression": "{v1} / {v2}",
		"bindings":   "{v1}=10\n{v2}=4",
	})
	if got != "2.5" {
		t.Errorf("compute = %q", got)
	}
}

func TestParseQueryTask(t *testing.T) {
	s := testSim()
	out := ask(t, s, "parse_query", map[string]string{"query": "How many questions about football have more than 500 views?"})
	var pr ParseResult
	if err := json.Unmarshal([]byte(out), &pr); err != nil || !pr.OK {
		t.Fatalf("parse_query = %s", out)
	}
	if !strings.Contains(pr.LR, "[Entity]") {
		t.Errorf("LR = %q", pr.LR)
	}
	out = ask(t, s, "parse_query", map[string]string{"query": "write me a poem"})
	json.Unmarshal([]byte(out), &pr)
	if pr.OK {
		t.Error("ungroundable query parsed")
	}
}

func TestReduceQueryTask(t *testing.T) {
	s := testSim()
	out := ask(t, s, "reduce_query", map[string]string{
		"query":    "How many questions about football have more than 500 views?",
		"operator": "Filter",
		"lr":       "[Entity] that [Condition]",
		"next":     "1",
	})
	var rr ReduceResult
	if err := json.Unmarshal([]byte(out), &rr); err != nil || !rr.OK {
		t.Fatalf("reduce_query = %s", out)
	}
	if rr.Var != "v1" || rr.Reduced == "" {
		t.Errorf("reduce = %+v", rr)
	}
	if !strings.Contains(rr.Rewritten, "questions that") {
		t.Errorf("rewritten = %q", rr.Rewritten)
	}
}

func TestSimpleQuestionAndRerank(t *testing.T) {
	s := testSim()
	if got := ask(t, s, "simple_question", map[string]string{"query": "{v3}"}); got != "yes" {
		t.Errorf("simple {v3} = %q", got)
	}
	if got := ask(t, s, "simple_question", map[string]string{"query": "the number of {v3}"}); got != "no" {
		t.Errorf("simple count = %q", got)
	}
	got := ask(t, s, "rerank_op", map[string]string{
		"query":    "the number of questions related to injury",
		"operator": "Filter",
	})
	if got != "partially" {
		t.Errorf("rerank Filter = %q", got)
	}
	got = ask(t, s, "rerank_op", map[string]string{
		"query":    "the number of {v1}",
		"operator": "Count",
	})
	if got != "fully" {
		t.Errorf("rerank Count = %q", got)
	}
}

func TestGenerateOverContext(t *testing.T) {
	s := testSim()
	ctxDocs := JoinDocs([]string{sampleDoc, "Title: Another\nViews: 10\nScore: 4\nPosted: 2019\nBody: tennis racket serve"})
	got := ask(t, s, "generate", map[string]string{
		"question": "How many questions are about football?",
		"context":  ctxDocs,
	})
	if got != "1" {
		t.Errorf("generate count = %q", got)
	}
}

func TestMemoizationAndDeterminism(t *testing.T) {
	s := testSim()
	prompt := BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc})
	r1, _ := s.Complete(context.Background(), prompt)
	r2, _ := s.Complete(context.Background(), prompt)
	if r1.Text != r2.Text || r1.Dur != r2.Dur {
		t.Error("identical prompts must yield identical responses")
	}
	calls, unique := s.Stats()
	if calls != 2 || unique != 1 {
		t.Errorf("stats = %d calls, %d unique", calls, unique)
	}
}

func TestLatencyModel(t *testing.T) {
	p := Profile{Base: 100 * time.Millisecond, PerOutToken: 10 * time.Millisecond}
	if d := p.CallDur(10); d != 200*time.Millisecond {
		t.Errorf("CallDur = %v", d)
	}
	if d := p.DurFor(0, 10); d != 200*time.Millisecond {
		t.Errorf("DurFor no input = %v", d)
	}
	if d := p.DurFor(1000, 10); d <= 200*time.Millisecond {
		t.Error("input tokens must add latency")
	}
}

func TestRecorder(t *testing.T) {
	s := testSim()
	rec := NewRecorder(s)
	rec.Complete(context.Background(), BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc}))
	calls := rec.Calls()
	if len(calls) != 1 || calls[0].Task != "filter_doc" || calls[0].Dur <= 0 {
		t.Errorf("calls = %+v", calls)
	}
	if rec.TotalDur() != calls[0].Dur {
		t.Error("TotalDur mismatch")
	}
	rec.Reset()
	if len(rec.Calls()) != 0 {
		t.Error("reset failed")
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.FilterNoise = 0.5
	a, b := NewSim(cfg), NewSim(cfg)
	prompt := BuildPrompt("filter_doc", map[string]string{"condition": "related to injury", "doc": sampleDoc})
	ra, _ := a.Complete(context.Background(), prompt)
	rb, _ := b.Complete(context.Background(), prompt)
	if ra.Text != rb.Text {
		t.Error("same seed must give same noisy judgment")
	}
}

func TestUnknownTask(t *testing.T) {
	s := testSim()
	if _, err := s.Complete(context.Background(), BuildPrompt("nope", nil)); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestFilterLabelTask(t *testing.T) {
	s := testSim()
	if got := ask(t, s, "filter_label", map[string]string{"condition": "involving a ball", "label": "football"}); got != "yes" {
		t.Errorf("ball label = %q", got)
	}
	if got := ask(t, s, "filter_label", map[string]string{"condition": "involving a ball", "label": "swimming"}); got != "no" {
		t.Errorf("swimming label = %q", got)
	}
	if got := ask(t, s, "filter_label", map[string]string{"condition": "@@@", "label": "x"}); got != "no" {
		t.Errorf("unparseable condition = %q", got)
	}
}

func TestClassifyBatch(t *testing.T) {
	s := testSim()
	docs := JoinDocs([]string{
		sampleDoc,
		"Title: T\nViews: 5\nBody: tennis racket serve backhand",
	})
	got := ask(t, s, "classify_batch", map[string]string{"class": "sport", "docs": docs})
	if got != "football,tennis" {
		t.Errorf("classify_batch = %q", got)
	}
}

func TestExtractBatchTask(t *testing.T) {
	s := testSim()
	docs := JoinDocs([]string{sampleDoc, "Title: X\nViews: 77\nBody: y"})
	got := ask(t, s, "extract_batch", map[string]string{"target": "views", "docs": docs})
	if got != "1523,77" {
		t.Errorf("extract_batch = %q", got)
	}
}

func TestDepCheckTask(t *testing.T) {
	s := testSim()
	if got := ask(t, s, "dep_check", map[string]string{"output": "{v3}", "inputs": "{v3}, {v5}"}); got != "yes" {
		t.Errorf("dep yes = %q", got)
	}
	if got := ask(t, s, "dep_check", map[string]string{"output": "{v9}", "inputs": "{v3}"}); got != "no" {
		t.Errorf("dep no = %q", got)
	}
}

func TestCompareValsErrors(t *testing.T) {
	s := testSim()
	if _, err := s.Complete(context.Background(), BuildPrompt("compare_vals", map[string]string{"a": "x", "b": "2"})); err == nil {
		t.Error("non-numeric compare accepted")
	}
}

func TestAggListErrors(t *testing.T) {
	s := testSim()
	if _, err := s.Complete(context.Background(), BuildPrompt("agg_list", map[string]string{"kind": "nope", "values": "1"})); err == nil {
		t.Error("unknown aggregate accepted")
	}
	if got := ask(t, s, "agg_list", map[string]string{"kind": "sum", "values": ""}); got != "0" {
		t.Errorf("empty sum = %q", got)
	}
}

func TestReduceVariantField(t *testing.T) {
	s := testSim()
	q := "How many questions about football have more than 500 views?"
	r0 := ask(t, s, "reduce_query", map[string]string{
		"query": q, "operator": "Filter", "lr": "[Entity] that [Condition]", "next": "1", "variant": "0",
	})
	r1 := ask(t, s, "reduce_query", map[string]string{
		"query": q, "operator": "Filter", "lr": "[Entity] that [Condition]", "next": "1", "variant": "1",
	})
	if r0 == r1 {
		t.Error("variants produced identical reductions")
	}
	var rr ReduceResult
	json.Unmarshal([]byte(ask(t, s, "reduce_query", map[string]string{
		"query": q, "operator": "Filter", "lr": "[Entity] that [Condition]", "next": "1", "variant": "5",
	})), &rr)
	if rr.OK {
		t.Error("out-of-range variant accepted")
	}
}
