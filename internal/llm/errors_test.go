package llm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSimMalformedPromptError(t *testing.T) {
	s := testSim()
	_, err := s.Complete(context.Background(), "not a structured prompt")
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	if IsTransient(err) {
		t.Error("malformed prompts must not be retryable")
	}
}

func TestSimUnknownTaskError(t *testing.T) {
	s := testSim()
	_, err := s.Complete(context.Background(), BuildPrompt("no_such_task", nil))
	if !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v, want ErrUnknownTask", err)
	}
	if IsTransient(err) {
		t.Error("unknown tasks must not be retryable")
	}
}

func TestSimTaskErrorWrapsHandlerFailure(t *testing.T) {
	s := testSim()
	// compute with a malformed expression makes the handler fail.
	_, err := s.Complete(context.Background(), BuildPrompt("compute", map[string]string{
		"expression": "1 +", "bindings": "x=1",
	}))
	if err == nil {
		t.Fatal("want handler error")
	}
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TaskError", err, err)
	}
	if te.Task != "compute" {
		t.Errorf("task = %q", te.Task)
	}
	if te.Unwrap() == nil {
		t.Error("TaskError must unwrap to the handler error")
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrTransient, true},
		{fmt.Errorf("wrap: %w", ErrTransient), true},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), true},
		{ErrMalformed, false},
		{ErrUnknownTask, false},
		{&TaskError{Task: "x", Err: fmt.Errorf("boom")}, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

type carrierErr struct{ d time.Duration }

func (e *carrierErr) Error() string           { return "carrier" }
func (e *carrierErr) FaultDur() time.Duration { return e.d }
func (e *carrierErr) Unwrap() error           { return ErrTransient }

func TestFaultDurOf(t *testing.T) {
	p := Profile{Base: 100 * time.Millisecond}
	if got := FaultDurOf(&carrierErr{d: time.Second}, p); got != time.Second {
		t.Errorf("carrier dur = %v", got)
	}
	if got := FaultDurOf(fmt.Errorf("plain: %w", ErrTransient), p); got != p.Base {
		t.Errorf("fallback dur = %v, want profile base", got)
	}
}
