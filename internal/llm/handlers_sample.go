package llm

import (
	"sort"
	"strconv"
	"strings"

	"unify/internal/nlq"
)

// These tasks back the Sample baseline (paper §VII-A baseline 4): the
// model processes one chunk of sampled documents at a time, emitting an
// intermediate partial answer, then combines the partials — scaling
// count-like quantities up to the full population.

func (s *Sim) handleSampleChunk(f map[string]string) (string, error) {
	part, err := s.handleGenerate(map[string]string{
		"question": f["question"],
		"context":  f["docs"],
	})
	if err != nil {
		return "", err
	}
	// Re-emit the cumulated intermediate results plus this chunk's
	// partial, as an iterative scan does.
	if state := strings.TrimSpace(f["state"]); state != "" {
		return state + "; " + part, nil
	}
	return part, nil
}

// answerShape classifies how partial answers of a query combine.
func answerShape(question string) string {
	q, err := nlq.Parse(question)
	if err != nil {
		return "modal"
	}
	switch root := q.Root; root.Kind {
	case "agg":
		switch root.Agg {
		case nlq.AggCount, nlq.AggSum:
			return "scale-sum"
		case nlq.AggAvg:
			return "mean"
		case nlq.AggMax:
			return "max"
		case nlq.AggMin:
			return "min"
		case nlq.AggMedian, nlq.AggPercentile:
			return "median"
		}
	case "ratio":
		return "mean"
	}
	return "modal"
}

func (s *Sim) handleSampleCombine(f map[string]string) (string, error) {
	scale := 1.0
	if v, err := strconv.ParseFloat(strings.TrimSpace(f["scale"]), 64); err == nil && v > 0 {
		scale = v
	}
	var nums []float64
	var strsFreq = map[string]int{}
	for _, ln := range strings.Split(f["partials"], "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || ln == "unknown" {
			continue
		}
		if v, err := strconv.ParseFloat(ln, 64); err == nil {
			nums = append(nums, v)
			continue
		}
		strsFreq[ln]++
	}
	shape := answerShape(f["question"])
	if shape == "modal" || len(nums) == 0 {
		best, bestN := "unknown", 0
		keys := make([]string, 0, len(strsFreq))
		for k := range strsFreq {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if strsFreq[k] > bestN {
				best, bestN = k, strsFreq[k]
			}
		}
		return best, nil
	}
	var out float64
	switch shape {
	case "scale-sum":
		for _, v := range nums {
			out += v
		}
		out *= scale
	case "mean":
		for _, v := range nums {
			out += v
		}
		out /= float64(len(nums))
	case "max":
		out = nums[0]
		for _, v := range nums {
			if v > out {
				out = v
			}
		}
	case "min":
		out = nums[0]
		for _, v := range nums {
			if v < out {
				out = v
			}
		}
	case "median":
		sort.Float64s(nums)
		mid := len(nums) / 2
		if len(nums)%2 == 1 {
			out = nums[mid]
		} else {
			out = (nums[mid-1] + nums[mid]) / 2
		}
	}
	return strconv.FormatFloat(out, 'f', -1, 64), nil
}
