package llm

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"unify/internal/nlcond"
	"unify/internal/nlq"
)

// This file hosts the baseline-oriented planning tasks: decompose
// (RecurRAG's iterative query decomposition), plan_oneshot (the LLMPlan
// baseline, which asks the model to emit a full plan in a single shot —
// realistically error-prone, with mistakes compounding in plan length),
// and judge_answers (the Exhaust baseline's LLM feedback step).

func (s *Sim) handleDecompose(f map[string]string) (string, error) {
	q, err := nlq.Parse(f["question"])
	if err != nil {
		return marshal([]string{f["question"]})
	}
	var subs []string
	seen := map[string]bool{}
	q.Clone().Walk(func(slot **nlq.Node) {
		n := *slot
		if n.Kind != "set" {
			return
		}
		for _, flt := range n.Filters {
			sub := "questions " + condText(flt)
			if !seen[sub] {
				seen[sub] = true
				subs = append(subs, sub)
			}
		}
	})
	if len(subs) == 0 {
		subs = []string{f["question"]}
	}
	return marshal(subs)
}

// OneshotStep is one step in an LLMPlan-style linear plan.
type OneshotStep struct {
	Op   string            `json:"op"`
	Args map[string]string `json:"args"`
	Var  string            `json:"var"`
}

// oneshotOrder is the fixed priority in which a one-shot planner emits
// operators (innermost work first).
var oneshotOrder = []string{
	"Filter", "GroupBy", "Count", "Sum", "Average", "Median", "Percentile",
	"Max", "Min", "TopK", "Extract", "Classify", "Compute", "Union",
	"Intersection", "Complementary", "Compare", "OrderBy",
}

func (s *Sim) handlePlanOneshot(f map[string]string) (string, error) {
	q, err := nlq.Parse(f["question"])
	if err != nil {
		return marshal([]OneshotStep{})
	}
	var steps []OneshotStep
	next := 1
	for !q.Solved() && len(steps) < 24 {
		progressed := false
		for _, op := range oneshotOrder {
			red, ok := nlq.Reduce(q, op, next)
			if !ok {
				continue
			}
			steps = append(steps, OneshotStep{Op: red.Op, Args: red.Args, Var: red.VarName})
			q = red.Query
			next++
			progressed = true
			break
		}
		if !progressed {
			break
		}
	}
	// One-shot planning degrades with plan complexity: each extra step
	// adds a chance the whole plan is subtly wrong (a dropped filter or a
	// swapped concept) — the paper's explanation for LLMPlan's accuracy.
	pWrong := s.cfg.PlanNoise * float64(len(steps))
	if pWrong > 0.95 {
		pWrong = 0.95
	}
	if len(steps) > 0 && s.chance(pWrong, "oneshot", f["question"]) {
		steps = corruptPlan(s, f["question"], steps)
	}
	return marshal(steps)
}

// corruptPlan applies one plausible mistake: drop a filter step, or swap a
// concept condition for a sibling concept.
func corruptPlan(s *Sim, key string, steps []OneshotStep) []OneshotStep {
	// Prefer corrupting a Filter step; otherwise drop the last step.
	var filterIdxs []int
	for i, st := range steps {
		if st.Op == "Filter" || st.Op == "Scan" {
			filterIdxs = append(filterIdxs, i)
		}
	}
	if len(filterIdxs) == 0 {
		return steps[:len(steps)-1]
	}
	i := filterIdxs[s.pick(len(filterIdxs), "corrupt", key)]
	swappable := false
	if c, ok := nlcond.Parse(steps[i].Args["Condition"]); ok && c.Kind == nlcond.Concept {
		swappable = true
	}
	if !swappable || s.pick(2, "corruptmode", key) == 0 {
		// Drop the filter entirely; rebind its variable to its input.
		out := make([]OneshotStep, 0, len(steps)-1)
		dropped := steps[i]
		alias := dropped.Args["Entity"]
		for j, st := range steps {
			if j == i {
				continue
			}
			st.Args = copyArgs(st.Args)
			for k, v := range st.Args {
				st.Args[k] = strings.ReplaceAll(v, "{"+dropped.Var+"}", alias)
			}
			out = append(out, st)
		}
		return out
	}
	// Swap the condition's concept.
	st := steps[i]
	if c, ok := nlcond.Parse(st.Args["Condition"]); ok && c.Kind == nlcond.Concept {
		if sib := siblingConcept(c.Concept); sib != "" {
			st.Args = copyArgs(st.Args)
			st.Args["Condition"] = "related to " + sib
			steps[i] = st
		}
	}
	return steps
}

func (s *Sim) handleJudgeAnswers(f map[string]string) (string, error) {
	var candidates []string
	if err := json.Unmarshal([]byte(f["candidates"]), &candidates); err != nil {
		return "", err
	}
	if len(candidates) == 0 {
		return "0", nil
	}
	// Majority vote over normalized answers; the model occasionally
	// prefers a plausible-looking minority answer.
	counts := map[string]int{}
	for _, c := range candidates {
		counts[normalizeAnswer(c)]++
	}
	type freq struct {
		ans string
		n   int
	}
	var fr []freq
	for a, n := range counts {
		fr = append(fr, freq{a, n})
	}
	sort.Slice(fr, func(i, j int) bool {
		if fr[i].n != fr[j].n {
			return fr[i].n > fr[j].n
		}
		return fr[i].ans < fr[j].ans
	})
	want := fr[0].ans
	if s.chance(s.cfg.JudgeNoise, "judge", f["question"], f["candidates"]) && len(fr) > 1 {
		want = fr[1].ans
	}
	for i, c := range candidates {
		if normalizeAnswer(c) == want {
			return strconv.Itoa(i), nil
		}
	}
	return "0", nil
}

func normalizeAnswer(a string) string {
	a = strings.ToLower(strings.TrimSpace(a))
	if v, err := strconv.ParseFloat(a, 64); err == nil {
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
	return a
}
