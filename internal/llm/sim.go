package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
)

// SimConfig controls the simulated model's speed and imperfection. Noise
// rates are probabilities of human-plausible mistakes, applied
// deterministically per decision (keyed hashing), so runs are reproducible
// while accuracy stays realistically below 100%.
type SimConfig struct {
	Profile Profile
	Seed    uint64

	// FilterNoise flips an individual semantic yes/no judgment.
	FilterNoise float64
	// LabelNoise replaces a classification/grouping label with a
	// neighboring label.
	LabelNoise float64
	// RerankNoise degrades an operator-applicability judgment.
	RerankNoise float64
	// BindNoise corrupts a slot binding during query reduction (the
	// dominant source of wrong-but-plausible plans).
	BindNoise float64
	// PlanNoise scales the per-step corruption probability of one-shot
	// plan generation (the LLMPlan baseline's failure mode).
	PlanNoise float64
	// JudgeNoise makes the plan/answer judge pick a non-majority answer.
	JudgeNoise float64
}

// DefaultFilterNoise is the default probability that the simulated model
// flips one semantic yes/no judgment. Its magnitude coincides with the
// cost model's PrefillTokenFactor (llm.go) by accident, not by design:
// the two constants are unrelated, and tuning prefill amortization for
// batching must never alter the noise model.
const DefaultFilterNoise = 0.015

// DefaultSimConfig returns the configuration used across the experiments:
// worker-model speed with mild, realistic error rates.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Profile:     WorkerProfile(),
		Seed:        1,
		FilterNoise: DefaultFilterNoise,
		LabelNoise:  0.008,
		RerankNoise: 0.05,
		BindNoise:   0.025,
		PlanNoise:   0.45,
		JudgeNoise:  0.32,
	}
}

// Sim is the deterministic simulated language model. It dispatches on the
// prompt's #TASK directive and answers using only the text carried in the
// prompt plus fixed lexicon knowledge — the same information a real model
// would see. Identical prompts return identical responses (responses are
// memoized, which also mirrors inference caches).
type Sim struct {
	cfg      SimConfig
	handlers map[string]func(*Sim, map[string]string) (string, error)

	mu   sync.RWMutex
	memo map[string]Response

	statsMu sync.Mutex
	nCalls  int
	nUnique int
}

// NewSim returns a simulated model with the given configuration.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Profile.PerOutToken == 0 {
		cfg.Profile = WorkerProfile()
	}
	s := &Sim{cfg: cfg, memo: make(map[string]Response)}
	s.handlers = handlerTable()
	return s
}

// Profile implements Client.
func (s *Sim) Profile() Profile { return s.cfg.Profile }

// Stats reports total and unique (non-memoized) call counts.
func (s *Sim) Stats() (calls, unique int) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.nCalls, s.nUnique
}

// Complete implements Client.
func (s *Sim) Complete(ctx context.Context, prompt string) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	s.statsMu.Lock()
	s.nCalls++
	s.statsMu.Unlock()

	s.mu.RLock()
	if resp, ok := s.memo[prompt]; ok {
		s.mu.RUnlock()
		return resp, nil
	}
	s.mu.RUnlock()

	task, fields, ok := ParsePrompt(prompt)
	if !ok {
		return Response{}, ErrMalformed
	}
	h, ok := s.handlers[task]
	if !ok {
		return Response{}, fmt.Errorf("%w: %q", ErrUnknownTask, task)
	}
	text, err := h(s, fields)
	if err != nil {
		return Response{}, &TaskError{Task: task, Err: err}
	}
	out := CountTokens(text)
	in := CountTokens(prompt)
	resp := Response{
		Text:      text,
		InTokens:  in,
		OutTokens: out,
		Dur:       s.cfg.Profile.DurFor(in, out),
	}
	s.mu.Lock()
	s.memo[prompt] = resp
	s.mu.Unlock()
	s.statsMu.Lock()
	s.nUnique++
	s.statsMu.Unlock()
	return resp, nil
}

// chance returns a deterministic pseudo-random draw in [0,1) keyed by the
// decision identity, and reports whether it falls below p.
func (s *Sim) chance(p float64, keys ...string) bool {
	if p <= 0 {
		return false
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(s.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	v := float64(h.Sum64()>>11) / (1 << 53)
	return v < p
}

// pick returns a deterministic pseudo-random index in [0,n) keyed by the
// decision identity.
func (s *Sim) pick(n int, keys ...string) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(s.cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{1})
	}
	return int(h.Sum64() % uint64(n))
}

var _ Client = (*Sim)(nil)
