package llm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// fakeEndpoint serves the minimal completion API, echoing a canned answer
// and usage counts.
func fakeEndpoint(t *testing.T, answer string, fail bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/completions" {
			http.NotFound(w, r)
			return
		}
		var req completionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Prompt == "" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		if fail {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		var out completionResponse
		out.Text = answer
		out.Usage.PromptTokens = CountTokens(req.Prompt)
		out.Usage.CompletionTokens = CountTokens(answer)
		json.NewEncoder(w).Encode(out)
	}))
}

func TestHTTPClientRoundTrip(t *testing.T) {
	srv := fakeEndpoint(t, "yes", false)
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "test-model")
	resp, err := c.Complete(context.Background(), BuildPrompt("filter_doc", map[string]string{
		"condition": "related to injury", "doc": "some text",
	}))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "yes" {
		t.Errorf("text = %q", resp.Text)
	}
	if resp.InTokens == 0 || resp.OutTokens == 0 || resp.Dur <= 0 {
		t.Errorf("usage not populated: %+v", resp)
	}
	if c.Profile().Name != "test-model" {
		t.Errorf("profile name = %q", c.Profile().Name)
	}
}

func TestHTTPClientServerError(t *testing.T) {
	srv := fakeEndpoint(t, "", true)
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "m")
	if _, err := c.Complete(context.Background(), "p"); err == nil {
		t.Error("server error not surfaced")
	}
}

func TestHTTPClientContextCancel(t *testing.T) {
	srv := fakeEndpoint(t, "x", false)
	defer srv.Close()
	c := NewHTTPClient(srv.URL, "m")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Complete(ctx, "p"); err == nil {
		t.Error("cancelled context not honored")
	}
}

func TestHTTPClientBadEndpoint(t *testing.T) {
	c := NewHTTPClient("http://127.0.0.1:1", "m")
	if _, err := c.Complete(context.Background(), "p"); err == nil {
		t.Error("unreachable endpoint not surfaced")
	}
}
