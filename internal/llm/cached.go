package llm

import (
	"context"

	"unify/internal/cache"
)

// Cached wraps a Client with response memoization on a shared cache
// layer, mirroring the inference/prefix caches of real LLM serving
// stacks: identical prompts to the same model are answered once, and
// identical concurrent prompts coalesce onto a single in-flight call.
//
// A cache-served response carries Cached=true and Dur=0 — it costs zero
// virtual time and bypasses the slot pool. Downstream accounting
// (executor vtime units, calibrator feeds) keys off that flag.
type Cached struct {
	inner Client
	layer *cache.Layer[Response]
}

// ResponseCost prices a Response for the shared byte budget.
func ResponseCost(r Response) int64 {
	return int64(len(r.Text)) + 48
}

// NewCached wraps inner over layer. A nil layer yields a pass-through
// wrapper (every call reaches the model).
func NewCached(inner Client, layer *cache.Layer[Response]) *Cached {
	return &Cached{inner: inner, layer: layer}
}

// Complete implements Client. The cache key includes the model name so
// planner and worker models wrapped over one layer never collide.
func (c *Cached) Complete(ctx context.Context, prompt string) (Response, error) {
	key := c.inner.Profile().Name + "\x1f" + prompt
	resp, hit, err := c.layer.GetOrCompute(key, func() (Response, error) {
		return c.inner.Complete(ctx, prompt)
	})
	if err != nil {
		return Response{}, err
	}
	if hit {
		resp.Cached = true
		resp.Dur = 0
	}
	return resp, nil
}

// Profile implements Client.
func (c *Cached) Profile() Profile { return c.inner.Profile() }

// Unwrap returns the wrapped client.
func (c *Cached) Unwrap() Client { return c.inner }

// Stats snapshots the wrapper's cache layer.
func (c *Cached) Stats() cache.Stats { return c.layer.Stats() }

var _ Client = (*Cached)(nil)

// Unwrap walks one level of client wrapping (Cached, Recorder, Traced).
func Unwrap(c Client) Client {
	type unwrapper interface{ Unwrap() Client }
	if u, ok := c.(unwrapper); ok {
		return u.Unwrap()
	}
	return nil
}

// SimOf walks the wrapper chain and returns the underlying Sim, or nil
// when the base client is not a Sim.
func SimOf(c Client) *Sim {
	for c != nil {
		if s, ok := c.(*Sim); ok {
			return s
		}
		c = Unwrap(c)
	}
	return nil
}
