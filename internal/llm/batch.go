package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
)

// Continuous batching support: the Batching wrapper stamps every
// response of a batchable per-document task with a compatibility key.
// Calls with equal keys — same task family, same model, same prompt
// template (field structure) — are co-schedulable: the virtual-time
// scheduler may coalesce them into one batched invocation occupying a
// single slot, amortizing the template's prefill and sharing decode
// bandwidth. The wrapper never alters answers: it annotates metadata
// only, so answer bytes are identical with batching on or off.

// batchableTasks is the set of per-document operator families whose
// prompts share a fixed template across documents and queries. Planner,
// baseline, and aggregate tasks are excluded: their prompts are
// query-shaped, not document-shaped, and rarely repeat.
var batchableTasks = map[string]bool{
	"filter_batch":   true,
	"filter_doc":     true,
	"filter_label":   true,
	"classify_batch": true,
	"classify_doc":   true,
	"extract_batch":  true,
	"extract_doc":    true,
}

// payloadFields are prompt fields whose values are per-call payload
// (document text) rather than template text. Everything else — the
// condition, class list, target description — is small per-query
// scaffold counted into the template's prefill share.
var payloadFields = map[string]bool{"doc": true, "docs": true}

// BatchableTask reports whether the task family participates in
// cross-query batching.
func BatchableTask(task string) bool { return batchableTasks[task] }

// BatchKeyFor computes the co-scheduling compatibility key for a prompt
// issued against the named model, plus the token count of the prompt's
// template scaffold (directive, field names, and non-payload field
// values — the prefill a batch pays only once, at the largest member's
// size) and the payload identity key. ok is false for prompts that must
// never coalesce: unparsable prompts and non-batchable task families.
//
// The key is a pure function of (task, model, sorted field names):
// per-document payloads and per-query parameter values differ across
// members of one batch by design — that is what makes the batching
// cross-query — while the task family, model, and field structure pin
// the template.
//
// The payload key is a pure function of the payload field values (the
// doc/docs text). Two co-batched calls with equal payload keys carry the
// same documents — concurrent queries scanning the same corpus chunk —
// so the batched invocation prefills that payload once for all of them,
// extending the cache layer's singleflight from identical calls to
// co-schedulable ones. It is empty when the prompt has no payload
// fields.
func BatchKeyFor(prompt, model string) (key, payloadKey string, templateTokens int, ok bool) {
	task, fields, pok := ParsePrompt(prompt)
	if !pok || !batchableTasks[task] {
		return "", "", 0, false
	}
	names := make([]string, 0, len(fields))
	scaffold := "#TASK " + task
	for k := range fields {
		names = append(names, k)
	}
	sort.Strings(names)
	h := fnv.New64a()
	hasPayload := false
	for _, k := range names {
		scaffold += " #FIELD " + k
		if payloadFields[k] {
			hasPayload = true
			io.WriteString(h, "#PAYLOAD ")
			io.WriteString(h, k)
			io.WriteString(h, " ")
			io.WriteString(h, fields[k])
		} else {
			scaffold += " " + fields[k]
		}
	}
	key = task + "|" + model + "|" + strings.Join(names, ",")
	if hasPayload {
		payloadKey = fmt.Sprintf("%016x", h.Sum64())
	}
	return key, payloadKey, CountTokens(scaffold), true
}

// Batching wraps a Client and stamps batchable responses with their
// compatibility key and template token count. It is installed at the
// top of the worker client stack when Config.Batching is on, beneath
// the executor's per-query Recorder, which copies the metadata onto the
// recorded calls for the scheduler to read. Text, tokens, and durations
// are untouched.
type Batching struct {
	inner Client
}

// NewBatching wraps inner with batch-key stamping.
func NewBatching(inner Client) *Batching { return &Batching{inner: inner} }

// Complete implements Client.
func (b *Batching) Complete(ctx context.Context, prompt string) (Response, error) {
	resp, err := b.inner.Complete(ctx, prompt)
	if err != nil {
		return resp, err
	}
	// Cached responses never occupy a slot, so there is nothing to
	// coalesce; leave them unstamped.
	if !resp.Cached {
		if key, pk, tmpl, ok := BatchKeyFor(prompt, b.inner.Profile().Name); ok {
			resp.BatchKey = key
			resp.PayloadKey = pk
			resp.TemplateTokens = tmpl
		}
	}
	return resp, nil
}

// Profile implements Client.
func (b *Batching) Profile() Profile { return b.inner.Profile() }

// Unwrap returns the wrapped client.
func (b *Batching) Unwrap() Client { return b.inner }

var _ Client = (*Batching)(nil)
