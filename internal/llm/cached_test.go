package llm

import (
	"context"
	"sync"
	"testing"

	"unify/internal/cache"
)

func newCachedSim(t *testing.T) (*Cached, *Sim, *cache.LRU) {
	t.Helper()
	sim := NewSim(SimConfig{Profile: WorkerProfile(), Seed: 1})
	lru := cache.New(1 << 20)
	layer := cache.NewLayer[Response](lru, "llm", ResponseCost)
	return NewCached(sim, layer), sim, lru
}

func TestCachedMemoizesAndZeroesDur(t *testing.T) {
	c, _, _ := newCachedSim(t)
	ctx := context.Background()
	prompt := "#TASK filter_doc\n#COND about gravity\n#DOC d1: apples fall down"
	r1, err := c.Complete(ctx, prompt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Dur == 0 {
		t.Fatalf("cold call: cached=%v dur=%v, want live call with positive dur", r1.Cached, r1.Dur)
	}
	r2, err := c.Complete(ctx, prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Dur != 0 {
		t.Fatalf("warm call: cached=%v dur=%v, want cached with zero dur", r2.Cached, r2.Dur)
	}
	if r2.Text != r1.Text || r2.OutTokens != r1.OutTokens {
		t.Fatalf("cached response differs: %q vs %q", r2.Text, r1.Text)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("layer stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCachedKeysIncludeModel(t *testing.T) {
	lru := cache.New(1 << 20)
	layer := cache.NewLayer[Response](lru, "llm", ResponseCost)
	worker := NewCached(NewSim(SimConfig{Profile: WorkerProfile(), Seed: 1}), layer)
	planner := NewCached(NewSim(SimConfig{Profile: PlannerProfile(), Seed: 1}), layer)
	ctx := context.Background()
	prompt := "#TASK filter_doc\n#COND about gravity\n#DOC d1: apples fall"
	if _, err := worker.Complete(ctx, prompt); err != nil {
		t.Fatal(err)
	}
	r, err := planner.Complete(ctx, prompt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cached {
		t.Fatal("planner call hit the worker's cache entry: keys must include model name")
	}
}

func TestCachedVsSimAccounting(t *testing.T) {
	// Every call that reaches the Sim corresponds to exactly one cache
	// layer miss: layer.misses == sim calls, layer hits never reach it.
	c, sim, _ := newCachedSim(t)
	ctx := context.Background()
	prompts := []string{
		"#TASK filter_doc\n#COND about space\n#DOC d1: stars shine",
		"#TASK filter_doc\n#COND about space\n#DOC d2: planets orbit",
		"#TASK filter_doc\n#COND about space\n#DOC d1: stars shine", // repeat
	}
	for _, p := range prompts {
		for i := 0; i < 3; i++ {
			if _, err := c.Complete(ctx, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	calls, unique := sim.Stats()
	st := c.Stats()
	if uint64(calls) != st.Misses {
		t.Fatalf("sim calls %d != layer misses %d", calls, st.Misses)
	}
	if unique != 2 {
		t.Fatalf("sim unique = %d, want 2 distinct prompts", unique)
	}
	if st.Hits != 7 {
		t.Fatalf("layer hits = %d, want 7 (9 calls - 2 misses)", st.Hits)
	}
}

func TestCachedCoalescesConcurrentPrompts(t *testing.T) {
	c, sim, _ := newCachedSim(t)
	ctx := context.Background()
	prompt := "#TASK filter_doc\n#COND about rain\n#DOC d9: clouds gather"
	var wg sync.WaitGroup
	const n = 12
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Complete(ctx, prompt); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if calls, _ := sim.Stats(); calls != 1 {
		t.Fatalf("sim saw %d calls for one prompt, want 1 (memoized or coalesced)", calls)
	}
	st := c.Stats()
	if st.Hits+st.Misses != n {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, n)
	}
}

func TestUnwrapAndSimOf(t *testing.T) {
	c, sim, _ := newCachedSim(t)
	rec := NewRecorder(c)
	tr := NewTraced(rec, nil)
	if got := SimOf(tr); got != sim {
		t.Fatal("SimOf failed to reach the base Sim through Traced>Recorder>Cached")
	}
	if SimOf(nil) != nil {
		t.Fatal("SimOf(nil) should be nil")
	}
}

func TestRecorderPropagatesCachedFlag(t *testing.T) {
	c, _, _ := newCachedSim(t)
	rec := NewRecorder(c)
	ctx := context.Background()
	prompt := "#TASK filter_doc\n#COND about fire\n#DOC d3: flames rise"
	for i := 0; i < 2; i++ {
		if _, err := rec.Complete(ctx, prompt); err != nil {
			t.Fatal(err)
		}
	}
	calls := rec.Calls()
	if len(calls) != 2 {
		t.Fatalf("recorded %d calls, want 2", len(calls))
	}
	if calls[0].Cached || !calls[1].Cached {
		t.Fatalf("cached flags = %v,%v, want false,true", calls[0].Cached, calls[1].Cached)
	}
	if calls[1].Dur != 0 {
		t.Fatalf("cached call dur = %v, want 0", calls[1].Dur)
	}
}
