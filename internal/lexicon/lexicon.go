// Package lexicon holds the shared concept vocabulary of the reproduction.
//
// The synthetic corpus generators use these word lists to render documents,
// and the simulated LLM uses the same lists as its "world knowledge" when
// judging semantic predicates such as "questions related to injuries" or
// "sports involving a ball". Sharing the vocabulary is the substitute for a
// real LLM's language understanding: a document about football really does
// contain football words, and the judge really does recognize them, so
// semantic filtering is a genuine text-comprehension task rather than a
// lookup of hidden labels.
package lexicon

import (
	"sort"
	"strings"

	"unify/internal/tokenizer"
)

// Concept is a named semantic concept with indicator words.
type Concept struct {
	Name  string   // canonical name, e.g. "football", "injury"
	Words []string // indicator words, including the name itself
	// Class groups concepts: "sport", "topic", "aifield", "lawarea",
	// "wikicat". Used to enumerate candidate group labels.
	Class string
}

// BallSports lists the sports that involve a ball; the running example
// query of the paper ("which sport involving a ball ...") depends on it.
var BallSports = map[string]bool{
	"football": true, "basketball": true, "tennis": true, "baseball": true,
	"golf": true, "volleyball": true, "cricket": true, "rugby": true,
}

// TeamSports lists sports that require teamwork (used by semantic-filter
// style conditions such as "sports that require teamwork").
var TeamSports = map[string]bool{
	"football": true, "basketball": true, "baseball": true,
	"volleyball": true, "cricket": true, "rugby": true, "hockey": true,
}

var concepts = []Concept{
	// Sports (class "sport").
	{"football", []string{"football", "soccer", "goal", "goalkeeper", "midfielder", "penalty", "offside", "striker"}, "sport"},
	{"basketball", []string{"basketball", "hoop", "dribble", "dunk", "rebound", "layup", "backboard"}, "sport"},
	{"tennis", []string{"tennis", "racket", "serve", "backhand", "forehand", "baseline", "volley", "deuce"}, "sport"},
	{"baseball", []string{"baseball", "pitcher", "inning", "batter", "homerun", "catcher", "bullpen", "strikeout"}, "sport"},
	{"golf", []string{"golf", "fairway", "putt", "birdie", "bogey", "tee", "caddie", "bunker"}, "sport"},
	{"volleyball", []string{"volleyball", "spike", "setter", "libero", "block", "dig", "rotation"}, "sport"},
	{"cricket", []string{"cricket", "wicket", "bowler", "batsman", "over", "crease", "lbw"}, "sport"},
	{"rugby", []string{"rugby", "scrum", "tackle", "lineout", "fly-half", "ruck", "maul"}, "sport"},
	{"swimming", []string{"swimming", "freestyle", "backstroke", "butterfly", "lap", "pool", "breaststroke"}, "sport"},
	{"running", []string{"running", "marathon", "sprint", "jog", "pace", "stride", "treadmill"}, "sport"},
	{"cycling", []string{"cycling", "bicycle", "peloton", "cadence", "saddle", "derailleur", "sprocket"}, "sport"},
	{"hockey", []string{"hockey", "puck", "stick", "rink", "slapshot", "faceoff", "goalie"}, "sport"},

	// Rare sports (long-tail categories; queries over them stress
	// cardinality estimation).
	{"curling", []string{"curling", "stone", "sweeping", "skip", "hammer", "bonspiel", "sheet"}, "sport"},
	{"fencing", []string{"fencing", "foil", "epee", "sabre", "parry", "riposte", "piste"}, "sport"},
	{"archery", []string{"archery", "bow", "arrow", "quiver", "bullseye", "fletching", "nock"}, "sport"},

	// Question topics (class "topic").
	{"injury", []string{"injury", "injured", "pain", "sprain", "fracture", "strain", "swelling", "recovery", "ache", "torn"}, "topic"},
	{"training", []string{"training", "drill", "practice", "workout", "conditioning", "exercise", "regimen", "warmup"}, "topic"},
	{"rules", []string{"rule", "regulation", "referee", "foul", "legal", "permitted", "violation", "umpire"}, "topic"},
	{"equipment", []string{"equipment", "gear", "shoes", "helmet", "glove", "apparel", "cleats", "padding"}, "topic"},
	{"nutrition", []string{"nutrition", "diet", "protein", "hydration", "calorie", "supplement", "carbohydrate"}, "topic"},
	{"history", []string{"history", "historical", "origin", "founded", "tradition", "record", "era", "ancient"}, "topic"},

	// AI sub-fields (class "aifield").
	{"neural-networks", []string{"neural", "network", "backpropagation", "gradient", "layer", "activation", "weights"}, "aifield"},
	{"reinforcement-learning", []string{"reinforcement", "reward", "policy", "agent", "q-learning", "environment", "exploration"}, "aifield"},
	{"nlp", []string{"language", "nlp", "token", "parsing", "translation", "corpus", "embedding", "transformer"}, "aifield"},
	{"computer-vision", []string{"vision", "image", "convolution", "detection", "segmentation", "pixel", "camera"}, "aifield"},
	{"ethics", []string{"ethics", "bias", "fairness", "alignment", "safety", "accountability", "transparency"}, "aifield"},
	{"search", []string{"search", "heuristic", "minimax", "astar", "pathfinding", "pruning", "frontier"}, "aifield"},

	// Law areas (class "lawarea").
	{"contract", []string{"contract", "breach", "clause", "agreement", "consideration", "party", "obligation"}, "lawarea"},
	{"criminal", []string{"criminal", "felony", "prosecution", "defendant", "sentence", "arrest", "guilty"}, "lawarea"},
	{"copyright", []string{"copyright", "infringement", "license", "royalty", "trademark", "patent", "fair-use"}, "lawarea"},
	{"employment", []string{"employment", "employer", "wrongful", "wage", "termination", "discrimination", "overtime"}, "lawarea"},
	{"property", []string{"property", "landlord", "tenant", "lease", "easement", "deed", "eviction"}, "lawarea"},
	{"privacy", []string{"privacy", "surveillance", "consent", "data-protection", "gdpr", "disclosure", "confidential"}, "lawarea"},

	// Rare AI sub-fields.
	{"robotics", []string{"robotics", "actuator", "servo", "kinematics", "gripper", "locomotion", "sensor"}, "aifield"},
	{"planning", []string{"planning", "scheduler", "goal", "precondition", "operator", "strips", "plan"}, "aifield"},
	{"knowledge-representation", []string{"ontology", "taxonomy", "predicate", "inference", "logic", "axiom", "reasoner"}, "aifield"},

	// AI question aspects (class "aiaspect").
	{"theory", []string{"theory", "theorem", "proof", "convergence", "bound", "complexity", "formal"}, "aiaspect"},
	{"implementation", []string{"implementation", "code", "library", "debug", "framework", "install", "runtime"}, "aiaspect"},
	{"benchmark", []string{"benchmark", "dataset", "evaluation", "metric", "accuracy", "baseline", "leaderboard"}, "aiaspect"},
	{"hardware", []string{"hardware", "gpu", "memory", "cuda", "chip", "throughput", "parallelism"}, "aiaspect"},
	{"career", []string{"career", "job", "interview", "degree", "salary", "hiring", "resume"}, "aiaspect"},
	{"research", []string{"research", "paper", "citation", "publication", "conference", "peer-review", "novelty"}, "aiaspect"},

	// Rare law areas.
	{"maritime", []string{"maritime", "admiralty", "vessel", "salvage", "cargo", "charter", "seaworthy"}, "lawarea"},
	{"immigration", []string{"immigration", "visa", "asylum", "deportation", "citizenship", "naturalization", "passport"}, "lawarea"},
	{"tax", []string{"tax", "deduction", "audit", "taxable", "exemption", "withholding", "levy"}, "lawarea"},

	// Law question aspects (class "lawaspect").
	{"liability", []string{"liability", "liable", "negligence", "damages", "fault", "compensation", "tort"}, "lawaspect"},
	{"procedure", []string{"procedure", "filing", "motion", "hearing", "deadline", "jurisdiction", "docket"}, "lawaspect"},
	{"penalty", []string{"penalty", "fine", "punishment", "imprisonment", "sanction", "probation", "restitution"}, "lawaspect"},
	{"evidence", []string{"evidence", "testimony", "witness", "exhibit", "admissible", "hearsay", "discovery"}, "lawaspect"},
	{"appeal", []string{"appeal", "appellate", "overturn", "remand", "reversal", "petition", "review"}, "lawaspect"},
	{"definition", []string{"definition", "meaning", "interpretation", "statute", "terminology", "defined", "construe"}, "lawaspect"},

	// Wikipedia page aspects (class "wikiaspect").
	{"biography", []string{"biography", "born", "died", "childhood", "legacy", "career", "life"}, "wikiaspect"},
	{"event", []string{"event", "occurred", "ceremony", "celebration", "anniversary", "battle", "festival"}, "wikiaspect"},
	{"place", []string{"place", "located", "capital", "district", "landmark", "coordinates", "border"}, "wikiaspect"},
	{"organization", []string{"organization", "founded", "headquarters", "member", "nonprofit", "institution", "charter"}, "wikiaspect"},
	{"work", []string{"work", "published", "novel", "album", "film", "premiere", "author"}, "wikiaspect"},
	{"concept", []string{"concept", "defined", "principle", "framework", "notion", "abstraction", "paradigm"}, "wikiaspect"},

	// Wikipedia categories (class "wikicat").
	{"astronomy", []string{"astronomy", "telescope", "galaxy", "nebula", "orbit", "asteroid", "constellation"}, "wikicat"},
	{"mythology", []string{"mythology", "myth", "deity", "legend", "pantheon", "folklore", "oracle"}, "wikicat"},
	{"linguistics", []string{"linguistics", "phoneme", "syntax", "dialect", "morphology", "etymology", "grammar"}, "wikicat"},
	{"science", []string{"science", "experiment", "physics", "chemistry", "hypothesis", "laboratory", "theory"}, "wikicat"},
	{"geography", []string{"geography", "river", "mountain", "continent", "climate", "population", "region"}, "wikicat"},
	{"arts", []string{"arts", "painting", "sculpture", "museum", "composer", "gallery", "exhibition"}, "wikicat"},
	{"technology", []string{"technology", "software", "hardware", "internet", "computer", "protocol", "algorithm"}, "wikicat"},
	{"biology", []string{"biology", "species", "cell", "organism", "evolution", "habitat", "genome"}, "wikicat"},
	{"economics", []string{"economics", "market", "inflation", "trade", "currency", "investment", "supply"}, "wikicat"},
}

var byName = func() map[string]Concept {
	m := make(map[string]Concept, len(concepts))
	for _, c := range concepts {
		m[c.Name] = c
	}
	return m
}()

// Lookup returns the concept with the given canonical name.
func Lookup(name string) (Concept, bool) {
	c, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	return c, ok
}

// Names returns the canonical names of all concepts in a class, sorted.
func Names(class string) []string {
	var out []string
	for _, c := range concepts {
		if c.Class == class {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

// All returns every concept (copy of the registry order).
func All() []Concept {
	out := make([]Concept, len(concepts))
	copy(out, concepts)
	return out
}

// Match reports whether text evokes the named concept, i.e. whether the
// text contains at least minHits of the concept's indicator words. The
// simulated LLM uses Match(text, name, 1) as its semantic judgment; the
// corpus generator guarantees documents about a concept contain several of
// its words and documents about other concepts contain none.
func Match(text, name string, minHits int) bool {
	c, ok := Lookup(name)
	if !ok {
		// Unknown concept: fall back to matching the bare word itself.
		return tokenizer.ContainsTerm(text, name)
	}
	if minHits <= 0 {
		minHits = 1
	}
	hits := 0
	for _, w := range c.Words {
		if tokenizer.ContainsTerm(text, w) {
			hits++
			if hits >= minHits {
				return true
			}
		}
	}
	return false
}

// BestConcept returns the concept of the given class with the most
// indicator-word hits in text, or "" if none hit. Ties break
// alphabetically for determinism. This powers semantic GroupBy/Classify.
func BestConcept(text, class string) string {
	best, bestHits := "", 0
	for _, name := range Names(class) {
		c := byName[name]
		hits := 0
		for _, w := range c.Words {
			if tokenizer.ContainsTerm(text, w) {
				hits++
			}
		}
		if hits > bestHits {
			best, bestHits = name, hits
		}
	}
	return best
}

// IsBallSport reports whether the named sport involves a ball.
func IsBallSport(name string) bool { return BallSports[strings.ToLower(name)] }

// IsTeamSport reports whether the named sport requires teamwork.
func IsTeamSport(name string) bool { return TeamSports[strings.ToLower(name)] }

// Subset is a semantic subset of a concept class — "sports involving a
// ball", "fields related to machine learning" — used by queries that
// restrict group labels with a semantic predicate.
type Subset struct {
	Name    string // canonical name, e.g. "ball"
	Class   string
	Members map[string]bool
	Phrase  string // canonical surface phrase, e.g. "involving a ball"
}

var subsets = map[string]Subset{
	"ball":             {"ball", "sport", BallSports, "involving a ball"},
	"teamwork":         {"teamwork", "sport", TeamSports, "requiring teamwork"},
	"machine-learning": {"machine-learning", "aifield", map[string]bool{"neural-networks": true, "reinforcement-learning": true, "nlp": true, "computer-vision": true}, "related to machine learning"},
	"money":            {"money", "lawarea", map[string]bool{"contract": true, "employment": true, "property": true, "copyright": true}, "involving money"},
	"natural-world":    {"natural-world", "wikicat", map[string]bool{"science": true, "biology": true, "geography": true}, "about the natural world"},
}

// LookupSubset returns the named semantic subset.
func LookupSubset(name string) (Subset, bool) {
	s, ok := subsets[strings.ToLower(strings.TrimSpace(name))]
	return s, ok
}

// SubsetNames lists all subset names, sorted.
func SubsetNames() []string {
	out := make([]string, 0, len(subsets))
	for n := range subsets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// InSubset reports whether a concept name belongs to the named subset.
func InSubset(subset, concept string) bool {
	s, ok := LookupSubset(subset)
	return ok && s.Members[strings.ToLower(concept)]
}
