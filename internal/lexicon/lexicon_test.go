package lexicon

import (
	"strings"
	"testing"
)

func TestLookup(t *testing.T) {
	c, ok := Lookup("football")
	if !ok || c.Class != "sport" {
		t.Fatalf("Lookup(football) = %+v, %v", c, ok)
	}
	if _, ok := Lookup("no-such-concept"); ok {
		t.Error("unknown concept found")
	}
	if _, ok := Lookup("  FOOTBALL  "); !ok {
		t.Error("lookup should normalize case/space")
	}
}

func TestNamesDistinctAndSorted(t *testing.T) {
	for _, class := range []string{"sport", "topic", "aifield", "lawarea", "wikicat", "aiaspect", "lawaspect", "wikiaspect"} {
		names := Names(class)
		if len(names) < 6 {
			t.Errorf("class %s has only %d concepts", class, len(names))
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("class %s names not sorted/unique: %v", class, names)
			}
		}
	}
}

func TestNoDuplicateConceptNames(t *testing.T) {
	seen := map[string]string{}
	for _, c := range All() {
		if prev, dup := seen[c.Name]; dup {
			t.Errorf("concept %q in both %s and %s", c.Name, prev, c.Class)
		}
		seen[c.Name] = c.Class
	}
}

func TestMatch(t *testing.T) {
	text := "The goalkeeper committed a penalty during the football match."
	if !Match(text, "football", 1) {
		t.Error("football not matched")
	}
	if !Match(text, "football", 2) {
		t.Error("two indicator words present but minHits=2 failed")
	}
	if Match(text, "tennis", 1) {
		t.Error("tennis matched wrongly")
	}
	// Unknown concept falls back to the bare word.
	if !Match("we talked about quasars", "quasars", 1) {
		t.Error("bare-word fallback failed")
	}
}

func TestBestConcept(t *testing.T) {
	text := "The pitcher threw a strikeout in the ninth inning; the batter was out."
	if got := BestConcept(text, "sport"); got != "baseball" {
		t.Errorf("BestConcept = %q, want baseball", got)
	}
	if got := BestConcept("nothing sporty here", "sport"); got != "" {
		t.Errorf("BestConcept on neutral text = %q, want empty", got)
	}
}

func TestSubsets(t *testing.T) {
	for _, name := range SubsetNames() {
		sub, ok := LookupSubset(name)
		if !ok {
			t.Fatalf("subset %s not found", name)
		}
		if len(sub.Members) == 0 || sub.Phrase == "" {
			t.Errorf("subset %s incomplete: %+v", name, sub)
		}
		// Every member must be a real concept of the subset's class.
		for m := range sub.Members {
			c, ok := Lookup(m)
			if !ok || c.Class != sub.Class {
				t.Errorf("subset %s member %q not in class %s", name, m, sub.Class)
			}
		}
	}
	if !InSubset("ball", "football") || InSubset("ball", "swimming") {
		t.Error("ball subset membership wrong")
	}
}

func TestBallAndTeamHelpers(t *testing.T) {
	if !IsBallSport("Football") {
		t.Error("case-insensitive ball sport failed")
	}
	if IsTeamSport("golf") {
		t.Error("golf is not a team sport")
	}
}

// TestConceptWordsMostlySingleToken documents the matching constraint:
// hyphenated indicator words cannot match via ContainsTerm, so each
// concept needs enough plain words.
func TestConceptWordsMostlySingleToken(t *testing.T) {
	for _, c := range All() {
		plain := 0
		for _, w := range c.Words {
			if !strings.ContainsAny(w, "- ") {
				plain++
			}
		}
		if plain < 5 {
			t.Errorf("concept %s has only %d plain indicator words", c.Name, plain)
		}
	}
}
