package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"unify/internal/vtime"
)

// batchUnit builds a batchable LLM unit with the worker profile's
// magnitudes: 80ms base, 30ms template prefill, payload and decode as
// given. The spec parts sum exactly to the unit duration.
func batchUnit(key string, payload, decode time.Duration) vtime.Unit {
	base := 80 * time.Millisecond
	tmpl := 30 * time.Millisecond
	return vtime.Unit{
		Dur:      base + tmpl + payload + decode,
		Resource: vtime.ResourceLLM,
		Batch: &vtime.BatchSpec{
			Key: key, Base: base, Decode: decode,
			TemplatePrefill: tmpl, PayloadPrefill: payload,
		},
	}
}

// chain is a single sequential operator of n batchable calls.
func chain(id string, n int, key string) []vtime.Task {
	units := make([]vtime.Unit, n)
	for i := range units {
		units[i] = batchUnit(key, 100*time.Millisecond, 200*time.Millisecond)
	}
	return []vtime.Task{{ID: id, Units: units, Sequential: true}}
}

// TestBatchStarvationBounded is the fairness acceptance test: one heavy
// scan (a long chain of batchable chunks) shares the batching pool with
// eight light queries. The fairness cap bounds every multi-member
// invocation, so no light query's slot wait can stretch past a capped
// invocation plus normal queueing — and the strict checker's
// batch.fairness_bound invariant audits every grant of the merged replay.
func TestBatchStarvationBounded(t *testing.T) {
	const cap = 2500 * time.Millisecond
	p := NewPool(4)
	p.StrictChecks = true
	p.Batching = &vtime.BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: cap, MaxBatch: 8}

	gate := p.Admit(0)
	heavyTk := p.Admit(0)
	lightTks := make([]*Ticket, 8)
	for i := range lightTks {
		lightTks[i] = p.Admit(0)
	}

	var heavy JobResult
	lights := make([]JobResult, len(lightTks))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		jr, err := p.Run(context.Background(), heavyTk, chain("scan", 50, "filter"))
		if err != nil {
			t.Error(err)
		}
		heavy = jr
	}()
	for i := range lightTks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr, err := p.Run(context.Background(), lightTks[i], chain("probe", 1, "filter"))
			if err != nil {
				t.Error(err)
			}
			lights[i] = jr
		}(i)
	}
	waitPending(t, p, 9)
	p.Release(gate) // all nine jobs co-pending: one deterministic epoch
	wg.Wait()
	st := p.Stats()
	p.Release(heavyTk)
	for _, tk := range lightTks {
		p.Release(tk)
	}

	if heavy.BatchedUnits == 0 {
		t.Fatal("heavy scan never batched with the light queries")
	}
	batchedLights := 0
	for i, jr := range lights {
		if jr.Makespan < jr.Solo {
			t.Fatalf("light %d makespan %v < solo %v", i, jr.Makespan, jr.Solo)
		}
		// The starvation bound: a light query waits at most one capped
		// invocation (the batch occupying its slot when it arrives) plus
		// its own hold-the-door deferral — far under the heavy scan's
		// total demand, which FCFS without caps could charge it.
		if jr.GrantWait > cap {
			t.Errorf("light %d waited %v for its grant, above the %v fairness cap", i, jr.GrantWait, cap)
		}
		if jr.BatchedUnits > 0 {
			batchedLights++
		}
	}
	if batchedLights == 0 {
		t.Fatal("no light query rode a batched invocation")
	}
	if st.BatchGrants == 0 || st.BatchOccupancy <= 1.0 {
		t.Fatalf("batching stats show no coalescing: %+v", st)
	}
	if st.MaxBatchSize > 8 {
		t.Fatalf("max batch size %d exceeds the policy bound", st.MaxBatchSize)
	}
	if st.Utilization > 1.0 {
		t.Fatalf("epoch utilization %v > 1 with batching", st.Utilization)
	}
}

// TestBatchPoolDeterministicReplay pins the pool-level guarantee: with a
// fixed admission and submission sequence, batching produces
// bit-identical job results across replays.
func TestBatchPoolDeterministicReplay(t *testing.T) {
	run := func() []JobResult {
		p := NewPool(2)
		p.StrictChecks = true
		p.Batching = &vtime.BatchPolicy{Window: 100 * time.Millisecond, FairnessCap: 2500 * time.Millisecond, MaxBatch: 4}
		const n = 5
		gate := p.Admit(0)
		tks := make([]*Ticket, n)
		for i := range tks {
			tks[i] = p.Admit(i % 2)
		}
		out := make([]JobResult, n)
		var wg sync.WaitGroup
		for i := n - 1; i >= 0; i-- {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				jr, err := p.Run(context.Background(), tks[i], chain("op", 2+i%3, "filter"))
				if err != nil {
					t.Error(err)
				}
				out[i] = jr
			}(i)
		}
		waitPending(t, p, n)
		p.Release(gate)
		wg.Wait()
		for i := range tks {
			p.Release(tks[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if av, bv := formatJR(a[i]), formatJR(b[i]); av != bv {
			t.Fatalf("batched replay diverged at query %d:\n%s\n%s", i, av, bv)
		}
	}
}

func formatJR(jr JobResult) string {
	return fmt.Sprintf("%v|%v|%v|%v|%d", jr.Start, jr.Makespan, jr.Busy, jr.GrantWait, jr.BatchedUnits)
}
