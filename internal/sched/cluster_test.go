package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"unify/internal/vtime"
)

// homedGraph is graph() homed on machine m's slot resource, the way the
// executor builds task graphs against a ticket's home machine.
func homedGraph(m, calls int, dur time.Duration) []vtime.Task {
	res := vtime.MachineResource(m)
	units := make([]vtime.Unit, calls)
	for i := range units {
		units[i] = vtime.Unit{Dur: dur, Resource: res}
	}
	return []vtime.Task{
		{ID: "a", Units: units},
		{ID: "b", Deps: []string{"a"}, Units: []vtime.Unit{{Dur: dur, Resource: res}}},
	}
}

// TestClusterM1MatchesPool asserts a 1-machine cluster is bit-identical
// to the plain single-machine pool — the scale-out PR's compatibility
// bar. Machine 0 keeps the bare "llm" resource, so the same task graphs
// drive both.
func TestClusterM1MatchesPool(t *testing.T) {
	runSeq := func(p *Pool) []JobResult {
		var out []JobResult
		// Two drained epochs, then a co-admitted contended pair.
		for i := 0; i < 2; i++ {
			tk := p.Admit(0)
			jr, err := p.Run(context.Background(), tk, graph(8, ms(5)))
			p.Release(tk)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, jr)
		}
		gate := p.Admit(0)
		tkA, tkB := p.Admit(0), p.Admit(1)
		var jrB JobResult
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { defer wg.Done(); jrB, _ = p.Run(context.Background(), tkB, graph(6, ms(9))) }()
		waitPending(t, p, 1)
		p.Release(gate)
		jrA, err := p.Run(context.Background(), tkA, graph(6, ms(9)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		p.Release(tkA)
		p.Release(tkB)
		return append(out, jrA, jrB)
	}

	pool := runSeq(NewPool(4))
	cluster := runSeq(NewCluster(1, 4).Pool)
	for i := range pool {
		if fmt.Sprintf("%+v", pool[i]) != fmt.Sprintf("%+v", cluster[i]) {
			t.Fatalf("job %d diverged:\npool:    %+v\ncluster: %+v", i, pool[i], cluster[i])
		}
	}
}

// TestClusterHomeRoundRobin asserts home machines rotate per epoch
// admission: query k of an epoch lands on machine k mod M, and a
// drained cluster restarts the rotation at machine 0.
func TestClusterHomeRoundRobin(t *testing.T) {
	c := NewCluster(4, 2)
	tks := make([]*Ticket, 8)
	for i := range tks {
		tks[i] = c.Admit(0)
		if got := tks[i].Machine(); got != i%4 {
			t.Fatalf("ticket %d homed on machine %d, want %d", i, got, i%4)
		}
	}
	for _, tk := range tks {
		c.Release(tk)
	}
	// Fresh epoch: rotation restarts at 0.
	tk := c.Admit(0)
	defer c.Release(tk)
	if got := tk.Machine(); got != 0 {
		t.Fatalf("post-drain ticket homed on machine %d, want 0", got)
	}
}

// TestClusterMachinesRunInParallel asserts two queries homed on separate
// machines overlap in virtual time instead of queueing: the cluster's
// whole point.
func TestClusterMachinesRunInParallel(t *testing.T) {
	c := NewCluster(2, 1)
	gate := c.Admit(0)
	tkA, tkB := c.Admit(0), c.Admit(0)
	if tkA.Machine() == tkB.Machine() {
		t.Fatalf("both tickets homed on machine %d", tkA.Machine())
	}
	serial := func(m int) []vtime.Task {
		res := vtime.MachineResource(m)
		return []vtime.Task{{ID: "op", Sequential: true, Units: []vtime.Unit{
			{Dur: ms(10), Resource: res},
			{Dur: ms(10), Resource: res},
		}}}
	}
	var jrB JobResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		jrB, _ = c.Run(context.Background(), tkB, serial(tkB.Machine()))
	}()
	waitPending(t, c.Pool, 1)
	c.Release(gate)
	jrA, err := c.Run(context.Background(), tkA, serial(tkA.Machine()))
	wg.Wait()
	c.Release(tkA)
	c.Release(tkB)
	if err != nil {
		t.Fatal(err)
	}
	// Each machine has one slot; on a single machine the second query
	// would finish at 40ms. On the cluster both finish at 20ms.
	if jrA.Makespan != ms(20) || jrB.Makespan != ms(20) {
		t.Fatalf("expected 20ms/20ms across machines, got A=%v B=%v", jrA.Makespan, jrB.Makespan)
	}
	st := c.Stats()
	if st.Machines != 2 || len(st.PerMachine) != 2 {
		t.Fatalf("stats machines: %+v", st)
	}
	for _, pm := range st.PerMachine {
		if pm.BusyTotal != ms(20) {
			t.Fatalf("machine %d busy %v, want 20ms", pm.Machine, pm.BusyTotal)
		}
		if pm.CumUtilization < 0 || pm.CumUtilization > 1 {
			t.Fatalf("machine %d cum utilization %v out of range", pm.Machine, pm.CumUtilization)
		}
	}
}

// TestClusterDeterministicReplay asserts the same admission+submission
// sequence on a 4-machine cluster yields bit-identical grants across
// replays, concurrent Run callers and all.
func TestClusterDeterministicReplay(t *testing.T) {
	run := func() []JobResult {
		c := NewCluster(4, 2)
		const n = 8
		gate := c.Admit(0)
		tks := make([]*Ticket, n)
		for i := range tks {
			tks[i] = c.Admit(i % 2)
		}
		out := make([]JobResult, n)
		var wg sync.WaitGroup
		for i := n - 1; i >= 0; i-- {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tasks := homedGraph(tks[i].Machine(), 3+i, ms(4+i))
				jr, err := c.Run(context.Background(), tks[i], tasks)
				if err != nil {
					t.Error(err)
				}
				out[i] = jr
			}(i)
		}
		waitPending(t, c.Pool, n)
		c.Release(gate)
		wg.Wait()
		for i := range tks {
			c.Release(tks[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("replay diverged at query %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
