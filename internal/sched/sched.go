// Package sched is the process-global slot-pool scheduler: it multiplexes
// every concurrent query in the process onto the one simulated machine the
// paper evaluates on (4 local LLM slots, §VI-A) — or, via Cluster, onto a
// simulated M-machine cluster whose machines share one virtual clock.
//
// Before this package each query scheduled its recorded work on a private
// vtime.Schedule, so two concurrent /v1/query requests both pretended they
// owned all four slots and latency under load was fiction. The pool owns a
// shared virtual clock and the slots' free times; queries are admitted as
// tickets, submit their executed task graphs, and receive slot grants
// against the shared machine state. Queries that overlap in wall time
// share a virtual admission epoch and contend for slots; a query arriving
// on an idle pool sees all slots free and schedules exactly as the old
// private path did (bit-for-bit).
//
// Fairness and determinism: jobs finalize strictly in admission order.
// Each finalization replays every job already committed to the epoch plus
// all co-pending submitted jobs jointly through vtime.Run's fair ready
// queue — per-query FIFO, round-robin across queries on ready-time ties,
// higher ticket priority first — so an earlier query's grants and a later
// query's grants come from one coherent schedule. Given the same
// admission+submission sequence and task sets, every replay is bit-for-bit
// identical.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"unify/internal/check"
	"unify/internal/vtime"
)

// Ticket is one admitted query's claim on the pool. Tickets are created by
// Admit, carry the query's virtual admission time, and must be Released
// exactly once (whether or not the query ran).
type Ticket struct {
	// Start is the query's virtual admission time on the shared clock.
	Start time.Duration
	// Priority breaks slot-grant ties in the fair queue (higher first).
	Priority int

	seq      int64
	epochJob int           // fair-queue job index within the epoch
	machine  int           // home machine (epoch-relative round robin)
	turn     chan struct{} // closed when every earlier ticket has resolved
	ran      bool          // guarded by the pool mutex
	released bool          // guarded by the pool mutex
}

// Machine returns the query's home machine in the cluster: unscattered
// work is scheduled on the home machine's slots. Always 0 on a
// single-machine pool.
func (tk *Ticket) Machine() int {
	if tk == nil {
		return 0
	}
	return tk.machine
}

// Seq returns the ticket's process-wide admission sequence number. The
// trace store orders and keys retained query history by it: admission
// order is deterministic where wall-clock completion order is not.
func (tk *Ticket) Seq() int64 {
	if tk == nil {
		return -1
	}
	return tk.seq
}

// JobResult reports one query's outcome on the shared pool.
type JobResult struct {
	// Start is the virtual admission time (same as the ticket's).
	Start time.Duration
	// Makespan is the query's completion time minus Start: it includes
	// every slot-grant delay caused by contending queries.
	Makespan time.Duration
	// Solo is the makespan the same task graph achieves on an idle pool —
	// the no-contention baseline (Makespan == Solo for a lone query).
	Solo time.Duration
	// Busy is the query's own total slot busy time.
	Busy time.Duration
	// GrantWait is the total virtual delay between units becoming ready
	// and receiving a slot grant.
	GrantWait time.Duration
	// Grants counts slot grants the query received.
	Grants int
	// Finish maps task IDs to completion times relative to Start.
	Finish map[string]time.Duration
	// TaskWait maps task IDs to their share of GrantWait, attributing
	// slot contention to individual operators.
	TaskWait map[string]time.Duration
	// Contended reports that the query was scheduled against a non-idle
	// machine (busy slots at admission or co-pending queries).
	Contended bool
	// BatchedUnits counts this query's calls that shared a multi-member
	// batched invocation with another query (0 without batching).
	BatchedUnits int
	// TaskBatched breaks BatchedUnits down per task (nil when zero).
	TaskBatched map[string]int
}

// MachineStat is one machine's share of a cluster snapshot.
type MachineStat struct {
	Machine int `json:"machine"`
	// Active counts admitted queries homed on this machine.
	Active int `json:"active"`
	// Utilization is the machine's slot utilization over the current
	// epoch (or the last completed epoch when the pool is idle).
	Utilization float64 `json:"utilization"`
	// CumUtilization is the machine's lifetime slot utilization.
	CumUtilization float64 `json:"cum_utilization"`
	// BusyTotal accumulates the machine's slot busy time for the pool's
	// lifetime.
	BusyTotal time.Duration `json:"-"`
}

// Stats is a point-in-time snapshot of the pool.
type Stats struct {
	// Slots is the slot count PER MACHINE (the cluster-wide count is
	// Slots × Machines).
	Slots int `json:"slots"`
	// Machines is the cluster width (1 for a single-machine pool).
	Machines int `json:"machines"`
	// PerMachine breaks the snapshot down by machine, in machine order.
	PerMachine []MachineStat `json:"per_machine"`

	Active     int           `json:"active"`
	Pending    int           `json:"pending"`
	PeakActive int           `json:"peak_active"`
	Admitted   int64         `json:"admitted"`
	Completed  int64         `json:"completed"`
	VirtualNow time.Duration `json:"-"`
	// BusyTotal and GrantWaitTotal accumulate across the pool's lifetime.
	BusyTotal      time.Duration `json:"-"`
	GrantWaitTotal time.Duration `json:"-"`
	Grants         int64         `json:"grants"`
	// Utilization is the current epoch's aggregate slot utilization
	// (busy / (span × slots), structurally ≤ 1), or the last completed
	// epoch's when the pool is idle.
	Utilization float64 `json:"utilization"`
	// CumUtilization aggregates over the pool's whole lifetime:
	// BusyTotal / (virtual span × slots). Epochs are contiguous on the
	// shared clock (each opens when the busiest slot of the previous one
	// drains), so this too is structurally ≤ 1.
	CumUtilization float64 `json:"cum_utilization"`
	// SpanVTime is the lifetime virtual span the pool has scheduled over
	// (first admission to the busiest slot's free time).
	SpanVTime time.Duration `json:"-"`
	// EpochQueries counts queries admitted to the current epoch.
	EpochQueries int `json:"epoch_queries"`

	// Continuous-batching counters (all zero — and omitted from JSON —
	// unless the pool has a BatchPolicy). BatchGrants counts slot grants
	// of batchable units (including single-member grants); BatchedUnits
	// counts the calls those grants carried; BatchOccupancy is their
	// ratio (mean calls per invocation); BatchSavedVTime is the slot
	// busy time avoided versus running every member solo; MaxBatchSize
	// is the largest invocation formed.
	BatchGrants     int64         `json:"batch_grants,omitempty"`
	BatchedUnits    int64         `json:"batched_units,omitempty"`
	BatchOccupancy  float64       `json:"batch_occupancy,omitempty"`
	BatchSavedVTime time.Duration `json:"-"`
	MaxBatchSize    int           `json:"max_batch_size,omitempty"`
}

// Pool multiplexes concurrent queries onto one slot-limited machine.
type Pool struct {
	// StrictChecks validates every merged schedule this pool finalizes
	// (vtime conservation, slot bounds) and the epoch utilization against
	// the internal/check invariants. Set at construction time alongside
	// Config.StrictChecks; on in all tests, off by default in prod.
	StrictChecks bool

	// Batching, when non-nil, enables cross-query continuous batching in
	// every merged schedule this pool finalizes (see vtime.BatchPolicy).
	// Set at construction time alongside Config.Batching; never mutated
	// while queries are in flight.
	Batching *vtime.BatchPolicy

	mu       sync.Mutex
	machines int
	slots    int               // slots per machine
	free     [][]time.Duration // per machine, per slot: virtual free times (absolute)
	vnow     time.Duration     // current epoch's admission time

	nextSeq      int64
	resolvedUpTo int64              // every seq below this has resolved
	resolved     map[int64]bool     // out-of-order resolutions
	tickets      map[int64]*Ticket  // admitted, unresolved
	pending      map[int64]*pendJob // submitted, awaiting finalization

	active     int
	peakActive int

	// Epoch accounting: an epoch spans from the first admission on an
	// idle pool until the pool drains. Since the clock jumps past every
	// busy slot when an epoch opens, epochs always start on an idle
	// machine; committed holds the epoch's already-finalized jobs so
	// later finalizations replay them for a coherent joint schedule.
	//
	// Busy totals use OVERWRITE semantics: each finalization's merged
	// replay covers every job of the epoch seen so far (committed,
	// finalizing, and co-pending), so the epoch's busy is taken wholesale
	// from the latest replay rather than accumulated per job. With
	// batching, a job's attributed busy depends on which co-pending jobs
	// share its invocations — summing per-finalization snapshots from
	// different replays could exceed the slots' physical capacity, while
	// the latest replay's total is structurally bounded by it.
	epochStart   time.Duration
	epochEnd     time.Duration
	epochBusy    time.Duration
	epochQueries int
	committed    []commitJob
	lastUtil     float64

	// Per-machine accounting (index = machine).
	epochMachBusy []time.Duration
	activeByMach  []int
	lastMachUtil  []float64

	// Current-epoch batching counters, overwritten like epochBusy.
	epochBatchGrants int64
	epochBatchUnits  int64
	epochBatchSaved  time.Duration
	maxBatchSize     int // lifetime

	// Closed-epoch archives; lifetime totals are archive + current epoch.
	busyArchive        time.Duration
	machBusyArchive    []time.Duration
	batchGrantsArchive int64
	batchUnitsArchive  int64
	batchSavedArchive  time.Duration

	origin    time.Duration // first epoch's start time
	originSet bool

	admitted, completed int64
	waitTotal           time.Duration
	grantsTotal         int64
}

type pendJob struct {
	tk    *Ticket
	tasks []vtime.Task
}

// commitJob is a finalized job replayed by later finalizations in the
// same epoch.
type commitJob struct {
	job      int
	priority int
	tasks    []vtime.Task
}

// NewPool returns a pool modeling one machine with the given number of
// LLM slots.
func NewPool(slots int) *Pool { return newPool(1, slots) }

func newPool(machines, slots int) *Pool {
	if machines < 1 {
		machines = 1
	}
	if slots < 1 {
		slots = 1
	}
	free := make([][]time.Duration, machines)
	for m := range free {
		free[m] = make([]time.Duration, slots)
	}
	return &Pool{
		machines:        machines,
		slots:           slots,
		free:            free,
		resolved:        map[int64]bool{},
		tickets:         map[int64]*Ticket{},
		pending:         map[int64]*pendJob{},
		epochMachBusy:   make([]time.Duration, machines),
		machBusyArchive: make([]time.Duration, machines),
		activeByMach:    make([]int, machines),
		lastMachUtil:    make([]float64, machines),
	}
}

// Cluster is a simulated M-machine cluster: M identical slot pools
// sharing one virtual clock and one admission order. Admitted tickets are
// routed round-robin to a home machine; scattered operators may place
// per-shard work on other machines' slots. A Cluster with one machine is
// byte-for-byte the single Pool (machine 0 keeps the canonical "llm"
// resource), so M=1 schedules are unchanged.
type Cluster struct {
	*Pool
}

// NewCluster returns an M-machine cluster with slotsPer LLM slots on
// each machine.
func NewCluster(machines, slotsPer int) *Cluster {
	return &Cluster{Pool: newPool(machines, slotsPer)}
}

// Slots reports the pool's slot count per machine.
func (p *Pool) Slots() int { return p.slots }

// Machines reports the cluster width (1 for a plain pool).
func (p *Pool) Machines() int { return p.machines }

// Admit registers a query with the pool and returns its ticket. If the
// pool is idle the shared clock advances to the time every slot is free,
// so a lone query schedules exactly as on a private machine; otherwise the
// query joins the current epoch and will contend for slots. The caller
// must Release the ticket exactly once.
func (p *Pool) Admit(priority int) *Ticket {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active == 0 {
		// Fresh epoch: every machine is idle by max(free), and the clock
		// never runs backwards.
		start := p.vnow
		for _, mf := range p.free {
			for _, f := range mf {
				if f > start {
					start = f
				}
			}
		}
		p.vnow = start
		if !p.originSet {
			p.origin = start
			p.originSet = true
		}
		// Archive the closing epoch's totals before resetting: lifetime
		// figures are archive + current epoch under overwrite accounting.
		p.busyArchive += p.epochBusy
		for m := range p.epochMachBusy {
			p.machBusyArchive[m] += p.epochMachBusy[m]
		}
		p.batchGrantsArchive += p.epochBatchGrants
		p.batchUnitsArchive += p.epochBatchUnits
		p.batchSavedArchive += p.epochBatchSaved
		p.epochStart = start
		p.epochEnd = start
		p.epochBusy = 0
		p.epochQueries = 0
		p.committed = nil
		for m := range p.epochMachBusy {
			p.epochMachBusy[m] = 0
		}
		p.epochBatchGrants = 0
		p.epochBatchUnits = 0
		p.epochBatchSaved = 0
	}
	tk := &Ticket{
		Start:    p.vnow,
		Priority: priority,
		seq:      p.nextSeq,
		epochJob: p.epochQueries,
		machine:  p.epochQueries % p.machines,
		turn:     make(chan struct{}),
	}
	p.nextSeq++
	p.tickets[tk.seq] = tk
	p.active++
	p.activeByMach[tk.machine]++
	p.epochQueries++
	p.admitted++
	if p.active > p.peakActive {
		p.peakActive = p.active
	}
	if tk.seq == p.resolvedUpTo {
		close(tk.turn) // nothing ahead of us
	}
	return tk
}

// Release returns a ticket to the pool. Tickets that never ran (error
// paths) resolve here so queries behind them are not blocked.
func (p *Pool) Release(tk *Ticket) {
	if tk == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if tk.released {
		return
	}
	tk.released = true
	if !tk.ran {
		delete(p.pending, tk.seq)
		p.resolve(tk.seq)
	}
	p.active--
	p.activeByMach[tk.machine]--
	if p.active == 0 {
		p.lastUtil = p.epochUtilLocked()
		for m := range p.lastMachUtil {
			p.lastMachUtil[m] = p.machineUtilLocked(m)
		}
	}
}

// ErrTicketUsed reports a Run against a ticket that already ran or was
// released; the caller should Admit a fresh ticket.
var ErrTicketUsed = errors.New("sched: ticket already used")

// Run submits a query's executed task graph to the pool and blocks until
// its slot grants are final. Jobs finalize in admission order: queries
// that submitted while waiting their turn are scheduled jointly (the fair
// queue), so an earlier query cannot starve a later one of slots. The
// returned makespan is measured from the ticket's admission time.
func (p *Pool) Run(ctx context.Context, tk *Ticket, tasks []vtime.Task) (JobResult, error) {
	if tk == nil {
		return JobResult{}, fmt.Errorf("sched: nil ticket")
	}
	p.mu.Lock()
	if tk.released || tk.ran {
		p.mu.Unlock()
		return JobResult{}, ErrTicketUsed
	}
	p.pending[tk.seq] = &pendJob{tk: tk, tasks: tasks}
	p.mu.Unlock()

	select {
	case <-tk.turn:
	case <-ctx.Done():
		p.mu.Lock()
		delete(p.pending, tk.seq)
		p.mu.Unlock()
		return JobResult{}, ctx.Err()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	jr, err := p.finalizeLocked(tk)
	tk.ran = true
	p.resolve(tk.seq)
	if err != nil {
		return JobResult{}, err
	}
	return jr, nil
}

// resolve marks a ticket resolved and advances the admission-order
// barrier, waking the next ticket in line.
func (p *Pool) resolve(seq int64) {
	delete(p.tickets, seq)
	p.resolved[seq] = true
	for p.resolved[p.resolvedUpTo] {
		delete(p.resolved, p.resolvedUpTo)
		p.resolvedUpTo++
	}
	if next, ok := p.tickets[p.resolvedUpTo]; ok {
		select {
		case <-next.turn:
		default:
			close(next.turn)
		}
	}
}

// finalizeLocked computes the finalizing ticket's grants. The epoch's
// committed jobs, the finalizing job, and all co-pending submitted jobs
// are scheduled jointly from the epoch start by the fair queue; the
// finalizing job's grants come out of that one coherent schedule, and the
// job is then committed so later finalizations replay it identically.
func (p *Pool) finalizeLocked(tk *Ticket) (JobResult, error) {
	job := p.pending[tk.seq]
	delete(p.pending, tk.seq)
	t0 := tk.Start
	ej := tk.epochJob

	// Co-pending jobs (admitted later, already submitted) join the merged
	// schedule so slot grants interleave fairly instead of first-come-
	// first-served. Order is deterministic: admission sequence.
	others := make([]*pendJob, 0, len(p.pending))
	for _, pj := range p.pending {
		others = append(others, pj)
	}
	sort.Slice(others, func(i, j int) bool { return others[i].tk.seq < others[j].tk.seq })
	contended := len(others) > 0 || len(p.committed) > 0

	var merged []vtime.Task
	for _, c := range p.committed {
		merged = append(merged, prefixTasks(c.tasks, c.job, c.priority)...)
	}
	merged = append(merged, prefixTasks(job.tasks, ej, tk.Priority)...)
	for _, pj := range others {
		merged = append(merged, prefixTasks(pj.tasks, pj.tk.epochJob, pj.tk.Priority)...)
	}
	cluster := vtime.NewCluster(p.machines, p.slots)
	cluster.Batching = p.Batching
	mres, err := cluster.Run(merged)
	if err != nil {
		return JobResult{}, err
	}
	if p.StrictChecks {
		if err := check.Fail("sched: merged schedule", check.VTimeCluster(mres, p.machines, p.slots), nil); err != nil {
			return JobResult{}, err
		}
		if p.Batching != nil {
			if err := check.Fail("sched: batch formation", check.BatchFairness(mres, p.Batching), nil); err != nil {
				return JobResult{}, err
			}
		}
	}

	jr := JobResult{
		Start:     t0,
		Makespan:  mres.JobEnd[ej],
		Busy:      mres.JobBusy[ej],
		GrantWait: mres.JobWait[ej],
		Grants:    mres.JobGrants[ej],
		Finish:    make(map[string]time.Duration, len(job.tasks)),
		Contended: contended,
	}
	for _, g := range mres.Batches {
		if len(g.Members) < 2 {
			continue
		}
		for _, m := range g.Members {
			if m.Job != ej {
				continue
			}
			jr.BatchedUnits++
			if own, ok := stripJob(m.Task, ej); ok {
				if jr.TaskBatched == nil {
					jr.TaskBatched = make(map[string]int)
				}
				jr.TaskBatched[own]++
			}
		}
	}
	for id, f := range mres.Finish {
		if own, ok := stripJob(id, ej); ok {
			jr.Finish[own] = f
		}
	}
	for id, w := range mres.TaskWait {
		if own, ok := stripJob(id, ej); ok && w > 0 {
			if jr.TaskWait == nil {
				jr.TaskWait = make(map[string]time.Duration)
			}
			jr.TaskWait[own] = w
		}
	}
	p.committed = append(p.committed, commitJob{job: ej, priority: tk.Priority, tasks: job.tasks})

	// Advance each machine's state to the merged schedule's slot free
	// times; the next epoch opens no earlier than the busiest slot drains.
	// A machine absent from SlotFree ran nothing this schedule.
	for m := range p.free {
		newFree := mres.SlotFree[vtime.MachineResource(m)]
		for i := range p.free[m] {
			if i < len(newFree) {
				p.free[m][i] = t0 + newFree[i]
			} else {
				p.free[m][i] = t0
			}
		}
	}

	// Overwrite the epoch's busy and batching totals from this replay: it
	// covers every job of the epoch seen so far, and under batching a
	// job's attributed busy is only meaningful within one replay's batch
	// compositions. For a lone job per epoch this equals the old per-job
	// accumulation exactly.
	p.epochBusy = 0
	for m := range p.epochMachBusy {
		p.epochMachBusy[m] = 0
	}
	for resName, b := range mres.Busy {
		if m, ok := vtime.MachineOf(resName); ok && m < p.machines {
			p.epochBusy += b
			p.epochMachBusy[m] += b
		}
	}
	p.epochBatchGrants = int64(len(mres.Batches))
	p.epochBatchUnits = 0
	p.epochBatchSaved = 0
	for _, g := range mres.Batches {
		p.epochBatchUnits += int64(len(g.Members))
		if len(g.Members) > p.maxBatchSize {
			p.maxBatchSize = len(g.Members)
		}
		var solos time.Duration
		for _, m := range g.Members {
			solos += m.Solo
		}
		p.epochBatchSaved += solos - g.Dur
	}

	// Solo baseline: the same graph on an idle cluster. For an
	// uncontended query that is, bit-for-bit, the schedule just computed.
	if contended {
		sres, err := vtime.NewCluster(p.machines, p.slots).Run(job.tasks)
		if err != nil {
			return JobResult{}, err
		}
		jr.Solo = sres.Makespan
	} else {
		jr.Solo = jr.Makespan
	}

	end := t0 + mres.JobEnd[ej]
	if end > p.epochEnd {
		p.epochEnd = end
	}
	p.waitTotal += jr.GrantWait
	p.grantsTotal += int64(jr.Grants)
	p.completed++
	if p.StrictChecks {
		if err := check.Fail("sched: epoch accounting", check.PoolUtilization(p.epochUtilLocked()), nil); err != nil {
			return JobResult{}, err
		}
		for m := 0; m < p.machines; m++ {
			if err := check.Fail(fmt.Sprintf("sched: machine %d epoch accounting", m), check.PoolUtilization(p.machineUtilLocked(m)), nil); err != nil {
				return JobResult{}, err
			}
		}
	}
	return jr, nil
}

// epochUtilLocked computes the current epoch's aggregate slot
// utilization. The span is bounded below by the slots' own free times, so
// the ratio is structurally ≤ 1.
func (p *Pool) epochUtilLocked() float64 {
	span := p.epochSpanLocked()
	if span <= 0 || p.epochBusy <= 0 {
		return 0
	}
	return float64(p.epochBusy) / (float64(span) * float64(p.slots) * float64(p.machines))
}

// machineUtilLocked computes one machine's slot utilization over the
// current epoch. The span is the whole cluster's (epochs are shared), so
// per-machine utilizations average to the aggregate.
func (p *Pool) machineUtilLocked(m int) float64 {
	span := p.epochSpanLocked()
	if span <= 0 || p.epochMachBusy[m] <= 0 {
		return 0
	}
	return float64(p.epochMachBusy[m]) / (float64(span) * float64(p.slots))
}

// epochSpanLocked is the current epoch's span: admission to the last
// completion or busiest slot, whichever is later.
func (p *Pool) epochSpanLocked() time.Duration {
	end := p.epochEnd
	for _, mf := range p.free {
		for _, f := range mf {
			if f > end {
				end = f
			}
		}
	}
	return end - p.epochStart
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	util := p.lastUtil
	if p.active > 0 {
		util = p.epochUtilLocked()
	}
	maxFree := p.origin
	for _, mf := range p.free {
		for _, f := range mf {
			if f > maxFree {
				maxFree = f
			}
		}
	}
	span := maxFree - p.origin
	busyTotal := p.busyArchive + p.epochBusy
	cum := 0.0
	if span > 0 && busyTotal > 0 {
		cum = float64(busyTotal) / (float64(span) * float64(p.slots) * float64(p.machines))
	}
	perMach := make([]MachineStat, p.machines)
	for m := range perMach {
		mutil := p.lastMachUtil[m]
		if p.active > 0 {
			mutil = p.machineUtilLocked(m)
		}
		machBusy := p.machBusyArchive[m] + p.epochMachBusy[m]
		mcum := 0.0
		if span > 0 && machBusy > 0 {
			mcum = float64(machBusy) / (float64(span) * float64(p.slots))
		}
		perMach[m] = MachineStat{
			Machine:        m,
			Active:         p.activeByMach[m],
			Utilization:    mutil,
			CumUtilization: mcum,
			BusyTotal:      machBusy,
		}
	}
	batchGrants := p.batchGrantsArchive + p.epochBatchGrants
	batchUnits := p.batchUnitsArchive + p.epochBatchUnits
	occupancy := 0.0
	if batchGrants > 0 {
		occupancy = float64(batchUnits) / float64(batchGrants)
	}
	return Stats{
		Slots:           p.slots,
		Machines:        p.machines,
		PerMachine:      perMach,
		Active:          p.active,
		Pending:         len(p.pending),
		PeakActive:      p.peakActive,
		Admitted:        p.admitted,
		Completed:       p.completed,
		VirtualNow:      p.vnow,
		BusyTotal:       busyTotal,
		GrantWaitTotal:  p.waitTotal,
		Grants:          p.grantsTotal,
		Utilization:     util,
		CumUtilization:  cum,
		SpanVTime:       span,
		EpochQueries:    p.epochQueries,
		BatchGrants:     batchGrants,
		BatchedUnits:    batchUnits,
		BatchOccupancy:  occupancy,
		BatchSavedVTime: p.batchSavedArchive + p.epochBatchSaved,
		MaxBatchSize:    p.maxBatchSize,
	}
}

// prefixTasks namespaces a job's tasks into the merged schedule.
func prefixTasks(tasks []vtime.Task, job, priority int) []vtime.Task {
	out := make([]vtime.Task, len(tasks))
	for i, t := range tasks {
		t.ID = jobPrefix(job) + t.ID
		deps := make([]string, len(t.Deps))
		for j, d := range t.Deps {
			deps[j] = jobPrefix(job) + d
		}
		t.Deps = deps
		t.Job = job
		t.Priority = priority
		out[i] = t
	}
	return out
}

func jobPrefix(job int) string { return fmt.Sprintf("q%d|", job) }

// stripJob recovers a task's own ID from its namespaced form.
func stripJob(id string, job int) (string, bool) {
	pre := jobPrefix(job)
	if len(id) >= len(pre) && id[:len(pre)] == pre {
		return id[len(pre):], true
	}
	return "", false
}

type ctxKey int

const ticketKey ctxKey = iota

// WithTicket installs an admitted ticket into the context so the executor
// submits to the pool that admitted the query.
func WithTicket(ctx context.Context, tk *Ticket) context.Context {
	if tk == nil {
		return ctx
	}
	return context.WithValue(ctx, ticketKey, tk)
}

// TicketFrom extracts the query's ticket (nil when absent).
func TicketFrom(ctx context.Context) *Ticket {
	tk, _ := ctx.Value(ticketKey).(*Ticket)
	return tk
}
