package sched

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"unify/internal/vtime"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

// graph returns a small two-operator task graph with LLM units.
func graph(calls int, dur time.Duration) []vtime.Task {
	units := make([]vtime.Unit, calls)
	for i := range units {
		units[i] = vtime.Unit{Dur: dur, Resource: vtime.ResourceLLM}
	}
	return []vtime.Task{
		{ID: "a", Units: units},
		{ID: "b", Deps: []string{"a"}, Units: []vtime.Unit{{Dur: dur, Resource: vtime.ResourceLLM}}},
	}
}

// TestSoloMatchesPrivateSchedule asserts the pool is bit-identical to a
// private vtime.Schedule for a lone query — the PR 3 compatibility bar.
func TestSoloMatchesPrivateSchedule(t *testing.T) {
	tasks := graph(10, ms(7))
	want, err := vtime.NewSchedule(4).Run(tasks)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPool(4)
	tk := p.Admit(0)
	jr, err := p.Run(context.Background(), tk, tasks)
	p.Release(tk)
	if err != nil {
		t.Fatal(err)
	}
	if jr.Makespan != want.Makespan {
		t.Fatalf("makespan %v != private %v", jr.Makespan, want.Makespan)
	}
	if jr.Solo != want.Makespan {
		t.Fatalf("solo %v != private %v", jr.Solo, want.Makespan)
	}
	if jr.Contended {
		t.Fatal("lone query reported contended")
	}
	for id, f := range want.Finish {
		if jr.Finish[id] != f {
			t.Fatalf("finish[%s] %v != private %v", id, jr.Finish[id], f)
		}
	}
	if jr.Busy != want.Busy[vtime.ResourceLLM] {
		t.Fatalf("busy %v != private %v", jr.Busy, want.Busy[vtime.ResourceLLM])
	}
}

// TestSequentialEpochsReset asserts that a query admitted after the pool
// drains sees an idle machine (fresh epoch) and schedules solo.
func TestSequentialEpochsReset(t *testing.T) {
	p := NewPool(4)
	tasks := graph(8, ms(5))
	var first JobResult
	for i := 0; i < 3; i++ {
		tk := p.Admit(0)
		jr, err := p.Run(context.Background(), tk, tasks)
		p.Release(tk)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = jr
		}
		if jr.Makespan != first.Makespan {
			t.Fatalf("run %d makespan %v != first %v", i, jr.Makespan, first.Makespan)
		}
		if jr.Contended {
			t.Fatalf("run %d contended on drained pool", i)
		}
		if jr.GrantWait != first.GrantWait {
			t.Fatalf("run %d grant wait %v != first %v", i, jr.GrantWait, first.GrantWait)
		}
	}
	st := p.Stats()
	if st.Completed != 3 || st.Active != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestContention8on4 drives 8 co-admitted queries onto 4 slots and checks
// the acceptance criteria: every makespan ≥ its solo makespan, aggregate
// utilization ≤ 1, and at least one query actually waited.
func TestContention8on4(t *testing.T) {
	p := NewPool(4)
	const n = 8
	tasks := graph(6, ms(9))

	tks := make([]*Ticket, n)
	for i := range tks {
		tks[i] = p.Admit(0) // all co-admitted: one epoch
	}
	results := make([]JobResult, n)
	var wg sync.WaitGroup
	for i := range tks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr, err := p.Run(context.Background(), tks[i], tasks)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = jr
		}(i)
	}
	wg.Wait()
	util := p.Stats().Utilization // epoch still open: live utilization
	for i := range tks {
		p.Release(tks[i])
	}

	contended := 0
	for i, jr := range results {
		if jr.Makespan < jr.Solo {
			t.Fatalf("query %d makespan %v < solo %v", i, jr.Makespan, jr.Solo)
		}
		if jr.Makespan > jr.Solo {
			contended++
		}
	}
	if contended == 0 {
		t.Fatal("no query experienced contention with 8 jobs on 4 slots")
	}
	if util > 1.0 {
		t.Fatalf("aggregate utilization %v > 1", util)
	}
	if util <= 0 {
		t.Fatalf("aggregate utilization %v not positive", util)
	}
	if st := p.Stats(); st.PeakActive != n {
		t.Fatalf("peak active %d != %d", st.PeakActive, n)
	}
}

// waitPending polls until the pool has at least n submitted jobs waiting.
func waitPending(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Pending < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending jobs (have %d)", n, p.Stats().Pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeterministicReplay asserts that the same admission+submission
// sequence yields bit-identical grants across replays, including with
// concurrent Run callers (admission order, not goroutine timing, decides
// once all jobs have submitted). A gate ticket holds the barrier until
// every job is queued, fixing the submission interleaving.
func TestDeterministicReplay(t *testing.T) {
	run := func() []JobResult {
		p := NewPool(4)
		const n = 6
		gate := p.Admit(0)
		tks := make([]*Ticket, n)
		for i := range tks {
			tks[i] = p.Admit(i % 2) // mixed priorities
		}
		out := make([]JobResult, n)
		var wg sync.WaitGroup
		for i := n - 1; i >= 0; i-- { // start in reverse to stress the barrier
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tasks := graph(3+i, ms(4+i))
				jr, err := p.Run(context.Background(), tks[i], tasks)
				if err != nil {
					t.Error(err)
				}
				out[i] = jr
			}(i)
		}
		waitPending(t, p, n)
		p.Release(gate) // open the barrier: all jobs are now co-pending
		wg.Wait()
		for i := range tks {
			p.Release(tks[i])
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if fmt.Sprintf("%+v", a[i]) != fmt.Sprintf("%+v", b[i]) {
			t.Fatalf("replay diverged at query %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestFairnessRoundRobin asserts that two equal co-pending jobs split the
// slots rather than the first job hogging all of them.
func TestFairnessRoundRobin(t *testing.T) {
	p := NewPool(2)
	tkA := p.Admit(0)
	tkB := p.Admit(0)
	tasks := func() []vtime.Task {
		return []vtime.Task{{ID: "op", Units: []vtime.Unit{
			{Dur: ms(10), Resource: vtime.ResourceLLM},
			{Dur: ms(10), Resource: vtime.ResourceLLM},
			{Dur: ms(10), Resource: vtime.ResourceLLM},
			{Dur: ms(10), Resource: vtime.ResourceLLM},
		}}}
	}
	var jrA, jrB JobResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); jrB, _ = p.Run(context.Background(), tkB, tasks()) }()
	waitPending(t, p, 1) // B queued behind the barrier before A finalizes
	jrA, _ = p.Run(context.Background(), tkA, tasks())
	wg.Wait()
	p.Release(tkA)
	p.Release(tkB)

	// Fair split: each job gets one slot's worth of sustained service, so
	// both finish at 40ms. FCFS would give A 20ms and B 40ms.
	if jrA.Makespan != ms(40) || jrB.Makespan != ms(40) {
		t.Fatalf("expected fair 40ms/40ms split, got A=%v B=%v", jrA.Makespan, jrB.Makespan)
	}
	if jrA.Solo != ms(20) || jrB.Solo != ms(20) {
		t.Fatalf("solo should be 20ms, got A=%v B=%v", jrA.Solo, jrB.Solo)
	}
}

// TestPriorityWins asserts a higher-priority co-pending job is granted
// slots ahead of an equal lower-priority one.
func TestPriorityWins(t *testing.T) {
	p := NewPool(1)
	tkLow := p.Admit(0)
	tkHigh := p.Admit(5)
	one := func() []vtime.Task {
		return []vtime.Task{{ID: "op", Units: []vtime.Unit{{Dur: ms(10), Resource: vtime.ResourceLLM}}}}
	}
	var jrHigh JobResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); jrHigh, _ = p.Run(context.Background(), tkHigh, one()) }()
	waitPending(t, p, 1) // high queued behind the barrier before low finalizes
	jrLow, _ := p.Run(context.Background(), tkLow, one())
	wg.Wait()
	p.Release(tkLow)
	p.Release(tkHigh)

	if jrHigh.Makespan != ms(10) {
		t.Fatalf("high priority should run first (10ms), got %v", jrHigh.Makespan)
	}
	if jrLow.Makespan != ms(20) {
		t.Fatalf("low priority should wait (20ms), got %v", jrLow.Makespan)
	}
	if jrLow.GrantWait != ms(10) {
		t.Fatalf("low priority grant wait should be 10ms, got %v", jrLow.GrantWait)
	}
}

// TestReleaseWithoutRunUnblocks asserts an errored query (Admit then
// Release, never Run) does not wedge the admission barrier.
func TestReleaseWithoutRunUnblocks(t *testing.T) {
	p := NewPool(4)
	tk1 := p.Admit(0)
	tk2 := p.Admit(0)
	p.Release(tk1) // query 1 failed before scheduling

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Run(context.Background(), tk2, graph(2, ms(3))); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged behind a released ticket")
	}
	p.Release(tk2)
}

// TestRunCancel asserts a queued Run call honors context cancellation.
func TestRunCancel(t *testing.T) {
	p := NewPool(4)
	tk1 := p.Admit(0)
	tk2 := p.Admit(0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Run(ctx, tk2, graph(2, ms(3)))
		errc <- err
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	p.Release(tk2)

	// tk1 is still runnable afterwards.
	if _, err := p.Run(context.Background(), tk1, graph(2, ms(3))); err != nil {
		t.Fatal(err)
	}
	p.Release(tk1)
}

// TestTicketContext round-trips a ticket through a context.
func TestTicketContext(t *testing.T) {
	if TicketFrom(context.Background()) != nil {
		t.Fatal("empty context should have no ticket")
	}
	p := NewPool(2)
	tk := p.Admit(0)
	ctx := WithTicket(context.Background(), tk)
	if TicketFrom(ctx) != tk {
		t.Fatal("ticket did not round-trip")
	}
	p.Release(tk)
}
