package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrQueueFull reports that the admission queue is at capacity; the
// server maps it to HTTP 429 with a Retry-After hint.
var ErrQueueFull = errors.New("server: admission queue full")

// Admission is the server's bounded admission queue: at most
// maxConcurrent requests execute at once, at most maxQueue more wait
// their turn, and everything beyond that is rejected immediately so
// overload produces fast 429s instead of unbounded latency.
type Admission struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int
}

// DefaultMaxConcurrent and DefaultMaxQueue are the serving defaults:
// twice the paper's slot count running, with an equal number waiting.
const (
	DefaultMaxConcurrent = 8
	DefaultMaxQueue      = 8
)

// NewAdmission returns an admission controller. Non-positive arguments
// select the defaults.
func NewAdmission(maxConcurrent, maxQueue int) *Admission {
	if maxConcurrent < 1 {
		maxConcurrent = DefaultMaxConcurrent
	}
	if maxQueue < 0 {
		maxQueue = DefaultMaxQueue
	}
	return &Admission{sem: make(chan struct{}, maxConcurrent), maxQueue: maxQueue}
}

// Acquire blocks until the request may execute, the context expires, or
// the queue is full. On success it returns a release function (call
// exactly once) and the time spent queued.
//
// Clock domain: the returned wait is MONOTONIC WALL time (time.Now /
// time.Since measure the process actually blocking), deliberately
// distinct from the virtual (simulated) clock every query-latency figure
// uses. It must only feed serving-layer stats — queue_wait_secs on the
// query response, the unify_serve_queue_wait_seconds histogram — and
// never an Answer duration or the vtime accounting; see the "clocks"
// block in /v1/stats.
func (a *Admission) Acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	select {
	case a.sem <- struct{}{}:
		return a.release, 0, nil
	default:
	}
	if int(a.queued.Add(1)) > a.maxQueue {
		a.queued.Add(-1)
		return nil, 0, ErrQueueFull
	}
	start := time.Now()
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return a.release, time.Since(start), nil
	case <-ctx.Done():
		return nil, time.Since(start), ctx.Err()
	}
}

func (a *Admission) release() { <-a.sem }

// Queued reports requests currently waiting in the queue.
func (a *Admission) Queued() int { return int(a.queued.Load()) }

// Inflight reports requests currently holding an execution slot.
func (a *Admission) Inflight() int { return len(a.sem) }

// MaxConcurrent reports the execution concurrency limit.
func (a *Admission) MaxConcurrent() int { return cap(a.sem) }

// MaxQueue reports the queue capacity.
func (a *Admission) MaxQueue() int { return a.maxQueue }
