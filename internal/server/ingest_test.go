package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
)

// viewsServer opens a views-enabled system over the first n sports docs.
func viewsServer(t *testing.T, n int) (*httptest.Server, *corpus.Dataset) {
	t.Helper()
	full, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	base, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	sys, err := unify.New(
		unify.WithCorpus(base),
		unify.WithConfig(unify.Config{Dataset: "sports", Sim: &sim, Views: true}),
		unify.WithSim(sim),
		unify.WithViews(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(New(sys)), full
}

func postIngest(t *testing.T, url string, req IngestRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestIngestEndpoint(t *testing.T) {
	srv, full := viewsServer(t, 180)
	defer srv.Close()

	// Warm a view column, then grow the corpus by the remaining docs.
	post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	var add []IngestDoc
	for _, d := range full.Documents()[180:] {
		add = append(add, IngestDoc{ID: d.ID, Title: d.Title, Text: d.Text})
	}
	resp, raw := postIngest(t, srv.URL, IngestRequest{Add: add})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, raw)
	}
	var out IngestResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Added != 20 || out.Docs != 200 || out.Generation != 1 {
		t.Errorf("unexpected ingest response: %+v", out)
	}
	if out.RequestID == "" {
		t.Error("missing request id")
	}

	// Updating one of the freshly added docs invalidates nothing (its
	// rows were never materialized) but bumps the generation again.
	upd := add[0]
	upd.Text = strings.ToUpper(upd.Text)
	resp, raw = postIngest(t, srv.URL, IngestRequest{Update: []IngestDoc{upd}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Updated != 1 || out.Generation != 2 || out.Docs != 200 {
		t.Errorf("unexpected update response: %+v", out)
	}

	// Queries still run against the mutated corpus.
	qresp, qraw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest query status %d: %s", qresp.StatusCode, qraw)
	}
}

func TestIngestValidation(t *testing.T) {
	srv, full := viewsServer(t, 180)
	defer srv.Close()
	existing := full.Documents()[0]

	cases := []struct {
		name string
		req  IngestRequest
	}{
		{"empty", IngestRequest{}},
		{"duplicate add id", IngestRequest{Add: []IngestDoc{{ID: existing.ID, Title: "t", Text: "x"}}}},
		{"unknown update id", IngestRequest{Update: []IngestDoc{{ID: 999999, Title: "t", Text: "x"}}}},
	}
	for _, tc := range cases {
		resp, raw := postIngest(t, srv.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d (want 400): %s", tc.name, resp.StatusCode, raw)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Error.Code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, e.Error.Code)
		}
	}

	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest -> %d", resp.StatusCode)
	}
}

func TestStatsViewsBlock(t *testing.T) {
	srv, _ := viewsServer(t, 180)
	defer srv.Close()

	// Two passes of the same query: the second is served from the view.
	post(t, srv.URL+"/v1/query", "How many questions are about golf?")
	post(t, srv.URL+"/v1/query", "How many questions are about golf?")

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Views map[string]interface{} `json:"views"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Views["enabled"] != true {
		t.Fatalf("views block not enabled: %#v", out.Views)
	}
	stats, ok := out.Views["stats"].(map[string]interface{})
	if !ok || stats["rows"] == 0.0 {
		t.Errorf("views stats missing or empty: %#v", out.Views["stats"])
	}
	if hr, ok := out.Views["hit_rate"].(float64); !ok || hr <= 0 {
		t.Errorf("hit_rate = %#v, want > 0", out.Views["hit_rate"])
	}
	if cols, ok := out.Views["columns"].([]interface{}); !ok || len(cols) == 0 {
		t.Errorf("columns = %#v, want non-empty list", out.Views["columns"])
	}
	if out.Views["corpus_docs"] != 180.0 {
		t.Errorf("corpus_docs = %#v, want 180", out.Views["corpus_docs"])
	}

	// A views-off server reports the block disabled.
	plain := testServer(t)
	defer plain.Close()
	resp2, err := http.Get(plain.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var out2 struct {
		Views map[string]interface{} `json:"views"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.Views["enabled"] != false {
		t.Errorf("views-off server reports %#v", out2.Views)
	}
}
