package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	sys, err := unify.OpenDataset(ds, unify.Config{Dataset: "sports", Sim: &sim})
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(New(sys))
}

func post(t *testing.T, url, query string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Query: query})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Answer == "" || len(out.Plan) == 0 || out.TotalSecs <= 0 {
		t.Errorf("incomplete response: %+v", out)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/plan", "What is the average score of questions related to injury?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out PlanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan) < 2 {
		t.Errorf("plan too small: %+v", out.Plan)
	}
	ops := map[string]bool{}
	for _, n := range out.Plan {
		ops[n.Op] = true
		if n.Physical == "" {
			t.Errorf("node %d missing physical", n.ID)
		}
	}
	if !ops["Average"] {
		t.Errorf("plan ops = %v", ops)
	}
}

func TestOperatorsEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/operators")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []OperatorInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 21 {
		t.Errorf("got %d operators, want 21", len(out))
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "\"status\":\"ok\"") {
		t.Errorf("health = %s", buf.String())
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	// Empty body.
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query -> %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query -> %d", resp.StatusCode)
	}
	// Garbage JSON.
	resp, err = http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body -> %d", resp.StatusCode)
	}
}
