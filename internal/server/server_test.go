package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	sys, err := unify.OpenDataset(ds, unify.Config{Dataset: "sports", Sim: &sim})
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(New(sys))
}

func post(t *testing.T, url, query string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Query: query})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Answer == "" || len(out.Plan) == 0 || out.TotalSecs <= 0 {
		t.Errorf("incomplete response: %+v", out)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/plan", "What is the average score of questions related to injury?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out PlanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Plan) < 2 {
		t.Errorf("plan too small: %+v", out.Plan)
	}
	ops := map[string]bool{}
	for _, n := range out.Plan {
		ops[n.Op] = true
		if n.Physical == "" {
			t.Errorf("node %d missing physical", n.ID)
		}
	}
	if !ops["Average"] {
		t.Errorf("plan ops = %v", ops)
	}
}

func TestOperatorsEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/operators")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []OperatorInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 21 {
		t.Errorf("got %d operators, want 21", len(out))
	}
}

func TestHealthEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	// Serve one query so the health counters have something to report.
	if resp, raw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		UptimeSecs    float64 `json:"uptime_secs"`
		QueriesServed int64   `json:"queries_served"`
		QueriesFailed int64   `json:"queries_failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Version == "" || out.UptimeSecs <= 0 {
		t.Errorf("health incomplete: %+v", out)
	}
	if out.QueriesServed != 1 || out.QueriesFailed != 0 {
		t.Errorf("health counters = served %d / failed %d, want 1 / 0", out.QueriesServed, out.QueriesFailed)
	}
}

func TestAnalyzeQuery(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/query?analyze=1", "How many questions are about tennis?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.TraceText == "" {
		t.Fatalf("analyze=1 returned no trace: %s", raw)
	}
	if out.Trace.Name != "query" || len(out.Trace.Children) < 3 {
		t.Errorf("trace root %q with %d children", out.Trace.Name, len(out.Trace.Children))
	}
	// One node span per plan node, each carrying the ANALYZE accounting.
	nodes := 0
	for _, c := range out.Trace.Children {
		if c.Name != "execute" {
			continue
		}
		for _, n := range c.Children {
			if n.Kind != "node" {
				continue
			}
			nodes++
			if n.VTimeSecs <= 0 || n.Attrs["llm_calls"] == "" || n.Attrs["out_tokens"] == "" ||
				n.Attrs["in_card"] == "" || n.Attrs["out_card"] == "" {
				t.Errorf("node span %q missing accounting: %+v", n.Name, n.Attrs)
			}
		}
	}
	if nodes != len(out.Plan) {
		t.Errorf("trace has %d node spans, plan has %d nodes", nodes, len(out.Plan))
	}
	if !strings.Contains(out.TraceText, "vtime=") || !strings.Contains(out.TraceText, "planning") {
		t.Errorf("trace text incomplete:\n%s", out.TraceText)
	}
	// Plain queries stay trace-free.
	_, raw = post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	var plain QueryResponse
	if err := json.Unmarshal(raw, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil || plain.TraceText != "" {
		t.Error("untraced query returned a trace")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE unify_queries_total counter",
		`unify_queries_total{status="ok"} 1`,
		"# TYPE unify_query_vtime_seconds histogram",
		"unify_query_vtime_seconds_count 1",
		"unify_llm_calls_total{task=",
		`unify_http_requests_total{path="/v1/query"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	post(t, srv.URL+"/v1/query", "How many questions are about golf?")
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		UptimeSecs float64                `json:"uptime_secs"`
		Metrics    map[string]interface{} `json:"metrics"`
		Failures   map[string]interface{} `json:"failures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.UptimeSecs <= 0 {
		t.Error("no uptime")
	}
	queries, ok := out.Metrics["unify_queries_total"].(map[string]interface{})
	if !ok || queries["ok"] != 1.0 {
		t.Errorf("stats metrics = %#v", out.Metrics["unify_queries_total"])
	}
	if _, ok := out.Metrics["unify_llm_calls_total"]; !ok {
		t.Error("stats missing llm call counters")
	}
	for _, key := range []string{"retries", "retry_exhausted", "hedges", "replans", "skipped_docs", "plan_fallbacks", "query_errors"} {
		if _, ok := out.Failures[key]; !ok {
			t.Errorf("stats failures block missing %q", key)
		}
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	// Empty body.
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query -> %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query -> %d", resp.StatusCode)
	}
	// Garbage JSON.
	resp, err = http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body -> %d", resp.StatusCode)
	}
}

// postReq sends an arbitrary QueryRequest body and returns the response.
func postReq(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryUSQLAutoDetected(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := post(t, srv.URL+"/v1/query", "SELECT COUNT(*) FROM sports WHERE 'related to tennis'")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Lang != "usql" {
		t.Errorf("lang %q, want usql (auto-detect)", out.Lang)
	}
	if out.Answer == "" || len(out.Plan) == 0 {
		t.Errorf("incomplete response: %+v", out)
	}
	if out.PlanningSecs != 0 {
		t.Errorf("USQL query charged %v planning secs, want 0 (no planner LLM)", out.PlanningSecs)
	}
}

func TestQueryLangField(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	// NL query, explicit lang pin.
	resp, raw := postReq(t, srv.URL+"/v1/query",
		QueryRequest{Query: "How many questions are about tennis?", Lang: "nl"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out QueryResponse
	json.Unmarshal(raw, &out)
	if out.Lang != "nl" {
		t.Errorf("lang %q, want nl", out.Lang)
	}
	// Unknown lang value: 400 with the bad_request code.
	resp, raw = postReq(t, srv.URL+"/v1/query",
		QueryRequest{Query: "SELECT COUNT(*) FROM sports", Lang: "sql"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown lang: status %d, want 400: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	json.Unmarshal(raw, &e)
	if e.Error.Code != "bad_request" || !strings.Contains(e.Error.Message, "sql") {
		t.Errorf("error envelope %+v", e)
	}
}

func TestQueryUSQLSyntaxErrorIs400(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := postReq(t, srv.URL+"/v1/query",
		QueryRequest{Query: "SELECT BOGUS(views) FROM sports", Lang: "usql"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	json.Unmarshal(raw, &e)
	if e.Error.Code != "bad_request" || !strings.Contains(e.Error.Message, "usql:7:") {
		t.Errorf("error envelope lacks positioned usql error: %+v", e)
	}
}

func TestQueryPlanOnly(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, raw := postReq(t, srv.URL+"/v1/query",
		QueryRequest{Query: "SELECT AVG(score) FROM sports WHERE 'related to injury'", PlanOnly: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out PlanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Lang != "usql" {
		t.Errorf("lang %q, want usql", out.Lang)
	}
	if len(out.Plan) != 2 {
		t.Fatalf("plan has %d nodes, want 2 (Filter, Average): %+v", len(out.Plan), out.Plan)
	}
	if out.Plan[0].Op != "Filter" || out.Plan[1].Op != "Average" {
		t.Errorf("ops %s,%s want Filter,Average", out.Plan[0].Op, out.Plan[1].Op)
	}
	for _, n := range out.Plan {
		if n.Physical == "" {
			t.Errorf("node %d missing physical operator", n.ID)
		}
	}
	// plan_only must not execute: the answer-shaped fields are absent
	// from the envelope entirely (it is a PlanResponse).
	if bytes.Contains(raw, []byte(`"answer"`)) {
		t.Error("plan_only response contains an answer field")
	}
}

func TestHealthAPIVersion(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if v, ok := out["api_version"].(float64); !ok || v != 1 {
		t.Errorf("api_version = %v, want 1", out["api_version"])
	}
}
