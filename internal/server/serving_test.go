package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
)

// servingQueries are eight distinct queries so every one does real slot
// work when run concurrently on the shared pool.
var servingQueries = []string{
	"How many questions are about tennis?",
	"How many questions are about golf?",
	"How many questions are about swimming?",
	"How many questions are about cycling?",
	"How many questions are about boxing?",
	"How many questions are about rowing?",
	"How many questions are about skiing?",
	"How many questions are about football?",
}

func servingSystem(t *testing.T, ds *corpus.Dataset) *unify.System {
	t.Helper()
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	sys, err := unify.New(
		unify.WithCorpus(ds),
		unify.WithDataset("sports"),
		unify.WithSim(sim),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestConcurrentSharedPoolAccounting drives eight concurrent queries —
// half directly, half over HTTP — through one System and verifies the
// shared slot pool's accounting: aggregate utilization stays in (0, 1],
// every contended query's makespan is at least its solo baseline, the
// pool's busy total covers the per-answer busy sums, and the answers are
// byte-identical to a sequential run on an identical fresh system.
func TestConcurrentSharedPoolAccounting(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential reference on its own system (own pool, own caches).
	ref := servingSystem(t, ds)
	want := make([]string, len(servingQueries))
	for i, q := range servingQueries {
		ans, err := ref.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("sequential reference %q: %v", q, err)
		}
		want[i] = ans.Text
	}

	sys := servingSystem(t, ds)
	srv := New(sys)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	answers := make([]string, len(servingQueries))
	directAns := make([]*unify.Answer, len(servingQueries))
	errs := make(chan error, len(servingQueries))
	var wg sync.WaitGroup
	for i, q := range servingQueries {
		i, q := i, q
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				ans, err := sys.Query(context.Background(), q)
				if err != nil {
					errs <- fmt.Errorf("direct %q: %w", q, err)
					return
				}
				directAns[i] = ans
				answers[i] = ans.Text
				return
			}
			body, _ := json.Marshal(QueryRequest{Query: q})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("HTTP %q: status %d", q, resp.StatusCode)
				return
			}
			var out QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.RequestID == "" {
				errs <- fmt.Errorf("HTTP %q: empty request_id", q)
				return
			}
			answers[i] = out.Answer
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i, q := range servingQueries {
		if answers[i] != want[i] {
			t.Errorf("query %q: concurrent answer %q != sequential %q", q, answers[i], want[i])
		}
	}

	ps := sys.Pool.Stats()
	if ps.Admitted < int64(len(servingQueries)) {
		t.Errorf("pool admitted %d queries, want >= %d", ps.Admitted, len(servingQueries))
	}
	if ps.Active != 0 {
		t.Errorf("pool still reports %d active after drain", ps.Active)
	}
	if ps.CumUtilization <= 0 || ps.CumUtilization > 1.0000001 {
		t.Errorf("cumulative utilization %f out of (0, 1]", ps.CumUtilization)
	}
	var busySum time.Duration
	contended := 0
	for i, ans := range directAns {
		if ans == nil {
			continue
		}
		if ans.ExecDur < ans.SoloExecDur {
			t.Errorf("query %d: makespan %v < solo baseline %v", i, ans.ExecDur, ans.SoloExecDur)
		}
		busySum += ans.SlotBusy
		if ans.Contended {
			contended++
			if ans.SlotGrantWait < 0 {
				t.Errorf("query %d: negative grant wait %v", i, ans.SlotGrantWait)
			}
		}
	}
	if busySum <= 0 {
		t.Error("direct answers report no slot busy time")
	}
	if ps.BusyTotal < busySum {
		t.Errorf("pool busy total %v < sum of answer busy %v", ps.BusyTotal, busySum)
	}
	if ps.PeakActive > 1 && contended == 0 {
		t.Errorf("peak active %d but no query reported contention", ps.PeakActive)
	}

	// /v1/stats must surface the pool's view of the same numbers.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Serving struct {
			MaxConcurrent int `json:"max_concurrent"`
			Pool          struct {
				Slots          int     `json:"slots"`
				Admitted       int64   `json:"admitted"`
				CumUtilization float64 `json:"cum_utilization"`
			} `json:"pool"`
		} `json:"serving"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serving.MaxConcurrent != DefaultMaxConcurrent {
		t.Errorf("serving.max_concurrent = %d, want %d", stats.Serving.MaxConcurrent, DefaultMaxConcurrent)
	}
	if stats.Serving.Pool.Slots != sys.Config.Slots {
		t.Errorf("serving.pool.slots = %d, want %d", stats.Serving.Pool.Slots, sys.Config.Slots)
	}
	if stats.Serving.Pool.Admitted < int64(len(servingQueries)) {
		t.Errorf("serving.pool.admitted = %d, want >= %d", stats.Serving.Pool.Admitted, len(servingQueries))
	}
	if u := stats.Serving.Pool.CumUtilization; u <= 0 || u > 1.0000001 {
		t.Errorf("serving.pool.cum_utilization = %f out of (0, 1]", u)
	}
}

// gatedClient blocks every completion until the gate closes, pinning a
// request inside the execution phase so admission tests can fill the
// queue deterministically.
type gatedClient struct {
	inner llm.Client
	gate  chan struct{}
}

func (g *gatedClient) Complete(ctx context.Context, prompt string) (llm.Response, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return g.inner.Complete(ctx, prompt)
}

func (g *gatedClient) Profile() llm.Profile { return g.inner.Profile() }

func waitInflight(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.admission.Inflight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("inflight never reached %d (now %d)", n, srv.admission.Inflight())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func postQuery(t *testing.T, url string, req QueryRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) ErrorBody {
	t.Helper()
	defer resp.Body.Close()
	var out ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("error envelope does not decode: %v", err)
	}
	return out.Error
}

// TestConcurrentBackpressure pins a query inside execution with a gated
// model client, then verifies the admission queue's failure modes: a
// full queue returns 429 with the error envelope and a Retry-After hint,
// a deadline that expires while queued returns 408, and the pinned
// queries complete normally once the gate opens.
func TestConcurrentBackpressure(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 150)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	planner := llm.NewSim(llm.SimConfig{Profile: llm.PlannerProfile(), Seed: 1})
	worker := &gatedClient{inner: llm.NewSim(llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}), gate: gate}
	sys, err := unify.New(
		unify.WithCorpus(ds),
		unify.WithDataset("sports"),
		unify.WithClients(planner, worker),
	)
	if err != nil {
		t.Fatal(err)
	}

	// srvFull: one execution slot, zero queue slots -> overflow is 429.
	srvFull := New(sys)
	srvFull.SetLimits(1, 0)
	tsFull := httptest.NewServer(srvFull)
	defer tsFull.Close()

	// srvQueue: one execution slot, one queue slot -> short deadlines
	// expire while queued and map to 408.
	srvQueue := New(sys)
	srvQueue.SetLimits(1, 1)
	tsQueue := httptest.NewServer(srvQueue)
	defer tsQueue.Close()

	type done struct {
		status int
		resp   QueryResponse
	}
	pinned := make(chan done, 2)
	for _, url := range []string{tsFull.URL, tsQueue.URL} {
		url := url
		go func() {
			resp := postQuery(t, url, QueryRequest{Query: servingQueries[0]})
			defer resp.Body.Close()
			var out QueryResponse
			json.NewDecoder(resp.Body).Decode(&out)
			pinned <- done{resp.StatusCode, out}
		}()
	}
	waitInflight(t, srvFull, 1)
	waitInflight(t, srvQueue, 1)

	// Queue disabled and the only slot busy: immediate 429 + envelope.
	resp := postQuery(t, tsFull.URL, QueryRequest{Query: servingQueries[1]})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	eb := decodeError(t, resp)
	if eb.Code != "queue_full" {
		t.Errorf("429 error code = %q, want %q", eb.Code, "queue_full")
	}
	if eb.RequestID == "" {
		t.Error("429 error envelope missing request_id")
	}

	// Queued behind the pinned query with a tiny deadline: 408.
	resp = postQuery(t, tsQueue.URL, QueryRequest{Query: servingQueries[1], TimeoutMS: 150})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("queued deadline: status %d, want 408", resp.StatusCode)
	}
	eb = decodeError(t, resp)
	if eb.Code != "deadline_exceeded" {
		t.Errorf("408 error code = %q, want %q", eb.Code, "deadline_exceeded")
	}

	// Malformed input also uses the envelope.
	resp = postQuery(t, tsFull.URL, QueryRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty query: status %d, want 400", resp.StatusCode)
	}
	if eb = decodeError(t, resp); eb.Code != "bad_request" {
		t.Errorf("400 error code = %q, want %q", eb.Code, "bad_request")
	}

	// Open the gate: both pinned queries must finish cleanly.
	close(gate)
	for i := 0; i < 2; i++ {
		select {
		case d := <-pinned:
			if d.status != http.StatusOK {
				t.Errorf("pinned query: status %d, want 200", d.status)
			}
			if d.resp.RequestID == "" {
				t.Error("pinned query response missing request_id")
			}
			if d.resp.Answer == "" {
				t.Error("pinned query returned an empty answer")
			}
		case <-time.After(30 * time.Second):
			t.Fatal("pinned query did not complete after the gate opened")
		}
	}
}
