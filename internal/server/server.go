// Package server exposes a Unify system over HTTP: a small JSON API for
// submitting natural-language analytics queries, inspecting plans
// (EXPLAIN), profiling them (EXPLAIN ANALYZE via ?analyze=1), browsing
// the operator registry, and scraping process metrics — the shape a
// deployed instance of the paper's system would take.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"unify"
	"unify/internal/core"
	"unify/internal/obs"
	"unify/internal/ops"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	Sys *unify.System
	// Timeout bounds each query's processing time.
	Timeout time.Duration
	mux     *http.ServeMux
	started time.Time
}

// New returns a server over the given system.
func New(sys *unify.System) *Server {
	s := &Server{Sys: sys, Timeout: 5 * time.Minute, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/operators", s.handleOperators)
	s.mux.HandleFunc("/v1/health", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Sys.Metrics != nil {
		s.Sys.Metrics.HTTPRequests.IncL(r.URL.Path)
	}
	s.mux.ServeHTTP(w, r)
}

// QueryRequest is the body of POST /v1/query and /v1/plan.
type QueryRequest struct {
	Query string `json:"query"`
}

// PlanNode is the JSON form of one plan operator.
type PlanNode struct {
	ID       int               `json:"id"`
	Op       string            `json:"op"`
	Physical string            `json:"physical,omitempty"`
	Args     map[string]string `json:"args,omitempty"`
	Inputs   []string          `json:"inputs,omitempty"`
	Deps     []int             `json:"deps,omitempty"`
	OutVar   string            `json:"out_var"`
	Desc     string            `json:"desc,omitempty"`
}

// QueryResponse is the body returned by POST /v1/query. Trace and
// TraceText are populated only for EXPLAIN ANALYZE requests
// (POST /v1/query?analyze=1).
type QueryResponse struct {
	Answer        string        `json:"answer"`
	Plan          []PlanNode    `json:"plan"`
	PlanningSecs  float64       `json:"planning_secs"`
	EstimationSec float64       `json:"estimation_secs"`
	ExecSecs      float64       `json:"exec_secs"`
	TotalSecs     float64       `json:"total_secs"`
	LLMCalls      int           `json:"llm_calls"`
	CachedCalls   int           `json:"cached_llm_calls"`
	PlanCacheHit  bool          `json:"plan_cache_hit"`
	Fallback      bool          `json:"fallback"`
	Adjusted      bool          `json:"adjusted"`
	SkippedDocs   int           `json:"skipped_docs,omitempty"`
	Partial       bool          `json:"partial,omitempty"`
	Replans       int           `json:"replans,omitempty"`
	Trace         *obs.SpanJSON `json:"trace,omitempty"`
	TraceText     string        `json:"trace_text,omitempty"`
}

// PlanResponse is the body returned by POST /v1/plan.
type PlanResponse struct {
	Plan         []PlanNode `json:"plan"`
	PlanningSecs float64    `json:"planning_secs"`
}

// OperatorInfo describes one registry entry for GET /v1/operators.
type OperatorInfo struct {
	Name                   string   `json:"name"`
	LogicalRepresentations []string `json:"logical_representations"`
	PreProgrammed          []string `json:"pre_programmed"`
	LLMBased               []string `json:"llm_based"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) readQuery(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return "", false
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: %v", err)
		return "", false
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "empty query")
		return "", false
	}
	return req.Query, true
}

func planNodes(p *core.Plan) []PlanNode {
	out := make([]PlanNode, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		out = append(out, PlanNode{
			ID:       n.ID,
			Op:       n.Op,
			Physical: n.Phys,
			Args:     n.Args,
			Inputs:   n.Inputs,
			Deps:     n.Deps,
			OutVar:   n.OutVar,
			Desc:     n.Desc,
		})
	}
	return out
}

// analyzeRequested reports whether the request asks for EXPLAIN ANALYZE.
func analyzeRequested(r *http.Request) bool {
	switch r.URL.Query().Get("analyze") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readQuery(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout())
	defer cancel()
	if analyzeRequested(r) {
		// EXPLAIN ANALYZE: run the query with tracing enabled and
		// return the rendered span tree alongside the answer.
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}
	ans, err := s.Sys.Query(ctx, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Answer:        ans.Text,
		Plan:          planNodes(ans.Plan),
		PlanningSecs:  ans.PlanningDur.Seconds(),
		EstimationSec: ans.EstimationDur.Seconds(),
		ExecSecs:      ans.ExecDur.Seconds(),
		TotalSecs:     ans.TotalDur.Seconds(),
		LLMCalls:      ans.LLMCalls,
		CachedCalls:   ans.CachedLLMCalls,
		PlanCacheHit:  ans.PlanCacheHit,
		Fallback:      ans.Fallback,
		Adjusted:      ans.Adjusted,
		SkippedDocs:   ans.SkippedDocs,
		Partial:       ans.Partial,
		Replans:       ans.Replans,
		Trace:         ans.Trace.JSON(),
		TraceText:     obs.Render(ans.Trace),
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	q, ok := s.readQuery(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout())
	defer cancel()
	plan, dur, err := s.Sys.Plan(ctx, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "planning failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{Plan: planNodes(plan), PlanningSecs: dur.Seconds()})
}

func (s *Server) handleOperators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var out []OperatorInfo
	for _, spec := range ops.All() {
		info := OperatorInfo{Name: spec.Name, LogicalRepresentations: spec.LRs}
		for _, p := range spec.Phys {
			if p.LLMBased {
				info.LLMBased = append(info.LLMBased, p.Name)
			} else {
				info.PreProgrammed = append(info.PreProgrammed, p.Name)
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var served, failed float64
	if m := s.Sys.Metrics; m != nil {
		served = m.Reg.Value("unify_queries_total", "ok")
		failed = m.Reg.Value("unify_queries_total", "error")
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"version":        unify.Version,
		"dataset":        s.Sys.Dataset.Name,
		"documents":      s.Sys.Store.Len(),
		"uptime_secs":    time.Since(s.started).Seconds(),
		"queries_served": int64(served),
		"queries_failed": int64(failed),
	})
}

// handleStats returns the metrics registry as JSON (a machine-friendly
// sibling of /metrics).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var snap map[string]interface{}
	if m := s.Sys.Metrics; m != nil {
		snap = m.Reg.Snapshot()
	}
	// Per-layer cache counters, read directly from the shared cache (the
	// registry mirrors events; this is the authoritative snapshot with
	// resident entry/byte figures included).
	cacheStats := map[string]interface{}{}
	for layer, st := range s.Sys.CacheStats() {
		cacheStats[layer] = st
	}
	// Failure-handling counters: resilience events, injected faults, and
	// graceful-degradation totals, summarized for operators.
	failures := map[string]interface{}{}
	if m := s.Sys.Metrics; m != nil {
		reg := m.Reg
		failures["retries"] = int64(reg.Total("unify_llm_retries_total"))
		failures["retry_exhausted"] = int64(reg.Total("unify_llm_retry_exhausted_total"))
		failures["hedges"] = int64(reg.Total("unify_llm_hedges_total"))
		failures["replans"] = int64(reg.Total("unify_exec_replans_total"))
		failures["skipped_docs"] = int64(reg.Total("unify_exec_skipped_docs_total"))
		failures["plan_fallbacks"] = int64(reg.Total("unify_plan_fallback_total"))
		failures["query_errors"] = int64(reg.Value("unify_queries_total", "error"))
	}
	if inj := s.Sys.Injector; inj != nil {
		byKind := map[string]int64{}
		for k, v := range inj.Stats() {
			byKind[string(k)] = v
		}
		failures["faults_injected"] = inj.Injected()
		failures["faults_by_kind"] = byKind
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_secs": time.Since(s.started).Seconds(),
		"metrics":     snap,
		"cache":       cacheStats,
		"failures":    failures,
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if m := s.Sys.Metrics; m != nil {
		m.Reg.WritePrometheus(w)
	}
}

func (s *Server) timeout() time.Duration {
	if s.Timeout <= 0 {
		return 5 * time.Minute
	}
	return s.Timeout
}
