// Package server exposes a Unify system over HTTP: a small JSON API for
// submitting analytics queries in natural language or USQL (the "lang"
// request field selects the dialect; the default auto-detects), inspecting
// plans (EXPLAIN via /v1/plan or "plan_only"), profiling them (EXPLAIN
// ANALYZE via ?analyze=1), browsing the operator registry, and scraping
// process metrics — the shape a deployed instance of the paper's system
// would take.
//
// Serving model: requests pass a bounded admission queue (at most
// MaxConcurrent executing, MaxQueue waiting; the rest get HTTP 429 with
// Retry-After) and then contend for the system's shared slot pool.
//
// # Error envelope (version 1)
//
// All error responses share one envelope, versioned with the API path
// prefix (/v1) and reported as api_version by /v1/health. Version 1 is
// frozen: the three fields below never change meaning, and new fields
// may only be added, never removed or repurposed.
//
//	{"error": {"code": "...", "message": "...", "request_id": "..."}}
//
// "code" is one of: bad_request (malformed body, unknown lang, USQL
// syntax errors), not_found, method_not_allowed, deadline_exceeded,
// queue_full, internal. "message" is human-readable and NOT stable;
// branch on "code". "request_id" matches the id echoed on success
// responses and keyed into /v1/traces/{id}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"unify"
	"unify/internal/core"
	"unify/internal/docstore"
	"unify/internal/obs"
	"unify/internal/ops"
	"unify/internal/usql"
)

// Server wraps a System with HTTP handlers.
type Server struct {
	Sys *unify.System
	// Timeout bounds each query's processing time (queue wait included);
	// requests may shorten it per call via timeout_ms.
	Timeout time.Duration

	admission *Admission
	reqID     atomic.Int64
	mux       *http.ServeMux
	started   time.Time

	// corpusMu serializes corpus mutations against query execution:
	// queries hold it shared for the duration of their run, /v1/ingest
	// holds it exclusively, so a mutation never races an in-flight scan.
	corpusMu sync.RWMutex
}

// New returns a server over the given system with default admission
// limits (DefaultMaxConcurrent running, DefaultMaxQueue waiting).
func New(sys *unify.System) *Server {
	s := &Server{
		Sys:       sys,
		Timeout:   5 * time.Minute,
		admission: NewAdmission(0, 0),
		mux:       http.NewServeMux(),
		started:   time.Now(),
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/operators", s.handleOperators)
	s.mux.HandleFunc("/v1/health", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/traces", s.handleTraces)
	s.mux.HandleFunc("/v1/traces/", s.handleTrace)
	s.mux.HandleFunc("/v1/profile", s.handleProfile)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Catch-all: unknown paths previously fell through to the mux's
	// plain-text 404, bypassing the error envelope.
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// SetLimits reconfigures admission control: at most maxConcurrent
// queries execute at once and at most maxQueue wait (0 disables
// queueing entirely). Call before serving; maxConcurrent < 1 and
// maxQueue < 0 select the defaults.
func (s *Server) SetLimits(maxConcurrent, maxQueue int) {
	s.admission = NewAdmission(maxConcurrent, maxQueue)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.Sys.Metrics != nil {
		// Trace-detail requests collapse to one series: the id segment
		// would otherwise mint a label per request.
		path := r.URL.Path
		if strings.HasPrefix(path, "/v1/traces/") {
			path = "/v1/traces/{id}"
		}
		s.Sys.Metrics.HTTPRequests.IncL(path)
	}
	s.mux.ServeHTTP(w, r)
}

// QueryRequest is the body of POST /v1/query and /v1/plan.
type QueryRequest struct {
	Query string `json:"query"`
	// TimeoutMS bounds this query end to end, queue wait included
	// (capped by the server's Timeout; 0 inherits it).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Analyze requests EXPLAIN ANALYZE: the span tree rides back on the
	// response (equivalent to ?analyze=1).
	Analyze bool `json:"analyze,omitempty"`
	// Priority favors this query in slot-grant tie-breaks on the shared
	// pool (higher wins).
	Priority int `json:"priority,omitempty"`
	// Lang selects the query dialect: "nl" (natural language, LLM-planned),
	// "usql" (typed dialect, parsed and compiled deterministically), or
	// ""/"auto" (detect: statements starting with SELECT are USQL).
	Lang string `json:"lang,omitempty"`
	// PlanOnly compiles and optimizes the query and returns the logical
	// plan without executing it (a body-level EXPLAIN; /v1/plan is the
	// endpoint-level equivalent).
	PlanOnly bool `json:"plan_only,omitempty"`
}

// PlanNode is the JSON form of one plan operator.
type PlanNode struct {
	ID       int               `json:"id"`
	Op       string            `json:"op"`
	Physical string            `json:"physical,omitempty"`
	Args     map[string]string `json:"args,omitempty"`
	Inputs   []string          `json:"inputs,omitempty"`
	Deps     []int             `json:"deps,omitempty"`
	OutVar   string            `json:"out_var"`
	Desc     string            `json:"desc,omitempty"`
}

// QueryResponse is the body returned by POST /v1/query. Trace and
// TraceText are populated only for EXPLAIN ANALYZE requests
// (POST /v1/query?analyze=1).
type QueryResponse struct {
	RequestID     string     `json:"request_id"`
	Answer        string     `json:"answer"`
	Plan          []PlanNode `json:"plan"`
	PlanningSecs  float64    `json:"planning_secs"`
	EstimationSec float64    `json:"estimation_secs"`
	ExecSecs      float64    `json:"exec_secs"`
	TotalSecs     float64    `json:"total_secs"`
	LLMCalls      int        `json:"llm_calls"`
	CachedCalls   int        `json:"cached_llm_calls"`
	PlanCacheHit  bool       `json:"plan_cache_hit"`
	Lang          string     `json:"lang"`
	Fallback      bool       `json:"fallback"`
	Adjusted      bool       `json:"adjusted"`
	SkippedDocs   int        `json:"skipped_docs,omitempty"`
	Partial       bool       `json:"partial,omitempty"`
	Replans       int        `json:"replans,omitempty"`
	ViewHits      int        `json:"view_hits,omitempty"`
	// Serving-layer accounting. Clock domains are deliberately distinct:
	// QueueWaitSecs is MONOTONIC WALL time spent in the server's
	// admission queue (the only wall-clock figure on this response);
	// GrantWaitSecs and SoloExecSecs — like every *_secs field above —
	// are VIRTUAL (simulated) time on the shared slot pool.
	QueueWaitSecs float64       `json:"queue_wait_secs"`
	GrantWaitSecs float64       `json:"grant_wait_secs"`
	SoloExecSecs  float64       `json:"solo_exec_secs"`
	Contended     bool          `json:"contended,omitempty"`
	Trace         *obs.SpanJSON `json:"trace,omitempty"`
	TraceText     string        `json:"trace_text,omitempty"`
	// Profile is the query's per-operator-class cost attribution
	// (EXPLAIN ANALYZE only; all durations virtual-clock).
	Profile map[string]obs.OpCostJSON `json:"profile,omitempty"`
}

// PlanResponse is the body returned by POST /v1/plan and by
// POST /v1/query with "plan_only": true.
type PlanResponse struct {
	RequestID    string     `json:"request_id"`
	Lang         string     `json:"lang"`
	Plan         []PlanNode `json:"plan"`
	PlanningSecs float64    `json:"planning_secs"`
}

// ErrorBody is the uniform error payload carried by every non-2xx
// response from the /v1 API.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrorResponse is the error envelope: {"error":{...}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// IngestDoc is one document in an ingestion request.
type IngestDoc struct {
	ID    int    `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
}

// IngestRequest is the POST /v1/ingest body: documents to add (ids must
// be new) and documents to update in place (ids must exist). Applied
// atomically — validation failures leave the corpus untouched.
type IngestRequest struct {
	Add    []IngestDoc `json:"add,omitempty"`
	Update []IngestDoc `json:"update,omitempty"`
}

// IngestResponse reports one applied corpus mutation.
type IngestResponse struct {
	RequestID       string `json:"request_id"`
	Added           int    `json:"added"`
	Updated         int    `json:"updated"`
	Generation      uint64 `json:"generation"`
	InvalidatedRows int    `json:"invalidated_rows"`
	Docs            int    `json:"docs"`
}

// OperatorInfo describes one registry entry for GET /v1/operators.
type OperatorInfo struct {
	Name                   string   `json:"name"`
	LogicalRepresentations []string `json:"logical_representations"`
	PreProgrammed          []string `json:"pre_programmed"`
	LLMBased               []string `json:"llm_based"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errCode maps an HTTP status to the envelope's stable error code.
func errCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusRequestTimeout:
		return "deadline_exceeded"
	case http.StatusTooManyRequests:
		return "queue_full"
	default:
		return "internal"
	}
}

func writeError(w http.ResponseWriter, status int, requestID, format string, args ...interface{}) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{
		Code:      errCode(status),
		Message:   fmt.Sprintf(format, args...),
		RequestID: requestID,
	}})
}

// nextRequestID mints the request identifier echoed on every response.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("q-%d", s.reqID.Add(1))
}

func (s *Server) readQuery(w http.ResponseWriter, r *http.Request, rid string) (QueryRequest, unify.Language, bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, "POST required")
		return QueryRequest{}, unify.LangAuto, false
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, rid, "malformed body: %v", err)
		return QueryRequest{}, unify.LangAuto, false
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, rid, "empty query")
		return QueryRequest{}, unify.LangAuto, false
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, rid, "negative timeout_ms")
		return QueryRequest{}, unify.LangAuto, false
	}
	lang, err := unify.ParseLanguage(req.Lang)
	if err != nil {
		writeError(w, http.StatusBadRequest, rid, "%v", err)
		return QueryRequest{}, unify.LangAuto, false
	}
	return req, lang, true
}

// resolved labels a response with the dialect the query actually ran as.
func resolved(lang unify.Language, query string) unify.Language {
	if lang == unify.LangAuto {
		return unify.DetectLanguage(query)
	}
	return lang
}

// queryStatus maps a failed Query/Plan call to an HTTP status: USQL
// syntax and compile errors are the client's fault (400); everything
// else is internal.
func queryStatus(err error) int {
	var perr *usql.Error
	if errors.As(err, &perr) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// requestTimeout resolves a request's effective deadline: the server
// bound, shortened by a positive timeout_ms.
func (s *Server) requestTimeout(req QueryRequest) time.Duration {
	d := s.timeout()
	if req.TimeoutMS > 0 {
		if rd := time.Duration(req.TimeoutMS) * time.Millisecond; rd < d {
			d = rd
		}
	}
	return d
}

func planNodes(p *core.Plan) []PlanNode {
	out := make([]PlanNode, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		out = append(out, PlanNode{
			ID:       n.ID,
			Op:       n.Op,
			Physical: n.Phys,
			Args:     n.Args,
			Inputs:   n.Inputs,
			Deps:     n.Deps,
			OutVar:   n.OutVar,
			Desc:     n.Desc,
		})
	}
	return out
}

// analyzeRequested reports whether the request asks for EXPLAIN ANALYZE.
func analyzeRequested(r *http.Request) bool {
	switch r.URL.Query().Get("analyze") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	rid := s.nextRequestID()
	req, lang, ok := s.readQuery(w, r, rid)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
	defer cancel()
	if req.PlanOnly {
		// Body-level EXPLAIN: compile and optimize under the requested
		// dialect, return the logical plan, execute nothing. Skips
		// admission like /v1/plan does — there is no slot-pool work.
		s.servePlan(ctx, w, rid, req, lang)
		return
	}
	// The request id rides down into the system so the retained trace is
	// keyed by the same id the response (and error envelope) carries.
	ctx = obs.WithRequestID(ctx, rid)
	analyze := analyzeRequested(r) || req.Analyze
	if analyze {
		// EXPLAIN ANALYZE: run the query with tracing enabled and
		// return the rendered span tree alongside the answer.
		ctx = obs.WithTracer(ctx, obs.NewTracer())
	}

	// Admission control: bounded queue ahead of the shared slot pool.
	// The deadline keeps ticking while queued; expiry or a full queue
	// rejects the request before any model work starts.
	m := s.Sys.Metrics
	release, queueWait, err := s.admission.Acquire(ctx)
	m.RecordServeDepth(s.admission.Queued(), s.admission.Inflight())
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			m.RecordRejection("queue_full")
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, rid,
				"admission queue full (%d running, %d queued)",
				s.admission.MaxConcurrent(), s.admission.MaxQueue())
			return
		}
		m.RecordRejection("deadline")
		writeError(w, http.StatusRequestTimeout, rid,
			"deadline expired after %.3fs in admission queue", queueWait.Seconds())
		return
	}
	defer func() {
		release()
		m.RecordServeDepth(s.admission.Queued(), s.admission.Inflight())
	}()
	m.RecordAdmission(queueWait)

	s.corpusMu.RLock()
	ans, err := s.Sys.Query(ctx, req.Query, unify.WithPriority(req.Priority), unify.WithLanguage(lang))
	s.corpusMu.RUnlock()
	if err != nil {
		if ctx.Err() != nil {
			writeError(w, http.StatusRequestTimeout, rid, "query deadline exceeded: %v", err)
			return
		}
		writeError(w, queryStatus(err), rid, "query failed: %v", err)
		return
	}
	// queueWait is wall time and stays in the serving layer
	// (QueueWaitSecs below): Answer fields are all virtual-clock, and
	// writing wall time into one mixed the two domains.
	resp := QueryResponse{
		RequestID:     rid,
		Lang:          ans.Lang.String(),
		Answer:        ans.Text,
		Plan:          planNodes(ans.Plan),
		PlanningSecs:  ans.PlanningDur.Seconds(),
		EstimationSec: ans.EstimationDur.Seconds(),
		ExecSecs:      ans.ExecDur.Seconds(),
		TotalSecs:     ans.TotalDur.Seconds(),
		LLMCalls:      ans.LLMCalls,
		CachedCalls:   ans.CachedLLMCalls,
		PlanCacheHit:  ans.PlanCacheHit,
		Fallback:      ans.Fallback,
		Adjusted:      ans.Adjusted,
		SkippedDocs:   ans.SkippedDocs,
		Partial:       ans.Partial,
		Replans:       ans.Replans,
		ViewHits:      ans.ViewHits,
		QueueWaitSecs: queueWait.Seconds(),
		GrantWaitSecs: ans.SlotGrantWait.Seconds(),
		SoloExecSecs:  ans.SoloExecDur.Seconds(),
		Contended:     ans.Contended,
	}
	if analyze {
		// The span tree is always captured for the trace store; it only
		// rides back on the response when EXPLAIN ANALYZE asked for it.
		resp.Trace = ans.Trace.JSON()
		resp.TraceText = obs.Render(ans.Trace)
		resp.Profile = ans.Profile.JSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngest applies a corpus mutation: add new documents and update
// existing ones. The mutation holds corpusMu exclusively, so it never
// interleaves with a running query; queries admitted after it observe
// the new corpus generation.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	rid := s.nextRequestID()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, "POST required")
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, rid, "malformed body: %v", err)
		return
	}
	if len(req.Add) == 0 && len(req.Update) == 0 {
		writeError(w, http.StatusBadRequest, rid, "empty ingest: no add or update documents")
		return
	}
	toDocs := func(in []IngestDoc) []docstore.Document {
		out := make([]docstore.Document, len(in))
		for i, d := range in {
			out[i] = docstore.Document{ID: d.ID, Title: d.Title, Text: d.Text}
		}
		return out
	}
	s.corpusMu.Lock()
	res, err := s.Sys.Ingest(toDocs(req.Add), toDocs(req.Update))
	s.corpusMu.Unlock()
	if err != nil {
		// Every Ingest failure is input validation (duplicate add id,
		// unknown update id); the corpus is untouched.
		writeError(w, http.StatusBadRequest, rid, "ingest rejected: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		RequestID:       rid,
		Added:           res.Added,
		Updated:         res.Updated,
		Generation:      res.Generation,
		InvalidatedRows: res.InvalidatedRows,
		Docs:            res.Docs,
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	rid := s.nextRequestID()
	req, lang, ok := s.readQuery(w, r, rid)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
	defer cancel()
	s.servePlan(ctx, w, rid, req, lang)
}

// servePlan backs both /v1/plan and plan_only /v1/query requests.
func (s *Server) servePlan(ctx context.Context, w http.ResponseWriter, rid string, req QueryRequest, lang unify.Language) {
	plan, dur, err := s.Sys.Plan(ctx, req.Query, unify.WithLanguage(lang))
	if err != nil {
		if ctx.Err() != nil {
			writeError(w, http.StatusRequestTimeout, rid, "planning deadline exceeded: %v", err)
			return
		}
		writeError(w, queryStatus(err), rid, "planning failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{
		RequestID:    rid,
		Lang:         resolved(lang, req.Query).String(),
		Plan:         planNodes(plan),
		PlanningSecs: dur.Seconds(),
	})
}

// handleNotFound routes unknown paths through the uniform envelope.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, s.nextRequestID(), "no such endpoint: %s", r.URL.Path)
}

func (s *Server) handleOperators(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	var out []OperatorInfo
	for _, spec := range ops.All() {
		info := OperatorInfo{Name: spec.Name, LogicalRepresentations: spec.LRs}
		for _, p := range spec.Phys {
			if p.LLMBased {
				info.LLMBased = append(info.LLMBased, p.Name)
			} else {
				info.PreProgrammed = append(info.PreProgrammed, p.Name)
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// TraceDetail is the body of GET /v1/traces/{id}: the stored trace
// summary plus its full span tree. Unlike the list endpoint, the span
// tree carries wall-clock timings (wall_ms) alongside virtual time.
type TraceDetail struct {
	ID        string        `json:"id"`
	Seq       int64         `json:"seq"`
	Status    string        `json:"status"`
	Query     string        `json:"query"`
	VTimeSecs float64       `json:"vtime_secs"`
	LLMCalls  int           `json:"llm_calls"`
	Operators int           `json:"operators"`
	Spans     int           `json:"spans"`
	Truncated bool          `json:"truncated,omitempty"`
	Root      *obs.SpanJSON `json:"root"`
}

// handleTraces lists retained query traces newest-first. Filters:
// ?status=ok|error, ?min_vtime_secs=F, ?limit=N. The payload carries
// only virtual-clock fields, so identical runs produce identical bytes.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	var f obs.TraceFilter
	q := r.URL.Query()
	switch st := q.Get("status"); st {
	case "", "ok", "error":
		f.Status = st
	default:
		writeError(w, http.StatusBadRequest, s.nextRequestID(), "status must be ok or error")
		return
	}
	if v := q.Get("min_vtime_secs"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 {
			writeError(w, http.StatusBadRequest, s.nextRequestID(), "malformed min_vtime_secs: %q", v)
			return
		}
		f.MinVTime = time.Duration(secs * float64(time.Second))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, s.nextRequestID(), "malformed limit: %q", v)
			return
		}
		f.Limit = n
	}
	store := s.Sys.Traces
	traces := store.List(f)
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	maxTraces, maxSpans := store.Bounds()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"traces": traces,
		"count":  len(traces),
		"retention": map[string]interface{}{
			"enabled":             store != nil,
			"max_traces":          maxTraces,
			"max_spans_per_trace": maxSpans,
			"stored":              store.Len(),
			"evicted":             store.Evicted(),
		},
	})
}

// handleTrace serves one stored trace's full span tree by request id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, s.nextRequestID(), "no such endpoint: %s", r.URL.Path)
		return
	}
	t, ok := s.Sys.Traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, s.nextRequestID(), "no trace with id %q", id)
		return
	}
	writeJSON(w, http.StatusOK, TraceDetail{
		ID:        t.ID,
		Seq:       t.Seq,
		Status:    t.Status,
		Query:     t.Query,
		VTimeSecs: t.VTime.Seconds(),
		LLMCalls:  t.LLMCalls,
		Operators: t.Operators,
		Spans:     t.Spans,
		Truncated: t.Truncated,
		Root:      t.Root,
	})
}

// handleProfile serves the cumulative per-operator-class cost profile.
// All durations are virtual-clock, so the payload is byte-deterministic
// for identical workloads.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Sys.Profiler.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var served, failed float64
	if m := s.Sys.Metrics; m != nil {
		served = m.Reg.Value("unify_queries_total", "ok")
		failed = m.Reg.Value("unify_queries_total", "error")
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":         "ok",
		"version":        unify.Version,
		"api_version":    1,
		"dataset":        s.Sys.Dataset.Name,
		"documents":      s.Sys.Store.Len(),
		"uptime_secs":    time.Since(s.started).Seconds(),
		"queries_served": int64(served),
		"queries_failed": int64(failed),
	})
}

// handleStats returns the metrics registry as JSON (a machine-friendly
// sibling of /metrics).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	var snap map[string]interface{}
	if m := s.Sys.Metrics; m != nil {
		snap = m.Reg.Snapshot()
	}
	// Per-layer cache counters, read directly from the shared cache (the
	// registry mirrors events; this is the authoritative snapshot with
	// resident entry/byte figures included).
	cacheStats := map[string]interface{}{}
	for layer, st := range s.Sys.CacheStats() {
		cacheStats[layer] = st
	}
	// Failure-handling counters: resilience events, injected faults, and
	// graceful-degradation totals, summarized for operators.
	failures := map[string]interface{}{}
	if m := s.Sys.Metrics; m != nil {
		reg := m.Reg
		failures["retries"] = int64(reg.Total("unify_llm_retries_total"))
		failures["retry_exhausted"] = int64(reg.Total("unify_llm_retry_exhausted_total"))
		failures["hedges"] = int64(reg.Total("unify_llm_hedges_total"))
		failures["replans"] = int64(reg.Total("unify_exec_replans_total"))
		failures["skipped_docs"] = int64(reg.Total("unify_exec_skipped_docs_total"))
		failures["plan_fallbacks"] = int64(reg.Total("unify_plan_fallback_total"))
		failures["query_errors"] = int64(reg.Value("unify_queries_total", "error"))
	}
	if inj := s.Sys.Injector; inj != nil {
		byKind := map[string]int64{}
		for k, v := range inj.Stats() {
			byKind[string(k)] = v
		}
		failures["faults_injected"] = inj.Injected()
		failures["faults_by_kind"] = byKind
	}
	// Serving-layer state: the admission queue and the shared slot pool.
	serving := map[string]interface{}{
		"max_concurrent": s.admission.MaxConcurrent(),
		"max_queue":      s.admission.MaxQueue(),
		"inflight":       s.admission.Inflight(),
		"queued":         s.admission.Queued(),
	}
	if pool := s.Sys.Pool; pool != nil {
		ps := pool.Stats()
		serving["pool"] = ps
		serving["pool_busy_vtime_secs"] = ps.BusyTotal.Seconds()
		serving["pool_grant_wait_vtime_secs"] = ps.GrantWaitTotal.Seconds()
		if ps.BatchGrants > 0 {
			serving["pool_batch_saved_vtime_secs"] = ps.BatchSavedVTime.Seconds()
		}
	}
	if sh := s.Sys.Sharding; sh != nil {
		serving["sharding"] = map[string]interface{}{
			"partitioner":    sh.Partitioner().Name(),
			"shards":         sh.N,
			"docs_per_shard": sh.Counts(),
		}
	}
	// Materialized-view state: counter snapshot plus per-column row
	// coverage, and the corpus generation views key against.
	viewsBlock := map[string]interface{}{"enabled": s.Sys.Views != nil}
	if v := s.Sys.Views; v != nil {
		st := v.Stats()
		viewsBlock["stats"] = st
		viewsBlock["hit_rate"] = st.HitRate()
		viewsBlock["columns"] = v.Columns()
		viewsBlock["corpus_generation"] = s.Sys.Store.Generation()
		viewsBlock["corpus_docs"] = s.Sys.Store.Len()
	}
	// Clock domains: serving figures (admission queue waits, uptime) are
	// monotonic wall time; everything derived from query execution (pool
	// vtime, query duration histograms, trace and profile durations) is
	// virtual (simulated) time. Trace DETAIL payloads (/v1/traces/{id})
	// are the one dual-clock surface: span wall_ms is wall time next to
	// each span's vtime_secs.
	serving["clocks"] = map[string]string{
		"uptime_secs":                             "wall_monotonic",
		"admission_queue_wait":                    "wall_monotonic",
		"unify_serve_queue_wait_seconds":          "wall_monotonic",
		"pool_busy_vtime_secs":                    "virtual",
		"pool_grant_wait_vtime_secs":              "virtual",
		"unify_query_vtime_seconds":               "virtual",
		"unify_slot_grant_wait_vtime_seconds":     "virtual",
		"traces.vtime_secs":                       "virtual",
		"traces.span.wall_ms":                     "wall_monotonic",
		"profile.*_vtime_secs":                    "virtual",
		"unify_op_busy_vtime_seconds_total":       "virtual",
		"unify_op_vtime_share_seconds_total":      "virtual",
		"unify_op_grant_wait_vtime_seconds_total": "virtual",
		"slow_query_threshold_vtime_secs":         "virtual",
		"pool_batch_saved_vtime_secs":             "virtual",
		"unify_batch_saved_vtime_seconds":         "virtual",
	}
	// Trace retention and slow-query state, documented next to the rest
	// of the observability surface so operators can see the bounds that
	// govern /v1/traces without reading code.
	tracing := map[string]interface{}{"enabled": s.Sys.Traces != nil}
	if store := s.Sys.Traces; store != nil {
		maxTraces, maxSpans := store.Bounds()
		tracing["max_traces"] = maxTraces
		tracing["max_spans_per_trace"] = maxSpans
		tracing["stored"] = store.Len()
		tracing["evicted"] = store.Evicted()
	}
	tracing["profiled_queries"] = s.Sys.Profiler.Queries()
	if sl := s.Sys.SlowLog; sl != nil {
		tracing["slow_query_threshold_vtime_secs"] = sl.Threshold().Seconds()
		tracing["slow_queries"] = sl.Count()
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"uptime_secs": time.Since(s.started).Seconds(),
		"metrics":     snap,
		"cache":       cacheStats,
		"failures":    failures,
		"serving":     serving,
		"tracing":     tracing,
		"views":       viewsBlock,
	})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, s.nextRequestID(), "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if m := s.Sys.Metrics; m != nil {
		m.Reg.WritePrometheus(w)
	}
}

func (s *Server) timeout() time.Duration {
	if s.Timeout <= 0 {
		return 5 * time.Minute
	}
	return s.Timeout
}
