package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
)

// TestConcurrentQueriesSharedSystem drives ≥8 concurrent queries (mixed
// repeated and distinct) through one shared System — half directly via
// System.Query, half over HTTP — and verifies deterministic answers and
// monotonic cache counters. Run under -race this also exercises every
// cache layer's locking (the pre-cache optimizer had an unsynchronized
// selectivity map on this path).
func TestConcurrentQueriesSharedSystem(t *testing.T) {
	ds, err := corpus.GenerateN("sports", 200)
	if err != nil {
		t.Fatal(err)
	}
	sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
	sys, err := unify.OpenDataset(ds, unify.Config{Dataset: "sports", Sim: &sim})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(sys))
	defer srv.Close()

	queries := []string{
		"How many questions are about tennis?",
		"How many questions are about tennis?", // repeated
		"How many questions are about golf?",
		"How many questions are about tennis?", // repeated
		"How many questions are about golf?",   // repeated
		"How many questions are about swimming?",
		"How many questions are about tennis?",   // repeated
		"How many questions are about swimming?", // repeated
		"How many questions are about golf?",     // repeated
		"How many questions are about cycling?",
	}

	// Reference answers, computed sequentially first (the Sim is
	// deterministic, so concurrent runs must reproduce these exactly).
	want := map[string]string{}
	for _, q := range queries {
		if _, ok := want[q]; ok {
			continue
		}
		ans, err := sys.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("reference query %q: %v", q, err)
		}
		want[q] = ans.Text
	}
	statsBefore := sys.Cache.Stats()

	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	answers := make([]string, len(queries))
	for i, q := range queries {
		i, q := i, q
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				ans, err := sys.Query(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				answers[i] = ans.Text
				return
			}
			body, _ := json.Marshal(QueryRequest{Query: q})
			resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			answers[i] = out.Answer
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, q := range queries {
		if answers[i] != want[q] {
			t.Errorf("query %d %q: got %q, want %q", i, q, answers[i], want[q])
		}
	}

	// Cache counters are monotonic and the concurrent batch — all warm
	// repeats of the reference pass — must have produced hits.
	statsAfter := sys.Cache.Stats()
	if statsAfter.Hits < statsBefore.Hits || statsAfter.Misses < statsBefore.Misses {
		t.Fatalf("cache counters went backwards: %+v -> %+v", statsBefore, statsAfter)
	}
	if statsAfter.Hits == statsBefore.Hits {
		t.Fatal("concurrent repeated queries produced no cache hits")
	}
	layers := sys.CacheStats()
	if layers["plan"].Hits == 0 {
		t.Fatalf("no plan-cache hits across repeated queries: %+v", layers)
	}
	if layers["llm"].Hits == 0 {
		t.Fatalf("no LLM-cache hits across repeated queries: %+v", layers)
	}

	// The stats endpoint must expose the per-layer counters.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache map[string]struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache["plan"].Hits == 0 || stats.Cache["llm"].Hits == 0 {
		t.Fatalf("/v1/stats cache section missing hits: %+v", stats.Cache)
	}
}
