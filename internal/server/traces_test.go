package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"unify"
	"unify/internal/corpus"
	"unify/internal/llm"
	"unify/internal/obs"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

type tracesBody struct {
	Traces    []obs.TraceSummary     `json:"traces"`
	Count     int                    `json:"count"`
	Retention map[string]interface{} `json:"retention"`
}

func TestTracesEndpointListAndDetail(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()

	resp, raw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, raw)
	}
	var q1 QueryResponse
	if err := json.Unmarshal(raw, &q1); err != nil {
		t.Fatal(err)
	}
	post(t, srv.URL+"/v1/query", "How many questions are about football?")

	resp, raw = get(t, srv.URL+"/v1/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d: %s", resp.StatusCode, raw)
	}
	var list tracesBody
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 || len(list.Traces) != 2 {
		t.Fatalf("want 2 traces, got %+v", list)
	}
	// Newest-first: the second query leads.
	if list.Traces[0].ID != "q-2" || list.Traces[1].ID != "q-1" {
		t.Fatalf("order wrong: %+v", list.Traces)
	}
	if list.Retention["enabled"] != true {
		t.Errorf("retention block: %+v", list.Retention)
	}

	// Detail: stored vtime must equal the vtime the query reported.
	resp, raw = get(t, srv.URL+"/v1/traces/"+q1.RequestID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status %d: %s", resp.StatusCode, raw)
	}
	var det TraceDetail
	if err := json.Unmarshal(raw, &det); err != nil {
		t.Fatal(err)
	}
	if det.ID != q1.RequestID || det.Status != "ok" {
		t.Fatalf("detail = %+v", det)
	}
	if math.Abs(det.VTimeSecs-q1.TotalSecs) > 1e-9 {
		t.Errorf("stored vtime %v != answer vtime %v", det.VTimeSecs, q1.TotalSecs)
	}
	if det.Root == nil || det.Root.Name != "query" {
		t.Fatalf("detail missing span tree: %+v", det.Root)
	}
	if det.Root.Attrs["request_id"] != q1.RequestID {
		t.Errorf("root span request_id = %q", det.Root.Attrs["request_id"])
	}
	// Phase structure survives storage.
	names := map[string]bool{}
	for _, c := range det.Root.Children {
		names[c.Name] = true
	}
	for _, phase := range []string{"planning", "optimize", "execute"} {
		if !names[phase] {
			t.Errorf("stored trace missing %q phase: %v", phase, names)
		}
	}
}

func TestTracesEndpointFilters(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	post(t, srv.URL+"/v1/query", "How many questions are about tennis?")

	if _, raw := get(t, srv.URL+"/v1/traces?status=error"); !strings.Contains(string(raw), `"count":0`) {
		t.Errorf("status=error should be empty: %s", raw)
	}
	if _, raw := get(t, srv.URL+"/v1/traces?min_vtime_secs=1e9"); !strings.Contains(string(raw), `"count":0`) {
		t.Errorf("huge min_vtime should be empty: %s", raw)
	}
	post(t, srv.URL+"/v1/query", "How many questions are about football?")
	var list tracesBody
	_, raw := get(t, srv.URL+"/v1/traces?limit=1")
	json.Unmarshal(raw, &list)
	if list.Count != 1 {
		t.Errorf("limit=1 returned %d", list.Count)
	}

	for _, bad := range []string{"?status=weird", "?min_vtime_secs=abc", "?min_vtime_secs=-1", "?limit=x"} {
		resp, raw := get(t, srv.URL+"/v1/traces"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", bad, resp.StatusCode, raw)
		}
	}

	if resp, _ := get(t, srv.URL+"/v1/traces/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d", resp.StatusCode)
	}
	if resp, _ := get(t, srv.URL+"/v1/traces/a/b"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deep path status %d", resp.StatusCode)
	}
}

func TestProfileEndpointAttribution(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()

	var want float64
	for _, q := range []string{
		"How many questions are about tennis?",
		"What is the average score of questions related to injury?",
	} {
		_, raw := post(t, srv.URL+"/v1/query", q)
		var out QueryResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s: %v (%s)", q, err, raw)
		}
		want += out.TotalSecs
	}

	resp, raw := get(t, srv.URL+"/v1/profile")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d: %s", resp.StatusCode, raw)
	}
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queries != 2 {
		t.Fatalf("profiled queries = %d", snap.Queries)
	}
	// The profiling surface's core claim: per-class vtime shares sum to
	// the vtime the queries reported.
	var shares float64
	for _, c := range snap.Classes {
		shares += c.ShareSecs
	}
	if math.Abs(shares-want) > 1e-6 || math.Abs(snap.TotalVTimeSecs-want) > 1e-6 {
		t.Errorf("share sum %v / total %v != answers %v", shares, snap.TotalVTimeSecs, want)
	}
	if _, ok := snap.Classes["planning"]; !ok {
		t.Errorf("no planning class: %v", snap.Classes)
	}
}

func TestQueryResponseProfileGatedOnAnalyze(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	_, raw := post(t, srv.URL+"/v1/query", "How many questions are about tennis?")
	var plain QueryResponse
	json.Unmarshal(raw, &plain)
	if plain.Profile != nil || plain.Trace != nil {
		t.Error("plain query returned profile/trace")
	}

	body, _ := json.Marshal(QueryRequest{Query: "How many questions are about golf?", Analyze: true})
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var an QueryResponse
	if err := json.Unmarshal(buf.Bytes(), &an); err != nil {
		t.Fatal(err)
	}
	if an.Trace == nil || an.Profile == nil {
		t.Fatalf("analyze query missing trace/profile: %s", buf.Bytes())
	}
	var shares float64
	for _, c := range an.Profile {
		shares += c.ShareSecs
	}
	if math.Abs(shares-an.TotalSecs) > 1e-6 {
		t.Errorf("per-query profile shares %v != total %v", shares, an.TotalSecs)
	}
}

// TestTraceAndProfileByteIdentity builds two servers over identical
// systems, replays the same query sequence, and requires /v1/traces and
// /v1/profile to return byte-identical payloads — the determinism
// contract of the observability surface.
func TestTraceAndProfileByteIdentity(t *testing.T) {
	run := func() (traces, profile string) {
		ds, err := corpus.GenerateN("sports", 200)
		if err != nil {
			t.Fatal(err)
		}
		sim := llm.SimConfig{Profile: llm.WorkerProfile(), Seed: 1}
		sys, err := unify.OpenDataset(ds, unify.Config{Dataset: "sports", Sim: &sim, StrictChecks: true})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(New(sys))
		defer srv.Close()
		for _, q := range []string{
			"How many questions are about tennis?",
			"What is the average score of questions related to injury?",
			"How many questions are about tennis?", // repeat: cache-served path
		} {
			resp, raw := post(t, srv.URL+"/v1/query", q)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %q: %d %s", q, resp.StatusCode, raw)
			}
		}
		_, tb := get(t, srv.URL+"/v1/traces")
		_, pb := get(t, srv.URL+"/v1/profile")
		return string(tb), string(pb)
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 {
		t.Errorf("/v1/traces not byte-identical:\n%s\n---\n%s", t1, t2)
	}
	if p1 != p2 {
		t.Errorf("/v1/profile not byte-identical:\n%s\n---\n%s", p1, p2)
	}
	if strings.Contains(t1, "wall") {
		t.Errorf("trace list leaks wall-clock fields: %s", t1)
	}
}

func TestStatsTracingBlockAndBuildInfo(t *testing.T) {
	srv := testServer(t)
	defer srv.Close()
	post(t, srv.URL+"/v1/query", "How many questions are about tennis?")

	_, raw := get(t, srv.URL+"/v1/stats")
	var stats map[string]interface{}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	tracing, ok := stats["tracing"].(map[string]interface{})
	if !ok || tracing["enabled"] != true {
		t.Fatalf("tracing block missing: %v", stats["tracing"])
	}
	if tracing["stored"].(float64) != 1 || tracing["profiled_queries"].(float64) != 1 {
		t.Errorf("tracing counters: %v", tracing)
	}
	serving := stats["serving"].(map[string]interface{})
	clocks := serving["clocks"].(map[string]interface{})
	if clocks["traces.vtime_secs"] != "virtual" || clocks["traces.span.wall_ms"] != "wall_monotonic" {
		t.Errorf("clock map missing trace domains: %v", clocks)
	}

	_, raw = get(t, srv.URL+"/metrics")
	body := string(raw)
	if !strings.Contains(body, "unify_build_info{") || !strings.Contains(body, `version="`+unify.Version+`"`) {
		t.Errorf("/metrics missing build info: %.300s", body)
	}
	if !strings.Contains(body, "unify_op_vtime_share_seconds_total") {
		t.Errorf("/metrics missing per-op cost series")
	}
}
