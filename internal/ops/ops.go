// Package ops implements the 21 unstructured-data-analytics logical
// operators of the paper's Table II, each with pre-programmed and (where
// defined) LLM-based physical implementations.
//
// A logical operator (Spec) declares its logical representations — the
// natural-language templates the planner matches queries against — and its
// candidate physical implementations. The optimizer chooses one Physical
// per plan node via the cost model; the executor invokes Physical.Run.
package ops

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/logrep"
	"unify/internal/values"
	"unify/internal/views"
)

// Args carries the placeholder bindings extracted from the rewritten
// query segment (Entity, Entity2, Condition, Attribute, Number, Field)
// plus optimizer-injected parameters prefixed with "_" (e.g. _scanK).
type Args map[string]string

// Get returns a binding, or "".
func (a Args) Get(key string) string { return a[key] }

// Int returns a numeric binding.
func (a Args) Int(key string) (int, bool) {
	v, err := strconv.Atoi(strings.TrimSpace(a[key]))
	if err != nil {
		return 0, false
	}
	return v, true
}

// Env is the execution environment an operator runs against.
type Env struct {
	Store *docstore.Store
	// Client is the operator-execution model (the paper's Llama-8B),
	// usually wrapped in an llm.Recorder by the executor so calls are
	// charged to the virtual clock.
	Client llm.Client
	// BatchSize bounds how many documents one LLM invocation covers
	// ("LLM invocation is batched when possible").
	BatchSize int
	// Budget, when non-nil, lets per-batch LLM failures be absorbed by
	// skipping the affected documents instead of failing the node.
	Budget *FaultBudget
	// Views, when non-nil, is the materialized semantic view store:
	// per-document filter verdicts, classification labels, and extracted
	// field values are read from (and backfilled into) named columns
	// instead of being recomputed through the model.
	Views *views.Store

	// viewHits counts per-document judgments this Env served from
	// materialized views instead of LLM work (read via ViewHits by the
	// executor for stats and calibration).
	viewHits int
}

func (e *Env) batch() int {
	if e.BatchSize <= 0 {
		return 16
	}
	return e.BatchSize
}

// ViewHits reports how many per-document results were served from
// materialized views during this Env's node execution.
func (e *Env) ViewHits() int { return e.viewHits }

// Physical is one executable implementation of a logical operator.
type Physical struct {
	// Name identifies the implementation, e.g. "ExactFilter".
	Name string
	// LLMBased distinguishes the two families of Table II.
	LLMBased bool
	// Adequate reports whether this implementation satisfies the
	// operator's semantic requirements for the given arguments; the
	// optimizer only chooses among adequate implementations (paper
	// §VI-C: semantic requirements bypass the cost model).
	Adequate func(args Args, inputs []values.Value) bool
	// Run executes the operator.
	Run func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error)
}

// Spec is a logical operator.
type Spec struct {
	Name string
	// LRs are the operator's logical representations.
	LRs []string
	// Templates are the compiled LRs, index-aligned with LRs.
	Templates []*logrep.Template
	// Phys lists candidate physical implementations.
	Phys []*Physical
}

// Template returns the compiled template for an LR string.
func (s *Spec) Template(lr string) *logrep.Template {
	for i, t := range s.LRs {
		if t == lr {
			return s.Templates[i]
		}
	}
	return nil
}

// Adequate filters the spec's physicals to those adequate for the inputs.
func (s *Spec) Adequate(args Args, inputs []values.Value) []*Physical {
	var out []*Physical
	for _, p := range s.Phys {
		if p.Adequate == nil || p.Adequate(args, inputs) {
			out = append(out, p)
		}
	}
	return out
}

var registry = map[string]*Spec{}

// Register adds a caller-defined logical operator to the registry — the
// paper's extensibility hook (§IV-B3): define logical representations for
// planning and physical implementations for execution. It fails on name
// collisions or incomplete specs.
func Register(s *Spec) error {
	if s == nil || s.Name == "" {
		return fmt.Errorf("ops: operator needs a name")
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("ops: operator %q already registered", s.Name)
	}
	if len(s.LRs) == 0 {
		return fmt.Errorf("ops: operator %q needs at least one logical representation", s.Name)
	}
	if len(s.Phys) == 0 {
		return fmt.Errorf("ops: operator %q needs at least one physical implementation", s.Name)
	}
	for _, lr := range s.LRs {
		t, err := logrep.Compile(lr)
		if err != nil {
			return err
		}
		s.Templates = append(s.Templates, t)
	}
	registry[s.Name] = s
	return nil
}

// Unregister removes a previously Register-ed operator (primarily for
// tests); built-in operators cannot be removed.
func Unregister(name string) error {
	if builtin[name] {
		return fmt.Errorf("ops: cannot unregister built-in operator %q", name)
	}
	if _, ok := registry[name]; !ok {
		return fmt.Errorf("ops: operator %q not registered", name)
	}
	delete(registry, name)
	return nil
}

var builtin = map[string]bool{}

func register(s *Spec) {
	for _, lr := range s.LRs {
		s.Templates = append(s.Templates, logrep.MustCompile(lr))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("ops: duplicate operator %q", s.Name))
	}
	registry[s.Name] = s
	builtin[s.Name] = true
}

// Get returns the named operator spec.
func Get(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// Names returns all operator names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every operator spec, sorted by name.
func All() []*Spec {
	names := Names()
	out := make([]*Spec, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

func init() {
	register(&Spec{
		Name: "Scan",
		LRs: []string{
			"documents satisfy [Condition]",
			"scan documents with [Condition]",
		},
		// Scan is the access path for a (possibly semantic) condition
		// over the raw collection: a plain LinearScan when there is no
		// condition, exact/semantic/index-assisted filtering otherwise.
		Phys: []*Physical{
			physLinearScan(), physIndexScan(), physExactFilter(),
			physKeywordFilter(), physSemanticFilter(), physIndexFilter(),
		},
	})
	register(&Spec{
		Name: "Filter",
		LRs: []string{
			"[Entity] that [Condition]",
			"[Entity] having [Condition]",
			"[Entity] satisfy [Condition]",
			"[Entity] which are [Condition]",
		},
		Phys: []*Physical{physExactFilter(), physKeywordFilter(), physSemanticFilter(), physIndexFilter()},
	})
	register(&Spec{
		Name: "Compare",
		LRs: []string{
			"larger in [Entity] and [Entity]",
			"compare [Entity] with [Entity] by [Condition]",
		},
		Phys: []*Physical{physNumericCompare(), physSemanticCompare()},
	})
	register(&Spec{
		Name: "GroupBy",
		LRs: []string{
			"aggregate [Entity] by [Attribute]",
			"group [Entity] by [Attribute]",
			"among [Entity], which [Attribute] has the highest [Entity]",
			"which [Attribute] has the most [Entity]",
		},
		Phys: []*Physical{physHashGroupBy(), physSortGroupBy(), physSemanticGroupBy()},
	})
	register(&Spec{
		Name: "Count",
		LRs: []string{
			"number of [Entity]",
			"the count of [Entity]",
		},
		Phys: []*Physical{physPreAgg("Count"), physLLMAgg("Count")},
	})
	register(&Spec{
		Name: "Sum",
		LRs: []string{
			"the total sum of [Entity]",
			"the total [Field] of [Entity]",
		},
		Phys: []*Physical{physPreAgg("Sum"), physLLMAgg("Sum")},
	})
	register(&Spec{
		Name: "Max",
		LRs: []string{
			"the maximum of [Entity]",
			"the maximum [Field] of [Entity]",
			"the entry of [Entity] with the highest value",
		},
		Phys: []*Physical{physPreAgg("Max"), physLLMAgg("Max"), physPreArg("Max"), physLLMArg("Max")},
	})
	register(&Spec{
		Name: "Min",
		LRs: []string{
			"the minimum of [Entity]",
			"the minimum [Field] of [Entity]",
			"the entry of [Entity] with the lowest value",
		},
		Phys: []*Physical{physPreAgg("Min"), physLLMAgg("Min"), physPreArg("Min"), physLLMArg("Min")},
	})
	register(&Spec{
		Name: "Average",
		LRs: []string{
			"the mean of [Entity]",
			"the average [Field] of [Entity]",
		},
		Phys: []*Physical{physPreAgg("Average"), physLLMAgg("Average")},
	})
	register(&Spec{
		Name: "Median",
		LRs: []string{
			"the median of [Entity]",
			"the median [Field] of [Entity]",
		},
		Phys: []*Physical{physPreAgg("Median"), physLLMAgg("Median")},
	})
	register(&Spec{
		Name: "Percentile",
		LRs: []string{
			"the k-th percentile for [Entity]",
			"the [Number]th percentile of [Field] of [Entity]",
		},
		Phys: []*Physical{physPreAgg("Percentile"), physLLMAgg("Percentile")},
	})
	register(&Spec{
		Name: "OrderBy",
		LRs: []string{
			"sort [Entity] [Condition]",
			"order [Entity] by [Field]",
		},
		Phys: []*Physical{physPreOrderBy(), physLLMOrderBy()},
	})
	register(&Spec{
		Name: "Classify",
		LRs: []string{
			"the type of [Entity]",
			"the [Attribute] of [Entity]",
		},
		Phys: []*Physical{physRuleClassify(), physSemanticClassify()},
	})
	register(&Spec{
		Name: "Extract",
		LRs: []string{
			"get [Entity] from documents",
			"extract [Entity] from [Entity]",
			"the distinct [Attribute]s of [Entity]",
		},
		Phys: []*Physical{physPreExtract(), physLLMExtract(), physDistinctValues(), physRuleDistinct()},
	})
	register(&Spec{
		Name: "TopK",
		LRs: []string{
			"the top [Number] [Entity]",
			"the top [Number] of [Entity] by [Field]",
		},
		Phys: []*Physical{physPreTopK(), physLLMTopK()},
	})
	register(&Spec{
		Name: "Join",
		LRs: []string{
			"[Entity] that also occurs in [Entity]",
		},
		Phys: []*Physical{physKeyJoin(), physSemanticJoin()},
	})
	register(&Spec{
		Name: "Union",
		LRs: []string{
			"set union of [Entity] and [Entity]",
			"the union of [Entity] and [Entity]",
		},
		Phys: []*Physical{physSetOp("union", false), physSetOp("union", true)},
	})
	register(&Spec{
		Name: "Intersection",
		LRs: []string{
			"in set [Entity] and in [Entity]",
			"the intersection of [Entity] and [Entity]",
		},
		Phys: []*Physical{physSetOp("intersection", false), physSetOp("intersection", true)},
	})
	register(&Spec{
		Name: "Complementary",
		LRs: []string{
			"in set [Entity] not in [Entity]",
			"the elements of [Entity] not in [Entity]",
		},
		Phys: []*Physical{physSetOp("complement", false), physSetOp("complement", true)},
	})
	register(&Spec{
		Name: "Compute",
		LRs: []string{
			"sum of squares of [Entity]",
			"the ratio of [Entity] to [Entity]",
			"compute [Entity] over [Entity]",
		},
		Phys: []*Physical{physPreCompute(), physLLMCompute()},
	})
	register(&Spec{
		Name: "Generate",
		LRs: []string{
			"explain the result",
			"answer [Condition] from context",
		},
		Phys: []*Physical{physGenerate()},
	})
}
