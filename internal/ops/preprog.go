package ops

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"unify/internal/expr"
	"unify/internal/lexicon"
	"unify/internal/nlcond"
	"unify/internal/values"
)

// This file implements the pre-programmed physical operators: fixed
// algorithmic implementations (regex field extraction, hash grouping,
// sorting, arithmetic) that need no semantic understanding, mirroring
// classic database operators (paper §IV-B1).

func docText(env *Env, id int) (string, error) {
	d, ok := env.Store.Doc(id)
	if !ok {
		return "", fmt.Errorf("ops: unknown document %d", id)
	}
	return d.Text, nil
}

// fieldOf extracts a numeric field from a document by regex.
func fieldOf(env *Env, id int, field string) (float64, bool) {
	d, ok := env.Store.Doc(id)
	if !ok {
		return 0, false
	}
	return nlcond.ExtractField(d.Text, field)
}

func parseCond(args Args) (nlcond.Cond, bool) {
	return nlcond.Parse(args.Get("Condition"))
}

func wantDocsOrGroups(_ Args, inputs []values.Value) bool {
	return len(inputs) >= 1 && (inputs[0].Kind == values.Docs || inputs[0].Kind == values.Groups)
}

// --- Scan ---

func physLinearScan() *Physical {
	return &Physical{
		Name: "LinearScan",
		Adequate: func(args Args, inputs []values.Value) bool {
			// A bare scan is only adequate when there is no condition to
			// honor; conditioned scans need a filtering implementation.
			return args.Get("Condition") == "" &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(_ context.Context, _ *Env, _ Args, inputs []values.Value) (values.Value, error) {
			return inputs[0], nil
		},
	}
}

func physIndexScan() *Physical {
	return &Physical{
		Name: "IndexScan",
		Adequate: func(args Args, inputs []values.Value) bool {
			// Raw candidate generation without verification is only
			// semantically adequate when explicitly requested (the
			// recall/latency ablation); normal plans verify candidates
			// through IndexFilter.
			_, hasK := args.Int("_scanK")
			return hasK && args.Get("_raw") == "1" &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			k, _ := args.Int("_scanK")
			res := env.Store.SearchDocs(args.Get("Condition"), k)
			in := make(map[int]bool, len(inputs[0].DocIDs))
			for _, id := range inputs[0].DocIDs {
				in[id] = true
			}
			var ids []int
			for _, r := range res {
				if in[r.ID] {
					ids = append(ids, r.ID)
				}
			}
			sort.Ints(ids)
			return values.NewDocs(ids), nil
		},
	}
}

// --- Filter ---

// physExactFilter evaluates structured (numeric/year) conditions exactly
// with regular expressions.
func physExactFilter() *Physical {
	return &Physical{
		Name: "ExactFilter",
		Adequate: func(args Args, inputs []values.Value) bool {
			c, ok := parseCond(args)
			return ok && c.Structured() && wantDocsOrGroups(args, inputs)
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			c, ok := parseCond(args)
			if !ok || !c.Structured() {
				return values.Value{}, fmt.Errorf("ops: ExactFilter on non-structured condition %q", args.Get("Condition"))
			}
			keep := func(id int) (bool, error) {
				text, err := docText(env, id)
				if err != nil {
					return false, err
				}
				return c.EvalStructured(text), nil
			}
			return filterValue(inputs[0], keep)
		},
	}
}

// physKeywordFilter matches only the concept's name word — a cheap but
// semantically inadequate approximation kept for ablations; the optimizer
// never selects it for semantic conditions unless explicitly allowed.
func physKeywordFilter() *Physical {
	return &Physical{
		Name: "KeywordFilter",
		Adequate: func(args Args, inputs []values.Value) bool {
			c, ok := parseCond(args)
			return ok && c.Kind == nlcond.Concept && args.Get("_keyword") == "1" &&
				wantDocsOrGroups(args, inputs)
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			c, _ := parseCond(args)
			re := regexp.MustCompile(`(?i)\b` + regexp.QuoteMeta(c.Concept) + `\b`)
			keep := func(id int) (bool, error) {
				text, err := docText(env, id)
				if err != nil {
					return false, err
				}
				return re.MatchString(text), nil
			}
			return filterValue(inputs[0], keep)
		},
	}
}

// filterValue applies a per-document predicate to Docs or Groups input.
func filterValue(in values.Value, keep func(id int) (bool, error)) (values.Value, error) {
	switch in.Kind {
	case values.Docs:
		var out []int
		for _, id := range in.DocIDs {
			ok, err := keep(id)
			if err != nil {
				return values.Value{}, err
			}
			if ok {
				out = append(out, id)
			}
		}
		return values.NewDocs(out), nil
	case values.Groups:
		groups := make([]values.Group, 0, len(in.GroupVal))
		for _, g := range in.GroupVal {
			var sub []int
			for _, id := range g.DocIDs {
				ok, err := keep(id)
				if err != nil {
					return values.Value{}, err
				}
				if ok {
					sub = append(sub, id)
				}
			}
			groups = append(groups, values.Group{Label: g.Label, DocIDs: sub})
		}
		return values.NewGroups(groups), nil
	default:
		return values.Value{}, fmt.Errorf("ops: cannot filter %s value", in.Kind)
	}
}

// --- GroupBy ---

// groupByField groups documents by an exact numeric attribute.
func groupByField(env *Env, ids []int, field string) (values.Value, error) {
	buckets := map[string][]int{}
	for _, id := range ids {
		v, ok := fieldOf(env, id, field)
		if !ok {
			continue
		}
		label := fmt.Sprintf("%g", v)
		buckets[label] = append(buckets[label], id)
	}
	groups := make([]values.Group, 0, len(buckets))
	for label, members := range buckets {
		groups = append(groups, values.Group{Label: label, DocIDs: members})
	}
	return values.NewGroups(groups), nil
}

func structuredAttr(attr string) bool {
	switch strings.ToLower(strings.TrimSpace(attr)) {
	case "year", "score", "views":
		return true
	}
	return false
}

func physHashGroupBy() *Physical {
	return &Physical{
		Name: "HashGroupBy",
		Adequate: func(args Args, inputs []values.Value) bool {
			return structuredAttr(args.Get("Attribute")) &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			return groupByField(env, inputs[0].DocIDs, strings.ToLower(args.Get("Attribute")))
		},
	}
}

// physSortGroupBy sorts by the attribute and groups adjacent runs —
// equivalent output to HashGroupBy, different cost profile.
func physSortGroupBy() *Physical {
	return &Physical{
		Name: "SortGroupBy",
		Adequate: func(args Args, inputs []values.Value) bool {
			return structuredAttr(args.Get("Attribute")) &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			field := strings.ToLower(args.Get("Attribute"))
			ids := append([]int(nil), inputs[0].DocIDs...)
			type kv struct {
				id int
				v  float64
			}
			var pairs []kv
			for _, id := range ids {
				if v, ok := fieldOf(env, id, field); ok {
					pairs = append(pairs, kv{id, v})
				}
			}
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].v != pairs[j].v {
					return pairs[i].v < pairs[j].v
				}
				return pairs[i].id < pairs[j].id
			})
			var groups []values.Group
			for i := 0; i < len(pairs); {
				j := i
				for j < len(pairs) && pairs[j].v == pairs[i].v {
					j++
				}
				members := make([]int, 0, j-i)
				for k := i; k < j; k++ {
					members = append(members, pairs[k].id)
				}
				groups = append(groups, values.Group{Label: fmt.Sprintf("%g", pairs[i].v), DocIDs: members})
				i = j
			}
			return values.NewGroups(groups), nil
		},
	}
}

// --- Aggregates ---

// aggScalar computes an aggregate over a value list.
func aggScalar(kind string, vals []float64, p int) float64 {
	if len(vals) == 0 {
		return 0
	}
	switch kind {
	case "Sum":
		var t float64
		for _, v := range vals {
			t += v
		}
		return t
	case "Average":
		var t float64
		for _, v := range vals {
			t += v
		}
		return t / float64(len(vals))
	case "Max":
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return m
	case "Min":
		m := vals[0]
		for _, v := range vals {
			if v < m {
				m = v
			}
		}
		return m
	case "Median":
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		mid := len(s) / 2
		if len(s)%2 == 1 {
			return s[mid]
		}
		return (s[mid-1] + s[mid]) / 2
	case "Percentile":
		s := append([]float64(nil), vals...)
		sort.Float64s(s)
		idx := (p*len(s) + 99) / 100
		if idx < 1 {
			idx = 1
		}
		if idx > len(s) {
			idx = len(s)
		}
		return s[idx-1]
	default:
		return 0
	}
}

// docVals extracts the aggregate field from each document.
func docVals(env *Env, ids []int, field string) []float64 {
	var out []float64
	for _, id := range ids {
		if v, ok := fieldOf(env, id, field); ok {
			out = append(out, v)
		}
	}
	return out
}

func aggField(args Args) string {
	f := strings.ToLower(args.Get("Field"))
	if f == "" {
		f = "views"
	}
	return f
}

// physPreAgg aggregates Docs to a scalar or Groups to a per-label vector
// using regex field extraction.
func physPreAgg(kind string) *Physical {
	return &Physical{
		Name: "Pre" + kind,
		Adequate: func(args Args, inputs []values.Value) bool {
			return wantDocsOrGroups(args, inputs)
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			p, _ := args.Int("Number")
			field := aggField(args)
			agg := func(ids []int) float64 {
				if kind == "Count" {
					return float64(len(ids))
				}
				return aggScalar(kind, docVals(env, ids, field), p)
			}
			switch in := inputs[0]; in.Kind {
			case values.Docs:
				return values.NewNum(agg(in.DocIDs)), nil
			case values.Groups:
				vec := make([]values.LabeledNum, 0, len(in.GroupVal))
				for _, g := range in.GroupVal {
					vec = append(vec, values.LabeledNum{Label: g.Label, Num: agg(g.DocIDs)})
				}
				return values.NewVec(vec), nil
			default:
				return values.Value{}, fmt.Errorf("ops: %s over %s value", kind, in.Kind)
			}
		},
	}
}

// physPreArg resolves Max/Min over a labeled vector to its extreme label.
func physPreArg(kind string) *Physical {
	return &Physical{
		Name: "PreArg" + kind,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && inputs[0].Kind == values.Vec
		},
		Run: func(_ context.Context, _ *Env, _ Args, inputs []values.Value) (values.Value, error) {
			vec := inputs[0].VecVal
			if len(vec) == 0 {
				return values.Value{}, fmt.Errorf("ops: %s over empty vector", kind)
			}
			best := vec[0]
			for _, e := range vec[1:] {
				if (kind == "Max" && e.Num > best.Num) || (kind == "Min" && e.Num < best.Num) {
					best = e
				}
			}
			return values.NewStr(best.Label), nil
		},
	}
}

// --- OrderBy / TopK ---

func sortedDocs(env *Env, ids []int, field string, desc bool) []int {
	type kv struct {
		id int
		v  float64
	}
	pairs := make([]kv, 0, len(ids))
	for _, id := range ids {
		if v, ok := fieldOf(env, id, field); ok {
			pairs = append(pairs, kv{id, v})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			if desc {
				return pairs[i].v > pairs[j].v
			}
			return pairs[i].v < pairs[j].v
		}
		return pairs[i].id < pairs[j].id
	})
	out := make([]int, len(pairs))
	for i, p := range pairs {
		out[i] = p.id
	}
	return out
}

func sortedVec(vec []values.LabeledNum, desc bool) []values.LabeledNum {
	out := append([]values.LabeledNum(nil), vec...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Num != out[j].Num {
			if desc {
				return out[i].Num > out[j].Num
			}
			return out[i].Num < out[j].Num
		}
		return out[i].Label < out[j].Label
	})
	return out
}

func isDesc(args Args) bool {
	return !strings.Contains(strings.ToLower(args.Get("Condition")), "asc")
}

func physPreOrderBy() *Physical {
	return &Physical{
		Name: "PreOrderBy",
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && (inputs[0].Kind == values.Docs || inputs[0].Kind == values.Vec)
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			desc := isDesc(args)
			switch in := inputs[0]; in.Kind {
			case values.Docs:
				return values.NewDocs(sortedDocs(env, in.DocIDs, aggField(args), desc)), nil
			case values.Vec:
				return values.Value{Kind: values.Vec, VecVal: sortedVec(in.VecVal, desc)}, nil
			default:
				return values.Value{}, fmt.Errorf("ops: OrderBy over %s value", in.Kind)
			}
		},
	}
}

func physPreTopK() *Physical {
	return &Physical{
		Name: "PreTopK",
		Adequate: func(args Args, inputs []values.Value) bool {
			_, hasK := args.Int("Number")
			return hasK && len(inputs) >= 1 &&
				(inputs[0].Kind == values.Docs || inputs[0].Kind == values.Vec)
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			k, _ := args.Int("Number")
			desc := isDesc(args)
			switch in := inputs[0]; in.Kind {
			case values.Docs:
				ids := sortedDocs(env, in.DocIDs, aggField(args), desc)
				if k > len(ids) {
					k = len(ids)
				}
				return values.Value{Kind: values.Docs, DocIDs: ids[:k]}, nil
			case values.Vec:
				vec := sortedVec(in.VecVal, desc)
				if k > len(vec) {
					k = len(vec)
				}
				labels := make([]string, k)
				for i := 0; i < k; i++ {
					labels[i] = vec[i].Label
				}
				return values.Value{Kind: values.Labels, LabelVal: labels}, nil
			default:
				return values.Value{}, fmt.Errorf("ops: TopK over %s value", in.Kind)
			}
		},
	}
}

// --- Classify / Extract ---

// physRuleClassify matches only class names verbatim — the "rule-based"
// implementation of Table II; inadequate for semantic classification
// unless the document happens to name its class.
func physRuleClassify() *Physical {
	return &Physical{
		Name: "RuleClassify",
		Adequate: func(args Args, _ []values.Value) bool {
			return args.Get("_rule") == "1"
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			if len(inputs) < 1 || inputs[0].Kind != values.Docs || len(inputs[0].DocIDs) == 0 {
				return values.Value{}, fmt.Errorf("ops: RuleClassify needs a document")
			}
			text, err := docText(env, inputs[0].DocIDs[0])
			if err != nil {
				return values.Value{}, err
			}
			for _, label := range classLabels(args.Get("Attribute")) {
				if regexp.MustCompile(`(?i)\b` + regexp.QuoteMeta(label) + `\b`).MatchString(text) {
					return values.NewStr(label), nil
				}
			}
			return values.NewStr("unknown"), nil
		},
	}
}

// physRuleDistinct is the rule-based distinct-value extraction: a label
// counts only when its name appears verbatim — cheap, low recall, kept
// for ablations (mirrors RuleClassify).
func physRuleDistinct() *Physical {
	return &Physical{
		Name: "RuleDistinct",
		Adequate: func(args Args, inputs []values.Value) bool {
			return args.Get("_rule") == "1" && classAttr(args.Get("Attribute")) &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			labels := classLabels(args.Get("Attribute"))
			res := map[string]bool{}
			for _, id := range inputs[0].DocIDs {
				text, err := docText(env, id)
				if err != nil {
					return values.Value{}, err
				}
				for _, l := range labels {
					if !res[l] && regexp.MustCompile(`(?i)\b`+regexp.QuoteMeta(l)+`\b`).MatchString(text) {
						res[l] = true
					}
				}
			}
			out := make([]string, 0, len(res))
			for l := range res {
				out = append(out, l)
			}
			sort.Strings(out)
			return values.NewLabels(out), nil
		},
	}
}

// physPreExtract handles structural extraction: distinct group labels and
// regex field/title extraction from a single document.
func physPreExtract() *Physical {
	return &Physical{
		Name: "PreExtract",
		Adequate: func(args Args, inputs []values.Value) bool {
			if len(inputs) < 1 {
				return false
			}
			if inputs[0].Kind == values.Groups {
				return true
			}
			attr := strings.ToLower(args.Get("Attribute"))
			return inputs[0].Kind == values.Docs &&
				(attr == "title" || attr == "views" || attr == "score" || attr == "year")
		},
		Run: func(_ context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			in := inputs[0]
			if in.Kind == values.Groups {
				labels := make([]string, 0, len(in.GroupVal))
				for _, g := range in.GroupVal {
					labels = append(labels, g.Label)
				}
				return values.NewLabels(labels), nil
			}
			if len(in.DocIDs) == 0 {
				return values.Value{}, fmt.Errorf("ops: Extract from empty document list")
			}
			attr := strings.ToLower(args.Get("Attribute"))
			d, ok := env.Store.Doc(in.DocIDs[0])
			if !ok {
				return values.Value{}, fmt.Errorf("ops: unknown document %d", in.DocIDs[0])
			}
			if attr == "title" {
				return values.NewStr(d.Title), nil
			}
			v, ok := nlcond.ExtractField(d.Text, attr)
			if !ok {
				return values.Value{}, fmt.Errorf("ops: field %q absent from document %d", attr, d.ID)
			}
			return values.NewNum(v), nil
		},
	}
}

// --- Join / set operations ---

func physKeyJoin() *Physical {
	return &Physical{
		Name: "KeyJoin",
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 2 && inputs[0].Kind == inputs[1].Kind &&
				(inputs[0].Kind == values.Docs || inputs[0].Kind == values.Labels || inputs[0].Kind == values.Vec)
		},
		Run: func(_ context.Context, _ *Env, _ Args, inputs []values.Value) (values.Value, error) {
			return setOpValues("intersection", inputs[0], inputs[1])
		},
	}
}

// setOpValues performs a set operation over two same-kind values.
func setOpValues(op string, a, b values.Value) (values.Value, error) {
	switch {
	case a.Kind == values.Docs && b.Kind == values.Docs:
		inB := make(map[int]bool, len(b.DocIDs))
		for _, id := range b.DocIDs {
			inB[id] = true
		}
		var out []int
		switch op {
		case "union":
			seen := map[int]bool{}
			for _, id := range append(append([]int{}, a.DocIDs...), b.DocIDs...) {
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		case "intersection":
			for _, id := range a.DocIDs {
				if inB[id] {
					out = append(out, id)
				}
			}
		default:
			for _, id := range a.DocIDs {
				if !inB[id] {
					out = append(out, id)
				}
			}
		}
		sort.Ints(out)
		return values.NewDocs(out), nil
	case (a.Kind == values.Labels || a.Kind == values.Vec) && (b.Kind == values.Labels || b.Kind == values.Vec):
		al, bl := labelList(a), labelList(b)
		inB := make(map[string]bool, len(bl))
		for _, l := range bl {
			inB[l] = true
		}
		var out []string
		switch op {
		case "union":
			seen := map[string]bool{}
			for _, l := range append(append([]string{}, al...), bl...) {
				if !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
		case "intersection":
			for _, l := range al {
				if inB[l] {
					out = append(out, l)
				}
			}
		default:
			for _, l := range al {
				if !inB[l] {
					out = append(out, l)
				}
			}
		}
		sort.Strings(out)
		return values.NewLabels(out), nil
	default:
		return values.Value{}, fmt.Errorf("ops: set operation over %s and %s", a.Kind, b.Kind)
	}
}

func labelList(v values.Value) []string {
	if v.Kind == values.Labels {
		return v.LabelVal
	}
	out := make([]string, len(v.VecVal))
	for i, e := range v.VecVal {
		out[i] = e.Label
	}
	return out
}

// --- Compare / Compute ---

func physNumericCompare() *Physical {
	return &Physical{
		Name: "NumericCompare",
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 2 && inputs[0].Kind == values.Num && inputs[1].Kind == values.Num
		},
		Run: func(_ context.Context, _ *Env, _ Args, inputs []values.Value) (values.Value, error) {
			if inputs[0].NumVal >= inputs[1].NumVal {
				return values.NewStr("first"), nil
			}
			return values.NewStr("second"), nil
		},
	}
}

func physPreCompute() *Physical {
	return &Physical{
		Name: "PreCompute",
		Adequate: func(_ Args, inputs []values.Value) bool {
			if len(inputs) < 2 {
				return false
			}
			sameNum := inputs[0].Kind == values.Num && inputs[1].Kind == values.Num
			sameVec := inputs[0].Kind == values.Vec && inputs[1].Kind == values.Vec
			return sameNum || sameVec
		},
		Run: func(_ context.Context, _ *Env, args Args, inputs []values.Value) (values.Value, error) {
			a, b := inputs[0], inputs[1]
			if a.Kind == values.Num {
				expression := args.Get("Expression")
				if expression == "" {
					expression = args.Get("Entity") + " / " + args.Get("Entity2")
				}
				bindings := map[string]float64{
					args.Get("Entity"):  a.NumVal,
					args.Get("Entity2"): b.NumVal,
				}
				v, err := expr.Eval(expression, bindings)
				if err != nil {
					return values.Value{}, err
				}
				return values.NewNum(v), nil
			}
			// Element-wise ratio over matching labels.
			bv := make(map[string]float64, len(b.VecVal))
			for _, e := range b.VecVal {
				bv[e.Label] = e.Num
			}
			var out []values.LabeledNum
			for _, e := range a.VecVal {
				if d, ok := bv[e.Label]; ok && d != 0 {
					out = append(out, values.LabeledNum{Label: e.Label, Num: e.Num / d})
				}
			}
			return values.NewVec(out), nil
		},
	}
}

// classLabels lists candidate labels for a surface class word, mirroring
// the lexicon's class naming from the query side.
func classLabels(classWord string) []string {
	switch strings.ToLower(strings.TrimSpace(classWord)) {
	case "sport":
		return lexNames("sport")
	case "field":
		return lexNames("aifield")
	case "area":
		return lexNames("lawarea")
	case "category":
		return lexNames("wikicat")
	case "topic":
		return append(append(append(lexNames("topic"), lexNames("aiaspect")...),
			lexNames("lawaspect")...), lexNames("wikiaspect")...)
	default:
		return nil
	}
}

func lexNames(class string) []string { return lexicon.Names(class) }
