package ops

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"unify/internal/corpus"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/values"
)

// testEnv builds a small sports environment with a noise-free model.
func testEnv(t *testing.T, n int) (*Env, *corpus.Dataset) {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents(), docstore.WithoutSentences())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig()
	cfg.FilterNoise, cfg.LabelNoise = 0, 0
	return &Env{Store: store, Client: llm.NewSim(cfg), BatchSize: 16}, ds
}

func phys(t *testing.T, op, name string) *Physical {
	t.Helper()
	spec, ok := Get(op)
	if !ok {
		t.Fatalf("operator %s missing", op)
	}
	for _, p := range spec.Phys {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("%s has no physical %s", op, name)
	return nil
}

func allDocs(env *Env) values.Value { return values.NewDocs(env.Store.IDs()) }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"Scan", "Filter", "Compare", "GroupBy", "Count", "Sum", "Max", "Min",
		"Average", "Median", "Percentile", "OrderBy", "Classify", "Extract",
		"TopK", "Join", "Union", "Intersection", "Complementary", "Compute",
		"Generate",
	}
	if len(Names()) != 21 {
		t.Errorf("registry has %d operators, want 21 (Table II)", len(Names()))
	}
	for _, name := range want {
		spec, ok := Get(name)
		if !ok {
			t.Errorf("operator %s missing", name)
			continue
		}
		if len(spec.LRs) == 0 || len(spec.Phys) == 0 {
			t.Errorf("operator %s incomplete", name)
		}
		if len(spec.Templates) != len(spec.LRs) {
			t.Errorf("operator %s: %d templates for %d LRs", name, len(spec.Templates), len(spec.LRs))
		}
	}
}

func TestDualImplementations(t *testing.T) {
	// Every operator except Scan/Generate must offer both families.
	for _, spec := range All() {
		if spec.Name == "Generate" {
			continue
		}
		var pre, sem bool
		for _, p := range spec.Phys {
			if p.LLMBased {
				sem = true
			} else {
				pre = true
			}
		}
		if !pre && spec.Name != "Generate" {
			t.Errorf("%s lacks a pre-programmed implementation", spec.Name)
		}
		if !sem && spec.Name != "Scan" {
			t.Errorf("%s lacks an LLM-based implementation", spec.Name)
		}
	}
}

func TestExactFilter(t *testing.T) {
	env, ds := testEnv(t, 120)
	p := phys(t, "Filter", "ExactFilter")
	args := Args{"Condition": "with more than 400 views"}
	out, err := p.Run(context.Background(), env, args, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, d := range ds.Docs {
		if d.Hidden.Views > 400 {
			want++
		}
	}
	if out.Len() != want {
		t.Errorf("exact filter kept %d, want %d", out.Len(), want)
	}
	// Semantic condition must be inadequate for ExactFilter.
	if p.Adequate(Args{"Condition": "related to injury"}, []values.Value{allDocs(env)}) {
		t.Error("ExactFilter adequate for semantic condition")
	}
}

func TestSemanticFilterMatchesJudge(t *testing.T) {
	env, _ := testEnv(t, 100)
	p := phys(t, "Filter", "SemanticFilter")
	out, err := p.Run(context.Background(), env, Args{"Condition": "related to injury"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != values.Docs || out.Len() == 0 {
		t.Fatalf("semantic filter output %v", out.Kind)
	}
	// Per-doc vs batched judgments must agree (noise off).
	single := 0
	for _, id := range env.Store.IDs() {
		d, _ := env.Store.Doc(id)
		resp, err := env.Client.Complete(context.Background(), llm.BuildPrompt("filter_doc", map[string]string{
			"condition": "related to injury", "doc": d.Text,
		}))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Text == "yes" {
			single++
		}
	}
	if out.Len() != single {
		t.Errorf("batched %d vs single %d", out.Len(), single)
	}
}

func TestIndexFilterSubsetOfSemantic(t *testing.T) {
	env, _ := testEnv(t, 300)
	sem := phys(t, "Filter", "SemanticFilter")
	idx := phys(t, "Filter", "IndexFilter")
	full, err := sem.Run(context.Background(), env, Args{"Condition": "related to golf"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	k := fmt.Sprint(3 * full.Len())
	approx, err := idx.Run(context.Background(), env, Args{"Condition": "related to golf", "_scanK": k}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	inFull := map[int]bool{}
	for _, id := range full.DocIDs {
		inFull[id] = true
	}
	for _, id := range approx.DocIDs {
		if !inFull[id] {
			t.Errorf("IndexFilter returned %d not in the exact result", id)
		}
	}
	recall := float64(approx.Len()) / float64(full.Len())
	if recall < 0.7 {
		t.Errorf("IndexFilter recall %.2f too low (%d of %d)", recall, approx.Len(), full.Len())
	}
}

func TestGroupByAndAggregates(t *testing.T) {
	env, _ := testEnv(t, 150)
	g := phys(t, "GroupBy", "SemanticGroupBy")
	groups, err := g.Run(context.Background(), env, Args{"Attribute": "sport"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if groups.Kind != values.Groups || groups.Len() < 3 {
		t.Fatalf("groups = %v (%d)", groups.Kind, groups.Len())
	}
	cnt := phys(t, "Count", "PreCount")
	vec, err := cnt.Run(context.Background(), env, Args{}, []values.Value{groups})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Kind != values.Vec || vec.Len() != groups.Len() {
		t.Fatalf("per-group count = %v", vec)
	}
	total := 0.0
	for _, e := range vec.VecVal {
		total += e.Num
	}
	if int(total) != groups.TotalDocs() {
		t.Errorf("counts sum %v != %d grouped docs", total, groups.TotalDocs())
	}
	// ArgMax over the vector.
	arg := phys(t, "Max", "PreArgMax")
	top, err := arg.Run(context.Background(), env, Args{}, []values.Value{vec})
	if err != nil {
		t.Fatal(err)
	}
	if top.Kind != values.Str || top.StrVal == "" {
		t.Fatalf("argmax = %v", top)
	}
}

func TestHashAndSortGroupByAgree(t *testing.T) {
	env, _ := testEnv(t, 80)
	h := phys(t, "GroupBy", "HashGroupBy")
	s := phys(t, "GroupBy", "SortGroupBy")
	in := []values.Value{allDocs(env)}
	gh, err1 := h.Run(context.Background(), env, Args{"Attribute": "year"}, in)
	gs, err2 := s.Run(context.Background(), env, Args{"Attribute": "year"}, in)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if gh.Len() != gs.Len() {
		t.Fatalf("hash %d groups vs sort %d", gh.Len(), gs.Len())
	}
	for i := range gh.GroupVal {
		if gh.GroupVal[i].Label != gs.GroupVal[i].Label ||
			len(gh.GroupVal[i].DocIDs) != len(gs.GroupVal[i].DocIDs) {
			t.Fatalf("group %d differs", i)
		}
	}
}

func TestPreAndLLMAggregatesAgree(t *testing.T) {
	env, _ := testEnv(t, 60)
	in := []values.Value{allDocs(env)}
	for _, kind := range []string{"Count", "Sum", "Average", "Max", "Min", "Median"} {
		pre := phys(t, kind, "Pre"+kind)
		sem := phys(t, kind, "Semantic"+kind)
		args := Args{"Field": "views"}
		a, err1 := pre.Run(context.Background(), env, args, in)
		b, err2 := sem.Run(context.Background(), env, args, in)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", kind, err1, err2)
		}
		if a.NumVal != b.NumVal {
			t.Errorf("%s: pre %v vs llm %v", kind, a.NumVal, b.NumVal)
		}
	}
	// Percentile with its rank argument.
	pre := phys(t, "Percentile", "PrePercentile")
	sem := phys(t, "Percentile", "SemanticPercentile")
	args := Args{"Field": "views", "Number": "90"}
	a, _ := pre.Run(context.Background(), env, args, in)
	b, _ := sem.Run(context.Background(), env, args, in)
	if a.NumVal != b.NumVal {
		t.Errorf("percentile: pre %v vs llm %v", a.NumVal, b.NumVal)
	}
}

func TestTopKAndOrderBy(t *testing.T) {
	env, ds := testEnv(t, 90)
	topk := phys(t, "TopK", "PreTopK")
	out, err := topk.Run(context.Background(), env, Args{"Number": "5", "Field": "views"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("topk returned %d", out.Len())
	}
	best := 0
	for _, d := range ds.Docs {
		if d.Hidden.Views > best {
			best = d.Hidden.Views
		}
	}
	d0, _ := env.Store.Doc(out.DocIDs[0])
	_ = d0
	if v, _ := fieldOf(env, out.DocIDs[0], "views"); int(v) != best {
		t.Errorf("top-1 views %v, want %d", v, best)
	}
	ob := phys(t, "OrderBy", "PreOrderBy")
	sorted, err := ob.Run(context.Background(), env, Args{"Field": "views", "Condition": "descending"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	prev := 1 << 60
	for _, id := range sorted.DocIDs {
		v, _ := fieldOf(env, id, "views")
		if int(v) > prev {
			t.Fatal("OrderBy not descending")
		}
		prev = int(v)
	}
}

func TestSetOps(t *testing.T) {
	env, _ := testEnv(t, 10)
	a := values.NewDocs([]int{1, 2, 3, 4})
	b := values.NewDocs([]int{3, 4, 5})
	cases := map[string]int{"Union": 5, "Intersection": 2, "Complementary": 2}
	for op, want := range cases {
		p := phys(t, op, "Pre"+op)
		out, err := p.Run(context.Background(), env, Args{}, []values.Value{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != want {
			t.Errorf("%s = %d docs, want %d", op, out.Len(), want)
		}
	}
	// Label variants.
	la := values.NewLabels([]string{"football", "tennis"})
	lb := values.NewLabels([]string{"tennis", "golf"})
	p := phys(t, "Intersection", "PreIntersection")
	out, _ := p.Run(context.Background(), env, Args{}, []values.Value{la, lb})
	if out.String() != "tennis" {
		t.Errorf("label intersection = %q", out.String())
	}
}

func TestCompareAndCompute(t *testing.T) {
	env, _ := testEnv(t, 5)
	cmp := phys(t, "Compare", "NumericCompare")
	out, _ := cmp.Run(context.Background(), env, Args{}, []values.Value{values.NewNum(5), values.NewNum(3)})
	if out.StrVal != "first" {
		t.Errorf("compare = %q", out.StrVal)
	}
	cpt := phys(t, "Compute", "PreCompute")
	args := Args{"Entity": "{v1}", "Entity2": "{v2}", "Expression": "{v1} / {v2}"}
	out, err := cpt.Run(context.Background(), env, args, []values.Value{values.NewNum(10), values.NewNum(4)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVal != 2.5 {
		t.Errorf("compute = %v", out.NumVal)
	}
	// Vector ratio.
	va := values.NewVec([]values.LabeledNum{{Label: "a", Num: 4}, {Label: "b", Num: 9}})
	vb := values.NewVec([]values.LabeledNum{{Label: "a", Num: 2}, {Label: "b", Num: 3}, {Label: "c", Num: 1}})
	out, err = cpt.Run(context.Background(), env, args, []values.Value{va, vb})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.VecVal[0].Num != 2 || out.VecVal[1].Num != 3 {
		t.Errorf("vector ratio = %v", out.VecVal)
	}
}

func TestExtractAndClassify(t *testing.T) {
	env, ds := testEnv(t, 40)
	// Title of a single doc.
	pre := phys(t, "Extract", "PreExtract")
	out, err := pre.Run(context.Background(), env, Args{"Attribute": "title"}, []values.Value{values.NewDocs([]int{3})})
	if err != nil {
		t.Fatal(err)
	}
	if out.StrVal != ds.Docs[3].Title {
		t.Errorf("title = %q, want %q", out.StrVal, ds.Docs[3].Title)
	}
	// Distinct labels over docs.
	dv := phys(t, "Extract", "SemanticDistinct")
	out, err = dv.Run(context.Background(), env, Args{"Attribute": "sport"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != values.Labels || out.Len() < 3 {
		t.Errorf("distinct = %v", out)
	}
	// Classify a single doc.
	cl := phys(t, "Classify", "SemanticClassify")
	out, err = cl.Run(context.Background(), env, Args{"Attribute": "sport"}, []values.Value{values.NewDocs([]int{0})})
	if err != nil {
		t.Fatal(err)
	}
	if out.StrVal != ds.Docs[0].Hidden.Category {
		t.Logf("classify = %q vs hidden %q (text ambiguity possible)", out.StrVal, ds.Docs[0].Hidden.Category)
	}
}

func TestGenerateFallback(t *testing.T) {
	env, _ := testEnv(t, 60)
	g := phys(t, "Generate", "Generate")
	out, err := g.Run(context.Background(), env, Args{"Condition": "How many questions are about football?"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != values.Str || out.StrVal == "" {
		t.Errorf("generate = %v", out)
	}
}

func TestGroupedFilterSubset(t *testing.T) {
	env, _ := testEnv(t, 150)
	g := phys(t, "GroupBy", "SemanticGroupBy")
	groups, err := g.Run(context.Background(), env, Args{"Attribute": "sport"}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	f := phys(t, "Filter", "SemanticFilter")
	out, err := f.Run(context.Background(), env, Args{"Condition": "involving a ball"}, []values.Value{groups})
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != values.Groups {
		t.Fatalf("subset filter output %v", out.Kind)
	}
	for _, gr := range out.GroupVal {
		switch gr.Label {
		case "swimming", "running", "cycling", "hockey":
			t.Errorf("non-ball sport %q survived the subset filter", gr.Label)
		}
	}
}

// TestCustomOperatorRegistration exercises the extensibility hook of
// §IV-B3: a new operator with its own logical representation and physical
// implementation.
func TestCustomOperatorRegistration(t *testing.T) {
	spec := &Spec{
		Name: "WordCount",
		LRs:  []string{"the number of words in [Entity]"},
		Phys: []*Physical{{
			Name: "PreWordCount",
			Adequate: func(_ Args, inputs []values.Value) bool {
				return len(inputs) >= 1 && inputs[0].Kind == values.Docs
			},
			Run: func(_ context.Context, env *Env, _ Args, inputs []values.Value) (values.Value, error) {
				total := 0
				for _, id := range inputs[0].DocIDs {
					text, err := docText(env, id)
					if err != nil {
						return values.Value{}, err
					}
					total += len(strings.Fields(text))
				}
				return values.NewNum(float64(total)), nil
			},
		}},
	}
	if err := Register(spec); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := Unregister("WordCount"); err != nil {
			t.Fatal(err)
		}
	}()
	got, ok := Get("WordCount")
	if !ok || got.Template(spec.LRs[0]) == nil {
		t.Fatal("custom operator not retrievable")
	}
	env, _ := testEnv(t, 10)
	out, err := got.Phys[0].Run(context.Background(), env, Args{}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVal <= 0 {
		t.Errorf("word count = %v", out.NumVal)
	}
	// Invalid registrations are rejected.
	if err := Register(spec); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := Register(&Spec{Name: "X"}); err == nil {
		t.Error("spec without LRs accepted")
	}
	if err := Unregister("Filter"); err == nil {
		t.Error("built-in unregistered")
	}
}

func TestSemanticArgMaxMatchesPre(t *testing.T) {
	env, _ := testEnv(t, 5)
	vec := values.NewVec([]values.LabeledNum{
		{Label: "a", Num: 3}, {Label: "b", Num: 9}, {Label: "c", Num: 5},
	})
	for _, kind := range []string{"Max", "Min"} {
		pre := phys(t, kind, "PreArg"+kind)
		sem := phys(t, kind, "SemanticArg"+kind)
		a, err1 := pre.Run(context.Background(), env, Args{}, []values.Value{vec})
		b, err2 := sem.Run(context.Background(), env, Args{}, []values.Value{vec})
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", kind, err1, err2)
		}
		if a.StrVal != b.StrVal {
			t.Errorf("%s: pre %q vs semantic %q", kind, a.StrVal, b.StrVal)
		}
	}
	// Empty vector errors.
	pre := phys(t, "Max", "PreArgMax")
	if _, err := pre.Run(context.Background(), env, Args{}, []values.Value{values.NewVec(nil)}); err == nil {
		t.Error("empty-vector argmax accepted")
	}
}

func TestSemanticOrderByAndTopKMatchPre(t *testing.T) {
	env, _ := testEnv(t, 50)
	in := []values.Value{allDocs(env)}
	args := Args{"Field": "views", "Condition": "descending", "Number": "7"}
	preS, _ := phys(t, "OrderBy", "PreOrderBy").Run(context.Background(), env, args, in)
	semS, err := phys(t, "OrderBy", "SemanticOrderBy").Run(context.Background(), env, args, in)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(preS.DocIDs) != fmt.Sprint(semS.DocIDs) {
		t.Error("semantic sort disagrees with pre-programmed sort")
	}
	preK, _ := phys(t, "TopK", "PreTopK").Run(context.Background(), env, args, in)
	semK, err := phys(t, "TopK", "SemanticTopK").Run(context.Background(), env, args, in)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(preK.DocIDs) != fmt.Sprint(semK.DocIDs) {
		t.Error("semantic top-k disagrees with pre-programmed top-k")
	}
}

func TestSemanticSetOpsAndJoin(t *testing.T) {
	env, _ := testEnv(t, 5)
	a := values.NewLabels([]string{"football", "tennis", "golf"})
	b := values.NewLabels([]string{"tennis", "golf", "rugby"})
	sem := phys(t, "Intersection", "SemanticIntersection")
	out, err := sem.Run(context.Background(), env, Args{}, []values.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "golf, tennis" {
		t.Errorf("semantic intersection = %q", out.String())
	}
	join := phys(t, "Join", "SemanticJoin")
	out, err = join.Run(context.Background(), env, Args{}, []values.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("semantic join empty")
	}
	keyJoin := phys(t, "Join", "KeyJoin")
	out2, err := keyJoin.Run(context.Background(), env, Args{}, []values.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out2.String() != "golf, tennis" {
		t.Errorf("key join = %q", out2.String())
	}
}

func TestSemanticCompareAndCompute(t *testing.T) {
	env, _ := testEnv(t, 5)
	cmp := phys(t, "Compare", "SemanticCompare")
	out, err := cmp.Run(context.Background(), env, Args{}, []values.Value{values.NewNum(2), values.NewNum(8)})
	if err != nil {
		t.Fatal(err)
	}
	if out.StrVal != "second" {
		t.Errorf("semantic compare = %q", out.StrVal)
	}
	cpt := phys(t, "Compute", "SemanticCompute")
	args := Args{"Entity": "{v1}", "Entity2": "{v2}", "Expression": "{v1} / {v2}"}
	out, err = cpt.Run(context.Background(), env, args, []values.Value{values.NewNum(9), values.NewNum(3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumVal != 3 {
		t.Errorf("semantic compute = %v", out.NumVal)
	}
}

func TestKeywordFilterAndRuleClassify(t *testing.T) {
	env, ds := testEnv(t, 100)
	kw := phys(t, "Filter", "KeywordFilter")
	args := Args{"Condition": "related to football", "_keyword": "1"}
	out, err := kw.Run(context.Background(), env, args, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	// Keyword matching has lower recall than semantic matching: every hit
	// must literally contain "football".
	sem, _ := phys(t, "Filter", "SemanticFilter").Run(context.Background(), env,
		Args{"Condition": "related to football"}, []values.Value{allDocs(env)})
	if out.Len() > sem.Len() {
		t.Errorf("keyword filter (%d) above semantic (%d)", out.Len(), sem.Len())
	}
	_ = ds
	rc := phys(t, "Classify", "RuleClassify")
	rcArgs := Args{"Attribute": "sport", "_rule": "1"}
	v, err := rc.Run(context.Background(), env, rcArgs, []values.Value{values.NewDocs([]int{0})})
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != values.Str {
		t.Errorf("rule classify kind %v", v.Kind)
	}
	rd := phys(t, "Extract", "RuleDistinct")
	v, err = rd.Run(context.Background(), env, rcArgs, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != values.Labels {
		t.Errorf("rule distinct kind %v", v.Kind)
	}
}

func TestRawIndexScan(t *testing.T) {
	env, _ := testEnv(t, 200)
	sc := phys(t, "Scan", "IndexScan")
	args := Args{"Condition": "related to golf", "_scanK": "30", "_raw": "1"}
	out, err := sc.Run(context.Background(), env, args, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 || out.Len() > 30 {
		t.Errorf("raw index scan returned %d candidates", out.Len())
	}
	// Without the explicit raw flag the unverified scan is inadequate.
	if sc.Adequate(Args{"Condition": "related to golf", "_scanK": "30"}, []values.Value{allDocs(env)}) {
		t.Error("raw IndexScan adequate without _raw")
	}
}

func TestLinearScanPassThrough(t *testing.T) {
	env, _ := testEnv(t, 20)
	ls := phys(t, "Scan", "LinearScan")
	if ls.Adequate(Args{"Condition": "related to golf"}, []values.Value{allDocs(env)}) {
		t.Error("bare LinearScan adequate despite a pending condition")
	}
	out, err := ls.Run(context.Background(), env, Args{}, []values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 20 {
		t.Errorf("scan returned %d docs", out.Len())
	}
}

func TestGroupedLLMAggregates(t *testing.T) {
	env, _ := testEnv(t, 80)
	g, _ := phys(t, "GroupBy", "SemanticGroupBy").Run(context.Background(), env,
		Args{"Attribute": "sport"}, []values.Value{allDocs(env)})
	pre, _ := phys(t, "Average", "PreAverage").Run(context.Background(), env,
		Args{"Field": "views"}, []values.Value{g})
	sem, err := phys(t, "Average", "SemanticAverage").Run(context.Background(), env,
		Args{"Field": "views"}, []values.Value{g})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pre.VecVal) != fmt.Sprint(sem.VecVal) {
		t.Errorf("grouped averages disagree:\n%v\n%v", pre.VecVal, sem.VecVal)
	}
}

func TestAdequacyRejectsWrongKinds(t *testing.T) {
	env, _ := testEnv(t, 5)
	num := values.NewNum(1)
	cases := []struct{ op, phys string }{
		{"Filter", "SemanticFilter"},
		{"GroupBy", "SemanticGroupBy"},
		{"Count", "PreCount"},
		{"TopK", "PreTopK"},
		{"OrderBy", "PreOrderBy"},
	}
	for _, c := range cases {
		p := phys(t, c.op, c.phys)
		if p.Adequate(Args{"Number": "3"}, []values.Value{num}) {
			t.Errorf("%s/%s adequate for a scalar input", c.op, c.phys)
		}
	}
	_ = env
}

func TestFilterErrorsOnScalar(t *testing.T) {
	env, _ := testEnv(t, 5)
	p := phys(t, "Filter", "ExactFilter")
	if _, err := p.Run(context.Background(), env, Args{"Condition": "with more than 1 views"},
		[]values.Value{values.NewNum(3)}); err == nil {
		t.Error("filtering a scalar accepted")
	}
}

func TestPreComputeErrors(t *testing.T) {
	env, _ := testEnv(t, 5)
	p := phys(t, "Compute", "PreCompute")
	args := Args{"Entity": "{v1}", "Entity2": "{v2}", "Expression": "{v1} / {v2}"}
	if _, err := p.Run(context.Background(), env, args,
		[]values.Value{values.NewNum(1), values.NewNum(0)}); err == nil {
		t.Error("division by zero accepted")
	}
}

func TestSpecHelpers(t *testing.T) {
	spec, _ := Get("Filter")
	if spec.Template("[Entity] that [Condition]") == nil {
		t.Error("template lookup failed")
	}
	if spec.Template("no such lr") != nil {
		t.Error("ghost template found")
	}
	if len(Names()) == 0 || len(All()) != len(Names()) {
		t.Error("registry enumeration inconsistent")
	}
}

func TestArgsHelpers(t *testing.T) {
	a := Args{"Number": " 42 ", "Entity": "x"}
	if v, ok := a.Int("Number"); !ok || v != 42 {
		t.Errorf("Int = %d, %v", v, ok)
	}
	if _, ok := a.Int("Entity"); ok {
		t.Error("non-numeric Int accepted")
	}
	if a.Get("missing") != "" {
		t.Error("missing key not empty")
	}
}

func TestPercentileNumberRequired(t *testing.T) {
	env, _ := testEnv(t, 30)
	p := phys(t, "Percentile", "PrePercentile")
	out, err := p.Run(context.Background(), env, Args{"Field": "views", "Number": "50"},
		[]values.Value{allDocs(env)})
	if err != nil {
		t.Fatal(err)
	}
	med, _ := phys(t, "Median", "PreMedian").Run(context.Background(), env,
		Args{"Field": "views"}, []values.Value{allDocs(env)})
	// The 50th percentile and median use slightly different index rules
	// but must be close.
	if out.NumVal <= 0 || med.NumVal <= 0 {
		t.Errorf("percentile %v median %v", out.NumVal, med.NumVal)
	}
}
