package ops

import (
	"errors"
	"sync"
)

// ErrBadOutput marks a model response the operator could not parse
// (wrong verdict count, non-numeric aggregate, garbled text). It is
// permanent for the individual call — retrying the identical response
// cannot help — but absorbable by a node's FaultBudget.
var ErrBadOutput = errors.New("ops: malformed model output")

// FaultBudget is a per-node error budget: an operator running under a
// budget may absorb a bounded number of per-batch LLM failures by
// skipping the affected documents instead of failing the whole node
// (graceful degradation). Skipped-document counts feed partial-result
// accounting on the answer. A nil budget absorbs nothing (fail-fast,
// the pre-budget behavior).
type FaultBudget struct {
	mu        sync.Mutex
	remaining int
	skipped   int
	lastErr   error
}

// NewFaultBudget returns a budget tolerating n absorbed failures.
func NewFaultBudget(n int) *FaultBudget {
	if n <= 0 {
		return nil
	}
	return &FaultBudget{remaining: n}
}

// Absorb consumes one unit of budget for a failure affecting docs
// documents. It reports whether the failure was absorbed; callers skip
// the documents and continue on true, and propagate err on false.
func (b *FaultBudget) Absorb(docs int, err error) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	b.skipped += docs
	b.lastErr = err
	return true
}

// Skipped returns the number of documents dropped so far.
func (b *FaultBudget) Skipped() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.skipped
}

// LastErr returns the most recently absorbed failure (nil when none).
func (b *FaultBudget) LastErr() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr
}
