package ops

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"unify/internal/llm"
	"unify/internal/nlcond"
	"unify/internal/values"
	"unify/internal/views"
)

// This file implements the LLM-based ("semantic") physical operators of
// the paper's §IV-B2: every semantic judgment happens through a prompt to
// env.Client, batched when possible, so call counts and token volumes —
// and therefore the cost model and the virtual clock — reflect real
// execution patterns.

func complete(ctx context.Context, env *Env, task string, fields map[string]string) (llm.Response, error) {
	return env.Client.Complete(ctx, llm.BuildPrompt(task, fields))
}

// viewLookup partitions ids into materialized-view hits (id -> stored
// value, served only under a matching live content hash) and misses
// that still need model work. With views disabled every id is a miss.
func viewLookup(env *Env, col string, ids []int) (map[int]string, []int) {
	if env.Views == nil {
		return nil, ids
	}
	hits := make(map[int]string)
	misses := make([]int, 0, len(ids))
	for _, id := range ids {
		h, ok := env.Store.ContentHash(id)
		if !ok {
			misses = append(misses, id)
			continue
		}
		if v, ok := env.Views.Get(col, id, h); ok {
			hits[id] = v
		} else {
			misses = append(misses, id)
		}
	}
	env.viewHits += len(hits)
	return hits, misses
}

// viewPut backfills one computed per-document result into its column,
// stamped with the document's live content hash.
func viewPut(env *Env, col string, id int, val string) {
	if env.Views == nil {
		return
	}
	if h, ok := env.Store.ContentHash(id); ok {
		env.Views.Put(col, id, h, val)
	}
}

// batchJudge filters document ids by a condition using batched prompts.
// The per-document verdicts are materialized in the condition's view
// column: documents already judged by an earlier query (under the same
// content) skip the model entirely, only the misses are prompted, and
// fresh verdicts are backfilled. The sim's verdicts are per-document
// deterministic (independent of batch composition), so a view hit is
// answer-equivalent to recomputation.
func batchJudge(ctx context.Context, env *Env, cond string, ids []int) ([]int, error) {
	col := views.FilterColumn(cond)
	verdicts, misses := viewLookup(env, col, ids)
	if verdicts == nil {
		verdicts = make(map[int]string, len(ids))
	}
	bs := env.batch()
	for start := 0; start < len(misses); start += bs {
		end := start + bs
		if end > len(misses) {
			end = len(misses)
		}
		chunk := misses[start:end]
		texts := make([]string, len(chunk))
		for i, id := range chunk {
			t, err := docText(env, id)
			if err != nil {
				return nil, err
			}
			texts[i] = t
		}
		resp, err := complete(ctx, env, "filter_batch", map[string]string{
			"condition": cond,
			"docs":      llm.JoinDocs(texts),
		})
		if err != nil {
			if ctx.Err() == nil && env.Budget.Absorb(len(chunk), err) {
				continue // degrade: drop the chunk, keep filtering
			}
			return nil, err
		}
		got := strings.Split(resp.Text, ",")
		if len(got) != len(chunk) {
			err := fmt.Errorf("%w: filter_batch returned %d verdicts for %d documents", ErrBadOutput, len(got), len(chunk))
			if ctx.Err() == nil && env.Budget.Absorb(len(chunk), err) {
				continue
			}
			return nil, err
		}
		for i, v := range got {
			v = strings.TrimSpace(v)
			verdicts[chunk[i]] = v
			viewPut(env, col, chunk[i], v)
		}
	}
	// Assemble in input order; ids from dropped (budget-absorbed)
	// chunks have no verdict and are skipped, exactly as before.
	var out []int
	for _, id := range ids {
		if verdicts[id] == "yes" {
			out = append(out, id)
		}
	}
	return out, nil
}

// physSemanticFilter evaluates any condition by prompting the model per
// batched document chunk. Subset conditions on grouped inputs filter the
// group labels with one prompt per group.
func physSemanticFilter() *Physical {
	return &Physical{
		Name:     "SemanticFilter",
		LLMBased: true,
		Adequate: wantDocsOrGroups,
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			cond := args.Get("Condition")
			in := inputs[0]
			if in.Kind == values.Docs {
				ids, err := batchJudge(ctx, env, cond, in.DocIDs)
				if err != nil {
					return values.Value{}, err
				}
				return values.NewDocs(ids), nil
			}
			// Grouped input.
			if c, ok := nlcond.Parse(cond); ok && c.Kind == nlcond.Subset {
				var groups []values.Group
				for _, g := range in.GroupVal {
					resp, err := complete(ctx, env, "filter_label", map[string]string{
						"condition": cond,
						"label":     g.Label,
					})
					if err != nil {
						return values.Value{}, err
					}
					if strings.TrimSpace(resp.Text) == "yes" {
						groups = append(groups, g)
					}
				}
				return values.NewGroups(groups), nil
			}
			groups := make([]values.Group, 0, len(in.GroupVal))
			for _, g := range in.GroupVal {
				sub, err := batchJudge(ctx, env, cond, g.DocIDs)
				if err != nil {
					return values.Value{}, err
				}
				groups = append(groups, values.Group{Label: g.Label, DocIDs: sub})
			}
			return values.NewGroups(groups), nil
		},
	}
}

// physIndexFilter is the IndexScan-accelerated semantic filter: a vector
// search shortlists candidates near the condition's embedding; only the
// shortlist is verified by the model. The optimizer sets _scanK from the
// cardinality estimate.
func physIndexFilter() *Physical {
	return &Physical{
		Name:     "IndexFilter",
		LLMBased: true,
		Adequate: func(args Args, inputs []values.Value) bool {
			_, hasK := args.Int("_scanK")
			if !hasK || len(inputs) < 1 || inputs[0].Kind != values.Docs {
				return false
			}
			c, ok := parseCond(args)
			return ok && !c.Structured()
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			k, _ := args.Int("_scanK")
			in := make(map[int]bool, len(inputs[0].DocIDs))
			for _, id := range inputs[0].DocIDs {
				in[id] = true
			}
			cond := args.Get("Condition")
			var ids []int
			verified := map[int]bool{}
			// Adaptive extension: if the tail of the shortlist still
			// yields matches, the cardinality estimate was low — double
			// the scan until the yield dries up (or the scan covers the
			// input, at which point a full semantic filter has run).
			for {
				res := env.Store.SearchDocs(cond, k)
				var fresh []int
				for _, r := range res {
					if in[r.ID] && !verified[r.ID] {
						verified[r.ID] = true
						fresh = append(fresh, r.ID)
					}
				}
				sort.Ints(fresh)
				hit, err := batchJudge(ctx, env, cond, fresh)
				if err != nil {
					return values.Value{}, err
				}
				ids = append(ids, hit...)
				if len(verified) >= len(inputs[0].DocIDs) {
					break
				}
				// Matches dried up: two percent yield or a fully empty
				// round ends the extension.
				if len(fresh) > 0 && float64(len(hit)) < 0.02*float64(len(fresh)) {
					break
				}
				if len(fresh) == 0 {
					break
				}
				k *= 2
			}
			sort.Ints(ids)
			return values.NewDocs(ids), nil
		},
	}
}

// batchClassify labels documents with one prompt per batched chunk,
// reading and backfilling the class word's materialized view column.
func batchClassify(ctx context.Context, env *Env, classWord string, ids []int) (map[int]string, error) {
	col := views.ClassifyColumn(classWord)
	out, misses := viewLookup(env, col, ids)
	if out == nil {
		out = make(map[int]string, len(ids))
	}
	bs := env.batch()
	for start := 0; start < len(misses); start += bs {
		end := start + bs
		if end > len(misses) {
			end = len(misses)
		}
		chunk := misses[start:end]
		texts := make([]string, len(chunk))
		for i, id := range chunk {
			t, err := docText(env, id)
			if err != nil {
				return nil, err
			}
			texts[i] = t
		}
		resp, err := complete(ctx, env, "classify_batch", map[string]string{
			"class": classWord,
			"docs":  llm.JoinDocs(texts),
		})
		if err != nil {
			if ctx.Err() == nil && env.Budget.Absorb(len(chunk), err) {
				continue // degrade: the chunk's documents stay unlabeled
			}
			return nil, err
		}
		labels := strings.Split(resp.Text, ",")
		if len(labels) != len(chunk) {
			err := fmt.Errorf("%w: classify_batch returned %d labels for %d documents", ErrBadOutput, len(labels), len(chunk))
			if ctx.Err() == nil && env.Budget.Absorb(len(chunk), err) {
				continue
			}
			return nil, err
		}
		for i, l := range labels {
			l = strings.TrimSpace(l)
			out[chunk[i]] = l
			viewPut(env, col, chunk[i], l)
		}
	}
	return out, nil
}

func physSemanticGroupBy() *Physical {
	return &Physical{
		Name:     "SemanticGroupBy",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			labels, err := batchClassify(ctx, env, args.Get("Attribute"), inputs[0].DocIDs)
			if err != nil {
				return values.Value{}, err
			}
			buckets := map[string][]int{}
			for _, id := range inputs[0].DocIDs {
				if l := labels[id]; l != "" && l != "unknown" {
					buckets[l] = append(buckets[l], id)
				}
			}
			groups := make([]values.Group, 0, len(buckets))
			for label, members := range buckets {
				sort.Ints(members)
				groups = append(groups, values.Group{Label: label, DocIDs: members})
			}
			return values.NewGroups(groups), nil
		},
	}
}

// llmFieldValues extracts the aggregate field of each document via the
// model (the LLM-based extraction path of the aggregate operators).
// Per-document values are materialized in the field's view column when
// the model's output aligns one value per document; unaligned responses
// flow to the aggregate positionally (as before) and skip the view,
// since their values cannot be attributed to a document.
func llmFieldValues(ctx context.Context, env *Env, field string, ids []int) ([]float64, error) {
	col := views.ExtractColumn(field)
	vals, misses := viewLookup(env, col, ids)
	if vals == nil {
		vals = make(map[int]string, len(ids))
	}
	// loose holds the parsed values of unaligned chunks, keyed by the
	// chunk's first id so assembly can splice them in input position.
	var loose map[int][]float64
	bs := env.batch()
	for start := 0; start < len(misses); start += bs {
		end := start + bs
		if end > len(misses) {
			end = len(misses)
		}
		chunk := misses[start:end]
		texts := make([]string, len(chunk))
		for i, id := range chunk {
			t, err := docText(env, id)
			if err != nil {
				return nil, err
			}
			texts[i] = t
		}
		resp, err := complete(ctx, env, "extract_batch", map[string]string{
			"target": field,
			"docs":   llm.JoinDocs(texts),
		})
		if err != nil {
			if ctx.Err() == nil && env.Budget.Absorb(len(chunk), err) {
				continue // degrade: aggregate over the surviving chunks
			}
			return nil, err
		}
		parts := strings.Split(resp.Text, ",")
		if len(parts) == len(chunk) {
			for i, p := range parts {
				p = strings.TrimSpace(p)
				vals[chunk[i]] = p
				viewPut(env, col, chunk[i], p)
			}
			continue
		}
		var fs []float64
		for _, part := range parts {
			if v, err := strconv.ParseFloat(strings.TrimSpace(part), 64); err == nil {
				fs = append(fs, v)
			}
		}
		if loose == nil {
			loose = make(map[int][]float64)
		}
		loose[chunk[0]] = fs
	}
	// Assemble in input order. Unparseable per-document values (e.g.
	// "unknown") drop out here, exactly as they dropped out of the
	// positional parse before.
	var out []float64
	for _, id := range ids {
		if fs, ok := loose[id]; ok {
			out = append(out, fs...)
			continue
		}
		if s, ok := vals[id]; ok {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				out = append(out, v)
			}
		}
	}
	return out, nil
}

// physLLMAgg implements the "semantic aggregation" column of Table II:
// values are extracted by the model, then reduced with one aggregation
// prompt.
func physLLMAgg(kind string) *Physical {
	return &Physical{
		Name:     "Semantic" + kind,
		LLMBased: true,
		Adequate: wantDocsOrGroups,
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			p, _ := args.Int("Number")
			field := aggField(args)
			aggKind := strings.ToLower(kind)
			if kind == "Percentile" {
				aggKind = "percentile:" + strconv.Itoa(p)
			}
			agg := func(ids []int) (float64, error) {
				var lines []string
				if kind == "Count" {
					for range ids {
						lines = append(lines, "1")
					}
				} else {
					vals, err := llmFieldValues(ctx, env, field, ids)
					if err != nil {
						return 0, err
					}
					for _, v := range vals {
						lines = append(lines, strconv.FormatFloat(v, 'f', -1, 64))
					}
				}
				resp, err := complete(ctx, env, "agg_list", map[string]string{
					"kind":   aggKind,
					"values": strings.Join(lines, "\n"),
				})
				if err != nil {
					return 0, err
				}
				return strconv.ParseFloat(strings.TrimSpace(resp.Text), 64)
			}
			switch in := inputs[0]; in.Kind {
			case values.Docs:
				v, err := agg(in.DocIDs)
				if err != nil {
					return values.Value{}, err
				}
				return values.NewNum(v), nil
			case values.Groups:
				vec := make([]values.LabeledNum, 0, len(in.GroupVal))
				for _, g := range in.GroupVal {
					v, err := agg(g.DocIDs)
					if err != nil {
						return values.Value{}, err
					}
					vec = append(vec, values.LabeledNum{Label: g.Label, Num: v})
				}
				return values.NewVec(vec), nil
			default:
				return values.Value{}, fmt.Errorf("ops: %s over %s value", kind, in.Kind)
			}
		},
	}
}

// physLLMArg resolves the extreme entry of a labeled vector via a chain
// of pairwise comparison prompts (semantic max/min).
func physLLMArg(kind string) *Physical {
	return &Physical{
		Name:     "SemanticArg" + kind,
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && inputs[0].Kind == values.Vec
		},
		Run: func(ctx context.Context, env *Env, _ Args, inputs []values.Value) (values.Value, error) {
			vec := inputs[0].VecVal
			if len(vec) == 0 {
				return values.Value{}, fmt.Errorf("ops: %s over empty vector", kind)
			}
			best := vec[0]
			for _, e := range vec[1:] {
				resp, err := complete(ctx, env, "compare_vals", map[string]string{
					"a": strconv.FormatFloat(best.Num, 'f', -1, 64),
					"b": strconv.FormatFloat(e.Num, 'f', -1, 64),
				})
				if err != nil {
					return values.Value{}, err
				}
				first := strings.TrimSpace(resp.Text) == "first"
				if (kind == "Max" && !first) || (kind == "Min" && first) {
					best = e
				}
			}
			return values.NewStr(best.Label), nil
		},
	}
}

func physLLMOrderBy() *Physical {
	return &Physical{
		Name:     "SemanticOrderBy",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			field := aggField(args)
			ids := inputs[0].DocIDs
			vals, err := llmFieldValues(ctx, env, field, ids)
			if err != nil {
				return values.Value{}, err
			}
			if len(vals) != len(ids) {
				return values.Value{}, fmt.Errorf("%w: semantic sort extracted %d keys for %d documents", ErrBadOutput, len(vals), len(ids))
			}
			type kv struct {
				id int
				v  float64
			}
			pairs := make([]kv, len(ids))
			for i := range ids {
				pairs[i] = kv{ids[i], vals[i]}
			}
			desc := isDesc(args)
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].v != pairs[j].v {
					if desc {
						return pairs[i].v > pairs[j].v
					}
					return pairs[i].v < pairs[j].v
				}
				return pairs[i].id < pairs[j].id
			})
			out := make([]int, len(pairs))
			for i, p := range pairs {
				out[i] = p.id
			}
			return values.Value{Kind: values.Docs, DocIDs: out}, nil
		},
	}
}

func physSemanticClassify() *Physical {
	return &Physical{
		Name:     "SemanticClassify",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 1 && inputs[0].Kind == values.Docs && len(inputs[0].DocIDs) >= 1
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			text, err := docText(env, inputs[0].DocIDs[0])
			if err != nil {
				return values.Value{}, err
			}
			resp, err := complete(ctx, env, "classify_doc", map[string]string{
				"class": args.Get("Attribute"),
				"doc":   text,
			})
			if err != nil {
				return values.Value{}, err
			}
			return values.NewStr(strings.TrimSpace(resp.Text)), nil
		},
	}
}

func physLLMExtract() *Physical {
	return &Physical{
		Name:     "SemanticExtract",
		LLMBased: true,
		Adequate: func(args Args, inputs []values.Value) bool {
			if len(inputs) < 1 || inputs[0].Kind != values.Docs || len(inputs[0].DocIDs) < 1 {
				return false
			}
			// Class-valued extraction over a multi-document list means
			// distinct values, which SemanticDistinct handles.
			return !classAttr(args.Get("Attribute")) || len(inputs[0].DocIDs) == 1
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			text, err := docText(env, inputs[0].DocIDs[0])
			if err != nil {
				return values.Value{}, err
			}
			target := strings.ToLower(args.Get("Attribute"))
			resp, err := complete(ctx, env, "extract_doc", map[string]string{
				"target": target,
				"doc":    text,
			})
			if err != nil {
				return values.Value{}, err
			}
			out := strings.TrimSpace(resp.Text)
			if v, err := strconv.ParseFloat(out, 64); err == nil && target != "title" {
				return values.NewNum(v), nil
			}
			return values.NewStr(out), nil
		},
	}
}

// classAttr reports whether the attribute names a concept class (rather
// than a structural field like "title" or "views").
func classAttr(attr string) bool {
	switch strings.ToLower(strings.TrimSpace(attr)) {
	case "sport", "field", "area", "category", "topic":
		return true
	}
	return false
}

// physDistinctValues implements semantic distinct-value extraction over a
// document list ("the distinct sports of ..."): classify every document,
// deduplicate the labels.
func physDistinctValues() *Physical {
	return &Physical{
		Name:     "SemanticDistinct",
		LLMBased: true,
		Adequate: func(args Args, inputs []values.Value) bool {
			return classAttr(args.Get("Attribute")) &&
				len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			labels, err := batchClassify(ctx, env, args.Get("Attribute"), inputs[0].DocIDs)
			if err != nil {
				return values.Value{}, err
			}
			seen := map[string]bool{}
			var out []string
			for _, id := range inputs[0].DocIDs {
				if l := labels[id]; l != "" && l != "unknown" && !seen[l] {
					seen[l] = true
					out = append(out, l)
				}
			}
			return values.NewLabels(out), nil
		},
	}
}

func physLLMTopK() *Physical {
	return &Physical{
		Name:     "SemanticTopK",
		LLMBased: true,
		Adequate: func(args Args, inputs []values.Value) bool {
			_, hasK := args.Int("Number")
			return hasK && len(inputs) >= 1 && inputs[0].Kind == values.Docs
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			k, _ := args.Int("Number")
			ids := inputs[0].DocIDs
			vals, err := llmFieldValues(ctx, env, aggField(args), ids)
			if err != nil {
				return values.Value{}, err
			}
			if len(vals) != len(ids) {
				return values.Value{}, fmt.Errorf("%w: semantic ranking extracted %d keys for %d documents", ErrBadOutput, len(vals), len(ids))
			}
			type kv struct {
				id int
				v  float64
			}
			pairs := make([]kv, len(ids))
			for i := range ids {
				pairs[i] = kv{ids[i], vals[i]}
			}
			desc := isDesc(args)
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].v != pairs[j].v {
					if desc {
						return pairs[i].v > pairs[j].v
					}
					return pairs[i].v < pairs[j].v
				}
				return pairs[i].id < pairs[j].id
			})
			if k > len(pairs) {
				k = len(pairs)
			}
			out := make([]int, k)
			for i := 0; i < k; i++ {
				out[i] = pairs[i].id
			}
			return values.Value{Kind: values.Docs, DocIDs: out}, nil
		},
	}
}

func physSemanticJoin() *Physical {
	return &Physical{
		Name:     "SemanticJoin",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 2 &&
				(inputs[0].Kind == values.Labels || inputs[0].Kind == values.Vec) &&
				(inputs[1].Kind == values.Labels || inputs[1].Kind == values.Vec)
		},
		Run: func(ctx context.Context, env *Env, _ Args, inputs []values.Value) (values.Value, error) {
			al, bl := labelList(inputs[0]), labelList(inputs[1])
			var out []string
			for _, a := range al {
				for _, b := range bl {
					resp, err := complete(ctx, env, "filter_label", map[string]string{
						"condition": "related to " + b,
						"label":     a,
					})
					if err != nil {
						return values.Value{}, err
					}
					if strings.TrimSpace(resp.Text) == "yes" {
						out = append(out, a)
						break
					}
				}
			}
			sort.Strings(out)
			return values.NewLabels(out), nil
		},
	}
}

// physSetOp builds the pre-programmed or semantic variant of a set
// operation. The semantic variant canonicalizes labels through the model
// before the exact set algebra.
func physSetOp(op string, llmBased bool) *Physical {
	name := map[string]string{"union": "Union", "intersection": "Intersection", "complement": "Complementary"}[op]
	prefix := "Pre"
	if llmBased {
		prefix = "Semantic"
	}
	return &Physical{
		Name:     prefix + name,
		LLMBased: llmBased,
		Adequate: func(_ Args, inputs []values.Value) bool {
			if len(inputs) < 2 {
				return false
			}
			a, b := inputs[0], inputs[1]
			docs := a.Kind == values.Docs && b.Kind == values.Docs
			labels := (a.Kind == values.Labels || a.Kind == values.Vec) &&
				(b.Kind == values.Labels || b.Kind == values.Vec)
			return docs || labels
		},
		Run: func(ctx context.Context, env *Env, _ Args, inputs []values.Value) (values.Value, error) {
			a, b := inputs[0], inputs[1]
			if llmBased && a.Kind != values.Docs {
				// Canonicalize each label with one prompt.
				canon := func(ls []string) ([]string, error) {
					out := make([]string, len(ls))
					for i, l := range ls {
						resp, err := complete(ctx, env, "filter_label", map[string]string{
							"condition": "related to " + l,
							"label":     l,
						})
						if err != nil {
							return nil, err
						}
						_ = resp
						out[i] = strings.ToLower(strings.TrimSpace(l))
					}
					return out, nil
				}
				al, err := canon(labelList(a))
				if err != nil {
					return values.Value{}, err
				}
				bl, err := canon(labelList(b))
				if err != nil {
					return values.Value{}, err
				}
				a, b = values.NewLabels(al), values.NewLabels(bl)
			}
			return setOpValues(op, a, b)
		},
	}
}

func physSemanticCompare() *Physical {
	return &Physical{
		Name:     "SemanticCompare",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 2 && inputs[0].Kind == values.Num && inputs[1].Kind == values.Num
		},
		Run: func(ctx context.Context, env *Env, _ Args, inputs []values.Value) (values.Value, error) {
			resp, err := complete(ctx, env, "compare_vals", map[string]string{
				"a": strconv.FormatFloat(inputs[0].NumVal, 'f', -1, 64),
				"b": strconv.FormatFloat(inputs[1].NumVal, 'f', -1, 64),
			})
			if err != nil {
				return values.Value{}, err
			}
			return values.NewStr(strings.TrimSpace(resp.Text)), nil
		},
	}
}

func physLLMCompute() *Physical {
	return &Physical{
		Name:     "SemanticCompute",
		LLMBased: true,
		Adequate: func(_ Args, inputs []values.Value) bool {
			return len(inputs) >= 2 && inputs[0].Kind == values.Num && inputs[1].Kind == values.Num
		},
		Run: func(ctx context.Context, env *Env, args Args, inputs []values.Value) (values.Value, error) {
			expression := args.Get("Expression")
			if expression == "" {
				expression = args.Get("Entity") + " / " + args.Get("Entity2")
			}
			bindings := fmt.Sprintf("%s=%v\n%s=%v",
				args.Get("Entity"), inputs[0].NumVal,
				args.Get("Entity2"), inputs[1].NumVal)
			resp, err := complete(ctx, env, "compute", map[string]string{
				"expression": expression,
				"bindings":   bindings,
			})
			if err != nil {
				return values.Value{}, err
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(resp.Text), 64)
			if err != nil {
				return values.Value{}, fmt.Errorf("%w: SemanticCompute returned %q", ErrBadOutput, resp.Text)
			}
			return values.NewNum(v), nil
		},
	}
}

// physGenerate is the RAG fallback: retrieve context near the question and
// ask the model to answer from it.
func physGenerate() *Physical {
	return &Physical{
		Name:     "Generate",
		LLMBased: true,
		Adequate: func(args Args, _ []values.Value) bool {
			return args.Get("Condition") != ""
		},
		Run: func(ctx context.Context, env *Env, args Args, _ []values.Value) (values.Value, error) {
			question := args.Get("Condition")
			res := env.Store.SearchDocs(question, 40)
			texts := make([]string, len(res))
			for i, r := range res {
				t, err := docText(env, r.ID)
				if err != nil {
					return values.Value{}, err
				}
				texts[i] = t
			}
			resp, err := complete(ctx, env, "generate", map[string]string{
				"question": question,
				"context":  llm.JoinDocs(texts),
			})
			if err != nil {
				return values.Value{}, err
			}
			return values.NewStr(strings.TrimSpace(resp.Text)), nil
		},
	}
}
