// Package nlcond parses and evaluates the natural-language filter
// conditions that appear in analytics queries ("with more than 500 views",
// "related to injuries", "involving a ball", "posted before 2015").
//
// Two consumers share it: the pre-programmed Filter implementation uses the
// *structured* conditions (numeric, year) it can evaluate exactly with
// regular expressions, and the simulated LLM backend uses the full parser —
// including concept (semantic) conditions — as its language understanding.
package nlcond

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"unify/internal/lexicon"
)

// Kind classifies a parsed condition.
type Kind int

const (
	// Invalid marks an unparseable condition.
	Invalid Kind = iota
	// Numeric compares a numeric document field against a constant.
	Numeric
	// Year compares the posting year against a constant.
	Year
	// Concept tests topical relatedness to a lexicon concept.
	Concept
	// Subset tests whether the document's dominant concept of some class
	// belongs to a named semantic subset of that class (e.g. "sports
	// involving a ball"). Concept holds the subset name. When applied to
	// a group label instead of a document, the label itself is tested.
	Subset
	// Range bounds the posting year on both sides ("posted between 2013
	// and 2017", inclusive). Value holds the lower bound, Value2 the
	// upper.
	Range
)

func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Year:
		return "year"
	case Concept:
		return "concept"
	case Subset:
		return "subset"
	case Range:
		return "range"
	default:
		return "invalid"
	}
}

// Cond is a parsed condition.
type Cond struct {
	Kind    Kind
	Field   string  // "views" or "score" for Numeric
	Op      string  // ">", ">=", "<", "<=" for Numeric/Year
	Value   float64 // threshold for Numeric/Year; lower bound for Range
	Value2  float64 // upper bound for Range
	Concept string  // lexicon concept name for Concept
}

// Structured reports whether the condition can be evaluated exactly by a
// pre-programmed implementation (no semantic understanding needed).
func (c Cond) Structured() bool {
	return c.Kind == Numeric || c.Kind == Year || c.Kind == Range
}

var (
	reNumeric = regexp.MustCompile(`(?i)\b(?:with|having|that have|have|received|show(?:ing)?)?\s*(more than|over|above|at least|no fewer than|fewer than|less than|under|below|at most|exactly)\s+(\d+)\s+(views?|upvotes?|points?|score)\b`)
	reYear    = regexp.MustCompile(`(?i)\bposted\s+(after|before|since|in)\s+(\d{4})\b`)
	reRange   = regexp.MustCompile(`(?i)\bposted\s+between\s+(\d{4})\s+and\s+(\d{4})\b`)
	reConcept = regexp.MustCompile(`(?i)\b(?:about|regarding|concerning|related to|relating to|that discuss(?:es)?|discussing|that mention(?:s)?|mentioning|on the subject of|dealing with|that concern(?:s)?|that cover(?:s)?|covering)\s+([a-z][a-z -]*?)(?:\s+(?:questions?|documents?|pages?))?$`)
)

// subsetPatterns maps lexicon subset names to surface-phrase patterns.
var subsetPatterns = []struct {
	name string
	re   *regexp.Regexp
}{
	{"ball", regexp.MustCompile(`(?i)\b(?:involv\w*|played with|using)\s+a\s+ball\b`)},
	{"teamwork", regexp.MustCompile(`(?i)\b(?:requir\w*|involv\w*|need\w*)\s+teamwork\b`)},
	{"machine-learning", regexp.MustCompile(`(?i)\b(?:related to|relating to|about|concerning)\s+machine\s+learning\b`)},
	{"money", regexp.MustCompile(`(?i)\b(?:involv\w*|related to|about)\s+money\b`)},
	{"natural-world", regexp.MustCompile(`(?i)\b(?:about|related to|concerning)\s+the\s+natural\s+world\b`)},
}

// MatchSubset reports the lexicon subset named by a surface phrase, if any.
func MatchSubset(s string) (string, bool) {
	for _, p := range subsetPatterns {
		if p.re.MatchString(s) {
			return p.name, true
		}
	}
	return "", false
}

// SubsetSpan is one subset-phrase occurrence inside a longer text.
type SubsetSpan struct {
	Start, End int
	Name       string
}

// FindSubsetSpans locates every subset phrase in s, so set-description
// scanners stay in sync with the subset grammar.
func FindSubsetSpans(s string) []SubsetSpan {
	var out []SubsetSpan
	for _, p := range subsetPatterns {
		for _, loc := range p.re.FindAllStringIndex(s, -1) {
			out = append(out, SubsetSpan{Start: loc[0], End: loc[1], Name: p.name})
		}
	}
	return out
}

func canonField(f string) string {
	f = strings.ToLower(strings.TrimSuffix(f, "s"))
	switch f {
	case "view":
		return "views"
	case "upvote", "point", "score":
		return "score"
	default:
		return f
	}
}

func canonOp(cmp string) (string, bool) {
	switch strings.ToLower(cmp) {
	case "more than", "over", "above":
		return ">", true
	case "at least", "no fewer than", "since":
		return ">=", true
	case "fewer than", "less than", "under", "below", "before":
		return "<", true
	case "at most":
		return "<=", true
	case "exactly", "in":
		return "==", true
	case "after":
		return ">", true
	default:
		return "", false
	}
}

// Parse interprets a natural-language condition string. The boolean result
// reports whether the condition was understood.
func Parse(s string) (Cond, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Cond{}, false
	}
	if m := reNumeric.FindStringSubmatch(s); m != nil {
		op, ok := canonOp(m[1])
		if !ok {
			return Cond{}, false
		}
		v, err := strconv.Atoi(m[2])
		if err != nil {
			return Cond{}, false
		}
		return Cond{Kind: Numeric, Field: canonField(m[3]), Op: op, Value: float64(v)}, true
	}
	if m := reRange.FindStringSubmatch(s); m != nil {
		lo, err1 := strconv.Atoi(m[1])
		hi, err2 := strconv.Atoi(m[2])
		if err1 != nil || err2 != nil || lo > hi {
			return Cond{}, false
		}
		return Cond{Kind: Range, Value: float64(lo), Value2: float64(hi)}, true
	}
	if m := reYear.FindStringSubmatch(s); m != nil {
		op, ok := canonOp(m[1])
		if !ok {
			return Cond{}, false
		}
		v, err := strconv.Atoi(m[2])
		if err != nil {
			return Cond{}, false
		}
		return Cond{Kind: Year, Op: op, Value: float64(v)}, true
	}
	if name, ok := MatchSubset(s); ok {
		return Cond{Kind: Subset, Concept: name}, true
	}
	if m := reConcept.FindStringSubmatch(s); m != nil {
		name := NormalizeConcept(m[1])
		return Cond{Kind: Concept, Concept: name}, true
	}
	// Bare concept name ("injury", "neural networks").
	if name := NormalizeConcept(s); name != "" {
		if _, ok := lexicon.Lookup(name); ok {
			return Cond{Kind: Concept, Concept: name}, true
		}
	}
	return Cond{}, false
}

// NormalizeConcept maps a surface phrase to a lexicon concept name:
// lowercase, trims generic nouns, tries hyphenation of multiword names and
// singular/plural variants.
func NormalizeConcept(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	for _, suffix := range []string{" questions", " question", " documents", " pages", " topics"} {
		s = strings.TrimSuffix(s, suffix)
	}
	s = strings.TrimSpace(s)
	cands := []string{s, strings.ReplaceAll(s, " ", "-")}
	if strings.HasSuffix(s, "ies") {
		cands = append(cands, s[:len(s)-3]+"y")
	}
	if strings.HasSuffix(s, "s") {
		cands = append(cands, s[:len(s)-1], strings.ReplaceAll(s[:len(s)-1], " ", "-"))
	}
	for _, c := range cands {
		if _, ok := lexicon.Lookup(c); ok {
			return c
		}
	}
	return s
}

// Field regexes for the structured part of a rendered document.
var (
	reViews  = regexp.MustCompile(`(?mi)^Views:\s*(\d+)`)
	reScore  = regexp.MustCompile(`(?mi)^Score:\s*(-?\d+)`)
	rePosted = regexp.MustCompile(`(?mi)^Posted:\s*(\d{4})`)
)

// ExtractField pulls a numeric field ("views", "score", "year") out of a
// rendered document's text. ok is false when the field is absent.
func ExtractField(text, field string) (float64, bool) {
	var m []string
	switch canonField(field) {
	case "views":
		m = reViews.FindStringSubmatch(text)
	case "score":
		m = reScore.FindStringSubmatch(text)
	case "year":
		m = rePosted.FindStringSubmatch(text)
	default:
		return 0, false
	}
	if m == nil {
		return 0, false
	}
	v, err := strconv.Atoi(m[1])
	if err != nil {
		return 0, false
	}
	return float64(v), true
}

func cmp(x float64, op string, v float64) bool {
	switch op {
	case ">":
		return x > v
	case ">=":
		return x >= v
	case "<":
		return x < v
	case "<=":
		return x <= v
	case "==":
		return x == v
	default:
		return false
	}
}

// EvalStructured evaluates a Numeric or Year condition against rendered
// document text. It must only be called when Structured() is true; it
// returns false for semantic kinds.
func (c Cond) EvalStructured(text string) bool {
	switch c.Kind {
	case Numeric:
		x, ok := ExtractField(text, c.Field)
		return ok && cmp(x, c.Op, c.Value)
	case Year:
		x, ok := ExtractField(text, "year")
		return ok && cmp(x, c.Op, c.Value)
	case Range:
		x, ok := ExtractField(text, "year")
		return ok && x >= c.Value && x <= c.Value2
	default:
		return false
	}
}

// EvalSemantic evaluates any condition kind against rendered document
// text, using lexicon knowledge for semantic kinds. This is the judgment
// the simulated LLM performs (before its noise model is applied).
func (c Cond) EvalSemantic(text string) bool {
	switch c.Kind {
	case Numeric, Year, Range:
		return c.EvalStructured(text)
	case Concept:
		// Two independent indicator words are required: genuinely
		// on-concept documents carry several, while an off-topic aside
		// (a distractor mention) carries only one.
		return lexicon.Match(text, c.Concept, 2)
	case Subset:
		sub, ok := lexicon.LookupSubset(c.Concept)
		if !ok {
			return false
		}
		best := lexicon.BestConcept(text, sub.Class)
		return best != "" && sub.Members[best]
	default:
		return false
	}
}

// EvalLabel evaluates a Subset (or Concept) condition against a bare group
// label such as "football" rather than document text.
func (c Cond) EvalLabel(label string) bool {
	switch c.Kind {
	case Subset:
		return lexicon.InSubset(c.Concept, label)
	case Concept:
		return strings.EqualFold(c.Concept, label)
	default:
		return false
	}
}

// String renders the condition back to compact natural language; used in
// prompts and debugging output.
func (c Cond) String() string {
	switch c.Kind {
	case Numeric:
		return c.Field + " " + c.Op + " " + strconv.FormatFloat(c.Value, 'f', -1, 64)
	case Year:
		return "year " + c.Op + " " + strconv.FormatFloat(c.Value, 'f', -1, 64)
	case Range:
		return fmt.Sprintf("posted between %d and %d", int(c.Value), int(c.Value2))
	case Concept:
		return "related to " + c.Concept
	case Subset:
		if sub, ok := lexicon.LookupSubset(c.Concept); ok {
			return sub.Phrase
		}
		return "in subset " + c.Concept
	default:
		return "invalid"
	}
}
