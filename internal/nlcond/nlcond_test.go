package nlcond

import (
	"testing"
)

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in    string
		field string
		op    string
		val   float64
	}{
		{"with more than 500 views", "views", ">", 500},
		{"over 500 views", "views", ">", 500},
		{"at least 3 upvotes", "score", ">=", 3},
		{"fewer than 10 points", "score", "<", 10},
		{"that have at most 99 views", "views", "<=", 99},
		{"exactly 7 upvotes", "score", "==", 7},
		{"having below 20 views", "views", "<", 20},
	}
	for _, c := range cases {
		cond, ok := Parse(c.in)
		if !ok {
			t.Errorf("Parse(%q) failed", c.in)
			continue
		}
		if cond.Kind != Numeric || cond.Field != c.field || cond.Op != c.op || cond.Value != c.val {
			t.Errorf("Parse(%q) = %+v", c.in, cond)
		}
		if !cond.Structured() {
			t.Errorf("%q should be structured", c.in)
		}
	}
}

func TestParseYear(t *testing.T) {
	cond, ok := Parse("posted after 2015")
	if !ok || cond.Kind != Year || cond.Op != ">" || cond.Value != 2015 {
		t.Errorf("Parse year = %+v ok=%v", cond, ok)
	}
	cond, ok = Parse("posted before 2013")
	if !ok || cond.Op != "<" {
		t.Errorf("before = %+v", cond)
	}
	cond, ok = Parse("posted since 2019")
	if !ok || cond.Op != ">=" {
		t.Errorf("since = %+v", cond)
	}
}

func TestParseConcept(t *testing.T) {
	for _, in := range []string{
		"about football", "related to football", "discussing football",
		"that mention football", "regarding football",
	} {
		cond, ok := Parse(in)
		if !ok || cond.Kind != Concept || cond.Concept != "football" {
			t.Errorf("Parse(%q) = %+v ok=%v", in, cond, ok)
		}
		if cond.Structured() {
			t.Errorf("%q must not be structured", in)
		}
	}
	// Plural and multiword normalization.
	cond, ok := Parse("related to injuries")
	if !ok || cond.Concept != "injury" {
		t.Errorf("injuries = %+v", cond)
	}
	cond, ok = Parse("about neural networks")
	if !ok || cond.Concept != "neural-networks" {
		t.Errorf("neural networks = %+v", cond)
	}
}

func TestParseSubset(t *testing.T) {
	cases := map[string]string{
		"involving a ball":            "ball",
		"that involve a ball":         "ball",
		"requiring teamwork":          "teamwork",
		"related to machine learning": "machine-learning",
		"involving money":             "money",
		"about the natural world":     "natural-world",
	}
	for in, want := range cases {
		cond, ok := Parse(in)
		if !ok || cond.Kind != Subset || cond.Concept != want {
			t.Errorf("Parse(%q) = %+v ok=%v, want subset %s", in, cond, ok, want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, in := range []string{"", "zzz qqq www", "more than views"} {
		if c, ok := Parse(in); ok {
			t.Errorf("Parse(%q) = %+v, want failure", in, c)
		}
	}
}

const doc = `Title: Knee pain after practice
Views: 1523
Score: 12
Posted: 2016
Tags: advice
Body: I hurt my knee during football practice near the goal. The injury caused swelling.`

func TestExtractField(t *testing.T) {
	if v, ok := ExtractField(doc, "views"); !ok || v != 1523 {
		t.Errorf("views = %v, %v", v, ok)
	}
	if v, ok := ExtractField(doc, "score"); !ok || v != 12 {
		t.Errorf("score = %v, %v", v, ok)
	}
	if v, ok := ExtractField(doc, "year"); !ok || v != 2016 {
		t.Errorf("year = %v, %v", v, ok)
	}
	if _, ok := ExtractField(doc, "nonsense"); ok {
		t.Error("unknown field extracted")
	}
	if _, ok := ExtractField("no headers here", "views"); ok {
		t.Error("absent field extracted")
	}
}

func TestEvalStructured(t *testing.T) {
	c, _ := Parse("with more than 500 views")
	if !c.EvalStructured(doc) {
		t.Error("1523 > 500 should hold")
	}
	c, _ = Parse("with more than 2000 views")
	if c.EvalStructured(doc) {
		t.Error("1523 > 2000 should not hold")
	}
	c, _ = Parse("posted before 2017")
	if !c.EvalStructured(doc) {
		t.Error("2016 < 2017 should hold")
	}
}

func TestEvalSemantic(t *testing.T) {
	c, _ := Parse("related to injury")
	if !c.EvalSemantic(doc) {
		t.Error("injury doc not matched")
	}
	c, _ = Parse("related to nutrition")
	if c.EvalSemantic(doc) {
		t.Error("nutrition matched wrongly")
	}
	c, _ = Parse("involving a ball")
	if !c.EvalSemantic(doc) {
		t.Error("football doc should satisfy 'involving a ball'")
	}
}

func TestEvalLabel(t *testing.T) {
	c, _ := Parse("involving a ball")
	if !c.EvalLabel("football") || c.EvalLabel("swimming") {
		t.Error("ball-sport label test wrong")
	}
	c, _ = Parse("related to contract")
	if !c.EvalLabel("contract") || c.EvalLabel("criminal") {
		t.Error("concept label equality wrong")
	}
}

func TestCondString(t *testing.T) {
	c, _ := Parse("with more than 500 views")
	if c.String() == "" || c.String() == "invalid" {
		t.Errorf("String = %q", c.String())
	}
	c, _ = Parse("involving a ball")
	if c.String() != "involving a ball" {
		t.Errorf("subset String = %q", c.String())
	}
}
