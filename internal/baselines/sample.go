package baselines

import (
	"context"
	"strconv"
	"strings"

	"unify/internal/docstore"
	"unify/internal/llm"
)

// Sample is baseline (4): the model enumerates a fixed fraction of the
// data (paper: 20%) chunk by chunk, emitting intermediate partial answers
// that are finally combined (scaling count-like quantities to the full
// population). Its chunks form a strictly sequential chain — the paper's
// explanation for its high latency — and sampling plus extrapolation
// caps its accuracy.
type Sample struct {
	Store  *docstore.Store
	Client llm.Client
	// Frac is the sampled fraction (paper: 0.2).
	Frac float64
	// Chunk is the number of documents per model invocation.
	Chunk int
}

// NewSample returns the baseline with the paper's 20% setting.
func NewSample(store *docstore.Store, client llm.Client) *Sample {
	return &Sample{Store: store, Client: client, Frac: 0.2, Chunk: 6}
}

// Name implements Baseline.
func (b *Sample) Name() string { return "Sample" }

// Run implements Baseline.
func (b *Sample) Run(ctx context.Context, query string) (Result, error) {
	ids := b.Store.IDs()
	n := len(ids)
	take := int(float64(n) * b.Frac)
	if take < 1 {
		take = 1
	}
	// Deterministic systematic sample.
	step := n / take
	if step < 1 {
		step = 1
	}
	var sample []int
	for i := 0; i < n && len(sample) < take; i += step {
		sample = append(sample, ids[i])
	}

	rec := llm.NewRecorder(b.Client)
	var partials []string
	for start := 0; start < len(sample); start += b.Chunk {
		end := start + b.Chunk
		if end > len(sample) {
			end = len(sample)
		}
		texts := docTexts(b.Store, sample[start:end])
		// Each step re-emits the cumulated intermediate results (the
		// "iteratively outputs intermediate results" of the paper),
		// so both prompt and output grow as the scan progresses.
		resp, err := rec.Complete(ctx, llm.BuildPrompt("sample_chunk", map[string]string{
			"question": query,
			"docs":     llm.JoinDocs(texts),
			"state":    strings.Join(partials, "; "),
		}))
		if err != nil {
			return Result{}, err
		}
		parts := strings.Split(resp.Text, ";")
		partials = append(partials[:0], make([]string, 0, len(parts))...)
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				partials = append(partials, p)
			}
		}
	}
	scale := float64(n) / float64(len(sample))
	resp, err := rec.Complete(ctx, llm.BuildPrompt("sample_combine", map[string]string{
		"question": query,
		"partials": strings.Join(partials, "\n"),
		"scale":    trimFloat(scale),
	}))
	if err != nil {
		return Result{}, err
	}
	calls := rec.Calls()
	// The chunk chain is sequential: each step cumulates the previous
	// intermediate result.
	return Result{
		Text:     strings.TrimSpace(resp.Text),
		Latency:  sumDur(calls),
		LLMCalls: len(calls),
	}, nil
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
