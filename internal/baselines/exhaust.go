package baselines

import (
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"time"

	"unify/internal/core"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/exec"
	"unify/internal/llm"
	"unify/internal/optimizer"
	"unify/internal/sce"
)

// Exhaust is baseline (5): exhaustively search execution plans (the
// extreme variant of Unify, tau=1 with a large plan budget), execute every
// candidate with multiple physical configurations, and let the model pick
// the answer. It is accurate but extremely slow — the "40x" comparison
// point of the paper's headline result.
type Exhaust struct {
	Store   *docstore.Store
	Planner llm.Client
	Worker  llm.Client
	Slots   int
	Batch   int
	// MaxPlans caps the exhaustive logical search.
	MaxPlans int
}

// NewExhaust returns the baseline.
func NewExhaust(store *docstore.Store, planner, worker llm.Client) *Exhaust {
	return &Exhaust{Store: store, Planner: planner, Worker: worker, Slots: 4, Batch: 16, MaxPlans: 12}
}

// Name implements Baseline.
func (b *Exhaust) Name() string { return "Exhaust" }

// Run implements Baseline.
func (b *Exhaust) Run(ctx context.Context, query string) (Result, error) {
	planner := core.NewPlanner(b.Planner, b.Store.Embedder(), 8, b.MaxPlans, 1.0)
	plans, pstats, err := planner.GeneratePlans(ctx, query)
	if err != nil {
		return Result{}, err
	}
	calib := cost.NewCalibrator(b.Batch)
	est := sce.NewEstimator(b.Store, b.Worker, 8)
	executor := exec.New(b.Store, b.Worker, calib)
	executor.Slots = b.Slots
	executor.BatchSize = b.Batch

	// Execute every candidate plan under several physical configurations
	// (cost-based plus randomized rule selections) — the exhaustive
	// physical search. Every trial's latency is paid in full.
	variants := []struct {
		mode  optimizer.Mode
		seed  uint64
		batch int // 0 = default batching; small values model unbatched trials
	}{
		{optimizer.CostBased, 0, 0},
		{optimizer.Rule, 11, 0}, {optimizer.Rule, 23, 0}, {optimizer.Rule, 37, 0},
	}
	var answers []string
	var totalExec time.Duration
	totalCalls := len(pstats.Calls)
	for _, logical := range plans {
		for _, v := range variants {
			opt := optimizer.New(b.Store, est, calib, b.Slots)
			opt.Mode = v.mode
			if v.seed != 0 {
				opt.Seed = v.seed
			}
			plan, ostats, err := opt.Optimize(ctx, []*core.Plan{logical})
			if err != nil {
				continue
			}
			if v.batch > 0 {
				executor.BatchSize = v.batch
			} else {
				executor.BatchSize = b.Batch
			}
			res, err := executor.Run(ctx, plan)
			executor.BatchSize = b.Batch
			if err != nil {
				continue
			}
			answers = append(answers, formatValue(b.Store, res.Answer))
			totalExec += res.Makespan + ostats.Duration/time.Duration(b.Slots)
			totalCalls += res.LLMCalls + len(ostats.Calls)
		}
	}
	if len(answers) == 0 {
		return b.fallback(ctx, query, pstats)
	}
	cand, err := json.Marshal(answers)
	if err != nil {
		return Result{}, err
	}
	rec := llm.NewRecorder(b.Planner)
	resp, err := rec.Complete(ctx, llm.BuildPrompt("judge_answers", map[string]string{
		"question":   query,
		"candidates": string(cand),
	}))
	if err != nil {
		return Result{}, err
	}
	idx, err := strconv.Atoi(strings.TrimSpace(resp.Text))
	if err != nil || idx < 0 || idx >= len(answers) {
		idx = 0
	}
	totalCalls += len(rec.Calls())
	return Result{
		Text:     answers[idx],
		Latency:  pstats.Duration + totalExec + sumDur(rec.Calls()),
		LLMCalls: totalCalls,
	}, nil
}

func (b *Exhaust) fallback(ctx context.Context, query string, pstats *core.PlanStats) (Result, error) {
	docs := contextDocsForSentences(b.Store, b.Store.SearchSentences(query, 100), 30)
	text, calls, err := generate(ctx, b.Worker, query, docs)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text:     text,
		Latency:  pstats.Duration + sumDur(calls),
		LLMCalls: len(pstats.Calls) + len(calls),
	}, nil
}
