// Package baselines implements the six comparison methods of the paper's
// §VII-A evaluation: RAG, RecurRAG, LLMPlan, Sample, Exhaust, and Manual.
// Each consumes only the query text and the document store (never ground
// truth), and reports a simulated latency consistent with its execution
// pattern on the 4-slot machine model.
package baselines

import (
	"context"
	"strings"
	"time"

	"unify/internal/docstore"
	"unify/internal/llm"
)

// Result is one baseline answer.
type Result struct {
	Text     string
	Latency  time.Duration
	LLMCalls int
}

// Baseline answers natural-language analytics queries.
type Baseline interface {
	Name() string
	Run(ctx context.Context, query string) (Result, error)
}

// sumDur adds up recorded call durations (sequential execution model).
func sumDur(calls []llm.Call) time.Duration {
	var d time.Duration
	for _, c := range calls {
		d += c.Dur
	}
	return d
}

// docTexts fetches rendered texts for store ids.
func docTexts(store *docstore.Store, ids []int) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if d, ok := store.Doc(id); ok {
			out = append(out, d.Text)
		}
	}
	return out
}

// contextDocsForSentences expands retrieved sentences to their unique
// source documents, capped.
func contextDocsForSentences(store *docstore.Store, sents []docstore.Sentence, maxDocs int) []string {
	seen := map[int]bool{}
	var ids []int
	for _, s := range sents {
		if !seen[s.DocID] {
			seen[s.DocID] = true
			ids = append(ids, s.DocID)
			if len(ids) >= maxDocs {
				break
			}
		}
	}
	return docTexts(store, ids)
}

func generate(ctx context.Context, client llm.Client, question string, docs []string) (string, []llm.Call, error) {
	rec := llm.NewRecorder(client)
	resp, err := rec.Complete(ctx, llm.BuildPrompt("generate", map[string]string{
		"question": question,
		"context":  llm.JoinDocs(docs),
	}))
	if err != nil {
		return "", nil, err
	}
	return strings.TrimSpace(resp.Text), rec.Calls(), nil
}

// retrievalOverhead models embedding the query and probing the vector
// index (sub-second, per paper's RAG latency floor).
const retrievalOverhead = 400 * time.Millisecond
