package baselines

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/ops"
	"unify/internal/values"
	"unify/internal/vtime"
)

// LLMPlan is baseline (3): the model is asked to emit a complete plan in
// one shot from the operator descriptions, and the plan is executed by
// prompting the model for every operator — no semantic matching, no
// reduction loop, no optimization. Its accuracy suffers because one-shot
// plans over many operators are error-prone, and its execution is fully
// LLM-based and strictly sequential.
type LLMPlan struct {
	Store  *docstore.Store
	Client llm.Client
	Slots  int
	Batch  int
}

// NewLLMPlan returns the baseline.
func NewLLMPlan(store *docstore.Store, client llm.Client) *LLMPlan {
	return &LLMPlan{Store: store, Client: client, Slots: 4, Batch: 16}
}

// Name implements Baseline.
func (b *LLMPlan) Name() string { return "LLMPlan" }

type oneshotStep struct {
	Op   string            `json:"op"`
	Args map[string]string `json:"args"`
	Var  string            `json:"var"`
}

// Run implements Baseline.
func (b *LLMPlan) Run(ctx context.Context, query string) (Result, error) {
	planRec := llm.NewRecorder(b.Client)
	resp, err := planRec.Complete(ctx, llm.BuildPrompt("plan_oneshot", map[string]string{
		"question":  query,
		"operators": strings.Join(ops.Names(), ", "),
	}))
	if err != nil {
		return Result{}, err
	}
	var steps []oneshotStep
	if err := json.Unmarshal([]byte(resp.Text), &steps); err != nil || len(steps) == 0 {
		// Planning failed outright: fall back to a RAG-style answer.
		docs := contextDocsForSentences(b.Store, b.Store.SearchSentences(query, 100), 30)
		text, calls, err := generate(ctx, b.Client, query, docs)
		if err != nil {
			return Result{}, err
		}
		all := append(planRec.Calls(), calls...)
		return Result{Text: text, Latency: sumDur(all), LLMCalls: len(all)}, nil
	}

	vars := map[string]values.Value{}
	var tasks []vtime.Task
	prevTask := ""
	totalCalls := len(planRec.Calls())
	var final values.Value
	for i, st := range steps {
		rec := llm.NewRecorder(b.Client)
		env := &ops.Env{Store: b.Store, Client: rec, BatchSize: b.Batch}
		inputs := b.resolveInputs(st, vars)
		v, err := runStepLLMFirst(ctx, env, st, inputs)
		if err != nil {
			// A broken plan step: answer from whatever context exists.
			return b.bail(ctx, query, planRec)
		}
		vars["{"+st.Var+"}"] = v
		final = v
		calls := rec.Calls()
		totalCalls += len(calls)
		var units []vtime.Unit
		for _, c := range calls {
			units = append(units, vtime.Unit{Dur: c.Dur, Resource: vtime.ResourceLLM})
		}
		if len(units) == 0 {
			units = []vtime.Unit{{Dur: time.Millisecond}}
		}
		id := fmt.Sprintf("s%d", i)
		var deps []string
		if prevTask != "" {
			deps = []string{prevTask} // strictly sequential plan
		}
		tasks = append(tasks, vtime.Task{ID: id, Deps: deps, Units: units})
		prevTask = id
	}
	sched, err := vtime.NewSchedule(b.Slots).Run(tasks)
	if err != nil {
		return Result{}, err
	}
	text := formatValue(b.Store, final)
	return Result{
		Text:     text,
		Latency:  sumDur(planRec.Calls()) + sched.Makespan,
		LLMCalls: totalCalls,
	}, nil
}

func (b *LLMPlan) bail(ctx context.Context, query string, planRec *llm.Recorder) (Result, error) {
	docs := contextDocsForSentences(b.Store, b.Store.SearchSentences(query, 100), 30)
	text, calls, err := generate(ctx, b.Client, query, docs)
	if err != nil {
		return Result{}, err
	}
	all := append(planRec.Calls(), calls...)
	return Result{Text: text, Latency: sumDur(all), LLMCalls: len(all)}, nil
}

func (b *LLMPlan) resolveInputs(st oneshotStep, vars map[string]values.Value) []values.Value {
	var inputs []values.Value
	resolve := func(ref string) values.Value {
		if v, ok := vars[ref]; ok {
			return v
		}
		return values.NewDocs(b.Store.IDs())
	}
	inputs = append(inputs, resolve(st.Args["Entity"]))
	if e2 := st.Args["Entity2"]; e2 != "" {
		inputs = append(inputs, resolve(e2))
	}
	return inputs
}

// runStepLLMFirst executes one plan step preferring LLM-based physical
// implementations (everything is "instructing the LLM with prompts").
func runStepLLMFirst(ctx context.Context, env *ops.Env, st oneshotStep, inputs []values.Value) (values.Value, error) {
	spec, ok := ops.Get(st.Op)
	if !ok {
		return values.Value{}, fmt.Errorf("baselines: unknown op %q", st.Op)
	}
	args := ops.Args(st.Args)
	cands := spec.Adequate(args, inputs)
	if len(cands) == 0 {
		return values.Value{}, fmt.Errorf("baselines: no implementation for %s", st.Op)
	}
	// LLM-based first.
	for _, c := range cands {
		if c.LLMBased {
			return c.Run(ctx, env, args, inputs)
		}
	}
	return cands[0].Run(ctx, env, args, inputs)
}

func formatValue(store *docstore.Store, v values.Value) string {
	if v.Kind == values.Docs {
		titles := make([]string, 0, len(v.DocIDs))
		for _, id := range v.DocIDs {
			if d, ok := store.Doc(id); ok {
				titles = append(titles, d.Title)
			}
		}
		return strings.Join(titles, ", ")
	}
	return v.String()
}
