package baselines

import (
	"context"
	"encoding/json"
	"time"

	"unify/internal/docstore"
	"unify/internal/llm"
)

// RAG is the basic retrieval-augmented generation pipeline: retrieve the
// top-100 related sentences by embedding similarity and generate an
// answer from them. It fails on aggregate analytics because the retrieved
// context never covers the corpus — exactly the limitation §II-B
// describes.
type RAG struct {
	Store  *docstore.Store
	Client llm.Client
	// TopSentences is the retrieval depth (paper: 100).
	TopSentences int
	// MaxDocs caps the context after sentence-to-document expansion.
	MaxDocs int
}

// NewRAG returns the baseline with the paper's settings.
func NewRAG(store *docstore.Store, client llm.Client) *RAG {
	return &RAG{Store: store, Client: client, TopSentences: 100, MaxDocs: 20}
}

// Name implements Baseline.
func (r *RAG) Name() string { return "RAG" }

// Run implements Baseline.
func (r *RAG) Run(ctx context.Context, query string) (Result, error) {
	sents := r.Store.SearchSentences(query, r.TopSentences)
	docs := contextDocsForSentences(r.Store, sents, r.MaxDocs)
	text, calls, err := generate(ctx, r.Client, query, docs)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text:     text,
		Latency:  retrievalOverhead + sumDur(calls),
		LLMCalls: len(calls),
	}, nil
}

// RecurRAG extends RAG with iterative query decomposition: the model
// decomposes the query into sub-queries, each sub-query retrieves its own
// context, and the union feeds the final generation.
type RecurRAG struct {
	Store  *docstore.Store
	Client llm.Client
	// PerSub is the per-sub-query document retrieval depth.
	PerSub  int
	MaxDocs int
}

// NewRecurRAG returns the baseline with default settings.
func NewRecurRAG(store *docstore.Store, client llm.Client) *RecurRAG {
	return &RecurRAG{Store: store, Client: client, PerSub: 60, MaxDocs: 150}
}

// Name implements Baseline.
func (r *RecurRAG) Name() string { return "RecurRAG" }

// Run implements Baseline.
func (r *RecurRAG) Run(ctx context.Context, query string) (Result, error) {
	rec := llm.NewRecorder(r.Client)
	resp, err := rec.Complete(ctx, llm.BuildPrompt("decompose", map[string]string{
		"question": query,
	}))
	if err != nil {
		return Result{}, err
	}
	var subs []string
	if err := json.Unmarshal([]byte(resp.Text), &subs); err != nil || len(subs) == 0 {
		subs = []string{query}
	}
	seen := map[int]bool{}
	var ids []int
	for _, sub := range subs {
		for _, hit := range r.Store.SearchDocsExact(sub, r.PerSub) {
			if !seen[hit.ID] {
				seen[hit.ID] = true
				ids = append(ids, hit.ID)
				if len(ids) >= r.MaxDocs {
					break
				}
			}
		}
	}
	text, calls, err := generate(ctx, r.Client, query, docTexts(r.Store, ids))
	if err != nil {
		return Result{}, err
	}
	allCalls := append(rec.Calls(), calls...)
	lat := retrievalOverhead*time.Duration(len(subs)) + sumDur(allCalls)
	return Result{Text: text, Latency: lat, LLMCalls: len(allCalls)}, nil
}
