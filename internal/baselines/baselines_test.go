package baselines

import (
	"context"
	"strconv"

	"testing"

	"unify/internal/corpus"
	"unify/internal/docstore"
	"unify/internal/llm"
	"unify/internal/workload"
)

type fixture struct {
	ds      *corpus.Dataset
	store   *docstore.Store
	worker  llm.Client
	planner llm.Client
	queries []workload.Query
}

func setup(t *testing.T, n int) *fixture {
	t.Helper()
	ds, err := corpus.GenerateN("sports", n)
	if err != nil {
		t.Fatal(err)
	}
	store, err := docstore.New("sports", ds.Documents())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := llm.DefaultSimConfig()
	pcfg := wcfg
	pcfg.Profile = llm.PlannerProfile()
	return &fixture{
		ds:      ds,
		store:   store,
		worker:  llm.NewSim(wcfg),
		planner: llm.NewSim(pcfg),
		queries: workload.Generate(ds, 1, 42),
	}
}

func runAll(t *testing.T, b Baseline, queries []workload.Query) (correct int, avgCalls int) {
	t.Helper()
	calls := 0
	for _, q := range queries {
		res, err := b.Run(context.Background(), q.Text)
		if err != nil {
			t.Fatalf("%s on %q: %v", b.Name(), q.Text, err)
		}
		if res.Latency <= 0 {
			t.Errorf("%s: non-positive latency for %q", b.Name(), q.Text)
		}
		if workload.Score(q, res.Text) {
			correct++
		}
		calls += res.LLMCalls
	}
	return correct, calls / len(queries)
}

func TestRAGRunsAndIsWeak(t *testing.T) {
	f := setup(t, 400)
	correct, _ := runAll(t, NewRAG(f.store, f.worker), f.queries)
	frac := float64(correct) / float64(len(f.queries))
	if frac > 0.6 {
		t.Errorf("RAG accuracy %.2f is implausibly high for aggregates", frac)
	}
}

func TestRecurRAGRuns(t *testing.T) {
	f := setup(t, 400)
	correct, calls := runAll(t, NewRecurRAG(f.store, f.worker), f.queries)
	if calls < 2 {
		t.Errorf("RecurRAG should decompose then generate, got %d calls/query", calls)
	}
	_ = correct
}

func TestLLMPlanRuns(t *testing.T) {
	f := setup(t, 400)
	correct, _ := runAll(t, NewLLMPlan(f.store, f.worker), f.queries)
	frac := float64(correct) / float64(len(f.queries))
	if frac > 0.8 {
		t.Errorf("LLMPlan accuracy %.2f too high: one-shot plans should be error-prone", frac)
	}
}

func TestSampleScalesCounts(t *testing.T) {
	f := setup(t, 500)
	b := NewSample(f.store, f.worker)
	// Counting query: the scaled estimate must be in the right ballpark
	// (sampling error bounded by a generous factor).
	truth := 0
	for _, d := range f.ds.Docs {
		if d.Hidden.Aspect == "injury" {
			truth++
		}
	}
	res, err := b.Run(context.Background(), "How many questions are related to injury?")
	if err != nil {
		t.Fatal(err)
	}
	got, err := strconv.ParseFloat(res.Text, 64)
	if err != nil {
		t.Fatalf("non-numeric sample answer %q", res.Text)
	}
	if got < float64(truth)/3 || got > float64(truth)*3 {
		t.Errorf("sample estimate %v vs truth %d", got, truth)
	}
	if res.LLMCalls < 5 {
		t.Errorf("sample should issue chunked calls, got %d", res.LLMCalls)
	}
}

func TestManualIsMostAccurate(t *testing.T) {
	f := setup(t, 500)
	manual := NewManual(f.store, f.worker)
	rag := NewRAG(f.store, f.worker)
	mc, _ := runAll(t, manual, f.queries)
	rc, _ := runAll(t, rag, f.queries)
	if mc <= rc {
		t.Errorf("manual (%d) should beat RAG (%d)", mc, rc)
	}
	// Manual latency must include the design charge.
	res, err := manual.Run(context.Background(), f.queries[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency < manual.DesignTime {
		t.Errorf("manual latency %v below its design charge", res.Latency)
	}
}

func TestOraclePlan(t *testing.T) {
	plan, err := OraclePlan("How many questions about football have more than 500 views?")
	if err != nil {
		t.Fatal(err)
	}
	counts := plan.OpCounts()
	if counts["Filter"]+counts["Scan"] != 2 || counts["Count"] != 1 {
		t.Errorf("oracle ops = %v", counts)
	}
	if _, err := OraclePlan("write me a poem about databases"); err == nil {
		t.Error("oracle should reject ungroundable queries")
	}
}

func TestExhaustSlowerThanManualExec(t *testing.T) {
	f := setup(t, 400)
	ex := NewExhaust(f.store, f.planner, f.worker)
	q := f.queries[0].Text
	res, err := ex.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Text == "" {
		t.Error("exhaust produced no answer")
	}
	man := NewManual(f.store, f.worker)
	mres, err := man.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust executes many plan variants; it must consume far more LLM
	// calls than a single manual execution.
	if res.LLMCalls <= mres.LLMCalls {
		t.Errorf("exhaust calls %d not above manual %d", res.LLMCalls, mres.LLMCalls)
	}
}

func TestBaselineNames(t *testing.T) {
	f := setup(t, 50)
	names := map[string]Baseline{
		"RAG":      NewRAG(f.store, f.worker),
		"RecurRAG": NewRecurRAG(f.store, f.worker),
		"LLMPlan":  NewLLMPlan(f.store, f.worker),
		"Sample":   NewSample(f.store, f.worker),
		"Exhaust":  NewExhaust(f.store, f.planner, f.worker),
		"Manual":   NewManual(f.store, f.worker),
	}
	for want, b := range names {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}
