package baselines

import (
	"context"
	"fmt"
	"time"

	"unify/internal/core"
	"unify/internal/cost"
	"unify/internal/docstore"
	"unify/internal/exec"
	"unify/internal/llm"
	"unify/internal/nlq"
	"unify/internal/optimizer"
	"unify/internal/sce"
)

// Manual is baseline (6): a human expert designs and debugs the physical
// plan by hand, then executes it. The expert is emulated by an oracle
// decomposition (perfect operator choice and wiring, no model calls), and
// the human design-and-debug effort is charged as a constant planning
// cost, matching the paper's methodology ("the planning time cost for
// this method is calculated based on the time spent designing the plan
// and debugging for execution").
type Manual struct {
	Store  *docstore.Store
	Worker llm.Client
	Slots  int
	Batch  int
	// DesignTime is the charged human planning effort (paper: tens of
	// minutes per query).
	DesignTime time.Duration
}

// NewManual returns the baseline with a 20-minute design charge.
func NewManual(store *docstore.Store, worker llm.Client) *Manual {
	return &Manual{Store: store, Worker: worker, Slots: 4, Batch: 16, DesignTime: 20 * time.Minute}
}

// Name implements Baseline.
func (b *Manual) Name() string { return "Manual" }

// Run implements Baseline.
func (b *Manual) Run(ctx context.Context, query string) (Result, error) {
	plan, err := OraclePlan(query)
	if err != nil {
		// Even experts cannot plan an ungroundable query; they answer
		// from reading a retrieved sample.
		docs := contextDocsForSentences(b.Store, b.Store.SearchSentences(query, 100), 30)
		text, calls, gerr := generate(ctx, b.Worker, query, docs)
		if gerr != nil {
			return Result{}, gerr
		}
		return Result{Text: text, Latency: b.DesignTime + sumDur(calls), LLMCalls: len(calls)}, nil
	}
	calib := cost.NewCalibrator(b.Batch)
	est := sce.NewEstimator(b.Store, b.Worker, 8)
	opt := optimizer.New(b.Store, est, calib, b.Slots)
	opt.Mode = optimizer.GroundTruth // the expert knows the data
	phys, _, err := opt.Optimize(ctx, []*core.Plan{plan})
	if err != nil {
		return Result{}, err
	}
	executor := exec.New(b.Store, b.Worker, calib)
	executor.Slots = b.Slots
	executor.BatchSize = b.Batch
	res, err := executor.Run(ctx, phys)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Text:     formatValue(b.Store, res.Answer),
		Latency:  b.DesignTime + res.Makespan,
		LLMCalls: res.LLMCalls,
	}, nil
}

// OraclePlan decomposes a query with perfect operator selection and exact
// dependency wiring — the plan a careful expert would write. It is also
// used by tests as the reference decomposition.
func OraclePlan(query string) (*core.Plan, error) {
	q, err := nlq.Parse(query)
	if err != nil {
		return nil, err
	}
	plan := &core.Plan{Query: query}
	producers := map[string]int{} // var token -> node id
	next := 1
	for steps := 0; !q.Solved(); steps++ {
		if steps > 30 {
			return nil, fmt.Errorf("baselines: oracle reduction did not converge for %q", query)
		}
		apps := nlq.Applicable(q, next)
		var chosen string
		for _, op := range nlq.OperatorNames {
			if _, ok := apps[op]; ok {
				chosen = op
				break
			}
		}
		if chosen == "" {
			return nil, fmt.Errorf("baselines: oracle stuck at %q", q.Render())
		}
		red, ok := nlq.Reduce(q, chosen, next)
		if !ok {
			return nil, fmt.Errorf("baselines: oracle reduce failed at %q", q.Render())
		}
		node := &core.Node{
			ID:     len(plan.Nodes),
			Op:     red.Op,
			Args:   red.Args,
			Inputs: red.Inputs,
			OutVar: red.VarName,
			Desc:   red.VarDesc,
		}
		for _, in := range red.Inputs {
			if id, ok := producers[in]; ok {
				node.Deps = append(node.Deps, id)
			}
		}
		plan.Nodes = append(plan.Nodes, node)
		producers["{"+red.VarName+"}"] = node.ID
		q = red.Query
		next++
	}
	return plan, nil
}
