// Package corpus generates the four synthetic evaluation datasets that
// substitute for the paper's Stack Exchange archives and Wikipedia sample
// (Sports 3,898 / AI 5,137 / Law 2,053 / Wiki 1,000 documents).
//
// Each document is born from a hidden structured record (category concept,
// aspect concept, views, score, year) and rendered to plain text that
// mimics a crawled web page: explicit numeric header fields (as real Stack
// Exchange pages show "Viewed 523 times") and free prose whose vocabulary
// evokes the category and aspect concepts, plus distractor words that
// create genuine classification ambiguity. The analytics system only ever
// sees the rendered text; the hidden record is used exclusively for
// ground-truth computation by the workload module.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"unify/internal/docstore"
	"unify/internal/lexicon"
)

// Hidden is the structured record behind a rendered document.
type Hidden struct {
	Category string // lexicon concept of the dataset's category class
	Aspect   string // lexicon concept of the dataset's aspect class
	Views    int
	Score    int
	Year     int
}

// Doc pairs a rendered document with its hidden record.
type Doc struct {
	ID     int
	Title  string
	Text   string
	Hidden Hidden
}

// Dataset is a generated corpus plus its schema metadata. The metadata
// (class words, entity word) parameterizes workload generation; the
// analytics system itself receives only the documents.
type Dataset struct {
	Name        string
	EntityWord  string // "questions" or "articles"
	CatClass    string // lexicon class of the category dimension
	AspectClass string // lexicon class of the aspect dimension
	CatWord     string // surface word used in queries ("sport", "field", ...)
	AspectWord  string // surface word for the aspect dimension ("topic")
	SubsetName  string // the semantic label subset usable in queries
	Docs        []Doc
}

// profile describes one of the four datasets.
type profile struct {
	entityWord  string
	catClass    string
	aspectClass string
	catWord     string
	subsetName  string
	defaultSize int
	seed        int64
}

var profiles = map[string]profile{
	"sports": {"questions", "sport", "topic", "sport", "ball", 3898, 101},
	"ai":     {"questions", "aifield", "aiaspect", "field", "machine-learning", 5137, 102},
	"law":    {"questions", "lawarea", "lawaspect", "area", "money", 2053, 103},
	"wiki":   {"articles", "wikicat", "wikiaspect", "category", "natural-world", 1000, 104},
}

// Names lists the supported dataset names.
func Names() []string { return []string{"sports", "ai", "law", "wiki"} }

// DefaultSize returns the paper's document count for a dataset.
func DefaultSize(name string) int {
	if p, ok := profiles[name]; ok {
		return p.defaultSize
	}
	return 0
}

// Generate builds a dataset with the paper's document count.
func Generate(name string) (*Dataset, error) {
	return GenerateN(name, DefaultSize(name))
}

// GenerateN builds a dataset with n documents (useful for fast tests).
func GenerateN(name string, n int) (*Dataset, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown dataset %q (want one of %v)", name, Names())
	}
	if n <= 0 {
		return nil, fmt.Errorf("corpus: non-positive size %d", n)
	}
	rng := rand.New(rand.NewSource(p.seed))
	cats := lexicon.Names(p.catClass)
	aspects := lexicon.Names(p.aspectClass)
	ds := &Dataset{
		Name:        name,
		EntityWord:  p.entityWord,
		CatClass:    p.catClass,
		AspectClass: p.aspectClass,
		CatWord:     p.catWord,
		AspectWord:  "topic",
		SubsetName:  p.subsetName,
		Docs:        make([]Doc, 0, n),
	}
	catWeights := zipfWeights(len(cats), 1.3)
	aspWeights := zipfWeights(len(aspects), 0.7)
	for i := 0; i < n; i++ {
		cat := cats[weightedPick(rng, catWeights)]
		asp := aspects[weightedPick(rng, aspWeights)]
		// Numeric fields correlate with the document's concepts (popular
		// sports draw more views, some aspects score higher) — without
		// this, dropping a filter would barely change aggregates and
		// every sloppy method would look accurate.
		views := int(float64(lognormalViews(rng)) * conceptFactor(cat, 0.4, 2.5) * conceptFactor(asp, 0.7, 1.4))
		if views < 5 {
			views = 5
		}
		h := Hidden{
			Category: cat,
			Aspect:   asp,
			Views:    views,
			// Stack Exchange quality cut: >= 3 upvotes; the tail length
			// depends on the aspect.
			Score: 3 + geometric(rng, 0.15+0.3*hash01(asp+"|score")) + int(3*hash01(cat+"|score")),
			Year:  2009 + rng.Intn(16),
		}
		title, text := render(rng, p, h)
		ds.Docs = append(ds.Docs, Doc{ID: i, Title: title, Text: text, Hidden: h})
	}
	return ds, nil
}

// Documents converts the dataset to docstore documents (text only).
func (d *Dataset) Documents() []docstore.Document {
	out := make([]docstore.Document, len(d.Docs))
	for i, doc := range d.Docs {
		out[i] = docstore.Document{ID: doc.ID, Title: doc.Title, Text: doc.Text}
	}
	return out
}

// HiddenByID returns hidden records keyed by document id.
func (d *Dataset) HiddenByID() map[int]Hidden {
	out := make(map[int]Hidden, len(d.Docs))
	for _, doc := range d.Docs {
		out[doc.ID] = doc.Hidden
	}
	return out
}

// zipfWeights returns normalized Zipf-like weights so category sizes are
// skewed (some sports dominate, as on real Stack Exchange sites).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

func weightedPick(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// hash01 maps a string to a deterministic value in [0,1).
func hash01(s string) float64 {
	var h uint64 = 14695981039346656037
	for _, b := range []byte(s) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return float64(h>>11) / (1 << 53)
}

// conceptFactor maps a concept name to a deterministic log-uniform factor
// in [lo, hi].
func conceptFactor(name string, lo, hi float64) float64 {
	u := hash01(name + "|factor")
	return math.Exp(math.Log(lo) + u*(math.Log(hi)-math.Log(lo)))
}

// lognormalViews draws a view count with a heavy right tail (median a few
// hundred, occasional tens of thousands).
func lognormalViews(rng *rand.Rand) int {
	v := math.Exp(5.6 + 1.1*rng.NormFloat64())
	if v < 5 {
		v = 5
	}
	if v > 200000 {
		v = 200000
	}
	return int(v)
}

func geometric(rng *rand.Rand, p float64) int {
	n := 0
	for rng.Float64() > p && n < 400 {
		n++
	}
	return n
}

// neutral filler vocabulary and sentence frames.
var neutralWords = []string{
	"yesterday", "morning", "weekend", "beginner", "advanced", "general",
	"opinion", "advice", "experience", "situation", "example", "detail",
	"question", "answer", "approach", "context", "result", "issue",
}

var bodyFrames = []string{
	"I have been wondering %s lately and wanted to ask here.",
	"My main concern is %s, especially for a %s person.",
	"Last %s I ran into a situation involving %s.",
	"Could someone share their %s regarding %s?",
	"There is a lot of debate around %s in my club.",
	"I read several posts but none addressed %s directly.",
	"Any %s on handling %s would be appreciated.",
}

var titleFrames = []string{
	"Question about %s and %s",
	"How should I handle %s when dealing with %s?",
	"Is %s relevant to %s?",
	"Need advice on %s for %s",
	"Why does %s matter for %s?",
}

// pickWords draws k distinct indicator words of a concept, skipping
// hyphenated entries (which single-token matching cannot recover).
func pickWords(rng *rand.Rand, concept string, k int) []string {
	c, ok := lexicon.Lookup(concept)
	if !ok || len(c.Words) == 0 {
		return nil
	}
	var usable []string
	for _, w := range c.Words {
		if !strings.ContainsAny(w, "- ") {
			usable = append(usable, w)
		}
	}
	if len(usable) == 0 {
		return nil
	}
	idx := rng.Perm(len(usable))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = usable[idx[i]]
	}
	return out
}

func render(rng *rand.Rand, p profile, h Hidden) (title, text string) {
	catWords := pickWords(rng, h.Category, 3+rng.Intn(3))
	aspWords := pickWords(rng, h.Aspect, 3+rng.Intn(2))
	if len(catWords) == 0 {
		catWords = []string{h.Category}
	}
	if len(aspWords) == 0 {
		aspWords = []string{h.Aspect}
	}

	title = fmt.Sprintf(titleFrames[rng.Intn(len(titleFrames))], catWords[0], aspWords[0])

	var body []string
	use := func(frame string, words ...interface{}) {
		// Frames may need 1 or 2 slots; pad with neutral words.
		n := strings.Count(frame, "%s")
		args := make([]interface{}, n)
		for i := 0; i < n; i++ {
			if i < len(words) {
				args[i] = words[i]
			} else {
				args[i] = neutralWords[rng.Intn(len(neutralWords))]
			}
		}
		body = append(body, fmt.Sprintf(frame, args...))
	}
	for _, w := range catWords {
		use(bodyFrames[rng.Intn(len(bodyFrames))], w)
	}
	for _, w := range aspWords {
		use(bodyFrames[rng.Intn(len(bodyFrames))], w)
	}
	// Distractor: occasionally mention a word from a different category
	// concept — real documents stray off-topic, and this keeps semantic
	// classification genuinely imperfect.
	if rng.Float64() < 0.08 {
		others := lexicon.Names(p.catClass)
		other := others[rng.Intn(len(others))]
		if other != h.Category {
			if ws := pickWords(rng, other, 1); len(ws) == 1 {
				use("Someone also mentioned %s but that was off topic.", ws[0])
			}
		}
	}
	// Neutral filler.
	for i := 0; i < 1+rng.Intn(2); i++ {
		use(bodyFrames[rng.Intn(len(bodyFrames))])
	}
	rng.Shuffle(len(body), func(i, j int) { body[i], body[j] = body[j], body[i] })

	tags := []string{neutralWords[rng.Intn(len(neutralWords))]}
	if rng.Float64() < 0.5 {
		tags = append(tags, catWords[rng.Intn(len(catWords))])
	}
	if rng.Float64() < 0.35 {
		tags = append(tags, aspWords[rng.Intn(len(aspWords))])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Title: %s\n", title)
	fmt.Fprintf(&b, "Views: %d\n", h.Views)
	fmt.Fprintf(&b, "Score: %d\n", h.Score)
	fmt.Fprintf(&b, "Posted: %d\n", h.Year)
	fmt.Fprintf(&b, "Tags: %s\n", strings.Join(tags, ", "))
	fmt.Fprintf(&b, "Body: %s", strings.Join(body, " "))
	return title, b.String()
}
