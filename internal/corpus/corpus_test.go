package corpus

import (
	"strings"
	"testing"

	"unify/internal/lexicon"
	"unify/internal/nlcond"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range Names() {
		ds, err := GenerateN(name, 200)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Docs) != 200 {
			t.Errorf("%s: %d docs", name, len(ds.Docs))
		}
		if ds.EntityWord == "" || ds.CatClass == "" || ds.AspectClass == "" {
			t.Errorf("%s: incomplete metadata %+v", name, ds)
		}
		cats := map[string]bool{}
		for n, c := range lexicon.Names(ds.CatClass) {
			_ = n
			cats[c] = true
		}
		for _, d := range ds.Docs[:20] {
			if !cats[d.Hidden.Category] {
				t.Errorf("%s doc %d: category %q not in class %s", name, d.ID, d.Hidden.Category, ds.CatClass)
			}
			if d.Hidden.Views < 5 || d.Hidden.Score < 3 {
				t.Errorf("%s doc %d: implausible fields %+v", name, d.ID, d.Hidden)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := GenerateN("nope", 10); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := GenerateN("sports", 0); err == nil {
		t.Error("zero size accepted")
	}
}

func TestDefaultSizesMatchPaper(t *testing.T) {
	want := map[string]int{"sports": 3898, "ai": 5137, "law": 2053, "wiki": 1000}
	for name, n := range want {
		if DefaultSize(name) != n {
			t.Errorf("%s default size = %d, want %d", name, DefaultSize(name), n)
		}
	}
	if DefaultSize("nope") != 0 {
		t.Error("unknown dataset size should be 0")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := GenerateN("sports", 100)
	b, _ := GenerateN("sports", 100)
	for i := range a.Docs {
		if a.Docs[i].Text != b.Docs[i].Text || a.Docs[i].Hidden != b.Docs[i].Hidden {
			t.Fatal("generation not deterministic")
		}
	}
}

// TestRenderedFieldsRecoverable: the structured header fields must be
// exactly recoverable from the rendered text (the contract the exact
// pre-programmed operators rely on).
func TestRenderedFieldsRecoverable(t *testing.T) {
	ds, _ := GenerateN("sports", 150)
	for _, d := range ds.Docs {
		if v, ok := nlcond.ExtractField(d.Text, "views"); !ok || int(v) != d.Hidden.Views {
			t.Fatalf("doc %d views: got %v/%v, want %d", d.ID, v, ok, d.Hidden.Views)
		}
		if v, ok := nlcond.ExtractField(d.Text, "score"); !ok || int(v) != d.Hidden.Score {
			t.Fatalf("doc %d score mismatch", d.ID)
		}
		if v, ok := nlcond.ExtractField(d.Text, "year"); !ok || int(v) != d.Hidden.Year {
			t.Fatalf("doc %d year mismatch", d.ID)
		}
		if !strings.HasPrefix(d.Text, "Title: "+d.Title) {
			t.Fatalf("doc %d title not first line", d.ID)
		}
	}
}

// TestSemanticRecoverability: a lexicon-based judge must recover the
// hidden category from text with high (but not perfect) fidelity — this
// is the property making semantic filtering a real task.
func TestSemanticRecoverability(t *testing.T) {
	for _, name := range Names() {
		ds, _ := GenerateN(name, 300)
		correct := 0
		for _, d := range ds.Docs {
			if lexicon.BestConcept(d.Text, ds.CatClass) == d.Hidden.Category {
				correct++
			}
		}
		frac := float64(correct) / float64(len(ds.Docs))
		if frac < 0.9 {
			t.Errorf("%s: category recoverable for only %.1f%%", name, 100*frac)
		}
		if frac == 1.0 {
			t.Logf("%s: category recovery is perfect — distractors may be too weak", name)
		}
	}
}

// TestFieldCorrelation: numeric fields must correlate with concepts, so
// that dropping a filter visibly changes aggregates.
func TestFieldCorrelation(t *testing.T) {
	ds, _ := GenerateN("sports", 2000)
	sums := map[string][2]float64{} // cat -> (sum views, count)
	for _, d := range ds.Docs {
		s := sums[d.Hidden.Category]
		s[0] += float64(d.Hidden.Views)
		s[1]++
		sums[d.Hidden.Category] = s
	}
	var lo, hi float64
	lo = 1e18
	for _, s := range sums {
		if s[1] < 30 {
			continue
		}
		mean := s[0] / s[1]
		if mean < lo {
			lo = mean
		}
		if mean > hi {
			hi = mean
		}
	}
	if hi/lo < 1.5 {
		t.Errorf("per-category view means too uniform: lo=%.0f hi=%.0f", lo, hi)
	}
}

func TestHiddenByIDAndDocuments(t *testing.T) {
	ds, _ := GenerateN("wiki", 50)
	h := ds.HiddenByID()
	if len(h) != 50 {
		t.Errorf("HiddenByID size %d", len(h))
	}
	docs := ds.Documents()
	if len(docs) != 50 || docs[7].Text != ds.Docs[7].Text {
		t.Error("Documents conversion broken")
	}
}
